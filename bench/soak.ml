(* Localhost soak harness for the TCP transport + tpbsd broker.

   Default mode forks a real multi-process deployment: a broker child
   (adopting a pre-bound listening socket, so restarts reuse the very
   same fd), N subscriber children and P publisher children, each a
   full Pubsub.Domain joined over TCP through Tpbs_transport.Client.
   Publishers stamp each obvent with a wall-clock send time;
   subscribers verify exactly-once, per-origin ordering, and record
   delivery latency samples. With --restart the broker is SIGKILLed
   mid-run (a genuine crash: no goodbye, no flush) and a fresh
   incarnation adopts the socket — certified delivery must hold
   through it via publisher retransmission + subscriber dedup.

   The parent aggregates everything into one JSONL metrics file
   (soak.latency_us histogram, soak.recovery_ms gauge, soak.* verdict
   counters, summed transport.* client counters, plus the broker's
   own tpbsd.* export) for tpbs_report --require / --require-le SLO
   gates, and exits non-zero on any lost, duplicated or out-of-order
   delivery.

   Standalone roles for manual two-terminal runs against an external
   tpbsd:   soak.exe pub --port P --id a --events 100
            soak.exe sub --port P --expect 100                      *)

module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Pubsub = Tpbs_core.Pubsub
module Client = Tpbs_transport.Client
module Broker = Tpbs_transport.Broker
module Trace = Tpbs_trace.Trace
module Histogram = Tpbs_trace.Histogram
module Report = Tpbs_trace.Report

let now_s () = Unix.gettimeofday ()
let now_us () = int_of_float (now_s () *. 1e6)
let now_ms () = int_of_float (now_s () *. 1e3)
let host = "127.0.0.1"

let soak_registry () =
  let reg = Registry.create () in
  Registry.declare_class reg ~name:"SoakQuote" ~implements:[ "Obvent" ]
    ~attrs:
      [ ("seq", Vtype.Tint); ("origin", Vtype.Tstring);
        ("sentUs", Vtype.Tint); ("pad", Vtype.Tstring) ]
    ();
  reg

(* One client process: fresh trace registry, a one-node domain, and a
   TCP connection to the broker. *)
type ctx = {
  reg : Registry.t;
  engine : Engine.t;
  proc : Pubsub.Process.t;
  client : Client.t;
}

let rec connect_retry ~id ~port ~deadline =
  match Client.connect ~host ~port ~id ~timeout_ms:1000 () with
  | Some c -> Some c
  | None ->
      if now_s () > deadline then None
      else begin
        Unix.sleepf 0.05;
        connect_retry ~id ~port ~deadline
      end

let fresh_ctx ~id ~port =
  let tr = Trace.create () in
  Trace.set_ambient tr;
  let reg = soak_registry () in
  let engine = Engine.create ~seed:1 () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in
  let proc = Pubsub.Process.create domain (Net.add_node net) in
  match connect_retry ~id ~port ~deadline:(now_s () +. 10.) with
  | None ->
      Printf.eprintf "soak[%s]: cannot reach broker on port %d\n%!" id port;
      exit 3
  | Some client ->
      Client.attach client domain proc;
      { reg; engine; proc; client }

(* Pump: real I/O, then drain the simulated engine so injected
   deliveries run their handlers. When the broker goes away, poll
   itself re-dials under the client's default backoff policy (with
   the retransmit/resubscribe resync on success) — its waits are
   bounded by [timeout_ms], so a disconnected child keeps its cadence
   without an explicit reconnect loop here. The backoff budget
   (~25 s) dwarfs any soak broker-restart window. *)
let turn ctx ~timeout_ms =
  ignore (Client.poll ctx.client ~timeout_ms);
  Engine.run ctx.engine

let dump_metrics path =
  let buf = Buffer.create 4096 in
  Trace.metrics_to_jsonl (Trace.ambient ()) buf;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc

(* --- publisher child --------------------------------------------------- *)

let run_publisher ~id ~port ~events ?(pace_us = 0) ?metrics_file () =
  let ctx = fresh_ctx ~id ~port in
  let pad = String.make 64 'x' in
  let sent = ref 0 in
  let next_at = ref (now_us ()) in
  let deadline = now_s () +. 120. in
  while
    (!sent < events || Client.queued_count ctx.client > 0)
    && now_s () < deadline
  do
    if !sent < events && now_us () >= !next_at then begin
      next_at := now_us () + pace_us;
      let ob =
        Obvent.make ctx.reg "SoakQuote"
          [ ("seq", Value.Int !sent); ("origin", Value.Str id);
            ("sentUs", Value.Int (now_us ())); ("pad", Value.Str pad) ]
      in
      Pubsub.Process.publish ctx.proc ob;
      incr sent
    end;
    turn ctx ~timeout_ms:1
  done;
  let unresolved = Client.queued_count ctx.client in
  (match metrics_file with Some p -> dump_metrics p | None -> ());
  Printf.printf "soak[%s]: published %d, unacked at exit %d\n%!" id !sent
    unresolved;
  if unresolved = 0 then 0 else 3

(* --- subscriber child -------------------------------------------------- *)

let run_subscriber ~id ~port ~expect ?metrics_file ?samples_file ?ready_file
    () =
  let ctx = fresh_ctx ~id ~port in
  let samples = Buffer.create 8192 in
  let seen = Hashtbl.create 1024 in (* (origin, seq) → () *)
  let last = Hashtbl.create 8 in (* origin → last seq *)
  let delivered = ref 0 in
  let dups = ref 0 in
  let reorders = ref 0 in
  let handler ob =
    match (Obvent.get ob "seq", Obvent.get ob "origin", Obvent.get ob "sentUs")
    with
    | Value.Int seq, Value.Str origin, Value.Int sent_us ->
        incr delivered;
        let lat = now_us () - sent_us in
        Buffer.add_string samples
          (Printf.sprintf "%d %d\n" (now_ms ()) (max 0 lat));
        if Hashtbl.mem seen (origin, seq) then incr dups
        else Hashtbl.replace seen (origin, seq) ();
        (match Hashtbl.find_opt last origin with
        | Some prev when seq <= prev -> incr reorders
        | _ -> ());
        Hashtbl.replace last origin seq
    | _ -> incr reorders
  in
  let sub = Pubsub.Process.subscribe ctx.proc ~param:"SoakQuote" handler in
  Pubsub.Subscription.activate sub;
  Engine.run ctx.engine;
  (* Two narrower siblings registered after the subscribe-to-all: the
     broker's covering index suppresses them (and must keep them
     suppressed across restart resync, where the client replays Subs
     in original order). Locally they still dispatch, so the wide one
     doubles as a delivery cross-check on the main handler. *)
  let covered_all = ref 0 in
  let covered_sub expr counter =
    let s =
      Pubsub.Process.subscribe ctx.proc ~param:"SoakQuote"
        ~filter:(Tpbs_core.Fspec.tree expr)
        (fun _ -> incr counter)
    in
    Pubsub.Subscription.activate s;
    Engine.run ctx.engine
  in
  let ge k = Tpbs_filter.Expr.(Binop (Ge, getter [ "getSeq" ], int k)) in
  covered_sub (ge 0) covered_all;
  let covered_tail = ref 0 in
  covered_sub (ge (max 1 (expect / 2))) covered_tail;
  (* push the Sub registrations out before declaring readiness *)
  ignore (Client.poll ctx.client ~timeout_ms:10);
  (match ready_file with
  | Some p ->
      let oc = open_out p in
      output_string oc "ready\n";
      close_out oc
  | None -> ());
  let deadline = now_s () +. 120. in
  while !delivered < expect && now_s () < deadline do
    turn ctx ~timeout_ms:50
  done;
  (match samples_file with
  | Some p ->
      let oc = open_out p in
      Buffer.output_buffer oc samples;
      close_out oc
  | None -> ());
  (match metrics_file with Some p -> dump_metrics p | None -> ());
  Printf.printf
    "soak[%s]: delivered %d/%d (dups seen by app %d, order violations %d, \
     covered siblings saw %d/%d)\n%!"
    id !delivered expect !dups !reorders !covered_all !covered_tail;
  if !dups > 0 then 4
  else if !reorders > 0 then 5
  else if !delivered < expect then 6
  else if !covered_all <> !delivered then 7
  else 0

(* --- broker child ------------------------------------------------------ *)

let run_broker ~listen_fd ~ctl_r ~warmup_ms ~metrics_file =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let tr = Trace.create () in
  Trace.set_ambient tr;
  let config = { Broker.default_config with warmup_ms } in
  let b = Broker.create ~config ~listen_fd ~port:0 () in
  let quit = ref false in
  while not !quit do
    if Broker.poll b ~extra_fds:[ ctl_r ] ~timeout_ms:100 () then quit := true
  done;
  Broker.stop b;
  dump_metrics metrics_file;
  0

(* --- the forked harness ------------------------------------------------ *)

type child = { pid : int; who : string; mutable code : int option }

let fork_child who f =
  match Unix.fork () with
  | 0 ->
      let code = try f () with e ->
        Printf.eprintf "soak[%s]: %s\n%!" who (Printexc.to_string e);
        10
      in
      Stdlib.exit code
  | pid -> { pid; who; code = None }

(* Reap children until all have exited or the deadline passes; anyone
   still alive then is killed and counted as failed. *)
let wait_all children ~deadline =
  let unfinished () = List.filter (fun c -> c.code = None) children in
  while unfinished () <> [] && now_s () < deadline do
    List.iter
      (fun c ->
        match Unix.waitpid [ WNOHANG ] c.pid with
        | 0, _ -> ()
        | _, WEXITED n -> c.code <- Some n
        | _, (WSIGNALED _ | WSTOPPED _) -> c.code <- Some 11
        | exception Unix.Unix_error (ECHILD, _, _) -> c.code <- Some 12)
      (unfinished ());
    if unfinished () <> [] then Unix.sleepf 0.05
  done;
  List.iter
    (fun c ->
      if c.code = None then begin
        Printf.eprintf "soak: %s (pid %d) timed out, killing\n%!" c.who c.pid;
        (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] c.pid);
        c.code <- Some 13
      end)
    children

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = go [] in
    close_in ic;
    lines
  end

let harness ~subs ~pubs ~events ~restart ~pace_us ~out =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpbs-soak-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o700;
  let path name = Filename.concat dir name in
  let listen_fd = Broker.listen_socket ~host ~port:0 in
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Printf.printf "soak: broker port %d, %d subs × %d pubs × %d events%s\n%!"
    port subs pubs events
    (if restart then ", with mid-run broker crash" else "");
  (* the first incarnation needs no warmup: subscribers register
     before any publisher is forked (the ready barrier below); only a
     restarted broker must hold publishers back while survivors
     re-subscribe *)
  let fork_broker gen =
    let r, w = Unix.pipe () in
    let c =
      fork_child
        (Printf.sprintf "broker-%d" gen)
        (fun () ->
          Unix.close w;
          run_broker ~listen_fd ~ctl_r:r
            ~warmup_ms:(if gen = 0 then 0 else Broker.default_config.warmup_ms)
            ~metrics_file:(path (Printf.sprintf "broker-%d.jsonl" gen)))
    in
    Unix.close r;
    (c, w)
  in
  let broker0, ctl0 = fork_broker 0 in
  (* subscribers first; wait until each has its Sub registered *)
  let sub_children =
    List.init subs (fun i ->
        let id = Printf.sprintf "sub%d" i in
        fork_child id (fun () ->
            Unix.close listen_fd;
            Unix.close ctl0;
            run_subscriber ~id ~port ~expect:(pubs * events)
              ~metrics_file:(path ("metrics-" ^ id ^ ".jsonl"))
              ~samples_file:(path ("samples-" ^ id ^ ".txt"))
              ~ready_file:(path ("ready-" ^ id)) ()))
  in
  let ready_deadline = now_s () +. 15. in
  let all_ready () =
    List.for_all
      (fun i -> Sys.file_exists (path (Printf.sprintf "ready-sub%d" i)))
      (List.init subs (fun i -> i))
  in
  while (not (all_ready ())) && now_s () < ready_deadline do
    Unix.sleepf 0.05
  done;
  if not (all_ready ()) then prerr_endline "soak: subscribers never ready";
  let pub_children =
    List.init pubs (fun i ->
        let id = Printf.sprintf "pub%d" i in
        fork_child id (fun () ->
            Unix.close listen_fd;
            Unix.close ctl0;
            run_publisher ~id ~port ~events ~pace_us
              ~metrics_file:(path ("metrics-" ^ id ^ ".jsonl"))
              ()))
  in
  (* the crash: SIGKILL mid-stream, then a new incarnation adopts the
     same listening socket *)
  let kill_ms = ref 0 in
  let broker_children, ctl =
    if restart then begin
      Unix.sleepf 0.6;
      (try Unix.kill broker0.pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] broker0.pid);
      broker0.code <- Some 0 (* killed on purpose *);
      kill_ms := now_ms ();
      Printf.printf "soak: broker killed at t=%dms, restarting\n%!" !kill_ms;
      Unix.sleepf 0.25;
      let broker1, ctl1 = fork_broker 1 in
      Unix.close ctl0;
      ([ broker0; broker1 ], ctl1)
    end
    else ([ broker0 ], ctl0)
  in
  wait_all (sub_children @ pub_children) ~deadline:(now_s () +. 120.);
  (* orderly broker shutdown so it exports metrics *)
  (try ignore (Unix.write ctl (Bytes.of_string "q") 0 1)
   with Unix.Unix_error _ -> ());
  wait_all broker_children ~deadline:(now_s () +. 10.);
  Unix.close listen_fd;
  (try Unix.close ctl with Unix.Unix_error _ -> ());
  (* --- aggregate ------------------------------------------------------ *)
  let tr = Trace.create () in
  Trace.set_ambient tr;
  let hist = Trace.histogram tr "soak.latency_us" in
  let first_recv_after_kill = ref None in
  List.init subs (fun i -> path (Printf.sprintf "samples-sub%d.txt" i))
  |> List.iter (fun p ->
         List.iter
           (fun line ->
             match String.split_on_char ' ' (String.trim line) with
             | [ recv_ms; lat_us ] -> (
                 match
                   (int_of_string_opt recv_ms, int_of_string_opt lat_us)
                 with
                 | Some r, Some l ->
                     Histogram.record hist (float_of_int l);
                     if restart && r > !kill_ms then
                       first_recv_after_kill :=
                         Some
                           (match !first_recv_after_kill with
                           | None -> r
                           | Some r0 -> min r0 r)
                 | _ -> ())
             | _ -> ())
           (read_lines p));
  let recovery_ms =
    if not restart then 0
    else
      match !first_recv_after_kill with
      | Some r -> r - !kill_ms
      | None -> 999_999
  in
  Trace.Gauge.set (Trace.gauge tr "soak.recovery_ms") recovery_ms;
  (* sum interesting per-child transport counters into the output *)
  let child_metrics =
    List.init subs (fun i -> path (Printf.sprintf "metrics-sub%d.jsonl" i))
    @ List.init pubs (fun i -> path (Printf.sprintf "metrics-pub%d.jsonl" i))
    |> List.map read_lines
  in
  List.iter
    (fun name ->
      let total =
        List.fold_left
          (fun acc lines ->
            match Report.counter_value lines name with
            | Some v -> acc + v
            | None -> acc)
          0 child_metrics
      in
      Trace.Counter.add (Trace.counter tr name) total)
    [ "transport.client_pubs"; "transport.client_acked";
      "transport.delivered"; "transport.dup_drops"; "transport.retransmits";
      "transport.reconnects"; "transport.frames_sent";
      "transport.write_syscalls"; "transport.read_syscalls";
      "transport.corrupt_frames" ];
  let code_of c = Option.value c.code ~default:14 in
  let subs_ok = List.for_all (fun c -> code_of c = 0) sub_children in
  let pubs_ok = List.for_all (fun c -> code_of c = 0) pub_children in
  let brokers_ok = List.for_all (fun c -> code_of c = 0) broker_children in
  Trace.Counter.add
    (Trace.counter tr "soak.expected")
    (subs * pubs * events);
  Trace.Counter.add (Trace.counter tr "soak.delivered") (Histogram.count hist);
  if subs_ok && pubs_ok then
    Trace.Counter.incr (Trace.counter tr "soak.exactly_once");
  let buf = Buffer.create 16384 in
  Trace.metrics_to_jsonl tr buf;
  List.iter
    (fun gen ->
      List.iter
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        (read_lines (path (Printf.sprintf "broker-%d.jsonl" gen))))
    (if restart then [ 1 ] else [ 0 ]);
  let oc = open_out out in
  Buffer.output_buffer oc buf;
  close_out oc;
  (* best-effort cleanup *)
  (try
     Array.iter (fun f -> Sys.remove (Filename.concat dir f))
       (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  Printf.printf
    "soak: delivered %d/%d, recovery %dms, verdicts subs=%b pubs=%b \
     brokers=%b → %s\n%!"
    (Histogram.count hist) (subs * pubs * events) recovery_ms subs_ok pubs_ok
    brokers_ok out;
  if subs_ok && pubs_ok && brokers_ok then 0 else 1

(* --- CLI --------------------------------------------------------------- *)

let usage () =
  prerr_endline
    "usage: soak [--subs N] [--pubs N] [--events N] [--restart] [--out FILE]\n\
    \       soak pub --port P [--id ID] [--events N]\n\
    \       soak sub --port P [--id ID] [--expect N]";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let get_int v = match int_of_string_opt v with Some n -> n | None -> usage () in
  match args with
  | "pub" :: rest ->
      let port = ref 0 and id = ref "pub" and events = ref 100 in
      let pace = ref 0 in
      let rec parse = function
        | [] -> ()
        | "--port" :: v :: r -> port := get_int v; parse r
        | "--id" :: v :: r -> id := v; parse r
        | "--events" :: v :: r -> events := get_int v; parse r
        | "--pace-us" :: v :: r -> pace := get_int v; parse r
        | _ -> usage ()
      in
      parse rest;
      if !port = 0 then usage ();
      Stdlib.exit
        (run_publisher ~id:!id ~port:!port ~events:!events ~pace_us:!pace ())
  | "sub" :: rest ->
      let port = ref 0 and id = ref "sub" and expect = ref 100 in
      let rec parse = function
        | [] -> ()
        | "--port" :: v :: r -> port := get_int v; parse r
        | "--id" :: v :: r -> id := v; parse r
        | "--expect" :: v :: r -> expect := get_int v; parse r
        | _ -> usage ()
      in
      parse rest;
      if !port = 0 then usage ();
      Stdlib.exit
        (run_subscriber ~id:!id ~port:!port ~expect:!expect ())
  | rest ->
      let subs = ref 2 and pubs = ref 2 and events = ref 150 in
      let restart = ref false in
      let pace = ref (-1) in
      let out =
        ref
          (match Sys.getenv_opt "TPBS_TRACE_FILE" with
          | Some f -> f
          | None -> "soak.jsonl")
      in
      let rec parse = function
        | [] -> ()
        | "--subs" :: v :: r -> subs := get_int v; parse r
        | "--pubs" :: v :: r -> pubs := get_int v; parse r
        | "--events" :: v :: r -> events := get_int v; parse r
        | "--restart" :: r -> restart := true; parse r
        | "--pace-us" :: v :: r -> pace := get_int v; parse r
        | "--out" :: v :: r -> out := v; parse r
        | _ -> usage ()
      in
      parse rest;
      (* under --restart, pace publishers by default so the crash
         lands mid-stream rather than after the run has drained *)
      let pace_us =
        if !pace >= 0 then !pace else if !restart then 8_000 else 0
      in
      Stdlib.exit
        (harness ~subs:!subs ~pubs:!pubs ~events:!events ~restart:!restart
           ~pace_us ~out:!out)
