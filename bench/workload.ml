(* Shared workload generators for the experiment harness: the stock
   trade application of the paper's running example, scaled up. *)

module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Expr = Tpbs_filter.Expr
module Rng = Tpbs_sim.Rng

let companies =
  [| "Telco Mobiles"; "Telco Fixnet"; "Telco Cloud"; "Acme Corp";
     "Acme Retail"; "Banka"; "Octopus"; "Initech"; "Globex"; "Umbrella";
     "Stark Industries"; "Wayne Enterprises"; "Tyrell"; "Cyberdyne";
     "Wonka Industries"; "Gringotts" |]

let sectors = [| "telco"; "industry"; "finance"; "retail" |]

(* The Fig. 1 hierarchy plus QoS'd classes for the semantics ladder. *)
let registry () =
  let reg = Registry.create () in
  Registry.declare_class reg ~name:"StockObvent" ~implements:[ "Obvent" ]
    ~attrs:
      [ "company", Vtype.Tstring; "sector", Vtype.Tstring;
        "price", Vtype.Tfloat; "amount", Vtype.Tint ]
    ();
  Registry.declare_class reg ~name:"StockQuote" ~extends:"StockObvent" ();
  Registry.declare_class reg ~name:"StockRequest" ~extends:"StockObvent" ();
  Registry.declare_class reg ~name:"SpotPrice" ~extends:"StockRequest" ();
  Registry.declare_class reg ~name:"MarketPrice" ~extends:"StockRequest" ();
  List.iter
    (fun (name, itfs) ->
      Registry.declare_class reg ~name ~extends:"StockQuote"
        ~implements:itfs ())
    [ "ReliableQuote", [ "Reliable" ]; "FifoQuote", [ "FIFOOrder" ];
      "CausalQuote", [ "CausalOrder" ]; "TotalQuote", [ "TotalOrder" ];
      "CertifiedQuote", [ "Certified" ];
      (* Composed lattice points (multiple subtyping, Fig. 3/4). *)
      "CertFifoQuote", [ "Certified"; "FIFOOrder" ];
      "CertTotalQuote", [ "Certified"; "TotalOrder" ];
      "CausalTotalQuote", [ "CausalOrder"; "TotalOrder" ] ];
  reg

let leaf_classes = [| "StockQuote"; "SpotPrice"; "MarketPrice" |]

let random_event reg rng ?cls () =
  let cls =
    match cls with Some c -> c | None -> Rng.pick rng leaf_classes
  in
  Obvent.make reg cls
    [ "company", Value.Str (Rng.pick rng companies);
      "sector", Value.Str (Rng.pick rng sectors);
      "price", Value.Float (Rng.float rng 200.);
      "amount", Value.Int (1 + Rng.int rng 1000) ]

(* A random conjunctive filter over the stock attributes, as a filter
   expression. [selectivity_hint] loosely controls how often it
   matches. *)
let random_filter rng =
  (* Selectivities mirror content-based pub/sub workloads: mostly
     selective equality tests on discrete attributes, some narrow
     ranges (cf. the Gryphon/Siena workloads behind [ASS+99]). *)
  let price_atom () =
    (* ~20% selective on uniform prices in [0, 200). *)
    Expr.(getter [ "getPrice" ] <. float (10. +. Rng.float rng 60.))
  in
  let company_atom () =
    if Rng.bool rng 0.75 then
      Expr.(Binop (Eq, getter [ "getCompany" ], str (Rng.pick rng companies)))
    else
      Expr.(
        Binop
          ( Contains,
            getter [ "getCompany" ],
            str (String.sub (Rng.pick rng companies) 0 4) ))
  in
  let sector_atom () =
    Expr.(Binop (Eq, getter [ "getSector" ], str (Rng.pick rng sectors)))
  in
  let amount_atom () =
    Expr.(getter [ "getAmount" ] >. int (600 + Rng.int rng 400))
  in
  let atoms =
    [| price_atom; company_atom; company_atom; sector_atom; amount_atom |]
  in
  let n = 1 + Rng.int rng 3 in
  let rec build k =
    let atom = (Rng.pick rng atoms) () in
    if k = 1 then atom else Expr.(atom &&& build (k - 1))
  in
  build n

(* A population of N filters where a fraction [redundancy] is drawn
   from a pool of [pool] distinct filters — the sharing compound
   filtering exploits (E3). *)
let filter_population rng ~n ~redundancy ~pool =
  let shared = Array.init (max 1 pool) (fun _ -> random_filter rng) in
  List.init n (fun _ ->
      if Rng.bool rng redundancy then Rng.pick rng shared
      else random_filter rng)

let table_header title columns =
  Fmt.pr "@.== %s ==@." title;
  Fmt.pr "%s@." (String.concat "  " columns)

let time_per_op f ~runs =
  (* CPU seconds per op, by repetition. *)
  let t0 = Sys.time () in
  for _ = 1 to runs do
    f ()
  done;
  (Sys.time () -. t0) /. float_of_int runs

(* --- machine-readable table collection ------------------------------- *)

(* Experiments register their tables here as they print them; the
   harness dumps the collection to BENCH_<n>.json on --json and the CI
   perf guard reads it back. Collection is always on — it is a few
   lists per run. *)

type cell = J_int of int | J_float of float | J_str of string

let json_tables : (string, string list * cell list list ref) Hashtbl.t =
  Hashtbl.create 8

let json_order : string list ref = ref []

let json_table ~key ~cols =
  if not (Hashtbl.mem json_tables key) then
    json_order := !json_order @ [ key ];
  Hashtbl.replace json_tables key (cols, ref [])

let json_row ~key row =
  match Hashtbl.find_opt json_tables key with
  | None -> invalid_arg ("json_row: unregistered table " ^ key)
  | Some (_, rows) -> rows := row :: !rows

let json_find key =
  Option.map
    (fun (cols, rows) -> cols, List.rev !rows)
    (Hashtbl.find_opt json_tables key)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let cell_to_json = function
  | J_int i -> string_of_int i
  | J_float f ->
      if Float.is_finite f then Printf.sprintf "%.6g" f else "null"
  | J_str s -> "\"" ^ json_escape s ^ "\""

let write_json path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{";
  List.iteri
    (fun ti key ->
      let cols, rows = Option.get (json_find key) in
      if ti > 0 then out ",";
      out "\n  \"%s\": {\n    \"columns\": [%s],\n    \"rows\": ["
        (json_escape key)
        (String.concat ", "
           (List.map (fun c -> "\"" ^ json_escape c ^ "\"") cols));
      List.iteri
        (fun ri row ->
          if ri > 0 then out ",";
          out "\n      [%s]"
            (String.concat ", " (List.map cell_to_json row)))
        rows;
      out "\n    ]\n  }")
    !json_order;
  out "\n}\n";
  close_out oc;
  Fmt.pr "wrote %s (%d tables)@." path (List.length !json_order)
