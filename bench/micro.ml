(* Bechamel micro-benchmarks: per-operation costs of the core data
   paths. One Test.make per row. *)

open Bechamel
open Toolkit
module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec
module Registry = Tpbs_types.Registry
module Obvent = Tpbs_obvent.Obvent
module Expr = Tpbs_filter.Expr
module Rfilter = Tpbs_filter.Rfilter
module Factored = Tpbs_filter.Factored
module Vclock = Tpbs_group.Vclock
module Rng = Tpbs_sim.Rng
module Routing = Tpbs_core.Routing
module Topics = Tpbs_baselines.Topics

let tests () =
  let reg = Workload.registry () in
  let rng = Rng.create 1 in
  let event = Workload.random_event reg rng ~cls:"StockQuote" () in
  let value = Obvent.to_value event in
  let bytes = Codec.encode value in
  let filter =
    Expr.(
      getter [ "getPrice" ] <. float 100.
      &&& Binop (Contains, getter [ "getCompany" ], str "Telco"))
  in
  let rf = Option.get (Rfilter.of_expr ~env:[] ~param:"StockQuote" filter) in
  let factored_1000 = Factored.create () in
  List.iteri
    (fun i rf -> Factored.add factored_1000 ~id:i rf)
    (List.filter_map
       (Rfilter.of_expr ~env:[] ~param:"StockQuote")
       (Workload.filter_population rng ~n:1000 ~redundancy:0.5 ~pool:50));
  let vc1 = Vclock.create 32 and vc2 = Vclock.create 32 in
  for i = 0 to 31 do
    if i mod 2 = 0 then Vclock.tick vc1 i else Vclock.tick vc2 i
  done;
  let topics = Topics.create () in
  for i = 0 to 999 do
    Topics.subscribe topics
      ~topic:(Printf.sprintf "stocks/s%d" (i mod 50))
      i
  done;
  let sub_params =
    Array.init 1000 (fun _ ->
        Rng.pick rng
          [| "Obvent"; "StockObvent"; "StockRequest"; "StockQuote";
             "SpotPrice"; "MarketPrice" |])
  in
  let route = Routing.create reg in
  let route_build cls =
    let targets = ref [] in
    for i = Array.length sub_params - 1 downto 0 do
      if Registry.subtype reg cls sub_params.(i) then targets := i :: !targets
    done;
    !targets
  in
  ignore (Routing.find route "SpotPrice" ~build:route_build);
  let route_cold = Routing.create reg in
  let cursor = Tpbs_serial.Cursor.of_string bytes in
  [ Test.make ~name:"codec: encode obvent"
      (Staged.stage (fun () -> ignore (Codec.encode value)));
    Test.make ~name:"codec: decode obvent"
      (Staged.stage (fun () -> ignore (Codec.decode bytes)));
    Test.make ~name:"obvent: clone (serialize+deserialize)"
      (Staged.stage (fun () -> ignore (Obvent.clone reg event)));
    Test.make ~name:"obvent: cow view clone"
      (Staged.stage (fun () -> ignore (Obvent.view event)));
    Test.make ~name:"obvent: cow view + first write"
      (Staged.stage (fun () ->
           let v = Obvent.view event in
           Obvent.set reg v "price" (Value.Float 1.)));
    Test.make ~name:"cursor: class-id peek"
      (Staged.stage (fun () -> ignore (Tpbs_serial.Cursor.class_id cursor)));
    Test.make ~name:"cursor: lazy projection (1 field)"
      (Staged.stage (fun () ->
           ignore (Tpbs_serial.Cursor.project cursor [ "price" ])));
    Test.make ~name:"registry: subtype check"
      (Staged.stage (fun () ->
           ignore (Registry.subtype reg "SpotPrice" "Obvent")));
    Test.make ~name:"filter: interpreted eval"
      (Staged.stage (fun () ->
           ignore (Expr.eval_bool reg ~env:[] ~arg:event filter)));
    Test.make ~name:"filter: remote-filter eval"
      (Staged.stage (fun () -> ignore (Rfilter.matches_obvent rf event)));
    Test.make ~name:"filter: factored match (1000 subs)"
      (Staged.stage (fun () ->
           ignore (Factored.matches factored_1000 value)));
    Test.make ~name:"vclock: merge (32 ranks)"
      (Staged.stage (fun () ->
           let c = Vclock.copy vc1 in
           Vclock.merge c vc2));
    Test.make ~name:"routing: index lookup (1000 subs)"
      (Staged.stage (fun () ->
           ignore (Routing.find route "SpotPrice" ~build:route_build)));
    Test.make ~name:"routing: entry build (1000 subs)"
      (Staged.stage (fun () ->
           Routing.clear route_cold;
           ignore (Routing.find route_cold "SpotPrice" ~build:route_build)));
    Test.make ~name:"routing: incremental add+remove (1000 subs)"
      (Staged.stage (fun () ->
           (* Paired so the warm entry's size is steady across runs. *)
           Routing.add route ~param:"StockRequest" ~compare:Int.compare 1000;
           Routing.remove route ~param:"StockRequest" (fun i -> i = 1000)));
    Test.make ~name:"topics: match (1000 subs)"
      (Staged.stage (fun () -> ignore (Topics.publish topics ~topic:"stocks/s7")))
  ]

let run () =
  Fmt.pr "@.== micro-benchmarks (Bechamel, ns/op) ==@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"micro" ~fmt:"%s %s" (tests ()))
  in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  (* Print estimates sorted by name. *)
  Workload.json_table ~key:"micro" ~cols:[ "name"; "ns_per_op" ];
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> Fmt.pr "(no results)@."
  | Some tbl ->
      Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (name, ols) ->
             match Analyze.OLS.estimates ols with
             | Some [ est ] ->
                 Fmt.pr "%-45s %12.1f@." name est;
                 Workload.json_row ~key:"micro"
                   [ J_str name; J_float est ]
             | _ -> Fmt.pr "%-45s %12s@." name "n/a"))
