(* E2 — The cost ladder of composable delivery semantics (Fig. 3/4,
   §3.1.2).

   One class per rung (plain, Reliable, FIFO, Causal, Total,
   Certified, plus the composed lattice points Certified+FIFO,
   Certified+Total and Causal+Total) on an 8-node deployment with
   loss and jitter. For each:
   network messages and bytes per published obvent, delivery ratio,
   and delivery latency. The paper's qualitative claim — stronger
   semantics cost more — should appear as a monotone ladder, with
   certified paying acknowledgements and total paying the sequencer
   indirection. *)

module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Metric = Tpbs_sim.Metric
module Pubsub = Tpbs_core.Pubsub
module Rng = Tpbs_sim.Rng
module Trace = Tpbs_trace.Trace

let nodes = 8
let events = 60

let run_rung cls =
  (* Fresh ambient registry per rung: certified retransmits and total
     holdback peaks are read back per class, not accumulated. *)
  let tr = Trace.create () in
  Trace.set_ambient tr;
  let reg = Workload.registry () in
  let engine = Engine.create ~seed:4242 () in
  let net =
    Net.create ~config:{ latency = 1000; jitter = 400; loss = 0.05 } engine
  in
  let domain = Pubsub.Domain.create reg net in
  let procs =
    Array.init nodes (fun _ -> Pubsub.Process.create domain (Net.add_node net))
  in
  let delivered = ref 0 in
  Array.iter
    (fun p ->
      let s = Pubsub.Process.subscribe p ~param:cls (fun _ -> incr delivered) in
      Pubsub.Subscription.activate s)
    procs;
  let rng = Rng.create 17 in
  for i = 0 to events - 1 do
    Engine.schedule engine ~delay:(i * 500) (fun () ->
        Pubsub.Process.publish procs.(i mod nodes)
          (Workload.random_event reg rng ~cls ()))
  done;
  Engine.run ~until:3_000_000 engine;
  let s = Net.stats net in
  let ratio = float_of_int !delivered /. float_of_int (events * nodes) in
  let latency = Pubsub.Domain.latency domain in
  ( float_of_int s.Net.sent /. float_of_int events,
    float_of_int s.Net.bytes_sent /. float_of_int events,
    ratio,
    Metric.mean latency,
    Metric.percentile latency 0.99,
    Trace.Counter.value (Trace.counter tr "group.certified.retransmits"),
    Trace.Gauge.peak (Trace.gauge tr "group.total.holdback") )

let run () =
  Workload.table_header
    "E2  delivery-semantics cost ladder (8 nodes, 5% loss, jitter)"
    [ "class"; "msgs/event"; "bytes/event"; "delivery"; "lat-mean";
      "lat-p99"; "cert-rtx"; "holdback-pk" ];
  List.iter
    (fun cls ->
      let msgs, bytes, ratio, mean, p99, rtx, holdback = run_rung cls in
      Fmt.pr "%-15s %10.1f  %11.0f  %7.1f%%  %8.0f  %8.0f  %8d  %11d@." cls
        msgs bytes (100. *. ratio) mean p99 rtx holdback)
    [ "StockQuote"; "ReliableQuote"; "FifoQuote"; "CausalQuote"; "TotalQuote";
      "CertifiedQuote"; "CertFifoQuote"; "CertTotalQuote"; "CausalTotalQuote" ];
  Trace.set_ambient (Trace.create ())
