(* E5 — Gossip dissemination at scale (§4.2, lpbcast [EGH+01]).

   DACE's scalable protocol end: delivery ratio and message cost of
   gossip as a function of fanout and system size, on a 20%-lossy
   network, against reliable flooding (whose cost is quadratic in the
   group size) as the strong-guarantee reference. *)

module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Membership = Tpbs_group.Membership
module Gossip = Tpbs_group.Gossip
module Rbcast = Tpbs_group.Rbcast
module Rng = Tpbs_sim.Rng
module Trace = Tpbs_trace.Trace

let events = 5
let loss = 0.2

let run_gossip ~n ~fanout =
  (* Fresh ambient registry per rung so gauge peaks don't bleed
     between configurations. *)
  let tr = Trace.create () in
  Trace.set_ambient tr;
  let engine = Engine.create ~seed:(1000 + n + fanout) () in
  let net = Net.create ~config:{ Net.default_config with loss } engine in
  let nodes = Array.init n (fun _ -> Net.add_node net) in
  let group = Membership.create net (Array.to_list nodes) in
  let count = ref 0 in
  let rng = Rng.create 3 in
  let protos =
    Array.map
      (fun me ->
        let seed_view =
          List.map (fun k -> nodes.(k)) (Rng.sample_without_replacement rng 4 n)
        in
        Gossip.attach
          ~config:{ Gossip.default_config with fanout }
          group ~me ~name:"e5" ~seed_view
          ~deliver:(fun ~origin:_ _ -> incr count))
      nodes
  in
  for i = 1 to events do
    Gossip.bcast protos.(i mod n) (Printf.sprintf "event-%d" i)
  done;
  Engine.run ~until:240_000 engine;
  Array.iter Gossip.stop protos;
  Engine.run engine;
  let s = Net.stats net in
  (* Every node sets the shared gauge to its own buffer size, so the
     peak is the largest per-node digest buffer seen during the run —
     the protocol's memory footprint. *)
  let seen_peak = Trace.Gauge.peak (Trace.gauge tr "group.gossip.seen") in
  ( float_of_int !count /. float_of_int (n * events),
    float_of_int s.Net.sent /. float_of_int events,
    seen_peak )

let run_flooding ~n =
  let engine = Engine.create ~seed:(2000 + n) () in
  let net = Net.create ~config:{ Net.default_config with loss } engine in
  let nodes = Array.init n (fun _ -> Net.add_node net) in
  let group = Membership.create net (Array.to_list nodes) in
  let count = ref 0 in
  let protos =
    Array.map
      (fun me ->
        Rbcast.attach group ~me ~name:"e5r" ~deliver:(fun ~origin:_ _ ->
            incr count))
      nodes
  in
  for i = 1 to events do
    Rbcast.bcast protos.(i mod n) (Printf.sprintf "event-%d" i)
  done;
  Engine.run engine;
  let s = Net.stats net in
  ( float_of_int !count /. float_of_int (n * events),
    float_of_int s.Net.sent /. float_of_int events )

let run () =
  Workload.table_header
    (Printf.sprintf "E5  gossip delivery ratio vs fanout and size (%.0f%% loss)"
       (100. *. loss))
    [ "nodes"; "fanout"; "delivery"; "msgs/event"; "seen-peak" ];
  List.iter
    (fun n ->
      List.iter
        (fun fanout ->
          let ratio, msgs, seen_peak = run_gossip ~n ~fanout in
          Fmt.pr "%5d  %6d  %7.1f%%  %10.0f  %9d@." n fanout (100. *. ratio)
            msgs seen_peak)
        [ 1; 2; 3; 4; 6 ];
      let ratio, msgs = run_flooding ~n in
      Fmt.pr "%5d  %6s  %7.1f%%  %10.0f  %9s   (reliable flooding reference)@."
        n "flood" (100. *. ratio) msgs "-")
    [ 25; 50; 100; 200 ];
  Trace.set_ambient (Trace.create ())
