(* CRASH — deterministic crash/recovery smoke for CI.

   A 2-member certified channel where the subscriber's frontier store
   is the on-disk segmented log, rigged to lose power after a fixed
   byte budget — the cut lands mid-record, so the reboot exercises the
   whole recovery path: torn-tail truncation, index rebuild, certified
   re-attach + resume, retransmission catch-up. The run fails hard
   unless every published message was delivered exactly once, and
   exports its trace to $TPBS_TRACE_FILE so CI can additionally assert
   (via `tpbs_report --require`) that the recovery counters actually
   moved. *)

module Log = Tpbs_store.Log
module Stable = Tpbs_sim.Stable
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Membership = Tpbs_group.Membership
module Certified = Tpbs_group.Certified
module Trace = Tpbs_trace.Trace
module Report = Tpbs_trace.Report

let fresh_dir () =
  let f = Filename.temp_file "tpbs_smoke" "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let msgs = 24

let run () =
  let engine = Engine.create ~seed:2718 () in
  let tr = Trace.create ~clock:(fun () -> Engine.now engine) () in
  let buf = Buffer.create (1 lsl 14) in
  Trace.set_sink tr (Some buf);
  Trace.set_detailed tr true;
  Trace.set_ambient tr;
  let net = Net.create engine in
  let n0 = Net.add_node net in
  let n1 = Net.add_node net in
  let group = Membership.create net [ n0; n1 ] in
  let pub =
    Certified.attach group ~me:n0 ~name:"q" ~storage:(Stable.create ())
      ~retry_period:2000
      ~deliver:(fun ~origin:_ _ -> ())
      ()
  in
  let delivered = ref 0 in
  let deliver ~origin:_ _ = incr delivered in
  let dir = fresh_dir () in
  let log = ref (Log.open_ ~segment_bytes:512 ~dir ()) in
  (* Power cut after 333 appended bytes: mid-way through a frontier
     record around the 8th message. *)
  Log.set_fault !log ~after_bytes:333;
  let sub =
    ref
      (Certified.attach group ~me:n1 ~name:"q" ~storage:(Log.stable !log)
         ~retry_period:2000 ~deliver ())
  in
  for i = 1 to msgs do
    Engine.schedule engine ~delay:(i * 1000) (fun () ->
        Certified.bcast pub (Printf.sprintf "trade-%02d" i))
  done;
  let crashes = ref 0 in
  let rec drive () =
    match Engine.run ~until:1_000_000 engine with
    | () -> ()
    | exception Log.Injected_crash ->
        incr crashes;
        Net.crash net n1;
        Log.close !log;
        log := Log.open_ ~segment_bytes:512 ~dir ();
        Net.recover net n1;
        sub :=
          Certified.attach group ~me:n1 ~name:"q" ~storage:(Log.stable !log)
            ~retry_period:2000 ~deliver ();
        Certified.resume !sub;
        drive ()
  in
  drive ();
  let st = Log.stats !log in
  Log.close !log;
  rm_rf dir;
  Trace.metrics_to_jsonl tr buf;
  Trace.set_ambient (Trace.create ());
  let path =
    match Sys.getenv_opt "TPBS_TRACE_FILE" with
    | Some p -> p
    | None -> "tpbs_trace.jsonl"
  in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "@.CRASH  certified delivery across an injected power cut@.";
  Fmt.pr
    "crashes=%d delivered=%d/%d recovered=%d torn_bytes=%d retransmits=%d@."
    !crashes !delivered msgs st.Log.recovered_records st.Log.torn_bytes
    (Certified.retransmits pub);
  Fmt.pr "trace -> %s@." path;
  if !crashes <> 1 then failwith "crash smoke: expected exactly one power cut";
  if !delivered <> msgs then
    failwith
      (Printf.sprintf "crash smoke: delivered %d of %d messages" !delivered
         msgs);
  if Certified.log_size pub <> 0 then
    failwith "crash smoke: publisher log not trimmed after full ack"
