(* Experiment harness: regenerates every table of EXPERIMENTS.md.

   dune exec bench/main.exe            -- run everything
   dune exec bench/main.exe -- e3 e5   -- selected experiments *)

let experiments =
  [ "e1", E1_routing.run; "e2", E2_semantics.run; "e3", E3_factoring.run;
    "e4", E4_remote_filtering.run; "e5", E5_gossip.run; "e6", E6_rmi.run;
    "e7", E7_paradigms.run; "e8", E8_dgc.run; "e9", E9_threading.run;
    "e10", E10_psc.run; "ablations", A1_ablations.run; "micro", Micro.run;
    "obs", Obs.run ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt (String.lowercase_ascii name) experiments with
      | Some run -> run ()
      | None ->
          Fmt.epr "unknown experiment %s (known: %s)@." name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested
