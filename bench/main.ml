(* Experiment harness: regenerates every table of EXPERIMENTS.md.

   dune exec bench/main.exe                    -- run everything
   dune exec bench/main.exe -- e3 e5           -- selected experiments
   dune exec bench/main.exe -- --json a4 micro -- also dump BENCH_10.json
   dune exec bench/main.exe -- --guard-a4 3.0 a4
                                               -- CI perf smoke: fail if the
                                                  COW arm at 64 subs/node
                                                  exceeds 3x the shared arm
   dune exec bench/main.exe -- --guard-shard 2.0 e1
                                               -- CI scaling smoke: fail if the
                                                  4-shard E1b dispatch run is
                                                  under 2x the 1-shard run
   dune exec bench/main.exe -- --guard-cover 50 e3
                                               -- CI covering smoke: fail if the
                                                  E3c install scan suppresses
                                                  less than 50% of a highly
                                                  redundant population
   dune exec bench/main.exe -- --guard-fanout 2.0 e13
                                               -- CI fan-out smoke: fail if the
                                                  shared-frame arm at 64 subs
                                                  is under 2x the per-session
                                                  encode baseline *)

let experiments =
  [ "e1", E1_routing.run; "e2", E2_semantics.run; "e3", E3_factoring.run;
    "e4", E4_remote_filtering.run; "e5", E5_gossip.run; "e6", E6_rmi.run;
    "e7", E7_paradigms.run; "e8", E8_dgc.run; "e9", E9_threading.run;
    "e10", E10_psc.run; "e11", E11_store.run; "ablations", A1_ablations.run;
    "a4", A1_ablations.a4; "micro", Micro.run; "obs", Obs.run;
    "crash", Crash_smoke.run; "shard", Shard_smoke.run;
    "e13", E13_fanout.run ]

let json_path = "BENCH_10.json"

let guard_a4 limit =
  match Workload.json_find "a4" with
  | None ->
      Fmt.epr "--guard-a4: experiment a4 was not run@.";
      exit 1
  | Some (_, rows) -> (
      let ratio_at_64 =
        List.find_map
          (function
            | Workload.J_int 64 :: _ as row -> (
                match List.nth_opt row 6 with
                | Some (Workload.J_float r) -> Some r
                | _ -> None)
            | _ -> None)
          rows
      in
      match ratio_at_64 with
      | None ->
          Fmt.epr "--guard-a4: no 64-subs row in the a4 table@.";
          exit 1
      | Some r when r > limit ->
          Fmt.epr
            "--guard-a4: cow/shared at 64 subs/node is %.2fx, above the \
             %.2fx budget@."
            r limit;
          exit 1
      | Some r ->
          Fmt.pr "a4 guard: cow/shared at 64 subs/node = %.2fx (budget \
                  %.2fx)@."
            r limit)

let guard_shard floor =
  match Workload.json_find "e1_sharded" with
  | None ->
      Fmt.epr "--guard-shard: the E1b sharded table was not produced (run e1)@.";
      exit 1
  | Some (_, rows) -> (
      let speedup_at_4 =
        List.find_map
          (function
            | Workload.J_int 4 :: _ as row -> (
                match List.nth_opt row 4 with
                | Some (Workload.J_float s) -> Some s
                | _ -> None)
            | _ -> None)
          rows
      in
      match speedup_at_4 with
      | None ->
          Fmt.epr "--guard-shard: no 4-shard row in the E1b table@.";
          exit 1
      | Some s when s < floor ->
          Fmt.epr
            "--guard-shard: 4-shard dispatch throughput is %.2fx the 1-shard \
             run, below the %.2fx floor@."
            s floor;
          exit 1
      | Some s ->
          Fmt.pr "shard guard: 4-shard dispatch = %.2fx 1-shard (floor %.2fx)@."
            s floor)

let guard_cover floor =
  match Workload.json_find "e3c_suppression" with
  | None ->
      Fmt.epr "--guard-cover: the E3c suppression table was not produced \
               (run e3)@.";
      exit 1
  | Some (_, rows) -> (
      (* last row = largest population at the highest redundancy *)
      let rate =
        match List.rev rows with
        | last :: _ -> (
            match List.nth_opt last 4 with
            | Some (Workload.J_float r) -> Some r
            | _ -> None)
        | [] -> None
      in
      match rate with
      | None ->
          Fmt.epr "--guard-cover: no rows in the E3c suppression table@.";
          exit 1
      | Some r when r < floor ->
          Fmt.epr
            "--guard-cover: install scan suppressed %.0f%% of the redundant \
             population, below the %.0f%% floor@."
            r floor;
          exit 1
      | Some r ->
          Fmt.pr "cover guard: %.0f%% of redundant subs suppressed (floor \
                  %.0f%%)@."
            r floor)

let guard_fanout floor =
  match Workload.json_find "e13_fanout" with
  | None ->
      Fmt.epr "--guard-fanout: the E13 fan-out table was not produced \
               (run e13)@.";
      exit 1
  | Some (_, rows) -> (
      (* events/s of each arm at 64 subscribers *)
      let at_64 arm =
        List.find_map
          (function
            | Workload.J_int 64 :: Workload.J_str a :: Workload.J_float e :: _
              when a = arm ->
                Some e
            | _ -> None)
          rows
      in
      match at_64 "shared", at_64 "persession" with
      | Some s, Some p when p > 0.0 ->
          let ratio = s /. p in
          if ratio < floor then begin
            Fmt.epr
              "--guard-fanout: shared-frame fan-out at 64 subs is %.2fx the \
               per-session baseline, below the %.2fx floor@."
              ratio floor;
            exit 1
          end
          else
            Fmt.pr
              "fanout guard: shared/persession at 64 subs = %.2fx (floor \
               %.2fx)@."
              ratio floor
      | _ ->
          Fmt.epr "--guard-fanout: missing 64-subs rows in the E13 table@.";
          exit 1)

let () =
  let rec parse json guard shard cover fanout names = function
    | [] -> json, guard, shard, cover, fanout, List.rev names
    | "--json" :: rest -> parse true guard shard cover fanout names rest
    | "--guard-a4" :: limit :: rest -> (
        match float_of_string_opt limit with
        | Some l -> parse json (Some l) shard cover fanout names rest
        | None ->
            Fmt.epr "--guard-a4 expects a ratio, got %s@." limit;
            exit 1)
    | [ "--guard-a4" ] ->
        Fmt.epr "--guard-a4 expects a ratio@.";
        exit 1
    | "--guard-shard" :: floor :: rest -> (
        match float_of_string_opt floor with
        | Some f -> parse json guard (Some f) cover fanout names rest
        | None ->
            Fmt.epr "--guard-shard expects a ratio, got %s@." floor;
            exit 1)
    | [ "--guard-shard" ] ->
        Fmt.epr "--guard-shard expects a ratio@.";
        exit 1
    | "--guard-cover" :: floor :: rest -> (
        match float_of_string_opt floor with
        | Some f -> parse json guard shard (Some f) fanout names rest
        | None ->
            Fmt.epr "--guard-cover expects a percentage, got %s@." floor;
            exit 1)
    | [ "--guard-cover" ] ->
        Fmt.epr "--guard-cover expects a percentage@.";
        exit 1
    | "--guard-fanout" :: floor :: rest -> (
        match float_of_string_opt floor with
        | Some f -> parse json guard shard cover (Some f) names rest
        | None ->
            Fmt.epr "--guard-fanout expects a ratio, got %s@." floor;
            exit 1)
    | [ "--guard-fanout" ] ->
        Fmt.epr "--guard-fanout expects a ratio@.";
        exit 1
    | name :: rest -> parse json guard shard cover fanout (name :: names) rest
  in
  let json, guard, shard, cover, fanout, requested =
    parse false None None None None [] (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match requested with [] -> List.map fst experiments | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt (String.lowercase_ascii name) experiments with
      | Some run -> run ()
      | None ->
          Fmt.epr "unknown experiment %s (known: %s)@." name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested;
  if json then Workload.write_json json_path;
  Option.iter guard_a4 guard;
  Option.iter guard_shard shard;
  Option.iter guard_cover cover;
  Option.iter guard_fanout fanout
