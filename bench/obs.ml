(* OBS — traced end-to-end run for the observability layer.

   A trimmed mixed workload exercising every instrumented layer at
   once: mixed-QoS publishing over a lossy net, a crash/recovery, an
   RMI lease with adopt/release churn, and a call that times out.
   The full JSONL trace (events ++ metrics) is written to
   $TPBS_TRACE_FILE (default "tpbs_trace.jsonl") so it can be fed to
   bin/tpbs_report; a summary is printed inline. CI pipes this file
   through `tpbs_report --check` as a smoke test. *)

module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Trace = Tpbs_trace.Trace
module Report = Tpbs_trace.Report
module Pubsub = Tpbs_core.Pubsub
module Rmi = Tpbs_rmi.Rmi
module Value = Tpbs_serial.Value
module Rng = Tpbs_sim.Rng

let nodes = 6
let events = 120

let run () =
  let reg = Workload.registry () in
  let engine = Engine.create ~seed:90210 () in
  let tr = Trace.create ~clock:(fun () -> Engine.now engine) () in
  let buf = Buffer.create (1 lsl 16) in
  Trace.set_sink tr (Some buf);
  Trace.set_detailed tr true;
  Trace.set_ambient tr;
  let net =
    Net.create ~config:{ latency = 900; jitter = 300; loss = 0.05 } engine
  in
  let domain = Pubsub.Domain.create reg net in
  let procs =
    Array.init nodes (fun _ -> Pubsub.Process.create domain (Net.add_node net))
  in
  let node_ids = Array.map Pubsub.Process.node procs in
  (* Mixed subscriptions: a broad one, plus one per QoS rung. *)
  List.iter
    (fun (i, param) ->
      Pubsub.Subscription.activate
        (Pubsub.Process.subscribe procs.(i) ~param (fun _ -> ())))
    [ 1, "StockObvent"; 2, "FifoQuote"; 3, "TotalQuote"; 4, "CertifiedQuote";
      5, "StockQuote" ];
  let rng = Rng.create 7 in
  let classes =
    [| "StockQuote"; "FifoQuote"; "TotalQuote"; "CertifiedQuote" |]
  in
  for i = 0 to events - 1 do
    Engine.schedule engine ~delay:(i * 700) (fun () ->
        let p = i mod nodes in
        if Net.alive net node_ids.(p) then
          Pubsub.Process.publish procs.(p)
            (Workload.random_event reg rng ~cls:classes.(i mod 4) ()))
  done;
  (* Crash a subscriber mid-run and bring it back. *)
  Engine.schedule engine ~delay:20_000 (fun () -> Net.crash net node_ids.(3));
  Engine.schedule engine ~delay:45_000 (fun () ->
      Net.recover net node_ids.(3);
      Pubsub.Process.resume procs.(3));
  (* RMI on the same nodes: lease churn plus a timed-out call. *)
  let rts =
    Array.map (fun me -> Rmi.attach ~dgc:(Rmi.Lease 20_000) net ~me) node_ids
  in
  let obj =
    Rmi.export rts.(0) ~iface:"StockMarket" (fun ~meth:_ ~args ->
        match args with [ v ] -> v | _ -> Value.Null)
  in
  Rmi.adopt_proxy rts.(1) obj;
  Engine.schedule engine ~delay:30_000 (fun () ->
      Rmi.release_proxy rts.(1) obj);
  Engine.schedule engine ~delay:40_000 (fun () -> Rmi.adopt_proxy rts.(1) obj);
  Engine.schedule engine ~delay:10_000 (fun () ->
      Rmi.invoke rts.(2) obj ~meth:"echo" ~args:[ Value.Int 1 ] ~k:ignore);
  (* This call lands while node 3 is crashed: its reply never comes. *)
  let dead_obj =
    Rmi.export rts.(3) ~iface:"StockMarket" (fun ~meth:_ ~args:_ -> Value.Null)
  in
  Engine.schedule engine ~delay:25_000 (fun () ->
      Rmi.invoke rts.(1) dead_obj ~meth:"echo" ~args:[] ~k:ignore);
  Engine.run ~until:400_000 engine;
  Trace.metrics_to_jsonl tr buf;
  Trace.set_ambient (Trace.create ());
  let path =
    match Sys.getenv_opt "TPBS_TRACE_FILE" with
    | Some p -> p
    | None -> "tpbs_trace.jsonl"
  in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Fmt.pr "@.OBS  traced mixed run (%d nodes, %d events, crash+RMI churn)@."
    nodes events;
  Fmt.pr "trace: %d JSONL lines -> %s@." (List.length lines) path;
  Fmt.pr "%s@." (Report.summarize lines)
