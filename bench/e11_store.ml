(* E11 — the durable segmented store: recovery-scan cost as the log
   grows, and certified replay throughput.

   Recovery is the latency a rebooting node pays before it can serve:
   the scan re-reads every surviving segment, CRC-checks each record,
   and rebuilds the in-memory index. It should be linear in surviving
   bytes — and compaction is what keeps surviving bytes bounded, so we
   report both the raw scan rate and the effect of merging first.

   Replay is the read path of retained history (§3.4.1's durable
   subscriptions taken further): a late subscriber asks every member
   for its log from an offset and drains it through the certified
   channel. We report end-to-end drain throughput in CPU terms plus
   the virtual-time span of the catch-up. *)

module Log = Tpbs_store.Log
module Stable = Tpbs_sim.Stable
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Membership = Tpbs_group.Membership
module Certified = Tpbs_group.Certified
module Rng = Tpbs_sim.Rng

let fresh_dir () =
  let f = Filename.temp_file "tpbs_bench" "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

(* One row: write [n] records (cert-style keys, 5% deletes, heavy
   overwrite), close, re-open with a timer around the recovery scan. *)
let recovery_row ~compact n =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let t = Log.open_ ~segment_bytes:(1 lsl 18) ~auto_compact:false ~dir () in
  let rng = Rng.create 7 in
  for i = 1 to n do
    let k = Printf.sprintf "cert:q:log:%d" (Rng.int rng (max 1 (n / 2))) in
    if Rng.bool rng 0.05 then Log.delete t k
    else Log.put t k (Printf.sprintf "payload-%08d" i)
  done;
  if compact then Log.compact t;
  let disk = (Log.stats t).Log.disk_bytes in
  Log.close t;
  let t0 = Sys.time () in
  let t = Log.open_ ~segment_bytes:(1 lsl 18) ~auto_compact:false ~dir () in
  let dt = Sys.time () -. t0 in
  let st = Log.stats t in
  Log.close t;
  (disk, st.Log.segments, st.Log.recovered_records, dt)

(* Certified replay drain: a 2-member group retains [n] acknowledged
   messages; a fresh replay from offset 0 drains them all. *)
let replay_row n =
  let engine = Engine.create ~seed:11 () in
  let net = Net.create engine in
  let n0 = Net.add_node net in
  let n1 = Net.add_node net in
  let group = Membership.create net [ n0; n1 ] in
  let pub =
    Certified.attach group ~me:n0 ~name:"q" ~storage:(Stable.create ())
      ~retain_acked:true
      ~deliver:(fun ~origin:_ _ -> ())
      ()
  in
  let sub =
    Certified.attach group ~me:n1 ~name:"q" ~storage:(Stable.create ())
      ~retain_acked:true
      ~deliver:(fun ~origin:_ _ -> ())
      ()
  in
  for i = 1 to n do
    Engine.schedule engine ~delay:i (fun () ->
        Certified.bcast pub (Printf.sprintf "payload-%08d" i))
  done;
  Engine.run ~until:10_000_000 engine;
  let start_vt = Engine.now engine in
  let got = ref 0 in
  let done_vt = ref start_vt in
  let t0 = Sys.time () in
  Certified.replay sub ~from:0
    ~on_complete:(fun () -> done_vt := Engine.now engine)
    ~sink:(fun ~origin:_ ~seq:_ _ -> incr got)
    ();
  Engine.run ~until:100_000_000 engine;
  let dt = Sys.time () -. t0 in
  (!got, !done_vt - start_vt, dt)

let run () =
  Workload.table_header
    "E11  recovery scan vs log size (256 KiB segments, 5% deletes)"
    [ "records"; "disk(KiB)"; "segs"; "survivors"; "recover(ms)"; "MiB/s" ];
  Workload.json_table ~key:"e11_recovery"
    ~cols:
      [ "records"; "compacted"; "disk_kib"; "segments"; "survivors";
        "recover_ms"; "mib_per_s" ];
  List.iter
    (fun (n, compact) ->
      let disk, segs, survivors, dt = recovery_row ~compact n in
      let mibs = float_of_int disk /. 1048576. /. Float.max 1e-9 dt in
      Fmt.pr "%7d%s  %9d  %4d  %9d  %11.2f  %6.0f@." n
        (if compact then "*" else " ")
        (disk / 1024) segs survivors (dt *. 1e3) mibs;
      Workload.json_row ~key:"e11_recovery"
        [ J_int n; J_int (if compact then 1 else 0); J_int (disk / 1024);
          J_int segs; J_int survivors; J_float (dt *. 1e3); J_float mibs ])
    [ 1_000, false; 5_000, false; 20_000, false; 50_000, false;
      50_000, true ];
  Fmt.pr "(* = merged to the base snapshot before reopening)@.";
  Workload.table_header "E11  certified replay drain (2 members, retained log)"
    [ "messages"; "replayed"; "vticks"; "cpu(ms)"; "kmsg/s" ];
  Workload.json_table ~key:"e11_replay"
    ~cols:[ "messages"; "replayed"; "vticks"; "cpu_ms"; "kmsg_per_s" ];
  List.iter
    (fun n ->
      let got, vticks, dt = replay_row n in
      let kms = float_of_int got /. 1e3 /. Float.max 1e-9 dt in
      Fmt.pr "%8d  %8d  %7d  %8.2f  %7.0f@." n got vticks (dt *. 1e3) kms;
      Workload.json_row ~key:"e11_replay"
        [ J_int n; J_int got; J_int vticks; J_float (dt *. 1e3);
          J_float kms ])
    [ 500; 2_000; 8_000 ]
