(* E4 — Remote vs local filtering (§3.3.3–3.3.4).

   The motivation for capturing filters as deferred code is to apply
   them on foreign hosts and stop uninteresting events before they
   cross the network. We sweep filter selectivity and compare:

   - local:  best-effort broadcast to every subscriber node, filter
             evaluated at the subscriber;
   - remote: publisher → broker; the broker's compound filter decides
             which nodes receive the event.

   The shape: at low selectivity remote filtering slashes messages and
   bytes; as selectivity approaches 1 the broker only adds its
   indirection hop (the crossover the paper implies). *)

module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Pubsub = Tpbs_core.Pubsub
module Fspec = Tpbs_core.Fspec
module Rng = Tpbs_sim.Rng
module Value = Tpbs_serial.Value

let subscribers = 20
let events = 100

(* Filters of the form price < k: selectivity is k/200 for uniform
   prices in [0, 200). *)
let run_arm ~selectivity ~use_broker =
  let reg = Workload.registry () in
  let engine = Engine.create ~seed:31337 () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in
  let publisher = Pubsub.Process.create domain (Net.add_node net) in
  let subs =
    Array.init subscribers (fun _ ->
        Pubsub.Process.create domain (Net.add_node net))
  in
  let broker_proc =
    if use_broker then begin
      let p = Pubsub.Process.create domain (Net.add_node net) in
      Pubsub.make_broker domain p;
      Some p
    end
    else None
  in
  ignore broker_proc;
  let delivered = ref 0 in
  let threshold = selectivity *. 200. in
  Array.iter
    (fun p ->
      let s =
        Pubsub.Process.subscribe p ~param:"StockQuote"
          ~filter:
            (Fspec.tree
               Tpbs_filter.Expr.(getter [ "getPrice" ] <. float threshold))
          (fun _ -> incr delivered)
      in
      Pubsub.Subscription.activate s)
    subs;
  (* Let the subscription control messages reach the broker. *)
  Engine.run engine;
  Net.reset_stats net;
  let rng = Rng.create 5 in
  for i = 0 to events - 1 do
    Engine.schedule engine ~delay:(i * 300) (fun () ->
        Pubsub.Process.publish publisher
          (Workload.random_event reg rng ~cls:"StockQuote" ()))
  done;
  Engine.run engine;
  let s = Net.stats net in
  ( float_of_int s.Net.sent /. float_of_int events,
    float_of_int s.Net.bytes_sent /. float_of_int events,
    float_of_int !delivered /. float_of_int events )

(* Second table: several filtering hosts share the subscription load
   (the paper's "filters of several subscribers gathered on individual
   hosts", plural). *)
let run_broker_scaling ~brokers =
  let reg = Workload.registry () in
  let engine = Engine.create ~seed:4242 () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in
  let publisher = Pubsub.Process.create domain (Net.add_node net) in
  let subs =
    Array.init 40 (fun _ -> Pubsub.Process.create domain (Net.add_node net))
  in
  for _ = 1 to brokers do
    Pubsub.add_broker domain (Pubsub.Process.create domain (Net.add_node net))
  done;
  let rng = Rng.create 19 in
  let delivered = ref 0 in
  Array.iter
    (fun p ->
      let threshold = 10. +. Rng.float rng 50. in
      let s =
        Pubsub.Process.subscribe p ~param:"StockQuote"
          ~filter:
            (Fspec.tree
               Tpbs_filter.Expr.(getter [ "getPrice" ] <. float threshold))
          (fun _ -> incr delivered)
      in
      Pubsub.Subscription.activate s)
    subs;
  Engine.run engine;
  Net.reset_stats net;
  for i = 0 to 99 do
    Engine.schedule engine ~delay:(i * 300) (fun () ->
        Pubsub.Process.publish publisher
          (Workload.random_event reg rng ~cls:"StockQuote" ()))
  done;
  Engine.run engine;
  let per_broker = Pubsub.per_broker_filter_stats domain in
  let max_owned =
    List.fold_left
      (fun acc st -> max acc st.Tpbs_filter.Factored.subscriptions)
      0 per_broker
  in
  let max_events =
    List.fold_left
      (fun acc st -> max acc st.Tpbs_filter.Factored.events_matched)
      0 per_broker
  in
  let routes = Pubsub.per_broker_routing_stats domain in
  let route_lookups =
    List.fold_left (fun acc st -> acc + st.Tpbs_core.Routing.lookups) 0 routes
  in
  let route_builds =
    List.fold_left (fun acc st -> acc + st.Tpbs_core.Routing.builds) 0 routes
  in
  ( float_of_int (Net.stats net).Net.sent /. 100.,
    max_owned,
    max_events,
    !delivered,
    route_builds,
    route_lookups )

(* Third table: subscription-aware (targeted) dissemination vs plain
   broadcast, varying how many of the nodes are interested. *)
let run_targeted ~interested ~total ~targeted =
  let reg = Workload.registry () in
  let engine = Engine.create ~seed:77 () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in
  if targeted then Pubsub.Domain.enable_targeted_dissemination domain;
  let publisher = Pubsub.Process.create domain (Net.add_node net) in
  let procs =
    Array.init total (fun _ -> Pubsub.Process.create domain (Net.add_node net))
  in
  let delivered = ref 0 in
  for i = 0 to interested - 1 do
    Pubsub.Subscription.activate
      (Pubsub.Process.subscribe procs.(i) ~param:"StockQuote" (fun _ ->
           incr delivered))
  done;
  Engine.run engine;
  Net.reset_stats net;
  let rng = Rng.create 31 in
  for _ = 1 to 50 do
    Pubsub.Process.publish publisher
      (Workload.random_event reg rng ~cls:"StockQuote" ())
  done;
  Engine.run engine;
  float_of_int (Net.stats net).Net.sent /. 50., !delivered

let run () =
  Workload.table_header
    (Printf.sprintf
       "E4  remote (broker) vs local filtering, %d subscribers" subscribers)
    [ "selectivity"; "msgs/evt local"; "msgs/evt remote"; "bytes local";
      "bytes remote"; "deliveries/evt" ];
  List.iter
    (fun selectivity ->
      let lm, lb, ld = run_arm ~selectivity ~use_broker:false in
      let rm, rb, rd = run_arm ~selectivity ~use_broker:true in
      if Float.abs (ld -. rd) > 0.5 then
        Fmt.pr "    (delivery mismatch: local %.1f vs remote %.1f)@." ld rd;
      Fmt.pr "%10.2f  %14.1f  %15.1f  %11.0f  %12.0f  %14.1f@." selectivity lm
        rm lb rb rd)
    [ 0.01; 0.05; 0.1; 0.25; 0.5; 0.75; 1.0 ];
  Workload.table_header
    "E4b  scaling the filtering hosts (40 subscribers, 100 events)"
    [ "brokers"; "msgs/evt"; "max subs/host"; "max match-work/host";
      "deliveries"; "route builds/lookups" ];
  List.iter
    (fun brokers ->
      let msgs, max_owned, max_events, delivered, builds, lookups =
        run_broker_scaling ~brokers
      in
      Fmt.pr "%7d  %8.1f  %13d  %19d  %10d  %11d/%d@." brokers msgs max_owned
        max_events delivered builds lookups)
    [ 1; 2; 4 ];
  Workload.table_header
    "E4c  subscription-aware (targeted) vs broadcast dissemination (50 nodes)"
    [ "interested"; "bcast msgs/evt"; "targeted msgs/evt"; "deliveries" ];
  List.iter
    (fun interested ->
      let b_msgs, b_del = run_targeted ~interested ~total:50 ~targeted:false in
      let t_msgs, t_del = run_targeted ~interested ~total:50 ~targeted:true in
      if b_del <> t_del then
        Fmt.pr "    (delivery mismatch: %d vs %d)@." b_del t_del;
      Fmt.pr "%10d  %14.1f  %17.1f  %10d@." interested b_msgs t_msgs t_del)
    [ 1; 5; 15; 50 ]
