(* E13 — broker fan-out cost vs subscriber count (encode-once frames).

   One in-process tpbsd broker, one raw publisher and K raw subscriber
   connections over real loopback sockets, all pumped from a single
   thread. Each arm publishes P events of the same class with no
   filters, so every event fans out to all K subscribers; the arms
   differ only in [Broker.config.shared_frames]:

     shared      Deliver encoded + framed + CRC'd once per publish,
                 the same bytes queued on every session (the default)
     persession  the legacy baseline: one full encode per subscriber

   Reported per (K, arm): delivered events/s and payload MB/s over
   broker time (the fan-out phase alone — subscriber drain is
   byte-identical in both arms and off-box in a deployment), GC
   allocated bytes per delivered event, write-batching factor
   (frames/syscall), and the Deliver encode count — the headline
   number, publishes x K in the baseline and exactly publishes in the
   shared arm, independent of K.

   A final fresh-trace gate run (64 subscribers, shared arm, 500
   publishes) exports its metrics to $TPBS_TRACE_FILE so CI can assert
   the counters exactly (tpbs_report --require-eq). *)

module Broker = Tpbs_transport.Broker
module Conn = Tpbs_transport.Conn
module Proto = Tpbs_transport.Proto
module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec
module Trace = Tpbs_trace.Trace

let cls = "bench/Fanout"
let pad_bytes = 8192

(* The envelope the engine would ship: [publish_time; origin; eseq;
   obvent_bytes] with a padded obvent — realistic shape, fixed size. *)
let envelope ~eseq =
  let obvent =
    Codec.encode
      (Value.Obj
         {
           cls;
           fields =
             [ ("seq", Value.Int eseq); ("pad", Value.Str (String.make pad_bytes 'x')) ];
         })
  in
  Codec.encode
    (Value.List [ Value.Int 0; Value.Int 1; Value.Int eseq; Value.Str obvent ])

type client = { conn : Conn.t; mutable credit : int }

let dial ~port ~id ~window =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
  let conn = Conn.create fd in
  Conn.send conn (Proto.Hello { client = id; window });
  { conn; credit = 0 }

(* One measured run: returns (delivered, payload_bytes, broker_seconds).

   Time is split per loop turn: the broker/publisher phase
   (Broker.poll — routing, encode, enqueue, kernel handoff — plus the
   publisher pump) is the fan-out cost under test; the subscriber
   drain phase (read + CRC check + decode) is byte-identical in both
   arms and belongs to remote subscriber machines in a deployment, so
   it is kept off the broker clock. *)
let run_one ~subs ~shared ~pubs =
  let config =
    { Broker.default_config with warmup_ms = 0; shared_frames = shared }
  in
  let broker = Broker.create ~config ~port:0 () in
  let port = Broker.port broker in
  (* subscribers first, each with a window large enough to never need
     replenishment — this measures fan-out, not credit chatter *)
  let sub_clients =
    List.init subs (fun k ->
        (* accept as we dial, or a big K overruns the listen backlog *)
        ignore (Broker.poll broker ~timeout_ms:0 ());
        let c = dial ~port ~id:(Printf.sprintf "sub-%d" k) ~window:max_int in
        Conn.send c.conn
          (Proto.Sub { sid = k; param = cls; filter = Value.Null });
        ignore (Conn.flush c.conn);
        c)
  in
  let pub = dial ~port ~id:"bench-pub" ~window:0 in
  Conn.send pub.conn (Proto.Advertise { cls; supers = [] });
  ignore (Conn.flush pub.conn);
  (* let the broker take everyone in before the clock starts *)
  for _ = 1 to 50 do
    ignore (Broker.poll broker ~timeout_ms:0 ())
  done;
  let delivered = ref 0 in
  let payload_bytes = ref 0 in
  let sent = ref 0 in
  let drain_sub c =
    match Conn.recv c.conn with
    | `Ok ->
        let continue = ref true in
        while !continue do
          match Conn.pop_view c.conn with
          | Conn.View (Proto.V_deliver { envelope; _ }) ->
              incr delivered;
              payload_bytes := !payload_bytes + envelope.Proto.sl_len
          | Conn.View _ -> ()
          | Conn.View_nothing -> continue := false
          | Conn.View_bad reason -> failwith ("e13: subscriber saw " ^ reason)
        done
    | `Blocked -> ()
    | `Closed reason -> failwith ("e13: subscriber lost broker: " ^ reason)
  in
  let pump_pub () =
    while pub.credit > 0 && !sent < pubs do
      Conn.send pub.conn
        (Proto.Pub { pseq = !sent; cls; envelope = envelope ~eseq:!sent });
      incr sent;
      pub.credit <- pub.credit - 1
    done;
    ignore (Conn.flush pub.conn);
    match Conn.recv pub.conn with
    | `Ok ->
        let continue = ref true in
        while !continue do
          match Conn.pop pub.conn with
          | Conn.Msg (Proto.Welcome { window }) -> pub.credit <- window
          | Conn.Msg (Proto.Credit { n }) -> pub.credit <- pub.credit + n
          | Conn.Msg _ -> ()
          | Conn.Nothing -> continue := false
          | Conn.Bad reason -> failwith ("e13: publisher saw " ^ reason)
        done
    | `Blocked -> ()
    | `Closed reason -> failwith ("e13: publisher lost broker: " ^ reason)
  in
  let expect = pubs * subs in
  let broker_time = ref 0.0 in
  let last_progress = ref (Unix.gettimeofday (), 0) in
  while !delivered < expect do
    let t0 = Unix.gettimeofday () in
    ignore (Broker.poll broker ~timeout_ms:0 ());
    pump_pub ();
    broker_time := !broker_time +. (Unix.gettimeofday () -. t0);
    List.iter drain_sub sub_clients;
    let stamp, seen = !last_progress in
    if !delivered > seen then last_progress := (Unix.gettimeofday (), !delivered)
    else if Unix.gettimeofday () -. stamp > 10.0 then
      failwith
        (Printf.sprintf "e13: stalled at %d/%d deliveries" !delivered expect)
  done;
  List.iter (fun c -> Conn.close c.conn) sub_clients;
  Conn.close pub.conn;
  Broker.stop broker;
  (!delivered, !payload_bytes, !broker_time)

let counter tr name = Trace.Counter.value (Trace.counter tr name)

(* Run one (K, arm) cell under a fresh ambient registry so the
   transport counters and GC numbers belong to this cell alone. *)
let cell ~subs ~shared ~pubs =
  let tr = Trace.create () in
  Trace.set_ambient tr;
  let a0 = Gc.allocated_bytes () in
  let delivered, payload, dt = run_one ~subs ~shared ~pubs in
  let alloc = Gc.allocated_bytes () -. a0 in
  let frames = counter tr "transport.frames_sent" in
  let syscalls = counter tr "transport.write_syscalls" in
  let encodes = counter tr "transport.deliver_encodes" in
  Trace.set_ambient (Trace.create ());
  let evps = float_of_int delivered /. dt in
  let mbps = float_of_int payload /. dt /. 1048576. in
  let alloc_pe = alloc /. float_of_int delivered in
  let fps =
    if syscalls = 0 then 0.0 else float_of_int frames /. float_of_int syscalls
  in
  (evps, mbps, alloc_pe, fps, encodes)

let axis = [ 1; 8; 64; 256 ]
let pubs_for subs = max 400 (min 4000 (120_000 / subs))

let run () =
  Workload.table_header "E13: broker fan-out, encode-once vs per-session"
    [ "subs"; "arm"; "events/s"; "MB/s"; "alloc/event(B)"; "frames/syscall";
      "deliver_encodes" ];
  Workload.json_table ~key:"e13_fanout"
    ~cols:
      [ "subs"; "arm"; "events_per_s"; "mb_per_s"; "alloc_per_event";
        "frames_per_syscall"; "deliver_encodes" ];
  List.iter
    (fun subs ->
      let pubs = pubs_for subs in
      List.iter
        (fun (arm, shared) ->
          let evps, mbps, alloc_pe, fps, encodes = cell ~subs ~shared ~pubs in
          Fmt.pr "%4d  %-10s  %10.0f  %6.1f  %10.0f  %6.1f  %8d@." subs arm
            evps mbps alloc_pe fps encodes;
          Workload.json_row ~key:"e13_fanout"
            [ Workload.J_int subs; Workload.J_str arm; Workload.J_float evps;
              Workload.J_float mbps; Workload.J_float alloc_pe;
              Workload.J_float fps; Workload.J_int encodes ])
        [ ("persession", false); ("shared", true) ])
    axis;
  (* fresh-trace gate run for CI: 64 subscribers, shared arm, exactly
     500 publishes — transport.deliver_encodes must equal 500 (not
     500 x 64) and transport.fanout_shared must equal 32000 *)
  let tr = Trace.create () in
  Trace.set_ambient tr;
  let delivered, _, _ = run_one ~subs:64 ~shared:true ~pubs:500 in
  let buf = Buffer.create 4096 in
  Trace.metrics_to_jsonl tr buf;
  Trace.set_ambient (Trace.create ());
  let path =
    match Sys.getenv_opt "TPBS_TRACE_FILE" with
    | Some p -> p
    | None -> "tpbs_trace.jsonl"
  in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "e13 gate run: %d deliveries, trace -> %s@." delivered path
