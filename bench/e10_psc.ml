(* E10 — The psc precompiler (§4): cost and output of precompilation.

   We precompile a Java_ps program repeatedly (lex + parse + typecheck
   + filter lifting) and report throughput, plus the plan the
   precompiler emits — the analogue of rmic's generated stubs. *)

module Compile = Tpbs_psc.Compile
module Interp = Tpbs_psc.Interp

let program n_subs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    {|
interface StockObvent extends Obvent {
  String getCompany();
  double getPrice();
  int getAmount();
}
class StockObventImpl implements StockObvent {
  String company;
  double price;
  int amount;
}
class StockQuote extends StockObventImpl {}
process market {
  publish new StockQuote("Telco Mobiles", 80, 10);
}
process brokers {
|};
  for i = 1 to n_subs do
    Buffer.add_string buf
      (Printf.sprintf
         {|
  Subscription s%d = subscribe (StockQuote q) {
    return q.getPrice() < %d && q.getCompany().indexOf("Telco") != -1;
  } { print("offer"); };
  s%d.activate();
|}
         i (100 + i) i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let run () =
  Workload.table_header
    "E10  psc precompilation throughput and plan size"
    [ "subscriptions"; "compile(ms)"; "adapters"; "remote-filters" ];
  List.iter
    (fun n ->
      let src = program n in
      let compiled = ref (Compile.compile_string src) in
      let t =
        Workload.time_per_op ~runs:20 (fun () ->
            compiled := Compile.compile_string src)
      in
      let remote =
        List.length
          (List.filter
             (fun sp ->
               match sp.Compile.sp_class with
               | Compile.Remote_filter _ -> true
               | _ -> false)
             !compiled.Compile.sub_plans)
      in
      Fmt.pr "%13d  %11.3f  %8d  %14d@." n (t *. 1000.)
        (List.length !compiled.Compile.adapters)
        remote)
    [ 1; 10; 50; 200 ];
  (* And the end-to-end check: the compiled program runs and behaves. *)
  let result = Interp.run_string (program 3) in
  Fmt.pr "end-to-end: %d handler prints from the compiled program@."
    (List.length result.Interp.trace)
