(* Ablations — what each design ingredient buys.

   A1: compound-filter indexing. Three arms on the same population:
       naive (each filter fully evaluated), memoized atoms (each
       unique condition evaluated once, counting over subscriptions —
       factoring without the equality buckets / sorted thresholds),
       and the full indexed compound filter.
   A2: why reliable broadcast floods: delivery ratio of one direct
       send per member vs flooding relays, across loss rates.
   A3: lpbcast's pull (id digests + retrieval) on vs off.
   A4: the price of obvent uniqueness: eager per-subscription
       deserialization (the pre-COW §2.1.2 implementation) vs
       copy-on-write views (the delivery path's current strategy,
       with and without subscriber writes) vs a hypothetical shared
       decode with no isolation at all.
   A5: shard contention: the same Prioritary event budget spread
       evenly over the class partition vs funnelled onto one class
       (one shard owns everything), per-shard load read back through
       [Domain.stats_of_shard]. *)

module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec
module Obvent = Tpbs_obvent.Obvent
module Rng = Tpbs_sim.Rng
module Rfilter = Tpbs_filter.Rfilter
module Factored = Tpbs_filter.Factored
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Membership = Tpbs_group.Membership
module Best_effort = Tpbs_group.Best_effort
module Rbcast = Tpbs_group.Rbcast
module Gossip = Tpbs_group.Gossip

(* --- A1 ----------------------------------------------------------------- *)

(* Factoring without indexes: unique atoms evaluated one by one, then
   the counting algorithm. *)
module Memoized = struct
  type t = {
    atoms : Rfilter.atom array;  (* unique *)
    subs : (int * int array) list;  (* sub id, atom indices *)
  }

  let build rfilters =
    let tbl = Hashtbl.create 256 in
    let atoms = ref [] in
    let n = ref 0 in
    let intern (a : Rfilter.atom) =
      let key = a.path, a.cmp, a.const in
      match Hashtbl.find_opt tbl key with
      | Some i -> i
      | None ->
          let i = !n in
          incr n;
          Hashtbl.add tbl key i;
          atoms := a :: !atoms;
          i
    in
    let subs =
      List.mapi
        (fun sid rf ->
          match Rfilter.conjunction_atoms rf with
          | Some atom_list ->
              sid, Array.of_list (List.sort_uniq Int.compare (List.map intern atom_list))
          | None -> sid, [||])
        rfilters
    in
    { atoms = Array.of_list (List.rev !atoms); subs }

  let matches t root =
    let truth = Array.map (fun a -> Rfilter.eval_atom root a) t.atoms in
    List.filter_map
      (fun (sid, indices) ->
        if Array.length indices > 0 && Array.for_all (fun i -> truth.(i)) indices
        then Some sid
        else None)
      t.subs
end

let a1 () =
  Workload.table_header
    "A1  filter-matching ablation: naive / memoized atoms / full index"
    [ "subs"; "naive(us/evt)"; "memoized(us/evt)"; "indexed(us/evt)" ];
  let reg = Workload.registry () in
  List.iter
    (fun n ->
      let rng = Rng.create (100 + n) in
      let rfilters =
        List.filter_map
          (Rfilter.of_expr ~env:[] ~param:"StockQuote")
          (Workload.filter_population rng ~n ~redundancy:0.5 ~pool:(n / 20))
      in
      let events =
        Array.init 200 (fun _ ->
            Obvent.to_value (Workload.random_event reg rng ~cls:"StockQuote" ()))
      in
      let arr = Array.of_list rfilters in
      let t_naive =
        Workload.time_per_op ~runs:3 (fun () ->
            Array.iter
              (fun ev -> Array.iter (fun rf -> ignore (Rfilter.eval rf ev)) arr)
              events)
      in
      let memo = Memoized.build rfilters in
      let t_memo =
        Workload.time_per_op ~runs:3 (fun () ->
            Array.iter (fun ev -> ignore (Memoized.matches memo ev)) events)
      in
      let factored = Factored.create () in
      List.iteri (fun i rf -> Factored.add factored ~id:i rf) rfilters;
      let t_index =
        Workload.time_per_op ~runs:3 (fun () ->
            Array.iter (fun ev -> ignore (Factored.matches factored ev)) events)
      in
      let us t = t /. 200. *. 1e6 in
      Fmt.pr "%5d  %13.2f  %16.2f  %15.2f@." n (us t_naive) (us t_memo)
        (us t_index))
    [ 500; 2000; 8000 ]

(* --- A2 ----------------------------------------------------------------- *)

let a2 () =
  Workload.table_header
    "A2  reliability ablation: direct per-member send vs flooding relays"
    [ "loss"; "direct delivery"; "flood delivery"; "direct msgs"; "flood msgs" ];
  let run_arm ~loss ~flood =
    let engine = Engine.create ~seed:77 () in
    let net = Net.create ~config:{ Net.default_config with loss } engine in
    let nodes = Array.init 10 (fun _ -> Net.add_node net) in
    let group = Membership.create net (Array.to_list nodes) in
    let count = ref 0 in
    if flood then begin
      let protos =
        Array.map
          (fun me ->
            Rbcast.attach group ~me ~name:"a2" ~deliver:(fun ~origin:_ _ ->
                incr count))
          nodes
      in
      for i = 1 to 30 do
        Rbcast.bcast protos.(i mod 10) "x"
      done
    end
    else begin
      let protos =
        Array.map
          (fun me ->
            Best_effort.attach group ~me ~name:"a2" ~deliver:(fun ~origin:_ _ ->
                incr count))
          nodes
      in
      for i = 1 to 30 do
        Best_effort.bcast protos.(i mod 10) "x"
      done
    end;
    Engine.run engine;
    float_of_int !count /. float_of_int (30 * 10), (Net.stats net).Net.sent
  in
  List.iter
    (fun loss ->
      let d_ratio, d_msgs = run_arm ~loss ~flood:false in
      let f_ratio, f_msgs = run_arm ~loss ~flood:true in
      Fmt.pr "%4.0f%%  %15.1f%%  %14.1f%%  %11d  %10d@." (100. *. loss)
        (100. *. d_ratio) (100. *. f_ratio) d_msgs f_msgs)
    [ 0.0; 0.1; 0.3; 0.5 ]

(* --- A3 ----------------------------------------------------------------- *)

let a3 () =
  (* The pull mechanism's value is recovery *speed*: a lost push is
     repaired the next round by retrieval instead of waiting for
     another random infection. Measure delivery at early horizons,
     averaged over seeds. *)
  Workload.table_header
    "A3  lpbcast pull (digests + retrieval) on vs off — delivery over time"
    [ "horizon"; "pull delivery"; "push-only delivery" ];
  let n = 60 and loss = 0.4 in
  let run_arm ~seed ~pull ~horizon =
    let engine = Engine.create ~seed () in
    let net = Net.create ~config:{ Net.default_config with loss } engine in
    let nodes = Array.init n (fun _ -> Net.add_node net) in
    let group = Membership.create net (Array.to_list nodes) in
    let rng = Rng.create 8 in
    let count = ref 0 in
    let protos =
      Array.map
        (fun me ->
          let seed_view =
            List.map (fun k -> nodes.(k)) (Rng.sample_without_replacement rng 4 n)
          in
          Gossip.attach
            ~config:{ Gossip.default_config with fanout = 1; pull }
            group ~me ~name:"a3" ~seed_view
            ~deliver:(fun ~origin:_ _ -> incr count))
        nodes
    in
    for i = 1 to 5 do
      Gossip.bcast protos.(i) (Printf.sprintf "e%d" i)
    done;
    Engine.run ~until:horizon engine;
    Array.iter Gossip.stop protos;
    Engine.run engine;
    float_of_int !count /. float_of_int (n * 5)
  in
  let seeds = [ 91; 92; 93; 94; 95 ] in
  let avg ~pull ~horizon =
    List.fold_left (fun acc seed -> acc +. run_arm ~seed ~pull ~horizon) 0. seeds
    /. float_of_int (List.length seeds)
  in
  List.iter
    (fun horizon ->
      Fmt.pr "%7d  %12.1f%%  %17.1f%%@." horizon
        (100. *. avg ~pull:true ~horizon)
        (100. *. avg ~pull:false ~horizon))
    [ 10_000; 20_000; 40_000; 80_000 ]

(* --- A4 ----------------------------------------------------------------- *)

let a4 () =
  Workload.table_header
    "A4  obvent uniqueness: eager decode / cow views / cow+write / shared"
    [ "subs/node"; "eager(us/evt)"; "cow(us/evt)"; "cow+write(us/evt)";
      "shared(us/evt)"; "eager/shared"; "cow/shared" ];
  Workload.json_table ~key:"a4"
    ~cols:
      [ "subs"; "eager_us"; "cow_us"; "cow_write_us"; "shared_us";
        "eager_over_shared"; "cow_over_shared" ];
  let reg = Workload.registry () in
  let rng = Rng.create 3 in
  let event = Workload.random_event reg rng ~cls:"StockQuote" () in
  let bytes = Obvent.serialize event in
  List.iter
    (fun n ->
      (* The §2.1.2 guarantee paid eagerly: one full deserialization
         per subscription (the EagerClone fallback path). *)
      let t_eager =
        Workload.time_per_op ~runs:2000 (fun () ->
            for _ = 1 to n do
              ignore (Obvent.deserialize reg bytes)
            done)
      in
      (* The delivery path today: one gating decode, n-1 O(1) views. *)
      let t_cow =
        Workload.time_per_op ~runs:2000 (fun () ->
            let gate = Obvent.deserialize reg bytes in
            for _ = 2 to n do
              ignore (Obvent.view gate)
            done)
      in
      (* Worst case for COW: every subscriber mutates its clone, so
         every view pays the write barrier and a spine rebuild. *)
      let t_cow_write =
        Workload.time_per_op ~runs:2000 (fun () ->
            let gate = Obvent.deserialize reg bytes in
            for _ = 2 to n do
              let v = Obvent.view gate in
              Obvent.set reg v "price" (Value.Float 1.)
            done)
      in
      (* No isolation at all: the lower bound COW chases. *)
      let t_shared =
        Workload.time_per_op ~runs:2000 (fun () ->
            let shared = Obvent.deserialize reg bytes in
            for _ = 1 to n do
              ignore (Obvent.cls shared)
            done)
      in
      let eager_ratio = t_eager /. Float.max 1e-9 t_shared in
      let cow_ratio = t_cow /. Float.max 1e-9 t_shared in
      Fmt.pr "%9d  %13.2f  %11.2f  %17.2f  %14.2f  %11.1fx  %9.1fx@." n
        (t_eager *. 1e6) (t_cow *. 1e6) (t_cow_write *. 1e6)
        (t_shared *. 1e6) eager_ratio cow_ratio;
      Workload.json_row ~key:"a4"
        [ J_int n; J_float (t_eager *. 1e6); J_float (t_cow *. 1e6);
          J_float (t_cow_write *. 1e6); J_float (t_shared *. 1e6);
          J_float eager_ratio; J_float cow_ratio ])
    [ 1; 4; 16; 64 ]

(* --- A5 ----------------------------------------------------------------- *)

let a5 () =
  let module Registry = Tpbs_types.Registry in
  let module Vtype = Tpbs_types.Vtype in
  let module Pubsub = Tpbs_core.Pubsub in
  let module Shard = Tpbs_core.Shard in
  let n_shards = 4 in
  (* Four Prioritary classes, one per shard of the 4-way partition. *)
  let classes = Array.make n_shards "" in
  let found = ref 0 in
  let i = ref 0 in
  while !found < n_shards do
    let name = Printf.sprintf "Hot%d" !i in
    let k = Shard.key ~n_shards name in
    if classes.(k) = "" then begin
      classes.(k) <- name;
      incr found
    end;
    incr i
  done;
  let events = 400 in
  Workload.table_header
    (Printf.sprintf
       "A5  shard contention: %d Prioritary events at %d shards, even spread \
        vs one hot class"
       events n_shards)
    [ "workload"; "virt-ms"; "evt/ms"; "shard-load (deliveries/shard)" ];
  Workload.json_table ~key:"a5_contention"
    ~cols:[ "workload"; "virt_ms"; "evt_per_ms"; "max_shard_share" ];
  List.iter
    (fun (label, pick) ->
      let reg = Registry.create () in
      Array.iter
        (fun name ->
          Registry.declare_class reg ~name ~implements:[ "Prioritary" ]
            ~attrs:[ "n", Vtype.Tint; "priority", Vtype.Tint ]
            ())
        classes;
      let engine = Engine.create ~seed:5 () in
      let net =
        Net.create ~config:{ Net.default_config with jitter = 0 } engine
      in
      let domain = Pubsub.Domain.create ~n_shards reg net in
      let pub = Pubsub.Process.create domain (Net.add_node net) in
      let sub = Pubsub.Process.create domain (Net.add_node net) in
      Array.iter
        (fun cls ->
          Pubsub.Subscription.activate
            (Pubsub.Process.subscribe sub ~param:cls (fun _ -> ())))
        classes;
      for j = 0 to events - 1 do
        Pubsub.Process.publish pub
          (Obvent.make reg
             classes.(pick j)
             [ "n", Value.Int j; "priority", Value.Int (j mod 3) ])
      done;
      Engine.run engine;
      let virt_ms = float_of_int (Engine.now engine) /. 1000. in
      let thr = float_of_int events /. virt_ms in
      let per_shard =
        List.init n_shards (fun k ->
            (Pubsub.Domain.stats_of_shard domain k).Pubsub.Domain.deliveries)
      in
      let max_share =
        float_of_int (List.fold_left max 0 per_shard) /. float_of_int events
      in
      Fmt.pr "%-8s  %7.1f  %6.2f  %s@." label virt_ms thr
        (String.concat " "
           (List.map (Printf.sprintf "%d") per_shard));
      Workload.json_row ~key:"a5_contention"
        [ J_str label; J_float virt_ms; J_float thr; J_float max_share ])
    [ "even", (fun j -> j mod n_shards); "hot", (fun _ -> 0) ]

let run () =
  a1 ();
  a2 ();
  a3 ();
  a4 ();
  a5 ()
