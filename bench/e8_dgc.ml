(* E8 — The distributed-GC caveat (§5.4.2).

   A published obvent carries a reference to a remote object; every
   subscriber's copy creates a proxy ("which can sum up to several
   1000's"). Some subscribers then crash without releasing.

   Under strict reference counting (Java RMI), the object stays
   pinned forever. Under the lease-based "weaker RMI" of [CNH99],
   the crashed holders' leases expire and the object becomes
   collectable. We report the host-side pinned count over time. *)

module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Value = Tpbs_serial.Value
module Rmi = Tpbs_rmi.Rmi
module Pubsub = Tpbs_core.Pubsub

let subscribers = 30
let crashers = 10
let lease = 30_000

let run_mode dgc =
  let reg = Workload.registry () in
  let engine = Engine.create ~seed:55 () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in
  let market_node = Net.add_node net in
  let market_rmi = Rmi.attach ~dgc net ~me:market_node in
  let market = Pubsub.Process.create domain ~rmi:market_rmi market_node in
  Tpbs_types.Registry.declare_class reg ~name:"LinkedQuote"
    ~extends:"StockQuote"
    ~attrs:[ "market", Tpbs_types.Vtype.Tremote "StockMarket" ]
    ();
  let sub_nodes = Array.init subscribers (fun _ -> Net.add_node net) in
  let sub_rmis = Array.map (fun me -> Rmi.attach ~dgc net ~me) sub_nodes in
  let procs =
    Array.mapi
      (fun i node -> Pubsub.Process.create domain ~rmi:sub_rmis.(i) node)
      sub_nodes
  in
  Array.iter
    (fun p ->
      Pubsub.Subscription.activate
        (Pubsub.Process.subscribe p ~param:"LinkedQuote" (fun _ -> ())))
    procs;
  let market_ref =
    Rmi.export market_rmi ~iface:"StockMarket" (fun ~meth:_ ~args:_ ->
        Value.Bool true)
  in
  Pubsub.Process.publish market
    (Tpbs_obvent.Obvent.make reg "LinkedQuote"
       [ "company", Value.Str "Telco"; "sector", Value.Str "telco";
         "price", Value.Float 80.; "amount", Value.Int 1;
         "market", market_ref ]);
  let samples = ref [] in
  let sample label =
    samples := (label, Rmi.pinned market_rmi, Rmi.holder_count market_rmi) :: !samples
  in
  Engine.run ~until:20_000 engine;
  sample "all subscribed";
  (* A third of the subscribers crash without releasing. *)
  for i = 0 to crashers - 1 do
    Net.crash net sub_nodes.(i)
  done;
  (* The well-behaved rest release explicitly. *)
  for i = crashers to subscribers - 1 do
    Rmi.release_proxy sub_rmis.(i) market_ref
  done;
  Engine.run ~until:(20_000 + (2 * lease)) engine;
  sample "after releases + 2 leases";
  Engine.run ~until:(20_000 + (10 * lease)) engine;
  sample "after 10 leases";
  (* Stop lease timers so the run terminates. *)
  Array.iter (fun node -> Net.crash net node) sub_nodes;
  Net.crash net market_node;
  Engine.run engine;
  List.rev !samples

let run () =
  Workload.table_header
    (Printf.sprintf
       "E8  DGC: %d subscribers hold proxies, %d crash without releasing"
       subscribers crashers)
    [ "moment"; "strict-pinned"; "strict-proxies"; "lease-pinned";
      "lease-proxies" ];
  let strict = run_mode Rmi.Strict in
  let leased = run_mode (Rmi.Lease lease) in
  List.iter2
    (fun (label, sp, sh) (_, lp, lh) ->
      Fmt.pr "%-28s %13d  %14d  %12d  %13d@." label sp sh lp lh)
    strict leased;
  Fmt.pr
    "(strict reference counting never reclaims after a subscriber crash —@.\
    \ the paper's Java RMI caveat; leases reclaim once silence exceeds the@.\
    \ lease horizon)@."
