(* E7 — Expressiveness across paradigms (§5.5.2, §6.3).

   The subscriber's intent: "Telco quotes under 100". Three systems
   express it with their native means:

   - type-based + filters: exactly (range + substring conditions);
   - content-based attrs:  exactly, but untyped (a typo in an
                           attribute name silently matches nothing);
   - tuple space:          templates compare attribute-wise for
                           equality, so a range cannot be expressed —
                           the closest sound template over-selects and
                           the client post-filters.

   We report per-paradigm: events transferred to the subscriber per
   relevant event (over-selection factor) and matching throughput.
   The paper's point (§5.1.2): "filtering events by matching them
   against template objects offers only little expressiveness". *)

module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Rng = Tpbs_sim.Rng
module Rfilter = Tpbs_filter.Rfilter
module Expr = Tpbs_filter.Expr
module Contentps = Tpbs_baselines.Contentps
module Tuplespace = Tpbs_baselines.Tuplespace

let events_n = 20_000

let intent_filter =
  Expr.(
    getter [ "getPrice" ] <. float 100.
    &&& Binop (Starts_with, getter [ "getCompany" ], str "Telco"))

let run () =
  let reg = Workload.registry () in
  let rng = Rng.create 77 in
  let events =
    Array.init events_n (fun _ ->
        Workload.random_event reg rng ~cls:"StockQuote" ())
  in
  let relevant =
    Array.to_list events
    |> List.filter (fun o ->
           Expr.eval_bool reg ~env:[] ~arg:o intent_filter)
    |> List.length
  in

  (* Type-based with a lifted remote filter. *)
  let rf =
    Option.get (Rfilter.of_expr ~env:[] ~param:"StockQuote" intent_filter)
  in
  let tb_transferred = ref 0 in
  let tb_time =
    Workload.time_per_op ~runs:3 (fun () ->
        tb_transferred := 0;
        Array.iter
          (fun o -> if Rfilter.matches_obvent rf o then incr tb_transferred)
          events)
  in

  (* Content-based attribute constraints. *)
  let cb = Contentps.create () in
  Contentps.subscribe cb 0
    [ { attr = "price"; op = Contentps.Lt; const = Value.Float 100. };
      { attr = "company"; op = Contentps.Prefix; const = Value.Str "Telco" } ];
  let cb_transferred = ref 0 in
  let cb_time =
    Workload.time_per_op ~runs:3 (fun () ->
        cb_transferred := 0;
        Array.iter
          (fun o ->
            let ev =
              [ "company", Obvent.get o "company"; "price", Obvent.get o "price" ]
            in
            if Contentps.matches cb ev <> [] then incr cb_transferred)
          events)
  in

  (* Tuple space: equality-only templates. The best sound template
     for "Telco*" and "price < 100" is wildcards on both — the space
     hands over everything and the client post-filters. We model a
     per-company template set for the three known Telco entities
     (still no range on price). *)
  let telco_companies =
    Array.to_list Workload.companies
    |> List.filter (fun c -> String.length c >= 5 && String.sub c 0 5 = "Telco")
  in
  let templates =
    List.map
      (fun c ->
        [ Tuplespace.Exact (Value.Str c); Tuplespace.Wildcard;
          Tuplespace.Wildcard ])
      telco_companies
  in
  let ts_transferred = ref 0 in
  let ts_relevant = ref 0 in
  let ts_time =
    Workload.time_per_op ~runs:3 (fun () ->
        ts_transferred := 0;
        ts_relevant := 0;
        Array.iter
          (fun o ->
            let tuple =
              [ Obvent.get o "company"; Obvent.get o "price";
                Obvent.get o "amount" ]
            in
            if List.exists (fun t -> Tuplespace.matches t tuple) templates
            then begin
              incr ts_transferred;
              (* client-side post-filter for the range *)
              match Obvent.get o "price" with
              | Value.Float p when p < 100. -> incr ts_relevant
              | _ -> ()
            end)
          events)
  in

  Workload.table_header
    "E7  expressing 'Telco quotes under 100' across paradigms"
    [ "paradigm"; "transferred"; "relevant"; "overhead"; "match-time(ns/evt)" ];
  let row name transferred matched time =
    Fmt.pr "%-22s %11d  %8d  %7.2fx  %17.0f@." name transferred matched
      (float_of_int transferred /. float_of_int (max 1 matched))
      (time /. float_of_int events_n *. 1e9)
  in
  row "type-based + filter" !tb_transferred relevant tb_time;
  row "content-based attrs" !cb_transferred relevant cb_time;
  row "tuple-space template" !ts_transferred !ts_relevant ts_time;
  Fmt.pr
    "(tuple templates cannot express the price range: %.1fx of the relevant@.\
    \ volume crosses to the client and is discarded there)@."
    (float_of_int !ts_transferred /. float_of_int (max 1 relevant))
