(* E1 — Type-based routing (Fig. 1, §2.1.3).

   Semantics: a subscription to a type receives instances of all its
   subtypes. Cost: we compare the per-event matching cost of
   (a) type-based subscriptions over the stock hierarchy,
   (b) the topic baseline with the equivalent topic tree
       ("stocks", "stocks/request", "stocks/request/spot", ...), and
   (c) the flat content-based baseline encoding the type as an
       attribute (which loses subtype coverage: an equality test on
       "type" cannot see subtypes without enumerating them — we encode
       the enumeration, which is the baseline's expressiveness tax).

   The shape to observe: all three are cheap; type-based matching
   scales with subscriptions like topics do, while flat content
   matching pays for the enumerated subtype constraints. *)

module Registry = Tpbs_types.Registry
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Rng = Tpbs_sim.Rng
module Routing = Tpbs_core.Routing
module Topics = Tpbs_baselines.Topics
module Contentps = Tpbs_baselines.Contentps

let type_of_topic = function
  | "stocks" -> "StockObvent"
  | "stocks/quote" -> "StockQuote"
  | "stocks/request" -> "StockRequest"
  | "stocks/request/spot" -> "SpotPrice"
  | "stocks/request/market" -> "MarketPrice"
  | _ -> assert false

let topic_of_class = function
  | "StockQuote" -> "stocks/quote"
  | "SpotPrice" -> "stocks/request/spot"
  | "MarketPrice" -> "stocks/request/market"
  | _ -> assert false

let all_topics =
  [| "stocks"; "stocks/quote"; "stocks/request"; "stocks/request/spot";
     "stocks/request/market" |]

let run () =
  let reg = Workload.registry () in
  let rng = Rng.create 2025 in
  Workload.table_header
    "E1  type-based routing vs topics vs flat content (per-event match cost)"
    [ "subs"; "type-based(us)"; "linear-scan(us)"; "topics(us)";
      "content(us)"; "matches/evt(type)"; "matches/evt(topic)" ];
  List.iter
    (fun n ->
      (* Subscription populations with identical intent. *)
      let sub_topics = Array.init n (fun _ -> Rng.pick rng all_topics) in
      let sub_types = Array.map type_of_topic sub_topics in
      let topics = Topics.create () in
      Array.iteri (fun i topic -> Topics.subscribe topics ~topic i) sub_topics;
      let content = Contentps.create () in
      Array.iteri
        (fun i tname ->
          (* Flat encoding: enumerate the concrete classes under the
             subscribed type. *)
          let classes =
            List.filter
              (fun c -> Array.mem c Workload.leaf_classes)
              (Registry.subtypes reg tname)
          in
          match classes with
          | [ single ] ->
              Contentps.subscribe content i
                [ { attr = "type"; op = Contentps.Eq; const = Value.Str single } ]
          | several ->
              (* The baseline has no disjunction: register one
                 subscription per class under a shifted id space and
                 count any as a match for i. *)
              List.iteri
                (fun k cls ->
                  Contentps.subscribe content
                    ((k + 1) * 1_000_000 + i)
                    [ { attr = "type"; op = Contentps.Eq; const = Value.Str cls } ])
                several)
        sub_types;
      let events =
        Array.init 200 (fun _ -> Workload.random_event reg rng ())
      in
      (* (a) the engine's dispatch: per-concrete-class routing index —
         one hash lookup per event once the class has been seen. *)
      let route = Routing.create reg in
      let build cls =
        let targets = ref [] in
        for i = Array.length sub_types - 1 downto 0 do
          if Registry.subtype reg cls sub_types.(i) then
            targets := i :: !targets
        done;
        !targets
      in
      let type_matches = ref 0 in
      let t_type =
        Workload.time_per_op ~runs:50 (fun () ->
            type_matches := 0;
            Array.iter
              (fun event ->
                let cls = Obvent.cls event in
                type_matches :=
                  !type_matches + List.length (Routing.find route cls ~build))
              events)
      in
      (* (a') reference: the pre-index linear scan, one subtype
         question per subscription per event. *)
      let scan_matches = ref 0 in
      let t_scan =
        Workload.time_per_op ~runs:50 (fun () ->
            scan_matches := 0;
            Array.iter
              (fun event ->
                let cls = Obvent.cls event in
                Array.iter
                  (fun tname ->
                    if Registry.subtype reg cls tname then incr scan_matches)
                  sub_types)
              events)
      in
      assert (!type_matches = !scan_matches);
      let topic_matches = ref 0 in
      let t_topic =
        Workload.time_per_op ~runs:50 (fun () ->
            topic_matches := 0;
            Array.iter
              (fun event ->
                let topic = topic_of_class (Obvent.cls event) in
                topic_matches :=
                  !topic_matches + List.length (Topics.publish topics ~topic))
              events)
      in
      let t_content =
        Workload.time_per_op ~runs:50 (fun () ->
            Array.iter
              (fun event ->
                let ev =
                  [ "type", Value.Str (Obvent.cls event) ]
                in
                ignore (Contentps.matches content ev))
              events)
      in
      let per_event seconds = seconds /. 200. *. 1e6 in
      Fmt.pr "%5d  %14.3f  %15.3f  %10.3f  %11.3f  %17.1f  %18.1f@." n
        (per_event t_type) (per_event t_scan) (per_event t_topic)
        (per_event t_content)
        (float_of_int !type_matches /. 200.)
        (float_of_int !topic_matches /. 200.))
    [ 10; 100; 1000; 5000 ];
  (* Semantic agreement: topic containment = subtype coverage. *)
  let rng = Rng.create 7 in
  let agreement = ref true in
  for _ = 1 to 500 do
    let event = Workload.random_event reg rng () in
    let cls = Obvent.cls event in
    Array.iter
      (fun topic ->
        let by_type = Registry.subtype reg cls (type_of_topic topic) in
        let topics1 = Topics.create () in
        Topics.subscribe topics1 ~topic 0;
        let by_topic =
          Topics.publish topics1 ~topic:(topic_of_class cls) <> []
        in
        if by_type <> by_topic then agreement := false)
      all_topics
  done;
  Fmt.pr "routing agreement between type hierarchy and topic tree: %s@."
    (if !agreement then "exact" else "BROKEN")
