(* E1 — Type-based routing (Fig. 1, §2.1.3).

   Semantics: a subscription to a type receives instances of all its
   subtypes. Cost: we compare the per-event matching cost of
   (a) type-based subscriptions over the stock hierarchy,
   (b) the topic baseline with the equivalent topic tree
       ("stocks", "stocks/request", "stocks/request/spot", ...), and
   (c) the flat content-based baseline encoding the type as an
       attribute (which loses subtype coverage: an equality test on
       "type" cannot see subtypes without enumerating them — we encode
       the enumeration, which is the baseline's expressiveness tax).

   The shape to observe: all three are cheap; type-based matching
   scales with subscriptions like topics do, while flat content
   matching pays for the enumerated subtype constraints. *)

module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Rng = Tpbs_sim.Rng
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Routing = Tpbs_core.Routing
module Shard = Tpbs_core.Shard
module Pool = Tpbs_core.Pool
module Pubsub = Tpbs_core.Pubsub
module Topics = Tpbs_baselines.Topics
module Contentps = Tpbs_baselines.Contentps

let type_of_topic = function
  | "stocks" -> "StockObvent"
  | "stocks/quote" -> "StockQuote"
  | "stocks/request" -> "StockRequest"
  | "stocks/request/spot" -> "SpotPrice"
  | "stocks/request/market" -> "MarketPrice"
  | _ -> assert false

let topic_of_class = function
  | "StockQuote" -> "stocks/quote"
  | "SpotPrice" -> "stocks/request/spot"
  | "MarketPrice" -> "stocks/request/market"
  | _ -> assert false

let all_topics =
  [| "stocks"; "stocks/quote"; "stocks/request"; "stocks/request/spot";
     "stocks/request/market" |]

let rec run () =
  let reg = Workload.registry () in
  let rng = Rng.create 2025 in
  Workload.table_header
    "E1  type-based routing vs topics vs flat content (per-event match cost)"
    [ "subs"; "type-based(us)"; "linear-scan(us)"; "topics(us)";
      "content(us)"; "matches/evt(type)"; "matches/evt(topic)" ];
  List.iter
    (fun n ->
      (* Subscription populations with identical intent. *)
      let sub_topics = Array.init n (fun _ -> Rng.pick rng all_topics) in
      let sub_types = Array.map type_of_topic sub_topics in
      let topics = Topics.create () in
      Array.iteri (fun i topic -> Topics.subscribe topics ~topic i) sub_topics;
      let content = Contentps.create () in
      Array.iteri
        (fun i tname ->
          (* Flat encoding: enumerate the concrete classes under the
             subscribed type. *)
          let classes =
            List.filter
              (fun c -> Array.mem c Workload.leaf_classes)
              (Registry.subtypes reg tname)
          in
          match classes with
          | [ single ] ->
              Contentps.subscribe content i
                [ { attr = "type"; op = Contentps.Eq; const = Value.Str single } ]
          | several ->
              (* The baseline has no disjunction: register one
                 subscription per class under a shifted id space and
                 count any as a match for i. *)
              List.iteri
                (fun k cls ->
                  Contentps.subscribe content
                    ((k + 1) * 1_000_000 + i)
                    [ { attr = "type"; op = Contentps.Eq; const = Value.Str cls } ])
                several)
        sub_types;
      let events =
        Array.init 200 (fun _ -> Workload.random_event reg rng ())
      in
      (* (a) the engine's dispatch: per-concrete-class routing index —
         one hash lookup per event once the class has been seen. *)
      let route = Routing.create reg in
      let build cls =
        let targets = ref [] in
        for i = Array.length sub_types - 1 downto 0 do
          if Registry.subtype reg cls sub_types.(i) then
            targets := i :: !targets
        done;
        !targets
      in
      let type_matches = ref 0 in
      let t_type =
        Workload.time_per_op ~runs:50 (fun () ->
            type_matches := 0;
            Array.iter
              (fun event ->
                let cls = Obvent.cls event in
                type_matches :=
                  !type_matches + List.length (Routing.find route cls ~build))
              events)
      in
      (* (a') reference: the pre-index linear scan, one subtype
         question per subscription per event. *)
      let scan_matches = ref 0 in
      let t_scan =
        Workload.time_per_op ~runs:50 (fun () ->
            scan_matches := 0;
            Array.iter
              (fun event ->
                let cls = Obvent.cls event in
                Array.iter
                  (fun tname ->
                    if Registry.subtype reg cls tname then incr scan_matches)
                  sub_types)
              events)
      in
      assert (!type_matches = !scan_matches);
      let topic_matches = ref 0 in
      let t_topic =
        Workload.time_per_op ~runs:50 (fun () ->
            topic_matches := 0;
            Array.iter
              (fun event ->
                let topic = topic_of_class (Obvent.cls event) in
                topic_matches :=
                  !topic_matches + List.length (Topics.publish topics ~topic))
              events)
      in
      let t_content =
        Workload.time_per_op ~runs:50 (fun () ->
            Array.iter
              (fun event ->
                let ev =
                  [ "type", Value.Str (Obvent.cls event) ]
                in
                ignore (Contentps.matches content ev))
              events)
      in
      let per_event seconds = seconds /. 200. *. 1e6 in
      Fmt.pr "%5d  %14.3f  %15.3f  %10.3f  %11.3f  %17.1f  %18.1f@." n
        (per_event t_type) (per_event t_scan) (per_event t_topic)
        (per_event t_content)
        (float_of_int !type_matches /. 200.)
        (float_of_int !topic_matches /. 200.))
    [ 10; 100; 1000; 5000 ];
  (* Semantic agreement: topic containment = subtype coverage. *)
  let rng = Rng.create 7 in
  let agreement = ref true in
  for _ = 1 to 500 do
    let event = Workload.random_event reg rng () in
    let cls = Obvent.cls event in
    Array.iter
      (fun topic ->
        let by_type = Registry.subtype reg cls (type_of_topic topic) in
        let topics1 = Topics.create () in
        Topics.subscribe topics1 ~topic 0;
        let by_topic =
          Topics.publish topics1 ~topic:(topic_of_class cls) <> []
        in
        if by_type <> by_topic then agreement := false)
      all_topics
  done;
  Fmt.pr "routing agreement between type hierarchy and topic tree: %s@."
    (if !agreement then "exact" else "BROKEN");
  run_sharded ()

(* E1b — sharded dispatch.

   Aggregate egress throughput across engine shards: Prioritary
   traffic is egress-limited (one message per shard per drain
   interval), so with the class population spread over the shard
   partition, aggregate virtual-time throughput scales with the shard
   count. Handler bodies run on the real domain pool ([~domains:n]);
   per-shard delivery counts come from [Domain.stats_of_shard] and
   expose the load balance the hash partition achieves. *)

and run_sharded () =
  (* Eight Prioritary classes, one per residue of the 8-way partition
     — which also covers every shard at 4, 2 and 1 (r mod 8 covers
     r mod 4 covers r mod 2). *)
  let classes = Array.make 8 "" in
  let found = ref 0 in
  let i = ref 0 in
  while !found < 8 do
    let name = Printf.sprintf "Load%d" !i in
    let k = Shard.key ~n_shards:8 name in
    if classes.(k) = "" then begin
      classes.(k) <- name;
      incr found
    end;
    incr i
  done;
  let events = 400 in
  Workload.table_header
    (Printf.sprintf
       "E1b sharded dispatch: %d Prioritary events over %d classes \
        (virtual-time egress throughput)"
       events (Array.length classes))
    [ "shards"; "delivered"; "virt-ms"; "evt/ms"; "speedup"; "balance";
      "pool-tasks"; "pool-steals" ];
  Workload.json_table ~key:"e1_sharded"
    ~cols:
      [ "shards"; "delivered"; "virt_ms"; "evt_per_ms"; "speedup"; "balance";
        "pool_tasks"; "pool_steals" ];
  let base = ref 0.0 in
  (* [pool.tasks]/[pool.steals] live in the ambient trace registry and
     accumulate across pool instances: report per-run deltas. *)
  let prev_tasks = ref 0 and prev_steals = ref 0 in
  List.iter
    (fun n ->
      let reg = Registry.create () in
      Array.iter
        (fun name ->
          Registry.declare_class reg ~name ~implements:[ "Prioritary" ]
            ~attrs:[ "n", Vtype.Tint; "priority", Vtype.Tint ]
            ())
        classes;
      let engine = Engine.create ~seed:5 () in
      let net =
        Net.create ~config:{ Net.default_config with jitter = 0 } engine
      in
      let domain = Pubsub.Domain.create ~n_shards:n ~domains:n reg net in
      let pub = Pubsub.Process.create domain (Net.add_node net) in
      let sub = Pubsub.Process.create domain (Net.add_node net) in
      let subs =
        Array.map
          (fun cls ->
            let s = Pubsub.Process.subscribe sub ~param:cls (fun _ -> ()) in
            Pubsub.Subscription.activate s;
            s)
          classes
      in
      for j = 0 to events - 1 do
        Pubsub.Process.publish pub
          (Obvent.make reg
             classes.(j mod Array.length classes)
             [ "n", Value.Int j; "priority", Value.Int (j mod 3) ])
      done;
      Engine.run engine;
      let delivered =
        Array.fold_left
          (fun acc s -> acc + Pubsub.Subscription.delivered s)
          0 subs
      in
      let virt_ms = float_of_int (Engine.now engine) /. 1000. in
      let thr = float_of_int delivered /. virt_ms in
      if n = 1 then base := thr;
      let speedup = thr /. !base in
      (* Partition balance: smallest/largest per-shard delivery share
         (1.0 = perfectly even). *)
      let per_shard =
        List.init n (fun k ->
            (Pubsub.Domain.stats_of_shard domain k).Pubsub.Domain.deliveries)
      in
      let balance =
        float_of_int (List.fold_left min max_int per_shard)
        /. float_of_int (max 1 (List.fold_left max 0 per_shard))
      in
      let tasks, steals =
        match Pubsub.Domain.pool_stats domain with
        | None -> 0, 0
        | Some st ->
            let t = st.Pool.tasks - !prev_tasks
            and s = st.Pool.steals - !prev_steals in
            prev_tasks := st.Pool.tasks;
            prev_steals := st.Pool.steals;
            t, s
      in
      Fmt.pr "%6d  %9d  %7.1f  %6.2f  %7.2f  %7.2f  %10d  %11d@." n delivered
        virt_ms thr speedup balance tasks steals;
      Workload.json_row ~key:"e1_sharded"
        [ J_int n; J_int delivered; J_float virt_ms; J_float thr;
          J_float speedup; J_float balance; J_int tasks; J_int steals ];
      Pubsub.Domain.shutdown domain)
    [ 1; 2; 4; 8 ]
