(* E3 — Compound-filter factoring (§2.3.2, §3.3.3, [ASS+99]).

   N subscriber filters on one filtering host, with a controlled
   fraction of redundancy (subscribers sharing criteria, the common
   case the paper argues for). Arms:

   - naive:    evaluate every filter on every event;
   - factored: the compound filter (shared paths, hash-bucketed
               equality, binary-searched thresholds, counting
               algorithm).

   Reported: unique/total conditions, match time per event, speedup,
   and the further redundancy the subsumption analysis finds. The
   paper's claim: "performance can be significantly improved". *)

module Rng = Tpbs_sim.Rng
module Rfilter = Tpbs_filter.Rfilter
module Expr = Tpbs_filter.Expr
module Factored = Tpbs_filter.Factored
module Subsume = Tpbs_filter.Subsume
module Obvent = Tpbs_obvent.Obvent

let events_n = 300

let run_cell ~n ~redundancy =
  let reg = Workload.registry () in
  let rng = Rng.create (n + int_of_float (redundancy *. 1000.)) in
  let filters =
    Workload.filter_population rng ~n ~redundancy ~pool:(max 1 (n / 20))
  in
  let rfilters =
    List.filter_map
      (Rfilter.of_expr ~env:[] ~param:"StockQuote")
      filters
  in
  let events =
    Array.init events_n (fun _ ->
        Obvent.to_value (Workload.random_event reg rng ~cls:"StockQuote" ()))
  in
  let factored = Factored.create () in
  List.iteri (fun i rf -> Factored.add factored ~id:i rf) rfilters;
  let arr = Array.of_list rfilters in
  let naive_count = ref 0 in
  let t_naive =
    Workload.time_per_op ~runs:3 (fun () ->
        naive_count := 0;
        Array.iter
          (fun ev ->
            Array.iter
              (fun rf -> if Rfilter.eval rf ev then incr naive_count)
              arr)
          events)
  in
  let fact_count = ref 0 in
  let t_fact =
    Workload.time_per_op ~runs:3 (fun () ->
        fact_count := 0;
        Array.iter
          (fun ev ->
            fact_count := !fact_count + List.length (Factored.matches factored ev))
          events)
  in
  assert (!naive_count = !fact_count);
  let stats = Factored.stats factored in
  let covered = Subsume.count_covered rfilters in
  ( List.length rfilters,
    stats.Factored.unique_atoms,
    stats.Factored.total_atoms,
    t_naive /. float_of_int events_n *. 1e6,
    t_fact /. float_of_int events_n *. 1e6,
    covered )

(* Second table: static pruning of provably-false filters (the lint
   TP001 class, applied by the engine at subscription time). A fraction
   [dead] of the population is contradictory; every pruned filter saves
   one evaluation on every event. *)
let dead_filter rng =
  let x = float_of_int (Rng.int rng 50) in
  Expr.(
    getter [ "getPrice" ] <. float x &&& (getter [ "getPrice" ] >. float (x +. 10.)))

let run_prune_cell ~n ~dead =
  let rng = Rng.create (n + int_of_float (dead *. 1000.)) in
  let reg = Workload.registry () in
  let filters =
    List.init n (fun _ ->
        if Rng.bool rng dead then dead_filter rng
        else Workload.random_filter rng)
  in
  let rfilters =
    List.filter_map (Rfilter.of_expr ~env:[] ~param:"StockQuote") filters
  in
  let kept = List.filter (fun rf -> not (Subsume.unsat rf)) rfilters in
  let pruned = List.length rfilters - List.length kept in
  let events =
    Array.init events_n (fun _ ->
        Obvent.to_value (Workload.random_event reg rng ~cls:"StockQuote" ()))
  in
  let eval_all fs =
    let arr = Array.of_list fs in
    Workload.time_per_op ~runs:3 (fun () ->
        Array.iter
          (fun ev -> Array.iter (fun rf -> ignore (Rfilter.eval rf ev)) arr)
          events)
  in
  let t_all = eval_all rfilters in
  let t_kept = eval_all kept in
  ( List.length rfilters,
    pruned,
    t_all /. float_of_int events_n *. 1e6,
    t_kept /. float_of_int events_n *. 1e6 )

(* Third table pair: the covering tier that backs [pscc lint
   --deployment] and the broker's suppression index.

   e3c_decision — cost of one [Subsume.covers] decision as the filters
   grow (k conjunction atoms per side), in both the provable direction
   (narrow ⊆ wide) and the refutable one (wide ⊈ narrow).

   e3c_suppression — the broker install scan: filters arrive in order,
   each is suppressed iff an already-installed one covers it. Reported
   per (population, redundancy) cell, with the mean decision cost. *)

let conj ~k ~slack =
  let atom i =
    let c = i * 3 in
    if i mod 2 = 0 then
      Expr.(getter [ "getPrice" ] >=. float (float_of_int (c - slack)))
    else Expr.(getter [ "getAmount" ] <=. int (1000 - c + slack))
  in
  List.fold_left
    (fun acc i -> Expr.(acc &&& atom i))
    (atom 0)
    (List.init (max 0 (k - 1)) (fun i -> i + 1))

let rf_exn expr =
  match Rfilter.of_expr ~env:[] ~param:"StockQuote" expr with
  | Some rf -> rf
  | None -> failwith "e3c: expression did not lift to a remote filter"

let decision_runs = 200

let run_decision_cell ~k =
  let reg = Workload.registry () in
  let narrow = rf_exn (conj ~k ~slack:0) in
  let wide = rf_exn (conj ~k ~slack:5) in
  let covers = Subsume.covers ~registry:reg ~param:"StockQuote" in
  assert (covers narrow wide);
  assert (not (covers wide narrow));
  let time dir =
    Workload.time_per_op ~runs:3 (fun () ->
        for _ = 1 to decision_runs do
          ignore (dir ())
        done)
    /. float_of_int decision_runs *. 1e6
  in
  let t_yes = time (fun () -> covers narrow wide) in
  let t_no = time (fun () -> covers wide narrow) in
  (2 * k, t_yes, t_no)

let run_suppression_cell ~n ~redundancy =
  let reg = Workload.registry () in
  let rng = Rng.create (n + int_of_float (redundancy *. 1000.) + 7) in
  let rfilters =
    Workload.filter_population rng ~n ~redundancy ~pool:(max 1 (n / 20))
    |> List.filter_map (Rfilter.of_expr ~env:[] ~param:"StockQuote")
  in
  let covers = Subsume.covers ~registry:reg ~param:"StockQuote" in
  let installed = ref [] in
  let suppressed = ref 0 in
  let decisions = ref 0 in
  let t0 = Sys.time () in
  List.iter
    (fun rf ->
      let coverer =
        List.exists
          (fun ins ->
            incr decisions;
            covers rf ins)
          !installed
      in
      if coverer then incr suppressed else installed := rf :: !installed)
    rfilters;
  let dt = Sys.time () -. t0 in
  let total = List.length rfilters in
  ( total,
    List.length !installed,
    !suppressed,
    100. *. float_of_int !suppressed /. float_of_int (max 1 total),
    dt /. float_of_int (max 1 !decisions) *. 1e6 )

let run_cover () =
  Workload.table_header
    "E3c covering decisions (Subsume.covers) and broker-side suppression"
    [ "atoms"; "covered(us)"; "not-covered(us)" ];
  Workload.json_table ~key:"e3c_decision"
    ~cols:[ "atoms"; "covered_us"; "not_covered_us" ];
  List.iter
    (fun k ->
      let atoms, t_yes, t_no = run_decision_cell ~k in
      Fmt.pr "%5d  %11.2f  %15.2f@." atoms t_yes t_no;
      Workload.json_row ~key:"e3c_decision"
        [ Workload.J_int atoms; Workload.J_float t_yes; Workload.J_float t_no ])
    [ 1; 2; 4; 8; 16 ];
  Workload.table_header
    "E3c broker install scan: subs suppressed by an installed coverer"
    [ "subs"; "redund"; "installed"; "suppressed"; "rate"; "decision(us)" ];
  Workload.json_table ~key:"e3c_suppression"
    ~cols:
      [ "subs"; "redundancy_pct"; "installed"; "suppressed";
        "suppressed_pct"; "decision_us" ];
  List.iter
    (fun n ->
      List.iter
        (fun redundancy ->
          let total, installed, suppressed, rate, dec_us =
            run_suppression_cell ~n ~redundancy
          in
          Fmt.pr "%5d  %6.0f%%  %9d  %10d  %4.0f%%  %11.2f@." total
            (100. *. redundancy) installed suppressed rate dec_us;
          Workload.json_row ~key:"e3c_suppression"
            [ Workload.J_int total;
              Workload.J_float (100. *. redundancy);
              Workload.J_int installed; Workload.J_int suppressed;
              Workload.J_float rate; Workload.J_float dec_us ])
        [ 0.0; 0.5; 0.9 ])
    [ 100; 1000 ]

let run () =
  Workload.table_header
    "E3  compound-filter factoring vs naive per-subscriber evaluation"
    [ "subs"; "redund"; "uniq-conds"; "total-conds"; "naive(us/evt)";
      "factored(us/evt)"; "speedup"; "subsumed" ];
  List.iter
    (fun n ->
      List.iter
        (fun redundancy ->
          let subs, uniq, total, t_naive, t_fact, covered =
            run_cell ~n ~redundancy
          in
          Fmt.pr "%5d  %6.0f%%  %10d  %11d  %13.2f  %16.2f  %7.1fx  %8d@."
            subs (100. *. redundancy) uniq total t_naive t_fact
            (t_naive /. Float.max 1e-9 t_fact)
            covered)
        [ 0.0; 0.5; 0.9 ])
    [ 100; 1000; 4000 ];
  Workload.table_header
    "E3b static pruning of unsatisfiable filters (lint TP001 at the engine)"
    [ "subs"; "dead"; "pruned"; "all(us/evt)"; "pruned-out(us/evt)";
      "evals-saved/evt" ];
  List.iter
    (fun n ->
      List.iter
        (fun dead ->
          let subs, pruned, t_all, t_kept = run_prune_cell ~n ~dead in
          Fmt.pr "%5d  %4.0f%%  %6d  %11.2f  %18.2f  %15d@." subs
            (100. *. dead) pruned t_all t_kept pruned)
        [ 0.0; 0.1; 0.3 ])
    [ 100; 1000 ];
  run_cover ()
