(* E6 — Publish/subscribe and RMI hand in hand (§5.4, Fig. 8).

   Disseminating one quote to N interested parties:

   - pub/sub: one publish; the engine's channel fans out;
   - RMI:     the market invokes each broker's callback object in
              turn (the invocation style the paper argues does not
              scale to many brokers).

   Reported: messages and time until every party is informed. The
   shape: RMI grows linearly in both (request+reply per party,
   sequential completion), pub/sub stays flat in time. The buy-back
   over the carried remote reference is exercised in both arms. *)

module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Rmi = Tpbs_rmi.Rmi
module Pubsub = Tpbs_core.Pubsub

let run_pubsub ~n =
  let reg = Workload.registry () in
  let engine = Engine.create ~seed:1 () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in
  let market = Pubsub.Process.create domain (Net.add_node net) in
  let informed = ref 0 in
  let all_informed_at = ref 0 in
  let brokers =
    Array.init n (fun _ -> Pubsub.Process.create domain (Net.add_node net))
  in
  Array.iter
    (fun p ->
      let s =
        Pubsub.Process.subscribe p ~param:"StockQuote" (fun _ ->
            incr informed;
            if !informed = n then all_informed_at := Engine.now engine)
      in
      Pubsub.Subscription.activate s)
    brokers;
  Net.reset_stats net;
  let rng = Tpbs_sim.Rng.create 2 in
  Pubsub.Process.publish market
    (Workload.random_event reg rng ~cls:"StockQuote" ());
  Engine.run engine;
  (Net.stats net).Net.sent, !all_informed_at

let run_rmi ~n =
  let engine = Engine.create ~seed:1 () in
  let net = Net.create engine in
  let market_node = Net.add_node net in
  let market_rmi = Rmi.attach net ~me:market_node in
  let informed = ref 0 in
  let all_informed_at = ref 0 in
  let callbacks =
    Array.init n (fun _ ->
        let node = Net.add_node net in
        let rt = Rmi.attach net ~me:node in
        Rmi.export rt ~iface:"StockBroker" (fun ~meth:_ ~args:_ ->
            incr informed;
            if !informed = n then all_informed_at := Engine.now engine;
            Value.Bool true))
  in
  Net.reset_stats net;
  (* Sequential notification: invoke the next broker once the previous
     reply arrives — the conservative RPC style. *)
  let rec notify i =
    if i < n then
      Rmi.invoke market_rmi callbacks.(i) ~meth:"quote"
        ~args:[ Value.Str "Telco Mobiles"; Value.Float 80. ]
        ~k:(fun _ -> notify (i + 1))
  in
  notify 0;
  Engine.run engine;
  (Net.stats net).Net.sent, !all_informed_at

let run () =
  Workload.table_header
    "E6  one quote to N parties: publish/subscribe vs sequential RMI"
    [ "parties"; "ps msgs"; "ps t-all"; "rmi msgs"; "rmi t-all" ];
  List.iter
    (fun n ->
      let ps_msgs, ps_t = run_pubsub ~n in
      let rmi_msgs, rmi_t = run_rmi ~n in
      Fmt.pr "%7d  %7d  %8d  %8d  %9d@." n ps_msgs ps_t rmi_msgs rmi_t)
    [ 1; 5; 10; 25; 50; 100 ]
