(* SHARD — traced sharded-engine smoke for CI.

   One pooled pub/sub run at a domain count taken from $TPBS_DOMAINS
   (default 1): Prioritary classes spread over the shard partition,
   every handler body on the domain pool when domains > 1. The JSONL
   trace (metrics included) goes to $TPBS_TRACE_FILE (default
   "shard_smoke.jsonl") so CI can gate on the per-shard delivery
   counters ([core.shard.<k>.deliveries]) and the pool counters
   ([pool.tasks]) actually existing and being non-zero. *)

module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Trace = Tpbs_trace.Trace
module Report = Tpbs_trace.Report
module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Pubsub = Tpbs_core.Pubsub
module Shard = Tpbs_core.Shard
module Pool = Tpbs_core.Pool

let events = 200

let run () =
  let domains =
    match Sys.getenv_opt "TPBS_DOMAINS" with
    | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> 1)
    | None -> 1
  in
  let engine = Engine.create ~seed:41 () in
  let tr = Trace.create ~clock:(fun () -> Engine.now engine) () in
  let buf = Buffer.create (1 lsl 14) in
  Trace.set_sink tr (Some buf);
  Trace.set_ambient tr;
  (* One Prioritary class per shard residue, as in E1b. *)
  let classes = Array.make (max 2 domains) "" in
  let n_classes = Array.length classes in
  let found = ref 0 in
  let i = ref 0 in
  while !found < n_classes do
    let name = Printf.sprintf "Load%d" !i in
    let k = Shard.key ~n_shards:n_classes name in
    if classes.(k) = "" then begin
      classes.(k) <- name;
      incr found
    end;
    incr i
  done;
  let reg = Registry.create () in
  Array.iter
    (fun name ->
      Registry.declare_class reg ~name ~implements:[ "Prioritary" ]
        ~attrs:[ "n", Vtype.Tint; "priority", Vtype.Tint ]
        ())
    classes;
  let net = Net.create ~config:{ Net.default_config with jitter = 0 } engine in
  let domain = Pubsub.Domain.create ~n_shards:domains ~domains reg net in
  let pub = Pubsub.Process.create domain (Net.add_node net) in
  let sub = Pubsub.Process.create domain (Net.add_node net) in
  let subs =
    Array.map
      (fun cls ->
        let s = Pubsub.Process.subscribe sub ~param:cls (fun _ -> ()) in
        Pubsub.Subscription.activate s;
        s)
      classes
  in
  for j = 0 to events - 1 do
    Pubsub.Process.publish pub
      (Obvent.make reg
         classes.(j mod n_classes)
         [ "n", Value.Int j; "priority", Value.Int (j mod 3) ])
  done;
  Engine.run engine;
  let delivered =
    Array.fold_left (fun acc s -> acc + Pubsub.Subscription.delivered s) 0 subs
  in
  let pool_tasks =
    match Pubsub.Domain.pool_stats domain with
    | None -> 0
    | Some st -> st.Pool.tasks
  in
  Pubsub.Domain.shutdown domain;
  Trace.metrics_to_jsonl tr buf;
  Trace.set_ambient (Trace.create ());
  let path =
    match Sys.getenv_opt "TPBS_TRACE_FILE" with
    | Some p -> p
    | None -> "shard_smoke.jsonl"
  in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "@.SHARD  sharded-engine smoke (domains=%d, shards=%d)@." domains
    domains;
  Fmt.pr "delivered=%d/%d pool_tasks=%d virt=%d trace -> %s@." delivered events
    pool_tasks (Engine.now engine) path;
  if delivered <> events then begin
    Fmt.epr "shard smoke: lost events (%d/%d)@." delivered events;
    exit 1
  end;
  if domains > 1 && pool_tasks = 0 then begin
    Fmt.epr "shard smoke: pool never ran a handler at domains=%d@." domains;
    exit 1
  end
