(* E9 — Handler thread semantics (§3.3.5).

   A burst of obvents against a slow handler (fixed service time)
   under the two policies the paper defines (plus a bounded pool).
   Single-threading serializes — peak backlog grows, completion time
   stretches; multi-threading overlaps. The engine's default is also
   checked: ordered obvents default to single-threading. *)

module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Pubsub = Tpbs_core.Pubsub
module Dispatch = Tpbs_core.Dispatch
module Rng = Tpbs_sim.Rng

let burst = 40
let service_time = 8_000

let run_policy policy_name set_policy =
  let reg = Workload.registry () in
  let engine = Engine.create ~seed:12 () in
  let net = Net.create ~config:{ Net.default_config with jitter = 0 } engine in
  let domain = Pubsub.Domain.create reg net in
  let publisher = Pubsub.Process.create domain (Net.add_node net) in
  let subscriber = Pubsub.Process.create domain (Net.add_node net) in
  let last_done = ref 0 in
  let s =
    Pubsub.Process.subscribe subscriber ~param:"StockQuote" ~service_time
      (fun _ -> last_done := Engine.now engine)
  in
  set_policy s;
  Pubsub.Subscription.activate s;
  let rng = Rng.create 9 in
  for _ = 1 to burst do
    Pubsub.Process.publish publisher
      (Workload.random_event reg rng ~cls:"StockQuote" ())
  done;
  Engine.run engine;
  let st = Pubsub.Subscription.dispatch_stats s in
  Fmt.pr "%-14s %8d  %11d  %10d  %12d@." policy_name st.Dispatch.executed
    st.Dispatch.max_overlap st.Dispatch.peak_queue
    (Engine.now engine)

let rec run () =
  Workload.table_header
    (Printf.sprintf
       "E9  thread policies: burst of %d obvents, handler takes %d ticks"
       burst service_time)
    [ "policy"; "executed"; "max-overlap"; "peak-queue"; "finished-at" ];
  run_policy "multi" (fun _ -> ());
  run_policy "multi(4)" (fun s -> Pubsub.Subscription.set_multi_threading s ~max:4);
  run_policy "single" Pubsub.Subscription.set_single_threading;
  (* Default policy for ordered obvents is single (§3.3.5). *)
  let reg = Workload.registry () in
  let engine = Engine.create () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in
  let p = Pubsub.Process.create domain (Net.add_node net) in
  let s_total = Pubsub.Process.subscribe p ~param:"TotalQuote" (fun _ -> ()) in
  ignore s_total;
  Fmt.pr "(ordered classes default to single-threaded handlers)@.";
  run_domains ()

(* E9b — the same burst with Multi handler bodies on the real domain
   pool: the virtual-time dispatch schedule is unchanged (executed and
   finished-at match the single-domain run); what moves off the engine
   thread is the handler body itself, visible as pool task/steal
   counts. *)
and run_domains () =
  Workload.table_header
    "E9b pooled handler execution across real domains (same burst)"
    [ "domains"; "executed"; "finished-at"; "pool-tasks"; "pool-steals" ];
  let module Pool = Tpbs_core.Pool in
  let prev_tasks = ref 0 and prev_steals = ref 0 in
  List.iter
    (fun domains ->
      let reg = Workload.registry () in
      let engine = Engine.create ~seed:12 () in
      let net =
        Net.create ~config:{ Net.default_config with jitter = 0 } engine
      in
      let domain = Pubsub.Domain.create ~domains reg net in
      let publisher = Pubsub.Process.create domain (Net.add_node net) in
      let subscriber = Pubsub.Process.create domain (Net.add_node net) in
      let s =
        Pubsub.Process.subscribe subscriber ~param:"StockQuote" ~service_time
          (fun _ -> ())
      in
      Pubsub.Subscription.activate s;
      let rng = Rng.create 9 in
      for _ = 1 to burst do
        Pubsub.Process.publish publisher
          (Workload.random_event reg rng ~cls:"StockQuote" ())
      done;
      Engine.run engine;
      let st = Pubsub.Subscription.dispatch_stats s in
      let tasks, steals =
        match Pubsub.Domain.pool_stats domain with
        | None -> 0, 0
        | Some p ->
            let t = p.Pool.tasks - !prev_tasks
            and s = p.Pool.steals - !prev_steals in
            prev_tasks := p.Pool.tasks;
            prev_steals := p.Pool.steals;
            t, s
      in
      Fmt.pr "%7d  %8d  %11d  %10d  %11d@." domains st.Dispatch.executed
        (Engine.now engine) tasks steals;
      Pubsub.Domain.shutdown domain)
    [ 1; 4 ]
