(** Topic-based publish/subscribe: the "original" static scheme the
    paper contrasts type-based subscription with (§2.3.2 cites
    [OPSS93, Ske98, AEM99, TIB99]). Topics are path-like names forming
    a containment hierarchy, e.g. subscribing to ["stocks"] also
    receives ["stocks/telco"] — the topic-hierarchy analogue of
    Fig. 1's type hierarchy, but with no typing of the payload and no
    content filtering (the limited expressiveness the paper points
    out). Wildcard ["*"] matches one trailing level. *)

type t
(** A topic-matching engine (one filtering host's view). *)

val create : unit -> t

val subscribe : t -> topic:string -> int -> unit
(** Register subscriber id under a topic pattern. A trailing ["/*"]
    matches exactly one extra level; a plain topic matches itself and
    every descendant. *)

val unsubscribe : t -> topic:string -> int -> unit

val publish : t -> topic:string -> int list
(** Subscriber ids whose pattern matches the published topic,
    ascending. *)

val topic_count : t -> int
val subscriber_count : t -> int

val parse : string -> string list
(** Split a topic path on ['/']; empty segments are dropped. *)
