module Sset = Set.Make (Int)

(* Trie over topic segments. *)
type node = {
  mutable exact : Sset.t;  (* subscribers to this node and subtree *)
  mutable one_level : Sset.t;  (* trailing wildcard: one extra level *)
  children : (string, node) Hashtbl.t;
}

type t = { root : node; mutable subscriber_count : int }

let fresh_node () =
  { exact = Sset.empty; one_level = Sset.empty; children = Hashtbl.create 4 }

let create () = { root = fresh_node (); subscriber_count = 0 }

let parse topic =
  List.filter (fun s -> s <> "") (String.split_on_char '/' topic)

let rec descend node segments ~make =
  match segments with
  | [] -> Some node
  | seg :: rest -> (
      match Hashtbl.find_opt node.children seg with
      | Some child -> descend child rest ~make
      | None ->
          if make then begin
            let child = fresh_node () in
            Hashtbl.replace node.children seg child;
            descend child rest ~make
          end
          else None)

let split_wildcard topic =
  let segments = parse topic in
  match List.rev segments with
  | "*" :: rest -> List.rev rest, true
  | _ -> segments, false

let subscribe t ~topic id =
  let segments, wildcard = split_wildcard topic in
  match descend t.root segments ~make:true with
  | None -> assert false
  | Some node ->
      t.subscriber_count <- t.subscriber_count + 1;
      if wildcard then node.one_level <- Sset.add id node.one_level
      else node.exact <- Sset.add id node.exact

let unsubscribe t ~topic id =
  let segments, wildcard = split_wildcard topic in
  match descend t.root segments ~make:false with
  | None -> ()
  | Some node ->
      let before =
        Sset.cardinal node.exact + Sset.cardinal node.one_level
      in
      if wildcard then node.one_level <- Sset.remove id node.one_level
      else node.exact <- Sset.remove id node.exact;
      let after = Sset.cardinal node.exact + Sset.cardinal node.one_level in
      t.subscriber_count <- t.subscriber_count - (before - after)

let publish t ~topic =
  let segments = parse topic in
  let acc = ref Sset.empty in
  let rec walk node = function
    | [] -> acc := Sset.union node.exact !acc
    | [ last ] -> (
        (* A one-level wildcard at this node matches the last segment. *)
        acc := Sset.union node.one_level !acc;
        acc := Sset.union node.exact !acc;
        match Hashtbl.find_opt node.children last with
        | Some child -> walk child []
        | None -> ())
    | seg :: rest -> (
        (* Plain subscriptions match every descendant. *)
        acc := Sset.union node.exact !acc;
        match Hashtbl.find_opt node.children seg with
        | Some child -> walk child rest
        | None -> ())
  in
  walk t.root segments;
  Sset.elements !acc

let rec count_topics node =
  Hashtbl.fold (fun _ child acc -> acc + count_topics child) node.children 1

let topic_count t = count_topics t.root - 1 (* exclude the root *)
let subscriber_count t = t.subscriber_count
