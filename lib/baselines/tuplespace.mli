(** A Linda tuple space [Gel85] — the spiritual ancestor the paper
    compares publish/subscribe against (§6.3), with the classical
    primitives and the latter-day callback extension:

    - [out] pushes a tuple (cf. [publish]);
    - [read] finds a matching tuple without removing it;
    - [take] (Linda's [in]) withdraws a matching tuple — the
      concurrency-control primitive publish/subscribe deliberately
      gives up for scalability (§6.3.3);
    - [notify] registers a callback for future [out]s, the
      JavaSpaces/TSpaces-style pub/sub retrofit (§6.3.4).

    Matching is template-based (§5.1.2's critique): a template is a
    list of actuals (exact values) and formals (typed placeholders),
    compared attribute-wise — nested or range matching must be
    programmed around, which is exactly the expressiveness gap
    experiment E7 measures. *)

type pattern =
  | Exact of Tpbs_serial.Value.t  (** actual: must be equal *)
  | Formal of Tpbs_serial.Value.kind  (** typed placeholder *)
  | Wildcard  (** untyped placeholder *)

type template = pattern list

type tuple = Tpbs_serial.Value.t list

type t

val create : unit -> t

val out : t -> tuple -> unit
(** Insert; pending [take]/[read] continuations and [notify]
    registrations are served first (in registration order). *)

val try_read : t -> template -> tuple option
(** Oldest matching tuple, left in place. *)

val try_take : t -> template -> tuple option
(** Oldest matching tuple, withdrawn. *)

val read : t -> template -> k:(tuple -> unit) -> unit
(** Blocking read: [k] fires immediately if a match exists, else on a
    future matching [out]. *)

val take : t -> template -> k:(tuple -> unit) -> unit
(** Blocking withdraw; at most one blocked [take] consumes a given
    tuple. *)

val notify : t -> template -> (tuple -> unit) -> int
(** Persistent subscription to future matching [out]s (does not see
    existing tuples). Returns a registration id. *)

val cancel_notify : t -> int -> unit

val matches : template -> tuple -> bool
val size : t -> int
(** Tuples currently in the space. *)

val pending : t -> int
(** Blocked read/take continuations. *)
