module Value = Tpbs_serial.Value

type op = Eq | Ne | Lt | Le | Gt | Ge | Contains | Prefix

type constraint_ = { attr : string; op : op; const : Value.t }

type event = (string * Value.t) list

type t = {
  subs : (int, constraint_ list) Hashtbl.t;
  (* counting index: attribute -> constraints mentioning it *)
  by_attr : (string, (constraint_ * int) list ref) Hashtbl.t;
  sizes : (int, int) Hashtbl.t;
}

let create () =
  { subs = Hashtbl.create 64; by_attr = Hashtbl.create 64;
    sizes = Hashtbl.create 64 }

let num = function
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | _ -> None

let is_substring ~needle hay =
  let nn = String.length needle and hn = String.length hay in
  nn = 0
  ||
  let found = ref false in
  (try
     for i = 0 to hn - nn do
       if String.sub hay i nn = needle then begin
         found := true;
         raise Exit
       end
     done
   with Exit -> ());
  !found

let satisfied (c : constraint_) (v : Value.t) =
  match c.op with
  | Eq -> (
      match num v, num c.const with
      | Some a, Some b -> a = b
      | _ -> Value.equal v c.const)
  | Ne -> (
      match num v, num c.const with
      | Some a, Some b -> a <> b
      | _ -> not (Value.equal v c.const))
  | Lt | Le | Gt | Ge -> (
      let cmp =
        match num v, num c.const with
        | Some a, Some b -> Some (Float.compare a b)
        | _ -> (
            match v, c.const with
            | Value.Str a, Value.Str b -> Some (String.compare a b)
            | _ -> None)
      in
      match cmp with
      | None -> false
      | Some r -> (
          match c.op with
          | Lt -> r < 0
          | Le -> r <= 0
          | Gt -> r > 0
          | Ge -> r >= 0
          | Eq | Ne | Contains | Prefix -> assert false))
  | Contains -> (
      match v, c.const with
      | Value.Str s, Value.Str needle -> is_substring ~needle s
      | _ -> false)
  | Prefix -> (
      match v, c.const with
      | Value.Str s, Value.Str p ->
          String.length p <= String.length s
          && String.sub s 0 (String.length p) = p
      | _ -> false)

let matches_naive constraints event =
  List.for_all
    (fun c ->
      match List.assoc_opt c.attr event with
      | None -> false
      | Some v -> satisfied c v)
    constraints

let subscribe t id constraints =
  if Hashtbl.mem t.subs id then invalid_arg "Contentps.subscribe: duplicate id";
  Hashtbl.replace t.subs id constraints;
  Hashtbl.replace t.sizes id (List.length constraints);
  List.iter
    (fun c ->
      let bucket =
        match Hashtbl.find_opt t.by_attr c.attr with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.replace t.by_attr c.attr b;
            b
      in
      bucket := (c, id) :: !bucket)
    constraints

let unsubscribe t id =
  match Hashtbl.find_opt t.subs id with
  | None -> ()
  | Some constraints ->
      Hashtbl.remove t.subs id;
      Hashtbl.remove t.sizes id;
      List.iter
        (fun (c : constraint_) ->
          match Hashtbl.find_opt t.by_attr c.attr with
          | Some bucket ->
              bucket := List.filter (fun (_, sid) -> sid <> id) !bucket
          | None -> ())
        constraints

let matches t event =
  (* Counting algorithm over the per-attribute index. *)
  let counters = Hashtbl.create 32 in
  let matched = ref [] in
  List.iter
    (fun (attr, v) ->
      match Hashtbl.find_opt t.by_attr attr with
      | None -> ()
      | Some bucket ->
          List.iter
            (fun (c, sid) ->
              if satisfied c v then begin
                let n =
                  1 + Option.value ~default:0 (Hashtbl.find_opt counters sid)
                in
                Hashtbl.replace counters sid n;
                if n = Hashtbl.find t.sizes sid then matched := sid :: !matched
              end)
            !bucket)
    event;
  (* Empty conjunctions match everything. *)
  Hashtbl.iter
    (fun sid size -> if size = 0 then matched := sid :: !matched)
    t.sizes;
  List.sort_uniq Int.compare !matched

let subscriber_count t = Hashtbl.length t.subs
