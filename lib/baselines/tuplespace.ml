module Value = Tpbs_serial.Value

type pattern = Exact of Value.t | Formal of Value.kind | Wildcard
type template = pattern list
type tuple = Value.t list

type waiter = {
  w_template : template;
  w_k : tuple -> unit;
  w_take : bool;
  mutable w_done : bool;
}

type t = {
  mutable tuples : (int * tuple) list;  (* insertion order, oldest first *)
  mutable next_stamp : int;
  mutable waiters : waiter list;  (* registration order *)
  notifies : (int, template * (tuple -> unit)) Hashtbl.t;
  mutable next_notify : int;
}

let create () =
  { tuples = []; next_stamp = 0; waiters = []; notifies = Hashtbl.create 8;
    next_notify = 0 }

let pattern_matches p v =
  match p with
  | Wildcard -> true
  | Formal k -> Value.kind v = k
  | Exact expected -> Value.equal expected v

let matches template tuple =
  List.length template = List.length tuple
  && List.for_all2 pattern_matches template tuple

let size t = List.length t.tuples
let pending t = List.length (List.filter (fun w -> not w.w_done) t.waiters)

let insert t tuple =
  let stamp = t.next_stamp in
  t.next_stamp <- stamp + 1;
  t.tuples <- t.tuples @ [ stamp, tuple ]

let remove_stamp t stamp =
  t.tuples <- List.filter (fun (s, _) -> s <> stamp) t.tuples

let find_oldest t template =
  List.find_opt (fun (_, tuple) -> matches template tuple) t.tuples

let try_read t template = Option.map snd (find_oldest t template)

let try_take t template =
  match find_oldest t template with
  | None -> None
  | Some (stamp, tuple) ->
      remove_stamp t stamp;
      Some tuple

let out t tuple =
  (* Serve blocked continuations first, in registration order; a take
     consumes the tuple and stops the scan. *)
  let consumed = ref false in
  List.iter
    (fun w ->
      if (not !consumed) && (not w.w_done) && matches w.w_template tuple then begin
        w.w_done <- true;
        if w.w_take then consumed := true;
        w.w_k tuple
      end)
    t.waiters;
  t.waiters <- List.filter (fun w -> not w.w_done) t.waiters;
  if not !consumed then begin
    insert t tuple;
    Hashtbl.iter
      (fun _ (template, callback) ->
        if matches template tuple then callback tuple)
      t.notifies
  end

let read t template ~k =
  match try_read t template with
  | Some tuple -> k tuple
  | None ->
      t.waiters <-
        t.waiters @ [ { w_template = template; w_k = k; w_take = false; w_done = false } ]

let take t template ~k =
  match try_take t template with
  | Some tuple -> k tuple
  | None ->
      t.waiters <-
        t.waiters @ [ { w_template = template; w_k = k; w_take = true; w_done = false } ]

let notify t template callback =
  let id = t.next_notify in
  t.next_notify <- id + 1;
  Hashtbl.replace t.notifies id (template, callback);
  id

let cancel_notify t id = Hashtbl.remove t.notifies id
