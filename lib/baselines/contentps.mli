(** Attribute–value content-based publish/subscribe, in the style the
    paper contrasts with (CEA [BMB+00], Siena/Gryphon [CNF98, ASS+99]):
    events are flat bags of named attributes — no encapsulation, no
    typing of the event as an object — and subscriptions are
    conjunctions of (attribute, operator, constant) constraints.

    This is the baseline for experiment E7: it matches the same
    workloads as the type-based engine but gives up LP1 (no static
    checks — a predicate on a missing or mistyped attribute is just
    false) and LP2 (the event's representation is the interface). *)

type op = Eq | Ne | Lt | Le | Gt | Ge | Contains | Prefix

type constraint_ = { attr : string; op : op; const : Tpbs_serial.Value.t }

type event = (string * Tpbs_serial.Value.t) list

type t

val create : unit -> t

val subscribe : t -> int -> constraint_ list -> unit
(** Register subscriber id with a conjunction (empty = match all).
    @raise Invalid_argument on duplicate id. *)

val unsubscribe : t -> int -> unit

val matches : t -> event -> int list
(** Subscriber ids whose every constraint is satisfied, ascending.
    Constraints on absent attributes are false. *)

val matches_naive : constraint_ list -> event -> bool
(** Reference single-subscription evaluation (used by tests and the
    naive arm of benches). *)

val subscriber_count : t -> int
