(** Introspection over obvents (§5.5.1 "100% Pure Content").

    The paper notes that Java's reflection lets a subscriber match
    obvents {e structurally} — "subscribe to any obvents which
    implement a given method irrespective of the types" — trading LP1
    type safety for flexibility, and reports that its prototype
    supports such untyped filters. This module is the [getClass] /
    [getMethod] / [invoke] surface; the engine consumes it through
    opaque closure filters, which are automatically local-only — the
    honest cost of giving up the static filter discipline. *)

val class_name : Obvent.t -> string
(** The analogue of [o.getClass().getName()]. *)

val methods : Tpbs_types.Registry.t -> Obvent.t -> Tpbs_types.Registry.meth list
(** All getters visible on the obvent's dynamic type. *)

val has_method :
  Tpbs_types.Registry.t -> Obvent.t -> string -> ?ret:Tpbs_types.Vtype.t -> unit -> bool
(** [has_method reg o "getPrice" ~ret:Tfloat ()] — the [getMethod]
    test; the optional [ret] also checks the result type. *)

val invoke_opt :
  Tpbs_types.Registry.t -> Obvent.t -> string -> Tpbs_serial.Value.t option
(** Dynamic invocation: [None] when the method is missing — no
    exception, matching reflective filters' "absent means no match"
    reading. *)

val structural_filter :
  Tpbs_types.Registry.t ->
  meth:string ->
  (Tpbs_serial.Value.t -> bool) ->
  Obvent.t ->
  bool
(** The paper's §5.5.1 idiom as a predicate: "any obvent type which
    implements [meth] could be captured by this filter"; obvents
    without the method don't match. Use with
    {!Tpbs_core.Fspec.closure}. *)

val fields_of : Obvent.t -> (string * Tpbs_serial.Value.kind) list
(** Shallow structural description (a self-describing-message view of
    the obvent, cf. [OPSS93]). *)
