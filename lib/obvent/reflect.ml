module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Value = Tpbs_serial.Value

let class_name = Obvent.cls
let methods reg o = Registry.methods_of reg (Obvent.cls o)

let has_method reg o name ?ret () =
  match Registry.method_ret reg (Obvent.cls o) name with
  | None -> false
  | Some actual -> (
      match ret with None -> true | Some expected -> Vtype.equal actual expected)

let invoke_opt reg o name =
  if has_method reg o name () then
    match Obvent.invoke reg o name with
    | v -> Some v
    | exception Obvent.Invalid_obvent _ -> None
  else None

let structural_filter reg ~meth pred o =
  match invoke_opt reg o meth with Some v -> pred v | None -> false

let fields_of o =
  List.map (fun (name, v) -> name, Value.kind v) (Obvent.fields o)
