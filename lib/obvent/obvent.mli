(** Obvents — event objects (§2.1.1): application-defined, first-class
    unbound objects used to notify events.

    An obvent is an instance of a registered obvent {e class}
    (a class whose type widens to [Obvent]). Its attributes are
    private; the observable surface is its getters, which is what the
    paper's filters invoke (LP2: encapsulation preservation).

    Each in-memory obvent carries a unique id. Serialization never
    transports the id: deserializing always mints a fresh one, which
    realizes the paper's uniqueness rules (§2.1.2) — every subscriber,
    even two notifiables in the same address space, receives a
    distinct clone of the published obvent. *)

type t

exception Invalid_obvent of string

val make :
  Tpbs_types.Registry.t ->
  string ->
  (string * Tpbs_serial.Value.t) list ->
  t
(** [make reg cls fields] instantiates obvent class [cls]. Every
    attribute declared by [cls] (including inherited ones) must be
    given exactly once with a conforming value, and no extra field is
    allowed.
    @raise Invalid_obvent if [cls] is unknown, abstract (an
    interface), not an obvent type, or the fields don't conform. *)

val uid : t -> int
(** Process-unique identity, fresh per clone. *)

val cls : t -> string
(** The dynamic type (concrete class) of the obvent. *)

val fields : t -> (string * Tpbs_serial.Value.t) list

val get : t -> string -> Tpbs_serial.Value.t
(** Attribute access by name.
    @raise Invalid_obvent if absent. *)

val view : t -> t
(** A copy-on-write clone: fresh identity (§2.1.2), field structure
    physically shared with the source. O(1). The share is unobservable
    through the API: a {!set} on either side rebinds that side's
    private spine, never the other's. This is what the delivery path
    hands each co-located subscriber instead of a full
    serialize+deserialize round trip. *)

val is_view : t -> bool
(** True while the obvent still shares its field spine (no write has
    materialized a private copy). Accounting introspection only. *)

val set : Tpbs_types.Registry.t -> t -> string -> Tpbs_serial.Value.t -> unit
(** [set reg o attr v] mutates attribute [attr]. Runs the
    copy-on-write write barrier first: a shared (view) obvent
    materializes its private copy, so the write is never visible to
    the publisher or to any other subscriber's clone.
    @raise Invalid_obvent if [attr] is not declared by the obvent's
    class or [v] does not conform to its declared type. *)

val invoke_setter :
  Tpbs_types.Registry.t -> t -> string -> Tpbs_serial.Value.t -> unit
(** [invoke_setter reg o "setPrice" v] — the generated mutator path;
    resolves the attribute from the setter name and delegates to
    {!set}.
    @raise Invalid_obvent if the name is not setter-shaped or the
    attribute is unknown/mistyped. *)

val attr_of_setter : string -> string option
(** [attr_of_setter "setPrice"] is [Some "price"]; [None] when the
    name does not follow the setter convention. *)

type cow_stats = { views : int; materializations : int }

val cow_stats : unit -> cow_stats
(** Process-global copy-on-write accounting: views minted by {!view}
    and how many of them materialized a private copy on first write. *)

val invoke : Tpbs_types.Registry.t -> t -> string -> Tpbs_serial.Value.t
(** [invoke reg o "getPrice"] — call a getter. This is the only
    method-invocation form filters may use (§3.3.4).
    @raise Invalid_obvent if the method is not visible on the obvent's
    class. *)

val attr_of_getter : string -> string option
(** [attr_of_getter "getPrice"] is [Some "price"]; [None] when the
    name does not follow the getter convention. *)

val to_value : t -> Tpbs_serial.Value.t
(** View as a serializable value (drops the uid). *)

val of_value : Tpbs_types.Registry.t -> Tpbs_serial.Value.t -> t
(** Validate and adopt a value as an obvent, minting a fresh uid.
    @raise Invalid_obvent if the value doesn't conform. *)

val serialize : t -> string

val deserialize : Tpbs_types.Registry.t -> string -> t
(** @raise Invalid_obvent on garbage or non-conforming payloads. *)

val clone : Tpbs_types.Registry.t -> t -> t
(** Round trip through the codec: structurally equal, fresh uid. *)

val equal_content : t -> t -> bool
(** Structural equality, ignoring uids. *)

val pp : Format.formatter -> t -> unit

val instance_of : Tpbs_types.Registry.t -> t -> string -> bool
(** [instance_of reg o t] — does the obvent's dynamic type widen to
    [t]? The basic type-based subscription test (§2.1.3). *)

val qos : Tpbs_types.Registry.t -> t -> Tpbs_types.Qos.profile
(** Resolved delivery/transmission semantics of the obvent's class. *)

val priority : Tpbs_types.Registry.t -> t -> int
(** [getPriority] if the obvent is [Prioritary], else [0]. *)

val time_to_live : Tpbs_types.Registry.t -> t -> int option
(** [getTimeToLive] if the obvent is [Timely] (and its semantics were
    not overridden by reliability), else [None]. *)

val birth : Tpbs_types.Registry.t -> t -> int option
(** [getBirth] if the obvent is [Timely]. *)
