module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec
module Registry = Tpbs_types.Registry
module Qos = Tpbs_types.Qos

(* Copy-on-write representation: [fields] is an immutable assoc list
   that may be physically shared with other obvents (a decode shared
   by every co-located subscriber's view). The isolation guarantee
   (§2.1.2) survives sharing because a write never mutates the list —
   {!set} rebinds [fields] to a fresh spine, so every other holder of
   the old spine is untouched. [owned] is the write barrier's memory:
   it records whether this obvent has already paid for a private
   spine, and feeds the materialization accounting. *)
type t = {
  uid : int;
  cls : string;
  mutable fields : (string * Value.t) list;
  mutable owned : bool;
}

exception Invalid_obvent of string

let err fmt = Fmt.kstr (fun s -> raise (Invalid_obvent s)) fmt

let counter = ref 0

let fresh_uid () =
  incr counter;
  !counter

(* COW accounting (process-global, like the uid counter): how many
   lightweight views were minted and how many of them materialized a
   private copy on first write. *)
type cow_stats = { views : int; materializations : int }

let views_created = ref 0
let materialized = ref 0
let cow_stats () = { views = !views_created; materializations = !materialized }

let uid o = o.uid
let cls o = o.cls
let fields o = o.fields
let is_view o = not o.owned

let validate reg cls fields =
  if not (Registry.exists reg cls) then err "unknown class %s" cls;
  if not (Registry.is_class reg cls) then
    err "%s is an interface; obvents are class instances" cls;
  if not (Registry.is_obvent_type reg cls) then
    err "class %s does not widen to Obvent" cls;
  let declared = Registry.attrs_of reg cls in
  List.iter
    (fun (attr, ty) ->
      match List.assoc_opt attr fields with
      | None -> err "class %s: missing attribute %s" cls attr
      | Some v ->
          if not (Registry.conforms_vtype reg v ty) then
            err "class %s: attribute %s = %a does not conform to %a" cls attr
              Value.pp v Tpbs_types.Vtype.pp ty)
    declared;
  List.iter
    (fun (attr, _) ->
      if not (List.mem_assoc attr declared) then
        err "class %s: unexpected field %s" cls attr)
    fields;
  (* Normalize field order to declaration order so that structural
     equality and serialization are canonical. *)
  List.map (fun (attr, _) -> attr, List.assoc attr fields) declared

let make reg cls fields =
  let fields = validate reg cls fields in
  { uid = fresh_uid (); cls; fields; owned = true }

let get o attr =
  match List.assoc_opt attr o.fields with
  | Some v -> v
  | None -> err "obvent %s has no attribute %s" o.cls attr

(* A lightweight clone: fresh identity, field spine shared with the
   source. O(1) — no bytes are copied, no validation re-runs (the
   source was validated when it was made or adopted). *)
let view o =
  incr views_created;
  { uid = fresh_uid (); cls = o.cls; fields = o.fields; owned = false }

(* The write barrier: before the first mutation through a view, charge
   it for a private copy. With immutable field spines "materializing"
   is only an accounting event — the actual privatization happens in
   [set], which rebuilds the spine instead of mutating it — but it is
   the observable moment the copy-on-write contract gets exercised. *)
let materialize o =
  if not o.owned then begin
    o.owned <- true;
    incr materialized
  end

let set reg o attr v =
  (match List.assoc_opt attr (Registry.attrs_of reg o.cls) with
  | None -> err "class %s has no attribute %s" o.cls attr
  | Some ty ->
      if not (Registry.conforms_vtype reg v ty) then
        err "class %s: attribute %s = %a does not conform to %a" o.cls attr
          Value.pp v Tpbs_types.Vtype.pp ty);
  materialize o;
  o.fields <-
    List.map (fun (n, old) -> n, if String.equal n attr then v else old) o.fields

let attr_of_getter m =
  let n = String.length m in
  if n > 3 && String.sub m 0 3 = "get" then
    Some (String.uncapitalize_ascii (String.sub m 3 (n - 3)))
  else None

let attr_of_setter m =
  let n = String.length m in
  if n > 3 && String.sub m 0 3 = "set" then
    Some (String.uncapitalize_ascii (String.sub m 3 (n - 3)))
  else None

let invoke reg o m =
  match Registry.method_ret reg o.cls m with
  | None -> err "obvent %s has no method %s" o.cls m
  | Some _ -> (
      match attr_of_getter m with
      | Some attr -> get o attr
      | None -> err "method %s is not a getter" m)

(* The generated setter path ("setPrice" etc.): the paper's obvent
   classes are plain objects with mutators; every mutator funnels
   through {!set} and therefore through the write barrier. *)
let invoke_setter reg o m v =
  match attr_of_setter m with
  | Some attr -> set reg o attr v
  | None -> err "method %s is not a setter" m

let to_value o : Value.t = Obj { cls = o.cls; fields = o.fields }

let of_value reg (v : Value.t) =
  match v with
  | Obj o ->
      if not (Registry.conforms reg v o.cls) then
        err "value does not conform to class %s" o.cls;
      if not (Registry.is_obvent_type reg o.cls) then
        err "class %s does not widen to Obvent" o.cls;
      { uid = fresh_uid (); cls = o.cls; fields = o.fields; owned = true }
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ | Remote _ ->
      err "value is not an object"

let serialize o = Codec.encode (to_value o)

let deserialize reg s =
  match Codec.decode s with
  | v -> of_value reg v
  | exception Codec.Decode_error msg -> err "deserialize: %s" msg

let clone reg o = deserialize reg (serialize o)

let equal_content a b =
  String.equal a.cls b.cls
  && List.equal
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && Value.equal v1 v2)
       a.fields b.fields

let pp ppf o = Fmt.pf ppf "#%d:%a" o.uid Value.pp (to_value o)
let instance_of reg o tname = Registry.subtype reg o.cls tname
let qos reg o = fst (Qos.of_type reg o.cls)

let int_getter reg o m =
  match invoke reg o m with
  | Int i -> i
  | v -> err "%s returned %a, expected int" m Value.pp v

let priority reg o =
  if Registry.subtype reg o.cls "Prioritary" then int_getter reg o "getPriority"
  else 0

let time_to_live reg o =
  if Registry.subtype reg o.cls "Timely" then
    Some (int_getter reg o "getTimeToLive")
  else None

let birth reg o =
  if Registry.subtype reg o.cls "Timely" then Some (int_getter reg o "getBirth")
  else None
