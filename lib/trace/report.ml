let validate_line line =
  match Jsonl.parse line with
  | Error msg -> Error msg
  | Ok json -> (
      match json with
      | Jsonl.Obj _ -> (
          match Jsonl.member "metric" json with
          | Some (Jsonl.Str _) -> (
              match Jsonl.member "name" json with
              | Some (Jsonl.Str _) -> Ok ()
              | _ -> Error "metric record without string \"name\"")
          | Some _ -> Error "\"metric\" is not a string"
          | None -> (
              match
                ( Jsonl.member "t" json,
                  Jsonl.member "layer" json,
                  Jsonl.member "kind" json )
              with
              | Some (Jsonl.Num _), Some (Jsonl.Str _), Some (Jsonl.Str _) ->
                  Ok ()
              | _ -> Error "event record missing t/layer/kind"))
      | _ -> Error "line is not a JSON object")

let check lines =
  let rec go lineno ok = function
    | [] -> Ok ok
    | line :: rest -> (
        if String.trim line = "" then go (lineno + 1) ok rest
        else
          match validate_line line with
          | Ok () -> go (lineno + 1) (ok + 1) rest
          | Error msg -> Error (lineno, msg))
  in
  go 1 0 lines

let summarize lines =
  let events = Hashtbl.create 32 in
  let counters = ref [] in
  let gauges = ref [] in
  let histograms = ref [] in
  let n_events = ref 0 in
  let t_min = ref max_int and t_max = ref min_int in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Jsonl.parse line with
        | Error _ -> ()
        | Ok json -> (
            match Jsonl.member "metric" json with
            | Some (Jsonl.Str kind) -> (
                let name =
                  match Jsonl.member "name" json with
                  | Some (Jsonl.Str s) -> s
                  | _ -> "?"
                in
                let num field =
                  match Jsonl.member field json with
                  | Some (Jsonl.Num f) -> f
                  | _ -> 0.
                in
                match kind with
                | "counter" ->
                    counters :=
                      (name, int_of_float (num "value")) :: !counters
                | "gauge" ->
                    gauges :=
                      ( name,
                        int_of_float (num "level"),
                        int_of_float (num "peak") )
                      :: !gauges
                | "histogram" ->
                    histograms :=
                      ( name,
                        int_of_float (num "count"),
                        num "mean",
                        num "p99" )
                      :: !histograms
                | _ -> ())
            | _ -> (
                match
                  ( Jsonl.member "t" json,
                    Jsonl.member "layer" json,
                    Jsonl.member "kind" json )
                with
                | Some (Jsonl.Num t), Some (Jsonl.Str layer), Some (Jsonl.Str k)
                  ->
                    incr n_events;
                    let t = int_of_float t in
                    if t < !t_min then t_min := t;
                    if t > !t_max then t_max := t;
                    let key = layer ^ "/" ^ k in
                    Hashtbl.replace events key
                      (1
                      + Option.value ~default:0 (Hashtbl.find_opt events key))
                | _ -> ())))
    lines;
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if !n_events > 0 then begin
    pf "events: %d  (t=%d..%d)\n" !n_events !t_min !t_max;
    List.iter
      (fun key -> pf "  %-32s %8d\n" key (Hashtbl.find events key))
      (List.sort String.compare
         (Hashtbl.fold (fun k _ acc -> k :: acc) events []))
  end
  else pf "events: 0\n";
  let sorted_by_name proj l =
    List.sort (fun a b -> String.compare (proj a) (proj b)) l
  in
  if !counters <> [] then begin
    pf "counters:\n";
    List.iter
      (fun (name, v) -> pf "  %-32s %8d\n" name v)
      (sorted_by_name fst !counters)
  end;
  if !gauges <> [] then begin
    pf "gauges (level/peak):\n";
    List.iter
      (fun (name, level, peak) -> pf "  %-32s %8d /%8d\n" name level peak)
      (sorted_by_name (fun (n, _, _) -> n) !gauges)
  end;
  if !histograms <> [] then begin
    pf "histograms:\n";
    List.iter
      (fun (name, count, mean, p99) ->
        pf "  %-32s n=%-8d mean=%-12.1f p99=%.1f\n" name count mean p99)
      (sorted_by_name (fun (n, _, _, _) -> n) !histograms)
  end;
  Buffer.contents buf

(* Counters are exported cumulatively; the last record for a name is
   its final value. *)
let counter_value lines name =
  List.fold_left
    (fun acc line ->
      if String.trim line = "" then acc
      else
        match Jsonl.parse line with
        | Error _ -> acc
        | Ok json -> (
            match
              (Jsonl.member "metric" json, Jsonl.member "name" json)
            with
            | Some (Jsonl.Str "counter"), Some (Jsonl.Str n) when n = name -> (
                match Jsonl.member "value" json with
                | Some (Jsonl.Num v) -> Some (int_of_float v)
                | _ -> acc)
            | _ -> acc))
    None lines

(* Generic lookup for SLO gates: any metric kind, any numeric field
   ("value" for counters, "level"/"peak" for gauges, "count"/"mean"/
   "p50"/"p99"/"max"/"stddev" for histograms). Last record wins, as
   above. *)
let metric_value lines name field =
  List.fold_left
    (fun acc line ->
      if String.trim line = "" then acc
      else
        match Jsonl.parse line with
        | Error _ -> acc
        | Ok json -> (
            match
              (Jsonl.member "metric" json, Jsonl.member "name" json)
            with
            | Some (Jsonl.Str _), Some (Jsonl.Str n) when n = name -> (
                match Jsonl.member field json with
                | Some (Jsonl.Num v) -> Some v
                | _ -> acc)
            | _ -> acc))
    None lines
