type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("invalid literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "invalid \\u escape"
            in
            pos := !pos + 4;
            (* Our exporter only emits \u00xx control escapes; decode
               the BMP code point as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
        | _ -> fail "invalid escape");
        loop ()
      end
      else if Char.code c < 0x20 then fail "raw control char in string"
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "invalid number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Fail "trailing garbage");
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None
