type t = {
  mutable samples : float array;
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;  (* sum of squared deviations from the running mean *)
  mutable sorted : bool;
}

let create () =
  { samples = Array.make 64 0.; n = 0; mean = 0.; m2 = 0.; sorted = true }

let record t x =
  if t.n = Array.length t.samples then begin
    let fresh = Array.make (2 * t.n) 0. in
    Array.blit t.samples 0 fresh 0 t.n;
    t.samples <- fresh
  end;
  t.samples.(t.n) <- x;
  t.n <- t.n + 1;
  (* Welford: numerically stable even when all samples sit on a large
     common offset, where the sum-of-squares formula cancels
     catastrophically. *)
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  t.sorted <- false

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.n in
    Array.sort Float.compare live;
    Array.blit live 0 t.samples 0 t.n;
    t.sorted <- true
  end

let min t =
  if t.n = 0 then 0.
  else begin
    ensure_sorted t;
    t.samples.(0)
  end

let max t =
  if t.n = 0 then 0.
  else begin
    ensure_sorted t;
    t.samples.(t.n - 1)
  end

let percentile t p =
  if t.n = 0 then 0.
  else begin
    ensure_sorted t;
    let rank = int_of_float (ceil (p *. float_of_int t.n)) in
    t.samples.(Stdlib.min (t.n - 1) (Stdlib.max 0 (rank - 1)))
  end

let stddev t =
  if t.n < 2 then 0. else sqrt (Stdlib.max 0. (t.m2 /. float_of_int t.n))

let clear t =
  t.n <- 0;
  t.mean <- 0.;
  t.m2 <- 0.;
  t.sorted <- true

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f" (count t) (mean t)
    (percentile t 0.50) (percentile t 0.99) (max t)
