(** Minimal JSON parser — just enough to validate and summarize the
    trace exporter's JSONL output without an external dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result
(** Parse one complete JSON value; trailing garbage is an error. *)

val member : string -> json -> json option
(** Field lookup on objects; [None] otherwise. *)

val to_string : json -> string option
val to_num : json -> float option
