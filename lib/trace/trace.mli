(** Unified observability: named monotonic counters, sampled gauges,
    histograms, and structured trace events.

    A registry is wired to a deterministic clock (normally
    [Engine.now]), so every emitted event carries simulation time and a
    fixed-seed run produces byte-identical trace output. Counters and
    gauges are atomic ints — always on, a handful of nanoseconds per
    update, and safe to bump from the sharded engine's domain workers
    concurrently with the engine thread. Histograms are owned by the
    engine (tick) thread: parallel shards aggregate into them only at
    the tick barrier. Trace {e events} are only serialized when a
    sink buffer is installed; with the default no-op sink [emit] is a
    single field test.

    Instrumented modules obtain their registry via the {e ambient}
    registry at construction time ([Trace.ambient ()]); harnesses
    install a fresh registry (with the engine clock) before building a
    world so runs stay isolated and reproducible. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  (** Record the current level; tracks the peak across all samples. *)

  val value : t -> int
  val peak : t -> int
  val name : t -> string
end

type t

val create : ?clock:(unit -> int) -> unit -> t
(** [clock] stamps events and defaults to [fun () -> 0]; pass
    [fun () -> Engine.now e] for deterministic simulation time. *)

val set_clock : t -> (unit -> int) -> unit

val ambient : unit -> t
(** The process-wide current registry; instrumented modules capture it
    when constructed. *)

val set_ambient : t -> unit

val counter : t -> string -> Counter.t
(** Find-or-create by name. *)

val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t

val register_histogram : t -> string -> Histogram.t -> unit
(** Adopt an externally created histogram under [name] so it appears in
    exports (used to surface [Pubsub.Domain.latency]). *)

(** {1 Trace events} *)

val set_sink : t -> Buffer.t option -> unit
(** [Some buf] appends one JSONL line per event; [None] (the default)
    makes [emit] a no-op. *)

val emitting : t -> bool

val set_detailed : t -> bool -> unit
(** Enables expensive per-port accounting in [Net]; off by default. *)

val detailed : t -> bool

type field = I of int | S of string | F of float

val emit :
  t ->
  layer:string ->
  kind:string ->
  ?node:int ->
  ?id:int * int ->
  ?data:(string * field) list ->
  unit ->
  unit
(** Append an event line
    [{"t":..,"layer":..,"kind":..,"node":..,"id":"origin:seq",..data}].
    [id] is the event id threading causality across nodes. No-op
    without a sink. *)

(** {1 Export} *)

val metrics_to_jsonl : t -> Buffer.t -> unit
(** Append one JSONL line per counter/gauge/histogram, sorted by name
    (deterministic). *)

val reset : t -> unit
(** Zero every registered counter/gauge/histogram in place (handles
    held by instrumented modules stay valid). *)
