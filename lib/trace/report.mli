(** Validation and summarization of exported JSONL traces — the logic
    behind [bin/tpbs_report], kept in the library so it is testable. *)

val check : string list -> (int, int * string) result
(** Validate each line as a well-formed trace/metric record.
    [Ok n] = n valid lines; [Error (lineno, msg)] on the first bad line
    (1-based). Every line must be a JSON object carrying either
    ["metric"] (with ["name"]) or an event shape (["t"], ["layer"],
    ["kind"]). *)

val summarize : string list -> string
(** Human-readable summary: event counts per (layer, kind), counters,
    gauges, histograms, and the covered time range. Assumes lines that
    passed [check]; silently skips malformed ones. *)

val counter_value : string list -> string -> int option
(** Final exported value of counter [name], [None] if the trace never
    exported it. Backs [tpbs_report --require NAME] — CI smoke steps
    assert that a scenario actually exercised a path (e.g.
    [store.recovered_records] after a crash/recovery run). *)

val metric_value : string list -> string -> string -> float option
(** [metric_value lines name field] — final exported numeric [field]
    of metric [name], whatever its kind: [("value")] for counters,
    [("level")]/[("peak")] for gauges, [("count")]/[("mean")]/
    [("p50")]/[("p99")]/[("max")]/[("stddev")] for histograms. Backs
    [tpbs_report --require-le NAME:FIELD<=BOUND] — the SLO gates of
    the transport soak. *)
