(* Counters and gauges are [Atomic] so the sharded engine's domain
   workers (lib/core's dispatch pool) can bump them concurrently with
   the engine thread without losing updates. On the single-domain
   path an uncontended fetch-and-add costs the same handful of
   nanoseconds as the plain int it replaced. Histograms stay
   engine-thread-owned: every recording site runs on the tick thread
   (per-shard aggregation joins at the tick barrier before a reader
   can observe them). *)
module Counter = struct
  type t = { name : string; count : int Atomic.t }

  let incr t = ignore (Atomic.fetch_and_add t.count 1)
  let add t n = ignore (Atomic.fetch_and_add t.count n)
  let value t = Atomic.get t.count
  let name t = t.name
end

module Gauge = struct
  type t = { name : string; level : int Atomic.t; peak : int Atomic.t }

  let set t v =
    Atomic.set t.level v;
    (* Monotone peak via CAS so concurrent setters never regress it. *)
    let rec raise_peak () =
      let p = Atomic.get t.peak in
      if v > p && not (Atomic.compare_and_set t.peak p v) then raise_peak ()
    in
    raise_peak ()

  let value t = Atomic.get t.level
  let peak t = Atomic.get t.peak
  let name t = t.name
end

type t = {
  mutable clock : unit -> int;
  counters : (string, Counter.t) Hashtbl.t;
  gauges : (string, Gauge.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  mutable sink : Buffer.t option;
  mutable detailed : bool;
}

let create ?(clock = fun () -> 0) () =
  {
    clock;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    histograms = Hashtbl.create 16;
    sink = None;
    detailed = false;
  }

let set_clock t clock = t.clock <- clock

let ambient_registry = ref (create ())
let ambient () = !ambient_registry
let set_ambient t = ambient_registry := t

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { Counter.name; count = Atomic.make 0 } in
      Hashtbl.add t.counters name c;
      c

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = { Gauge.name; level = Atomic.make 0; peak = Atomic.make 0 } in
      Hashtbl.add t.gauges name g;
      g

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.add t.histograms name h;
      h

let register_histogram t name h = Hashtbl.replace t.histograms name h
let set_sink t sink = t.sink <- sink
let emitting t = t.sink <> None
let set_detailed t d = t.detailed <- d
let detailed t = t.detailed

type field = I of int | S of string | F of float

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf x =
  (* %.12g is precise enough for our summaries and never prints the
     locale-dependent forms JSON forbids. *)
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" x)
  else Buffer.add_string buf (Printf.sprintf "%.12g" x)

let emit t ~layer ~kind ?node ?id ?(data = []) () =
  match t.sink with
  | None -> ()
  | Some buf ->
      Buffer.add_string buf "{\"t\":";
      Buffer.add_string buf (string_of_int (t.clock ()));
      Buffer.add_string buf ",\"layer\":\"";
      escape_into buf layer;
      Buffer.add_string buf "\",\"kind\":\"";
      escape_into buf kind;
      Buffer.add_char buf '"';
      (match node with
      | Some n ->
          Buffer.add_string buf ",\"node\":";
          Buffer.add_string buf (string_of_int n)
      | None -> ());
      (match id with
      | Some (origin, seq) ->
          Buffer.add_string buf ",\"id\":\"";
          Buffer.add_string buf (string_of_int origin);
          Buffer.add_char buf ':';
          Buffer.add_string buf (string_of_int seq);
          Buffer.add_char buf '"'
      | None -> ());
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf ",\"";
          escape_into buf k;
          Buffer.add_string buf "\":";
          match v with
          | I i -> Buffer.add_string buf (string_of_int i)
          | F x -> add_float buf x
          | S s ->
              Buffer.add_char buf '"';
              escape_into buf s;
              Buffer.add_char buf '"')
        data;
      Buffer.add_string buf "}\n"

let sorted_names tbl =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let metrics_to_jsonl t buf =
  List.iter
    (fun name ->
      let c = Hashtbl.find t.counters name in
      Buffer.add_string buf "{\"metric\":\"counter\",\"name\":\"";
      escape_into buf name;
      Buffer.add_string buf "\",\"value\":";
      Buffer.add_string buf (string_of_int (Counter.value c));
      Buffer.add_string buf "}\n")
    (sorted_names t.counters);
  List.iter
    (fun name ->
      let g = Hashtbl.find t.gauges name in
      Buffer.add_string buf "{\"metric\":\"gauge\",\"name\":\"";
      escape_into buf name;
      Buffer.add_string buf "\",\"level\":";
      Buffer.add_string buf (string_of_int (Gauge.value g));
      Buffer.add_string buf ",\"peak\":";
      Buffer.add_string buf (string_of_int (Gauge.peak g));
      Buffer.add_string buf "}\n")
    (sorted_names t.gauges);
  List.iter
    (fun name ->
      let h = Hashtbl.find t.histograms name in
      Buffer.add_string buf "{\"metric\":\"histogram\",\"name\":\"";
      escape_into buf name;
      Buffer.add_string buf "\",\"count\":";
      Buffer.add_string buf (string_of_int (Histogram.count h));
      Buffer.add_string buf ",\"mean\":";
      add_float buf (Histogram.mean h);
      Buffer.add_string buf ",\"p50\":";
      add_float buf (Histogram.percentile h 0.50);
      Buffer.add_string buf ",\"p99\":";
      add_float buf (Histogram.percentile h 0.99);
      Buffer.add_string buf ",\"max\":";
      add_float buf (Histogram.max h);
      Buffer.add_string buf ",\"stddev\":";
      add_float buf (Histogram.stddev h);
      Buffer.add_string buf "}\n")
    (sorted_names t.histograms)

let reset t =
  Hashtbl.iter (fun _ c -> Atomic.set c.Counter.count 0) t.counters;
  Hashtbl.iter
    (fun _ g ->
      Atomic.set g.Gauge.level 0;
      Atomic.set g.Gauge.peak 0)
    t.gauges;
  Hashtbl.iter (fun _ h -> Histogram.clear h) t.histograms
