(** Numeric summaries: Welford online mean/variance plus nearest-rank
    percentiles over the retained samples. This is the histogram type of
    the observability layer; [Tpbs_sim.Metric] is an alias for it. *)

type t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t 0.99] — nearest-rank percentile; 0 when empty. *)

val stddev : t -> float
(** Population standard deviation via Welford's online algorithm —
    stable even when samples share a large common offset (e.g. absolute
    simulation timestamps). *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
