module Stable = Tpbs_sim.Stable
module Trace = Tpbs_trace.Trace

(* A segmented append-only key–value log, bitcask style: every put or
   delete appends one CRC-guarded record (Record.frame) to the active
   segment; the full key→value map is kept in memory and rebuilt on
   open by replaying the segments in order. Durability therefore
   reduces to three invariants:

   1. A record is durable iff it is completely on disk — the recovery
      scan truncates the log at the first torn or corrupt record and
      discards everything after it (later bytes are unordered relative
      to the hole, so nothing behind a bad record can be trusted).
   2. Replaying surviving segments in ascending id order, last record
      per key wins; a Delete record is a tombstone.
   3. Removing a sealed segment never changes the replayed state:
      the fast path drops a segment only once none of its records is
      the latest for its key (tombstones count as live while they may
      shadow an older put); merge compaction rewrites the whole
      sealed state into a [base-<n>] snapshot that makes every
      segment with id <= n obsolete — the rename is the commit point,
      so a crash mid-compaction leaves either the old segments or the
      snapshot, never a mix.

   The fault-injection hook models a power cut at an exact byte
   offset of the append stream: once the budget is exhausted the
   record being written is cut short on disk and [Injected_crash]
   is raised; every later write raises too. Reopening the directory
   then exercises the real recovery path. *)

exception Injected_crash

type entry = { value : string; mutable seg : int }

type t = {
  dir : string;
  segment_bytes : int;
  compact_min_dead : int;
  auto_compact : bool;
  fsync : bool;  (* fsync every record append *)
  index : (string, entry) Hashtbl.t;
  tombstones : (string, int) Hashtbl.t;
      (* absent key -> segment of its latest tombstone record *)
  live : (int, int ref) Hashtbl.t;  (* seg -> records still authoritative *)
  recs : (int, int ref) Hashtbl.t;  (* seg -> records written, total *)
  files : (int, string) Hashtbl.t;  (* seg -> path *)
  mutable sealed : int list;  (* ascending *)
  mutable active : int;
  mutable chan : out_channel option;
  mutable active_bytes : int;
  mutable sealed_records : int;
  mutable sealed_dead : int;
  (* fault injection *)
  mutable fault_budget : int option;
  mutable dead : bool;
  (* accounting *)
  mutable appends : int;
  mutable rotations : int;
  mutable compactions : int;
  mutable segments_dropped : int;
  mutable recovered_records : int;
  mutable torn_bytes : int;
  mutable corrupt_records : int;
  c_appends : Trace.Counter.t;
  c_compactions : Trace.Counter.t;
  c_dropped : Trace.Counter.t;
  c_recovered : Trace.Counter.t;
  c_torn_bytes : Trace.Counter.t;
  c_crc_rejects : Trace.Counter.t;
  c_fsyncs : Trace.Counter.t;
  c_group_commits : Trace.Counter.t;
}

let seg_path dir id = Filename.concat dir (Printf.sprintf "seg-%08d.log" id)
let base_path dir id = Filename.concat dir (Printf.sprintf "base-%08d.log" id)

let parse_name name =
  let num s =
    match int_of_string_opt s with Some n when n >= 0 -> Some n | _ -> None
  in
  match String.length name with
  | 16 when String.sub name 0 4 = "seg-" && Filename.check_suffix name ".log"
    -> Option.map (fun id -> (`Seg, id)) (num (String.sub name 4 8))
  | 17 when String.sub name 0 5 = "base-" && Filename.check_suffix name ".log"
    -> Option.map (fun id -> (`Base, id)) (num (String.sub name 5 8))
  | _ -> None

let rec mkdir_p dir =
  if
    dir <> "" && dir <> "/" && dir <> "."
    && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let remove_file path = try Sys.remove path with Sys_error _ -> ()

(* fsync of the *directory* publishes a rename/creat/unlink: without
   it the new name is only durable once the kernel happens to write
   the directory block, so a power cut after [Sys.rename] could
   resurface the pre-rename state. Directories cannot be fsynced on
   every platform; failing to is no worse than before, so ignore. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- per-segment bookkeeping ------------------------------------------ *)

let count_of tbl seg =
  match Hashtbl.find_opt tbl seg with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace tbl seg r;
      r

let drop_sealed t seg =
  t.sealed <- List.filter (fun s -> s <> seg) t.sealed;
  let recs = !(count_of t.recs seg) in
  t.sealed_records <- t.sealed_records - recs;
  t.sealed_dead <- t.sealed_dead - recs;
  Hashtbl.remove t.live seg;
  Hashtbl.remove t.recs seg;
  (match Hashtbl.find_opt t.files seg with
  | Some path ->
      remove_file path;
      Hashtbl.remove t.files seg
  | None -> ());
  t.segments_dropped <- t.segments_dropped + 1;
  Trace.Counter.incr t.c_dropped

(* A record in [seg] stopped being authoritative. *)
let decr_live t seg =
  match Hashtbl.find_opt t.live seg with
  | None -> ()
  | Some r ->
      decr r;
      if seg <> t.active then begin
        t.sealed_dead <- t.sealed_dead + 1;
        if !r = 0 then drop_sealed t seg
      end

(* Whatever record previously was authoritative for [key] is
   superseded by a new record landing in segment [t.active]. *)
let supersede t key =
  match Hashtbl.find_opt t.index key with
  | Some e -> decr_live t e.seg
  | None -> (
      match Hashtbl.find_opt t.tombstones key with
      | Some seg ->
          decr_live t seg;
          Hashtbl.remove t.tombstones key
      | None -> ())

let note_put t key value =
  supersede t key;
  Hashtbl.replace t.index key { value; seg = t.active };
  incr (count_of t.live t.active);
  incr (count_of t.recs t.active)

let note_delete t key =
  supersede t key;
  Hashtbl.remove t.index key;
  Hashtbl.replace t.tombstones key t.active;
  (* the tombstone record itself stays live: it shadows any older
     record for the key until a merge rewrites the sealed state *)
  incr (count_of t.live t.active);
  incr (count_of t.recs t.active)

let seal_bookkeeping t seg =
  t.sealed <- t.sealed @ [ seg ];
  let recs = !(count_of t.recs seg) and live = !(count_of t.live seg) in
  t.sealed_records <- t.sealed_records + recs;
  t.sealed_dead <- t.sealed_dead + (recs - live);
  if live = 0 && recs >= 0 then drop_sealed t seg

let open_active t id =
  let path = seg_path t.dir id in
  Hashtbl.replace t.files id path;
  ignore (count_of t.live id);
  ignore (count_of t.recs id);
  t.active <- id;
  t.chan <-
    Some (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path);
  t.active_bytes <-
    (if Sys.file_exists path then (
       let ic = open_in_bin path in
       let n = in_channel_length ic in
       close_in ic;
       n)
     else 0)

let next_seg_id t =
  1 + Hashtbl.fold (fun id _ acc -> max id acc) t.files (-1)

let rotate t =
  (match t.chan with Some oc -> close_out oc | None -> ());
  t.chan <- None;
  let old = t.active in
  let id = next_seg_id t in
  seal_bookkeeping t old;
  open_active t id;
  t.rotations <- t.rotations + 1

(* --- compaction -------------------------------------------------------- *)

(* Merge every sealed segment into one [base-<n>] snapshot holding
   exactly the still-authoritative sealed entries (n = highest sealed
   id, so the snapshot sorts before the active segment on replay).
   Tombstones need not be copied: the snapshot makes every older
   segment obsolete, so there is nothing left for them to shadow.
   The rename is atomic; the old files are deleted only after it, and
   recovery ignores any segment at or below the newest base id, so a
   crash anywhere in between recovers to a consistent state. *)
let compact t =
  if (not t.dead) && t.sealed <> [] then begin
    let sealedset = Hashtbl.create 8 in
    List.iter (fun s -> Hashtbl.replace sealedset s ()) t.sealed;
    let base_id = List.fold_left max 0 t.sealed in
    let entries =
      Hashtbl.fold
        (fun k e acc ->
          if Hashtbl.mem sealedset e.seg then (k, e) :: acc else acc)
        t.index []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let tmp = Filename.concat t.dir "compact.tmp" in
    let oc = open_out_bin tmp in
    List.iter
      (fun (k, e) ->
        output_string oc (Record.frame ~op:Record.Put ~key:k ~value:e.value))
      entries;
    flush oc;
    (* The snapshot's contents must be on disk before the rename can
       commit to it, and the rename itself is only durable once the
       directory entry is — fsync both, in that order. *)
    Trace.Counter.incr t.c_fsyncs;
    (try Unix.fsync (Unix.descr_of_out_channel oc)
     with Unix.Unix_error _ -> ());
    close_out oc;
    let base = base_path t.dir base_id in
    Sys.rename tmp base;
    Trace.Counter.incr t.c_fsyncs;
    fsync_dir t.dir;
    List.iter
      (fun s ->
        (match Hashtbl.find_opt t.files s with
        | Some p when p <> base -> remove_file p
        | Some _ | None -> ());
        Hashtbl.remove t.files s;
        Hashtbl.remove t.live s;
        Hashtbl.remove t.recs s)
      t.sealed;
    Hashtbl.iter
      (fun k seg -> if Hashtbl.mem sealedset seg then Hashtbl.remove t.tombstones k)
      (Hashtbl.copy t.tombstones);
    let n = List.length entries in
    List.iter (fun (_, e) -> e.seg <- base_id) entries;
    t.compactions <- t.compactions + 1;
    Trace.Counter.incr t.c_compactions;
    if n = 0 then begin
      remove_file base;
      t.sealed <- [];
      t.sealed_records <- 0;
      t.sealed_dead <- 0
    end
    else begin
      Hashtbl.replace t.files base_id base;
      Hashtbl.replace t.live base_id (ref n);
      Hashtbl.replace t.recs base_id (ref n);
      t.sealed <- [ base_id ];
      t.sealed_records <- n;
      t.sealed_dead <- 0
    end
  end

let maybe_compact t =
  if
    t.auto_compact
    && t.sealed_dead >= t.compact_min_dead
    && 2 * t.sealed_dead >= t.sealed_records
  then compact t

(* --- the append path --------------------------------------------------- *)

(* [flush] only hands the bytes to the kernel: it makes a record
   survive a *process* crash, not a power cut. The commit point of a
   durable append is therefore flush + fsync; [sync] (defaulting to
   the store-wide [t.fsync]) selects whether this append pays for the
   full guarantee. *)
let append_bytes ?sync t s =
  if t.dead then raise Injected_crash;
  let oc =
    match t.chan with
    | Some oc -> oc
    | None -> invalid_arg "Store.Log: store is closed"
  in
  (match t.fault_budget with
  | Some b when String.length s > b ->
      (* the power cut: the record is cut short on disk *)
      output_substring oc s 0 b;
      flush oc;
      t.dead <- true;
      t.fault_budget <- Some 0;
      raise Injected_crash
  | Some b ->
      t.fault_budget <- Some (b - String.length s);
      output_string oc s;
      flush oc
  | None ->
      output_string oc s;
      flush oc;
      if Option.value sync ~default:t.fsync then begin
        Trace.Counter.incr t.c_fsyncs;
        try Unix.fsync (Unix.descr_of_out_channel oc)
        with Unix.Unix_error _ -> ()
      end);
  t.active_bytes <- t.active_bytes + String.length s

let put ?sync t key value =
  append_bytes ?sync t (Record.frame ~op:Record.Put ~key ~value);
  note_put t key value;
  t.appends <- t.appends + 1;
  Trace.Counter.incr t.c_appends;
  if t.active_bytes >= t.segment_bytes then rotate t;
  maybe_compact t

let delete ?sync t key =
  (* Deleting an absent key appends nothing: there is no record to
     shadow. *)
  if Hashtbl.mem t.index key then begin
    append_bytes ?sync t (Record.frame ~op:Record.Delete ~key ~value:"");
    note_delete t key;
    t.appends <- t.appends + 1;
    Trace.Counter.incr t.c_appends;
    if t.active_bytes >= t.segment_bytes then rotate t;
    maybe_compact t
  end

let get t key =
  match Hashtbl.find_opt t.index key with
  | Some e -> Some e.value
  | None -> None

let keys_with_prefix t prefix =
  let n = String.length prefix in
  Hashtbl.fold
    (fun k _ acc ->
      if String.length k >= n && String.sub k 0 n = prefix then k :: acc
      else acc)
    t.index []
  |> List.sort String.compare

let key_count t = Hashtbl.length t.index

(* --- recovery ----------------------------------------------------------- *)

let open_ ?(segment_bytes = 1 lsl 20) ?(compact_min_dead = 64)
    ?(auto_compact = true) ?(fsync = false) ~dir () =
  mkdir_p dir;
  let tr = Trace.ambient () in
  let t =
    {
      dir;
      segment_bytes;
      compact_min_dead;
      auto_compact;
      fsync;
      index = Hashtbl.create 256;
      tombstones = Hashtbl.create 64;
      live = Hashtbl.create 16;
      recs = Hashtbl.create 16;
      files = Hashtbl.create 16;
      sealed = [];
      active = 0;
      chan = None;
      active_bytes = 0;
      sealed_records = 0;
      sealed_dead = 0;
      fault_budget = None;
      dead = false;
      appends = 0;
      rotations = 0;
      compactions = 0;
      segments_dropped = 0;
      recovered_records = 0;
      torn_bytes = 0;
      corrupt_records = 0;
      c_appends = Trace.counter tr "store.appends";
      c_compactions = Trace.counter tr "store.compactions";
      c_dropped = Trace.counter tr "store.segments_dropped";
      c_recovered = Trace.counter tr "store.recovered_records";
      c_torn_bytes = Trace.counter tr "store.torn_bytes";
      c_crc_rejects = Trace.counter tr "store.crc_rejects";
      c_fsyncs = Trace.counter tr "store.fsyncs";
      c_group_commits = Trace.counter tr "store.group_commits";
    }
  in
  (* Inventory the directory. A leftover compact.tmp is an uncommitted
     merge: discard it. The newest base snapshot obsoletes every
     segment (and older base) at or below its id. *)
  let names = Sys.readdir dir in
  Array.iter
    (fun n ->
      if Filename.check_suffix n ".tmp" then
        remove_file (Filename.concat dir n))
    names;
  let parsed =
    Array.to_list names |> List.filter_map parse_name
    |> List.sort (fun (_, a) (_, b) -> Int.compare a b)
  in
  let newest_base =
    List.fold_left
      (fun acc -> function `Base, id -> max acc id | `Seg, _ -> acc)
      (-1) parsed
  in
  let survivors =
    List.filter
      (fun (kind, id) ->
        let keep =
          match kind with
          | `Base -> id = newest_base
          | `Seg -> id > newest_base
        in
        if not keep then
          remove_file
            (Filename.concat t.dir
               (match kind with
               | `Base -> Filename.basename (base_path dir id)
               | `Seg -> Filename.basename (seg_path dir id)));
        keep)
      parsed
  in
  (* Replay in order; stop at the first torn/corrupt record — truncate
     there and discard everything after it. *)
  let stopped = ref false in
  let loaded = ref [] in
  List.iter
    (fun (kind, id) ->
      let path =
        match kind with `Base -> base_path dir id | `Seg -> seg_path dir id
      in
      if !stopped then begin
        remove_file path;
        t.segments_dropped <- t.segments_dropped + 1;
        Trace.Counter.incr t.c_dropped
      end
      else begin
        (* seal the previously replayed file before starting this one *)
        (match !loaded with
        | prev :: _ -> seal_bookkeeping t prev
        | [] -> ());
        Hashtbl.replace t.files id path;
        ignore (count_of t.live id);
        ignore (count_of t.recs id);
        t.active <- id;
        loaded := id :: !loaded;
        let buf = read_file path in
        let len = String.length buf in
        let rec scan off =
          match Record.read buf off with
          | Record.Record (op, key, value, next) ->
              (match op with
              | Record.Put -> note_put t key value
              | Record.Delete -> note_delete t key);
              t.recovered_records <- t.recovered_records + 1;
              Trace.Counter.incr t.c_recovered;
              scan next
          | Record.End -> ()
          | Record.Torn | Record.Corrupt ->
              (match Record.read buf off with
              | Record.Corrupt ->
                  t.corrupt_records <- t.corrupt_records + 1;
                  Trace.Counter.incr t.c_crc_rejects
              | _ -> ());
              t.torn_bytes <- t.torn_bytes + (len - off);
              Trace.Counter.add t.c_torn_bytes (len - off);
              let oc = open_out_bin path in
              output_substring oc buf 0 off;
              close_out oc;
              stopped := true
        in
        scan 0
      end)
    survivors;
  (* The last surviving file becomes the active segment — unless it is
     a base snapshot or already full, in which case it is sealed and a
     fresh segment is opened. *)
  (match !loaded with
  | [] -> open_active t (newest_base + 1)
  | last :: _ ->
      let is_base =
        match Hashtbl.find_opt t.files last with
        | Some p -> Filename.basename p = Filename.basename (base_path dir last)
        | None -> false
      in
      t.active <- last;
      if is_base then begin
        seal_bookkeeping t last;
        open_active t (next_seg_id t)
      end
      else begin
        open_active t last;
        if t.active_bytes >= t.segment_bytes then rotate t
      end);
  t

let close t =
  (match t.chan with Some oc -> close_out oc | None -> ());
  t.chan <- None

(* --- fault injection ----------------------------------------------------- *)

let set_fault t ~after_bytes =
  if after_bytes < 0 then invalid_arg "Store.Log.set_fault";
  t.fault_budget <- Some after_bytes

let is_dead t = t.dead

(* --- exposure ------------------------------------------------------------- *)

(* Certified commit points go through this adapter, so the "survives
   a power cut" claim is anchored here: [sync] defaults on, making
   every record append fsync before the operation returns. Pass
   ~sync:false only when the caller batches its own sync points. *)
let stable ?(sync = true) t =
  Stable.make
    ~put:(fun k v -> put ~sync t k v)
    ~get:(get t)
    ~delete:(fun k -> delete ~sync t k)
    ~keys_with_prefix:(keys_with_prefix t)
    ~size:(fun () -> Hashtbl.length t.index)
    ()

(* Pay one deferred fsync for everything appended since the last sync
   point. Bytes are already with the kernel ([append_bytes] flushes),
   so this is the group-commit boundary: before it, appended records
   survive a process kill but not a power cut. *)
let sync t =
  match t.chan with
  | None -> ()
  | Some oc -> (
      Trace.Counter.incr t.c_fsyncs;
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ())

(* Group-commit variant of [stable]: record appends are flush-only and
   the deferred fsync is paid in [Stable.flush] — which the sharded
   engine calls once per tick barrier, coalescing every certified
   frontier/low-watermark persist of the tick into one sync
   ([store.group_commits] counts the non-empty flushes). *)
let group_stable t =
  let dirty = ref false in
  Stable.make ~grouped:true
    ~flush:(fun () ->
      if !dirty then begin
        dirty := false;
        sync t;
        Trace.Counter.incr t.c_group_commits
      end)
    ~put:(fun k v ->
      put ~sync:false t k v;
      dirty := true)
    ~get:(get t)
    ~delete:(fun k ->
      delete ~sync:false t k;
      dirty := true)
    ~keys_with_prefix:(keys_with_prefix t)
    ~size:(fun () -> Hashtbl.length t.index)
    ()

type stats = {
  keys : int;
  segments : int;
  disk_bytes : int;
  appends : int;
  rotations : int;
  compactions : int;
  segments_dropped : int;
  recovered_records : int;
  torn_bytes : int;
  corrupt_records : int;
  tombstones : int;
}

let stats t =
  let disk_bytes =
    Hashtbl.fold
      (fun _ path acc ->
        if Sys.file_exists path then (
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          close_in ic;
          acc + n)
        else acc)
      t.files 0
  in
  {
    keys = Hashtbl.length t.index;
    segments = Hashtbl.length t.files;
    disk_bytes;
    appends = t.appends;
    rotations = t.rotations;
    compactions = t.compactions;
    segments_dropped = t.segments_dropped;
    recovered_records = t.recovered_records;
    torn_bytes = t.torn_bytes;
    corrupt_records = t.corrupt_records;
    tombstones = Hashtbl.length t.tombstones;
  }
