module Codec = Tpbs_serial.Codec
module Wire = Tpbs_serial.Wire

(* One durable log record:

     [ payload length : u32 LE | crc32(payload) : u32 LE | payload ]

   where the payload is the ordinary lib/serial encoding of
   [List [Int op; Str key; Str value]]. The length prefix makes the
   scan self-framing; the CRC makes every record independently
   checkable, so a recovery scan can tell a torn tail (clean partial
   write) from bit rot without trusting anything that follows. *)

type op = Put | Delete

let header_bytes = 8

let frame ~op ~key ~value =
  let payload =
    Codec.encode
      (List [ Int (match op with Put -> 0 | Delete -> 1); Str key; Str value ])
  in
  let n = String.length payload in
  let b = Bytes.create (header_bytes + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.set_int32_le b 4 (Wire.crc32 payload);
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

type read_result =
  | Record of op * string * string * int  (** decoded record, next offset *)
  | End  (** clean end of the segment *)
  | Torn  (** the segment ends inside a record: a partial final write *)
  | Corrupt  (** framing intact but CRC or payload decoding failed *)

let read buf off =
  let len = String.length buf in
  if off >= len then End
  else if len - off < header_bytes then Torn
  else
    let n = Int32.to_int (String.get_int32_le buf off) in
    let crc = String.get_int32_le buf (off + 4) in
    if n < 0 || n > len - off - header_bytes then Torn
    else
      let payload = String.sub buf (off + header_bytes) n in
      if Wire.crc32 payload <> crc then Corrupt
      else
        match Codec.decode payload with
        | List [ Int o; Str key; Str value ] when o = 0 || o = 1 ->
            Record
              ((if o = 0 then Put else Delete), key, value,
               off + header_bytes + n)
        | _ | (exception Codec.Decode_error _) -> Corrupt
