(** A segmented, append-only, CRC-checked on-disk log exposing the
    {!Tpbs_sim.Stable} key–value interface.

    Every [put]/[delete] appends one {!Record}-framed record to the
    active segment and flushes; the key→value map is held in memory
    and rebuilt on {!open_} by replaying segments in ascending id
    order. Segments seal at [segment_bytes] and rotate; sealed
    segments whose records are all superseded are unlinked on the
    spot, and merge {!compact}ion rewrites the remaining sealed state
    into an atomic [base-<n>.log] snapshot that obsoletes every file
    with id [<= n].

    Recovery truncates the log at the first torn or corrupt record
    and discards all later segments, so reopening after a crash at
    any byte offset yields exactly the prefix of operations whose
    records were completely on disk. *)

exception Injected_crash
(** Raised by the fault-injection hook ({!set_fault}) at the moment
    the simulated power cut happens, and by every write after it. *)

type t

val open_ :
  ?segment_bytes:int ->
  ?compact_min_dead:int ->
  ?auto_compact:bool ->
  ?fsync:bool ->
  dir:string ->
  unit ->
  t
(** Open (creating if needed) the log rooted at [dir], running the
    recovery scan. [segment_bytes] (default 1 MiB) bounds the active
    segment; [compact_min_dead] (default 64) and a ≥50% dead ratio
    gate automatic merge compaction; [auto_compact:false] leaves
    merging to explicit {!compact} calls. [fsync] (default false)
    makes every record append fsync before returning — without it an
    append survives a process crash (the channel is flushed) but not
    necessarily a power cut. Compaction always fsyncs its snapshot
    and the directory around the commit rename, whatever [fsync]
    says. *)

val put : ?sync:bool -> t -> string -> string -> unit
(** [sync] overrides the store-wide fsync policy for this append. *)

val get : t -> string -> string option

val delete : ?sync:bool -> t -> string -> unit
(** Appends a tombstone; a no-op for absent keys. *)

val keys_with_prefix : t -> string -> string list
(** Sorted. *)

val key_count : t -> int

val compact : t -> unit
(** Merge all sealed segments into a [base-<n>.log] snapshot. Crash
    safe: the snapshot rename is the commit point and recovery drops
    every file at or below the newest base id. *)

val close : t -> unit
(** Close the append channel. Only {!get}/{!keys_with_prefix} remain
    usable. *)

val stable : ?sync:bool -> t -> Tpbs_sim.Stable.t
(** The log behind the pluggable stable-storage seam, for wiring into
    [Process.create ~storage]. [sync] defaults {e on}: certified
    commit points fsync record by record, so acknowledged state
    survives a power cut, not just a process crash. Pass [~sync:false]
    to fall back to flush-only appends. *)

val group_stable : t -> Tpbs_sim.Stable.t
(** Group-commit variant of {!stable}: appends are flush-only and the
    deferred fsync is paid in [Stable.flush], which the engine calls
    once per tick barrier — coalescing every certified frontier and
    low-watermark persist of a tick into one sync instead of one per
    record. Non-empty flushes are counted by [store.group_commits].
    The durability window widens accordingly: inside a tick, appended
    records survive a process kill (bytes are with the kernel) but
    not necessarily a power cut. *)

val sync : t -> unit
(** Explicitly fsync the active segment (the group-commit boundary). *)

(** {1 Fault injection} *)

val set_fault : t -> after_bytes:int -> unit
(** Simulate a power cut after [after_bytes] more bytes of appended
    records: the write in flight when the budget runs out is cut
    short on disk (the torn tail), {!Injected_crash} is raised, and
    the store goes dead — every later write also raises. Reopen the
    directory with {!open_} to exercise recovery. *)

val is_dead : t -> bool

(** {1 Accounting} *)

type stats = {
  keys : int;
  segments : int;  (** files on disk: sealed + base + active *)
  disk_bytes : int;
  appends : int;
  rotations : int;
  compactions : int;
  segments_dropped : int;
  recovered_records : int;  (** records replayed by the last {!open_} *)
  torn_bytes : int;  (** bytes truncated by recovery *)
  corrupt_records : int;  (** CRC/decode rejects seen by recovery *)
  tombstones : int;
}

val stats : t -> stats
