(** Framing of individual durable-log records: CRC32-guarded,
    length-prefixed envelopes around the lib/serial wire format. *)

type op = Put | Delete

val header_bytes : int
(** Bytes of framing before the payload (length + CRC). *)

val frame : op:op -> key:string -> value:string -> string
(** The complete on-disk byte string for one record. *)

type read_result =
  | Record of op * string * string * int
      (** [Record (op, key, value, next_offset)] *)
  | End  (** clean end of the segment *)
  | Torn  (** the segment ends inside a record: a partial final write *)
  | Corrupt  (** framing intact but CRC or payload decoding failed *)

val read : string -> int -> read_result
(** [read buf off] decodes the record starting at [off]. Never
    raises: every malformation maps to [Torn] or [Corrupt]. *)
