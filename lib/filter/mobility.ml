module Vtype = Tpbs_types.Vtype
module Registry = Tpbs_types.Registry

type reason =
  | Nonprimitive_variable of string * Vtype.t
  | Remote_value of string

type verdict = Mobile | Local_only of reason list

let pp_reason ppf = function
  | Nonprimitive_variable (x, t) ->
      Fmt.pf ppf "variable %s has non-primitive type %a" x Vtype.pp t
  | Remote_value path ->
      Fmt.pf ppf "filter observes remote reference via %s" path

let pp_verdict ppf = function
  | Mobile -> Fmt.string ppf "mobile"
  | Local_only reasons ->
      Fmt.pf ppf "local-only (%a)" Fmt.(list ~sep:(any "; ") pp_reason) reasons

let classify reg ~param ~vars e =
  let reasons = ref [] in
  let note r = if not (List.mem r !reasons) then reasons := r :: !reasons in
  List.iter
    (fun x ->
      match List.assoc_opt x vars with
      | Some t when not (Vtype.is_primitive t) ->
          note (Nonprimitive_variable (x, t))
      | Some _ | None -> ())
    (Expr.vars e);
  (* A getter path whose result type is a remote reference makes the
     filter observe bound-object identity; keep it at the subscriber. *)
  List.iter
    (fun path ->
      let rec walk cls = function
        | [] -> ()
        | m :: rest -> (
            match Registry.method_ret reg cls m with
            | Some (Vtype.Tremote _) when rest = [] ->
                note (Remote_value (String.concat "." path))
            | Some (Vtype.Tobject next) -> walk next rest
            | Some _ | None -> ())
      in
      walk param path)
    (Expr.getter_paths e);
  match List.rev !reasons with [] -> Mobile | rs -> Local_only rs
