module Vtype = Tpbs_types.Vtype
module Registry = Tpbs_types.Registry
module Value = Tpbs_serial.Value

type error = { expr : Expr.t; message : string }

exception Ill_typed of error

let pp_error ppf e = Fmt.pf ppf "%s in `%a'" e.message Expr.pp e.expr

let fail expr fmt =
  Fmt.kstr (fun message -> raise (Ill_typed { expr; message })) fmt

let const_type expr (v : Value.t) : Vtype.t =
  match v with
  | Bool _ -> Tbool
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Str _ -> Tstring
  | Null -> fail expr "null literals need an expected type; compare with isNull"
  | List _ | Obj _ | Remote _ ->
      fail expr "only primitive literals are allowed in filters"

let is_numeric : Vtype.t -> bool = function
  | Tint | Tfloat -> true
  | Tbool | Tstring | Tlist _ | Tobject _ | Tremote _ -> false

let join_numeric a b : Vtype.t =
  match (a : Vtype.t), (b : Vtype.t) with
  | Tint, Tint -> Tint
  | (Tint | Tfloat), (Tint | Tfloat) -> Tfloat
  | _ -> assert false

let rec infer reg ~param ~vars (e : Expr.t) : Vtype.t =
  match e with
  | Const v -> const_type e v
  | Arg -> Tobject param
  | Var x -> (
      match List.assoc_opt x vars with
      | Some t -> t
      | None -> fail e "unbound variable %s" x)
  | Invoke (recv, m) -> (
      match infer reg ~param ~vars recv with
      | Tobject cls -> (
          match Registry.method_ret reg cls m with
          | Some ret -> ret
          | None -> fail e "type %s has no method %s" cls m)
      | Tremote iface ->
          fail e
            "cannot invoke %s on remote reference of interface %s inside a \
             filter" m iface
      | t -> fail e "cannot invoke %s on a value of type %a" m Vtype.pp t)
  | Unop (Not, a) ->
      expect reg ~param ~vars a Vtype.Tbool;
      Tbool
  | Unop (Neg, a) -> (
      match infer reg ~param ~vars a with
      | (Tint | Tfloat) as t -> t
      | t -> fail e "cannot negate %a" Vtype.pp t)
  | Unop (Length, a) -> (
      match infer reg ~param ~vars a with
      | Tstring | Tlist _ -> Tint
      | t -> fail e "length() undefined on %a" Vtype.pp t)
  | Unop (Is_null, a) -> (
      match infer reg ~param ~vars a with
      | Tstring | Tlist _ | Tobject _ | Tremote _ -> Tbool
      | t -> fail e "isNull undefined on primitive type %a" Vtype.pp t)
  | Binop ((And | Or), a, b) ->
      expect reg ~param ~vars a Vtype.Tbool;
      expect reg ~param ~vars b Vtype.Tbool;
      Tbool
  | Binop ((Eq | Ne), a, b) ->
      let ta = infer reg ~param ~vars a and tb = infer reg ~param ~vars b in
      let compatible =
        Vtype.equal ta tb
        || (is_numeric ta && is_numeric tb)
        || equality_over_hierarchy reg ta tb
      in
      if not compatible then
        fail e "cannot compare %a with %a" Vtype.pp ta Vtype.pp tb;
      Tbool
  | Binop ((Lt | Le | Gt | Ge), a, b) ->
      let ta = infer reg ~param ~vars a and tb = infer reg ~param ~vars b in
      let ordered =
        (is_numeric ta && is_numeric tb)
        || (Vtype.equal ta Tstring && Vtype.equal tb Tstring)
      in
      if not ordered then
        fail e "ordering undefined between %a and %a" Vtype.pp ta Vtype.pp tb;
      Tbool
  | Binop (Add, a, b) ->
      let ta = infer reg ~param ~vars a and tb = infer reg ~param ~vars b in
      if is_numeric ta && is_numeric tb then join_numeric ta tb
        (* Java's overloaded +: string concatenation. *)
      else if Vtype.equal ta Tstring && Vtype.equal tb Tstring then Tstring
      else fail e "cannot add %a and %a" Vtype.pp ta Vtype.pp tb
  | Binop ((Sub | Mul | Div | Mod), a, b) ->
      let ta = infer reg ~param ~vars a and tb = infer reg ~param ~vars b in
      if is_numeric ta && is_numeric tb then join_numeric ta tb
      else fail e "arithmetic on %a and %a" Vtype.pp ta Vtype.pp tb
  | Binop (Concat, a, b) ->
      expect reg ~param ~vars a Vtype.Tstring;
      expect reg ~param ~vars b Vtype.Tstring;
      Tstring
  | Binop (Index_of, a, b) ->
      expect reg ~param ~vars a Vtype.Tstring;
      expect reg ~param ~vars b Vtype.Tstring;
      Tint
  | Binop ((Contains | Starts_with), a, b) ->
      expect reg ~param ~vars a Vtype.Tstring;
      expect reg ~param ~vars b Vtype.Tstring;
      Tbool

and expect reg ~param ~vars e t =
  let actual = infer reg ~param ~vars e in
  if not (Vtype.equal actual t) then
    fail e "expected %a, found %a" Vtype.pp t Vtype.pp actual

and equality_over_hierarchy reg ta tb =
  (* Java reference equality between related nominal types. *)
  match (ta : Vtype.t), (tb : Vtype.t) with
  | Tobject a, Tobject b ->
      Registry.exists reg a && Registry.exists reg b
      && (Registry.subtype reg a b || Registry.subtype reg b a)
  | _ -> false

let check_filter reg ~param ~vars e =
  if not (Registry.exists reg param) then
    fail e "unknown parameter type %s" param;
  if not (Registry.is_obvent_type reg param) then
    fail e "parameter type %s does not widen to Obvent" param;
  expect reg ~param ~vars e Vtype.Tbool

let check_filter_result reg ~param ~vars e =
  match check_filter reg ~param ~vars e with
  | () -> Ok ()
  | exception Ill_typed err -> Error err
