module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent

type unop = Not | Neg | Length | Is_null

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Concat
  | Index_of
  | Contains
  | Starts_with

type t =
  | Const of Value.t
  | Arg
  | Invoke of t * string
  | Var of string
  | Unop of unop * t
  | Binop of binop * t * t

type env = (string * Value.t) list

let unop_name = function
  | Not -> "!"
  | Neg -> "-"
  | Length -> "length"
  | Is_null -> "isNull"

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"
  | Concat -> "^"
  | Index_of -> "indexOf"
  | Contains -> "contains"
  | Starts_with -> "startsWith"

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Arg -> Fmt.string ppf "$arg"
  | Invoke (e, m) -> Fmt.pf ppf "%a.%s()" pp e m
  | Var x -> Fmt.string ppf x
  | Unop (Length, e) -> Fmt.pf ppf "%a.length()" pp e
  | Unop (Is_null, e) -> Fmt.pf ppf "(%a == null)" pp e
  | Unop (op, e) -> Fmt.pf ppf "%s(%a)" (unop_name op) pp e
  | Binop ((Index_of | Contains | Starts_with) as op, a, b) ->
      Fmt.pf ppf "%a.%s(%a)" pp a (binop_name op) pp b
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (binop_name op) pp b

let to_string e = Fmt.str "%a" pp e

let rec equal a b =
  match a, b with
  | Const x, Const y -> Value.equal x y
  | Arg, Arg -> true
  | Invoke (e1, m1), Invoke (e2, m2) -> String.equal m1 m2 && equal e1 e2
  | Var x, Var y -> String.equal x y
  | Unop (o1, e1), Unop (o2, e2) -> o1 = o2 && equal e1 e2
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
      o1 = o2 && equal a1 a2 && equal b1 b2
  | (Const _ | Arg | Invoke _ | Var _ | Unop _ | Binop _), _ -> false

let rank = function
  | Const _ -> 0 | Arg -> 1 | Invoke _ -> 2 | Var _ -> 3 | Unop _ -> 4
  | Binop _ -> 5

let rec compare a b =
  match a, b with
  | Const x, Const y -> Value.compare x y
  | Arg, Arg -> 0
  | Invoke (e1, m1), Invoke (e2, m2) ->
      let c = String.compare m1 m2 in
      if c <> 0 then c else compare e1 e2
  | Var x, Var y -> String.compare x y
  | Unop (o1, e1), Unop (o2, e2) ->
      let c = Stdlib.compare o1 o2 in
      if c <> 0 then c else compare e1 e2
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
      let c = Stdlib.compare o1 o2 in
      if c <> 0 then c
      else
        let c = compare a1 a2 in
        if c <> 0 then c else compare b1 b2
  | _, _ -> Int.compare (rank a) (rank b)

let rec size = function
  | Const _ | Arg | Var _ -> 1
  | Unop (_, e) -> 1 + size e
  | Invoke (e, _) -> 1 + size e
  | Binop (_, a, b) -> 1 + size a + size b

(* A maximal invocation path is a chain of Invoke nodes rooted at Arg
   that is not itself immediately extended by another Invoke. *)
let getter_paths e =
  let acc = ref [] in
  let rec chain = function
    | Arg -> Some []
    | Invoke (e, m) -> (
        match chain e with Some p -> Some (p @ [ m ]) | None -> None)
    | Const _ | Var _ | Unop _ | Binop _ -> None
  in
  let rec walk e =
    match e with
    | Invoke (inner, _) -> (
        (* Record only at the outermost Invoke of a pure chain, which
           makes the recorded path maximal. *)
        match chain e with
        | Some path -> acc := path :: !acc
        | None -> walk inner)
    | Unop (_, e) -> walk e
    | Binop (_, a, b) ->
        walk a;
        walk b
    | Const _ | Arg | Var _ -> ()
  in
  walk e;
  List.sort_uniq (List.compare String.compare) !acc

let vars e =
  let rec walk acc = function
    | Var x -> x :: acc
    | Const _ | Arg -> acc
    | Invoke (e, _) | Unop (_, e) -> walk acc e
    | Binop (_, a, b) -> walk (walk acc a) b
  in
  List.sort_uniq String.compare (walk [] e)

exception Eval_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

let as_bool = function
  | Value.Bool b -> b
  | v -> fail "expected bool, got %a" Value.pp v

let num_binop op (a : Value.t) (b : Value.t) : Value.t =
  let float_op x y : Value.t =
    match op with
    | Add -> Float (x +. y)
    | Sub -> Float (x -. y)
    | Mul -> Float (x *. y)
    | Div -> if y = 0. then fail "division by zero" else Float (x /. y)
    | Mod -> if y = 0. then fail "modulo by zero" else Float (Float.rem x y)
    | Lt -> Bool (x < y)
    | Le -> Bool (x <= y)
    | Gt -> Bool (x > y)
    | Ge -> Bool (x >= y)
    | _ -> fail "not a numeric operator"
  in
  let int_op x y : Value.t =
    match op with
    | Add -> Int (x + y)
    | Sub -> Int (x - y)
    | Mul -> Int (x * y)
    | Div -> if y = 0 then fail "division by zero" else Int (x / y)
    | Mod -> if y = 0 then fail "modulo by zero" else Int (x mod y)
    | Lt -> Bool (x < y)
    | Le -> Bool (x <= y)
    | Gt -> Bool (x > y)
    | Ge -> Bool (x >= y)
    | _ -> fail "not a numeric operator"
  in
  match a, b with
  | Int x, Int y -> int_op x y
  | Float x, Float y -> float_op x y
  (* Java-style numeric promotion. *)
  | Int x, Float y -> float_op (float_of_int x) y
  | Float x, Int y -> float_op x (float_of_int y)
  | Str x, Str y -> (
      match op with
      | Lt -> Bool (String.compare x y < 0)
      | Le -> Bool (String.compare x y <= 0)
      | Gt -> Bool (String.compare x y > 0)
      | Ge -> Bool (String.compare x y >= 0)
      | Add -> Str (x ^ y)  (* Java's overloaded + *)
      | _ -> fail "operator %s undefined on strings" (binop_name op))
  | _ -> fail "operator %s on %a and %a" (binop_name op) Value.pp a Value.pp b

let index_of haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  if nn = 0 then 0
  else begin
    let result = ref (-1) in
    (try
       for i = 0 to hn - nn do
         if String.sub haystack i nn = needle then begin
           result := i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let str_binop op a b : Value.t =
  match (a : Value.t), (b : Value.t) with
  | Str x, Str y -> (
      match op with
      | Concat -> Str (x ^ y)
      | Index_of -> Int (index_of x y)
      | Contains -> Bool (index_of x y >= 0)
      | Starts_with ->
          Bool
            (String.length y <= String.length x
            && String.sub x 0 (String.length y) = y)
      | _ -> fail "not a string operator")
  | Null, _ | _, Null -> fail "null dereference in %s" (binop_name op)
  | _ -> fail "operator %s on %a and %a" (binop_name op) Value.pp a Value.pp b

let rec eval reg ~env ?arg e : Value.t =
  match e with
  | Const v -> v
  | Arg -> (
      match arg with
      | Some obvent -> Obvent.to_value obvent
      | None -> fail "no formal argument in scope")
  | Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> fail "unbound variable %s" x)
  | Invoke (recv, m) -> (
      match eval reg ~env ?arg recv with
      | Obj o -> (
          match Obvent.attr_of_getter m with
          | Some attr -> (
              match List.assoc_opt attr o.fields with
              | Some v -> v
              | None -> fail "object %s has no attribute for %s" o.cls m)
          | None -> fail "method %s is not a getter" m)
      | Null -> fail "null dereference invoking %s" m
      | v -> fail "cannot invoke %s on %a" m Value.pp v)
  | Unop (Not, e) -> Bool (not (as_bool (eval reg ~env ?arg e)))
  | Unop (Neg, e) -> (
      match eval reg ~env ?arg e with
      | Int i -> Int (-i)
      | Float f -> Float (-.f)
      | v -> fail "cannot negate %a" Value.pp v)
  | Unop (Length, e) -> (
      match eval reg ~env ?arg e with
      | Str s -> Int (String.length s)
      | List vs -> Int (List.length vs)
      | v -> fail "length of %a" Value.pp v)
  | Unop (Is_null, e) -> (
      match eval reg ~env ?arg e with Null -> Bool true | _ -> Bool false)
  | Binop (And, a, b) ->
      if as_bool (eval reg ~env ?arg a) then eval reg ~env ?arg b
      else Bool false
  | Binop (Or, a, b) ->
      if as_bool (eval reg ~env ?arg a) then Bool true else eval reg ~env ?arg b
  | Binop (Eq, a, b) ->
      Bool (value_eq (eval reg ~env ?arg a) (eval reg ~env ?arg b))
  | Binop (Ne, a, b) ->
      Bool (not (value_eq (eval reg ~env ?arg a) (eval reg ~env ?arg b)))
  | Binop ((Concat | Index_of | Contains | Starts_with) as op, a, b) ->
      str_binop op (eval reg ~env ?arg a) (eval reg ~env ?arg b)
  | Binop (op, a, b) -> num_binop op (eval reg ~env ?arg a) (eval reg ~env ?arg b)

(* Equality with numeric promotion, so that [getPrice() == 100] works
   whether the attribute is an int or a float. *)
and value_eq (a : Value.t) (b : Value.t) =
  match a, b with
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | _ -> Value.equal a b

let eval_bool reg ~env ?arg e = as_bool (eval reg ~env ?arg e)

(* --- simplification ---------------------------------------------------- *)

(* Fold a constant-operand operation with the evaluator's own
   semantics. [None] when evaluation would raise — [1 / 0] must stay
   unfolded so the runtime error survives simplification. *)
let fold_unop op (v : Value.t) : Value.t option =
  match
    match op, v with
    | Not, v -> Value.Bool (not (as_bool v))
    | Neg, Int i -> Value.Int (-i)
    | Neg, Float f -> Value.Float (-.f)
    | Neg, v -> fail "cannot negate %a" Value.pp v
    | Length, Str s -> Value.Int (String.length s)
    | Length, List vs -> Value.Int (List.length vs)
    | Length, v -> fail "length of %a" Value.pp v
    | Is_null, Null -> Value.Bool true
    | Is_null, _ -> Value.Bool false
  with
  | v -> Some v
  | exception Eval_error _ -> None

let fold_binop op (a : Value.t) (b : Value.t) : Value.t option =
  match
    match op with
    | And -> if as_bool a then b else Value.Bool false
    | Or -> if as_bool a then Value.Bool true else b
    | Eq -> Value.Bool (value_eq a b)
    | Ne -> Value.Bool (not (value_eq a b))
    | Concat | Index_of | Contains | Starts_with -> str_binop op a b
    | Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge -> num_binop op a b
  with
  | v -> Some v
  | exception Eval_error _ -> None

(* The boolean-identity rules ([e && true] -> [e], [!!e] -> [e]) are
   exact only when [e] evaluates to a boolean; filter bodies are
   typechecked before they reach here, so that holds. Short-circuit
   rules ([false && e] -> [false]) never look at the discarded operand,
   mirroring the evaluator, so they are exact unconditionally. *)
let rec simplify e =
  match e with
  | Const _ | Arg | Var _ -> e
  | Invoke (recv, m) -> Invoke (simplify recv, m)
  | Unop (op, e1) -> (
      match op, simplify e1 with
      | op, Const v -> (
          match fold_unop op v with
          | Some v -> Const v
          | None -> Unop (op, Const v))
      | Not, Unop (Not, inner) -> inner
      | op, e1' -> Unop (op, e1'))
  | Binop (And, a, b) -> (
      match simplify a, simplify b with
      | Const (Bool true), b' -> b'
      | (Const (Bool false) as f), _ -> f
      | a', Const (Bool true) -> a'
      | a', b' -> Binop (And, a', b'))
  | Binop (Or, a, b) -> (
      match simplify a, simplify b with
      | Const (Bool false), b' -> b'
      | (Const (Bool true) as t), _ -> t
      | a', Const (Bool false) -> a'
      | a', b' -> Binop (Or, a', b'))
  | Binop (op, a, b) -> (
      match simplify a, simplify b with
      | Const x, Const y -> (
          match fold_binop op x y with
          | Some v -> Const v
          | None -> Binop (op, Const x, Const y))
      | a', b' -> Binop (op, a', b'))

let int i = Const (Value.Int i)
let float f = Const (Value.Float f)
let str s = Const (Value.Str s)
let bool b = Const (Value.Bool b)
let getter path = List.fold_left (fun e m -> Invoke (e, m)) Arg path
let ( &&& ) a b = Binop (And, a, b)
let ( ||| ) a b = Binop (Or, a, b)
let ( <. ) a b = Binop (Lt, a, b)
let ( <=. ) a b = Binop (Le, a, b)
let ( >. ) a b = Binop (Gt, a, b)
let ( >=. ) a b = Binop (Ge, a, b)
let ( =. ) a b = Binop (Eq, a, b)
let ( <>. ) a b = Binop (Ne, a, b)
