(** Sound (incomplete) implication checking between remote filters.

    Used by filtering hosts to recognize that one subscription's
    criteria cover another's — a second source of factoring beyond
    shared conditions: if filter [A] implies filter [B], every event
    accepted by [A] is accepted by [B], so [B] need not be evaluated
    for subscribers already covered. Only pure conjunctions are
    analyzed; anything else conservatively yields [false]. *)

val implies : Rfilter.t -> Rfilter.t -> bool
(** [implies a b] — [true] guarantees that every event matching [a]
    matches [b]. [false] means "unknown". *)

val equivalent : Rfilter.t -> Rfilter.t -> bool
(** Mutual implication. *)

val count_covered : Rfilter.t list -> int
(** Number of filters in the list implied by some {e other} filter of
    the list — a redundancy measure reported by experiment E3. *)
