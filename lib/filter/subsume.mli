(** Sound (incomplete) implication checking between remote filters.

    Used by filtering hosts to recognize that one subscription's
    criteria cover another's — a second source of factoring beyond
    shared conditions: if filter [A] implies filter [B], every event
    accepted by [A] is accepted by [B], so [B] need not be evaluated
    for subscribers already covered. Only pure conjunctions are
    analyzed; anything else conservatively yields [false]. *)

val implies : Rfilter.t -> Rfilter.t -> bool
(** [implies a b] — [true] guarantees that every event matching [a]
    matches [b]. [false] means "unknown". *)

val equivalent : Rfilter.t -> Rfilter.t -> bool
(** Mutual implication. *)

val count_covered : Rfilter.t list -> int
(** Number of filters in the list implied by some {e other} filter of
    the list — a redundancy measure reported by experiment E3. *)

(** {1 Satisfiability}

    Sound, incomplete satisfiability/validity checks over whole
    formulas, shared by the static analyzer ([pscc lint]) and the
    engine (which skips registering and shipping provably-false
    filters). Soundness rests on {!Rfilter.eval} being total and
    two-valued — an atom over a missing/null/mistyped path is plain
    [false] — so [Not] dualizes exactly. *)

val unsat_formula : Rfilter.formula -> bool
(** [true] guarantees no obvent value satisfies the formula.
    [false] means "unknown". Conjunctions are checked by combining
    per-path knowledge: crossed bounds ([p < 10 && p > 20]),
    conflicting equalities, an equality listed as a disequality,
    numeric bounds coexisting with string conditions on one path,
    incompatible prefixes, and negative conjuncts entailed by the
    positive ones. *)

val valid_formula : Rfilter.formula -> bool
(** [true] guarantees every value satisfies the formula (dual of
    {!unsat_formula}); [false] means "unknown". Note that atoms are
    never valid by themselves: a missing or null path falsifies any
    atom, so validity only arises from boolean structure. *)

val unsat : Rfilter.t -> bool
(** {!unsat_formula} on a lifted remote filter. The engine consults
    this at subscribe time to prune dead subscriptions from the
    delivery path. *)
