(** Sound (incomplete) implication checking between remote filters.

    Used by filtering hosts to recognize that one subscription's
    criteria cover another's — a second source of factoring beyond
    shared conditions: if filter [A] implies filter [B], every event
    accepted by [A] is accepted by [B], so [B] need not be evaluated
    for subscribers already covered. Only pure conjunctions are
    analyzed; anything else conservatively yields [false]. *)

val implies : Rfilter.t -> Rfilter.t -> bool
(** [implies a b] — [true] guarantees that every event matching [a]
    matches [b]. [false] means "unknown". *)

val equivalent : Rfilter.t -> Rfilter.t -> bool
(** Mutual implication. *)

val count_covered : Rfilter.t list -> int
(** Number of filters in the list implied by some {e other} filter of
    the list — a redundancy measure reported by experiment E3. *)

(** {1 Satisfiability}

    Sound, incomplete satisfiability/validity checks over whole
    formulas, shared by the static analyzer ([pscc lint]) and the
    engine (which skips registering and shipping provably-false
    filters). Soundness rests on {!Rfilter.eval} being total and
    two-valued — an atom over a missing/null/mistyped path is plain
    [false] — so [Not] dualizes exactly. *)

val unsat_formula : Rfilter.formula -> bool
(** [true] guarantees no obvent value satisfies the formula.
    [false] means "unknown". Conjunctions are checked by combining
    per-path knowledge: crossed bounds ([p < 10 && p > 20]),
    conflicting equalities, an equality listed as a disequality,
    numeric bounds coexisting with string conditions on one path,
    incompatible prefixes, and negative conjuncts entailed by the
    positive ones. *)

val valid_formula : Rfilter.formula -> bool
(** [true] guarantees every value satisfies the formula (dual of
    {!unsat_formula}); [false] means "unknown". Note that atoms are
    never valid by themselves: a missing or null path falsifies any
    atom, so validity only arises from boolean structure. *)

val unsat : Rfilter.t -> bool
(** {!unsat_formula} on a lifted remote filter. The engine consults
    this at subscribe time to prune dead subscriptions from the
    delivery path. *)

(** {1 Registry-aware atom reasoning}

    Declared getter types constrain the values a filter can observe
    (obvents are validated against their schema at construction), so a
    registry sharpens every judgement: kind-mismatched atoms become
    [False], and atoms over reliable numeric paths gain exact
    complements. [Absint] delegates here, and the broker consumes the
    same core for its covering index. *)

val path_type :
  Tpbs_types.Registry.t ->
  param:string ->
  string list ->
  Tpbs_types.Vtype.t option
(** Declared result type of a getter path on the subscribed type,
    following the registry schema through object-typed attributes. *)

val reliable_path :
  Tpbs_types.Registry.t -> param:string -> string list -> bool
(** Paths guaranteed to produce a present primitive value on every
    conforming obvent: length-1 getters of int/float/bool type. *)

val atom_never :
  Tpbs_types.Registry.t -> param:string -> Rfilter.atom -> bool
(** The atom can never hold on a conforming obvent: its path's
    declared type cannot produce a value the comparison accepts. *)

val prune_never :
  Tpbs_types.Registry.t ->
  param:string ->
  Rfilter.formula ->
  Rfilter.formula
(** Replace statically-false atoms by [False]. *)

val complement_atom :
  Tpbs_types.Registry.t -> param:string -> Rfilter.atom -> Rfilter.atom option
(** Exact complement, claimed only for numeric comparisons on
    {!reliable_path}s (elsewhere a missing/null value falsifies both
    the atom and its would-be complement). *)

val neg :
  Tpbs_types.Registry.t ->
  param:string ->
  Rfilter.formula ->
  Rfilter.formula
(** Negation normal form of [¬f], using exact atom complements where
    available. *)

(** {1 Covering}

    The subsumption relation federation and the deployment analysis
    stand on: [covers a b] decides [unsat (a ∧ ¬b)] — every event
    matching [a] matches [b] — over arbitrary formulas via a bounded
    disjunctive normal form, refuting each disjunct with the per-path
    knowledge above. With a registry, negated atoms dualize exactly on
    reliable numeric paths and kind-mismatched atoms are pruned;
    without one the procedure still decides the common interval and
    string-containment cases. [true] is a guarantee; [false] means
    "unknown". *)

val formula_unsat :
  ?registry:Tpbs_types.Registry.t ->
  ?param:string ->
  Rfilter.formula ->
  bool
(** {!unsat_formula} strengthened by the bounded-DNF procedure (and,
    given a registry, by kind pruning and exact complements). *)

val covers :
  ?registry:Tpbs_types.Registry.t ->
  ?param:string ->
  Rfilter.t ->
  Rfilter.t ->
  bool
(** [covers ?registry ?param a b] — [true] guarantees every obvent
    value matching [a] matches [b]. [param] defaults to [a.param]; it
    should name the type whose instances are being filtered (the more
    specific of the two subscribed types, when they differ). *)

val witness :
  registry:Tpbs_types.Registry.t ->
  ?cls:string ->
  param:string ->
  Rfilter.t ->
  Rfilter.t ->
  Tpbs_serial.Value.t option
(** A concrete conforming obvent value matching [a] but not [b] — a
    counterexample to [covers a b]. The search enumerates boundary
    values around both filters' constants on each constrained path
    (over the instantiable obvent subtypes of [param], or just [cls]);
    every returned value is machine-checked with
    [Registry.conforms] and [Rfilter.eval], so a [Some] is always a
    genuine counterexample; [None] only means none was found. *)

type cover_verdict =
  | Covered  (** proven: every match of [a] matches [b] *)
  | Not_covered of Tpbs_serial.Value.t
      (** refuted, with a machine-checked witness obvent *)
  | Unknown  (** neither provable nor refutable within budget *)

val covers_witness :
  registry:Tpbs_types.Registry.t ->
  ?cls:string ->
  param:string ->
  Rfilter.t ->
  Rfilter.t ->
  cover_verdict
(** {!covers} with {!witness} as the failure path. *)
