(** Filter expressions: the abstract syntax of the deferred code a
    [subscribe] statement captures in its filter closure (§3.3, LM4).

    The AST is deliberately confined to what §3.3.4 allows a mobile
    filter to do: (nested) getter invocations on the formal argument,
    references to captured [final] outer variables of primitive type,
    literals, and pure operators. Everything else a real closure could
    do is represented {e outside} this AST, as an opaque OCaml
    closure handled by {!Tpbs_filter.Mobility}. *)

type unop =
  | Not
  | Neg
  | Length  (** [s.length()] on strings, size on lists *)
  | Is_null

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or  (** short-circuit *)
  | Concat
  | Index_of  (** Java [String.indexOf]: -1 when absent *)
  | Contains
  | Starts_with

type t =
  | Const of Tpbs_serial.Value.t
  | Arg  (** the formal argument: the filtered obvent *)
  | Invoke of t * string  (** method (getter) invocation *)
  | Var of string  (** captured final outer variable *)
  | Unop of unop * t
  | Binop of binop * t * t

type env = (string * Tpbs_serial.Value.t) list
(** Bindings of the captured outer variables at subscription time. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val size : t -> int
(** Node count — the cost model used by factoring statistics. *)

val getter_paths : t -> string list list
(** All maximal invocation paths rooted at [Arg], deduplicated — the
    leaves of the paper's {e invocation tree} (§4.4.3). A path
    [["getQuote"; "getPrice"]] means [arg.getQuote().getPrice()]. *)

val vars : t -> string list
(** Captured variable names, deduplicated. *)

(** {1 Evaluation} *)

exception Eval_error of string
(** Runtime failure: null dereference, division by zero, operator
    applied to wrong runtime kinds. The engine treats a failing filter
    as non-matching, like an exception escaping a Java predicate. *)

val eval :
  Tpbs_types.Registry.t ->
  env:env ->
  ?arg:Tpbs_obvent.Obvent.t ->
  t ->
  Tpbs_serial.Value.t
(** [arg] binds the formal argument; evaluating [Arg] without one is
    an {!Eval_error}. *)

val eval_bool :
  Tpbs_types.Registry.t -> env:env -> ?arg:Tpbs_obvent.Obvent.t -> t -> bool
(** Evaluate a (typechecked) filter body to its boolean verdict.
    @raise Eval_error if the result is not a boolean. *)

val simplify : t -> t
(** Semantics-preserving constant folding and boolean identity
    elimination: [x && true] and [x && (1 < 2)] become [x], [50 + 50]
    becomes [100], [!(!b)] becomes [b]. On typechecked expressions the
    result {!eval}s exactly like the original, including raising
    behaviour — operations that would raise ([1 / 0], null derefs) are
    left unfolded so the runtime error survives. The psc compiler and
    the engine run this before {!Rfilter.of_expr} so filters with
    redundant boolean structure still lift to atom normal form and
    stay factorable (§4.4.3) instead of demoting to a mobile tree. *)

(** {1 Convenient constructors} *)

val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t
val getter : string list -> t
(** [getter ["getQuote"; "getPrice"]] builds the nested invocation on
    [Arg]. *)

val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( <. ) : t -> t -> t
val ( <=. ) : t -> t -> t
val ( >. ) : t -> t -> t
val ( >=. ) : t -> t -> t
val ( =. ) : t -> t -> t
val ( <>. ) : t -> t -> t
