module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge | Ccontains | Cprefix

type atom = { path : string list; cmp : cmp; const : Value.t }

type formula =
  | True
  | False
  | Atom of atom
  | Not of formula
  | And of formula list
  | Or of formula list

type t = { param : string; paths : string list array; formula : formula }

let cmp_name = function
  | Ceq -> "==" | Cne -> "!=" | Clt -> "<" | Cle -> "<=" | Cgt -> ">"
  | Cge -> ">=" | Ccontains -> "contains" | Cprefix -> "startsWith"

let pp_atom ppf a =
  Fmt.pf ppf "%s %s %a" (String.concat "." a.path) (cmp_name a.cmp) Value.pp
    a.const

let rec pp_formula ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom a -> pp_atom ppf a
  | Not f -> Fmt.pf ppf "!(%a)" pp_formula f
  | And fs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " && ") pp_formula) fs
  | Or fs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " || ") pp_formula) fs

let pp ppf t =
  Fmt.pf ppf "remote-filter<%s>{paths=[%a]; %a}" t.param
    Fmt.(array ~sep:(any "; ") (fun ppf p -> Fmt.string ppf (String.concat "." p)))
    t.paths pp_formula t.formula

(* --- normalization ------------------------------------------------- *)

(* Resolve Var references to their subscription-time constants and
   recognize a pure getter chain. *)
let rec as_path : Expr.t -> string list option = function
  | Arg -> Some []
  | Invoke (e, m) -> (
      match as_path e with Some p -> Some (p @ [ m ]) | None -> None)
  | Const _ | Var _ | Unop _ | Binop _ -> None

let as_const ~env : Expr.t -> Value.t option = function
  | Const v -> Some v
  | Var x -> List.assoc_opt x env
  | Arg | Invoke _ | Unop _ | Binop _ -> None

let mirror = function
  | Ceq -> Ceq | Cne -> Cne | Clt -> Cgt | Cle -> Cge | Cgt -> Clt | Cge -> Cle
  | (Ccontains | Cprefix) as c -> c

let cmp_of_binop : Expr.binop -> cmp option = function
  | Eq -> Some Ceq | Ne -> Some Cne | Lt -> Some Clt | Le -> Some Cle
  | Gt -> Some Cgt | Ge -> Some Cge
  | Add | Sub | Mul | Div | Mod | And | Or | Concat | Index_of | Contains
  | Starts_with ->
      None

let rec formula_of_expr ~env (e : Expr.t) : formula option =
  match e with
  | Const (Bool true) -> Some True
  | Const (Bool false) -> Some False
  | Var x -> (
      match List.assoc_opt x env with
      | Some (Value.Bool true) -> Some True
      | Some (Value.Bool false) -> Some False
      | Some _ | None -> None)
  | Unop (Not, e) -> (
      match formula_of_expr ~env e with
      | Some f -> Some (Not f)
      | None -> None)
  | Binop (And, a, b) -> combine ~env (fun x y -> And [ x; y ]) a b
  | Binop (Or, a, b) -> combine ~env (fun x y -> Or [ x; y ]) a b
  | Binop (op, a, b) -> atom_of ~env op a b
  | Invoke _ -> (
      (* A boolean getter used directly: path == true. *)
      match as_path e with
      | Some path -> Some (Atom { path; cmp = Ceq; const = Bool true })
      | None -> None)
  | Const _ | Arg | Unop _ -> None

and combine ~env mk a b =
  match formula_of_expr ~env a, formula_of_expr ~env b with
  | Some fa, Some fb -> Some (mk fa fb)
  | _, _ -> None

and atom_of ~env op a b =
  (* indexOf idioms first: s.indexOf(c) != -1, == -1, >= 0, < 0. *)
  let index_of_idiom lhs rhs =
    match (lhs : Expr.t) with
    | Binop (Index_of, s, c) -> (
        match as_path s, as_const ~env c, as_const ~env rhs with
        | Some path, Some (Str _ as needle), Some (Int k) -> (
            match op, k with
            | Expr.Ne, -1 | Expr.Ge, 0 | Expr.Gt, -1 ->
                Some (Atom { path; cmp = Ccontains; const = needle })
            | Expr.Eq, -1 | Expr.Lt, 0 | Expr.Le, -1 ->
                Some (Not (Atom { path; cmp = Ccontains; const = needle }))
            | _, _ -> None)
        | _, _, _ -> None)
    | _ -> None
  in
  match op with
  | Expr.Contains -> (
      match as_path a, as_const ~env b with
      | Some path, Some (Str _ as needle) ->
          Some (Atom { path; cmp = Ccontains; const = needle })
      | _, _ -> None)
  | Expr.Starts_with -> (
      match as_path a, as_const ~env b with
      | Some path, Some (Str _ as needle) ->
          Some (Atom { path; cmp = Cprefix; const = needle })
      | _, _ -> None)
  | _ -> (
      match index_of_idiom a b with
      | Some f -> Some f
      | None -> (
          match index_of_idiom b a with
          | Some f -> Some f
          | None -> (
              match cmp_of_binop op with
              | None -> None
              | Some cmp -> (
                  match as_path a, as_const ~env b with
                  | Some path, Some const -> Some (Atom { path; cmp; const })
                  | _, _ -> (
                      match as_path b, as_const ~env a with
                      | Some path, Some const ->
                          Some (Atom { path; cmp = mirror cmp; const })
                      | _, _ -> None)))))

let rec flatten = function
  | And fs ->
      let fs = List.map flatten fs in
      let fs =
        List.concat_map (function And gs -> gs | f -> [ f ]) fs
      in
      if List.exists (fun f -> f = False) fs then False
      else begin
        match List.filter (fun f -> f <> True) fs with
        | [] -> True
        | [ f ] -> f
        | fs -> And fs
      end
  | Or fs ->
      let fs = List.map flatten fs in
      let fs = List.concat_map (function Or gs -> gs | f -> [ f ]) fs in
      if List.exists (fun f -> f = True) fs then True
      else begin
        match List.filter (fun f -> f <> False) fs with
        | [] -> False
        | [ f ] -> f
        | fs -> Or fs
      end
  | Not f -> (
      match flatten f with
      | True -> False
      | False -> True
      | Not g -> g
      | g -> Not g)
  | (True | False | Atom _) as f -> f

let rec formula_paths acc = function
  | True | False -> acc
  | Atom a -> a.path :: acc
  | Not f -> formula_paths acc f
  | And fs | Or fs -> List.fold_left formula_paths acc fs

let of_expr ~env ~param e =
  match formula_of_expr ~env e with
  | None -> None
  | Some f ->
      let formula = flatten f in
      let paths =
        List.sort_uniq (List.compare String.compare)
          (formula_paths [] formula)
      in
      Some { param; paths = Array.of_list paths; formula }

(* --- back to expressions ------------------------------------------- *)

let expr_of_atom a : Expr.t =
  let path = Expr.getter a.path in
  match a.cmp with
  | Ceq -> Binop (Eq, path, Const a.const)
  | Cne -> Binop (Ne, path, Const a.const)
  | Clt -> Binop (Lt, path, Const a.const)
  | Cle -> Binop (Le, path, Const a.const)
  | Cgt -> Binop (Gt, path, Const a.const)
  | Cge -> Binop (Ge, path, Const a.const)
  | Ccontains -> Binop (Contains, path, Const a.const)
  | Cprefix -> Binop (Starts_with, path, Const a.const)

let rec expr_of_formula : formula -> Expr.t = function
  | True -> Expr.bool true
  | False -> Expr.bool false
  | Atom a -> expr_of_atom a
  | Not f -> Unop (Not, expr_of_formula f)
  | And [] -> Expr.bool true
  | And (f :: fs) ->
      List.fold_left
        (fun acc f -> Expr.Binop (And, acc, expr_of_formula f))
        (expr_of_formula f) fs
  | Or [] -> Expr.bool false
  | Or (f :: fs) ->
      List.fold_left
        (fun acc f -> Expr.Binop (Or, acc, expr_of_formula f))
        (expr_of_formula f) fs

let to_expr t = expr_of_formula t.formula

(* --- evaluation ----------------------------------------------------- *)

let eval_path (v : Value.t) path =
  let step v m =
    match v, Obvent.attr_of_getter m with
    | Value.Obj o, Some attr -> List.assoc_opt attr o.fields
    | _, _ -> None
  in
  List.fold_left
    (fun acc m -> match acc with None -> None | Some v -> step v m)
    (Some v) path

let value_cmp_num (a : Value.t) (b : Value.t) : int option =
  match a, b with
  | Int x, Int y -> Some (Int.compare x y)
  | Float x, Float y -> Some (Float.compare x y)
  | Int x, Float y -> Some (Float.compare (float_of_int x) y)
  | Float x, Int y -> Some (Float.compare x (float_of_int y))
  | Str x, Str y -> Some (String.compare x y)
  | _ -> None

let value_eq (a : Value.t) (b : Value.t) =
  match a, b with
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | _ -> Value.equal a b

let eval_atom_value (v : Value.t) a =
  match a.cmp with
  | Ceq -> value_eq v a.const
  | Cne -> not (value_eq v a.const)
  | Clt | Cle | Cgt | Cge -> (
      match value_cmp_num v a.const with
      | None -> false
      | Some c -> (
          match a.cmp with
          | Clt -> c < 0
          | Cle -> c <= 0
          | Cgt -> c > 0
          | Cge -> c >= 0
          | Ceq | Cne | Ccontains | Cprefix -> assert false))
  | Ccontains | Cprefix -> (
      match v, a.const with
      | Str s, Str needle ->
          let nn = String.length needle in
          if a.cmp = Cprefix then
            String.length s >= nn && String.sub s 0 nn = needle
          else begin
            let found = ref false in
            (try
               for i = 0 to String.length s - nn do
                 if String.sub s i nn = needle then begin
                   found := true;
                   raise Exit
                 end
               done
             with Exit -> ());
            nn = 0 || !found
          end
      | _, _ -> false)

let eval_atom root a =
  match eval_path root a.path with
  | None -> false
  | Some v -> eval_atom_value v a

let rec eval_formula root = function
  | True -> true
  | False -> false
  | Atom a -> eval_atom root a
  | Not f -> not (eval_formula root f)
  | And fs -> List.for_all (eval_formula root) fs
  | Or fs -> List.exists (eval_formula root) fs

let eval t root = eval_formula root t.formula
let matches_obvent t o = eval t (Obvent.to_value o)

(* --- wire format ----------------------------------------------------- *)

let cmp_code = function
  | Ceq -> 0 | Cne -> 1 | Clt -> 2 | Cle -> 3 | Cgt -> 4 | Cge -> 5
  | Ccontains -> 6 | Cprefix -> 7

let cmp_of_code = function
  | 0 -> Some Ceq | 1 -> Some Cne | 2 -> Some Clt | 3 -> Some Cle
  | 4 -> Some Cgt | 5 -> Some Cge | 6 -> Some Ccontains | 7 -> Some Cprefix
  | _ -> None

let atom_to_value a : Value.t =
  List
    [ List (List.map (fun m -> Value.Str m) a.path);
      Int (cmp_code a.cmp); a.const ]

let atom_of_value : Value.t -> atom option = function
  | List [ List path; Int code; const ] -> (
      let path =
        List.filter_map (function Value.Str s -> Some s | _ -> None) path
      in
      match cmp_of_code code with
      | Some cmp -> Some { path; cmp; const }
      | None -> None)
  | _ -> None

let rec formula_to_value : formula -> Value.t = function
  | True -> List [ Str "true" ]
  | False -> List [ Str "false" ]
  | Atom a -> List [ Str "atom"; atom_to_value a ]
  | Not f -> List [ Str "not"; formula_to_value f ]
  | And fs -> List (Str "and" :: List.map formula_to_value fs)
  | Or fs -> List (Str "or" :: List.map formula_to_value fs)

let rec formula_of_value : Value.t -> formula option = function
  | List [ Str "true" ] -> Some True
  | List [ Str "false" ] -> Some False
  | List [ Str "atom"; av ] -> (
      match atom_of_value av with Some a -> Some (Atom a) | None -> None)
  | List [ Str "not"; fv ] -> (
      match formula_of_value fv with Some f -> Some (Not f) | None -> None)
  | List (Str "and" :: fvs) -> formulas_of_values fvs (fun fs -> And fs)
  | List (Str "or" :: fvs) -> formulas_of_values fvs (fun fs -> Or fs)
  | _ -> None

and formulas_of_values fvs mk =
  let fs = List.map formula_of_value fvs in
  if List.exists Option.is_none fs then None
  else Some (mk (List.map Option.get fs))

let to_value t : Value.t =
  List [ Str t.param; formula_to_value t.formula ]

let of_value : Value.t -> t option = function
  | List [ Str param; fv ] -> (
      match formula_of_value fv with
      | None -> None
      | Some formula ->
          let paths =
            List.sort_uniq (List.compare String.compare)
              (formula_paths [] formula)
          in
          Some { param; paths = Array.of_list paths; formula })
  | _ -> None

(* --- inspection ----------------------------------------------------- *)

let atoms t =
  let rec walk acc = function
    | True | False -> acc
    | Atom a -> a :: acc
    | Not f -> walk acc f
    | And fs | Or fs -> List.fold_left walk acc fs
  in
  List.rev (walk [] t.formula)

let conjunction_atoms t =
  let rec walk acc = function
    | Atom a -> Some (a :: acc)
    | And fs ->
        List.fold_left
          (fun acc f -> match acc with None -> None | Some acc -> walk acc f)
          (Some acc) fs
    | True -> Some acc
    | False | Not _ | Or _ -> None
  in
  match walk [] t.formula with
  | Some (_ :: _ as atoms) -> Some (List.rev atoms)
  | Some [] | None -> None

let always_true t = t.formula = True
