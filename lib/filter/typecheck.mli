(** Static typechecking of filter bodies against the obvent type of
    the subscription's formal parameter — the compile-time safety the
    paper's LP1 demands: type errors in filters are found before the
    subscription ever sees an event. *)

type error = { expr : Expr.t; message : string }

exception Ill_typed of error

val pp_error : Format.formatter -> error -> unit

val infer :
  Tpbs_types.Registry.t ->
  param:string ->
  vars:(string * Tpbs_types.Vtype.t) list ->
  Expr.t ->
  Tpbs_types.Vtype.t
(** [infer reg ~param ~vars e] — type of [e] where [Arg : param] and
    captured variables have the declared types.
    @raise Ill_typed on unknown methods, operator misuse, or unbound
    variables. *)

val check_filter :
  Tpbs_types.Registry.t ->
  param:string ->
  vars:(string * Tpbs_types.Vtype.t) list ->
  Expr.t ->
  unit
(** A filter body must have type [bool] (§3.3.1).
    @raise Ill_typed otherwise. *)

val check_filter_result :
  Tpbs_types.Registry.t ->
  param:string ->
  vars:(string * Tpbs_types.Vtype.t) list ->
  Expr.t ->
  (unit, error) result
(** Non-raising variant, used by the psc compiler to report errors. *)
