(** Remote filters: the intermediate representation the psc
    precompiler generates for conforming filters (§4.4.3).

    A remote filter is the pair of tree-like structures the paper
    describes: the {e invocation tree} — the set of nested getter
    paths applied to the filtered obvent — and the {e evaluation tree}
    — a logical formula over elementary conditions on those paths'
    values. In this form a filter is plain data: it can be
    typechecked, serialized to a filtering host, compared with other
    filters, and factored into a compound filter ({!Factored}).

    Not every well-typed filter body has this shape (arithmetic
    between two paths, for instance, does not); {!of_expr} returns
    [None] for those, and the engine then ships the expression tree
    itself (still mobile) or falls back to local evaluation for opaque
    closures. *)

(** Elementary comparison between a path's value and a constant. *)
type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge | Ccontains | Cprefix

type atom = {
  path : string list;  (** nested getter chain on the obvent *)
  cmp : cmp;
  const : Tpbs_serial.Value.t;
}

type formula =
  | True
  | False
  | Atom of atom
  | Not of formula
  | And of formula list
  | Or of formula list

type t = {
  param : string;  (** the subscribed obvent type *)
  paths : string list array;  (** invocation tree leaves, deduplicated *)
  formula : formula;  (** evaluation tree *)
}

val of_expr : env:Expr.env -> param:string -> Expr.t -> t option
(** Normalize a filter body. Captured variables are replaced by their
    subscription-time bindings (the paper's [final] variables are
    constants from the filter's point of view). [None] when the body
    is not a boolean combination of path-vs-constant conditions. *)

val to_expr : t -> Expr.t
(** Rebuild an equivalent expression (used for round-trip tests and
    for local evaluation of a received remote filter). *)

val eval_path :
  Tpbs_serial.Value.t -> string list -> Tpbs_serial.Value.t option
(** Follow a getter path through an object value. [None] on a null or
    non-object intermediate, or a missing attribute. *)

val eval_atom_value : Tpbs_serial.Value.t -> atom -> bool
(** Compare an already-extracted path value against the atom's
    constant (numeric promotion included). Used by {!Factored}. *)

val eval_atom : Tpbs_serial.Value.t -> atom -> bool
(** Three-valued collapse: an atom over a missing/null/mistyped path
    is simply [false] (the Siena-style convention; the engine treats
    an erroring filter as non-matching, so this agrees with direct
    evaluation whenever that one terminates normally). *)

val eval : t -> Tpbs_serial.Value.t -> bool
(** Evaluate the formula against an obvent value. Never raises. *)

val matches_obvent : t -> Tpbs_obvent.Obvent.t -> bool

val to_value : t -> Tpbs_serial.Value.t
(** Wire representation, so subscriptions can carry their filters to
    brokers (§3.3.3: migration of filtering code). *)

val of_value : Tpbs_serial.Value.t -> t option
(** Decode; [None] on malformed input. *)

val pp : Format.formatter -> t -> unit
val pp_formula : Format.formatter -> formula -> unit
val pp_atom : Format.formatter -> atom -> unit

val atoms : t -> atom list
(** All atoms, in formula order (duplicates preserved). *)

val conjunction_atoms : t -> atom list option
(** [Some atoms] when the formula is a pure conjunction of positive
    atoms — the shape eligible for the counting algorithm of
    factoring ([ASS+99]). *)

val always_true : t -> bool
(** Recognizes the paper's "subscribe to all instances of T" idiom:
    [subscribe (T t) { return true; } {...}]. *)
