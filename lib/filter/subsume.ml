module Value = Tpbs_serial.Value

(* Per-path knowledge extracted from a conjunction of atoms. *)
type bound = { value : float; inclusive : bool }

type path_info = {
  mutable lo : bound option;  (* value >= / > lo *)
  mutable hi : bound option;  (* value <= / < hi *)
  mutable eq : Value.t option;  (* value == eq *)
  mutable ne : Value.t list;
  mutable contains : string list;  (* value contains each *)
  mutable prefix : string option;  (* longest known prefix *)
  mutable unsupported : bool;  (* an atom we cannot reason about *)
}

let fresh_info () =
  { lo = None; hi = None; eq = None; ne = []; contains = [];
    prefix = None; unsupported = false }

let as_float : Value.t -> float option = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let tighten_lo info b =
  match info.lo with
  | None -> info.lo <- Some b
  | Some cur ->
      if b.value > cur.value || (b.value = cur.value && not b.inclusive) then
        info.lo <- Some b

let tighten_hi info b =
  match info.hi with
  | None -> info.hi <- Some b
  | Some cur ->
      if b.value < cur.value || (b.value = cur.value && not b.inclusive) then
        info.hi <- Some b

let is_substring ~needle hay =
  let nn = String.length needle and hn = String.length hay in
  nn = 0
  ||
  let found = ref false in
  (try
     for i = 0 to hn - nn do
       if String.sub hay i nn = needle then begin
         found := true;
         raise Exit
       end
     done
   with Exit -> ());
  !found

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.sub s 0 (String.length prefix) = prefix

let absorb info (a : Rfilter.atom) =
  match a.cmp with
  | Ceq -> (
      info.eq <- Some a.const;
      match as_float a.const with
      | Some f ->
          tighten_lo info { value = f; inclusive = true };
          tighten_hi info { value = f; inclusive = true }
      | None -> ())
  | Cne -> info.ne <- a.const :: info.ne
  | Clt -> (
      match as_float a.const with
      | Some f -> tighten_hi info { value = f; inclusive = false }
      | None -> info.unsupported <- true)
  | Cle -> (
      match as_float a.const with
      | Some f -> tighten_hi info { value = f; inclusive = true }
      | None -> info.unsupported <- true)
  | Cgt -> (
      match as_float a.const with
      | Some f -> tighten_lo info { value = f; inclusive = false }
      | None -> info.unsupported <- true)
  | Cge -> (
      match as_float a.const with
      | Some f -> tighten_lo info { value = f; inclusive = true }
      | None -> info.unsupported <- true)
  | Ccontains -> (
      match a.const with
      | Str s -> info.contains <- s :: info.contains
      | _ -> info.unsupported <- true)
  | Cprefix -> (
      match a.const with
      | Str s -> (
          match info.prefix with
          | None -> info.prefix <- Some s
          | Some p ->
              (* Keep the longer prefix if compatible; otherwise the
                 conjunction is unsatisfiable, which still soundly
                 implies everything, but we stay conservative. *)
              if is_prefix ~prefix:p s then info.prefix <- Some s
              else if not (is_prefix ~prefix:s p) then info.unsupported <- true)
      | _ -> info.unsupported <- true)

let knowledge atoms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (a : Rfilter.atom) ->
      let info =
        match Hashtbl.find_opt tbl a.path with
        | Some i -> i
        | None ->
            let i = fresh_info () in
            Hashtbl.add tbl a.path i;
            i
      in
      absorb info a)
    atoms;
  tbl

(* Does the knowledge about a path guarantee atom [b]? *)
let entails (info : path_info) (b : Rfilter.atom) =
  let eq_guarantees v =
    match info.eq with
    | Some e -> Value.equal e v
    | None -> false
  in
  match b.cmp with
  | Ceq -> eq_guarantees b.const
  | Cne -> (
      (* Known equal to something different, or an explicit ne. *)
      (match info.eq with
      | Some e -> not (Value.equal e b.const)
      | None -> List.exists (Value.equal b.const) info.ne)
      ||
      match as_float b.const, info.lo, info.hi with
      | Some v, Some lo, _ when lo.value > v || (lo.value = v && not lo.inclusive)
        -> true
      | Some v, _, Some hi when hi.value < v || (hi.value = v && not hi.inclusive)
        -> true
      | _ -> false)
  | Clt -> (
      match as_float b.const, info.hi with
      | Some v, Some hi -> hi.value < v || (hi.value = v && not hi.inclusive)
      | _ -> false)
  | Cle -> (
      match as_float b.const, info.hi with
      | Some v, Some hi -> hi.value <= v
      | _ -> false)
  | Cgt -> (
      match as_float b.const, info.lo with
      | Some v, Some lo -> lo.value > v || (lo.value = v && not lo.inclusive)
      | _ -> false)
  | Cge -> (
      match as_float b.const, info.lo with
      | Some v, Some lo -> lo.value >= v
      | _ -> false)
  | Ccontains -> (
      match b.const with
      | Str needle -> (
          List.exists (fun s -> is_substring ~needle s) info.contains
          || (match info.prefix with
             | Some p -> is_substring ~needle p
             | None -> false)
          ||
          match info.eq with
          | Some (Str s) -> is_substring ~needle s
          | _ -> false)
      | _ -> false)
  | Cprefix -> (
      match b.const with
      | Str needle -> (
          (match info.prefix with
          | Some p -> is_prefix ~prefix:needle p
          | None -> false)
          ||
          match info.eq with
          | Some (Str s) -> is_prefix ~prefix:needle s
          | _ -> false)
      | _ -> false)

let implies a b =
  if not (String.equal a.Rfilter.param b.Rfilter.param) then false
  else
    match Rfilter.conjunction_atoms a, b.Rfilter.formula with
    | _, True -> true
    | None, _ -> false
    | Some a_atoms, _ -> (
        match Rfilter.conjunction_atoms b with
        | None -> false
        | Some b_atoms ->
            let know = knowledge a_atoms in
            List.for_all
              (fun (batom : Rfilter.atom) ->
                match Hashtbl.find_opt know batom.path with
                | None -> false
                | Some info -> (not info.unsupported) && entails info batom)
              b_atoms)

let equivalent a b = implies a b && implies b a

let count_covered filters =
  let arr = Array.of_list filters in
  let n = Array.length arr in
  let covered = ref 0 in
  for i = 0 to n - 1 do
    let is_covered = ref false in
    for j = 0 to n - 1 do
      if i <> j && not !is_covered && implies arr.(j) arr.(i) then
        is_covered := true
    done;
    if !is_covered then incr covered
  done;
  !covered
