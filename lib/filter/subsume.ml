module Value = Tpbs_serial.Value

(* Per-path knowledge extracted from a conjunction of atoms. *)
type bound = { value : float; inclusive : bool }

type path_info = {
  mutable lo : bound option;  (* value >= / > lo *)
  mutable hi : bound option;  (* value <= / < hi *)
  mutable eq : Value.t option;  (* value == eq *)
  mutable ne : Value.t list;
  mutable contains : string list;  (* value contains each *)
  mutable prefix : string option;  (* longest known prefix *)
  mutable unsupported : bool;  (* an atom we cannot reason about *)
  mutable impossible : bool;  (* atoms that directly contradict *)
}

let fresh_info () =
  { lo = None; hi = None; eq = None; ne = []; contains = [];
    prefix = None; unsupported = false; impossible = false }

let as_float : Value.t -> float option = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

(* Equality with numeric promotion, mirroring [Rfilter.eval_atom]'s
   comparison semantics ([p == 5] and [p == 5.0] accept the same
   values). *)
let veq (a : Value.t) (b : Value.t) =
  match a, b with
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | _ -> Value.equal a b

let tighten_lo info b =
  match info.lo with
  | None -> info.lo <- Some b
  | Some cur ->
      if b.value > cur.value || (b.value = cur.value && not b.inclusive) then
        info.lo <- Some b

let tighten_hi info b =
  match info.hi with
  | None -> info.hi <- Some b
  | Some cur ->
      if b.value < cur.value || (b.value = cur.value && not b.inclusive) then
        info.hi <- Some b

let is_substring ~needle hay =
  let nn = String.length needle and hn = String.length hay in
  nn = 0
  ||
  let found = ref false in
  (try
     for i = 0 to hn - nn do
       if String.sub hay i nn = needle then begin
         found := true;
         raise Exit
       end
     done
   with Exit -> ());
  !found

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.sub s 0 (String.length prefix) = prefix

let absorb info (a : Rfilter.atom) =
  match a.cmp with
  | Ceq -> (
      (match info.eq with
      | Some e when not (veq e a.const) -> info.impossible <- true
      | _ -> ());
      info.eq <- Some a.const;
      match as_float a.const with
      | Some f ->
          tighten_lo info { value = f; inclusive = true };
          tighten_hi info { value = f; inclusive = true }
      | None -> ())
  | Cne -> info.ne <- a.const :: info.ne
  | Clt -> (
      match as_float a.const with
      | Some f -> tighten_hi info { value = f; inclusive = false }
      | None -> info.unsupported <- true)
  | Cle -> (
      match as_float a.const with
      | Some f -> tighten_hi info { value = f; inclusive = true }
      | None -> info.unsupported <- true)
  | Cgt -> (
      match as_float a.const with
      | Some f -> tighten_lo info { value = f; inclusive = false }
      | None -> info.unsupported <- true)
  | Cge -> (
      match as_float a.const with
      | Some f -> tighten_lo info { value = f; inclusive = true }
      | None -> info.unsupported <- true)
  | Ccontains -> (
      match a.const with
      | Str s -> info.contains <- s :: info.contains
      | _ -> info.unsupported <- true)
  | Cprefix -> (
      match a.const with
      | Str s -> (
          match info.prefix with
          | None -> info.prefix <- Some s
          | Some p ->
              (* Keep the longer prefix if compatible; two incompatible
                 prefixes can never both hold. *)
              if is_prefix ~prefix:p s then info.prefix <- Some s
              else if not (is_prefix ~prefix:s p) then begin
                info.unsupported <- true;
                info.impossible <- true
              end)
      | _ -> info.unsupported <- true)

let knowledge atoms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (a : Rfilter.atom) ->
      let info =
        match Hashtbl.find_opt tbl a.path with
        | Some i -> i
        | None ->
            let i = fresh_info () in
            Hashtbl.add tbl a.path i;
            i
      in
      absorb info a)
    atoms;
  tbl

(* Does the knowledge about a path guarantee atom [b]? *)
let entails (info : path_info) (b : Rfilter.atom) =
  let eq_guarantees v =
    match info.eq with
    | Some e -> Value.equal e v
    | None -> false
  in
  match b.cmp with
  | Ceq -> eq_guarantees b.const
  | Cne -> (
      (* Known equal to something different, or an explicit ne. *)
      (match info.eq with
      | Some e -> not (Value.equal e b.const)
      | None -> List.exists (Value.equal b.const) info.ne)
      ||
      match as_float b.const, info.lo, info.hi with
      | Some v, Some lo, _ when lo.value > v || (lo.value = v && not lo.inclusive)
        -> true
      | Some v, _, Some hi when hi.value < v || (hi.value = v && not hi.inclusive)
        -> true
      | _ -> false)
  | Clt -> (
      match as_float b.const, info.hi with
      | Some v, Some hi -> hi.value < v || (hi.value = v && not hi.inclusive)
      | _ -> false)
  | Cle -> (
      match as_float b.const, info.hi with
      | Some v, Some hi -> hi.value <= v
      | _ -> false)
  | Cgt -> (
      match as_float b.const, info.lo with
      | Some v, Some lo -> lo.value > v || (lo.value = v && not lo.inclusive)
      | _ -> false)
  | Cge -> (
      match as_float b.const, info.lo with
      | Some v, Some lo -> lo.value >= v
      | _ -> false)
  | Ccontains -> (
      match b.const with
      | Str needle -> (
          List.exists (fun s -> is_substring ~needle s) info.contains
          || (match info.prefix with
             | Some p -> is_substring ~needle p
             | None -> false)
          ||
          match info.eq with
          | Some (Str s) -> is_substring ~needle s
          | _ -> false)
      | _ -> false)
  | Cprefix -> (
      match b.const with
      | Str needle -> (
          (match info.prefix with
          | Some p -> is_prefix ~prefix:needle p
          | None -> false)
          ||
          match info.eq with
          | Some (Str s) -> is_prefix ~prefix:needle s
          | _ -> false)
      | _ -> false)

(* --- satisfiability ---------------------------------------------------- *)

let bound_crossing info =
  match info.lo, info.hi with
  | Some lo, Some hi ->
      lo.value > hi.value
      || (lo.value = hi.value && not (lo.inclusive && hi.inclusive))
  | _ -> false

let is_num : Value.t -> bool = function
  | Int _ | Float _ -> true
  | _ -> false

(* Can no value satisfy every atom recorded about this path?

   Kind arguments: a numeric bound atom only holds for numeric values
   (absorb records bounds for numeric constants only, and
   [eval_atom]'s ordering comparison against a numeric constant fails
   on everything else), while contains/prefix atoms only hold for
   strings — so both kinds together are contradictory. *)
let info_unsat info =
  let has_bounds = info.lo <> None || info.hi <> None in
  let has_str = info.contains <> [] || info.prefix <> None in
  info.impossible
  || bound_crossing info
  || (has_bounds && has_str)
  || (match info.eq with
     | None -> false
     | Some e -> (
         (has_bounds && not (is_num e))
         || (has_str
            &&
            match e with
            | Value.Str s ->
                List.exists
                  (fun needle -> not (is_substring ~needle s))
                  info.contains
                || (match info.prefix with
                   | Some p -> not (is_prefix ~prefix:p s)
                   | None -> false)
            | _ -> true)
         || List.exists (veq e) info.ne))

type know = (string list, path_info) Hashtbl.t

let contradictory (know : know) =
  Hashtbl.fold (fun _ info acc -> acc || info_unsat info) know false

let entailed (know : know) (b : Rfilter.atom) =
  match Hashtbl.find_opt know b.path with
  | None -> false
  | Some info -> (not info.unsupported) && entails info b

(* [unsat f] — [true] guarantees no obvent value satisfies [f] under
   [Rfilter.eval]; [valid f] — [true] guarantees every value does.
   Both lean on [eval_formula] being total and two-valued (an atom
   over a missing/null/mistyped path is plain [false]), which makes
   the [Not] cases exact. Conjunctions combine per-path knowledge of
   the positive atoms; a negative conjunct [Not (Atom b)] entailed by
   that knowledge is a contradiction too. *)
let rec unsat_formula (f : Rfilter.formula) =
  match f with
  | False -> true
  | True | Atom _ -> false
  | Not f -> valid_formula f
  | Or fs -> List.for_all unsat_formula fs
  | And fs ->
      List.exists unsat_formula fs
      ||
      let pos =
        List.filter_map
          (function Rfilter.Atom a -> Some a | _ -> None)
          fs
      in
      let know = knowledge pos in
      contradictory know
      || List.exists
           (function
             | Rfilter.Not (Atom b) -> entailed know b
             | _ -> false)
           fs

and valid_formula (f : Rfilter.formula) =
  match f with
  | True -> true
  | False | Atom _ -> false
  | Not f -> unsat_formula f
  | And fs -> List.for_all valid_formula fs
  | Or fs -> List.exists valid_formula fs

let unsat (t : Rfilter.t) = unsat_formula t.formula

let implies a b =
  if not (String.equal a.Rfilter.param b.Rfilter.param) then false
  else
    match Rfilter.conjunction_atoms a, b.Rfilter.formula with
    | _, True -> true
    | None, _ -> false
    | Some a_atoms, _ -> (
        match Rfilter.conjunction_atoms b with
        | None -> false
        | Some b_atoms ->
            let know = knowledge a_atoms in
            List.for_all
              (fun (batom : Rfilter.atom) ->
                match Hashtbl.find_opt know batom.path with
                | None -> false
                | Some info -> (not info.unsupported) && entails info batom)
              b_atoms)

let equivalent a b = implies a b && implies b a

let count_covered filters =
  let arr = Array.of_list filters in
  let n = Array.length arr in
  let covered = ref 0 in
  for i = 0 to n - 1 do
    let is_covered = ref false in
    for j = 0 to n - 1 do
      if i <> j && not !is_covered && implies arr.(j) arr.(i) then
        is_covered := true
    done;
    if !is_covered then incr covered
  done;
  !covered
