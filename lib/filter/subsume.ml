module Value = Tpbs_serial.Value

(* Per-path knowledge extracted from a conjunction of atoms. *)
type bound = { value : float; inclusive : bool }

type path_info = {
  mutable lo : bound option;  (* value >= / > lo *)
  mutable hi : bound option;  (* value <= / < hi *)
  mutable eq : Value.t option;  (* value == eq *)
  mutable ne : Value.t list;
  mutable contains : string list;  (* value contains each *)
  mutable prefix : string option;  (* longest known prefix *)
  mutable unsupported : bool;  (* an atom we cannot reason about *)
  mutable impossible : bool;  (* atoms that directly contradict *)
}

let fresh_info () =
  { lo = None; hi = None; eq = None; ne = []; contains = [];
    prefix = None; unsupported = false; impossible = false }

let as_float : Value.t -> float option = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

(* Equality with numeric promotion, mirroring [Rfilter.eval_atom]'s
   comparison semantics ([p == 5] and [p == 5.0] accept the same
   values). *)
let veq (a : Value.t) (b : Value.t) =
  match a, b with
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | _ -> Value.equal a b

let tighten_lo info b =
  match info.lo with
  | None -> info.lo <- Some b
  | Some cur ->
      if b.value > cur.value || (b.value = cur.value && not b.inclusive) then
        info.lo <- Some b

let tighten_hi info b =
  match info.hi with
  | None -> info.hi <- Some b
  | Some cur ->
      if b.value < cur.value || (b.value = cur.value && not b.inclusive) then
        info.hi <- Some b

let is_substring ~needle hay =
  let nn = String.length needle and hn = String.length hay in
  nn = 0
  ||
  let found = ref false in
  (try
     for i = 0 to hn - nn do
       if String.sub hay i nn = needle then begin
         found := true;
         raise Exit
       end
     done
   with Exit -> ());
  !found

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.sub s 0 (String.length prefix) = prefix

let absorb info (a : Rfilter.atom) =
  match a.cmp with
  | Ceq -> (
      (match info.eq with
      | Some e when not (veq e a.const) -> info.impossible <- true
      | _ -> ());
      info.eq <- Some a.const;
      match as_float a.const with
      | Some f ->
          tighten_lo info { value = f; inclusive = true };
          tighten_hi info { value = f; inclusive = true }
      | None -> ())
  | Cne -> info.ne <- a.const :: info.ne
  | Clt -> (
      match as_float a.const with
      | Some f -> tighten_hi info { value = f; inclusive = false }
      | None -> info.unsupported <- true)
  | Cle -> (
      match as_float a.const with
      | Some f -> tighten_hi info { value = f; inclusive = true }
      | None -> info.unsupported <- true)
  | Cgt -> (
      match as_float a.const with
      | Some f -> tighten_lo info { value = f; inclusive = false }
      | None -> info.unsupported <- true)
  | Cge -> (
      match as_float a.const with
      | Some f -> tighten_lo info { value = f; inclusive = true }
      | None -> info.unsupported <- true)
  | Ccontains -> (
      match a.const with
      | Str s -> info.contains <- s :: info.contains
      | _ -> info.unsupported <- true)
  | Cprefix -> (
      match a.const with
      | Str s -> (
          match info.prefix with
          | None -> info.prefix <- Some s
          | Some p ->
              (* Keep the longer prefix if compatible; two incompatible
                 prefixes can never both hold. *)
              if is_prefix ~prefix:p s then info.prefix <- Some s
              else if not (is_prefix ~prefix:s p) then begin
                info.unsupported <- true;
                info.impossible <- true
              end)
      | _ -> info.unsupported <- true)

let knowledge atoms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (a : Rfilter.atom) ->
      let info =
        match Hashtbl.find_opt tbl a.path with
        | Some i -> i
        | None ->
            let i = fresh_info () in
            Hashtbl.add tbl a.path i;
            i
      in
      absorb info a)
    atoms;
  tbl

(* Does the knowledge about a path guarantee atom [b]? *)
let entails (info : path_info) (b : Rfilter.atom) =
  let eq_guarantees v =
    match info.eq with
    | Some e -> Value.equal e v
    | None -> false
  in
  match b.cmp with
  | Ceq -> eq_guarantees b.const
  | Cne -> (
      (* Known equal to something different, or an explicit ne. *)
      (match info.eq with
      | Some e -> not (Value.equal e b.const)
      | None -> List.exists (Value.equal b.const) info.ne)
      ||
      match as_float b.const, info.lo, info.hi with
      | Some v, Some lo, _ when lo.value > v || (lo.value = v && not lo.inclusive)
        -> true
      | Some v, _, Some hi when hi.value < v || (hi.value = v && not hi.inclusive)
        -> true
      | _ -> false)
  | Clt -> (
      match as_float b.const, info.hi with
      | Some v, Some hi -> hi.value < v || (hi.value = v && not hi.inclusive)
      | _ -> false)
  | Cle -> (
      match as_float b.const, info.hi with
      | Some v, Some hi -> hi.value <= v
      | _ -> false)
  | Cgt -> (
      match as_float b.const, info.lo with
      | Some v, Some lo -> lo.value > v || (lo.value = v && not lo.inclusive)
      | _ -> false)
  | Cge -> (
      match as_float b.const, info.lo with
      | Some v, Some lo -> lo.value >= v
      | _ -> false)
  | Ccontains -> (
      match b.const with
      | Str needle -> (
          List.exists (fun s -> is_substring ~needle s) info.contains
          || (match info.prefix with
             | Some p -> is_substring ~needle p
             | None -> false)
          ||
          match info.eq with
          | Some (Str s) -> is_substring ~needle s
          | _ -> false)
      | _ -> false)
  | Cprefix -> (
      match b.const with
      | Str needle -> (
          (match info.prefix with
          | Some p -> is_prefix ~prefix:needle p
          | None -> false)
          ||
          match info.eq with
          | Some (Str s) -> is_prefix ~prefix:needle s
          | _ -> false)
      | _ -> false)

(* --- satisfiability ---------------------------------------------------- *)

let bound_crossing info =
  match info.lo, info.hi with
  | Some lo, Some hi ->
      lo.value > hi.value
      || (lo.value = hi.value && not (lo.inclusive && hi.inclusive))
  | _ -> false

let is_num : Value.t -> bool = function
  | Int _ | Float _ -> true
  | _ -> false

(* Can no value satisfy every atom recorded about this path?

   Kind arguments: a numeric bound atom only holds for numeric values
   (absorb records bounds for numeric constants only, and
   [eval_atom]'s ordering comparison against a numeric constant fails
   on everything else), while contains/prefix atoms only hold for
   strings — so both kinds together are contradictory. *)
let info_unsat info =
  let has_bounds = info.lo <> None || info.hi <> None in
  let has_str = info.contains <> [] || info.prefix <> None in
  info.impossible
  || bound_crossing info
  || (has_bounds && has_str)
  || (match info.eq with
     | None -> false
     | Some e -> (
         (has_bounds && not (is_num e))
         || (has_str
            &&
            match e with
            | Value.Str s ->
                List.exists
                  (fun needle -> not (is_substring ~needle s))
                  info.contains
                || (match info.prefix with
                   | Some p -> not (is_prefix ~prefix:p s)
                   | None -> false)
            | _ -> true)
         || List.exists (veq e) info.ne))

type know = (string list, path_info) Hashtbl.t

let contradictory (know : know) =
  Hashtbl.fold (fun _ info acc -> acc || info_unsat info) know false

let entailed (know : know) (b : Rfilter.atom) =
  match Hashtbl.find_opt know b.path with
  | None -> false
  | Some info -> (not info.unsupported) && entails info b

(* [unsat f] — [true] guarantees no obvent value satisfies [f] under
   [Rfilter.eval]; [valid f] — [true] guarantees every value does.
   Both lean on [eval_formula] being total and two-valued (an atom
   over a missing/null/mistyped path is plain [false]), which makes
   the [Not] cases exact. Conjunctions combine per-path knowledge of
   the positive atoms; a negative conjunct [Not (Atom b)] entailed by
   that knowledge is a contradiction too. *)
let rec unsat_formula (f : Rfilter.formula) =
  match f with
  | False -> true
  | True | Atom _ -> false
  | Not f -> valid_formula f
  | Or fs -> List.for_all unsat_formula fs
  | And fs ->
      List.exists unsat_formula fs
      ||
      let pos =
        List.filter_map
          (function Rfilter.Atom a -> Some a | _ -> None)
          fs
      in
      let know = knowledge pos in
      contradictory know
      || List.exists
           (function
             | Rfilter.Not (Atom b) -> entailed know b
             | _ -> false)
           fs

and valid_formula (f : Rfilter.formula) =
  match f with
  | True -> true
  | False | Atom _ -> false
  | Not f -> unsat_formula f
  | And fs -> List.for_all valid_formula fs
  | Or fs -> List.exists valid_formula fs

let unsat (t : Rfilter.t) = unsat_formula t.formula

let implies a b =
  if not (String.equal a.Rfilter.param b.Rfilter.param) then false
  else
    match Rfilter.conjunction_atoms a, b.Rfilter.formula with
    | _, True -> true
    | None, _ -> false
    | Some a_atoms, _ -> (
        match Rfilter.conjunction_atoms b with
        | None -> false
        | Some b_atoms ->
            let know = knowledge a_atoms in
            List.for_all
              (fun (batom : Rfilter.atom) ->
                match Hashtbl.find_opt know batom.path with
                | None -> false
                | Some info -> (not info.unsupported) && entails info batom)
              b_atoms)

let equivalent a b = implies a b && implies b a

let count_covered filters =
  let arr = Array.of_list filters in
  let n = Array.length arr in
  let covered = ref 0 in
  for i = 0 to n - 1 do
    let is_covered = ref false in
    for j = 0 to n - 1 do
      if i <> j && not !is_covered && implies arr.(j) arr.(i) then
        is_covered := true
    done;
    if !is_covered then incr covered
  done;
  !covered

(* --- registry-aware atom reasoning ------------------------------------- *)

(* Shared between the static analyzer ([Absint] delegates here) and
   the covering procedure below: declared getter types constrain the
   values a filter can observe, because obvents are validated against
   their schema at construction. *)

module Vtype = Tpbs_types.Vtype
module Registry = Tpbs_types.Registry
module Obvent = Tpbs_obvent.Obvent

let path_type reg ~param path =
  let rec walk cls = function
    | [] -> None
    | [ m ] -> Registry.method_ret reg cls m
    | m :: rest -> (
        match Registry.method_ret reg cls m with
        | Some (Vtype.Tobject next) -> walk next rest
        | Some _ | None -> None)
  in
  match path with [] -> None | _ -> walk param path

(* A path is reliable when evaluating it on any conforming obvent
   always yields a present value of a primitive numeric/bool type:
   length-1 getters on int/float/bool attributes. Longer paths cross
   object-typed attributes that may be [Null], and strings may be
   [Null] too (Java reference semantics) — either makes
   [Rfilter.eval_atom] collapse to [false], so complement reasoning
   must not see through them. *)
let reliable_path reg ~param path =
  match path with
  | [ _ ] -> (
      match path_type reg ~param path with
      | Some (Vtype.Tint | Vtype.Tfloat | Vtype.Tbool) -> true
      | Some _ | None -> false)
  | _ -> false

(* [true] when the atom can never hold on a conforming obvent: the
   declared type of its path cannot produce a value the comparison
   accepts. An ordering comparison against a numeric constant only
   holds for numeric values; contains/startsWith only for strings.
   [Cne] is never "never": on a kind mismatch it is always true. *)
let atom_never reg ~param (a : Rfilter.atom) =
  match path_type reg ~param a.path with
  | None -> false (* unknown method: the typechecker already rejected *)
  | Some ty -> (
      match a.cmp with
      | Clt | Cle | Cgt | Cge -> (
          match ty, a.const with
          | (Tint | Tfloat), (Value.Int _ | Value.Float _) -> false
          | Tstring, Value.Str _ -> false
          | _, _ -> true)
      | Ccontains | Cprefix -> (
          match ty, a.const with
          | Vtype.Tstring, Value.Str _ -> false
          | _, _ -> true)
      | Ceq -> (
          match ty, a.const with
          | (Tint | Tfloat), (Value.Int _ | Value.Float _) -> false
          | Tbool, Value.Bool _ -> false
          | Tstring, (Value.Str _ | Value.Null) -> false
          | (Tobject _ | Tremote _ | Tlist _), _ -> false
          | (Tint | Tfloat | Tbool | Tstring), _ -> true)
      | Cne -> false)

(* Replace statically-false atoms by [False] so the satisfiability
   check sees them. *)
let rec prune_never reg ~param (f : Rfilter.formula) : Rfilter.formula =
  match f with
  | Atom a when atom_never reg ~param a -> False
  | Not f -> Not (prune_never reg ~param f)
  | And fs -> And (List.map (prune_never reg ~param) fs)
  | Or fs -> Or (List.map (prune_never reg ~param) fs)
  | (True | False | Atom _) as f -> f

(* Complement of an atom, exact on values the path is guaranteed to
   produce. Only claimed for ordering/equality against numeric
   constants on reliable numeric paths: there the extracted value is
   always a present number, so e.g. [¬(p < c)] is exactly [p >= c].
   Anywhere else a missing/null/mistyped value falsifies both the atom
   and its would-be complement, and no complement exists. *)
let complement_atom reg ~param (a : Rfilter.atom) : Rfilter.atom option =
  let numeric_const =
    match a.const with Value.Int _ | Value.Float _ -> true | _ -> false
  in
  let numeric_path =
    match path_type reg ~param a.path with
    | Some (Vtype.Tint | Vtype.Tfloat) -> true
    | Some _ | None -> false
  in
  if not (numeric_const && numeric_path && reliable_path reg ~param a.path)
  then None
  else
    let flip cmp : Rfilter.cmp =
      match (cmp : Rfilter.cmp) with
      | Clt -> Cge
      | Cle -> Cgt
      | Cgt -> Cle
      | Cge -> Clt
      | Ceq -> Cne
      | Cne -> Ceq
      | Ccontains | Cprefix -> assert false
    in
    match a.cmp with
    | Clt | Cle | Cgt | Cge | Ceq | Cne -> Some { a with cmp = flip a.cmp }
    | Ccontains | Cprefix -> None

(* Negation normal form of [¬f], using atom complements where exact. *)
let rec neg reg ~param (f : Rfilter.formula) : Rfilter.formula =
  match f with
  | True -> False
  | False -> True
  | Not g -> g
  | And fs -> Or (List.map (neg reg ~param) fs)
  | Or fs -> And (List.map (neg reg ~param) fs)
  | Atom a -> (
      match complement_atom reg ~param a with
      | Some a' -> Atom a'
      | None -> Not (Atom a))

(* --- covering ----------------------------------------------------------- *)

(* [covers a b] decides [unsat (a ∧ ¬b)] by a bounded disjunctive
   normal form: negated atoms dualize exactly on reliable numeric
   paths (when a registry is at hand), and each disjunct is refuted
   by the per-path knowledge of its positive literals — crossed
   bounds, conflicting equalities, kind contradictions — or by a
   negative literal the knowledge entails. Past [dnf_limit] disjuncts
   the procedure degrades to the conservative "unknown". *)

type literal = Lpos of Rfilter.atom | Lneg of Rfilter.atom

exception Too_wide

let dnf_limit = 256

let dnf ?registry ?param (f : Rfilter.formula) : literal list list option =
  let compl a =
    match registry, param with
    | Some reg, Some p -> complement_atom reg ~param:p a
    | _ -> None
  in
  let guard n = if n > dnf_limit then raise Too_wide in
  let cross lss rss =
    guard (List.length lss * List.length rss);
    List.concat_map (fun ls -> List.map (fun rs -> ls @ rs) rss) lss
  in
  let rec pos (f : Rfilter.formula) =
    match f with
    | True -> [ [] ]
    | False -> []
    | Atom a -> [ [ Lpos a ] ]
    | Not g -> neg_ g
    | Or fs ->
        let r = List.concat_map pos fs in
        guard (List.length r);
        r
    | And fs -> List.fold_left (fun acc g -> cross acc (pos g)) [ [] ] fs
  and neg_ (f : Rfilter.formula) =
    match f with
    | True -> []
    | False -> [ [] ]
    | Atom a -> (
        match compl a with
        | Some a' -> [ [ Lpos a' ] ]
        | None -> [ [ Lneg a ] ])
    | Not g -> pos g
    | Or fs -> List.fold_left (fun acc g -> cross acc (neg_ g)) [ [] ] fs
    | And fs ->
        let r = List.concat_map neg_ fs in
        guard (List.length r);
        r
  in
  match pos f with r -> Some r | exception Too_wide -> None

let conjunct_unsat ?registry ?param lits =
  let never a =
    match registry, param with
    | Some reg, Some p -> atom_never reg ~param:p a
    | _ -> false
  in
  let posa =
    List.filter_map (function Lpos a -> Some a | Lneg _ -> None) lits
  in
  List.exists never posa
  ||
  let know = knowledge posa in
  contradictory know
  || List.exists (function Lneg b -> entailed know b | Lpos _ -> false) lits

let formula_unsat ?registry ?param (f : Rfilter.formula) =
  let f =
    match registry, param with
    | Some reg, Some p -> prune_never reg ~param:p f
    | _ -> f
  in
  unsat_formula f
  ||
  match dnf ?registry ?param f with
  | None -> false
  | Some conjs -> List.for_all (conjunct_unsat ?registry ?param) conjs

let covers ?registry ?param (a : Rfilter.t) (b : Rfilter.t) =
  let param = match param with Some p -> p | None -> a.Rfilter.param in
  a.Rfilter.formula = b.Rfilter.formula
  || formula_unsat ?registry ~param
       (Rfilter.And [ a.Rfilter.formula; Not b.Rfilter.formula ])

(* --- witness construction ----------------------------------------------- *)

(* When covering fails decidably we want more than "unknown": a
   concrete conforming obvent matching [a] but not [b]. The search
   enumerates a small candidate set per constrained path — boundary
   values around the numeric constants of both filters, the string
   constants and their concatenations, both booleans, the defaults —
   instantiates the remaining attributes with type defaults, and
   machine-checks every candidate with [Registry.conforms] and
   [Rfilter.eval] before claiming it. Soundness is by that final
   check; completeness is best-effort (a [None] means "no witness
   found", never "covered"). *)

let default_value (ty : Vtype.t) : Value.t =
  match ty with
  | Vtype.Tint -> Value.Int 0
  | Tfloat -> Value.Float 0.
  | Tbool -> Value.Bool false
  | Tstring -> Value.Str ""
  | Tlist _ -> Value.List []
  | Tobject _ | Tremote _ -> Value.Null

let dedup_values vs =
  List.rev
    (List.fold_left
       (fun acc v -> if List.exists (Value.equal v) acc then acc else v :: acc)
       [] vs)

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let candidate_values (ty : Vtype.t) (atoms : Rfilter.atom list) :
    Value.t list =
  let consts () =
    List.filter_map
      (fun (a : Rfilter.atom) -> as_float a.const)
      atoms
  in
  let vs =
    match ty with
    | Vtype.Tbool -> [ Value.Bool false; Value.Bool true ]
    | Tint ->
        let ints =
          List.concat_map
            (fun f ->
              let i = int_of_float (Float.round f) in
              [ i - 1; i; i + 1 ])
            (consts ())
        in
        List.map (fun i -> Value.Int i) (ints @ [ 0 ])
    | Tfloat ->
        let floats =
          List.concat_map
            (fun f -> [ f -. 1.; f -. 0.5; f; f +. 0.5; f +. 1. ])
            (consts ())
        in
        List.map (fun f -> Value.Float f) (floats @ [ 0. ])
    | Tstring ->
        let strs =
          List.filter_map
            (fun (a : Rfilter.atom) ->
              match a.const with Value.Str s -> Some s | _ -> None)
            atoms
        in
        let combos =
          List.concat_map (fun s1 -> List.map (fun s2 -> s1 ^ s2) strs) strs
        in
        List.map (fun s -> Value.Str s) (strs @ combos)
        @ [ Value.Str ""; Value.Null ]
    | Tlist _ -> [ Value.List [] ]
    | Tobject _ | Tremote _ -> [ Value.Null ]
  in
  take 12 (dedup_values vs)

(* First instantiable class below [name], by name order — a
   deterministic concrete carrier for object-typed attributes. *)
let pick_class reg name =
  match Registry.subtypes reg name with
  | subs ->
      List.find_opt (Registry.instantiable reg) (List.sort String.compare subs)
  | exception Registry.Type_error _ -> None

(* Build an instance of [cls] realizing [assigns] (attribute paths to
   leaf values); unconstrained attributes get type defaults, nested
   assignments recurse through a concrete subclass of the attribute's
   declared type. *)
let rec build_obj reg cls (assigns : (string list * Value.t) list) :
    Value.t option =
  match Registry.attrs_of reg cls with
  | exception Registry.Type_error _ -> None
  | attrs ->
      let fields =
        List.map
          (fun (name, ty) ->
            let mine =
              List.filter_map
                (function
                  | n :: rest, v when String.equal n name -> Some (rest, v)
                  | _ -> None)
                assigns
            in
            let v =
              match List.assoc_opt [] mine with
              | Some v -> v
              | None -> (
                  if mine = [] then default_value ty
                  else
                    match ty with
                    | Vtype.Tobject c -> (
                        match pick_class reg c with
                        | Some sub -> (
                            match build_obj reg sub mine with
                            | Some v -> v
                            | None -> Value.Null)
                        | None -> Value.Null)
                    | _ -> default_value ty)
            in
            (name, v))
          attrs
      in
      Some (Value.Obj { cls; fields })

let witness ~registry ?cls ~param (a : Rfilter.t) (b : Rfilter.t) :
    Value.t option =
  let classes =
    match cls with
    | Some c -> if Registry.instantiable registry c then [ c ] else []
    | None -> (
        match Registry.subtypes registry param with
        | subs ->
            List.filter
              (fun c ->
                Registry.instantiable registry c
                && Registry.is_obvent_type registry c)
              (List.sort String.compare subs)
        | exception Registry.Type_error _ -> [])
  in
  let atoms = Rfilter.atoms a @ Rfilter.atoms b in
  let budget = ref 20_000 in
  let attr_path p =
    let rec conv = function
      | [] -> Some []
      | m :: rest -> (
          match Obvent.attr_of_getter m with
          | None -> None
          | Some at -> Option.map (fun tl -> at :: tl) (conv rest))
    in
    conv p
  in
  let try_class c =
    let paths =
      List.filter_map
        (fun (at : Rfilter.atom) ->
          match path_type registry ~param:c at.path with
          | Some ty ->
              Option.map (fun ap -> (at.path, ap, ty)) (attr_path at.path)
          | None -> None)
        atoms
    in
    let paths =
      take 8
        (List.rev
           (List.fold_left
              (fun acc ((gp, _, _) as p) ->
                if List.exists (fun (gp', _, _) -> gp' = gp) acc then acc
                else p :: acc)
              [] paths))
    in
    let cands =
      List.map
        (fun (gp, ap, ty) ->
          let mine =
            List.filter (fun (at : Rfilter.atom) -> at.path = gp) atoms
          in
          (ap, candidate_values ty mine))
        paths
    in
    let rec go acc = function
      | [] ->
          if !budget <= 0 then None
          else begin
            decr budget;
            match build_obj registry c acc with
            | Some v
              when Registry.conforms registry v c
                   && Rfilter.eval a v
                   && not (Rfilter.eval b v) ->
                Some v
            | _ -> None
          end
      | (ap, vs) :: rest ->
          List.find_map
            (fun v -> if !budget <= 0 then None else go ((ap, v) :: acc) rest)
            vs
    in
    go [] cands
  in
  List.find_map try_class classes

type cover_verdict = Covered | Not_covered of Value.t | Unknown

let covers_witness ~registry ?cls ~param a b =
  if covers ~registry ~param a b then Covered
  else
    match witness ~registry ?cls ~param a b with
    | Some w -> Not_covered w
    | None -> Unknown
