module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent

(* Normalized key for equality bucketing: numeric values are promoted
   to float bits so that [Int 100] and [Float 100.] land in the same
   bucket, matching the promoting equality of the evaluator. *)
type eq_key = Kbits of int64 | Kstr of string | Kbool of bool | Kother of Value.t

let eq_key_of : Value.t -> eq_key = function
  | Int i -> Kbits (Int64.bits_of_float (float_of_int i))
  | Float f -> Kbits (Int64.bits_of_float f)
  | Str s -> Kstr s
  | Bool b -> Kbool b
  | v -> Kother v

type tformula =
  | T_true
  | T_false
  | T_atom of int
  | T_not of tformula
  | T_and of tformula list
  | T_or of tformula list

type shape =
  | Conj of int array  (* atom ids of a pure positive conjunction *)
  | Tree of tformula

(* Per-path index. The mutable lists accumulate; sorted arrays are
   rebuilt lazily when dirty. *)
type path_index = {
  path : string list;
  eq_buckets : (eq_key, int list ref) Hashtbl.t;
  mutable ne_atoms : (Value.t * int) list;
  mutable lt : (float * int) list;
  mutable le : (float * int) list;
  mutable gt : (float * int) list;
  mutable ge : (float * int) list;
  mutable lt_sorted : (float * int) array;
  mutable le_sorted : (float * int) array;
  mutable gt_sorted : (float * int) array;
  mutable ge_sorted : (float * int) array;
  mutable dirty : bool;
  mutable misc : (Rfilter.atom * int) list;
      (* string-ordered, contains, prefix: evaluated one by one *)
}

type t = {
  mutable paths : path_index array;  (* indexed by path id *)
  path_ids : (string list, int) Hashtbl.t;
  atom_ids : (string list * Rfilter.cmp * Value.t, int) Hashtbl.t;
  mutable n_atoms : int;
  subs : (int, shape) Hashtbl.t;
  (* Dense slots for the counting algorithm: external sub ids map to
     compact slots so per-event state is flat arrays. *)
  slot_of_id : (int, int) Hashtbl.t;
  mutable slot_id : int array;  (* slot -> external id *)
  mutable n_slots : int;
  conj_index : (int, (int * int) list ref) Hashtbl.t;
      (* atom id -> (slot, conjunction size) *)
  tree_subs : (int, tformula) Hashtbl.t;  (* external id -> formula *)
  mutable total_atoms : int;
  (* scratch, grown on demand; generation-stamped to avoid clears *)
  mutable truth : Bytes.t;  (* atom id -> 0/1 for the current event *)
  mutable counters : int array;  (* slot -> satisfied-atom count *)
  mutable stamps : int array;  (* slot -> generation of the count *)
  mutable generation : int;
  mutable path_evals : int;
  mutable atom_evals : int;
  mutable events_matched : int;
}

let create () =
  {
    paths = [||];
    path_ids = Hashtbl.create 64;
    atom_ids = Hashtbl.create 256;
    n_atoms = 0;
    subs = Hashtbl.create 64;
    slot_of_id = Hashtbl.create 64;
    slot_id = Array.make 64 0;
    n_slots = 0;
    conj_index = Hashtbl.create 256;
    tree_subs = Hashtbl.create 16;
    total_atoms = 0;
    truth = Bytes.create 256;
    counters = Array.make 64 0;
    stamps = Array.make 64 (-1);
    generation = 0;
    path_evals = 0;
    atom_evals = 0;
    events_matched = 0;
  }

let slot_for t id =
  match Hashtbl.find_opt t.slot_of_id id with
  | Some slot -> slot
  | None ->
      let slot = t.n_slots in
      t.n_slots <- slot + 1;
      if slot >= Array.length t.counters then begin
        let grow arr fill =
          let fresh = Array.make (2 * Array.length arr) fill in
          Array.blit arr 0 fresh 0 (Array.length arr);
          fresh
        in
        t.counters <- grow t.counters 0;
        t.stamps <- grow t.stamps (-1);
        t.slot_id <- grow t.slot_id 0
      end;
      t.slot_id.(slot) <- id;
      Hashtbl.replace t.slot_of_id id slot;
      slot

let fresh_path t path =
  match Hashtbl.find_opt t.path_ids path with
  | Some id -> id
  | None ->
      let id = Array.length t.paths in
      let entry =
        {
          path;
          eq_buckets = Hashtbl.create 8;
          ne_atoms = [];
          lt = []; le = []; gt = []; ge = [];
          lt_sorted = [||]; le_sorted = [||]; gt_sorted = [||]; ge_sorted = [||];
          dirty = false;
          misc = [];
        }
      in
      t.paths <- Array.append t.paths [| entry |];
      Hashtbl.add t.path_ids path id;
      id

let numeric_threshold : Value.t -> float option = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let intern_atom t (a : Rfilter.atom) =
  let key = a.path, a.cmp, a.const in
  match Hashtbl.find_opt t.atom_ids key with
  | Some id -> id
  | None ->
      let id = t.n_atoms in
      t.n_atoms <- t.n_atoms + 1;
      if id >= Bytes.length t.truth then
        t.truth <- Bytes.extend t.truth 0 (Bytes.length t.truth);
      Hashtbl.add t.atom_ids key id;
      let pidx = t.paths.(fresh_path t a.path) in
      (match a.cmp, numeric_threshold a.const with
      | Rfilter.Ceq, _ ->
          let k = eq_key_of a.const in
          let bucket =
            match Hashtbl.find_opt pidx.eq_buckets k with
            | Some b -> b
            | None ->
                let b = ref [] in
                Hashtbl.add pidx.eq_buckets k b;
                b
          in
          bucket := id :: !bucket
      | Rfilter.Cne, _ -> pidx.ne_atoms <- (a.const, id) :: pidx.ne_atoms
      | Rfilter.Clt, Some f ->
          pidx.lt <- (f, id) :: pidx.lt;
          pidx.dirty <- true
      | Rfilter.Cle, Some f ->
          pidx.le <- (f, id) :: pidx.le;
          pidx.dirty <- true
      | Rfilter.Cgt, Some f ->
          pidx.gt <- (f, id) :: pidx.gt;
          pidx.dirty <- true
      | Rfilter.Cge, Some f ->
          pidx.ge <- (f, id) :: pidx.ge;
          pidx.dirty <- true
      | (Rfilter.Clt | Rfilter.Cle | Rfilter.Cgt | Rfilter.Cge), None ->
          pidx.misc <- (a, id) :: pidx.misc
      | (Rfilter.Ccontains | Rfilter.Cprefix), _ ->
          pidx.misc <- (a, id) :: pidx.misc);
      id

let rec compile t (f : Rfilter.formula) : tformula =
  match f with
  | True -> T_true
  | False -> T_false
  | Atom a ->
      t.total_atoms <- t.total_atoms + 1;
      T_atom (intern_atom t a)
  | Not f -> T_not (compile t f)
  | And fs -> T_and (List.map (compile t) fs)
  | Or fs -> T_or (List.map (compile t) fs)

let add t ~id (rf : Rfilter.t) =
  if Hashtbl.mem t.subs id then
    invalid_arg (Printf.sprintf "Factored.add: id %d already registered" id);
  match Rfilter.conjunction_atoms rf with
  | Some atoms ->
      let ids =
        Array.of_list
          (List.map
             (fun a ->
               t.total_atoms <- t.total_atoms + 1;
               intern_atom t a)
             atoms)
      in
      (* The counting algorithm needs each atom counted once. *)
      let unique = Array.of_list (List.sort_uniq Int.compare (Array.to_list ids)) in
      let n = Array.length unique in
      let slot = slot_for t id in
      Array.iter
        (fun aid ->
          let entry =
            match Hashtbl.find_opt t.conj_index aid with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add t.conj_index aid l;
                l
          in
          entry := (slot, n) :: !entry)
        unique;
      Hashtbl.add t.subs id (Conj unique)
  | None ->
      let f = compile t rf.formula in
      Hashtbl.add t.tree_subs id f;
      Hashtbl.add t.subs id (Tree f)

let rec tformula_atoms acc = function
  | T_true | T_false -> acc
  | T_atom a -> a :: acc
  | T_not f -> tformula_atoms acc f
  | T_and fs | T_or fs -> List.fold_left tformula_atoms acc fs

let remove t ~id =
  match Hashtbl.find_opt t.subs id with
  | None -> ()
  | Some shape ->
      (match shape with
      | Conj unique ->
          let slot = slot_for t id in
          Array.iter
            (fun aid ->
              match Hashtbl.find_opt t.conj_index aid with
              | Some l -> l := List.filter (fun (s, _) -> s <> slot) !l
              | None -> ())
            unique;
          t.total_atoms <- t.total_atoms - Array.length unique
      | Tree f ->
          Hashtbl.remove t.tree_subs id;
          t.total_atoms <- t.total_atoms - List.length (tformula_atoms [] f));
      Hashtbl.remove t.subs id

let is_registered t ~id = Hashtbl.mem t.subs id

let rebuild_sorted pidx =
  let sort l = Array.of_list (List.sort (fun (a, _) (b, _) -> Float.compare a b) l) in
  pidx.lt_sorted <- sort pidx.lt;
  pidx.le_sorted <- sort pidx.le;
  pidx.gt_sorted <- sort pidx.gt;
  pidx.ge_sorted <- sort pidx.ge;
  pidx.dirty <- false

(* First index whose threshold satisfies [pred]; the array is sorted
   ascending and [pred] is monotone (false then true). *)
let lower_bound arr pred =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if pred (fst arr.(mid)) then hi := mid else lo := mid + 1
  done;
  !lo

let matches_set_resolve t resolve =
  t.events_matched <- t.events_matched + 1;
  Bytes.fill t.truth 0 (Bytes.length t.truth) '\000';
  let set_true id = Bytes.unsafe_set t.truth id '\001' in
  let true_atoms = ref [] in
  let mark id =
    set_true id;
    true_atoms := id :: !true_atoms
  in
  (* Phase 1+2: evaluate each unique path once, resolve its atoms. *)
  Array.iter
    (fun pidx ->
      if pidx.dirty then rebuild_sorted pidx;
      t.path_evals <- t.path_evals + 1;
      match (resolve pidx.path : Value.t option) with
      | None ->
          (* Missing path: every condition on it is false, including
             the Cne ones (three-valued collapse, cf. Rfilter). *)
          ()
      | Some v ->
          (match Hashtbl.find_opt pidx.eq_buckets (eq_key_of v) with
          | Some bucket -> List.iter mark !bucket
          | None -> ());
          List.iter
            (fun (const, id) ->
              t.atom_evals <- t.atom_evals + 1;
              if not (Rfilter.eval_atom_value v { path = pidx.path; cmp = Cne; const })
              then ()
              else mark id)
            pidx.ne_atoms;
          (match numeric_threshold v with
          | Some k ->
              (* v < thr : thresholds strictly above k *)
              let a = pidx.lt_sorted in
              for i = lower_bound a (fun thr -> thr > k) to Array.length a - 1 do
                mark (snd a.(i))
              done;
              (* v <= thr : thresholds at least k *)
              let a = pidx.le_sorted in
              for i = lower_bound a (fun thr -> thr >= k) to Array.length a - 1 do
                mark (snd a.(i))
              done;
              (* v > thr : thresholds strictly below k *)
              let a = pidx.gt_sorted in
              for i = 0 to lower_bound a (fun thr -> thr >= k) - 1 do
                mark (snd a.(i))
              done;
              (* v >= thr : thresholds at most k *)
              let a = pidx.ge_sorted in
              for i = 0 to lower_bound a (fun thr -> thr > k) - 1 do
                mark (snd a.(i))
              done
          | None -> ());
          List.iter
            (fun (atom, id) ->
              t.atom_evals <- t.atom_evals + 1;
              if Rfilter.eval_atom_value v atom then mark id)
            pidx.misc)
    t.paths;
  (* Phase 3a: counting algorithm over pure conjunctions —
     generation-stamped flat counters, no per-event clearing. *)
  t.generation <- t.generation + 1;
  let generation = t.generation in
  let matched = Hashtbl.create 16 in
  List.iter
    (fun aid ->
      match Hashtbl.find_opt t.conj_index aid with
      | None -> ()
      | Some subs ->
          List.iter
            (fun (slot, size) ->
              let c =
                if t.stamps.(slot) = generation then t.counters.(slot) + 1
                else 1
              in
              t.stamps.(slot) <- generation;
              t.counters.(slot) <- c;
              if c = size then Hashtbl.replace matched t.slot_id.(slot) ())
            !subs)
    !true_atoms;
  (* Empty conjunctions (True filters) never enter the counting index;
     pure-True filters compile to Tree T_true, handled below. *)
  (* Phase 3b: general formulas over the memoized truth values. *)
  let rec eval_t = function
    | T_true -> true
    | T_false -> false
    | T_atom id -> Bytes.unsafe_get t.truth id = '\001'
    | T_not f -> not (eval_t f)
    | T_and fs -> List.for_all eval_t fs
    | T_or fs -> List.exists eval_t fs
  in
  Hashtbl.iter
    (fun sid f -> if eval_t f then Hashtbl.replace matched sid ())
    t.tree_subs;
  matched

let matches_set t (root : Value.t) =
  matches_set_resolve t (Rfilter.eval_path root)

let matches t root =
  List.sort Int.compare
    (Hashtbl.fold (fun sid () acc -> sid :: acc) (matches_set t root) [])

let matches_obvent t o = matches t (Obvent.to_value o)

type stats = {
  subscriptions : int;
  unique_paths : int;
  unique_atoms : int;
  total_atoms : int;
  path_evals : int;
  atom_evals : int;
  events_matched : int;
}

let stats t =
  {
    subscriptions = Hashtbl.length t.subs;
    unique_paths = Array.length t.paths;
    unique_atoms = t.n_atoms;
    total_atoms = t.total_atoms;
    path_evals = t.path_evals;
    atom_evals = t.atom_evals;
    events_matched = t.events_matched;
  }

let redundancy t =
  let s = stats t in
  if s.total_atoms = 0 then 0.
  else 1. -. (float_of_int s.unique_atoms /. float_of_int s.total_atoms)
