module L = Lexer

exception Parse_error of L.pos * string

let fail s fmt =
  let pos = L.peek_pos s in
  Fmt.kstr (fun msg -> raise (Parse_error (pos, msg))) fmt

let expect s tok =
  let got = L.next s in
  if got <> tok then
    fail s "expected %a, found %a" L.pp_token tok L.pp_token got

let rec parse_or s ~param =
  let lhs = parse_and s ~param in
  match L.peek s with
  | Op "||" ->
      ignore (L.next s);
      Expr.Binop (Or, lhs, parse_or s ~param)
  | _ -> lhs

and parse_and s ~param =
  let lhs = parse_equality s ~param in
  match L.peek s with
  | Op "&&" ->
      ignore (L.next s);
      Expr.Binop (And, lhs, parse_and s ~param)
  | _ -> lhs

and parse_equality s ~param =
  let lhs = parse_rel s ~param in
  match L.peek s with
  | Op "==" ->
      ignore (L.next s);
      Expr.Binop (Eq, lhs, parse_rel s ~param)
  | Op "!=" ->
      ignore (L.next s);
      Expr.Binop (Ne, lhs, parse_rel s ~param)
  | _ -> lhs

and parse_rel s ~param =
  let lhs = parse_additive s ~param in
  let op =
    match L.peek s with
    | Op "<" -> Some Expr.Lt
    | Op "<=" -> Some Expr.Le
    | Op ">" -> Some Expr.Gt
    | Op ">=" -> Some Expr.Ge
    | _ -> None
  in
  match op with
  | Some op ->
      ignore (L.next s);
      Expr.Binop (op, lhs, parse_additive s ~param)
  | None -> lhs

and parse_additive s ~param =
  let rec loop lhs =
    match L.peek s with
    | Op "+" ->
        ignore (L.next s);
        loop (Expr.Binop (Add, lhs, parse_mult s ~param))
    | Op "-" ->
        ignore (L.next s);
        loop (Expr.Binop (Sub, lhs, parse_mult s ~param))
    | _ -> lhs
  in
  loop (parse_mult s ~param)

and parse_mult s ~param =
  let rec loop lhs =
    match L.peek s with
    | Op "*" ->
        ignore (L.next s);
        loop (Expr.Binop (Mul, lhs, parse_unary s ~param))
    | Op "/" ->
        ignore (L.next s);
        loop (Expr.Binop (Div, lhs, parse_unary s ~param))
    | Op "%" ->
        ignore (L.next s);
        loop (Expr.Binop (Mod, lhs, parse_unary s ~param))
    | _ -> lhs
  in
  loop (parse_unary s ~param)

and parse_unary s ~param =
  match L.peek s with
  | Op "!" ->
      ignore (L.next s);
      Expr.Unop (Not, parse_unary s ~param)
  | Op "-" -> (
      ignore (L.next s);
      (* Fold negative literals so that idioms like
         [indexOf(...) != -1] normalize (§4.4.3). *)
      match parse_unary s ~param with
      | Expr.Const (Tpbs_serial.Value.Int i) -> Expr.int (-i)
      | Expr.Const (Tpbs_serial.Value.Float f) -> Expr.float (-.f)
      | e -> Expr.Unop (Neg, e))
  | _ -> parse_postfix s ~param

and parse_postfix s ~param =
  let rec loop recv =
    match L.peek s with
    | Dot -> (
        ignore (L.next s);
        match L.next s with
        | Ident m -> (
            expect s L.Lparen;
            match m, L.peek s with
            | "length", L.Rparen ->
                ignore (L.next s);
                loop (Expr.Unop (Length, recv))
            | _, L.Rparen ->
                ignore (L.next s);
                loop (Expr.Invoke (recv, m))
            | _, _ ->
                let arg = parse_or s ~param in
                expect s L.Rparen;
                let e =
                  match m with
                  | "indexOf" -> Expr.Binop (Index_of, recv, arg)
                  | "contains" -> Expr.Binop (Contains, recv, arg)
                  | "startsWith" -> Expr.Binop (Starts_with, recv, arg)
                  | "equals" -> Expr.Binop (Eq, recv, arg)
                  | "concat" -> Expr.Binop (Concat, recv, arg)
                  | _ ->
                      fail s "method %s with an argument is not supported in filters" m
                in
                loop e)
        | tok -> fail s "expected method name after '.', found %a" L.pp_token tok)
    | _ -> recv
  in
  loop (parse_primary s ~param)

and parse_primary s ~param =
  match L.next s with
  | Int_lit i -> Expr.int i
  | Float_lit f -> Expr.float f
  | Str_lit str -> Expr.str str
  | Ident "true" -> Expr.bool true
  | Ident "false" -> Expr.bool false
  | Ident "null" -> Expr.Const Tpbs_serial.Value.Null
  | Ident x -> if String.equal x param then Expr.Arg else Expr.Var x
  | Lparen ->
      let e = parse_or s ~param in
      expect s L.Rparen;
      e
  | tok -> fail s "expected an expression, found %a" L.pp_token tok

let parse_expr s ~param = parse_or s ~param

let expr_of_string ~param src =
  let s = L.stream_of_string src in
  let e = parse_expr s ~param in
  if not (L.at_eof s) then
    fail s "trailing input after expression: %a" L.pp_token (L.peek s);
  e
