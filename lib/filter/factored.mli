(** Compound filters: factoring out redundancies between the filters
    of many subscribers gathered on one filtering host (§2.3.2,
    §3.3.3; the matching algorithm follows Aguilera et al., PODC'99).

    The compound filter indexes all registered remote filters so that
    matching one event costs roughly one evaluation per {e unique}
    getter path and per {e unique} elementary condition, instead of
    one full filter evaluation per subscriber:

    - each unique invocation path is evaluated once per event;
    - equality conditions are bucketed per path in a hash table, so a
      thousand [getCompany() == "..."] subscriptions cost one lookup;
    - numeric threshold conditions ([<], [<=], [>], [>=]) are kept in
      sorted arrays per path and resolved by binary search;
    - pure conjunctions are matched with the counting algorithm;
      other formulas are evaluated over the memoized condition
      results. *)

type t

val create : unit -> t

val add : t -> id:int -> Rfilter.t -> unit
(** Register a subscriber's filter under [id].
    @raise Invalid_argument if [id] is already present. *)

val remove : t -> id:int -> unit
(** Unregister. Unknown ids are ignored (deactivation races are the
    caller's business). *)

val is_registered : t -> id:int -> bool

val matches_set : t -> Tpbs_serial.Value.t -> (int, unit) Hashtbl.t
(** Ids of all registered filters satisfied by the event, as a hash
    set — the broker's delivery loop needs O(1) membership per
    subscription, not a list scan. Agrees with {!Rfilter.eval} filter
    by filter. The table is freshly allocated per call and owned by
    the caller. *)

val matches_set_resolve :
  t -> (string list -> Tpbs_serial.Value.t option) -> (int, unit) Hashtbl.t
(** {!matches_set} generalized over the event representation: the
    resolver maps a getter path to the value it reaches ([None] when
    the path leaves the structure). The compound filter touches the
    event {e only} through unique-path resolutions, so a broker can
    pass a {!Tpbs_serial.Cursor} projection and never materialize the
    full obvent — [matches_set t root] is exactly
    [matches_set_resolve t (Rfilter.eval_path root)]. Exceptions from
    the resolver propagate; index bookkeeping stays consistent. *)

val matches : t -> Tpbs_serial.Value.t -> int list
(** {!matches_set} as a sorted list, ascending. *)

val matches_obvent : t -> Tpbs_obvent.Obvent.t -> int list

type stats = {
  subscriptions : int;  (** live registered filters *)
  unique_paths : int;  (** distinct getter paths across all filters *)
  unique_atoms : int;  (** distinct elementary conditions *)
  total_atoms : int;  (** sum of per-filter condition counts *)
  path_evals : int;  (** cumulative path evaluations over all events *)
  atom_evals : int;
      (** cumulative individually-evaluated conditions (equality
          bucket hits and threshold binary searches not included —
          that is the saving) *)
  events_matched : int;  (** cumulative calls to {!matches} *)
}

val stats : t -> stats

val redundancy : t -> float
(** [1 - unique_atoms/total_atoms] — the fraction of condition work
    factoring eliminates; 0 when every filter is unique. *)
