type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen | Rparen
  | Lbrace | Rbrace
  | Semi | Comma | Dot
  | Op of string
  | Eof

type pos = { line : int; col : int }

exception Lex_error of pos * string

let pp_pos ppf p = Fmt.pf ppf "line %d, column %d" p.line p.col

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %s" s
  | Int_lit i -> Fmt.pf ppf "integer %d" i
  | Float_lit f -> Fmt.pf ppf "float %g" f
  | Str_lit s -> Fmt.pf ppf "string %S" s
  | Lparen -> Fmt.string ppf "'('"
  | Rparen -> Fmt.string ppf "')'"
  | Lbrace -> Fmt.string ppf "'{'"
  | Rbrace -> Fmt.string ppf "'}'"
  | Semi -> Fmt.string ppf "';'"
  | Comma -> Fmt.string ppf "','"
  | Dot -> Fmt.string ppf "'.'"
  | Op s -> Fmt.pf ppf "'%s'" s
  | Eof -> Fmt.string ppf "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let pos_at i = { line = !line; col = i - !bol + 1 } in
  let toks = ref [] in
  let emit tok pos = toks := (tok, pos) :: !toks in
  let rec skip i =
    if i >= n then i
    else
      match src.[i] with
      | ' ' | '\t' | '\r' -> skip (i + 1)
      | '\n' ->
          incr line;
          bol := i + 1;
          skip (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
          skip (eol (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec close j =
            if j + 1 >= n then
              raise (Lex_error (pos_at i, "unterminated block comment"))
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else begin
              if src.[j] = '\n' then begin
                incr line;
                bol := j + 1
              end;
              close (j + 1)
            end
          in
          skip (close (i + 2))
      | _ -> i
  in
  let rec lex i =
    let i = skip i in
    if i >= n then emit Eof (pos_at i)
    else begin
      let p = pos_at i in
      let c = src.[i] in
      if is_ident_start c then begin
        let rec stop j = if j < n && is_ident_char src.[j] then stop (j + 1) else j in
        let j = stop (i + 1) in
        emit (Ident (String.sub src i (j - i))) p;
        lex j
      end
      else if is_digit c then begin
        let rec stop j = if j < n && is_digit src.[j] then stop (j + 1) else j in
        let j = stop (i + 1) in
        if j < n && src.[j] = '.' && j + 1 < n && is_digit src.[j + 1] then begin
          let k = stop (j + 1) in
          emit (Float_lit (float_of_string (String.sub src i (k - i)))) p;
          lex k
        end
        else begin
          emit (Int_lit (int_of_string (String.sub src i (j - i)))) p;
          lex j
        end
      end
      else
        match c with
        | '"' ->
            let buf = Buffer.create 16 in
            let rec scan j =
              if j >= n then raise (Lex_error (p, "unterminated string literal"))
              else
                match src.[j] with
                | '"' -> j + 1
                | '\\' when j + 1 < n ->
                    let e = src.[j + 1] in
                    Buffer.add_char buf
                      (match e with
                      | 'n' -> '\n'
                      | 't' -> '\t'
                      | '\\' -> '\\'
                      | '"' -> '"'
                      | _ -> raise (Lex_error (p, "bad escape")));
                    scan (j + 2)
                | '\n' -> raise (Lex_error (p, "newline in string literal"))
                | ch ->
                    Buffer.add_char buf ch;
                    scan (j + 1)
            in
            let j = scan (i + 1) in
            emit (Str_lit (Buffer.contents buf)) p;
            lex j
        | '(' -> emit Lparen p; lex (i + 1)
        | ')' -> emit Rparen p; lex (i + 1)
        | '{' -> emit Lbrace p; lex (i + 1)
        | '}' -> emit Rbrace p; lex (i + 1)
        | ';' -> emit Semi p; lex (i + 1)
        | ',' -> emit Comma p; lex (i + 1)
        | '.' -> emit Dot p; lex (i + 1)
        | '&' when i + 1 < n && src.[i + 1] = '&' -> emit (Op "&&") p; lex (i + 2)
        | '|' when i + 1 < n && src.[i + 1] = '|' -> emit (Op "||") p; lex (i + 2)
        | '=' when i + 1 < n && src.[i + 1] = '=' -> emit (Op "==") p; lex (i + 2)
        | '!' when i + 1 < n && src.[i + 1] = '=' -> emit (Op "!=") p; lex (i + 2)
        | '<' when i + 1 < n && src.[i + 1] = '=' -> emit (Op "<=") p; lex (i + 2)
        | '>' when i + 1 < n && src.[i + 1] = '=' -> emit (Op ">=") p; lex (i + 2)
        | '<' -> emit (Op "<") p; lex (i + 1)
        | '>' -> emit (Op ">") p; lex (i + 1)
        | '=' -> emit (Op "=") p; lex (i + 1)
        | '!' -> emit (Op "!") p; lex (i + 1)
        | '+' -> emit (Op "+") p; lex (i + 1)
        | '-' -> emit (Op "-") p; lex (i + 1)
        | '*' -> emit (Op "*") p; lex (i + 1)
        | '/' -> emit (Op "/") p; lex (i + 1)
        | '%' -> emit (Op "%") p; lex (i + 1)
        | _ -> raise (Lex_error (p, Printf.sprintf "stray character %C" c))
    end
  in
  lex 0;
  List.rev !toks

type stream = { toks : (token * pos) array; mutable idx : int }

let stream_of_tokens toks = { toks = Array.of_list toks; idx = 0 }
let stream_of_string src = stream_of_tokens (tokenize src)

let peek s =
  if s.idx < Array.length s.toks then fst s.toks.(s.idx) else Eof

let peek_pos s =
  if s.idx < Array.length s.toks then snd s.toks.(s.idx)
  else { line = 0; col = 0 }

let next s =
  let t = peek s in
  if s.idx < Array.length s.toks then s.idx <- s.idx + 1;
  t

let at_eof s = peek s = Eof
let save s = s.idx
let restore s idx = s.idx <- idx
