(** Mobility analysis of filters (§3.3.4).

    A filter may migrate to a foreign filtering host only when it is
    location-independent: its invocations are (nested) getter calls on
    the filtered obvent, and its captured variables are primitives (or
    strings). A filter that deviates "is applied locally". The AST of
    {!Expr} makes most violations unrepresentable; what remains
    checkable is the variable discipline and the use of remote
    references. Opaque OCaml closures supplied directly to the engine
    are always local — they are the analogue of Java filters whose
    bytecode the precompiler cannot lift. *)

type reason =
  | Nonprimitive_variable of string * Tpbs_types.Vtype.t
      (** a captured variable of object/list/remote type (§3.3.4
          restricts variables to primitives and strings) *)
  | Remote_value of string
      (** the filter observes a remote reference returned by the named
          getter path; evaluating it elsewhere would pin the filter to
          proxy semantics *)

type verdict = Mobile | Local_only of reason list

val classify :
  Tpbs_types.Registry.t ->
  param:string ->
  vars:(string * Tpbs_types.Vtype.t) list ->
  Expr.t ->
  verdict

val pp_reason : Format.formatter -> reason -> unit
val pp_verdict : Format.formatter -> verdict -> unit
