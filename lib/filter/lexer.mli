(** Tokenizer for the Java_ps surface syntax. Shared by the filter
    expression parser and the psc precompiler front end: the paper's
    filters "promote the use of the native language syntax" (§4.4.3),
    so both parse the same token stream. *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen | Rparen
  | Lbrace | Rbrace
  | Semi | Comma | Dot
  | Op of string  (** one of [&& || == != < <= > >= + - * / % ! =] *)
  | Eof

type pos = { line : int; col : int }

exception Lex_error of pos * string

val pp_token : Format.formatter -> token -> unit
val pp_pos : Format.formatter -> pos -> unit

val tokenize : string -> (token * pos) list
(** Whole-input tokenization, ending with [Eof]. Skips whitespace,
    [//] line comments and [/* */] block comments.
    @raise Lex_error on an unterminated string/comment or a stray
    character. *)

(** Mutable cursor over a token stream, used by recursive-descent
    parsers. *)
type stream

val stream_of_string : string -> stream
val stream_of_tokens : (token * pos) list -> stream
val peek : stream -> token
val peek_pos : stream -> pos
val next : stream -> token
val at_eof : stream -> bool
val save : stream -> int
val restore : stream -> int -> unit
