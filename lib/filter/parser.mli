(** Recursive-descent parser for filter (and handler) expressions in
    the Java_ps surface syntax, e.g.

    {[ q.getPrice() < 100 && q.getCompany().indexOf("Telco") != -1 ]}

    The formal parameter of the enclosing [subscribe] expression
    parses to {!Expr.Arg}; any other identifier parses to a captured
    variable ({!Expr.Var}). Known library methods are desugared:
    [indexOf], [contains], [startsWith], [length], [equals]. *)

exception Parse_error of Lexer.pos * string

val parse_expr : Lexer.stream -> param:string -> Expr.t
(** Parse one expression from the stream, leaving the cursor after
    it.
    @raise Parse_error on syntax errors. *)

val expr_of_string : param:string -> string -> Expr.t
(** Parse a complete string as a single expression; the whole input
    must be consumed.
    @raise Parse_error / @raise Lexer.Lex_error. *)
