(** Abstract interpretation of filter code (lint pass 1).

    Everything here is sound-but-incomplete in the usual sense: a
    verdict other than {!Sat} is a guarantee, {!Sat} means "unknown".
    Soundness leans on two facts about the runtime: filters are
    evaluated through {!Tpbs_filter.Rfilter.eval}, which is total and
    two-valued (an atom over a missing/null/mistyped path is plain
    [false]); and obvents are validated against their declared schema
    at construction, so the {!Tpbs_types.Registry} types of getter
    paths constrain the values a filter can observe. *)

val path_type :
  Tpbs_types.Registry.t ->
  param:string ->
  string list ->
  Tpbs_types.Vtype.t option
(** Declared result type of a getter path on the subscribed type,
    following the registry schema through object-typed attributes. *)

val reliable_path :
  Tpbs_types.Registry.t -> param:string -> string list -> bool
(** Paths guaranteed to produce a present primitive value on every
    conforming obvent: length-1 getters of int/float/bool type.
    String and object attributes may be [Null] (Java reference
    semantics), and nested paths may cross a null — atoms on such
    paths can be falsified by absence, so only reliable paths admit
    exact atom complements. *)

(** Verdict on a lifted filter, over all conforming obvent values. *)
type verdict =
  | Unsat  (** never matches: the subscription is dead *)
  | Tautology  (** always matches: a pure type-based subscription *)
  | Sat  (** anything else (the normal case) *)

val filter_verdict :
  Tpbs_types.Registry.t -> param:string -> Tpbs_filter.Rfilter.t -> verdict
(** Combines registry-aware atom verdicts (kind mismatches like a
    numeric bound on a string getter) with {!Tpbs_filter.Subsume}'s
    conjunction satisfiability; tautology is unsatisfiability of the
    negation-normal-form complement, built with exact atom complements
    on {!reliable_path}s only. *)

val contradictory_conjuncts :
  Tpbs_types.Registry.t ->
  param:string ->
  Tpbs_filter.Rfilter.t ->
  Tpbs_filter.Rfilter.formula list
(** Maximal sub-conjunctions that are themselves unsatisfiable — dead
    branches of a filter that is satisfiable as a whole (e.g. one arm
    of a disjunction with crossed bounds). *)

type div_risk = {
  divisor : Tpbs_filter.Expr.t;
  definite : bool;
      (** [true]: the divisor is the constant zero; [false]: its
          abstract interval merely contains zero (e.g. [x mod 3], or a
          string length) *)
}

val div_risks : Tpbs_filter.Expr.t -> div_risk list
(** Division/modulo sites at risk of dividing by zero, found with a
    small interval domain over the expression (getters and captured
    variables are unbounded, and unbounded divisors are not reported —
    the analysis only speaks when it can bound the divisor). A raising
    filter never matches, so these are delivery bugs, not crashes. *)
