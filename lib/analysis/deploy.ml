module Registry = Tpbs_types.Registry
module Jsonl = Tpbs_trace.Jsonl
module Compile = Tpbs_psc.Compile
module Pparser = Tpbs_psc.Pparser

(* A deployment: several separately-compiled Java_ps units plus a JSON
   manifest mapping each unit to a broker group. Units in the same
   group exchange traffic through one filtering host; distinct groups
   do not (until federation bridges them). The manifest is the unit of
   analysis for the deployment-wide passes (TP009–TP013):

     { "deployment": "fleet",
       "units": [
         { "name": "market", "file": "market.javaps", "broker": "b1" },
         ... ] }

   [file] paths are resolved relative to the manifest; [broker]
   defaults to ["default"]. *)

type unit_ = {
  u_name : string;
  u_file : string;
  u_broker : string;
  u_compiled : Compile.t;
}

type mismatch = { m_type : string; m_first : string; m_other : string }

type t = {
  d_name : string;
  d_units : unit_ list;
  d_registry : Registry.t;
  d_mismatches : mismatch list;
}

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile_file path =
  match read_file path with
  | exception Sys_error msg -> Error [ msg ]
  | src -> (
      match Pparser.program_of_string src with
      | program -> (
          match Compile.compile_result program with
          | Ok compiled -> Ok compiled
          | Error msgs ->
              Error (List.map (fun m -> "compile error: " ^ m) msgs))
      | exception Pparser.Parse_error (pos, msg) ->
          Error
            [ Fmt.str "parse error at %a: %s" Tpbs_filter.Lexer.pp_pos pos msg ]
      | exception Tpbs_filter.Lexer.Lex_error (pos, msg) ->
          Error
            [ Fmt.str "lex error at %a: %s" Tpbs_filter.Lexer.pp_pos pos msg ])

(* --- registry merging ---------------------------------------------------- *)

let norm_decl (d : Registry.decl) =
  {
    d with
    supers = List.sort String.compare d.supers;
    attrs = List.sort compare d.attrs;
    methods = List.sort compare d.methods;
  }

(* Fold one unit's types into the merged lattice, supers first. The
   first declaration of a name wins; a later unit declaring the same
   name differently is recorded as a mismatch (feeding TP012) and its
   declaration is dropped — the deployment-wide passes then reason
   over the first unit's view, which is what the broker group's
   dynamically-grown lattice would converge to as well (first
   Advertise wins there too). *)
let merge_unit ~merged ~first_owner ~mismatches ~owner (ureg : Registry.t) =
  let builtin = Registry.create () in
  let names =
    List.filter
      (fun n -> not (Registry.exists builtin n))
      (Registry.all_types ureg)
  in
  let visited = Hashtbl.create 16 in
  let rec declare name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      let d = Registry.find ureg name in
      List.iter (fun s -> if List.mem s names then declare s) d.supers;
      if Registry.exists merged name then begin
        let d' = Registry.find merged name in
        if norm_decl d' <> norm_decl d then
          mismatches :=
            {
              m_type = name;
              m_first =
                (match Hashtbl.find_opt first_owner name with
                | Some o -> o
                | None -> owner);
              m_other = owner;
            }
            :: !mismatches
      end
      else begin
        Hashtbl.replace first_owner name owner;
        match d.kind with
        | Registry.Interface -> (
            try
              Registry.declare_interface merged ~name ~extends:d.supers
                ~methods:
                  (List.map
                     (fun (m : Registry.meth) -> (m.mname, m.ret))
                     d.methods)
                ()
            with Registry.Type_error _ -> ())
        | Registry.Class -> (
            let ext = List.find_opt (Registry.is_class ureg) d.supers in
            let impls =
              List.filter (fun s -> not (Registry.is_class ureg s)) d.supers
            in
            try
              Registry.declare_class merged ~name ?extends:ext
                ~implements:impls ~attrs:d.attrs ()
            with Registry.Type_error _ -> ())
      end
    end
  in
  List.iter declare names

(* --- manifest loading ---------------------------------------------------- *)

let load path =
  match read_file path with
  | exception Sys_error msg -> Error [ msg ]
  | src -> (
      match Jsonl.parse src with
      | Error e ->
          Error [ Fmt.str "%s: manifest is not valid JSON: %s" path e ]
      | Ok j -> (
          let name =
            match Option.bind (Jsonl.member "deployment" j) Jsonl.to_string with
            | Some n -> n
            | None -> Filename.remove_extension (Filename.basename path)
          in
          let dir = Filename.dirname path in
          match Jsonl.member "units" j with
          | Some (Jsonl.Arr (_ :: _ as us)) ->
              let errors = ref [] in
              let err m = errors := !errors @ [ m ] in
              let units =
                List.filter_map
                  (fun u ->
                    match
                      ( Option.bind (Jsonl.member "name" u) Jsonl.to_string,
                        Option.bind (Jsonl.member "file" u) Jsonl.to_string )
                    with
                    | Some uname, Some file -> (
                        let broker =
                          match
                            Option.bind (Jsonl.member "broker" u)
                              Jsonl.to_string
                          with
                          | Some b -> b
                          | None -> "default"
                        in
                        let file =
                          if Filename.is_relative file then
                            Filename.concat dir file
                          else file
                        in
                        match compile_file file with
                        | Ok c ->
                            Some
                              {
                                u_name = uname;
                                u_file = file;
                                u_broker = broker;
                                u_compiled = c;
                              }
                        | Error msgs ->
                            List.iter
                              (fun m -> err (Fmt.str "unit %s: %s" uname m))
                              msgs;
                            None)
                    | _ ->
                        err
                          (Fmt.str
                             "%s: every manifest unit needs \"name\" and \
                              \"file\" fields"
                             path);
                        None)
                  us
              in
              let seen = Hashtbl.create 8 in
              List.iter
                (fun u ->
                  if Hashtbl.mem seen u.u_name then
                    err (Fmt.str "duplicate unit name %s" u.u_name)
                  else Hashtbl.add seen u.u_name ())
                units;
              if !errors <> [] then Error !errors
              else begin
                let merged = Registry.create () in
                let first_owner = Hashtbl.create 16 in
                let mismatches = ref [] in
                List.iter
                  (fun u ->
                    merge_unit ~merged ~first_owner ~mismatches
                      ~owner:u.u_name u.u_compiled.Compile.registry)
                  units;
                Ok
                  {
                    d_name = name;
                    d_units = units;
                    d_registry = merged;
                    d_mismatches = List.rev !mismatches;
                  }
              end
          | Some _ | None ->
              Error
                [ Fmt.str "%s: manifest needs a non-empty \"units\" array" path ]))

let broker_groups t =
  let order = ref [] in
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun u ->
      match Hashtbl.find_opt tbl u.u_broker with
      | Some us -> Hashtbl.replace tbl u.u_broker (us @ [ u ])
      | None ->
          order := u.u_broker :: !order;
          Hashtbl.replace tbl u.u_broker [ u ])
    t.d_units;
  List.rev_map (fun b -> (b, Hashtbl.find tbl b)) !order
