module Registry = Tpbs_types.Registry
module Qos = Tpbs_types.Qos
module Expr = Tpbs_filter.Expr
module Rfilter = Tpbs_filter.Rfilter
module Mobility = Tpbs_filter.Mobility
module Compile = Tpbs_psc.Compile

type severity = Warning | Error

let severity_name = function Warning -> "warning" | Error -> "error"

type diagnostic = {
  code : string;
  severity : severity;
  where : string;
  message : string;
  hint : string option;
}

let diag ?hint code severity where message =
  { code; severity; where; message; hint }

(* --- pass 1: filter abstract interpretation ----------------------------- *)

(* Verdicts on the lifted formula are only sound when the filter
   captures no variables: variable-bearing filters are classified with
   placeholder bindings (see Compile), and the real constants arrive
   at subscription time — where Pubsub runs the same check on the
   actually-lifted filter. *)
let filter_pass reg (sp : Compile.sub_plan) =
  let where = sp.sp_process ^ "/" ^ sp.sp_var in
  let verdicts =
    match sp.sp_class with
    | Compile.Remote_filter rf when sp.sp_captured = [] -> (
        match Absint.filter_verdict reg ~param:sp.sp_param rf with
        | Absint.Unsat ->
            [ diag "TP001" Warning where
                (Fmt.str
                   "filter of subscription %s can never match (%a): the \
                    subscription is dead"
                   sp.sp_var Rfilter.pp_formula rf.Rfilter.formula)
                ~hint:"remove the subscription or fix the contradictory bounds"
            ]
        | Absint.Tautology ->
            (* [subscribe (T t) { return true; }] is the paper's
               subscribe-to-all idiom, not a mistake. *)
            if Expr.equal sp.sp_filter (Expr.bool true) then []
            else
              [ diag "TP002" Warning where
                  (Fmt.str
                     "filter of subscription %s always matches (%a): \
                      equivalent to a pure type-based subscription on %s"
                     sp.sp_var Rfilter.pp_formula rf.Rfilter.formula
                     sp.sp_param)
                  ~hint:
                    "write the subscribe-to-all idiom { return true; } to \
                     make the intent explicit"
              ]
        | Absint.Sat ->
            List.map
              (fun f ->
                diag "TP003" Warning where
                  (Fmt.str
                     "conjunction %a inside the filter of %s can never \
                      hold: that branch is dead"
                     Rfilter.pp_formula f sp.sp_var))
              (Absint.contradictory_conjuncts reg ~param:sp.sp_param rf))
    | _ -> []
  in
  let divisions =
    List.map
      (fun (r : Absint.div_risk) ->
        diag "TP004" Warning where
          (if r.definite then
             Fmt.str
               "filter of %s divides by the constant zero (%a): the filter \
                raises and never matches"
               sp.sp_var Expr.pp r.divisor
           else
             Fmt.str "filter of %s may divide by zero: the divisor %a can \
                      be 0"
               sp.sp_var Expr.pp r.divisor)
          ~hint:"guard the division with a non-zero check")
      (Absint.div_risks sp.sp_filter)
  in
  verdicts @ divisions

(* --- pass 2: pub/sub connectivity over the subtype lattice --------------- *)

let connectivity_pass (c : Compile.t) =
  let reg = c.registry in
  let covered_by_sub cls =
    List.exists
      (fun (sp : Compile.sub_plan) -> Registry.subtype reg cls sp.sp_param)
      c.sub_plans
  in
  let covered_by_pub param =
    List.exists
      (fun (_, cls) -> Registry.subtype reg cls param)
      c.publish_types
  in
  let seen = Hashtbl.create 8 in
  let dead_publishes =
    List.filter_map
      (fun (_, cls) ->
        if Hashtbl.mem seen cls then None
        else begin
          Hashtbl.add seen cls ();
          if covered_by_sub cls then None
          else
            let procs =
              List.sort_uniq String.compare
                (List.filter_map
                   (fun (p, c) -> if String.equal c cls then Some p else None)
                   c.publish_types)
            in
            Some
              (diag "TP005" Warning ("publish " ^ cls)
                 (Fmt.str
                    "publish %s (process %s) can never be received: no \
                     subscription covers %s or any of its supertypes"
                    cls
                    (String.concat ", " procs)
                    cls)
                 ~hint:"add a subscription or drop the publish")
        end)
      c.publish_types
  in
  let dead_subscriptions =
    List.filter_map
      (fun (sp : Compile.sub_plan) ->
        if covered_by_pub sp.sp_param then None
        else
          Some
            (diag "TP006" Warning
               (sp.sp_process ^ "/" ^ sp.sp_var)
               (Fmt.str
                  "subscription %s to %s: no publish statement produces %s \
                   or a subtype, so the handler can never run"
                  sp.sp_var sp.sp_param sp.sp_param)
               ~hint:"add a publish or drop the subscription"))
      c.sub_plans
  in
  dead_publishes @ dead_subscriptions

(* --- pass 3: mobility / factoring degradation ---------------------------- *)

let mobility_pass (sp : Compile.sub_plan) =
  let where = sp.sp_process ^ "/" ^ sp.sp_var in
  match sp.sp_class with
  | Compile.Remote_filter _ -> []
  | Compile.Mobile_tree ->
      [ diag "TP007" Warning where
          (Fmt.str
             "filter of %s is mobile but not in atom normal form: it ships \
              as an interpreted expression tree and cannot be factored with \
              other filters"
             sp.sp_var)
          ~hint:
            "rewrite the filter as a boolean combination of \
             getter-vs-constant comparisons"
      ]
  | Compile.Local_filter reasons ->
      [ diag "TP007" Warning where
          (Fmt.str
             "filter of %s cannot leave the subscriber (%a): every %s event \
              travels to the subscriber node to be filtered there"
             sp.sp_var
             Fmt.(list ~sep:(any "; ") Mobility.pp_reason)
             reasons sp.sp_param)
          ~hint:
            "capture only primitive final variables and avoid remote \
             references in filters"
      ]

(* --- pass 4: compile-time QoS conflicts ---------------------------------- *)

let qos_pass reg (ad : Compile.adapter) =
  let _, conflicts = Qos.of_type reg ad.ad_type in
  List.map
    (fun conflict ->
      let explanation =
        match conflict with
        | Qos.Timely_dropped ->
            "reliability is stronger than timeliness (Fig. 4)"
        | Qos.Priority_dropped ->
            "delivery order is stronger than priorities (Fig. 4)"
      in
      diag "TP008" Warning ad.ad_type
        (Fmt.str
           "QoS conflict on %s: %s semantics are dropped at runtime \
            because %s"
           ad.ad_type
           (Qos.conflict_label conflict)
           explanation)
        ~hint:"remove one of the conflicting marker interfaces")
    conflicts

(* --- driver -------------------------------------------------------------- *)

let compare_diag a b =
  let c = String.compare a.code b.code in
  if c <> 0 then c
  else
    let c = String.compare a.where b.where in
    if c <> 0 then c else String.compare a.message b.message

let analyze (c : Compile.t) : diagnostic list =
  let reg = c.registry in
  List.sort compare_diag
    (List.concat
       [ List.concat_map (filter_pass reg) c.sub_plans;
         connectivity_pass c;
         List.concat_map mobility_pass c.sub_plans;
         List.concat_map (qos_pass reg) c.adapters ])

let has_error diags = List.exists (fun d -> d.severity = Error) diags

let exit_code ~werror diags =
  if has_error diags then 2 else if werror && diags <> [] then 1 else 0

(* --- output -------------------------------------------------------------- *)

let pp_diagnostic ppf d =
  Fmt.pf ppf "%s %s %s: %s" d.code (severity_name d.severity) d.where
    d.message;
  match d.hint with
  | Some h -> Fmt.pf ppf "@,  hint: %s" h
  | None -> ()

let pp_report ppf diags =
  Fmt.pf ppf "@[<v>%a@,%d finding%s@]@."
    Fmt.(list ~sep:(any "@,") pp_diagnostic)
    diags (List.length diags)
    (if List.length diags = 1 then "" else "s")

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json diags =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  {";
      let field ?(last = false) k v =
        Buffer.add_string buf
          (Printf.sprintf "\n    \"%s\": \"%s\"%s" k (json_escape v)
             (if last then "" else ","))
      in
      field "code" d.code;
      field "severity" (severity_name d.severity);
      field "where" d.where;
      (match d.hint with
      | Some h ->
          field "message" d.message;
          field ~last:true "hint" h
      | None -> field ~last:true "message" d.message);
      Buffer.add_string buf "\n  }")
    diags;
  if diags <> [] then Buffer.add_string buf "\n";
  Buffer.add_string buf "]\n";
  Buffer.contents buf
