module Registry = Tpbs_types.Registry
module Qos = Tpbs_types.Qos
module Value = Tpbs_serial.Value
module Expr = Tpbs_filter.Expr
module Rfilter = Tpbs_filter.Rfilter
module Mobility = Tpbs_filter.Mobility
module Subsume = Tpbs_filter.Subsume
module Compile = Tpbs_psc.Compile

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type diagnostic = {
  code : string;
  severity : severity;
  where : string;
  message : string;
  hint : string option;
  witness : Value.t option;
}

let diag ?hint ?witness code severity where message =
  { code; severity; where; message; hint; witness }

(* --- pass 1: filter abstract interpretation ----------------------------- *)

(* Verdicts on the lifted formula are only sound when the filter
   captures no variables: variable-bearing filters are classified with
   placeholder bindings (see Compile), and the real constants arrive
   at subscription time — where Pubsub runs the same check on the
   actually-lifted filter. *)
let filter_pass reg (sp : Compile.sub_plan) =
  let where = sp.sp_process ^ "/" ^ sp.sp_var in
  let verdicts =
    match sp.sp_class with
    | Compile.Remote_filter rf when sp.sp_captured = [] -> (
        match Absint.filter_verdict reg ~param:sp.sp_param rf with
        | Absint.Unsat ->
            [ diag "TP001" Warning where
                (Fmt.str
                   "filter of subscription %s can never match (%a): the \
                    subscription is dead"
                   sp.sp_var Rfilter.pp_formula rf.Rfilter.formula)
                ~hint:"remove the subscription or fix the contradictory bounds"
            ]
        | Absint.Tautology ->
            (* [subscribe (T t) { return true; }] is the paper's
               subscribe-to-all idiom, not a mistake. *)
            if Expr.equal sp.sp_filter (Expr.bool true) then []
            else
              [ diag "TP002" Warning where
                  (Fmt.str
                     "filter of subscription %s always matches (%a): \
                      equivalent to a pure type-based subscription on %s"
                     sp.sp_var Rfilter.pp_formula rf.Rfilter.formula
                     sp.sp_param)
                  ~hint:
                    "write the subscribe-to-all idiom { return true; } to \
                     make the intent explicit"
              ]
        | Absint.Sat ->
            List.map
              (fun f ->
                diag "TP003" Warning where
                  (Fmt.str
                     "conjunction %a inside the filter of %s can never \
                      hold: that branch is dead"
                     Rfilter.pp_formula f sp.sp_var))
              (Absint.contradictory_conjuncts reg ~param:sp.sp_param rf))
    | _ -> []
  in
  let divisions =
    List.map
      (fun (r : Absint.div_risk) ->
        diag "TP004" Warning where
          (if r.definite then
             Fmt.str
               "filter of %s divides by the constant zero (%a): the filter \
                raises and never matches"
               sp.sp_var Expr.pp r.divisor
           else
             Fmt.str "filter of %s may divide by zero: the divisor %a can \
                      be 0"
               sp.sp_var Expr.pp r.divisor)
          ~hint:"guard the division with a non-zero check")
      (Absint.div_risks sp.sp_filter)
  in
  (* TP014: a variable-capturing filter gets no verdict above — say so
     (naming the variables), so a clean report is distinguishable from
     an unanalyzable one. *)
  let captured_note =
    match sp.sp_captured with
    | [] -> []
    | vars ->
        [ diag "TP014" Info where
            (Fmt.str
               "filter of %s captures variable%s %s: no static verdict is \
                possible here; the engine re-checks the lifted filter at \
                subscription time"
               sp.sp_var
               (if List.length vars = 1 then "" else "s")
               (String.concat ", " (List.map fst vars)))
            ~hint:
              "inline the constant if the filter should be statically \
               analyzable"
        ]
  in
  verdicts @ divisions @ captured_note

(* --- pass 2: pub/sub connectivity over the subtype lattice --------------- *)

let connectivity_pass (c : Compile.t) =
  let reg = c.registry in
  let covered_by_sub cls =
    List.exists
      (fun (sp : Compile.sub_plan) -> Registry.subtype reg cls sp.sp_param)
      c.sub_plans
  in
  let covered_by_pub param =
    List.exists
      (fun (_, cls) -> Registry.subtype reg cls param)
      c.publish_types
  in
  let seen = Hashtbl.create 8 in
  let dead_publishes =
    List.filter_map
      (fun (_, cls) ->
        if Hashtbl.mem seen cls then None
        else begin
          Hashtbl.add seen cls ();
          if covered_by_sub cls then None
          else
            let procs =
              List.sort_uniq String.compare
                (List.filter_map
                   (fun (p, c) -> if String.equal c cls then Some p else None)
                   c.publish_types)
            in
            Some
              (diag "TP005" Warning ("publish " ^ cls)
                 (Fmt.str
                    "publish %s (process %s) can never be received: no \
                     subscription covers %s or any of its supertypes"
                    cls
                    (String.concat ", " procs)
                    cls)
                 ~hint:"add a subscription or drop the publish")
        end)
      c.publish_types
  in
  let dead_subscriptions =
    List.filter_map
      (fun (sp : Compile.sub_plan) ->
        if covered_by_pub sp.sp_param then None
        else
          Some
            (diag "TP006" Warning
               (sp.sp_process ^ "/" ^ sp.sp_var)
               (Fmt.str
                  "subscription %s to %s: no publish statement produces %s \
                   or a subtype, so the handler can never run"
                  sp.sp_var sp.sp_param sp.sp_param)
               ~hint:"add a publish or drop the subscription"))
      c.sub_plans
  in
  dead_publishes @ dead_subscriptions

(* --- pass 3: mobility / factoring degradation ---------------------------- *)

let mobility_pass (sp : Compile.sub_plan) =
  let where = sp.sp_process ^ "/" ^ sp.sp_var in
  match sp.sp_class with
  | Compile.Remote_filter _ -> []
  | Compile.Mobile_tree ->
      [ diag "TP007" Warning where
          (Fmt.str
             "filter of %s is mobile but not in atom normal form: it ships \
              as an interpreted expression tree and cannot be factored with \
              other filters"
             sp.sp_var)
          ~hint:
            "rewrite the filter as a boolean combination of \
             getter-vs-constant comparisons"
      ]
  | Compile.Local_filter reasons ->
      [ diag "TP007" Warning where
          (Fmt.str
             "filter of %s cannot leave the subscriber (%a): every %s event \
              travels to the subscriber node to be filtered there"
             sp.sp_var
             Fmt.(list ~sep:(any "; ") Mobility.pp_reason)
             reasons sp.sp_param)
          ~hint:
            "capture only primitive final variables and avoid remote \
             references in filters"
      ]

(* --- pass 4: compile-time QoS conflicts ---------------------------------- *)

let qos_pass reg (ad : Compile.adapter) =
  let _, conflicts = Qos.of_type reg ad.ad_type in
  List.map
    (fun conflict ->
      let explanation =
        match conflict with
        | Qos.Timely_dropped ->
            "reliability is stronger than timeliness (Fig. 4)"
        | Qos.Priority_dropped ->
            "delivery order is stronger than priorities (Fig. 4)"
      in
      diag "TP008" Warning ad.ad_type
        (Fmt.str
           "QoS conflict on %s: %s semantics are dropped at runtime \
            because %s"
           ad.ad_type
           (Qos.conflict_label conflict)
           explanation)
        ~hint:"remove one of the conflicting marker interfaces")
    conflicts

(* --- driver -------------------------------------------------------------- *)

let compare_diag a b =
  let c = String.compare a.code b.code in
  if c <> 0 then c
  else
    let c = String.compare a.where b.where in
    if c <> 0 then c else String.compare a.message b.message

let analyze (c : Compile.t) : diagnostic list =
  let reg = c.registry in
  List.sort compare_diag
    (List.concat
       [ List.concat_map (filter_pass reg) c.sub_plans;
         connectivity_pass c;
         List.concat_map mobility_pass c.sub_plans;
         List.concat_map (qos_pass reg) c.adapters ])

(* --- deployment-wide passes (TP009–TP013) -------------------------------- *)

(* Cross-unit reasoning over a {!Deploy.t}: the merged lattice answers
   subtype questions spanning units, and {!Subsume.covers} is the
   registry-aware covering relation the broker's suppression index
   uses at runtime — the static and dynamic tiers share one core. *)

let analyzable_rf (sp : Compile.sub_plan) =
  match sp.sp_class with
  | Compile.Remote_filter rf when sp.sp_captured = [] -> Some rf
  | _ -> None

(* Per-unit passes minus connectivity: TP005/TP006 are refined by the
   deployment-wide TP010 (a publish dead in its unit may be consumed
   by a sibling unit, and vice versa). *)
let deployment_unit_passes (u : Deploy.unit_) =
  let c = u.Deploy.u_compiled in
  let reg = c.Compile.registry in
  List.concat
    [ List.concat_map (filter_pass reg) c.sub_plans;
      List.concat_map mobility_pass c.sub_plans;
      List.concat_map (qos_pass reg) c.adapters ]
  |> List.map (fun d -> { d with where = u.Deploy.u_name ^ "/" ^ d.where })

let safe_subtype reg a b =
  try Registry.subtype reg a b with Registry.Type_error _ -> false

(* TP009: a subscription covered by a sibling of the same process can
   never add a delivery — every obvent it matches already reaches the
   process through the sibling. On mutual (equivalent) coverage only
   the later subscription is reported. *)
let tp009 (d : Deploy.t) =
  let reg = d.Deploy.d_registry in
  List.concat_map
    (fun (u : Deploy.unit_) ->
      let indexed =
        List.mapi (fun i sp -> (i, sp)) u.u_compiled.Compile.sub_plans
      in
      List.filter_map
        (fun (i, (sp : Compile.sub_plan)) ->
          match analyzable_rf sp with
          | None -> None
          | Some rf ->
              let covered_by (j, (sp' : Compile.sub_plan)) =
                i <> j
                && String.equal sp'.sp_process sp.sp_process
                &&
                match analyzable_rf sp' with
                | None -> false
                | Some rf' ->
                    safe_subtype reg sp.sp_param sp'.sp_param
                    && Subsume.covers ~registry:reg ~param:sp.sp_param rf rf'
                    && not
                         (j > i
                         && safe_subtype reg sp'.sp_param sp.sp_param
                         && Subsume.covers ~registry:reg ~param:sp'.sp_param
                              rf' rf)
              in
              Option.map
                (fun (_, (sp' : Compile.sub_plan)) ->
                  diag "TP009" Warning
                    (u.u_name ^ "/" ^ sp.sp_process ^ "/" ^ sp.sp_var)
                    (Fmt.str
                       "subscription %s is redundant: sibling %s of the same \
                        process covers it, so it can never add a delivery"
                       sp.sp_var sp'.sp_var)
                    ~hint:"drop the narrower subscription or widen its filter")
                (List.find_opt covered_by indexed))
        indexed)
    d.d_units

(* TP010: deployment-dead endpoints, per broker group. Refines
   TP005/TP006: connectivity is judged against every unit sharing the
   broker, and a publish/subscription whose peer exists only in
   another group is called out as a federation gap. *)
let tp010 (d : Deploy.t) =
  let reg = d.Deploy.d_registry in
  let groups = Deploy.broker_groups d in
  let subs_of us =
    List.concat_map
      (fun (u : Deploy.unit_) ->
        List.map (fun sp -> (u, sp)) u.u_compiled.Compile.sub_plans)
      us
  in
  let pubs_of us =
    List.concat_map
      (fun (u : Deploy.unit_) ->
        List.map (fun (p, cls) -> (u, p, cls)) u.u_compiled.Compile.publish_types)
      us
  in
  List.concat_map
    (fun (broker, units) ->
      let others =
        List.concat_map
          (fun (b, us) -> if String.equal b broker then [] else us)
          groups
      in
      let local_subs = subs_of units and other_subs = subs_of others in
      let local_pubs = pubs_of units and other_pubs = pubs_of others in
      let covered_by_sub subs cls =
        List.exists
          (fun (_, (sp : Compile.sub_plan)) ->
            safe_subtype reg cls sp.sp_param)
          subs
      in
      let covered_by_pub pubs param =
        List.exists (fun (_, _, cls) -> safe_subtype reg cls param) pubs
      in
      let seen = Hashtbl.create 8 in
      let dead_pubs =
        List.filter_map
          (fun ((u : Deploy.unit_), proc, cls) ->
            if Hashtbl.mem seen (u.u_name, cls) then None
            else begin
              Hashtbl.add seen (u.u_name, cls) ();
              if covered_by_sub local_subs cls then None
              else
                let elsewhere =
                  if covered_by_sub other_subs cls then
                    " (a subscriber exists in another broker group, but \
                     broker groups do not exchange traffic)"
                  else ""
                in
                Some
                  (diag "TP010" Warning (u.u_name ^ "/publish " ^ cls)
                     (Fmt.str
                        "publish %s (unit %s, process %s) is \
                         deployment-dead: no subscription in broker group %s \
                         covers %s%s"
                        cls u.u_name proc broker cls elsewhere)
                     ~hint:"add a subscriber to the group or drop the publish")
            end)
          local_pubs
      in
      let dead_subs =
        List.filter_map
          (fun ((u : Deploy.unit_), (sp : Compile.sub_plan)) ->
            if covered_by_pub local_pubs sp.sp_param then None
            else
              let elsewhere =
                if covered_by_pub other_pubs sp.sp_param then
                  " (a publisher exists in another broker group, but broker \
                   groups do not exchange traffic)"
                else ""
              in
              Some
                (diag "TP010" Warning
                   (u.u_name ^ "/" ^ sp.sp_process ^ "/" ^ sp.sp_var)
                   (Fmt.str
                      "subscription %s to %s is deployment-dead: no unit in \
                       broker group %s publishes %s or a subtype%s"
                      sp.sp_var sp.sp_param broker sp.sp_param elsewhere)
                   ~hint:"add a publisher to the group or drop the \
                          subscription"))
          local_subs
      in
      dead_pubs @ dead_subs)
    groups

(* TP011: coverage gap — a published class some conforming obvents of
   which match no subscription of the broker group. Only claimed with
   a machine-checked witness obvent in hand; skipped when any
   subscription on the class is unanalyzable (it might cover the
   gap). *)
let tp011 (d : Deploy.t) =
  let reg = d.Deploy.d_registry in
  List.concat_map
    (fun (broker, units) ->
      let subs =
        List.concat_map
          (fun (u : Deploy.unit_) -> u.u_compiled.Compile.sub_plans)
          units
      in
      let seen = Hashtbl.create 8 in
      List.concat_map
        (fun (u : Deploy.unit_) ->
          List.filter_map
            (fun (_, cls) ->
              if Hashtbl.mem seen cls then None
              else begin
                Hashtbl.add seen cls ();
                let matching =
                  List.filter
                    (fun (sp : Compile.sub_plan) ->
                      safe_subtype reg cls sp.sp_param)
                    subs
                in
                if matching = [] then None (* TP010's business *)
                else
                  let rfs = List.map analyzable_rf matching in
                  if List.exists (fun o -> o = None) rfs then None
                  else
                    let union : Rfilter.t =
                      {
                        param = cls;
                        paths = [||];
                        formula =
                          Or
                            (List.map
                               (function
                                 | Some (rf : Rfilter.t) -> rf.Rfilter.formula
                                 | None -> Rfilter.False)
                               rfs);
                      }
                    in
                    let all : Rfilter.t =
                      { param = cls; paths = [||]; formula = True }
                    in
                    match
                      Subsume.covers_witness ~registry:reg ~cls ~param:cls
                        all union
                    with
                    | Subsume.Covered | Subsume.Unknown -> None
                    | Subsume.Not_covered w ->
                        Some
                          (diag "TP011" Warning
                             (broker ^ "/publish " ^ cls)
                             (Fmt.str
                                "coverage gap on %s in broker group %s: \
                                 conforming obvents exist that match no \
                                 subscription of the group"
                                cls broker)
                             ~witness:w
                             ~hint:
                               "widen a subscription filter or add a \
                                catch-all subscriber (--witness shows a \
                                counterexample obvent)")
              end)
            u.u_compiled.Compile.publish_types)
        units)
    (Deploy.broker_groups d)

(* TP012: a type declared differently across units, where the
   publisher side resolves weaker QoS than a remote subscriber
   assumes — the stronger guarantee silently does not hold. *)
let tp012 (d : Deploy.t) =
  let order_rank : Qos.order -> int = function
    | No_order -> 0
    | Fifo -> 1
    | Causal | Total -> 2 (* incomparable pair: same rank, no claim *)
    | Causal_total -> 3
  in
  let weaker (p : Qos.profile) (q : Qos.profile) =
    (q.reliable && not p.reliable)
    || (q.certified && not p.certified)
    || order_rank p.order < order_rank q.order
  in
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun (m : Deploy.mismatch) ->
      if Hashtbl.mem seen m.m_type then None
      else begin
        Hashtbl.add seen m.m_type ();
        let unit_named n =
          List.find_opt (fun (u : Deploy.unit_) -> String.equal u.u_name n)
            d.Deploy.d_units
        in
        match (unit_named m.m_first, unit_named m.m_other) with
        | Some ua, Some ub -> (
            let profile (u : Deploy.unit_) =
              match Qos.of_type u.u_compiled.Compile.registry m.m_type with
              | p, _ -> Some p
              | exception Registry.Type_error _ -> None
            in
            let publishes (u : Deploy.unit_) =
              List.exists
                (fun (_, cls) ->
                  safe_subtype u.u_compiled.Compile.registry cls m.m_type)
                u.u_compiled.Compile.publish_types
            in
            let subscribes (u : Deploy.unit_) =
              List.exists
                (fun (sp : Compile.sub_plan) ->
                  safe_subtype u.u_compiled.Compile.registry m.m_type
                    sp.sp_param)
                u.u_compiled.Compile.sub_plans
            in
            match (profile ua, profile ub) with
            | Some pa, Some pb when not (Qos.equal pa pb) ->
                List.find_map
                  (fun (pu, ppro, su, spro) ->
                    if publishes pu && subscribes su && weaker ppro spro then
                      Some
                        (diag "TP012" Warning m.m_type
                           (Fmt.str
                              "cross-process QoS mismatch on %s: publisher \
                               unit %s resolves [%a] but subscriber unit %s \
                               assumes [%a] — the stronger guarantee \
                               silently does not hold"
                              m.m_type pu.Deploy.u_name Qos.pp ppro
                              su.Deploy.u_name Qos.pp spro)
                           ~hint:
                             "align the marker interfaces of the shared \
                              type across units")
                    else None)
                  [ (ua, pa, ub, pb); (ub, pb, ua, pa) ]
            | _ -> None)
        | _ -> None
      end)
    d.d_mismatches

(* TP013: a Sub the broker would suppress — an earlier subscription
   forwarded from the same unit (same client session) but a different
   process already covers it, so the broker records it without
   installing new filtering state. Informational: same-process pairs
   are TP009's stronger finding. *)
let tp013 (d : Deploy.t) =
  let reg = d.Deploy.d_registry in
  List.concat_map
    (fun (u : Deploy.unit_) ->
      let indexed =
        List.mapi (fun i sp -> (i, sp)) u.u_compiled.Compile.sub_plans
      in
      List.filter_map
        (fun (i, (sp : Compile.sub_plan)) ->
          match analyzable_rf sp with
          | None -> None
          | Some rf ->
              List.find_map
                (fun (j, (sp' : Compile.sub_plan)) ->
                  if
                    j < i
                    && not (String.equal sp'.sp_process sp.sp_process)
                  then
                    match analyzable_rf sp' with
                    | Some rf'
                      when safe_subtype reg sp.sp_param sp'.sp_param
                           && Subsume.covers ~registry:reg
                                ~param:sp.sp_param rf rf' ->
                        Some
                          (diag "TP013" Info
                             (u.u_name ^ "/" ^ sp.sp_process ^ "/"
                            ^ sp.sp_var)
                             (Fmt.str
                                "the broker will suppress this Sub: %s/%s, \
                                 forwarded earlier from the same unit, \
                                 already covers it, so no new filtering \
                                 state is installed"
                                sp'.sp_process sp'.sp_var)
                             ~hint:
                               "informational — the covering index dedups \
                                it at the broker")
                    | _ -> None
                  else None)
                indexed)
        indexed)
    d.d_units

let analyze_deployment (d : Deploy.t) : diagnostic list =
  List.sort compare_diag
    (List.concat
       [ List.concat_map deployment_unit_passes d.Deploy.d_units;
         tp009 d; tp010 d; tp011 d; tp012 d; tp013 d ])

let has_error diags = List.exists (fun d -> d.severity = Error) diags

(* Info findings never gate: --werror promotes warnings only. *)
let exit_code ~werror diags =
  if has_error diags then 2
  else if werror && List.exists (fun d -> d.severity = Warning) diags then 1
  else 0

let strip_witnesses diags = List.map (fun d -> { d with witness = None }) diags

(* --- output -------------------------------------------------------------- *)

let pp_diagnostic ppf d =
  Fmt.pf ppf "%s %s %s: %s" d.code (severity_name d.severity) d.where
    d.message;
  (match d.hint with
  | Some h -> Fmt.pf ppf "@,  hint: %s" h
  | None -> ());
  match d.witness with
  | Some w -> Fmt.pf ppf "@,  witness: %a" Value.pp w
  | None -> ()

let pp_report ppf diags =
  Fmt.pf ppf "@[<v>%a@,%d finding%s@]@."
    Fmt.(list ~sep:(any "@,") pp_diagnostic)
    diags (List.length diags)
    (if List.length diags = 1 then "" else "s")

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Witness obvents rendered as JSON: nested objects carry their class
   under a "class" key so the counterexample is reconstructible. *)
let rec json_of_value (v : Value.t) =
  match v with
  | Value.Null -> "null"
  | Value.Bool b -> if b then "true" else "false"
  | Value.Int i -> string_of_int i
  | Value.Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.1f" f
      else Printf.sprintf "%.12g" f
  | Value.Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Value.List vs ->
      Printf.sprintf "[%s]" (String.concat "," (List.map json_of_value vs))
  | Value.Obj { cls; fields } ->
      Printf.sprintf "{\"class\":\"%s\"%s}" (json_escape cls)
        (String.concat ""
           (List.map
              (fun (k, fv) ->
                Printf.sprintf ",\"%s\":%s" (json_escape k) (json_of_value fv))
              fields))
  | Value.Remote { iface; _ } ->
      Printf.sprintf "{\"remote\":\"%s\"}" (json_escape iface)

let to_json diags =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  {";
      let fields =
        [ ("code", `Str d.code);
          ("severity", `Str (severity_name d.severity));
          ("where", `Str d.where);
          ("message", `Str d.message) ]
        @ (match d.hint with Some h -> [ ("hint", `Str h) ] | None -> [])
        @
        match d.witness with
        | Some w -> [ ("witness", `Raw (json_of_value w)) ]
        | None -> []
      in
      let n = List.length fields in
      List.iteri
        (fun j (k, v) ->
          let rendered =
            match v with
            | `Str s -> Printf.sprintf "\"%s\"" (json_escape s)
            | `Raw s -> s
          in
          Buffer.add_string buf
            (Printf.sprintf "\n    \"%s\": %s%s" k rendered
               (if j = n - 1 then "" else ",")))
        fields;
      Buffer.add_string buf "\n  }")
    diags;
  if diags <> [] then Buffer.add_string buf "\n";
  Buffer.add_string buf "]\n";
  Buffer.contents buf
