module Value = Tpbs_serial.Value
module Vtype = Tpbs_types.Vtype
module Registry = Tpbs_types.Registry
module Expr = Tpbs_filter.Expr
module Rfilter = Tpbs_filter.Rfilter
module Subsume = Tpbs_filter.Subsume

(* --- path schemas ------------------------------------------------------- *)

let path_type reg ~param path =
  let rec walk cls = function
    | [] -> None
    | [ m ] -> Registry.method_ret reg cls m
    | m :: rest -> (
        match Registry.method_ret reg cls m with
        | Some (Vtype.Tobject next) -> walk next rest
        | Some _ | None -> None)
  in
  match path with [] -> None | _ -> walk param path

(* A path is reliable when evaluating it on any conforming obvent
   always yields a present value of a primitive numeric/bool type:
   length-1 getters on int/float/bool attributes. Longer paths cross
   object-typed attributes that may be [Null], and strings may be
   [Null] too (Java reference semantics) — either makes
   [Rfilter.eval_atom] collapse to [false], so tautology reasoning
   must not see through them. *)
let reliable_path reg ~param path =
  match path with
  | [ _ ] -> (
      match path_type reg ~param path with
      | Some (Vtype.Tint | Vtype.Tfloat | Vtype.Tbool) -> true
      | Some _ | None -> false)
  | _ -> false

(* --- atom-level verdicts from declared types ----------------------------- *)

(* [true] when the atom can never hold on a conforming obvent: the
   declared type of its path cannot produce a value the comparison
   accepts. An ordering comparison against a numeric constant only
   holds for numeric values; contains/startsWith only for strings.
   [Cne] is never "never": on a kind mismatch it is always true. *)
let atom_never reg ~param (a : Rfilter.atom) =
  match path_type reg ~param a.path with
  | None -> false (* unknown method: the typechecker already rejected *)
  | Some ty -> (
      match a.cmp with
      | Clt | Cle | Cgt | Cge -> (
          match ty, a.const with
          | (Tint | Tfloat), (Value.Int _ | Value.Float _) -> false
          | Tstring, Value.Str _ -> false
          | _, _ -> true)
      | Ccontains | Cprefix -> (
          match ty, a.const with
          | Vtype.Tstring, Value.Str _ -> false
          | _, _ -> true)
      | Ceq -> (
          match ty, a.const with
          | (Tint | Tfloat), (Value.Int _ | Value.Float _) -> false
          | Tbool, Value.Bool _ -> false
          | Tstring, (Value.Str _ | Value.Null) -> false
          | (Tobject _ | Tremote _ | Tlist _), _ -> false
          | (Tint | Tfloat | Tbool | Tstring), _ -> true)
      | Cne -> false)

(* Replace statically-false atoms by [False] so the satisfiability
   check sees them. *)
let rec prune_never reg ~param (f : Rfilter.formula) : Rfilter.formula =
  match f with
  | Atom a when atom_never reg ~param a -> False
  | Not f -> Not (prune_never reg ~param f)
  | And fs -> And (List.map (prune_never reg ~param) fs)
  | Or fs -> Or (List.map (prune_never reg ~param) fs)
  | (True | False | Atom _) as f -> f

(* Complement of an atom, exact on values the path is guaranteed to
   produce. Only claimed for ordering/equality against numeric
   constants on reliable numeric paths: there the extracted value is
   always a present number, so e.g. [¬(p < c)] is exactly [p >= c].
   Anywhere else a missing/null/mistyped value falsifies both the atom
   and its would-be complement, and no complement exists. *)
let complement_atom reg ~param (a : Rfilter.atom) : Rfilter.atom option =
  let numeric_const =
    match a.const with Value.Int _ | Value.Float _ -> true | _ -> false
  in
  let numeric_path =
    match path_type reg ~param a.path with
    | Some (Vtype.Tint | Vtype.Tfloat) -> true
    | Some _ | None -> false
  in
  if not (numeric_const && numeric_path && reliable_path reg ~param a.path)
  then None
  else
    let flip cmp : Rfilter.cmp =
      match (cmp : Rfilter.cmp) with
      | Clt -> Cge
      | Cle -> Cgt
      | Cgt -> Cle
      | Cge -> Clt
      | Ceq -> Cne
      | Cne -> Ceq
      | Ccontains | Cprefix -> assert false
    in
    match a.cmp with
    | Clt | Cle | Cgt | Cge | Ceq | Cne -> Some { a with cmp = flip a.cmp }
    | Ccontains | Cprefix -> None

(* Negation normal form of [¬f], using atom complements where exact. *)
let rec neg reg ~param (f : Rfilter.formula) : Rfilter.formula =
  match f with
  | True -> False
  | False -> True
  | Not g -> g
  | And fs -> Or (List.map (neg reg ~param) fs)
  | Or fs -> And (List.map (neg reg ~param) fs)
  | Atom a -> (
      match complement_atom reg ~param a with
      | Some a' -> Atom a'
      | None -> Not (Atom a))

(* --- filter verdicts ----------------------------------------------------- *)

type verdict = Unsat | Tautology | Sat

let filter_verdict reg ~param (rf : Rfilter.t) =
  let f = prune_never reg ~param rf.formula in
  if Subsume.unsat_formula f then Unsat
  else if Subsume.unsat_formula (neg reg ~param f) then Tautology
  else Sat

let contradictory_conjuncts reg ~param (rf : Rfilter.t) =
  let acc = ref [] in
  let rec walk (f : Rfilter.formula) =
    match f with
    | And _ as f ->
        if Subsume.unsat_formula (prune_never reg ~param f) then
          acc := f :: !acc
        else begin
          match f with
          | And fs -> List.iter walk fs
          | _ -> ()
        end
    | Or fs -> List.iter walk fs
    | Not g -> walk g
    | True | False | Atom _ -> ()
  in
  walk rf.formula;
  List.rev !acc

(* --- interval domain over Expr.t ---------------------------------------- *)

(* Just enough of an interval/constant/null-ness domain to reason
   about divisors: [Aconst] tracks exact values (null-ness included),
   [Anum] a numeric range. Getters and captured variables are [Atop] —
   we do not warn about what we cannot bound. *)
type aval = Aconst of Value.t | Anum of float * float | Atop

type div_risk = { divisor : Expr.t; definite : bool }

let to_interval = function
  | Aconst (Value.Int i) -> Some (float_of_int i, float_of_int i)
  | Aconst (Value.Float f) -> Some (f, f)
  | Anum (lo, hi) -> Some (lo, hi)
  | Aconst _ | Atop -> None

let div_risks (e : Expr.t) : div_risk list =
  let risks = ref [] in
  let note divisor bv =
    match bv with
    | Aconst (Value.Int 0) | Aconst (Value.Float 0.) ->
        risks := { divisor; definite = true } :: !risks
    | _ -> (
        match to_interval bv with
        | Some (lo, hi) when lo <= 0. && 0. <= hi ->
            risks := { divisor; definite = false } :: !risks
        | Some _ | None -> ())
  in
  let rec go (e : Expr.t) : aval =
    match e with
    | Const v -> Aconst v
    | Arg | Var _ | Invoke (_, _) ->
        (match e with Invoke (recv, _) -> ignore (go recv) | _ -> ());
        Atop
    | Unop (op, e1) -> (
        let v = go e1 in
        match op, v with
        | Expr.Neg, Anum (lo, hi) -> Anum (-.hi, -.lo)
        | Expr.Neg, Aconst (Value.Int i) -> Aconst (Value.Int (-i))
        | Expr.Neg, Aconst (Value.Float f) -> Aconst (Value.Float (-.f))
        | Expr.Length, _ -> Anum (0., infinity)
        | _, _ -> Atop)
    | Binop (op, a, b) -> (
        let av = go a in
        let bv = go b in
        (match op with Expr.Div | Expr.Mod -> note b bv | _ -> ());
        match op, to_interval av, to_interval bv with
        | Expr.Add, Some (al, ah), Some (bl, bh) -> Anum (al +. bl, ah +. bh)
        | Expr.Sub, Some (al, ah), Some (bl, bh) -> Anum (al -. bh, ah -. bl)
        | Expr.Mul, Some (al, ah), Some (bl, bh) ->
            let ps = [ al *. bl; al *. bh; ah *. bl; ah *. bh ] in
            Anum
              ( List.fold_left min infinity ps,
                List.fold_left max neg_infinity ps )
        | Expr.Mod, _, Some (bl, bh)
          when Float.is_finite bl && Float.is_finite bh ->
            (* |x mod k| < |k| whatever x is. *)
            let m = Float.max (Float.abs bl) (Float.abs bh) in
            Anum (-.m, m)
        | _, _, _ -> Atop)
  in
  ignore (go e);
  List.rev !risks
