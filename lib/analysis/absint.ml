module Value = Tpbs_serial.Value
module Vtype = Tpbs_types.Vtype
module Registry = Tpbs_types.Registry
module Expr = Tpbs_filter.Expr
module Rfilter = Tpbs_filter.Rfilter
module Subsume = Tpbs_filter.Subsume

(* --- path schemas / atom verdicts --------------------------------------- *)

(* The registry-aware atom reasoning lives in [Subsume] (the covering
   procedure and the broker's covering index consume the same core);
   this module keeps its historical surface and delegates. *)

let path_type = Subsume.path_type
let reliable_path = Subsume.reliable_path
let prune_never = Subsume.prune_never
let neg = Subsume.neg

(* --- filter verdicts ----------------------------------------------------- *)

type verdict = Unsat | Tautology | Sat

let filter_verdict reg ~param (rf : Rfilter.t) =
  let f = prune_never reg ~param rf.formula in
  if Subsume.unsat_formula f then Unsat
  else if Subsume.unsat_formula (neg reg ~param f) then Tautology
  else Sat

let contradictory_conjuncts reg ~param (rf : Rfilter.t) =
  let acc = ref [] in
  let rec walk (f : Rfilter.formula) =
    match f with
    | And _ as f ->
        if Subsume.unsat_formula (prune_never reg ~param f) then
          acc := f :: !acc
        else begin
          match f with
          | And fs -> List.iter walk fs
          | _ -> ()
        end
    | Or fs -> List.iter walk fs
    | Not g -> walk g
    | True | False | Atom _ -> ()
  in
  walk rf.formula;
  List.rev !acc

(* --- interval domain over Expr.t ---------------------------------------- *)

(* Just enough of an interval/constant/null-ness domain to reason
   about divisors: [Aconst] tracks exact values (null-ness included),
   [Anum] a numeric range. Getters and captured variables are [Atop] —
   we do not warn about what we cannot bound. *)
type aval = Aconst of Value.t | Anum of float * float | Atop

type div_risk = { divisor : Expr.t; definite : bool }

let to_interval = function
  | Aconst (Value.Int i) -> Some (float_of_int i, float_of_int i)
  | Aconst (Value.Float f) -> Some (f, f)
  | Anum (lo, hi) -> Some (lo, hi)
  | Aconst _ | Atop -> None

let div_risks (e : Expr.t) : div_risk list =
  let risks = ref [] in
  let note divisor bv =
    match bv with
    | Aconst (Value.Int 0) | Aconst (Value.Float 0.) ->
        risks := { divisor; definite = true } :: !risks
    | _ -> (
        match to_interval bv with
        | Some (lo, hi) when lo <= 0. && 0. <= hi ->
            risks := { divisor; definite = false } :: !risks
        | Some _ | None -> ())
  in
  let rec go (e : Expr.t) : aval =
    match e with
    | Const v -> Aconst v
    | Arg | Var _ | Invoke (_, _) ->
        (match e with Invoke (recv, _) -> ignore (go recv) | _ -> ());
        Atop
    | Unop (op, e1) -> (
        let v = go e1 in
        match op, v with
        | Expr.Neg, Anum (lo, hi) -> Anum (-.hi, -.lo)
        | Expr.Neg, Aconst (Value.Int i) -> Aconst (Value.Int (-i))
        | Expr.Neg, Aconst (Value.Float f) -> Aconst (Value.Float (-.f))
        | Expr.Length, _ -> Anum (0., infinity)
        | _, _ -> Atop)
    | Binop (op, a, b) -> (
        let av = go a in
        let bv = go b in
        (match op with Expr.Div | Expr.Mod -> note b bv | _ -> ());
        match op, to_interval av, to_interval bv with
        | Expr.Add, Some (al, ah), Some (bl, bh) -> Anum (al +. bl, ah +. bh)
        | Expr.Sub, Some (al, ah), Some (bl, bh) -> Anum (al -. bh, ah -. bl)
        | Expr.Mul, Some (al, ah), Some (bl, bh) ->
            let ps = [ al *. bl; al *. bh; ah *. bl; ah *. bh ] in
            Anum
              ( List.fold_left min infinity ps,
                List.fold_left max neg_infinity ps )
        | Expr.Mod, _, Some (bl, bh)
          when Float.is_finite bl && Float.is_finite bh ->
            (* |x mod k| < |k| whatever x is. *)
            let m = Float.max (Float.abs bl) (Float.abs bh) in
            Anum (-.m, m)
        | _, _, _ -> Atop)
  in
  ignore (go e);
  List.rev !risks
