(** Deployment model for multi-unit analysis ([pscc lint
    --deployment]): several separately-compiled Java_ps units plus a
    JSON manifest mapping each unit to a broker group.

    Units in the same broker group exchange traffic through one
    filtering host; distinct groups do not. Cross-unit reasoning
    (redundant subscriptions, deployment-dead endpoints, coverage
    gaps, QoS drift between re-declarations of a shared type) runs
    over the merged type lattice built here.

    Manifest shape:
    {[
      { "deployment": "fleet",
        "units": [
          { "name": "market", "file": "market.javaps", "broker": "b1" },
          ... ] }
    ]}
    [file] is resolved relative to the manifest; [broker] defaults to
    ["default"]. *)

type unit_ = {
  u_name : string;  (** manifest name, unique in the deployment *)
  u_file : string;  (** resolved source path *)
  u_broker : string;  (** broker group *)
  u_compiled : Tpbs_psc.Compile.t;
}

type mismatch = {
  m_type : string;  (** type declared differently across units *)
  m_first : string;  (** unit whose declaration won in the merge *)
  m_other : string;  (** unit with the conflicting re-declaration *)
}

type t = {
  d_name : string;
  d_units : unit_ list;  (** manifest order *)
  d_registry : Tpbs_types.Registry.t;
      (** merged lattice; on conflict the first declaration wins, the
          same convergence a broker group's dynamically-grown lattice
          exhibits (first [Advertise] wins) *)
  d_mismatches : mismatch list;  (** conflicts recorded by the merge *)
}

val load : string -> (t, string list) result
(** Parse the manifest, compile every unit, merge the lattices. The
    error list aggregates manifest problems and per-unit compile
    errors (each prefixed with its unit name). *)

val broker_groups : t -> (string * unit_ list) list
(** Units grouped by broker, in first-appearance order. *)
