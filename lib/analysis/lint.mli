(** Whole-program static analysis over a compiled Java_ps program —
    the passes behind [pscc lint] (LP1: catch errors in deferred
    filter code before a subscription ever sees an event).

    Diagnostic codes are stable:

    - [TP001] — unsatisfiable filter: the subscription is dead
    - [TP002] — tautological filter: equivalent to a pure type-based
      subscription (the literal [{ return true; }] idiom is exempt)
    - [TP003] — contradictory conjunction inside a satisfiable filter
      (a dead branch of a disjunction)
    - [TP004] — possible division by zero in a filter ([definite]
      when the divisor is the constant zero)
    - [TP005] — dead publish: no subscription covers the published
      type or any of its supertypes
    - [TP006] — dead subscription: no publish produces the subscribed
      type or a subtype
    - [TP007] — mobility/factoring degradation: the filter demotes
      from [RemoteFilter] to a mobile expression tree or to local
      evaluation (§4.4.3), with the precise reason and a rewrite hint
    - [TP008] — QoS conflict on a declared obvent type: the Fig. 4
      precedence will silently drop semantics at runtime

    All findings are warnings; errors are reserved for compile
    failures (reported by [pscc] itself via {!Tpbs_psc.Compile.compile_result}). *)

type severity = Warning | Error

val severity_name : severity -> string

type diagnostic = {
  code : string;  (** stable code, [TP001]..[TP008] *)
  severity : severity;
  where : string;
      (** program location: ["process/subscription_var"], ["publish
          Cls"], or a type name *)
  message : string;
  hint : string option;  (** suggested rewrite, when one exists *)
}

val analyze : Tpbs_psc.Compile.t -> diagnostic list
(** Run all passes. The result is deterministically sorted by
    (code, where, message). Verdicts on variable-capturing filters are
    skipped (their constants only exist at subscription time; the
    engine re-checks the actually-lifted filter and prunes it there —
    see [Pubsub]). *)

val has_error : diagnostic list -> bool

val exit_code : werror:bool -> diagnostic list -> int
(** [0] clean; [1] warnings present and [werror]; [2] errors. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val pp_report : Format.formatter -> diagnostic list -> unit

val to_json : diagnostic list -> string
(** Stable machine-readable report: a JSON array of objects with
    [code], [severity], [where], [message] and (when present) [hint]
    fields, in {!analyze} order. *)
