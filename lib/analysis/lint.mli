(** Whole-program static analysis over a compiled Java_ps program —
    the passes behind [pscc lint] (LP1: catch errors in deferred
    filter code before a subscription ever sees an event).

    Diagnostic codes are stable:

    - [TP001] — unsatisfiable filter: the subscription is dead
    - [TP002] — tautological filter: equivalent to a pure type-based
      subscription (the literal [{ return true; }] idiom is exempt)
    - [TP003] — contradictory conjunction inside a satisfiable filter
      (a dead branch of a disjunction)
    - [TP004] — possible division by zero in a filter ([definite]
      when the divisor is the constant zero)
    - [TP005] — dead publish: no subscription covers the published
      type or any of its supertypes
    - [TP006] — dead subscription: no publish produces the subscribed
      type or a subtype
    - [TP007] — mobility/factoring degradation: the filter demotes
      from [RemoteFilter] to a mobile expression tree or to local
      evaluation (§4.4.3), with the precise reason and a rewrite hint
    - [TP008] — QoS conflict on a declared obvent type: the Fig. 4
      precedence will silently drop semantics at runtime
    - [TP014] — info: a variable-capturing filter (named variables)
      gets no static verdict; the engine re-checks the lifted filter
      at subscription time

    Deployment-wide codes (from {!analyze_deployment}, over a
    {!Deploy.t} manifest):

    - [TP009] — redundant subscription: a sibling subscription of the
      same process covers it ({!Tpbs_filter.Subsume.covers}), so it
      can never add a delivery
    - [TP010] — deployment-dead publish/subscription: refines
      TP005/TP006 across every unit of the broker group, noting when
      the missing peer exists only in another group
    - [TP011] — coverage gap: conforming obvents of a published class
      match no subscription of the broker group; only reported with a
      machine-checked counterexample obvent in [witness]
    - [TP012] — cross-process QoS mismatch: a type re-declared across
      units where the publisher resolves weaker QoS than a remote
      subscriber assumes
    - [TP013] — info: the broker's covering index will suppress this
      Sub — an earlier forward from the same unit already covers it

    Findings are warnings or info notes; errors are reserved for
    compile failures (reported by [pscc] itself via
    {!Tpbs_psc.Compile.compile_result}). *)

type severity = Info | Warning | Error

val severity_name : severity -> string

type diagnostic = {
  code : string;  (** stable code, [TP001]..[TP014] *)
  severity : severity;
  where : string;
      (** program location: ["process/subscription_var"], ["publish
          Cls"], or a type name; deployment findings prefix the unit
          or broker-group name *)
  message : string;
  hint : string option;  (** suggested rewrite, when one exists *)
  witness : Tpbs_serial.Value.t option;
      (** counterexample obvent, machine-checked against the claim
          (TP011: matches the published class, matches no
          subscription) *)
}

val analyze : Tpbs_psc.Compile.t -> diagnostic list
(** Run all single-unit passes. The result is deterministically sorted
    by (code, where, message). Verdicts on variable-capturing filters
    are skipped (their constants only exist at subscription time; the
    engine re-checks the actually-lifted filter and prunes it there —
    see [Pubsub]) and flagged as TP014. *)

val analyze_deployment : Deploy.t -> diagnostic list
(** Run the per-unit passes on every unit (where-prefixed with the
    unit name, minus TP005/TP006 which TP010 refines) plus the
    deployment-wide passes TP009–TP013, sorted as {!analyze}. *)

val has_error : diagnostic list -> bool

val exit_code : werror:bool -> diagnostic list -> int
(** [0] clean; [1] warnings present and [werror] ([Info] findings
    never gate); [2] errors. *)

val strip_witnesses : diagnostic list -> diagnostic list
(** Drop every [witness] payload (default for [pscc lint] without
    [--witness], keeping reports small and goldens stable). *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val pp_report : Format.formatter -> diagnostic list -> unit

val to_json : diagnostic list -> string
(** Stable machine-readable report: a JSON array of objects with
    [code], [severity], [where], [message] and (when present) [hint]
    and [witness] fields, in {!analyze} order. Witness obvents render
    with their class under a ["class"] key. *)
