type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of obj
  | Remote of remote

and obj = { cls : string; fields : (string * t) list }
and remote = { iface : string; node_id : int; object_id : int }

type kind =
  | Knull
  | Kbool
  | Kint
  | Kfloat
  | Kstring
  | Klist
  | Kobj of string
  | Kremote of string

let kind = function
  | Null -> Knull
  | Bool _ -> Kbool
  | Int _ -> Kint
  | Float _ -> Kfloat
  | Str _ -> Kstring
  | List _ -> Klist
  | Obj o -> Kobj o.cls
  | Remote r -> Kremote r.iface

let kind_name = function
  | Knull -> "null"
  | Kbool -> "bool"
  | Kint -> "int"
  | Kfloat -> "float"
  | Kstring -> "string"
  | Klist -> "list"
  | Kobj c -> "object " ^ c
  | Kremote i -> "remote " ^ i

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | Str x, Str y -> String.equal x y
  | List xs, List ys -> List.equal equal xs ys
  | Obj x, Obj y ->
      String.equal x.cls y.cls
      && List.equal
           (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && equal v1 v2)
           x.fields y.fields
  | Remote x, Remote y ->
      String.equal x.iface y.iface
      && x.node_id = y.node_id
      && x.object_id = y.object_id
  | (Null | Bool _ | Int _ | Float _ | Str _ | List _ | Obj _ | Remote _), _
    -> false

let constructor_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4
  | List _ -> 5
  | Obj _ -> 6
  | Remote _ -> 7

let rec compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Int64.compare (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Str x, Str y -> String.compare x y
  | List xs, List ys -> List.compare compare xs ys
  | Obj x, Obj y ->
      let c = String.compare x.cls y.cls in
      if c <> 0 then c
      else
        List.compare
          (fun (n1, v1) (n2, v2) ->
            let c = String.compare n1 n2 in
            if c <> 0 then c else compare v1 v2)
          x.fields y.fields
  | Remote x, Remote y ->
      let c = String.compare x.iface y.iface in
      if c <> 0 then c
      else
        let c = Int.compare x.node_id y.node_id in
        if c <> 0 then c else Int.compare x.object_id y.object_id
  | _, _ -> Int.compare (constructor_rank a) (constructor_rank b)

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Str s -> Fmt.pf ppf "%S" s
  | List vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp) vs
  | Obj o ->
      let pp_field ppf (n, v) = Fmt.pf ppf "%s=%a" n pp v in
      Fmt.pf ppf "%s{%a}" o.cls Fmt.(list ~sep:(any "; ") pp_field) o.fields
  | Remote r -> Fmt.pf ppf "remote<%s@@%d/%d>" r.iface r.node_id r.object_id

let to_string v = Fmt.str "%a" pp v

let obj cls fields = Obj { cls; fields }

let field v name =
  match v with
  | Obj o -> List.assoc_opt name o.fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ | Remote _ -> None

let rec fold f acc v =
  let acc = f acc v in
  match v with
  | Null | Bool _ | Int _ | Float _ | Str _ | Remote _ -> acc
  | List vs -> List.fold_left (fold f) acc vs
  | Obj o -> List.fold_left (fun acc (_, v) -> fold f acc v) acc o.fields

let weight v = fold (fun n _ -> n + 1) 0 v

let rec depth = function
  | Null | Bool _ | Int _ | Float _ | Str _ | Remote _ -> 1
  | List vs -> 1 + List.fold_left (fun d v -> max d (depth v)) 0 vs
  | Obj o -> 1 + List.fold_left (fun d (_, v) -> max d (depth v)) 0 o.fields
