(** Lazy field-projection decode: a cursor view over an encoded value
    that answers routing and filtering questions without materializing
    the full structure.

    A broker host mostly {e drops} events: its compound filter touches
    a handful of attribute paths, and at low selectivity decoding the
    whole obvent first is almost entirely wasted work. A cursor peeks
    the class id for routing ({!class_id}) and decodes only the paths
    a remote filter actually evaluates ({!project}); everything else
    is skipped in place over the wire bytes (see
    {!Codec.skip_prefix}).

    Every {!project} bumps the ambient [serial.lazy_decodes] trace
    counter and every {!to_value} bumps [serial.cursor_full_decodes],
    so "the broker never fully decoded a dropped event" is a checkable
    property, not a hope. *)

type t

val of_string : string -> t
(** View over one encoded value. O(1): no bytes are inspected yet. *)

val of_substring : string -> off:int -> len:int -> t
(** View over one encoded value living at [bytes.[off .. off+len-1]]
    of a larger buffer — e.g. a payload slice handed out by the frame
    decoder — without extracting the slice. O(1): no bytes are copied
    or inspected.
    @raise Invalid_argument on an out-of-bounds slice. *)

val bytes : t -> string
(** The underlying encoded bytes, unchanged. For a {!of_substring}
    cursor this materializes the slice (one copy). *)

val class_id : t -> string option
(** The class id of the encoded object, decoding only the header.
    [None] when the value is not an object.
    @raise Codec.Decode_error on malformed or truncated input. *)

val project : t -> string list -> Value.t option
(** [project t attrs] decodes the value at the attribute chain
    [attrs] (field names, outermost first), skipping every sibling
    field. [None] when the chain leaves the encoded structure (a
    missing field, or a step into a non-object) — the same answer a
    full decode followed by path navigation would give.
    @raise Codec.Decode_error on malformed or truncated input. *)

val to_value : t -> Value.t
(** Full decode fallback (counted separately: this is the case lazy
    projection exists to avoid).
    @raise Codec.Decode_error on malformed or truncated input. *)

val lazy_decodes : unit -> int
(** Value of the ambient [serial.lazy_decodes] counter. *)

val full_decodes : unit -> int
(** Value of the ambient [serial.cursor_full_decodes] counter. *)
