(** Binary codec for {!Value.t}: the "default serialization mechanism"
    (LM1) that turns obvents and their nested unbound objects into
    wire bytes and back.

    A round trip always allocates fresh structure, which is exactly
    how the paper obtains obvent uniqueness: each subscriber
    deserializes its own clone of the published obvent (§2.1.2). *)

exception Decode_error of string

val encode : Value.t -> string
(** Serialize a value to a self-delimiting byte string. *)

val decode : string -> Value.t
(** Inverse of {!encode}.
    @raise Decode_error on malformed or truncated input. *)

val decode_prefix : Wire.Reader.t -> Value.t
(** Decode one value from the current position of a reader, leaving
    the reader positioned after it (for framed transports). *)

val encode_into : Wire.Writer.t -> Value.t -> unit

val skip_prefix : Wire.Reader.t -> unit
(** Advance the reader past one encoded value without materializing
    it. Allocation-free; the substrate of {!Cursor} projections.
    @raise Decode_error on malformed or truncated input. *)

val obj_header : Wire.Reader.t -> (string * int) option
(** If the value at the reader's position is an object, consume its
    tag, class id and field count and return them, leaving the reader
    at the first field name. [None] (with the tag consumed) for any
    other constructor.
    @raise Wire.Truncated on short input. *)

(** {1 Piecewise encode/decode}

    Assemble or take apart one known value shape around a large byte
    slice without copying it, while the tag bytes stay private to this
    module. This is how the transport encodes a [Deliver] once around
    a shared envelope and parses [Pub]/[Deliver] payloads in place. *)

val encode_list_header : Wire.Writer.t -> int -> unit
(** Write the list tag and arity; follow with that many
    {!encode_into} (or slice) element writes for a byte-identical
    twin of encoding the built-up list. *)

val encode_str_sub : Wire.Writer.t -> string -> pos:int -> len:int -> unit
(** Encode [Str (String.sub s pos len)] without taking the sub. *)

val list_header : Wire.Reader.t -> int option
(** If the value at the reader is a list, consume its tag and return
    the arity, leaving the reader at the first element. [None] (tag
    consumed) otherwise.
    @raise Wire.Truncated on short input. *)

val str_pos : Wire.Reader.t -> (int * int) option
(** If the value at the reader is a string, consume it and return its
    [(pos, len)] within the reader's underlying buffer (positions are
    absolute — see {!Wire.Reader.of_substring}). [None] (tag
    consumed) otherwise.
    @raise Wire.Truncated on short input. *)

val int_prefix : Wire.Reader.t -> int option
(** If the value at the reader is an integer, consume and return it.
    [None] (tag consumed) otherwise.
    @raise Wire.Truncated on short input. *)

val clone : Value.t -> Value.t
(** Deep copy through the codec: structurally equal, physically
    fresh. *)

val encoded_size : Value.t -> int
(** Number of bytes {!encode} would produce. *)

val frame : string -> string
(** Wrap a payload into a checksummed length-prefixed frame, as used
    by the simulated transport. *)

val unframe : string -> string
(** Inverse of {!frame}.
    @raise Decode_error if the length or checksum is wrong. *)
