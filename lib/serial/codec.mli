(** Binary codec for {!Value.t}: the "default serialization mechanism"
    (LM1) that turns obvents and their nested unbound objects into
    wire bytes and back.

    A round trip always allocates fresh structure, which is exactly
    how the paper obtains obvent uniqueness: each subscriber
    deserializes its own clone of the published obvent (§2.1.2). *)

exception Decode_error of string

val encode : Value.t -> string
(** Serialize a value to a self-delimiting byte string. *)

val decode : string -> Value.t
(** Inverse of {!encode}.
    @raise Decode_error on malformed or truncated input. *)

val decode_prefix : Wire.Reader.t -> Value.t
(** Decode one value from the current position of a reader, leaving
    the reader positioned after it (for framed transports). *)

val encode_into : Wire.Writer.t -> Value.t -> unit

val skip_prefix : Wire.Reader.t -> unit
(** Advance the reader past one encoded value without materializing
    it. Allocation-free; the substrate of {!Cursor} projections.
    @raise Decode_error on malformed or truncated input. *)

val obj_header : Wire.Reader.t -> (string * int) option
(** If the value at the reader's position is an object, consume its
    tag, class id and field count and return them, leaving the reader
    at the first field name. [None] (with the tag consumed) for any
    other constructor.
    @raise Wire.Truncated on short input. *)

val clone : Value.t -> Value.t
(** Deep copy through the codec: structurally equal, physically
    fresh. *)

val encoded_size : Value.t -> int
(** Number of bytes {!encode} would produce. *)

val frame : string -> string
(** Wrap a payload into a checksummed length-prefixed frame, as used
    by the simulated transport. *)

val unframe : string -> string
(** Inverse of {!frame}.
    @raise Decode_error if the length or checksum is wrong. *)
