exception Truncated of string
exception Malformed of string

module Writer = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(capacity = 64) () =
    { buf = Bytes.create (max 1 capacity); len = 0 }

  let length w = w.len

  let ensure w n =
    let needed = w.len + n in
    if needed > Bytes.length w.buf then begin
      let cap = ref (Bytes.length w.buf * 2) in
      while !cap < needed do cap := !cap * 2 done;
      let fresh = Bytes.create !cap in
      Bytes.blit w.buf 0 fresh 0 w.len;
      w.buf <- fresh
    end

  let byte w b =
    ensure w 1;
    Bytes.unsafe_set w.buf w.len (Char.chr (b land 0xff));
    w.len <- w.len + 1

  let varint w n =
    if n < 0 then invalid_arg "Wire.Writer.varint: negative";
    let rec loop n =
      if n < 0x80 then byte w n
      else begin
        byte w (n land 0x7f lor 0x80);
        loop (n lsr 7)
      end
    in
    loop n

  (* LEB128 of an int whose bit pattern is interpreted as unsigned:
     uses logical shifts so that "negative" patterns (top bit set)
     terminate. *)
  let uvarint w n =
    let rec loop n =
      if n >= 0 && n < 0x80 then byte w n
      else begin
        byte w (n land 0x7f lor 0x80);
        loop (n lsr 7)
      end
    in
    loop n

  let zigzag w n =
    (* Map signed to unsigned: 0, -1, 1, -2, ... -> 0, 1, 2, 3, ... *)
    uvarint w ((n lsl 1) lxor (n asr 62))

  let f64 w x =
    ensure w 8;
    let bits = Int64.bits_of_float x in
    for i = 0 to 7 do
      let shift = 8 * i in
      let b = Int64.to_int (Int64.shift_right_logical bits shift) land 0xff in
      Bytes.unsafe_set w.buf (w.len + i) (Char.chr b)
    done;
    w.len <- w.len + 8

  let bool w b = byte w (if b then 1 else 0)

  let raw w s =
    let n = String.length s in
    ensure w n;
    Bytes.blit_string s 0 w.buf w.len n;
    w.len <- w.len + n

  let raw_sub w s ~pos ~len =
    if pos < 0 || len < 0 || pos + len > String.length s then
      invalid_arg "Wire.Writer.raw_sub";
    ensure w len;
    Bytes.blit_string s pos w.buf w.len len;
    w.len <- w.len + len

  let string w s =
    varint w (String.length s);
    raw w s

  let string_sub w s ~pos ~len =
    varint w len;
    raw_sub w s ~pos ~len

  let contents w = Bytes.sub_string w.buf 0 w.len
end

module Reader = struct
  type t = { src : string; mutable off : int; limit : int }

  let of_string s = { src = s; off = 0; limit = String.length s }

  (* A bounded view over [s.[off .. off+len-1]] without extracting the
     slice: [pos] stays absolute into [s], so offsets recorded by a
     slicing decoder index the original buffer directly. *)
  let of_substring s ~off ~len =
    if off < 0 || len < 0 || off + len > String.length s then
      invalid_arg "Wire.Reader.of_substring";
    { src = s; off; limit = off + len }

  let pos r = r.off
  let remaining r = r.limit - r.off
  let at_end r = remaining r = 0

  let need r n what =
    if remaining r < n then raise (Truncated what)

  let byte r =
    need r 1 "byte";
    let b = Char.code (String.unsafe_get r.src r.off) in
    r.off <- r.off + 1;
    b

  (* The 9th byte sits at shift 56. A non-negative int has 62 usable
     bits (bit 62 is the sign), so bits 0x40/0x80 there would either
     flip the sign or continue into a 10th byte — both used to be
     absorbed by [(b land 0x7f) lsl shift] dropping the overflowing
     bits, which silently mis-decodes hostile input. Raise instead:
     socket bytes are untrusted. *)
  let varint r =
    let rec loop acc shift =
      let b = byte r in
      if shift = 56 && b land 0xc0 <> 0 then
        raise (Malformed "varint overflow");
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else loop acc (shift + 7)
    in
    loop 0 0

  (* Unsigned companion of {!Writer.uvarint}: the full 63-bit pattern
     is legal (bit 62 set decodes to a "negative" int, which is what
     zigzag wants back), but a 10th byte never is. *)
  let uvarint r =
    let rec loop acc shift =
      let b = byte r in
      if shift = 56 && b land 0x80 <> 0 then
        raise (Malformed "varint overflow");
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else loop acc (shift + 7)
    in
    loop 0 0

  let zigzag r =
    let u = uvarint r in
    (u lsr 1) lxor (- (u land 1))

  let f64 r =
    need r 8 "f64";
    let bits = ref 0L in
    for i = 7 downto 0 do
      let b = Char.code (String.unsafe_get r.src (r.off + i)) in
      bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int b)
    done;
    r.off <- r.off + 8;
    Int64.float_of_bits !bits

  let bool r =
    match byte r with
    | 0 -> false
    | 1 -> true
    | b -> raise (Malformed (Printf.sprintf "bool tag %d" b))

  let raw r n =
    if n < 0 then raise (Malformed "negative length");
    need r n "raw";
    let s = String.sub r.src r.off n in
    r.off <- r.off + n;
    s

  let string r =
    let n = varint r in
    raw r n

  let skip r n =
    if n < 0 then raise (Malformed "negative length");
    need r n "skip";
    r.off <- r.off + n

  let skip_string r =
    let n = varint r in
    skip r n
end

let crc_table =
  lazy
    (let table = Array.make 256 0l in
     for i = 0 to 255 do
       let c = ref (Int32.of_int i) in
       for _ = 0 to 7 do
         c :=
           if Int32.logand !c 1l <> 0l then
             Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else Int32.shift_right_logical !c 1
       done;
       table.(i) <- !c
     done;
     table)

let crc32_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Wire.crc32_sub";
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let ch = String.unsafe_get s i in
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xffl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let crc32 s = crc32_sub s ~pos:0 ~len:(String.length s)
