module Trace = Tpbs_trace.Trace

type t = { bytes : string; off : int; len : int }

(* Ambient-registry counters, re-resolved when the ambient trace
   registry is swapped (benches and tests do this between runs). *)
let cached = ref None

let counters () =
  let tr = Trace.ambient () in
  match !cached with
  | Some (tr', lazy_c, full_c) when tr' == tr -> lazy_c, full_c
  | Some _ | None ->
      let lazy_c = Trace.counter tr "serial.lazy_decodes" in
      let full_c = Trace.counter tr "serial.cursor_full_decodes" in
      cached := Some (tr, lazy_c, full_c);
      lazy_c, full_c

let lazy_decodes () = Trace.Counter.value (fst (counters ()))
let full_decodes () = Trace.Counter.value (snd (counters ()))

let of_string bytes = { bytes; off = 0; len = String.length bytes }

let of_substring bytes ~off ~len =
  if off < 0 || len < 0 || off + len > String.length bytes then
    invalid_arg "Cursor.of_substring";
  { bytes; off; len }

let bytes t =
  if t.off = 0 && t.len = String.length t.bytes then t.bytes
  else String.sub t.bytes t.off t.len

let reader t = Wire.Reader.of_substring t.bytes ~off:t.off ~len:t.len

let wrap f =
  try f () with
  | Wire.Truncated what -> raise (Codec.Decode_error ("truncated: " ^ what))
  | Wire.Malformed what -> raise (Codec.Decode_error ("malformed: " ^ what))

let class_id t =
  wrap (fun () ->
      let r = reader t in
      match Codec.obj_header r with
      | Some (cls, _) -> Some cls
      | None -> None)

(* Walk one attribute chain, decoding only the terminal value: at each
   object along the path, field names are compared in place and the
   values of non-matching fields are skipped, never built. *)
let rec seek r attrs =
  match attrs with
  | [] -> Some (Codec.decode_prefix r)
  | attr :: rest -> (
      match Codec.obj_header r with
      | None -> None
      | Some (_, n) ->
          let rec fields k =
            if k = 0 then None
            else begin
              let name = Wire.Reader.string r in
              if String.equal name attr then seek r rest
              else begin
                Codec.skip_prefix r;
                fields (k - 1)
              end
            end
          in
          fields n)

let project t attrs =
  Trace.Counter.incr (fst (counters ()));
  wrap (fun () -> seek (reader t) attrs)

let to_value t =
  Trace.Counter.incr (snd (counters ()));
  wrap (fun () ->
      let r = reader t in
      let v = Codec.decode_prefix r in
      if not (Wire.Reader.at_end r) then
        raise (Codec.Decode_error "trailing bytes after value");
      v)
