exception Decode_error of string

(* One tag byte per constructor. Kept stable: this is the wire format. *)
let tag_null = 0
let tag_false = 1
let tag_true = 2
let tag_int = 3
let tag_float = 4
let tag_str = 5
let tag_list = 6
let tag_obj = 7
let tag_remote = 8

let rec encode_into w (v : Value.t) =
  let open Wire.Writer in
  match v with
  | Null -> byte w tag_null
  | Bool false -> byte w tag_false
  | Bool true -> byte w tag_true
  | Int i ->
      byte w tag_int;
      zigzag w i
  | Float f ->
      byte w tag_float;
      f64 w f
  | Str s ->
      byte w tag_str;
      string w s
  | List vs ->
      byte w tag_list;
      varint w (List.length vs);
      List.iter (encode_into w) vs
  | Obj o ->
      byte w tag_obj;
      string w o.cls;
      varint w (List.length o.fields);
      List.iter
        (fun (name, v) ->
          string w name;
          encode_into w v)
        o.fields
  | Remote r ->
      byte w tag_remote;
      string w r.iface;
      varint w r.node_id;
      varint w r.object_id

let encode v =
  let w = Wire.Writer.create () in
  encode_into w v;
  Wire.Writer.contents w

let rec decode_prefix r : Value.t =
  let open Wire.Reader in
  let tag = byte r in
  if tag = tag_null then Null
  else if tag = tag_false then Bool false
  else if tag = tag_true then Bool true
  else if tag = tag_int then Int (zigzag r)
  else if tag = tag_float then Float (f64 r)
  else if tag = tag_str then Str (string r)
  else if tag = tag_list then begin
    let n = varint r in
    let rec loop k acc =
      if k = 0 then List.rev acc else loop (k - 1) (decode_prefix r :: acc)
    in
    List (loop n [])
  end
  else if tag = tag_obj then begin
    let cls = string r in
    let n = varint r in
    let rec loop k acc =
      if k = 0 then List.rev acc
      else
        let name = string r in
        let v = decode_prefix r in
        loop (k - 1) ((name, v) :: acc)
    in
    Obj { cls; fields = loop n [] }
  end
  else if tag = tag_remote then begin
    let iface = string r in
    let node_id = varint r in
    let object_id = varint r in
    Remote { iface; node_id; object_id }
  end
  else raise (Decode_error (Printf.sprintf "unknown tag %d" tag))

let decode s =
  let r = Wire.Reader.of_string s in
  match decode_prefix r with
  | v ->
      if not (Wire.Reader.at_end r) then
        raise (Decode_error "trailing bytes after value");
      v
  | exception Wire.Truncated what ->
      raise (Decode_error ("truncated: " ^ what))
  | exception Wire.Malformed what ->
      raise (Decode_error ("malformed: " ^ what))

let decode_prefix r =
  try decode_prefix r with
  | Wire.Truncated what -> raise (Decode_error ("truncated: " ^ what))
  | Wire.Malformed what -> raise (Decode_error ("malformed: " ^ what))

(* --- lazy navigation (see Cursor) ----------------------------------- *)

(* Advance past one encoded value without materializing it: no
   allocation beyond reader bookkeeping, the substrate of lazy
   field-projection decode. *)
let rec skip_prefix r =
  let open Wire.Reader in
  let tag = byte r in
  if tag = tag_null || tag = tag_false || tag = tag_true then ()
  (* Ints are zigzag-encoded: skip with the full-width 63-bit reader —
     the non-negative [varint] would refuse a large zigzag pattern. *)
  else if tag = tag_int then ignore (uvarint r)
  else if tag = tag_float then skip r 8
  else if tag = tag_str then skip_string r
  else if tag = tag_list then begin
    let n = varint r in
    for _ = 1 to n do
      skip_prefix r
    done
  end
  else if tag = tag_obj then begin
    skip_string r;
    let n = varint r in
    for _ = 1 to n do
      skip_string r;
      skip_prefix r
    done
  end
  else if tag = tag_remote then begin
    skip_string r;
    ignore (varint r);
    ignore (varint r)
  end
  else raise (Decode_error (Printf.sprintf "unknown tag %d" tag))

let skip_prefix r =
  try skip_prefix r with
  | Wire.Truncated what -> raise (Decode_error ("truncated: " ^ what))
  | Wire.Malformed what -> raise (Decode_error ("malformed: " ^ what))

(* If the value at the reader is an object, consume its tag, class id
   and field count, leaving the reader at the first field name. *)
let obj_header r =
  let tag = Wire.Reader.byte r in
  if tag = tag_obj then begin
    let cls = Wire.Reader.string r in
    let n = Wire.Reader.varint r in
    Some (cls, n)
  end
  else None

(* --- piecewise encode/decode (see Proto's slice paths) --------------- *)

(* These keep the tag bytes private to this module while letting a
   caller assemble or take apart one known value shape around a large
   byte slice it must not copy. *)

let encode_list_header w n =
  Wire.Writer.byte w tag_list;
  Wire.Writer.varint w n

let encode_str_sub w s ~pos ~len =
  Wire.Writer.byte w tag_str;
  Wire.Writer.string_sub w s ~pos ~len

let list_header r =
  if Wire.Reader.byte r = tag_list then Some (Wire.Reader.varint r)
  else None

let str_pos r =
  if Wire.Reader.byte r = tag_str then begin
    let n = Wire.Reader.varint r in
    let pos = Wire.Reader.pos r in
    Wire.Reader.skip r n;
    Some (pos, n)
  end
  else None

let int_prefix r =
  if Wire.Reader.byte r = tag_int then Some (Wire.Reader.zigzag r)
  else None

let clone v = decode (encode v)
let encoded_size v = String.length (encode v)

let frame payload =
  let w = Wire.Writer.create ~capacity:(String.length payload + 10) () in
  Wire.Writer.varint w (String.length payload);
  Wire.Writer.raw w payload;
  let crc = Wire.crc32 payload in
  Wire.Writer.varint w (Int32.to_int (Int32.logand crc 0xFFFFFFFFl) land 0xFFFFFFFF);
  Wire.Writer.contents w

let unframe s =
  let r = Wire.Reader.of_string s in
  try
    let n = Wire.Reader.varint r in
    let payload = Wire.Reader.raw r n in
    let crc = Wire.Reader.varint r in
    let expect = Int32.to_int (Int32.logand (Wire.crc32 payload) 0xFFFFFFFFl) land 0xFFFFFFFF in
    if crc <> expect then raise (Decode_error "frame checksum mismatch");
    if not (Wire.Reader.at_end r) then raise (Decode_error "frame trailing bytes");
    payload
  with
  | Wire.Truncated what -> raise (Decode_error ("frame truncated: " ^ what))
  | Wire.Malformed what -> raise (Decode_error ("frame malformed: " ^ what))
