(** Dynamic values: the representation of {e unbound objects} (§2.1.1
    of the paper) — locality-independent data that can be serialized
    and transferred to another address space. Obvents carry their
    attributes as values of this type; values can nest further unbound
    objects, and can embed references to remote (bound) objects, which
    is what lets publish/subscribe and RMI work hand in hand (§5.4). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of obj  (** nested application-defined unbound object *)
  | Remote of remote
      (** serialized reference to a bound object exported via RMI *)

and obj = { cls : string;  (** nominal class in the type registry *)
            fields : (string * t) list }

and remote = { iface : string;  (** remote interface name *)
               node_id : int;   (** hosting address space *)
               object_id : int  (** export id within that space *) }

(** Coarse classification of a value, used for dynamic checks. *)
type kind =
  | Knull
  | Kbool
  | Kint
  | Kfloat
  | Kstring
  | Klist
  | Kobj of string
  | Kremote of string

val kind : t -> kind
val kind_name : kind -> string

val equal : t -> t -> bool
(** Structural equality ([Float] compared bitwise so that [nan] equals
    itself, making equality reflexive — needed for dedup tables). *)

val compare : t -> t -> int
(** Total structural order consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val obj : string -> (string * t) list -> t
(** [obj cls fields] builds a nested object value. *)

val field : t -> string -> t option
(** [field v name] projects a field out of an [Obj]; [None] if [v] is
    not an object or lacks the field. *)

val weight : t -> int
(** Structural size: number of constructors, a proxy for "bytes on the
    wire" used by workload generators. *)

val depth : t -> int
(** Maximum nesting depth. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over a value and all its descendants. *)
