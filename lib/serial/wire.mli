(** Low-level wire format: growable write buffers and bounds-checked
    readers, with variable-length integer encodings.

    This is the byte-level substrate of the default serialization
    mechanism (LM1 in the paper): obvents are turned into conveyable
    low-level messages through this module. *)

(** {1 Errors} *)

exception Truncated of string
(** Raised by readers when the input ends before a complete datum. *)

exception Malformed of string
(** Raised by readers on structurally invalid input (e.g. an
    overlong varint or a bad tag). *)

(** {1 Writers} *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Fresh empty buffer. [capacity] is an initial size hint. *)

  val length : t -> int
  (** Number of bytes written so far. *)

  val byte : t -> int -> unit
  (** Append one byte; the argument is masked to 8 bits. *)

  val varint : t -> int -> unit
  (** LEB128 encoding of a non-negative integer. Negative arguments
      are rejected with [Invalid_argument]. *)

  val uvarint : t -> int -> unit
  (** LEB128 of an int whose 63-bit pattern is interpreted as
      unsigned; terminates for "negative" patterns (top bit set). *)

  val zigzag : t -> int -> unit
  (** Signed integer via zigzag + LEB128. *)

  val f64 : t -> float -> unit
  (** IEEE 754 double, little endian. *)

  val bool : t -> bool -> unit

  val string : t -> string -> unit
  (** Length-prefixed byte string. *)

  val raw : t -> string -> unit
  (** Append bytes with no length prefix. *)

  val raw_sub : t -> string -> pos:int -> len:int -> unit
  (** [raw_sub w s ~pos ~len] appends [s.[pos .. pos+len-1]] with no
      length prefix and no intermediate slice allocation.
      @raise Invalid_argument on an out-of-bounds slice. *)

  val string_sub : t -> string -> pos:int -> len:int -> unit
  (** Length-prefixed append of [s.[pos .. pos+len-1]], the
      slice-sourced twin of {!string} — byte-identical output to
      [string w (String.sub s pos len)] without the copy. *)

  val contents : t -> string
  (** Snapshot of everything written so far. *)
end

(** {1 Readers} *)

module Reader : sig
  type t

  val of_string : string -> t
  (** Reader positioned at the start of [s]. *)

  val of_substring : string -> off:int -> len:int -> t
  (** Reader bounded to [s.[off .. off+len-1]] without extracting the
      slice. {!pos} stays absolute into [s], so offsets read off this
      reader index the original buffer — the substrate of zero-copy
      payload views over a framing buffer.
      @raise Invalid_argument on an out-of-bounds slice. *)

  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool

  val byte : t -> int

  val varint : t -> int
  (** Non-negative LEB128.
      @raise Malformed ["varint overflow"] when the encoding carries
      bits past bit 61 (which would flip the sign of a 63-bit int) or
      continues into a 10th byte — hostile input, not a round trip of
      {!Writer.varint}. *)

  val uvarint : t -> int
  (** Unsigned LEB128 over the full 63-bit pattern (inverse of
      {!Writer.uvarint}); only a 10th continuation byte is rejected.
      @raise Malformed ["varint overflow"] on a 10-byte encoding. *)

  val zigzag : t -> int
  val f64 : t -> float
  val bool : t -> bool
  val string : t -> string
  val raw : t -> int -> string
  (** [raw r n] reads exactly [n] bytes. *)

  val skip : t -> int -> unit
  (** [skip r n] advances past [n] bytes without materializing them. *)

  val skip_string : t -> unit
  (** Advance past one length-prefixed byte string, allocation-free. *)
end

val crc32 : string -> int32
(** CRC-32 (IEEE) checksum, used to guard message frames in the
    simulated transport. *)

val crc32_sub : string -> pos:int -> len:int -> int32
(** {!crc32} over [s.[pos .. pos+len-1]] without extracting the slice
    — lets a stream decoder check a frame in place.
    @raise Invalid_argument on an out-of-bounds slice. *)
