(** Low-level wire format: growable write buffers and bounds-checked
    readers, with variable-length integer encodings.

    This is the byte-level substrate of the default serialization
    mechanism (LM1 in the paper): obvents are turned into conveyable
    low-level messages through this module. *)

(** {1 Errors} *)

exception Truncated of string
(** Raised by readers when the input ends before a complete datum. *)

exception Malformed of string
(** Raised by readers on structurally invalid input (e.g. an
    overlong varint or a bad tag). *)

(** {1 Writers} *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Fresh empty buffer. [capacity] is an initial size hint. *)

  val length : t -> int
  (** Number of bytes written so far. *)

  val byte : t -> int -> unit
  (** Append one byte; the argument is masked to 8 bits. *)

  val varint : t -> int -> unit
  (** LEB128 encoding of a non-negative integer. Negative arguments
      are rejected with [Invalid_argument]. *)

  val uvarint : t -> int -> unit
  (** LEB128 of an int whose 63-bit pattern is interpreted as
      unsigned; terminates for "negative" patterns (top bit set). *)

  val zigzag : t -> int -> unit
  (** Signed integer via zigzag + LEB128. *)

  val f64 : t -> float -> unit
  (** IEEE 754 double, little endian. *)

  val bool : t -> bool -> unit

  val string : t -> string -> unit
  (** Length-prefixed byte string. *)

  val raw : t -> string -> unit
  (** Append bytes with no length prefix. *)

  val contents : t -> string
  (** Snapshot of everything written so far. *)
end

(** {1 Readers} *)

module Reader : sig
  type t

  val of_string : string -> t
  (** Reader positioned at the start of [s]. *)

  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool

  val byte : t -> int

  val varint : t -> int
  (** Non-negative LEB128.
      @raise Malformed ["varint overflow"] when the encoding carries
      bits past bit 61 (which would flip the sign of a 63-bit int) or
      continues into a 10th byte — hostile input, not a round trip of
      {!Writer.varint}. *)

  val uvarint : t -> int
  (** Unsigned LEB128 over the full 63-bit pattern (inverse of
      {!Writer.uvarint}); only a 10th continuation byte is rejected.
      @raise Malformed ["varint overflow"] on a 10-byte encoding. *)

  val zigzag : t -> int
  val f64 : t -> float
  val bool : t -> bool
  val string : t -> string
  val raw : t -> int -> string
  (** [raw r n] reads exactly [n] bytes. *)

  val skip : t -> int -> unit
  (** [skip r n] advances past [n] bytes without materializing them. *)

  val skip_string : t -> unit
  (** Advance past one length-prefixed byte string, allocation-free. *)
end

val crc32 : string -> int32
(** CRC-32 (IEEE) checksum, used to guard message frames in the
    simulated transport. *)
