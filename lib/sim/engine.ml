type time = int

(* Binary min-heap on (time, seq): seq breaks ties so that actions
   scheduled first run first — determinism under equal timestamps. *)
type entry = { at : time; seq : int; action : unit -> unit }

type t = {
  mutable heap : entry array;
  mutable size : int;
  mutable clock : time;
  mutable next_seq : int;
  rng : Rng.t;
  mutable tick_barriers : (unit -> unit) list;
      (* joined whenever virtual time is about to advance (and once
         more when the heap drains): the sharded engine parks its
         domain-pool join and group-commit flush here, so parallel
         work of one tick completes before the next tick's actions
         observe it. Empty list = the seed engine's exact loop. *)
}

let dummy = { at = 0; seq = 0; action = (fun () -> ()) }

let create ?(seed = 42) () =
  { heap = Array.make 256 dummy; size = 0; clock = 0; next_seq = 0;
    rng = Rng.create seed; tick_barriers = [] }

let add_tick_barrier t f = t.tick_barriers <- t.tick_barriers @ [ f ]

let now t = t.clock
let rng t = t.rng
let pending t = t.size

let earlier a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let push t e =
  if t.size = Array.length t.heap then begin
    let fresh = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 fresh 0 t.size;
    t.heap <- fresh
  end;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if earlier t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some top
  end

let schedule_at t at action =
  let at = max at t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { at; seq; action }

let schedule t ~delay action = schedule_at t (t.clock + max 0 delay) action

let every t ~period ?(jitter = 0) body =
  if period <= 0 then invalid_arg "Engine.every: non-positive period";
  let rec tick () =
    if body () then begin
      let noise = if jitter > 0 then Rng.int t.rng (2 * jitter) - jitter else 0 in
      schedule t ~delay:(max 1 (period + noise)) tick
    end
  in
  schedule t ~delay:period tick

let step t =
  match pop t with
  | None -> false
  | Some e ->
      t.clock <- e.at;
      e.action ();
      true

let run ?until t =
  let continue = ref true in
  while !continue do
    (* Tick barrier: fires once per clock advancement (the heap top is
       past [clock]) and when the heap drains, before the next action
       runs — a barrier may schedule follow-up work (e.g. publishes
       handed off from pool workers), which the loop then picks up. *)
    (match t.tick_barriers with
    | [] -> ()
    | barriers ->
        if t.size = 0 || t.heap.(0).at > t.clock then
          List.iter (fun f -> f ()) barriers);
    match until with
    | Some limit -> (
        (* Peek: stop before executing an action beyond the horizon. *)
        if t.size = 0 then continue := false
        else if t.heap.(0).at > limit then begin
          t.clock <- limit;
          continue := false
        end
        else ignore (step t))
    | None -> if not (step t) then continue := false
  done
