(** Node-local stable storage: a key–value store that survives node
    crashes (the model of a disk). Certified obvent delivery (§3.1.2)
    and durable subscription identities (§3.4.1: [activate(long id)])
    are built on this. *)

type t

val create : unit -> t
val put : t -> string -> string -> unit
val get : t -> string -> string option
val delete : t -> string -> unit
val keys_with_prefix : t -> string -> string list
(** Sorted. *)

val size : t -> int
