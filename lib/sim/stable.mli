(** Node-local stable storage: a key–value store that survives node
    crashes (the model of a disk). Certified obvent delivery (§3.1.2)
    and durable subscription identities (§3.4.1: [activate(long id)])
    are built on this.

    The type is a seam, not a data structure: {!create} gives the
    in-memory backend (a model disk for pure-sim runs), while {!make}
    lets a real durable backend — the segmented on-disk log in
    [lib/store] — slot in behind the same five operations, so the
    whole certified/pubsub stack exercises real durability without
    changing a line. *)

type t

val create : unit -> t
(** The in-memory backend: survives simulated node crashes, not
    process death. *)

val make :
  ?flush:(unit -> unit) ->
  ?grouped:bool ->
  put:(string -> string -> unit) ->
  get:(string -> string option) ->
  delete:(string -> unit) ->
  keys_with_prefix:(string -> string list) ->
  size:(unit -> int) ->
  unit ->
  t
(** Wrap an external backend. [keys_with_prefix] must return sorted
    keys; [delete] of an absent key must be a no-op. A group-commit
    backend passes [~grouped:true] and a [flush] that pays its
    deferred sync point; the engine then calls {!flush} once per tick
    barrier instead of the backend syncing every record. *)

val put : t -> string -> string -> unit
val get : t -> string -> string option
val delete : t -> string -> unit
val keys_with_prefix : t -> string -> string list
(** Sorted. *)

val size : t -> int

val flush : t -> unit
(** Pay the backend's deferred sync point (group commit); a no-op for
    backends that sync eagerly (and for the in-memory model disk). *)

val grouped : t -> bool
(** Whether this backend defers syncs to {!flush} — the engine only
    registers grouped storages with its tick barrier. *)
