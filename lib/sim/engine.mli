(** Discrete-event simulation core: a virtual clock and an ordered
    queue of pending actions. Single-threaded and deterministic — two
    runs with the same seed execute the same actions in the same
    order. Time is in abstract microsecond ticks. *)

type t

type time = int
(** Virtual microseconds since simulation start. *)

val create : ?seed:int -> unit -> t
(** Fresh simulation at time 0. [seed] (default 42) roots all
    randomness. *)

val now : t -> time
val rng : t -> Rng.t

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Run the action [delay] ticks from now. Negative delays are
    clamped to 0. Actions at equal times run in scheduling order. *)

val schedule_at : t -> time -> (unit -> unit) -> unit
(** Absolute-time variant. Times in the past run "now". *)

val every : t -> period:int -> ?jitter:int -> (unit -> bool) -> unit
(** Periodic action; it keeps rescheduling itself while it returns
    [true]. With [jitter], each period is perturbed uniformly in
    [±jitter]. *)

val step : t -> bool
(** Execute the next pending action; [false] when the queue is
    empty. *)

val run : ?until:time -> t -> unit
(** Drain the queue (or stop once the clock passes [until]; actions
    scheduled later remain queued). *)

val add_tick_barrier : t -> (unit -> unit) -> unit
(** Register a hook that [run] fires once whenever virtual time is
    about to advance, and once more when the heap drains — always
    before the next action executes. The sharded engine joins its
    domain pool and flushes group-committed storage here, so all
    parallel work of one tick is visible before the next tick. A
    barrier may schedule new actions (message hand-off); [run] picks
    them up. With no barriers registered the loop is exactly the seed
    engine's. *)

val pending : t -> int
(** Number of queued actions. *)
