type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create seed = { state = mix64 (Int64.of_int seed) }

let split t =
  let s = next_int64 t in
  { state = mix64 s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Drop two top bits so the result fits OCaml's 63-bit non-negative
     range. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, as in standard doubles. *)
  r /. 9007199254740992.0 *. bound

let bool t p = float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if n <= 0 then []
  else begin
    let all = Array.init n (fun i -> i) in
    shuffle t all;
    Array.to_list (Array.sub all 0 (min k n))
  end

let exponential t mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  -.mean *. log (1.0 -. (u *. 0.999999))
