(** Small numeric summaries used by the experiment harness: online
    mean/min/max plus percentiles over recorded samples. The
    implementation lives in [Tpbs_trace.Histogram]; the equality is
    exposed so histograms can be registered with a trace registry. *)

type t = Tpbs_trace.Histogram.t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val min : t -> float
val max : t -> float
val percentile : t -> float -> float
(** [percentile t 0.99] — nearest-rank percentile; 0 when empty. *)

val stddev : t -> float
val pp : Format.formatter -> t -> unit
