(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice in the simulator — link latency jitter,
    message loss, gossip fanout targets, workload generation — draws
    from one of these generators, so an experiment with a fixed seed
    is reproducible bit for bit. *)

type t

val create : int -> t
(** Generator seeded deterministically from the integer. *)

val split : t -> t
(** Derive an independent generator (for a node or a workload), so
    adding draws in one component does not perturb another. *)

val int : t -> int -> int
(** [int t bound] — uniform in [\[0, bound)]. [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] — uniform in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] — [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] — [k] distinct naturals below
    [n] (all of them if [k >= n]), in random order. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val exponential : t -> float -> float
(** [exponential t mean] — exponentially distributed arrival gaps for
    Poisson workloads. *)
