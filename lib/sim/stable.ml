type t = (string, string) Hashtbl.t

let create () = Hashtbl.create 64
let put t k v = Hashtbl.replace t k v
let get t k = Hashtbl.find_opt t k
let delete t k = Hashtbl.remove t k

let keys_with_prefix t prefix =
  let n = String.length prefix in
  Hashtbl.fold
    (fun k _ acc ->
      if String.length k >= n && String.sub k 0 n = prefix then k :: acc
      else acc)
    t []
  |> List.sort String.compare

let size t = Hashtbl.length t
