(* The stable-storage seam is a record of operations so the durable
   backend is pluggable: the default is the original in-memory model
   of a disk (pure-sim runs, no I/O), while lib/store wraps its
   segmented on-disk log in the same interface for runs that must
   survive a real process kill.

   [flush] is the group-commit hook: a backend that defers its sync
   point (one fsync per engine tick instead of one per record) makes
   [put]/[delete] buffer-only and pays the sync in [flush]; the
   engine calls it at every tick barrier for storages that declare
   [grouped]. The in-memory default has nothing to sync. *)

type t = {
  put : string -> string -> unit;
  get : string -> string option;
  delete : string -> unit;
  keys_with_prefix : string -> string list;
  size : unit -> int;
  flush : unit -> unit;
  grouped : bool;
}

let make ?(flush = fun () -> ()) ?(grouped = false) ~put ~get ~delete
    ~keys_with_prefix ~size () =
  { put; get; delete; keys_with_prefix; size; flush; grouped }

let create () =
  let tbl : (string, string) Hashtbl.t = Hashtbl.create 64 in
  {
    put = Hashtbl.replace tbl;
    get = Hashtbl.find_opt tbl;
    delete = Hashtbl.remove tbl;
    keys_with_prefix =
      (fun prefix ->
        let n = String.length prefix in
        Hashtbl.fold
          (fun k _ acc ->
            if String.length k >= n && String.sub k 0 n = prefix then k :: acc
            else acc)
          tbl []
        |> List.sort String.compare);
    size = (fun () -> Hashtbl.length tbl);
    flush = (fun () -> ());
    grouped = false;
  }

let put t k v = t.put k v
let get t k = t.get k
let delete t k = t.delete k
let keys_with_prefix t prefix = t.keys_with_prefix prefix
let size t = t.size ()
let flush t = t.flush ()
let grouped t = t.grouped
