(* Folded into the observability layer (lib/trace): Metric is the trace
   histogram under its historical name. Welford mean/stddev replaced
   the old sum-of-squares formula, which lost precision catastrophically
   for large-magnitude samples such as absolute sim timestamps. *)
include Tpbs_trace.Histogram
