type node_id = int

type config = { latency : int; jitter : int; loss : float }

let default_config = { latency = 1000; jitter = 200; loss = 0.0 }

type node = {
  mutable alive : bool;
  mutable incarnation : int;
  handlers : (string, node_id -> string -> unit) Hashtbl.t;
}

type stats = {
  sent : int;
  delivered : int;
  dropped_loss : int;
  dropped_crash : int;
  dropped_partition : int;
  dropped_no_handler : int;
  bytes_sent : int;
  bytes_delivered : int;
}

module Trace = Tpbs_trace.Trace

type t = {
  engine : Engine.t;
  config : config;
  mutable nodes : node array;
  mutable n : int;
  mutable groups : int array option;  (* node -> partition group, -1 free *)
  rng : Rng.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_loss : int;
  mutable dropped_crash : int;
  mutable dropped_partition : int;
  mutable dropped_no_handler : int;
  mutable bytes_sent : int;
  mutable bytes_delivered : int;
  tr : Trace.t;
  c_sent : Trace.Counter.t;
  c_delivered : Trace.Counter.t;
  c_drop_loss : Trace.Counter.t;
  c_drop_crash : Trace.Counter.t;
  c_drop_partition : Trace.Counter.t;
  c_drop_no_handler : Trace.Counter.t;
}

let create ?(config = default_config) engine =
  let tr = Trace.ambient () in
  {
    engine;
    config;
    nodes = [||];
    n = 0;
    groups = None;
    rng = Rng.split (Engine.rng engine);
    sent = 0;
    delivered = 0;
    dropped_loss = 0;
    dropped_crash = 0;
    dropped_partition = 0;
    dropped_no_handler = 0;
    bytes_sent = 0;
    bytes_delivered = 0;
    tr;
    c_sent = Trace.counter tr "net.sent";
    c_delivered = Trace.counter tr "net.delivered";
    c_drop_loss = Trace.counter tr "net.dropped_loss";
    c_drop_crash = Trace.counter tr "net.dropped_crash";
    c_drop_partition = Trace.counter tr "net.dropped_partition";
    c_drop_no_handler = Trace.counter tr "net.dropped_no_handler";
  }

let engine t = t.engine
let node_count t = t.n

let add_node t =
  let node = { alive = true; incarnation = 0; handlers = Hashtbl.create 4 } in
  if t.n = Array.length t.nodes then begin
    let fresh =
      Array.make (max 8 (2 * t.n))
        { alive = false; incarnation = 0; handlers = Hashtbl.create 0 }
    in
    Array.blit t.nodes 0 fresh 0 t.n;
    t.nodes <- fresh
  end;
  t.nodes.(t.n) <- node;
  t.n <- t.n + 1;
  t.n - 1

let get t id =
  if id < 0 || id >= t.n then invalid_arg "Net: unknown node id";
  t.nodes.(id)

let alive t id = (get t id).alive

let crash t id =
  let node = get t id in
  node.alive <- false

let recover t id =
  let node = get t id in
  if not node.alive then begin
    node.alive <- true;
    node.incarnation <- node.incarnation + 1
  end

let incarnation t id = (get t id).incarnation

let set_handler t id ~port handler =
  Hashtbl.replace (get t id).handlers port handler

let partition t groups =
  let assignment = Array.make t.n (-1) in
  List.iteri
    (fun gi members -> List.iter (fun id -> assignment.(id) <- gi) members)
    groups;
  t.groups <- Some assignment

let heal t = t.groups <- None

let reachable t a b =
  match t.groups with
  | None -> true
  | Some assignment ->
      let ga = if a < Array.length assignment then assignment.(a) else -1
      and gb = if b < Array.length assignment then assignment.(b) else -1 in
      ga = gb || (ga = -1 && gb = -1)

let schedule_on t id ~delay f =
  let node = get t id in
  let inc = node.incarnation in
  Engine.schedule t.engine ~delay (fun () ->
      if node.alive && node.incarnation = inc then f ())

(* Per-port accounting is opt-in ([Trace.set_detailed]): it costs a
   hashtable lookup per packet, which the micro-benchmarks must not
   pay by default. *)
let port_count t ~port ~suffix =
  if Trace.detailed t.tr then
    Trace.Counter.incr (Trace.counter t.tr ("net.port." ^ port ^ "." ^ suffix))

let send t ~src ~dst ~port payload =
  let source = get t src and target = get t dst in
  ignore target;
  if not source.alive then ()
  else begin
    t.sent <- t.sent + 1;
    t.bytes_sent <- t.bytes_sent + String.length payload;
    Trace.Counter.incr t.c_sent;
    port_count t ~port ~suffix:"sent";
    if t.config.loss > 0. && Rng.bool t.rng t.config.loss then begin
      t.dropped_loss <- t.dropped_loss + 1;
      Trace.Counter.incr t.c_drop_loss;
      port_count t ~port ~suffix:"dropped";
      if Trace.emitting t.tr then
        Trace.emit t.tr ~layer:"net" ~kind:"drop_loss" ~node:dst
          ~data:[ ("port", Trace.S port) ] ()
    end
    else begin
      let delay =
        if src = dst then 1
        else
          t.config.latency
          + (if t.config.jitter > 0 then Rng.int t.rng (2 * t.config.jitter) - t.config.jitter
             else 0)
      in
      Engine.schedule t.engine ~delay:(max 1 delay) (fun () ->
          let node = get t dst in
          if not node.alive then begin
            t.dropped_crash <- t.dropped_crash + 1;
            Trace.Counter.incr t.c_drop_crash;
            port_count t ~port ~suffix:"dropped";
            if Trace.emitting t.tr then
              Trace.emit t.tr ~layer:"net" ~kind:"drop_crash" ~node:dst
                ~data:[ ("port", Trace.S port) ] ()
          end
          else if not (reachable t src dst) then begin
            t.dropped_partition <- t.dropped_partition + 1;
            Trace.Counter.incr t.c_drop_partition;
            port_count t ~port ~suffix:"dropped";
            if Trace.emitting t.tr then
              Trace.emit t.tr ~layer:"net" ~kind:"drop_partition" ~node:dst
                ~data:[ ("port", Trace.S port) ] ()
          end
          else
            match Hashtbl.find_opt node.handlers port with
            | None ->
                (* A live, reachable node with nothing bound on the
                   port: without its own drop bucket, [sent] rises
                   while neither [delivered] nor any [dropped_*] does,
                   silently skewing delivery ratios. *)
                t.dropped_no_handler <- t.dropped_no_handler + 1;
                Trace.Counter.incr t.c_drop_no_handler;
                port_count t ~port ~suffix:"dropped";
                if Trace.emitting t.tr then
                  Trace.emit t.tr ~layer:"net" ~kind:"drop_no_handler"
                    ~node:dst
                    ~data:[ ("port", Trace.S port) ] ()
            | Some handler ->
                t.delivered <- t.delivered + 1;
                t.bytes_delivered <- t.bytes_delivered + String.length payload;
                Trace.Counter.incr t.c_delivered;
                handler src payload)
    end
  end

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped_loss = t.dropped_loss;
    dropped_crash = t.dropped_crash;
    dropped_partition = t.dropped_partition;
    dropped_no_handler = t.dropped_no_handler;
    bytes_sent = t.bytes_sent;
    bytes_delivered = t.bytes_delivered;
  }

let reset_stats t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped_loss <- 0;
  t.dropped_crash <- 0;
  t.dropped_partition <- 0;
  t.dropped_no_handler <- 0;
  t.bytes_sent <- 0;
  t.bytes_delivered <- 0
