(** Simulated message-passing network: the stand-in for the real
    deployment the paper's DACE architecture runs on.

    Nodes model address spaces (the paper's processes). Messages are
    opaque byte strings — everything that crosses a node boundary has
    been through the serialization substrate, which is how the obvent
    uniqueness rules fall out naturally. Links impose latency with
    jitter, can drop messages, nodes can crash and recover, and the
    network can be partitioned — the failure modes the delivery
    semantics of §3.1.2 are defined against. *)

type node_id = int

type config = {
  latency : int;  (** base one-way delay, ticks *)
  jitter : int;  (** uniform ±jitter added per message *)
  loss : float;  (** iid message-loss probability *)
}

val default_config : config
(** 1000-tick latency, ±200 jitter, no loss. *)

type t

val create : ?config:config -> Engine.t -> t
val engine : t -> Engine.t

val add_node : t -> node_id
(** Allocate the next node id. Nodes start alive with no handlers. *)

val node_count : t -> int

val set_handler : t -> node_id -> port:string -> (node_id -> string -> unit) -> unit
(** Install the receive handler for a protocol [port]. The handler is
    called as [handler src payload] at delivery time. Installing a
    handler on a port replaces the previous one. *)

val send : t -> src:node_id -> dst:node_id -> port:string -> string -> unit
(** Fire-and-forget. The message is silently dropped when the source
    or destination is crashed at send/delivery time, when the pair is
    partitioned at delivery time, or when the loss model says so.
    Self-sends are delivered with a minimal local delay. *)

val alive : t -> node_id -> bool
val crash : t -> node_id -> unit
(** In-flight messages to the node are lost; its timers stop firing
    (see {!schedule_on}). *)

val recover : t -> node_id -> unit
(** The node is reachable again with a fresh incarnation: timers from
    before the crash stay dead. *)

val incarnation : t -> node_id -> int

val partition : t -> node_id list list -> unit
(** Install a partition: messages flow only within a group. Nodes
    absent from every group communicate freely with each other. *)

val heal : t -> unit
(** Remove any partition. *)

val reachable : t -> node_id -> node_id -> bool

val schedule_on : t -> node_id -> delay:int -> (unit -> unit) -> unit
(** A node-local timer: fires only if the node is alive {e and} has
    not been through a crash/recover cycle since the timer was set
    (protocol state from a previous incarnation must not leak). *)

(** {1 Accounting} *)

type stats = {
  sent : int;
  delivered : int;
  dropped_loss : int;
  dropped_crash : int;
  dropped_partition : int;
  dropped_no_handler : int;
      (** arrived at a live, reachable node with no handler bound on
          the port (also counted by [net.dropped_no_handler]); every
          sent message lands in exactly one bucket, so
          [sent = delivered + dropped_loss + dropped_crash +
           dropped_partition + dropped_no_handler] *)
  bytes_sent : int;
  bytes_delivered : int;
}

val stats : t -> stats
val reset_stats : t -> unit
