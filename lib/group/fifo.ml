module Net = Tpbs_sim.Net
module Value = Tpbs_serial.Value

type t = {
  rb : Rbcast.t;
  mutable next_send : int;
  expected : (Net.node_id, int) Hashtbl.t;  (* next seq expected per origin *)
  parked : (Net.node_id * int, string) Hashtbl.t;
  deliver : origin:Net.node_id -> string -> unit;
}

let expected_of t origin =
  Option.value ~default:0 (Hashtbl.find_opt t.expected origin)

let rec drain t origin =
  let next = expected_of t origin in
  match Hashtbl.find_opt t.parked (origin, next) with
  | None -> ()
  | Some payload ->
      Hashtbl.remove t.parked (origin, next);
      Hashtbl.replace t.expected origin (next + 1);
      t.deliver ~origin payload;
      drain t origin

let on_receive t ~origin ~tag payload =
  match (tag : Value.t) with
  | Int seq ->
      let next = expected_of t origin in
      if seq < next then () (* stale duplicate *)
      else begin
        Hashtbl.replace t.parked (origin, seq) payload;
        drain t origin
      end
  | _ -> ()

let attach group ~me ~name ~deliver =
  let rb =
    Rbcast.attach group ~me ~name:("fifo:" ^ name)
      ~deliver:(fun ~origin:_ _ -> ())
  in
  let t =
    { rb; next_send = 0; expected = Hashtbl.create 16;
      parked = Hashtbl.create 16; deliver }
  in
  Rbcast.set_tagged_deliver rb (fun ~origin ~tag payload ->
      on_receive t ~origin ~tag payload);
  t

let bcast t payload =
  let seq = t.next_send in
  t.next_send <- seq + 1;
  Rbcast.bcast_tagged t.rb ~tag:(Value.Int seq) payload

let holdback_size t = Hashtbl.length t.parked
