module Net = Tpbs_sim.Net
module Codec = Tpbs_serial.Codec
module Trace = Tpbs_trace.Trace

type t = {
  below : Layer.t;
  mutable next_send : int;
  order : string Seqspace.Order.t;
  mutable deliver : origin:Net.node_id -> string -> unit;
  g_holdback : Trace.Gauge.t;
}

let encode ~seq payload = Codec.encode (List [ Int seq; Str payload ])

let decode bytes =
  match Codec.decode bytes with
  | List [ Int seq; Str payload ] -> Some (seq, payload)
  | _ | (exception Codec.Decode_error _) -> None

let on_receive t ~origin bytes =
  match decode bytes with
  | None -> ()
  | Some (seq, payload) -> (
      match Seqspace.Order.submit t.order ~origin ~seq payload with
      | `Duplicate -> ()
      | `Run run ->
          List.iter (fun p -> t.deliver ~origin p) run;
          Trace.Gauge.set t.g_holdback (Seqspace.Order.parked t.order))

let create below =
  let t =
    {
      below;
      next_send = 0;
      order = Seqspace.Order.create ();
      deliver = Layer.null_deliver;
      g_holdback = Trace.gauge (Trace.ambient ()) "group.fifo.holdback";
    }
  in
  Layer.set_deliver below (fun ~origin bytes -> on_receive t ~origin bytes);
  t

let bcast t payload =
  let seq = t.next_send in
  t.next_send <- seq + 1;
  Layer.send t.below (encode ~seq payload)

let holdback_size t = Seqspace.Order.parked t.order

let layer t =
  Layer.make ~name:"order:fifo"
    ~send:(fun ?self:_ ?except:_ payload -> bcast t payload)
    ~set_deliver:(fun f -> t.deliver <- f)
    ~stats:(fun () -> [ ("fifo.holdback", holdback_size t) ])
    ()

let attach group ~me ~name ~deliver =
  let rb =
    Rbcast.attach group ~me ~name:("fifo:" ^ name) ~deliver:Layer.null_deliver
  in
  let t = create (Rbcast.layer rb) in
  t.deliver <- deliver;
  t
