(* One implementation of per-origin contiguous sequence tracking for
   the whole protocol stack. Every layer that numbers messages per
   origin — the flood's duplicate suppression, FIFO/total/certified
   holdback, the sequencer's submit dedup — used to carry its own copy
   of this machinery; they all reduce to a frontier (everything below
   it handled) plus the out-of-order residue above it, so state is
   bounded by in-flight reordering rather than run length. *)

module Dedup = struct
  type frontier = {
    mutable next : int;  (* all seq < next already witnessed *)
    pending : (int, unit) Hashtbl.t;  (* witnessed, but >= next *)
  }

  type t = {
    origins : (int, frontier) Hashtbl.t;
    mutable residue : int;  (* total out-of-order entries *)
    mutable duplicates : int;
  }

  let create () = { origins = Hashtbl.create 16; residue = 0; duplicates = 0 }

  let frontier_of t origin =
    match Hashtbl.find_opt t.origins origin with
    | Some f -> f
    | None ->
        let f = { next = 0; pending = Hashtbl.create 8 } in
        Hashtbl.add t.origins origin f;
        f

  let witness t ~origin ~seq =
    let f = frontier_of t origin in
    if seq < f.next || Hashtbl.mem f.pending seq then begin
      t.duplicates <- t.duplicates + 1;
      `Duplicate
    end
    else begin
      Hashtbl.add f.pending seq ();
      t.residue <- t.residue + 1;
      while Hashtbl.mem f.pending f.next do
        Hashtbl.remove f.pending f.next;
        t.residue <- t.residue - 1;
        f.next <- f.next + 1
      done;
      `Fresh
    end

  let residue t = t.residue
  let duplicates t = t.duplicates
end

module Order = struct
  type 'a stream = {
    mutable next : int;  (* all seq < next already delivered *)
    parked : (int, 'a) Hashtbl.t;  (* held back, >= next *)
  }

  type 'a t = {
    streams : (int, 'a stream) Hashtbl.t;
    restore : origin:int -> int option;
    persist : origin:int -> next:int -> unit;
    mutable parked_total : int;
    mutable duplicates : int;
  }

  let create ?(restore = fun ~origin:_ -> None)
      ?(persist = fun ~origin:_ ~next:_ -> ()) () =
    {
      streams = Hashtbl.create 16;
      restore;
      persist;
      parked_total = 0;
      duplicates = 0;
    }

  let stream_of t origin =
    match Hashtbl.find_opt t.streams origin with
    | Some s -> s
    | None ->
        let next = Option.value ~default:0 (t.restore ~origin) in
        let s = { next; parked = Hashtbl.create 8 } in
        Hashtbl.add t.streams origin s;
        s

  let expected t ~origin = (stream_of t origin).next

  let submit t ~origin ~seq v =
    let s = stream_of t origin in
    (* A seq below the frontier was already released; a seq already
       parked was already accepted. Both are retransmission echoes:
       replacing a parked payload would let a late duplicate clobber
       the copy awaiting release. *)
    if seq < s.next || Hashtbl.mem s.parked seq then begin
      t.duplicates <- t.duplicates + 1;
      `Duplicate
    end
    else begin
      t.parked_total <- t.parked_total + 1;
      Hashtbl.add s.parked seq v;
      let run = ref [] in
      while Hashtbl.mem s.parked s.next do
        run := Hashtbl.find s.parked s.next :: !run;
        Hashtbl.remove s.parked s.next;
        t.parked_total <- t.parked_total - 1;
        s.next <- s.next + 1
      done;
      let run = List.rev !run in
      (* Persist the frontier before the caller delivers the run:
         certified delivery must survive a crash inside the
         application callback without re-delivering. *)
      if run <> [] then t.persist ~origin ~next:s.next;
      `Run run
    end

  let parked t = t.parked_total
  let duplicates t = t.duplicates
end

module Park = struct
  type 'a t = { mutable held : 'a list }  (* newest first *)

  let create () = { held = [] }
  let add t v = t.held <- v :: t.held
  let size t = List.length t.held

  let rec drain t ~ready ~deliver =
    let go, still = List.partition ready t.held in
    t.held <- still;
    match go with
    | [] -> ()
    | vs ->
        List.iter deliver vs;
        (* Delivery may have unblocked earlier-parked entries. *)
        drain t ~ready ~deliver
end
