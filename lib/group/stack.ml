module Net = Tpbs_sim.Net
module Stable = Tpbs_sim.Stable
module Qos = Tpbs_types.Qos

type transport =
  | Best
  | Gossip_net of Gossip.config * Net.node_id list
  | Custom of Layer.t

type t = {
  layers : Layer.t list;  (* top first *)
  targeted : (dst:Net.node_id -> string -> unit) option;
  certified : Certified.t option;
  shard : int;  (* owning engine shard; each shard has its own
                   Seqspace instances via its own stacks *)
}

let assemble (profile : Qos.profile) ?(transport = Best) ?storage ?retain_acked
    ?(shard = 0) ~group ~me ~name ~deliver () =
  (* Bottom: the certified log is itself a (durable, reliable,
     per-publisher-FIFO) transport and needs unicast acks/sync, so it
     displaces any gossip override. Otherwise the chosen transport. *)
  let bottom, targeted_send, certified =
    if profile.Qos.certified then begin
      let storage =
        match storage with
        | Some s -> s
        | None -> invalid_arg "Stack.assemble: certified profile needs storage"
      in
      let c =
        Certified.attach group ~me ~name ~storage ?retain_acked
          ~deliver:Layer.null_deliver ()
      in
      Certified.layer c, None, Some c
    end
    else
      match transport with
      | Gossip_net (config, seed_view) ->
          let g =
            Gossip.attach ~config group ~me ~name ~seed_view
              ~deliver:Layer.null_deliver
          in
          Gossip.layer g, None, None
      | Custom l -> l, None, None
      | Best ->
          let be =
            Best_effort.attach group ~me ~name ~deliver:Layer.null_deliver
          in
          ( Best_effort.layer be,
            Some (fun ~dst payload -> Best_effort.send_to be ~dst payload),
            None )
  in
  (* Reliability: one shared flood layer, only over the plain
     transport. Certified is already reliable; gossip's epidemic
     redundancy replaces the flood (re-flooding gossip deliveries
     would break its O(fanout) traffic bound); a custom transport
     (e.g. broker routing) brings its own delivery path. *)
  let rel_needed =
    profile.Qos.reliable && not profile.Qos.certified
    && Layer.name bottom = "transport:best"
  in
  let mid =
    if rel_needed then Rbcast.layer (Rbcast.create ~me bottom) else bottom
  in
  (* Ordering: an independent sequencing layer on top. FIFO is
     subsumed by a certified bottom (its durable frontier already
     releases per-publisher contiguous runs). *)
  let top =
    match profile.Qos.order with
    | Qos.No_order -> mid
    | Qos.Fifo ->
        if profile.Qos.certified then mid else Fifo.layer (Fifo.create mid)
    | Qos.Causal -> Causal.layer (Causal.create group ~me mid)
    | Qos.Total -> Total.layer (Total.create group ~me ~name mid)
    | Qos.Causal_total ->
        Total.layer (Total.create ~causal:true group ~me ~name mid)
  in
  Layer.set_deliver top deliver;
  let layers =
    if top == mid then if mid == bottom then [ bottom ] else [ mid; bottom ]
    else if mid == bottom then [ top; bottom ]
    else [ top; mid; bottom ]
  in
  (* Targeted unicast bypasses every layer above the transport, so it
     is only sound when the transport IS the whole stack. *)
  let targeted = if List.length layers = 1 then targeted_send else None in
  { layers; targeted; certified; shard }

let bcast t payload = Layer.send (List.hd t.layers) payload
let targeted t = t.targeted
let certified t = t.certified
let shard t = t.shard
let shape t = List.map Layer.name t.layers

(* Bottom-up, so a re-activated certification layer has re-requested
   sync before the layers above re-arm their own timers. *)
let resume t = List.iter Layer.resume (List.rev t.layers)

let stats t = List.concat_map Layer.stats t.layers
