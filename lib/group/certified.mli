(** Certified obvent delivery (§3.1.2 "Certified"): even if a
    subscriber temporarily disconnects or fails, it eventually
    delivers the obvent.

    Publishers write every message to stable storage before sending
    and keep retransmitting until each group member acknowledges.
    Subscribers record their per-publisher delivery frontier durably
    {e before} acknowledging — an ack therefore certifies "this
    message can never be lost on my side again", which is what lets
    the publisher trim fully-acknowledged entries from its log.
    After a crash, {!resume} re-arms the protocol and asks every
    member for the messages published past the frontier — the
    mechanism behind re-activating a subscription by durable id
    (§3.4.1, [activate(long id)]).

    Delivery is per-publisher FIFO (gap detection needs consecutive
    sequence numbers — so "Certified + FIFOOrder" needs no extra
    layer); cross-publisher order is unconstrained unless an ordering
    layer is stacked on {!layer}.

    With [retain_acked] the log keeps acknowledged history, and
    {!replay} serves it back: a replay subscription receives the
    retained past through its sink and then splices into live
    certified delivery (catch-up-then-live). *)

type t

val attach :
  Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  storage:Tpbs_sim.Stable.t ->
  ?retry_period:int ->
  ?max_backoff:int ->
  ?retain_acked:bool ->
  deliver:(origin:Tpbs_sim.Net.node_id -> string -> unit) ->
  unit ->
  t
(** [retry_period] defaults to 5000 ticks. Unanswered retransmissions
    back off exponentially per message: the delay doubles after each
    attempt up to [max_backoff] x [retry_period] (default cap 8x), so
    a permanently crashed member costs bounded steady-state traffic
    instead of a resend every period forever. [retain_acked] (default
    false) keeps fully-acknowledged log entries for {!replay} instead
    of trimming them.

    Malformed durable state (an unparsable sequence number or
    frontier) is treated as absent, counted in {!state_errors}, and
    reported as a [state_corrupt] trace event — never raised. *)

val bcast : t -> string -> unit
(** Logs durably, then broadcasts; keeps retransmitting to members
    that have not acknowledged. *)

val resume : t -> unit
(** Call after the hosting node recovers from a crash: restarts the
    retransmission timer from the durable log — only past the
    persisted low watermark — and requests missed messages from all
    members. (Timers do not survive crashes; state on disk does.) *)

val replay :
  t ->
  from:int ->
  ?on_complete:(unit -> unit) ->
  sink:(origin:Tpbs_sim.Net.node_id -> seq:int -> string -> unit) ->
  unit ->
  unit
(** Ask every member for its retained log from sequence [from] on.
    History below the live frontier arrives through [sink] (in
    per-origin sequence order); anything at or past the frontier
    splices into normal certified delivery. [on_complete] fires once
    every member's history has been flushed. Requires publishers
    attached with [retain_acked] to see trimmed history; under
    message loss the replay of an origin may stall (best-effort —
    live delivery is unaffected). *)

val unacked : t -> int
(** (message, member) pairs still awaiting acknowledgement. *)

val log_size : t -> int
(** Messages retained in the durable publisher log. *)

val low_watermark : t -> int
(** Every sequence number below this is fully acknowledged (and
    trimmed unless [retain_acked]); persisted across crashes. *)

val retransmits : t -> int
(** Total data retransmissions sent by this instance (excludes the
    initial broadcast and sync replies). *)

val duplicates : t -> int
(** Retransmission echoes rejected by the subscriber-side frontier,
    including re-submissions of still-parked sequence numbers. *)

val replayed : t -> int
(** History records handed to replay sinks by this instance. *)

val state_errors : t -> int
(** Malformed durable values encountered and treated as absent. *)

val timer_wakeups : t -> int
(** Retransmission-timer firings that did work — the timer wakes at
    the earliest pending [next_retry], not every period. *)

val layer : t -> Layer.t
(** This endpoint as the stack's bottom transport (["certified"]):
    durable, reliable, per-publisher FIFO. Its resume hook is
    {!resume}, so {!Stack.resume} re-activates certification through
    the stack. *)
