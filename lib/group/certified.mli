(** Certified obvent delivery (§3.1.2 "Certified"): even if a
    subscriber temporarily disconnects or fails, it eventually
    delivers the obvent.

    Publishers write every message to stable storage before sending
    and keep retransmitting until each group member acknowledges.
    Subscribers record their per-publisher delivery frontier durably;
    after a crash, {!resume} re-arms the protocol and asks every
    member for the messages published past the frontier — the
    mechanism behind re-activating a subscription by durable id
    (§3.4.1, [activate(long id)]).

    Delivery is per-publisher FIFO (gap detection needs consecutive
    sequence numbers — so "Certified + FIFOOrder" needs no extra
    layer); cross-publisher order is unconstrained unless an ordering
    layer is stacked on {!layer}. *)

type t

val attach :
  Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  storage:Tpbs_sim.Stable.t ->
  ?retry_period:int ->
  ?max_backoff:int ->
  deliver:(origin:Tpbs_sim.Net.node_id -> string -> unit) ->
  unit ->
  t
(** [retry_period] defaults to 5000 ticks. Unanswered retransmissions
    back off exponentially per message: the delay doubles after each
    attempt up to [max_backoff] x [retry_period] (default cap 8x), so
    a permanently crashed member costs bounded steady-state traffic
    instead of a resend every period forever. *)

val bcast : t -> string -> unit
(** Logs durably, then broadcasts; keeps retransmitting to members
    that have not acknowledged. *)

val resume : t -> unit
(** Call after the hosting node recovers from a crash: restarts the
    retransmission timer from the durable log and requests missed
    messages from all members. (Timers do not survive crashes; state
    on disk does.) *)

val unacked : t -> int
(** (message, member) pairs still awaiting acknowledgement. *)

val log_size : t -> int
(** Messages retained in the durable publisher log. *)

val retransmits : t -> int
(** Total data retransmissions sent by this instance (excludes the
    initial broadcast and sync replies). *)

val layer : t -> Layer.t
(** This endpoint as the stack's bottom transport (["certified"]):
    durable, reliable, per-publisher FIFO. Its resume hook is
    {!resume}, so {!Stack.resume} re-activates certification through
    the stack. *)
