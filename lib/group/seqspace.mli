(** Per-origin sequence-space bookkeeping, shared by every layer of
    the protocol stack.

    All the stack's guarantees ride on per-origin contiguous sequence
    numbers; what differs per layer is only what happens at the
    frontier. Three views of the same structure:

    - {!Dedup} — "have I seen (origin, seq) before?" for the flood's
      duplicate suppression and the sequencer's submit dedup;
    - {!Order} — holdback delivery: park out-of-order payloads,
      release the contiguous run when a gap fills (FIFO, total-order
      subscribers, certified);
    - {!Park} — predicate holdback for orderings that are not
      sequence-contiguous (vector-clock deliverability).

    In every case state is a frontier plus the out-of-order residue
    above it, so memory is bounded by in-flight reordering, not run
    length. *)

module Dedup : sig
  type t

  val create : unit -> t

  val witness : t -> origin:int -> seq:int -> [ `Fresh | `Duplicate ]
  (** First sighting of [(origin, seq)] is [`Fresh]; any later one is
      [`Duplicate]. *)

  val residue : t -> int
  (** Current out-of-order entries above the frontiers (a gauge). *)

  val duplicates : t -> int
  (** Total [`Duplicate] verdicts (a counter). *)
end

module Order : sig
  type 'a t

  val create :
    ?restore:(origin:int -> int option) ->
    ?persist:(origin:int -> next:int -> unit) ->
    unit ->
    'a t
  (** [restore] seeds an origin's frontier on first sight (certified
      reads it from stable storage; default [None] = 0). [persist] is
      called with the advanced frontier {e before} {!submit} returns a
      non-empty run, so a durable layer commits progress ahead of
      application delivery. *)

  val expected : 'a t -> origin:int -> int
  (** The next in-order sequence number for [origin]. *)

  val submit : 'a t -> origin:int -> seq:int -> 'a -> [ `Duplicate | `Run of 'a list ]
  (** [`Duplicate] if [seq] is below the frontier (already released)
      {e or} already parked — a re-submitted in-flight seq never
      replaces the payload awaiting release. Otherwise parks the value
      and returns the contiguous run now releasable in sequence order
      ([`Run []] when a gap remains). *)

  val parked : 'a t -> int
  (** Values currently held back across all origins (a gauge). *)

  val duplicates : 'a t -> int
  (** Total [`Duplicate] verdicts (a counter): retransmission echoes
      below the frontier plus re-submissions of parked seqs. *)
end

module Park : sig
  type 'a t

  val create : unit -> 'a t
  val add : 'a t -> 'a -> unit
  val size : 'a t -> int

  val drain : 'a t -> ready:('a -> bool) -> deliver:('a -> unit) -> unit
  (** Repeatedly release every held entry satisfying [ready] (newest
      first, as parked) until a fixpoint — delivery typically advances
      the state [ready] consults. *)
end
