(** Assembly of composable protocol stacks from resolved QoS lattice
    points (Fig. 3/4, §3.1.2).

    The paper's delivery semantics compose by multiple subtyping —
    [Certified ∧ FIFOOrder], [TotalOrder ∧ Certified],
    [CausalOrder ∧ TotalOrder] are all legal lattice points — so the
    engine must not pick one monolithic protocol per channel.
    [assemble] maps {e any} resolved {!Tpbs_types.Qos.profile} to an
    Ensemble-style stack of {!Layer}s:

    {v
    [ordering layer?]      order:fifo | order:causal | order:total
                           | order:causal+total
    [reliability layer?]   rel            (flood + shared dedup)
    [bottom transport]     transport:best | transport:gossip
                           | certified    | custom (e.g. broker)
    v}

    Assembly rules, top to bottom:
    - [certified] profiles put the durable {!Certified} log at the
      bottom: it is itself a reliable, per-publisher-FIFO transport
      (and needs unicast acks/sync, so it displaces a gossip
      override).
    - [reliable] adds the shared flood layer ({!Rbcast}) — but only
      over the plain best-effort transport: certified is already
      reliable, gossip substitutes epidemic redundancy (probabilistic
      reliability), and a custom transport owns its delivery path.
    - An [order] profile stacks the matching sequencing layer on top.
      [Fifo] over a certified bottom is subsumed: the durable frontier
      already releases per-publisher contiguous runs, so
      "Certified + FIFOOrder" is exactly the certified layer.

    All per-origin frontier/holdback/dedup bookkeeping inside the
    layers is the one shared {!Seqspace} implementation. *)

type transport =
  | Best  (** one datagram per member ({!Best_effort}) *)
  | Gossip_net of Gossip.config * Tpbs_sim.Net.node_id list
      (** lpbcast epidemic with the given config and seed view *)
  | Custom of Layer.t
      (** caller-supplied bottom (e.g. the engine's broker routing) *)

type t

val assemble :
  Tpbs_types.Qos.profile ->
  ?transport:transport ->
  ?storage:Tpbs_sim.Stable.t ->
  ?retain_acked:bool ->
  ?shard:int ->
  group:Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  deliver:(origin:Tpbs_sim.Net.node_id -> string -> unit) ->
  unit ->
  t
(** Build this member's endpoint of the stack for channel [name].
    [transport] (default {!Best}) picks the bottom for non-certified
    profiles. [storage] backs the certified log/frontier;
    [retain_acked] keeps acknowledged certified history for replay
    subscriptions instead of trimming it. [shard] (default 0) records
    the engine shard owning this channel — every Seqspace instance in
    the stack is thereby shard-local, since stacks are per-channel
    and channels are partitioned by shard.
    @raise Invalid_argument if the profile is certified and no
    [storage] is given. *)

val bcast : t -> string -> unit
(** Publish through the top of the stack. *)

val targeted : t -> (dst:Tpbs_sim.Net.node_id -> string -> unit) option
(** Unicast to a chosen member, bypassing dissemination — [Some] only
    when the stack is exactly the best-effort transport (any layer
    above would be cut out of the path), which is when
    subscription-aware targeted dissemination is sound. *)

val certified : t -> Certified.t option
(** The certified bottom, when the profile has one — the handle for
    {!Certified.replay} (replay subscriptions) and log accounting. *)

val shard : t -> int
(** The engine shard this channel (and its Seqspace state) belongs to. *)

val resume : t -> unit
(** Crash-recovery: run every layer's resume hook bottom-up
    (certified re-activation, then ordering-layer retry timers). *)

val shape : t -> string list
(** Layer names, top first — e.g.
    [["order:total"; "rel"; "transport:best"]]. Asserted by the
    composition-matrix tests. *)

val stats : t -> (string * int) list
(** Concatenated gauge exposure of every layer, top first. *)
