(** Lightweight probabilistic broadcast (lpbcast, [EGH+01]) — the
    gossip-based end of DACE's protocol spectrum (§4.2): weaker
    guarantees, strong focus on scalability.

    Each member keeps a bounded {e partial view} of the group and a
    bounded buffer of recent events. Every gossip period it sends its
    fresh events (plus a sample of its view, which is how membership
    information itself spreads epidemically) to [fanout] members drawn
    from its view. Events retire after [rounds_ttl] periods and the
    buffer is capped, so per-node state is O(view + buffer) no matter
    the group size — the trade being probabilistic delivery, measured
    in experiment E5 against fanout and system size. *)

type config = {
  fanout : int;  (** gossip targets per round *)
  view_size : int;  (** partial view bound *)
  buffer_size : int;  (** event buffer bound *)
  rounds_ttl : int;  (** rounds an event stays gossipable *)
  period : int;  (** ticks between rounds *)
  pull : bool;
      (** lpbcast's id digests + retrieval: receivers ask the gossiper
          for events they only know by id. Disabling this is the
          push-only ablation measured by the bench harness. *)
}

val default_config : config
(** fanout 3, view 12, buffer 64, ttl 5, period 2000, pull on. *)

type t

val attach :
  ?config:config ->
  Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  seed_view:Tpbs_sim.Net.node_id list ->
  deliver:(origin:Tpbs_sim.Net.node_id -> string -> unit) ->
  t
(** [seed_view] bootstraps the partial view (e.g. a few contact
    nodes); it is refreshed epidemically afterwards. The gossip timer
    starts immediately. *)

val bcast : t -> string -> unit
val view : t -> Tpbs_sim.Net.node_id list
val delivered_count : t -> int

val seen_size : t -> int
(** Live entries in the duplicate-suppression table. Bounded: ids
    retire 12x [rounds_ttl] rounds after first sight (well past the
    archive's 4x horizon, so retiring cannot cause re-delivery), which
    makes per-node state O(view + buffer + recent ids) instead of
    growing with the whole run's event count. *)

val stop : t -> unit
(** Stop gossiping (the node leaves the epidemic). *)

val layer : t -> Layer.t
(** This endpoint as the stack's bottom transport
    (["transport:gossip"]). Stacking an ordering layer on it yields
    probabilistically-reliable ordered delivery: no inversions, but
    gaps are possible — the flood-based reliability layer is
    {e not} stacked over gossip (re-flooding every gossip delivery
    would defeat the epidemic's O(fanout) per-round traffic). *)
