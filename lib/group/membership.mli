(** Static group membership: the set of address spaces participating
    in one dissemination channel (a DACE "multicast class", §4.2).

    The paper's architecture maps every obvent class to a multicast
    group; protocols in this library are parameterized by such a
    group. Membership here is fixed at creation — dynamic
    subscription/unsubscription is handled one level up by the
    engine's channel bookkeeping, while gossip ({!Gossip}) maintains
    its own partial views underneath. *)

type t

val create : Tpbs_sim.Net.t -> Tpbs_sim.Net.node_id list -> t
(** @raise Invalid_argument on duplicate members. *)

val net : t -> Tpbs_sim.Net.t
val members : t -> Tpbs_sim.Net.node_id array
val size : t -> int

val rank : t -> Tpbs_sim.Net.node_id -> int
(** Dense index of a member, used by vector clocks.
    @raise Not_found for non-members. *)

val is_member : t -> Tpbs_sim.Net.node_id -> bool

val others : t -> Tpbs_sim.Net.node_id -> Tpbs_sim.Net.node_id list
(** All members except the given one. *)
