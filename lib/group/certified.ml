module Net = Tpbs_sim.Net
module Engine = Tpbs_sim.Engine
module Stable = Tpbs_sim.Stable
module Codec = Tpbs_serial.Codec
module Trace = Tpbs_trace.Trace

(* Retransmission state per logged message. A member that never acks
   (e.g. permanently crashed) must not be flooded every retry_period
   forever: each unanswered attempt doubles the retry delay up to
   [max_backoff] x retry_period. The durable log is untouched — a
   recovering member still pulls everything via sync. *)
type waiting_entry = {
  missing : (Net.node_id, unit) Hashtbl.t;
  mutable attempts : int;
  mutable next_retry : int;  (* absolute engine time of the next resend *)
}

type t = {
  group : Membership.t;
  me : Net.node_id;
  name : string;
  storage : Stable.t;
  retry_period : int;
  max_backoff : int;  (* cap on the retry-delay multiplier *)
  data_port : string;
  ack_port : string;
  sync_port : string;
  (* publisher side (in-memory; rebuilt pessimistically on resume) *)
  mutable next_seq : int;
  waiting : (int, waiting_entry) Hashtbl.t;
      (* seq -> members that have not acked, plus retry bookkeeping *)
  (* subscriber side: holdback over the durable per-publisher frontier *)
  order : string Seqspace.Order.t;
  mutable deliver : origin:Net.node_id -> string -> unit;
  mutable timer_armed : bool;
  mutable rtx : int;  (* total data retransmissions by this instance *)
  c_retransmits : Trace.Counter.t;
  c_rounds : Trace.Counter.t;
  g_unacked : Trace.Gauge.t;
}

let log_key t seq = Printf.sprintf "cert:%s:log:%d" t.name seq
let next_key t = Printf.sprintf "cert:%s:next" t.name

let frontier_key name origin = Printf.sprintf "cert:%s:exp:%d" name origin

let encode_data ~origin ~seq payload =
  Codec.encode (List [ Int origin; Int seq; Str payload ])

let decode_data bytes =
  match Codec.decode bytes with
  | List [ Int origin; Int seq; Str payload ] -> Some (origin, seq, payload)
  | _ | (exception Codec.Decode_error _) -> None

let net t = Membership.net t.group

let send_data t ~dst ~seq payload =
  Net.send (net t) ~src:t.me ~dst ~port:t.data_port
    (encode_data ~origin:t.me ~seq payload)

let send_ack t ~dst ~seq =
  Net.send (net t) ~src:t.me ~dst ~port:t.ack_port
    (Codec.encode (Int seq))

(* --- retransmission ------------------------------------------------- *)

let update_unacked t =
  Trace.Gauge.set t.g_unacked
    (Hashtbl.fold
       (fun _ e acc -> acc + Hashtbl.length e.missing)
       t.waiting 0)

let retransmit_round t =
  let now = Engine.now (Net.engine (net t)) in
  let resent = ref false in
  Hashtbl.iter
    (fun seq e ->
      if e.next_retry <= now then
        match Stable.get t.storage (log_key t seq) with
        | None -> ()
        | Some payload ->
            Hashtbl.iter
              (fun dst () ->
                send_data t ~dst ~seq payload;
                t.rtx <- t.rtx + 1;
                Trace.Counter.incr t.c_retransmits)
              e.missing;
            if Hashtbl.length e.missing > 0 then resent := true;
            e.attempts <- e.attempts + 1;
            let mult =
              Stdlib.min t.max_backoff (1 lsl Stdlib.min 30 e.attempts)
            in
            e.next_retry <- now + (t.retry_period * mult))
    t.waiting;
  if !resent then Trace.Counter.incr t.c_rounds

let rec arm_timer t =
  if not t.timer_armed then begin
    t.timer_armed <- true;
    Net.schedule_on (net t) t.me ~delay:t.retry_period (fun () ->
        t.timer_armed <- false;
        if Hashtbl.length t.waiting > 0 then begin
          retransmit_round t;
          arm_timer t
        end)
  end

(* --- receive paths --------------------------------------------------- *)

let on_data t bytes =
  match decode_data bytes with
  | None -> ()
  | Some (origin, seq, payload) -> (
      (* Always (re-)ack: the publisher may have lost our ack. *)
      send_ack t ~dst:origin ~seq;
      (* The frontier is persisted before delivery (the Order's
         persist hook), so a crash inside the application callback
         cannot cause re-delivery after sync. *)
      match Seqspace.Order.submit t.order ~origin ~seq payload with
      | `Duplicate -> ()
      | `Run run -> List.iter (fun p -> t.deliver ~origin p) run)

let on_ack t src bytes =
  match Codec.decode bytes with
  | Int seq -> (
      match Hashtbl.find_opt t.waiting seq with
      | None -> ()
      | Some e ->
          Hashtbl.remove e.missing src;
          if Hashtbl.length e.missing = 0 then Hashtbl.remove t.waiting seq;
          update_unacked t)
  | _ | (exception Codec.Decode_error _) -> ()

let on_sync t src bytes =
  (* A member recovered and asks for everything from [from_seq] on. *)
  match Codec.decode bytes with
  | Int from_seq ->
      for seq = from_seq to t.next_seq - 1 do
        match Stable.get t.storage (log_key t seq) with
        | Some payload -> send_data t ~dst:src ~seq payload
        | None -> ()
      done
  | _ | (exception Codec.Decode_error _) -> ()

(* --- lifecycle -------------------------------------------------------- *)

let request_sync t =
  Array.iter
    (fun dst ->
      if dst <> t.me then
        Net.send (net t) ~src:t.me ~dst ~port:t.sync_port
          (Codec.encode (Int (Seqspace.Order.expected t.order ~origin:dst))))
    (Membership.members t.group)

let attach group ~me ~name ~storage ?(retry_period = 5000) ?(max_backoff = 8)
    ~deliver () =
  if max_backoff < 1 then invalid_arg "Certified.attach: max_backoff < 1";
  let tr = Trace.ambient () in
  let t =
    {
      group;
      me;
      name;
      storage;
      retry_period;
      max_backoff;
      data_port = "cert:" ^ name;
      ack_port = "cert-ack:" ^ name;
      sync_port = "cert-sync:" ^ name;
      next_seq =
        (match Stable.get storage (Printf.sprintf "cert:%s:next" name) with
        | Some s -> int_of_string s
        | None -> 0);
      waiting = Hashtbl.create 16;
      order =
        Seqspace.Order.create
          ~restore:(fun ~origin ->
            Option.map int_of_string
              (Stable.get storage (frontier_key name origin)))
          ~persist:(fun ~origin ~next ->
            Stable.put storage (frontier_key name origin) (string_of_int next))
          ();
      deliver;
      timer_armed = false;
      rtx = 0;
      c_retransmits = Trace.counter tr "group.certified.retransmits";
      c_rounds = Trace.counter tr "group.certified.retransmit_rounds";
      g_unacked = Trace.gauge tr "group.certified.unacked";
    }
  in
  let n = net t in
  Net.set_handler n me ~port:t.data_port (fun _src bytes -> on_data t bytes);
  Net.set_handler n me ~port:t.ack_port (fun src bytes -> on_ack t src bytes);
  Net.set_handler n me ~port:t.sync_port (fun src bytes -> on_sync t src bytes);
  t

let bcast t payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* Log before the first send: certified means the message survives
     our own crash. *)
  Stable.put t.storage (log_key t seq) payload;
  Stable.put t.storage (next_key t) (string_of_int t.next_seq);
  let missing = Hashtbl.create 8 in
  Array.iter
    (fun dst -> if dst <> t.me then Hashtbl.replace missing dst ())
    (Membership.members t.group);
  if Hashtbl.length missing > 0 then
    Hashtbl.replace t.waiting seq
      {
        missing;
        attempts = 0;
        next_retry = Engine.now (Net.engine (net t)) + t.retry_period;
      };
  (* Local delivery goes through the same frontier bookkeeping. *)
  on_data t (encode_data ~origin:t.me ~seq payload);
  Array.iter
    (fun dst -> if dst <> t.me then send_data t ~dst ~seq payload)
    (Membership.members t.group);
  update_unacked t;
  arm_timer t

let resume t =
  t.timer_armed <- false;
  (* Pessimistically assume nobody acked anything we logged. *)
  Hashtbl.reset t.waiting;
  t.next_seq <-
    (match Stable.get t.storage (next_key t) with
    | Some s -> int_of_string s
    | None -> 0);
  for seq = 0 to t.next_seq - 1 do
    if Stable.get t.storage (log_key t seq) <> None then begin
      let missing = Hashtbl.create 8 in
      Array.iter
        (fun dst -> if dst <> t.me then Hashtbl.replace missing dst ())
        (Membership.members t.group);
      if Hashtbl.length missing > 0 then
        Hashtbl.replace t.waiting seq
          { missing; attempts = 0; next_retry = 0 }
    end
  done;
  update_unacked t;
  if Hashtbl.length t.waiting > 0 then begin
    retransmit_round t;
    arm_timer t
  end;
  request_sync t

let unacked t =
  Hashtbl.fold (fun _ e acc -> acc + Hashtbl.length e.missing) t.waiting 0

let retransmits t = t.rtx

let log_size t =
  List.length (Stable.keys_with_prefix t.storage (Printf.sprintf "cert:%s:log:" t.name))

let layer t =
  Layer.make ~name:"certified"
    ~send:(fun ?self:_ ?except:_ payload -> bcast t payload)
    ~set_deliver:(fun f -> t.deliver <- f)
    ~resume:(fun () -> resume t)
    ~stats:(fun () ->
      [ ("certified.unacked", unacked t);
        ("certified.retransmits", retransmits t);
        ("certified.holdback", Seqspace.Order.parked t.order) ])
    ()
