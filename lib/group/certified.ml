module Net = Tpbs_sim.Net
module Stable = Tpbs_sim.Stable
module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec

type t = {
  group : Membership.t;
  me : Net.node_id;
  name : string;
  storage : Stable.t;
  retry_period : int;
  data_port : string;
  ack_port : string;
  sync_port : string;
  (* publisher side (in-memory; rebuilt pessimistically on resume) *)
  mutable next_seq : int;
  waiting : (int, (Net.node_id, unit) Hashtbl.t) Hashtbl.t;
      (* seq -> members that have not acked *)
  (* subscriber side *)
  expected : (Net.node_id, int) Hashtbl.t;  (* mirror of durable frontier *)
  parked : (Net.node_id * int, string) Hashtbl.t;
  deliver : origin:Net.node_id -> string -> unit;
  mutable timer_armed : bool;
}

let log_key t seq = Printf.sprintf "cert:%s:log:%d" t.name seq
let next_key t = Printf.sprintf "cert:%s:next" t.name
let frontier_key t origin = Printf.sprintf "cert:%s:exp:%d" t.name origin

let encode_data ~origin ~seq payload =
  Codec.encode (List [ Int origin; Int seq; Str payload ])

let decode_data bytes =
  match Codec.decode bytes with
  | List [ Int origin; Int seq; Str payload ] -> Some (origin, seq, payload)
  | _ | (exception Codec.Decode_error _) -> None

let net t = Membership.net t.group

let send_data t ~dst ~seq payload =
  Net.send (net t) ~src:t.me ~dst ~port:t.data_port
    (encode_data ~origin:t.me ~seq payload)

let send_ack t ~dst ~seq =
  Net.send (net t) ~src:t.me ~dst ~port:t.ack_port
    (Codec.encode (Int seq))

(* --- durable frontier ---------------------------------------------- *)

let expected_of t origin =
  match Hashtbl.find_opt t.expected origin with
  | Some e -> e
  | None -> (
      match Stable.get t.storage (frontier_key t origin) with
      | Some s ->
          let e = int_of_string s in
          Hashtbl.replace t.expected origin e;
          e
      | None -> 0)

let advance_frontier t origin e =
  Hashtbl.replace t.expected origin e;
  Stable.put t.storage (frontier_key t origin) (string_of_int e)

(* --- retransmission ------------------------------------------------- *)

let retransmit_round t =
  Hashtbl.iter
    (fun seq missing ->
      match Stable.get t.storage (log_key t seq) with
      | None -> ()
      | Some payload ->
          Hashtbl.iter (fun dst () -> send_data t ~dst ~seq payload) missing)
    t.waiting

let rec arm_timer t =
  if not t.timer_armed then begin
    t.timer_armed <- true;
    Net.schedule_on (net t) t.me ~delay:t.retry_period (fun () ->
        t.timer_armed <- false;
        if Hashtbl.length t.waiting > 0 then begin
          retransmit_round t;
          arm_timer t
        end)
  end

(* --- receive paths --------------------------------------------------- *)

let rec drain t origin =
  let e = expected_of t origin in
  match Hashtbl.find_opt t.parked (origin, e) with
  | None -> ()
  | Some payload ->
      Hashtbl.remove t.parked (origin, e);
      advance_frontier t origin (e + 1);
      t.deliver ~origin payload;
      drain t origin

let on_data t bytes =
  match decode_data bytes with
  | None -> ()
  | Some (origin, seq, payload) ->
      (* Always (re-)ack: the publisher may have lost our ack. *)
      send_ack t ~dst:origin ~seq;
      let e = expected_of t origin in
      if seq >= e then begin
        Hashtbl.replace t.parked (origin, seq) payload;
        drain t origin
      end

let on_ack t src bytes =
  match Codec.decode bytes with
  | Int seq -> (
      match Hashtbl.find_opt t.waiting seq with
      | None -> ()
      | Some missing ->
          Hashtbl.remove missing src;
          if Hashtbl.length missing = 0 then Hashtbl.remove t.waiting seq)
  | _ | (exception Codec.Decode_error _) -> ()

let on_sync t src bytes =
  (* A member recovered and asks for everything from [from_seq] on. *)
  match Codec.decode bytes with
  | Int from_seq ->
      for seq = from_seq to t.next_seq - 1 do
        match Stable.get t.storage (log_key t seq) with
        | Some payload -> send_data t ~dst:src ~seq payload
        | None -> ()
      done
  | _ | (exception Codec.Decode_error _) -> ()

(* --- lifecycle -------------------------------------------------------- *)

let request_sync t =
  Array.iter
    (fun dst ->
      if dst <> t.me then
        Net.send (net t) ~src:t.me ~dst ~port:t.sync_port
          (Codec.encode (Int (expected_of t dst))))
    (Membership.members t.group)

let attach group ~me ~name ~storage ?(retry_period = 5000) ~deliver () =
  let t =
    {
      group;
      me;
      name;
      storage;
      retry_period;
      data_port = "cert:" ^ name;
      ack_port = "cert-ack:" ^ name;
      sync_port = "cert-sync:" ^ name;
      next_seq =
        (match Stable.get storage (Printf.sprintf "cert:%s:next" name) with
        | Some s -> int_of_string s
        | None -> 0);
      waiting = Hashtbl.create 16;
      expected = Hashtbl.create 16;
      parked = Hashtbl.create 16;
      deliver;
      timer_armed = false;
    }
  in
  let n = net t in
  Net.set_handler n me ~port:t.data_port (fun _src bytes -> on_data t bytes);
  Net.set_handler n me ~port:t.ack_port (fun src bytes -> on_ack t src bytes);
  Net.set_handler n me ~port:t.sync_port (fun src bytes -> on_sync t src bytes);
  t

let bcast t payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* Log before the first send: certified means the message survives
     our own crash. *)
  Stable.put t.storage (log_key t seq) payload;
  Stable.put t.storage (next_key t) (string_of_int t.next_seq);
  let missing = Hashtbl.create 8 in
  Array.iter
    (fun dst -> if dst <> t.me then Hashtbl.replace missing dst ())
    (Membership.members t.group);
  if Hashtbl.length missing > 0 then Hashtbl.replace t.waiting seq missing;
  (* Local delivery goes through the same frontier bookkeeping. *)
  on_data t (encode_data ~origin:t.me ~seq payload);
  Array.iter
    (fun dst -> if dst <> t.me then send_data t ~dst ~seq payload)
    (Membership.members t.group);
  arm_timer t

let resume t =
  t.timer_armed <- false;
  (* Pessimistically assume nobody acked anything we logged. *)
  Hashtbl.reset t.waiting;
  t.next_seq <-
    (match Stable.get t.storage (next_key t) with
    | Some s -> int_of_string s
    | None -> 0);
  for seq = 0 to t.next_seq - 1 do
    if Stable.get t.storage (log_key t seq) <> None then begin
      let missing = Hashtbl.create 8 in
      Array.iter
        (fun dst -> if dst <> t.me then Hashtbl.replace missing dst ())
        (Membership.members t.group);
      if Hashtbl.length missing > 0 then Hashtbl.replace t.waiting seq missing
    end
  done;
  if Hashtbl.length t.waiting > 0 then begin
    retransmit_round t;
    arm_timer t
  end;
  request_sync t

let unacked t =
  Hashtbl.fold (fun _ missing acc -> acc + Hashtbl.length missing) t.waiting 0

let log_size t =
  List.length (Stable.keys_with_prefix t.storage (Printf.sprintf "cert:%s:log:" t.name))
