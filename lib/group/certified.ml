module Net = Tpbs_sim.Net
module Engine = Tpbs_sim.Engine
module Stable = Tpbs_sim.Stable
module Codec = Tpbs_serial.Codec
module Trace = Tpbs_trace.Trace

(* Retransmission state per logged message. A member that never acks
   (e.g. permanently crashed) must not be flooded every retry_period
   forever: each unanswered attempt doubles the retry delay up to
   [max_backoff] x retry_period. A recovering member still pulls
   everything past its durable frontier via sync. *)
type waiting_entry = {
  missing : (Net.node_id, unit) Hashtbl.t;
  mutable attempts : int;
  mutable next_retry : int;  (* absolute engine time of the next resend *)
}

type replay_state = {
  sink : origin:Net.node_id -> seq:int -> string -> unit;
  on_complete : unit -> unit;
  buf : (Net.node_id, (int * string) list ref) Hashtbl.t;
      (* per-origin records received so far, unordered *)
  counts : (Net.node_id, int) Hashtbl.t;
      (* per-origin served-record count from the end marker *)
  mutable pending : int;  (* remote origins not yet flushed *)
}

type t = {
  group : Membership.t;
  me : Net.node_id;
  name : string;
  storage : Stable.t;
  retry_period : int;
  max_backoff : int;  (* cap on the retry-delay multiplier *)
  retain_acked : bool;
  data_port : string;
  ack_port : string;
  sync_port : string;
  replay_req_port : string;
  replay_data_port : string;
  (* publisher side (in-memory; rebuilt pessimistically on resume) *)
  mutable next_seq : int;
  mutable lwm : int;
      (* low watermark: every seq below it is fully acked (durable) *)
  acked : (int, unit) Hashtbl.t;  (* fully acked, >= lwm *)
  waiting : (int, waiting_entry) Hashtbl.t;
      (* seq -> members that have not acked, plus retry bookkeeping *)
  (* subscriber side: holdback over the durable per-publisher frontier *)
  order : string Seqspace.Order.t;
  mutable deliver : origin:Net.node_id -> string -> unit;
  (* earliest-deadline retransmission timer *)
  mutable timer_armed : bool;
  mutable timer_at : int;  (* absolute wakeup time, valid when armed *)
  mutable timer_gen : int;  (* invalidates superseded wakeups *)
  mutable wakeups : int;  (* timer firings that did work *)
  (* replay subscriptions *)
  mutable next_rid : int;
  replays : (int, replay_state) Hashtbl.t;
  mutable replayed : int;  (* history records handed to replay sinks *)
  mutable rtx : int;  (* total data retransmissions by this instance *)
  state_errors : int ref;  (* malformed durable state treated as absent *)
  tr : Trace.t;
  c_retransmits : Trace.Counter.t;
  c_rounds : Trace.Counter.t;
  c_replayed : Trace.Counter.t;
  c_trimmed : Trace.Counter.t;
  g_unacked : Trace.Gauge.t;
}

let log_key t seq = Printf.sprintf "cert:%s:log:%d" t.name seq
let next_key t = Printf.sprintf "cert:%s:next" t.name
let lwm_key t = Printf.sprintf "cert:%s:lwm" t.name

let frontier_key name origin = Printf.sprintf "cert:%s:exp:%d" name origin

(* Stable storage is outside the type system: a malformed value (bit
   rot, a truncated write under a backend without CRCs, an operator
   typo) must degrade to "state absent" — the protocol's pessimistic
   paths handle absence — never to an uncaught [Failure] that takes
   the node down on the recovery path of all places. *)
let parse_stored ~tr ~errors ~group ~key = function
  | None -> None
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> Some n
      | _ ->
          incr errors;
          Trace.Counter.incr (Trace.counter tr "group.certified.state_errors");
          if Trace.emitting tr then
            Trace.emit tr ~layer:"certified" ~kind:"state_corrupt"
              ~data:[ ("group", S group); ("key", S key); ("raw", S s) ]
              ();
          None)

let read_stored t key =
  parse_stored ~tr:t.tr ~errors:t.state_errors ~group:t.name ~key
    (Stable.get t.storage key)

let encode_data ~origin ~seq payload =
  Codec.encode (List [ Int origin; Int seq; Str payload ])

let decode_data bytes =
  match Codec.decode bytes with
  | List [ Int origin; Int seq; Str payload ] -> Some (origin, seq, payload)
  | _ | (exception Codec.Decode_error _) -> None

let net t = Membership.net t.group

let send_data t ~dst ~seq payload =
  Net.send (net t) ~src:t.me ~dst ~port:t.data_port
    (encode_data ~origin:t.me ~seq payload)

let send_ack t ~dst ~seq =
  Net.send (net t) ~src:t.me ~dst ~port:t.ack_port
    (Codec.encode (Int seq))

(* --- retransmission ------------------------------------------------- *)

let update_unacked t =
  Trace.Gauge.set t.g_unacked
    (Hashtbl.fold
       (fun _ e acc -> acc + Hashtbl.length e.missing)
       t.waiting 0)

let retransmit_round t =
  let now = Engine.now (Net.engine (net t)) in
  let resent = ref false in
  Hashtbl.iter
    (fun seq e ->
      if e.next_retry <= now then
        match Stable.get t.storage (log_key t seq) with
        | None -> ()
        | Some payload ->
            Hashtbl.iter
              (fun dst () ->
                send_data t ~dst ~seq payload;
                t.rtx <- t.rtx + 1;
                Trace.Counter.incr t.c_retransmits)
              e.missing;
            if Hashtbl.length e.missing > 0 then resent := true;
            e.attempts <- e.attempts + 1;
            let mult =
              Stdlib.min t.max_backoff (1 lsl Stdlib.min 30 e.attempts)
            in
            e.next_retry <- now + (t.retry_period * mult))
    t.waiting;
  if !resent then Trace.Counter.incr t.c_rounds

let soonest_retry t =
  Hashtbl.fold (fun _ e acc -> Stdlib.min acc e.next_retry) t.waiting max_int

(* Wake exactly when the earliest [next_retry] falls due, not every
   retry_period: once every entry has backed off, a fixed-period
   timer is pure busy-polling (wake, scan, resend nothing, re-arm).
   Arming an earlier deadline supersedes the pending wakeup via the
   generation counter; the stale closure fires and does nothing. *)
let rec arm_timer t =
  let at = soonest_retry t in
  if at < max_int && ((not t.timer_armed) || at < t.timer_at) then begin
    let now = Engine.now (Net.engine (net t)) in
    t.timer_armed <- true;
    t.timer_at <- at;
    t.timer_gen <- t.timer_gen + 1;
    let gen = t.timer_gen in
    Net.schedule_on (net t) t.me ~delay:(Stdlib.max 1 (at - now)) (fun () ->
        if t.timer_gen = gen then begin
          t.timer_armed <- false;
          t.wakeups <- t.wakeups + 1;
          if Hashtbl.length t.waiting > 0 then begin
            retransmit_round t;
            arm_timer t
          end
        end)
  end

(* --- ack bookkeeping -------------------------------------------------- *)

(* [seq] is acknowledged by every other member. Unless retention is on
   (replay subscribers want history), the log entry can go: each acker
   persisted its frontier past [seq] {e before} acking, so no future
   sync request can ever ask for it again. The low watermark — the
   contiguous fully-acked prefix — is persisted so resume re-arms
   retransmission only for the suffix that might still be missing
   somewhere. *)
let mark_acked t seq =
  Hashtbl.replace t.acked seq ();
  if not t.retain_acked then begin
    Stable.delete t.storage (log_key t seq);
    Trace.Counter.incr t.c_trimmed
  end;
  let advanced = ref false in
  let trimmed_gap t =
    (* after trimming, an absent entry below next_seq was fully acked
       in a previous incarnation; skip it *)
    (not t.retain_acked)
    && t.lwm < t.next_seq
    && Stable.get t.storage (log_key t t.lwm) = None
  in
  while Hashtbl.mem t.acked t.lwm || trimmed_gap t do
    Hashtbl.remove t.acked t.lwm;
    t.lwm <- t.lwm + 1;
    advanced := true
  done;
  if !advanced then Stable.put t.storage (lwm_key t) (string_of_int t.lwm)

(* --- receive paths --------------------------------------------------- *)

let ingest t ~origin ~seq payload =
  (* The frontier is persisted inside [submit] before any delivery
     (the Order's persist hook), so a crash inside the application
     callback cannot cause re-delivery after sync. *)
  (match Seqspace.Order.submit t.order ~origin ~seq payload with
  | `Duplicate -> ()
  | `Run run -> List.iter (fun p -> t.deliver ~origin p) run);
  (* Ack only what the durable frontier now covers. The publisher
     trims on ack, so an ack is a contract: "this message can never
     be lost on my side again" — which holds exactly when the
     persisted frontier is past [seq]. Parked (out-of-order) messages
     are not acked; retransmission fills the gap below them first.
     Covered duplicates are re-acked: the publisher may have lost the
     original ack. *)
  if seq < Seqspace.Order.expected t.order ~origin then
    send_ack t ~dst:origin ~seq

let on_data t bytes =
  match decode_data bytes with
  | None -> ()
  | Some (origin, seq, payload) -> ingest t ~origin ~seq payload

let on_ack t src bytes =
  match Codec.decode bytes with
  | Int seq -> (
      match Hashtbl.find_opt t.waiting seq with
      | None -> ()
      | Some e ->
          Hashtbl.remove e.missing src;
          if Hashtbl.length e.missing = 0 then begin
            Hashtbl.remove t.waiting seq;
            mark_acked t seq
          end;
          update_unacked t)
  | _ | (exception Codec.Decode_error _) -> ()

let on_sync t src bytes =
  (* A member recovered and asks for everything from [from_seq] on.
     Trimmed entries below [from_seq] are unreachable here by
     construction: the requester acked them only after persisting its
     frontier past them. *)
  match Codec.decode bytes with
  | Int from_seq ->
      for seq = from_seq to t.next_seq - 1 do
        match Stable.get t.storage (log_key t seq) with
        | Some payload -> send_data t ~dst:src ~seq payload
        | None -> ()
      done
  | _ | (exception Codec.Decode_error _) -> ()

(* --- replay subscriptions --------------------------------------------- *)

(* A replay subscriber asks every member for its retained history from
   an offset. Each origin serves its own log — rid-tagged so multiple
   replays can overlap — and closes with an end marker carrying the
   count of records served, so the requester can flush an origin's
   records in sequence order even when jitter reorders them (or
   delivers the marker first). History below the live frontier goes to
   the replay sink; records at or past it splice into the ordinary
   certified path ("catch-up-then-live"). Under message loss a replay
   is best-effort: a lost replay record stalls that origin's flush
   (live delivery is unaffected). *)

let serve_replay t ~dst ~rid ~from =
  let served = ref 0 in
  for seq = from to t.next_seq - 1 do
    match Stable.get t.storage (log_key t seq) with
    | Some payload ->
        incr served;
        Net.send (net t) ~src:t.me ~dst ~port:t.replay_data_port
          (Codec.encode (List [ Int rid; Int seq; Str payload ]))
    | None -> ()
  done;
  Net.send (net t) ~src:t.me ~dst ~port:t.replay_data_port
    (Codec.encode (List [ Int rid; Int (-1); Int !served ]))

let on_replay_req t src bytes =
  match Codec.decode bytes with
  | List [ Int rid; Int from ] when from >= 0 -> serve_replay t ~dst:src ~rid ~from
  | _ | (exception Codec.Decode_error _) -> ()

let replay_to_sink t r ~origin ~seq payload =
  r.sink ~origin ~seq payload;
  t.replayed <- t.replayed + 1;
  Trace.Counter.incr t.c_replayed

let flush_origin_if_complete t rid r origin =
  match Hashtbl.find_opt r.counts origin with
  | None -> ()
  | Some count ->
      let records =
        match Hashtbl.find_opt r.buf origin with Some l -> !l | None -> []
      in
      if List.length records >= count then begin
        Hashtbl.remove r.buf origin;
        Hashtbl.remove r.counts origin;
        List.iter
          (fun (seq, payload) ->
            if seq < Seqspace.Order.expected t.order ~origin then
              replay_to_sink t r ~origin ~seq payload
            else ingest t ~origin ~seq payload)
          (List.sort compare records);
        r.pending <- r.pending - 1;
        if r.pending = 0 then begin
          Hashtbl.remove t.replays rid;
          r.on_complete ()
        end
      end

let on_replay_data t src bytes =
  match Codec.decode bytes with
  | List [ Int rid; Int seq; Str payload ] when seq >= 0 -> (
      match Hashtbl.find_opt t.replays rid with
      | None -> ()
      | Some r ->
          let buf =
            match Hashtbl.find_opt r.buf src with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace r.buf src l;
                l
          in
          buf := (seq, payload) :: !buf;
          flush_origin_if_complete t rid r src)
  | List [ Int rid; Int m; Int count ] when m = -1 && count >= 0 -> (
      match Hashtbl.find_opt t.replays rid with
      | None -> ()
      | Some r ->
          Hashtbl.replace r.counts src count;
          flush_origin_if_complete t rid r src)
  | _ | (exception Codec.Decode_error _) -> ()

let replay t ~from ?(on_complete = fun () -> ()) ~sink () =
  if from < 0 then invalid_arg "Certified.replay: from < 0";
  (* Local history needs no network round trip. Everything in our own
     log is below our own live frontier (local publications are
     delivered at bcast time), so it all goes to the sink. *)
  let local = { sink; on_complete; buf = Hashtbl.create 1; counts = Hashtbl.create 1; pending = 0 } in
  for seq = from to t.next_seq - 1 do
    match Stable.get t.storage (log_key t seq) with
    | Some payload -> replay_to_sink t local ~origin:t.me ~seq payload
    | None -> ()
  done;
  let others =
    Array.to_list (Membership.members t.group)
    |> List.filter (fun m -> m <> t.me)
  in
  match others with
  | [] -> on_complete ()
  | _ ->
      let rid = t.next_rid in
      t.next_rid <- rid + 1;
      let r =
        {
          sink;
          on_complete;
          buf = Hashtbl.create 4;
          counts = Hashtbl.create 4;
          pending = List.length others;
        }
      in
      Hashtbl.replace t.replays rid r;
      List.iter
        (fun dst ->
          Net.send (net t) ~src:t.me ~dst ~port:t.replay_req_port
            (Codec.encode (List [ Int rid; Int from ])))
        others

(* --- lifecycle -------------------------------------------------------- *)

let request_sync t =
  Array.iter
    (fun dst ->
      if dst <> t.me then
        Net.send (net t) ~src:t.me ~dst ~port:t.sync_port
          (Codec.encode (Int (Seqspace.Order.expected t.order ~origin:dst))))
    (Membership.members t.group)

let attach group ~me ~name ~storage ?(retry_period = 5000) ?(max_backoff = 8)
    ?(retain_acked = false) ~deliver () =
  if max_backoff < 1 then invalid_arg "Certified.attach: max_backoff < 1";
  let tr = Trace.ambient () in
  let errors = ref 0 in
  let parse key v = parse_stored ~tr ~errors ~group:name ~key v in
  let t =
    {
      group;
      me;
      name;
      storage;
      retry_period;
      max_backoff;
      retain_acked;
      data_port = "cert:" ^ name;
      ack_port = "cert-ack:" ^ name;
      sync_port = "cert-sync:" ^ name;
      replay_req_port = "cert-rq:" ^ name;
      replay_data_port = "cert-rd:" ^ name;
      next_seq =
        Option.value ~default:0
          (parse "next" (Stable.get storage (Printf.sprintf "cert:%s:next" name)));
      lwm =
        Option.value ~default:0
          (parse "lwm" (Stable.get storage (Printf.sprintf "cert:%s:lwm" name)));
      acked = Hashtbl.create 16;
      waiting = Hashtbl.create 16;
      order =
        Seqspace.Order.create
          ~restore:(fun ~origin ->
            parse
              (Printf.sprintf "exp:%d" origin)
              (Stable.get storage (frontier_key name origin)))
          ~persist:(fun ~origin ~next ->
            Stable.put storage (frontier_key name origin) (string_of_int next))
          ();
      deliver;
      timer_armed = false;
      timer_at = max_int;
      timer_gen = 0;
      wakeups = 0;
      next_rid = 0;
      replays = Hashtbl.create 4;
      replayed = 0;
      rtx = 0;
      state_errors = errors;
      tr;
      c_retransmits = Trace.counter tr "group.certified.retransmits";
      c_rounds = Trace.counter tr "group.certified.retransmit_rounds";
      c_replayed = Trace.counter tr "group.certified.replayed";
      c_trimmed = Trace.counter tr "group.certified.trimmed";
      g_unacked = Trace.gauge tr "group.certified.unacked";
    }
  in
  let n = net t in
  Net.set_handler n me ~port:t.data_port (fun _src bytes -> on_data t bytes);
  Net.set_handler n me ~port:t.ack_port (fun src bytes -> on_ack t src bytes);
  Net.set_handler n me ~port:t.sync_port (fun src bytes -> on_sync t src bytes);
  Net.set_handler n me ~port:t.replay_req_port (fun src bytes ->
      on_replay_req t src bytes);
  Net.set_handler n me ~port:t.replay_data_port (fun src bytes ->
      on_replay_data t src bytes);
  t

let bcast t payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* Log before the first send: certified means the message survives
     our own crash. *)
  Stable.put t.storage (log_key t seq) payload;
  Stable.put t.storage (next_key t) (string_of_int t.next_seq);
  let missing = Hashtbl.create 8 in
  Array.iter
    (fun dst -> if dst <> t.me then Hashtbl.replace missing dst ())
    (Membership.members t.group);
  if Hashtbl.length missing > 0 then
    Hashtbl.replace t.waiting seq
      {
        missing;
        attempts = 0;
        next_retry = Engine.now (Net.engine (net t)) + t.retry_period;
      }
  else
    (* a single-member group: certified the moment it is logged *)
    mark_acked t seq;
  (* Local delivery goes through the same frontier bookkeeping. *)
  on_data t (encode_data ~origin:t.me ~seq payload);
  Array.iter
    (fun dst -> if dst <> t.me then send_data t ~dst ~seq payload)
    (Membership.members t.group);
  update_unacked t;
  arm_timer t

let resume t =
  t.timer_armed <- false;
  t.timer_at <- max_int;
  t.timer_gen <- t.timer_gen + 1;  (* orphan any pre-crash wakeups *)
  (* Pessimistically assume nobody acked anything still in the log.
     Everything below the durable low watermark was fully acked — and
     trimmed, unless retention is on — so retransmission restarts only
     from there. *)
  Hashtbl.reset t.waiting;
  Hashtbl.reset t.acked;
  t.next_seq <- Option.value ~default:0 (read_stored t (next_key t));
  t.lwm <- Option.value ~default:0 (read_stored t (lwm_key t));
  for seq = t.lwm to t.next_seq - 1 do
    if Stable.get t.storage (log_key t seq) <> None then begin
      let missing = Hashtbl.create 8 in
      Array.iter
        (fun dst -> if dst <> t.me then Hashtbl.replace missing dst ())
        (Membership.members t.group);
      if Hashtbl.length missing > 0 then
        Hashtbl.replace t.waiting seq
          { missing; attempts = 0; next_retry = 0 }
    end
  done;
  update_unacked t;
  if Hashtbl.length t.waiting > 0 then begin
    retransmit_round t;
    arm_timer t
  end;
  request_sync t

let unacked t =
  Hashtbl.fold (fun _ e acc -> acc + Hashtbl.length e.missing) t.waiting 0

let retransmits t = t.rtx

let log_size t =
  List.length (Stable.keys_with_prefix t.storage (Printf.sprintf "cert:%s:log:" t.name))

let low_watermark t = t.lwm
let duplicates t = Seqspace.Order.duplicates t.order
let replayed t = t.replayed
let state_errors t = !(t.state_errors)
let timer_wakeups t = t.wakeups

let layer t =
  Layer.make ~name:"certified"
    ~send:(fun ?self:_ ?except:_ payload -> bcast t payload)
    ~set_deliver:(fun f -> t.deliver <- f)
    ~resume:(fun () -> resume t)
    ~stats:(fun () ->
      [ ("certified.unacked", unacked t);
        ("certified.retransmits", retransmits t);
        ("certified.holdback", Seqspace.Order.parked t.order);
        ("certified.log", log_size t);
        ("certified.duplicates", duplicates t);
        ("certified.replayed", replayed t) ])
    ()
