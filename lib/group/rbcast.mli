(** Reliable broadcast by eager flooding: on the first receipt of a
    message, a member delivers it and relays it to every other member
    before anything else.

    This provides the paper's "Reliable" delivery (§3.1.2): if any
    correct member delivers, every correct member that stays up
    delivers too, even if the original publisher crashes mid-send —
    the classical Birman–Joseph reliable multicast [BJ87], traded for
    O(n²) messages. The duplicate-suppression table also masks
    moderate message loss because each member receives up to n copies.

    Delivery is unordered; {!Fifo}, {!Causal} and {!Total} layer
    orderings on top of the same flooding transport. *)

type t

val attach :
  Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  deliver:(origin:Tpbs_sim.Net.node_id -> string -> unit) ->
  t

val bcast : t -> string -> unit

val bcast_tagged : t -> tag:Tpbs_serial.Value.t -> string -> unit
(** Broadcast with an extra protocol tag (used by the ordered layers
    to piggyback sequence numbers or vector clocks). Plain {!bcast}
    uses [Null]. The tag is passed to [deliver_tagged] if installed. *)

val set_tagged_deliver :
  t ->
  (origin:Tpbs_sim.Net.node_id -> tag:Tpbs_serial.Value.t -> string -> unit) ->
  unit

val me : t -> Tpbs_sim.Net.node_id
val duplicates_suppressed : t -> int
(** How many redundant copies the dedup table absorbed — the cost of
    flooding, reported by experiment E2. *)
