(** Reliable broadcast by eager flooding: on the first receipt of a
    message, a member relays it to every other member and then
    delivers it.

    This provides the paper's "Reliable" delivery (§3.1.2): if any
    correct member delivers, every correct member that stays up
    delivers too, even if the original publisher crashes mid-send —
    the classical Birman–Joseph reliable multicast [BJ87], traded for
    O(n²) messages. The per-origin duplicate suppression
    ({!Seqspace.Dedup}) also masks moderate message loss because each
    member receives up to n copies.

    Delivery is unordered; {!Fifo}, {!Causal} and {!Total} stack
    orderings on top through the {!Layer} seam. *)

type t

val create : me:Tpbs_sim.Net.node_id -> Layer.t -> t
(** Stack the reliability layer on a bottom transport (normally
    {!Best_effort.layer}). Installs itself as the transport's
    deliverer. *)

val layer : t -> Layer.t
(** This endpoint as a stackable layer (["rel"]) for orderings
    above. *)

val attach :
  Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  deliver:(origin:Tpbs_sim.Net.node_id -> string -> unit) ->
  t
(** Convenience: best-effort transport + reliability in one step. *)

val bcast : t -> string -> unit
val me : t -> Tpbs_sim.Net.node_id

val duplicates_suppressed : t -> int
(** How many redundant copies the dedup frontier absorbed — the cost
    of flooding, reported by experiment E2. *)
