module Net = Tpbs_sim.Net
module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec

type t = {
  group : Membership.t;
  me : Net.node_id;
  port : string;
  mutable next_seq : int;
  seen : (Net.node_id * int, unit) Hashtbl.t;
  mutable deliver :
    origin:Net.node_id -> tag:Value.t -> string -> unit;
  mutable duplicates : int;
}

let encode ~origin ~seq ~tag payload =
  Codec.encode (List [ Int origin; Int seq; tag; Str payload ])

let decode bytes =
  match Codec.decode bytes with
  | List [ Int origin; Int seq; tag; Str payload ] ->
      Some (origin, seq, tag, payload)
  | _ | (exception Codec.Decode_error _) -> None

let relay t ~except bytes =
  let net = Membership.net t.group in
  Array.iter
    (fun dst ->
      if dst <> t.me && dst <> except then
        Net.send net ~src:t.me ~dst ~port:t.port bytes)
    (Membership.members t.group)

let accept t src bytes =
  match decode bytes with
  | None -> ()
  | Some (origin, seq, tag, payload) ->
      if Hashtbl.mem t.seen (origin, seq) then
        t.duplicates <- t.duplicates + 1
      else begin
        Hashtbl.add t.seen (origin, seq) ();
        (* Relay before delivering: if the application callback
           crashes this node, the flood has already gone out. *)
        relay t ~except:src bytes;
        t.deliver ~origin ~tag payload
      end

let attach group ~me ~name ~deliver =
  let port = "rb:" ^ name in
  let t =
    {
      group;
      me;
      port;
      next_seq = 0;
      seen = Hashtbl.create 256;
      deliver = (fun ~origin ~tag:_ payload -> deliver ~origin payload);
      duplicates = 0;
    }
  in
  Net.set_handler (Membership.net group) me ~port (fun src payload ->
      accept t src payload);
  t

let set_tagged_deliver t f =
  t.deliver <- (fun ~origin ~tag payload -> f ~origin ~tag payload)

let bcast_tagged t ~tag payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let bytes = encode ~origin:t.me ~seq ~tag payload in
  (* Mark as seen so our own flood-back is suppressed, then deliver
     locally and send to everyone. *)
  Hashtbl.add t.seen (t.me, seq) ();
  let net = Membership.net t.group in
  Array.iter
    (fun dst ->
      if dst <> t.me then Net.send net ~src:t.me ~dst ~port:t.port bytes)
    (Membership.members t.group);
  t.deliver ~origin:t.me ~tag payload

let bcast t payload = bcast_tagged t ~tag:Value.Null payload
let me t = t.me
let duplicates_suppressed t = t.duplicates
