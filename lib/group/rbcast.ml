module Net = Tpbs_sim.Net
module Codec = Tpbs_serial.Codec

type t = {
  me : Net.node_id;
  below : Layer.t;
  mutable next_seq : int;
  dedup : Seqspace.Dedup.t;
  mutable deliver : origin:Net.node_id -> string -> unit;
}

let encode ~origin ~seq payload =
  Codec.encode (List [ Int origin; Int seq; Str payload ])

let decode bytes =
  match Codec.decode bytes with
  | List [ Int origin; Int seq; Str payload ] -> Some (origin, seq, payload)
  | _ | (exception Codec.Decode_error _) -> None

let on_receive t ~src bytes =
  match decode bytes with
  | None -> ()
  | Some (origin, seq, payload) -> (
      match Seqspace.Dedup.witness t.dedup ~origin ~seq with
      | `Duplicate -> ()
      | `Fresh ->
          (* Relay before delivering: if the application callback
             crashes this node, the flood has already gone out. *)
          Layer.send t.below ~self:false ~except:src bytes;
          t.deliver ~origin payload)

let create ~me below =
  let t =
    {
      me;
      below;
      next_seq = 0;
      dedup = Seqspace.Dedup.create ();
      deliver = Layer.null_deliver;
    }
  in
  Layer.set_deliver below (fun ~origin bytes -> on_receive t ~src:origin bytes);
  t

let bcast t payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let bytes = encode ~origin:t.me ~seq payload in
  (* Mark as seen so our own flood-back is suppressed, then send to
     everyone else and deliver locally. *)
  ignore (Seqspace.Dedup.witness t.dedup ~origin:t.me ~seq);
  Layer.send t.below ~self:false bytes;
  t.deliver ~origin:t.me payload

let me t = t.me
let duplicates_suppressed t = Seqspace.Dedup.duplicates t.dedup

let layer t =
  Layer.make ~name:"rel"
    ~send:(fun ?self:_ ?except:_ payload -> bcast t payload)
    ~set_deliver:(fun f -> t.deliver <- f)
    ~stats:(fun () ->
      [ ("rel.dup_suppressed", Seqspace.Dedup.duplicates t.dedup);
        ("rel.residue", Seqspace.Dedup.residue t.dedup) ])
    ()

let attach group ~me ~name ~deliver =
  let be =
    Best_effort.attach group ~me ~name:("rb:" ^ name)
      ~deliver:Layer.null_deliver
  in
  let t = create ~me (Best_effort.layer be) in
  t.deliver <- deliver;
  t
