(** FIFO-ordered broadcast (§3.1.2 "FIFO ordered"): obvents published
    through the same object are delivered to every matching
    subscriber in publication order (publisher-side order). A pure
    sequencing layer: each publisher numbers its messages, receivers
    release the contiguous run ({!Seqspace.Order}); reliability comes
    from whatever the layer is stacked on. *)

type t

val create : Layer.t -> t
(** Stack FIFO sequencing on a lower layer (normally {!Rbcast.layer},
    but any transport with per-link loss works — delivery then simply
    has gaps, never inversions). *)

val layer : t -> Layer.t
(** This endpoint as a stackable layer (["order:fifo"]). *)

val attach :
  Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  deliver:(origin:Tpbs_sim.Net.node_id -> string -> unit) ->
  t
(** Convenience: best-effort + reliability + FIFO in one step. *)

val bcast : t -> string -> unit

val holdback_size : t -> int
(** Messages currently parked waiting for a predecessor. *)
