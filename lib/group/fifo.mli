(** FIFO-ordered broadcast (§3.1.2 "FIFO ordered"): obvents published
    through the same object are delivered to every matching
    subscriber in publication order (publisher-side order). Layered
    on {!Rbcast}: each publisher numbers its messages, receivers hold
    back out-of-order ones. *)

type t

val attach :
  Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  deliver:(origin:Tpbs_sim.Net.node_id -> string -> unit) ->
  t

val bcast : t -> string -> unit

val holdback_size : t -> int
(** Messages currently parked waiting for a predecessor. *)
