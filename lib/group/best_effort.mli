(** Best-effort multicast: the protocol behind default (unreliable)
    obvents — one datagram per group member, IP-multicast-like, no
    retransmission (§3.1.2 "Unreliable: there is only a best-effort
    attempt to deliver"). The local member delivers through the same
    path so that self-delivery keeps the clone-per-subscriber
    semantics. *)

type t

val attach :
  Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  deliver:(origin:Tpbs_sim.Net.node_id -> string -> unit) ->
  t
(** Install this member's endpoint for channel [name]. [deliver] is
    invoked once per received broadcast payload. *)

val bcast : ?self:bool -> ?except:Tpbs_sim.Net.node_id -> t -> string -> unit
(** Send to every group member — including the local one by default
    ([?self]); a reliability layer stacked on top passes [~self:false]
    (it delivers locally itself) and [~except] (a flood relay skips
    the member it received from). *)

val send_to : t -> dst:Tpbs_sim.Net.node_id -> string -> unit
(** Unicast on the channel's port — used by subscription-aware
    dissemination to address only interested members. *)

val me : t -> Tpbs_sim.Net.node_id

val layer : t -> Layer.t
(** This endpoint as the stack's bottom transport
    (["transport:best"]). *)
