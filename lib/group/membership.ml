type t = {
  net : Tpbs_sim.Net.t;
  members : Tpbs_sim.Net.node_id array;
  ranks : (Tpbs_sim.Net.node_id, int) Hashtbl.t;
}

let create net member_list =
  let members = Array.of_list member_list in
  let ranks = Hashtbl.create (Array.length members) in
  Array.iteri
    (fun i id ->
      if Hashtbl.mem ranks id then
        invalid_arg "Membership.create: duplicate member";
      Hashtbl.add ranks id i)
    members;
  { net; members; ranks }

let net t = t.net
let members t = t.members
let size t = Array.length t.members

let rank t id =
  match Hashtbl.find_opt t.ranks id with
  | Some r -> r
  | None -> raise Not_found

let is_member t id = Hashtbl.mem t.ranks id

let others t id =
  Array.to_list (Array.of_seq (Seq.filter (fun m -> m <> id) (Array.to_seq t.members)))
