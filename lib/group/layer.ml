module Net = Tpbs_sim.Net

type t = {
  name : string;
  send : ?self:bool -> ?except:Net.node_id -> string -> unit;
  set_deliver : (origin:Net.node_id -> string -> unit) -> unit;
  resume : unit -> unit;
  stats : unit -> (string * int) list;
}

let null_deliver ~origin:_ _ = ()

let make ~name ~send ~set_deliver ?(resume = fun () -> ())
    ?(stats = fun () -> []) () =
  { name; send; set_deliver; resume; stats }

let name l = l.name
let send l ?self ?except payload = l.send ?self ?except payload
let set_deliver l f = l.set_deliver f
let resume l = l.resume ()
let stats l = l.stats ()
