module Net = Tpbs_sim.Net
module Codec = Tpbs_serial.Codec
module Trace = Tpbs_trace.Trace

type pending = {
  origin : Net.node_id;
  sender_rank : int;
  vc : Vclock.t;
  payload : string;
}

type t = {
  group : Membership.t;
  me : Net.node_id;
  below : Layer.t;
  local : Vclock.t;
  park : pending Seqspace.Park.t;
  mutable deliver : origin:Net.node_id -> string -> unit;
  g_holdback : Trace.Gauge.t;
}

let encode ~vc payload = Codec.encode (List [ Vclock.to_value vc; Str payload ])

let decode bytes =
  match Codec.decode bytes with
  | List [ vcv; Str payload ] -> (
      match Vclock.of_value vcv with
      | Some vc -> Some (vc, payload)
      | None -> None)
  | _ | (exception Codec.Decode_error _) -> None

let drain t =
  Seqspace.Park.drain t.park
    ~ready:(fun p ->
      Vclock.deliverable p.vc ~sender:p.sender_rank ~local:t.local)
    ~deliver:(fun p ->
      Vclock.merge t.local p.vc;
      t.deliver ~origin:p.origin p.payload)

let on_receive t ~origin bytes =
  match decode bytes with
  | None -> ()
  | Some (vc, payload) -> (
      match Membership.rank t.group origin with
      | sender_rank ->
          Seqspace.Park.add t.park { origin; sender_rank; vc; payload };
          drain t;
          Trace.Gauge.set t.g_holdback (Seqspace.Park.size t.park)
      | exception Not_found -> ())

let create group ~me below =
  let t =
    {
      group;
      me;
      below;
      local = Vclock.create (Membership.size group);
      park = Seqspace.Park.create ();
      deliver = Layer.null_deliver;
      g_holdback = Trace.gauge (Trace.ambient ()) "group.causal.holdback";
    }
  in
  Layer.set_deliver below (fun ~origin bytes -> on_receive t ~origin bytes);
  t

let bcast t payload =
  let rank = Membership.rank t.group t.me in
  (* The publish event advances the local clock; the message carries
     the advanced clock, and local delivery goes through the same
     holdback path as everyone else's. *)
  let vc = Vclock.copy t.local in
  Vclock.tick vc rank;
  Layer.send t.below (encode ~vc payload)

let clock t = Vclock.copy t.local
let holdback_size t = Seqspace.Park.size t.park

let layer t =
  Layer.make ~name:"order:causal"
    ~send:(fun ?self:_ ?except:_ payload -> bcast t payload)
    ~set_deliver:(fun f -> t.deliver <- f)
    ~stats:(fun () -> [ ("causal.holdback", holdback_size t) ])
    ()

let attach group ~me ~name ~deliver =
  let rb =
    Rbcast.attach group ~me ~name:("causal:" ^ name)
      ~deliver:Layer.null_deliver
  in
  let t = create group ~me (Rbcast.layer rb) in
  t.deliver <- deliver;
  t
