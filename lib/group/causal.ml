module Net = Tpbs_sim.Net
module Value = Tpbs_serial.Value

type pending = { origin : Net.node_id; sender_rank : int; vc : Vclock.t; payload : string }

type t = {
  group : Membership.t;
  rb : Rbcast.t;
  me : Net.node_id;
  local : Vclock.t;
  mutable parked : pending list;
  deliver : origin:Net.node_id -> string -> unit;
}

let rec drain t =
  let deliverable, still =
    List.partition
      (fun p -> Vclock.deliverable p.vc ~sender:p.sender_rank ~local:t.local)
      t.parked
  in
  t.parked <- still;
  match deliverable with
  | [] -> ()
  | ps ->
      List.iter
        (fun p ->
          Vclock.merge t.local p.vc;
          t.deliver ~origin:p.origin p.payload)
        ps;
      drain t

let on_receive t ~origin ~tag payload =
  match Vclock.of_value tag with
  | None -> ()
  | Some vc -> (
      match Membership.rank t.group origin with
      | sender_rank ->
          t.parked <- { origin; sender_rank; vc; payload } :: t.parked;
          drain t
      | exception Not_found -> ())

let attach group ~me ~name ~deliver =
  let rb =
    Rbcast.attach group ~me ~name:("causal:" ^ name)
      ~deliver:(fun ~origin:_ _ -> ())
  in
  let t =
    { group; rb; me; local = Vclock.create (Membership.size group);
      parked = []; deliver }
  in
  Rbcast.set_tagged_deliver rb (fun ~origin ~tag payload ->
      on_receive t ~origin ~tag payload);
  t

let bcast t payload =
  let rank = Membership.rank t.group t.me in
  (* The publish event advances the local clock; the message carries
     the advanced clock, and local delivery goes through the same
     holdback path as everyone else's. *)
  let vc = Vclock.copy t.local in
  Vclock.tick vc rank;
  Rbcast.bcast_tagged t.rb ~tag:(Vclock.to_value vc) payload

let clock t = Vclock.copy t.local
let holdback_size t = List.length t.parked
