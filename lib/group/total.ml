module Net = Tpbs_sim.Net
module Codec = Tpbs_serial.Codec
module Trace = Tpbs_trace.Trace

type pending_pub = {
  origin : Net.node_id;
  rank : int;
  pub_seq : int;
  vc : Vclock.t;
  payload : string;
}

type t = {
  group : Membership.t;
  me : Net.node_id;
  sequencer : Net.node_id;
  submit_port : string;
  below : Layer.t;
  causal : bool;
  retry_period : int;
  (* publisher side *)
  local_vc : Vclock.t;  (* tracks publishes when causal sequencing is on *)
  mutable next_pub_seq : int;
  unsequenced : (int, string) Hashtbl.t;  (* pub_seq -> submit bytes *)
  mutable retry_armed : bool;
  (* sequencer side *)
  mutable next_global : int;
  seq_seen : Seqspace.Dedup.t;  (* duplicate-submit suppression *)
  seq_parked : pending_pub Seqspace.Park.t;  (* causal holdback *)
  seq_vc : Vclock.t;
  g_seq_seen : Trace.Gauge.t;
  g_holdback : Trace.Gauge.t;
  c_duplicates : Trace.Counter.t;
  (* subscriber side: one global sequence = one pseudo-origin stream *)
  order : (Net.node_id * string) Seqspace.Order.t;
  mutable deliver : origin:Net.node_id -> string -> unit;
}

let encode_submit ~origin ~pub_seq ~vc payload =
  Codec.encode (List [ Int origin; Int pub_seq; Vclock.to_value vc; Str payload ])

let decode_submit bytes =
  match Codec.decode bytes with
  | List [ Int origin; Int pub_seq; vcv; Str payload ] -> (
      match Vclock.of_value vcv with
      | Some vc -> Some (origin, pub_seq, vc, payload)
      | None -> None)
  | _ | (exception Codec.Decode_error _) -> None

let encode_sequenced ~n ~origin ~pub_seq ~vc payload =
  Codec.encode
    (List [ Int n; Int origin; Int pub_seq; Vclock.to_value vc; Str payload ])

let decode_sequenced bytes =
  match Codec.decode bytes with
  | List [ Int n; Int origin; Int pub_seq; vcv; Str payload ] ->
      Some (n, origin, pub_seq, vcv, payload)
  | _ | (exception Codec.Decode_error _) -> None

(* Sequencer: assign the next global number and hand the message down
   — the layer below (reliable flood, or the certified log for
   Certified+Total) disseminates the agreed order. *)
let sequence_out t (p : pending_pub) =
  let n = t.next_global in
  t.next_global <- n + 1;
  Layer.send t.below
    (encode_sequenced ~n ~origin:p.origin ~pub_seq:p.pub_seq ~vc:p.vc p.payload)

let sequencer_drain t =
  if t.causal then
    Seqspace.Park.drain t.seq_parked
      ~ready:(fun p -> Vclock.deliverable p.vc ~sender:p.rank ~local:t.seq_vc)
      ~deliver:(fun p ->
        Vclock.merge t.seq_vc p.vc;
        sequence_out t p)

let seq_seen_size t = Seqspace.Dedup.residue t.seq_seen

let on_submit t bytes =
  match decode_submit bytes with
  | None -> ()
  | Some (origin, pub_seq, vc, payload) -> (
      match Seqspace.Dedup.witness t.seq_seen ~origin ~seq:pub_seq with
      | `Duplicate -> Trace.Counter.incr t.c_duplicates
      | `Fresh -> (
          Trace.Gauge.set t.g_seq_seen (Seqspace.Dedup.residue t.seq_seen);
          match Membership.rank t.group origin with
          | rank ->
              let p = { origin; rank; pub_seq; vc; payload } in
              if t.causal then begin
                Seqspace.Park.add t.seq_parked p;
                sequencer_drain t
              end
              else sequence_out t p
          | exception Not_found -> ()))

(* Publisher: retransmit unsequenced submissions until we see them
   come back in the agreed order (tolerates a lossy submit link). *)
let rec arm_retry t =
  if (not t.retry_armed) && Hashtbl.length t.unsequenced > 0 then begin
    t.retry_armed <- true;
    Net.schedule_on (Membership.net t.group) t.me ~delay:t.retry_period
      (fun () ->
        t.retry_armed <- false;
        if Hashtbl.length t.unsequenced > 0 then begin
          Hashtbl.iter
            (fun _ bytes ->
              Net.send (Membership.net t.group) ~src:t.me ~dst:t.sequencer
                ~port:t.submit_port bytes)
            t.unsequenced;
          arm_retry t
        end)
  end

let on_sequenced t bytes =
  match decode_sequenced bytes with
  | None -> ()
  | Some (n, origin, pub_seq, vcv, payload) ->
      if origin = t.me then Hashtbl.remove t.unsequenced pub_seq;
      (* Happens-before through delivery: merging the publisher's
         clock here makes a subsequent local publish causally after
         this message. *)
      if t.causal then
        Option.iter (Vclock.merge t.local_vc) (Vclock.of_value vcv);
      (* The agreed order is one stream: pseudo-origin 0, global seq. *)
      (match Seqspace.Order.submit t.order ~origin:0 ~seq:n (origin, payload) with
      | `Duplicate -> ()
      | `Run run -> List.iter (fun (o, p) -> t.deliver ~origin:o p) run);
      Trace.Gauge.set t.g_holdback
        (Seqspace.Order.parked t.order + Seqspace.Park.size t.seq_parked)

let create ?(causal = false) group ~me ~name below =
  let members = Membership.members group in
  if Array.length members = 0 then invalid_arg "Total.create: empty group";
  let sequencer = members.(0) in
  let submit_port = "total-submit:" ^ name in
  let tr = Trace.ambient () in
  let t =
    {
      group;
      me;
      sequencer;
      submit_port;
      below;
      causal;
      retry_period = 5000;
      local_vc = Vclock.create (Membership.size group);
      next_pub_seq = 0;
      unsequenced = Hashtbl.create 8;
      retry_armed = false;
      next_global = 0;
      seq_seen = Seqspace.Dedup.create ();
      seq_parked = Seqspace.Park.create ();
      seq_vc = Vclock.create (Membership.size group);
      g_seq_seen = Trace.gauge tr "group.total.seq_seen";
      g_holdback = Trace.gauge tr "group.total.holdback";
      c_duplicates = Trace.counter tr "group.total.duplicate_submits";
      order = Seqspace.Order.create ();
      deliver = Layer.null_deliver;
    }
  in
  Layer.set_deliver below (fun ~origin:_ bytes -> on_sequenced t bytes);
  if me = sequencer then
    Net.set_handler (Membership.net group) me ~port:submit_port
      (fun _src bytes -> on_submit t bytes);
  t

let bcast t payload =
  let rank = Membership.rank t.group t.me in
  let vc =
    if t.causal then begin
      Vclock.tick t.local_vc rank;
      Vclock.copy t.local_vc
    end
    else Vclock.create (Membership.size t.group)
  in
  let pub_seq = t.next_pub_seq in
  t.next_pub_seq <- pub_seq + 1;
  let bytes = encode_submit ~origin:t.me ~pub_seq ~vc payload in
  Hashtbl.replace t.unsequenced pub_seq bytes;
  Net.send (Membership.net t.group) ~src:t.me ~dst:t.sequencer
    ~port:t.submit_port bytes;
  arm_retry t

(* Timers die with a crash; state does not. Re-arming the submit
   retry on resume lets a recovered publisher finish getting its
   in-flight publications sequenced. *)
let resume t =
  t.retry_armed <- false;
  arm_retry t

let sequencer t = t.sequencer
let is_sequencer t = t.me = t.sequencer

let holdback_size t =
  Seqspace.Order.parked t.order + Seqspace.Park.size t.seq_parked

let layer t =
  Layer.make
    ~name:(if t.causal then "order:causal+total" else "order:total")
    ~send:(fun ?self:_ ?except:_ payload -> bcast t payload)
    ~set_deliver:(fun f -> t.deliver <- f)
    ~resume:(fun () -> resume t)
    ~stats:(fun () ->
      [ ("total.holdback", holdback_size t);
        ("total.seq_seen", seq_seen_size t) ])
    ()

let attach ?causal group ~me ~name ~deliver =
  let rb =
    Rbcast.attach group ~me ~name:("total:" ^ name) ~deliver:Layer.null_deliver
  in
  let t = create ?causal group ~me ~name (Rbcast.layer rb) in
  t.deliver <- deliver;
  t
