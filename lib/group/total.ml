module Net = Tpbs_sim.Net
module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec
module Trace = Tpbs_trace.Trace

type pending_pub = {
  origin : Net.node_id;
  rank : int;
  pub_seq : int;
  vc : Vclock.t;
  payload : string;
}

(* Duplicate-submit suppression at the sequencer. Publisher pub_seqs
   are contiguous per origin, so instead of remembering every
   (origin, pub_seq) ever sequenced (which grows with run length) we
   keep a per-origin frontier — everything below it has been
   sequenced — plus the small out-of-order residue above it. The
   residue drains back into the frontier as gaps fill, so the table is
   bounded by in-flight reordering, not history. *)
type frontier = {
  mutable next : int;  (* all pub_seq < next already sequenced *)
  pending : (int, unit) Hashtbl.t;  (* sequenced, but >= next *)
}

type t = {
  group : Membership.t;
  me : Net.node_id;
  sequencer : Net.node_id;
  submit_port : string;
  rb : Rbcast.t;
  causal : bool;
  retry_period : int;
  (* publisher side *)
  local_vc : Vclock.t;  (* tracks publishes when causal sequencing is on *)
  mutable next_pub_seq : int;
  unsequenced : (int, string) Hashtbl.t;  (* pub_seq -> submit bytes *)
  mutable retry_armed : bool;
  (* sequencer side *)
  mutable next_global : int;
  seq_seen : (Net.node_id, frontier) Hashtbl.t;
  mutable seq_seen_entries : int;  (* total out-of-order residue size *)
  mutable seq_parked : pending_pub list;  (* causal holdback at the sequencer *)
  seq_vc : Vclock.t;
  g_seq_seen : Trace.Gauge.t;
  g_holdback : Trace.Gauge.t;
  c_duplicates : Trace.Counter.t;
  (* subscriber side *)
  mutable next_deliver : int;
  parked : (int, Net.node_id * string) Hashtbl.t;
  deliver : origin:Net.node_id -> string -> unit;
}

let encode_submit ~origin ~pub_seq ~vc payload =
  Codec.encode (List [ Int origin; Int pub_seq; Vclock.to_value vc; Str payload ])

let decode_submit bytes =
  match Codec.decode bytes with
  | List [ Int origin; Int pub_seq; vcv; Str payload ] -> (
      match Vclock.of_value vcv with
      | Some vc -> Some (origin, pub_seq, vc, payload)
      | None -> None)
  | _ | (exception Codec.Decode_error _) -> None

(* Sequencer: assign the next global number and flood. The tag
   carries (global seq, publisher, publisher's sequence, clock). *)
let sequence_out t (p : pending_pub) =
  let n = t.next_global in
  t.next_global <- n + 1;
  Rbcast.bcast_tagged t.rb
    ~tag:(List [ Int n; Int p.origin; Int p.pub_seq; Vclock.to_value p.vc ])
    p.payload

let rec sequencer_drain t =
  if not t.causal then ()
  else begin
    let ready, still =
      List.partition
        (fun p -> Vclock.deliverable p.vc ~sender:p.rank ~local:t.seq_vc)
        t.seq_parked
    in
    t.seq_parked <- still;
    match ready with
    | [] -> ()
    | ps ->
        List.iter
          (fun p ->
            Vclock.merge t.seq_vc p.vc;
            sequence_out t p)
          ps;
        sequencer_drain t
  end

let seq_seen_size t = t.seq_seen_entries

let frontier_of t origin =
  match Hashtbl.find_opt t.seq_seen origin with
  | Some f -> f
  | None ->
      let f = { next = 0; pending = Hashtbl.create 8 } in
      Hashtbl.add t.seq_seen origin f;
      f

let mark_seen t f pub_seq =
  Hashtbl.add f.pending pub_seq ();
  t.seq_seen_entries <- t.seq_seen_entries + 1;
  while Hashtbl.mem f.pending f.next do
    Hashtbl.remove f.pending f.next;
    t.seq_seen_entries <- t.seq_seen_entries - 1;
    f.next <- f.next + 1
  done;
  Trace.Gauge.set t.g_seq_seen t.seq_seen_entries

let on_submit t bytes =
  match decode_submit bytes with
  | None -> ()
  | Some (origin, pub_seq, vc, payload) -> (
      let f = frontier_of t origin in
      if pub_seq < f.next || Hashtbl.mem f.pending pub_seq then
        Trace.Counter.incr t.c_duplicates
      else begin
        mark_seen t f pub_seq;
        match Membership.rank t.group origin with
        | rank ->
            let p = { origin; rank; pub_seq; vc; payload } in
            if t.causal then begin
              t.seq_parked <- p :: t.seq_parked;
              sequencer_drain t
            end
            else sequence_out t p
        | exception Not_found -> ()
      end)

let rec subscriber_drain t =
  match Hashtbl.find_opt t.parked t.next_deliver with
  | None -> ()
  | Some (origin, payload) ->
      Hashtbl.remove t.parked t.next_deliver;
      t.next_deliver <- t.next_deliver + 1;
      t.deliver ~origin payload;
      subscriber_drain t

(* Publisher: retransmit unsequenced submissions until we see them
   come back in the agreed order (tolerates a lossy submit link). *)
let rec arm_retry t =
  if (not t.retry_armed) && Hashtbl.length t.unsequenced > 0 then begin
    t.retry_armed <- true;
    Net.schedule_on (Membership.net t.group) t.me ~delay:t.retry_period
      (fun () ->
        t.retry_armed <- false;
        if Hashtbl.length t.unsequenced > 0 then begin
          Hashtbl.iter
            (fun _ bytes ->
              Net.send (Membership.net t.group) ~src:t.me ~dst:t.sequencer
                ~port:t.submit_port bytes)
            t.unsequenced;
          arm_retry t
        end)
  end

let on_sequenced t ~tag payload =
  match (tag : Value.t) with
  | List [ Int n; Int origin; Int pub_seq; vcv ] ->
      if origin = t.me then Hashtbl.remove t.unsequenced pub_seq;
      (* Happens-before through delivery: merging the publisher's
         clock here makes a subsequent local publish causally after
         this message. *)
      if t.causal then
        Option.iter (Vclock.merge t.local_vc) (Vclock.of_value vcv);
      if n >= t.next_deliver then begin
        Hashtbl.replace t.parked n (origin, payload);
        subscriber_drain t
      end;
      Trace.Gauge.set t.g_holdback (Hashtbl.length t.parked + List.length t.seq_parked)
  | _ -> ()

let attach ?(causal = false) group ~me ~name ~deliver =
  let members = Membership.members group in
  if Array.length members = 0 then invalid_arg "Total.attach: empty group";
  let sequencer = members.(0) in
  let submit_port = "total-submit:" ^ name in
  let rb =
    Rbcast.attach group ~me ~name:("total:" ^ name)
      ~deliver:(fun ~origin:_ _ -> ())
  in
  let tr = Trace.ambient () in
  let t =
    {
      group;
      me;
      sequencer;
      submit_port;
      rb;
      causal;
      retry_period = 5000;
      local_vc = Vclock.create (Membership.size group);
      next_pub_seq = 0;
      unsequenced = Hashtbl.create 8;
      retry_armed = false;
      next_global = 0;
      seq_seen = Hashtbl.create 8;
      seq_seen_entries = 0;
      seq_parked = [];
      seq_vc = Vclock.create (Membership.size group);
      g_seq_seen = Trace.gauge tr "group.total.seq_seen";
      g_holdback = Trace.gauge tr "group.total.holdback";
      c_duplicates = Trace.counter tr "group.total.duplicate_submits";
      next_deliver = 0;
      parked = Hashtbl.create 32;
      deliver;
    }
  in
  Rbcast.set_tagged_deliver rb (fun ~origin:_ ~tag payload ->
      on_sequenced t ~tag payload);
  if me = sequencer then
    Net.set_handler (Membership.net group) me ~port:submit_port
      (fun _src bytes -> on_submit t bytes);
  t

let bcast t payload =
  let rank = Membership.rank t.group t.me in
  let vc =
    if t.causal then begin
      Vclock.tick t.local_vc rank;
      Vclock.copy t.local_vc
    end
    else Vclock.create (Membership.size t.group)
  in
  let pub_seq = t.next_pub_seq in
  t.next_pub_seq <- pub_seq + 1;
  let bytes = encode_submit ~origin:t.me ~pub_seq ~vc payload in
  Hashtbl.replace t.unsequenced pub_seq bytes;
  Net.send (Membership.net t.group) ~src:t.me ~dst:t.sequencer
    ~port:t.submit_port bytes;
  arm_retry t

let sequencer t = t.sequencer
let is_sequencer t = t.me = t.sequencer
let holdback_size t = Hashtbl.length t.parked + List.length t.seq_parked
