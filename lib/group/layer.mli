(** The uniform seam between adjacent layers of a composable protocol
    stack (Ensemble-style).

    A layer endpoint exposes a {e downcall} ([send]: disseminate a
    payload to the whole group) and an {e upcall} ([set_deliver]:
    install the layer above as the receiver of payloads travelling
    up). A stack is assembled bottom-up — transport first, then
    reliability, then ordering — each layer wrapping its own header
    around the payload it hands down and stripping it from payloads it
    hands up, so layers compose without knowing each other's wire
    formats (see {!Stack.assemble} for the assembly rules).

    The contract of [send]: every group member, including the sender,
    eventually delivers the payload at the same stack height — modulo
    the stack's reliability. Where local delivery happens (via the
    network loopback, or synchronously at the sending layer) is the
    implementation's choice; the flags below let reliability layers
    suppress redundant copies. *)

type t

val make :
  name:string ->
  send:(?self:bool -> ?except:Tpbs_sim.Net.node_id -> string -> unit) ->
  set_deliver:((origin:Tpbs_sim.Net.node_id -> string -> unit) -> unit) ->
  ?resume:(unit -> unit) ->
  ?stats:(unit -> (string * int) list) ->
  unit ->
  t
(** [name] identifies the layer in {!Stack.shape} (e.g.
    ["transport:best"], ["rel"], ["order:fifo"]). [send ?self ?except]
    disseminates: [self] (default [true]) includes the local member,
    [except] skips one remote (a flood relay skipping the member it
    received from). Transports that cannot address individual members
    (gossip) ignore both flags. [resume] is the crash-recovery hook
    (default no-op); [stats] exposes current gauge levels for
    {!Tpbs_trace} and the benches (default none). *)

val name : t -> string
val send : t -> ?self:bool -> ?except:Tpbs_sim.Net.node_id -> string -> unit

val set_deliver : t -> (origin:Tpbs_sim.Net.node_id -> string -> unit) -> unit
(** Install the upcall. [origin] is the group member the payload
    originated from at this layer's height (the immediate sender for a
    plain transport; the original publisher above a reliability or
    ordering layer). *)

val resume : t -> unit
val stats : t -> (string * int) list

val null_deliver : origin:Tpbs_sim.Net.node_id -> string -> unit
(** Discards — the initial upcall before {!set_deliver}. *)
