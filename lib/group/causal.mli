(** Causally ordered broadcast (§3.1.2 "Causally ordered"): delivery
    respects Lamport's happens-before over publish events — if a
    member publishes [o2] after delivering [o1], no member delivers
    [o2] before [o1]. Implemented as a CBCAST sequencing layer: each
    message carries the publisher's vector clock and receivers hold
    back ({!Seqspace.Park}) until the clock condition allows delivery.
    Causal order implies FIFO order (the subtype relation in Fig. 3 is
    a theorem here, exercised by the tests). *)

type t

val create : Membership.t -> me:Tpbs_sim.Net.node_id -> Layer.t -> t
(** Stack causal sequencing on a lower layer (normally
    {!Rbcast.layer}). *)

val layer : t -> Layer.t
(** This endpoint as a stackable layer (["order:causal"]). *)

val attach :
  Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  deliver:(origin:Tpbs_sim.Net.node_id -> string -> unit) ->
  t
(** Convenience: best-effort + reliability + causal in one step. *)

val bcast : t -> string -> unit

val clock : t -> Vclock.t
(** Snapshot of the local vector clock. *)

val holdback_size : t -> int
