module Net = Tpbs_sim.Net
module Rng = Tpbs_sim.Rng
module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec
module Trace = Tpbs_trace.Trace

type config = {
  fanout : int;
  view_size : int;
  buffer_size : int;
  rounds_ttl : int;
  period : int;
  pull : bool;
}

let default_config =
  { fanout = 3; view_size = 12; buffer_size = 64; rounds_ttl = 5;
    period = 2000; pull = true }

type event = {
  id : Net.node_id * int;  (* origin, per-origin sequence *)
  origin : Net.node_id;
  payload : string;
  mutable age : int;  (* rounds since buffered here *)
}

type t = {
  group : Membership.t;
  me : Net.node_id;
  config : config;
  port : string;
  pull_port : string;
  rng : Rng.t;
  mutable view : Net.node_id list;
  mutable buffer : event list;  (* fresh events, newest first *)
  archive : (Net.node_id * int, event) Hashtbl.t;
      (* recently seen events kept for pull-retrieval (lpbcast's
         event-id digests); retired after 4x rounds_ttl rounds *)
  seen : (Net.node_id * int, int ref) Hashtbl.t;
      (* event-id -> rounds since last mentioned; duplicate
         suppression. Every push or digest mention resets the clock;
         an id retires after 12x rounds_ttl silent rounds —
         comfortably past the archive horizon (4x), so an id is only
         forgotten once nothing in the epidemic still offers it. The
         table stays bounded by throughput x horizon instead of run
         length *)
  mutable next_seq : int;
  mutable delivered : int;
  mutable running : bool;
  mutable deliver : origin:Net.node_id -> string -> unit;
  c_rounds : Trace.Counter.t;
  c_sends : Trace.Counter.t;
  g_seen : Trace.Gauge.t;
  g_archive : Trace.Gauge.t;
}

let event_to_value e : Value.t =
  List [ Int (fst e.id); Int (snd e.id); Int e.origin; Str e.payload ]

let event_of_value : Value.t -> event option = function
  | List [ Int a; Int b; Int origin; Str payload ] ->
      Some { id = (a, b); origin; payload; age = 0 }
  | _ -> None

let id_to_value (a, b) : Value.t = List [ Int a; Int b ]

let id_of_value : Value.t -> (Net.node_id * int) option = function
  | List [ Int a; Int b ] -> Some (a, b)
  | _ -> None

let encode_gossip t events digest =
  let view_sample = List.map (fun id -> Value.Int id) (t.me :: t.view) in
  Codec.encode
    (List
       [ List view_sample;
         List (List.map event_to_value events);
         List (List.map id_to_value digest) ])

let decode_gossip bytes =
  match Codec.decode bytes with
  | List [ List view_sample; List events; List digest ] ->
      let ids =
        List.filter_map (function Value.Int i -> Some i | _ -> None) view_sample
      in
      let evs = List.filter_map event_of_value events in
      let dig = List.filter_map id_of_value digest in
      Some (ids, evs, dig)
  | _ | (exception Codec.Decode_error _) -> None

let truncate_view t =
  let distinct =
    List.sort_uniq Int.compare (List.filter (fun id -> id <> t.me) t.view)
  in
  if List.length distinct <= t.config.view_size then t.view <- distinct
  else begin
    let arr = Array.of_list distinct in
    Rng.shuffle t.rng arr;
    t.view <- Array.to_list (Array.sub arr 0 t.config.view_size)
  end

let truncate_buffer t =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | e :: rest -> e :: take (n - 1) rest
  in
  t.buffer <-
    take t.config.buffer_size
      (List.filter (fun e -> e.age <= t.config.rounds_ttl) t.buffer)

let accept_event t e =
  match Hashtbl.find_opt t.seen e.id with
  | Some age ->
      (* Still circulating somewhere: restart the retirement clock so
         a slow epidemic cannot re-admit the event as fresh. *)
      age := 0
  | None ->
      Hashtbl.add t.seen e.id (ref 0);
      let fresh = { e with age = 0 } in
      t.buffer <- fresh :: t.buffer;
      Hashtbl.replace t.archive e.id fresh;
      truncate_buffer t;
      t.delivered <- t.delivered + 1;
      t.deliver ~origin:e.origin e.payload

let on_gossip t src bytes =
  match decode_gossip bytes with
  | None -> ()
  | Some (view_sample, events, digest) ->
      t.view <- view_sample @ t.view;
      truncate_view t;
      List.iter (accept_event t) events;
      (* lpbcast pull: ask the gossiper for events we only know by id.
         Digest mentions of known ids restart their retirement clock
         (the event evidently still lives in someone's archive). *)
      let missing =
        if t.config.pull then
          List.filter
            (fun id ->
              match Hashtbl.find_opt t.seen id with
              | Some age ->
                  age := 0;
                  false
              | None -> true)
            digest
        else []
      in
      if missing <> [] && src <> t.me then
        Net.send (Membership.net t.group) ~src:t.me ~dst:src ~port:t.pull_port
          (Codec.encode (List (List.map id_to_value missing)))

let on_pull t src bytes =
  match Codec.decode bytes with
  | List ids ->
      let events =
        List.filter_map
          (fun idv ->
            match id_of_value idv with
            | Some id -> Hashtbl.find_opt t.archive id
            | None -> None)
          ids
      in
      if events <> [] then
        (* Reply with the payloads; empty view sample and digest. *)
        Net.send (Membership.net t.group) ~src:t.me ~dst:src ~port:t.port
          (Codec.encode
             (List [ List []; List (List.map event_to_value events); List [] ]))
  | _ | (exception Codec.Decode_error _) -> ()

let retire_archive t =
  let horizon = 4 * t.config.rounds_ttl in
  let stale =
    Hashtbl.fold
      (fun id e acc -> if e.age > horizon then id :: acc else acc)
      t.archive []
  in
  List.iter (Hashtbl.remove t.archive) stale

let retire_seen t =
  let horizon = 12 * t.config.rounds_ttl in
  let stale =
    Hashtbl.fold
      (fun id age acc -> if !age > horizon then id :: acc else acc)
      t.seen []
  in
  List.iter (Hashtbl.remove t.seen) stale

let round t =
  if t.running then begin
    Trace.Counter.incr t.c_rounds;
    Hashtbl.iter (fun _ e -> e.age <- e.age + 1) t.archive;
    retire_archive t;
    Hashtbl.iter (fun _ age -> incr age) t.seen;
    retire_seen t;
    Trace.Gauge.set t.g_seen (Hashtbl.length t.seen);
    Trace.Gauge.set t.g_archive (Hashtbl.length t.archive);
    let fresh = List.filter (fun e -> e.age <= t.config.rounds_ttl) t.buffer in
    truncate_buffer t;
    if t.view <> [] then begin
      let digest =
        if t.config.pull then
          Hashtbl.fold (fun id _ acc -> id :: acc) t.archive []
        else []
      in
      if fresh <> [] || digest <> [] then begin
        let targets = Array.of_list t.view in
        Rng.shuffle t.rng targets;
        let k = min t.config.fanout (Array.length targets) in
        let bytes = encode_gossip t fresh digest in
        for i = 0 to k - 1 do
          Trace.Counter.incr t.c_sends;
          Net.send (Membership.net t.group) ~src:t.me ~dst:targets.(i)
            ~port:t.port bytes
        done
      end
    end
  end

let rec arm t =
  if t.running then
    Net.schedule_on (Membership.net t.group) t.me ~delay:t.config.period
      (fun () ->
        round t;
        arm t)

let attach ?(config = default_config) group ~me ~name ~seed_view ~deliver =
  let net = Membership.net group in
  let tr = Trace.ambient () in
  let t =
    {
      group;
      me;
      config;
      port = "gossip:" ^ name;
      pull_port = "gossip-pull:" ^ name;
      rng = Rng.split (Tpbs_sim.Engine.rng (Net.engine net));
      view = List.filter (fun id -> id <> me) seed_view;
      buffer = [];
      archive = Hashtbl.create 256;
      seen = Hashtbl.create 256;
      next_seq = 0;
      delivered = 0;
      running = true;
      deliver;
      c_rounds = Trace.counter tr "group.gossip.rounds";
      c_sends = Trace.counter tr "group.gossip.sends";
      g_seen = Trace.gauge tr "group.gossip.seen";
      g_archive = Trace.gauge tr "group.gossip.archive";
    }
  in
  truncate_view t;
  Net.set_handler net me ~port:t.port (fun src bytes -> on_gossip t src bytes);
  Net.set_handler net me ~port:t.pull_port (fun src bytes -> on_pull t src bytes);
  arm t;
  t

let bcast t payload =
  let id = t.me, t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let e = { id; origin = t.me; payload; age = 0 } in
  accept_event t e;
  (* Eagerly push the fresh event once, without waiting a full period:
     lpbcast publishers seed the epidemic on publication. *)
  round t

let view t = t.view
let delivered_count t = t.delivered
let seen_size t = Hashtbl.length t.seen
let stop t = t.running <- false

let layer t =
  (* An epidemic cannot address individual members or skip the local
     one: the [self]/[except] flags are meaningless and ignored. *)
  Layer.make ~name:"transport:gossip"
    ~send:(fun ?self:_ ?except:_ payload -> bcast t payload)
    ~set_deliver:(fun f -> t.deliver <- f)
    ~stats:(fun () ->
      [ ("gossip.seen", seen_size t); ("gossip.view", List.length t.view) ])
    ()
