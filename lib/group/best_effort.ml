module Net = Tpbs_sim.Net

type t = {
  group : Membership.t;
  me : Net.node_id;
  port : string;
  mutable deliver : origin:Net.node_id -> string -> unit;
}

let attach group ~me ~name ~deliver =
  let port = "be:" ^ name in
  let t = { group; me; port; deliver } in
  Net.set_handler (Membership.net group) me ~port (fun src payload ->
      t.deliver ~origin:src payload);
  t

let bcast ?(self = true) ?except t payload =
  let net = Membership.net t.group in
  Array.iter
    (fun dst ->
      if (self || dst <> t.me) && Some dst <> except then
        Net.send net ~src:t.me ~dst ~port:t.port payload)
    (Membership.members t.group)

let send_to t ~dst payload =
  Net.send (Membership.net t.group) ~src:t.me ~dst ~port:t.port payload

let me t = t.me

let layer t =
  Layer.make ~name:"transport:best"
    ~send:(fun ?self ?except payload -> bcast ?self ?except t payload)
    ~set_deliver:(fun f -> t.deliver <- f)
    ()
