module Net = Tpbs_sim.Net

type t = {
  group : Membership.t;
  me : Net.node_id;
  port : string;
}

let attach group ~me ~name ~deliver =
  let port = "be:" ^ name in
  Net.set_handler (Membership.net group) me ~port (fun src payload ->
      deliver ~origin:src payload);
  { group; me; port }

let bcast t payload =
  let net = Membership.net t.group in
  Array.iter
    (fun dst -> Net.send net ~src:t.me ~dst ~port:t.port payload)
    (Membership.members t.group)

let send_to t ~dst payload =
  Net.send (Membership.net t.group) ~src:t.me ~dst ~port:t.port payload

let me t = t.me
