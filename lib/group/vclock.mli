(** Vector clocks, tracking the happens-before relation [Lam78] that
    defines causally ordered obvent delivery (§3.1.2). Clocks are
    indexed by member {e rank} within a group. *)

type t

val create : int -> t
(** All-zero clock for a group of the given size. *)

val size : t -> int
val get : t -> int -> int
val copy : t -> t

val tick : t -> int -> unit
(** Increment one rank's entry (a local publish event). *)

val merge : t -> t -> unit
(** Pointwise max into the first clock (a delivery event). *)

val leq : t -> t -> bool
(** Pointwise ≤, i.e. "happened before or equal". *)

type relation = Equal | Before | After | Concurrent

val relate : t -> t -> relation

val deliverable : t -> sender:int -> local:t -> bool
(** CBCAST condition: message clock [m] from [sender] is deliverable
    at a process with clock [local] iff [m.(sender) = local.(sender) + 1]
    and [m.(k) <= local.(k)] for all other [k]. *)

val to_value : t -> Tpbs_serial.Value.t
val of_value : Tpbs_serial.Value.t -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
