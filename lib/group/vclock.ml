module Value = Tpbs_serial.Value

type t = int array

let create n =
  if n < 0 then invalid_arg "Vclock.create";
  Array.make n 0

let size = Array.length
let get t i = t.(i)
let copy = Array.copy
let tick t i = t.(i) <- t.(i) + 1

let merge t other =
  if Array.length t <> Array.length other then
    invalid_arg "Vclock.merge: size mismatch";
  Array.iteri (fun i v -> if v > t.(i) then t.(i) <- v) other

let leq a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i v -> if v > b.(i) then ok := false) a;
  !ok

type relation = Equal | Before | After | Concurrent

let relate a b =
  let le = leq a b and ge = leq b a in
  match le, ge with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let deliverable m ~sender ~local =
  Array.length m = Array.length local
  && m.(sender) = local.(sender) + 1
  &&
  let ok = ref true in
  Array.iteri (fun k v -> if k <> sender && v > local.(k) then ok := false) m;
  !ok

let to_value t : Value.t = List (Array.to_list (Array.map (fun i -> Value.Int i) t))

let of_value : Value.t -> t option = function
  | List vs ->
      let ints =
        List.filter_map (function Value.Int i -> Some i | _ -> None) vs
      in
      if List.length ints = List.length vs then Some (Array.of_list ints)
      else None
  | _ -> None

let pp ppf t =
  Fmt.pf ppf "<%a>" Fmt.(array ~sep:(any ",") int) t

let equal a b = a = b
