(** Totally ordered broadcast (§3.1.2 "Totally ordered"): all members
    deliver all messages in one agreed order (subscriber-side order).

    Implemented with a fixed sequencer (the group's first member):
    publishers unicast to the sequencer, which assigns global sequence
    numbers and reliably broadcasts; members deliver in sequence-number
    order with a holdback queue.

    With [~causal:true] the sequencer first runs the CBCAST holdback
    on incoming publications, so the agreed order is additionally
    causal — the composition "CausalOrder + TotalOrder" obtained in
    the paper by multiple subtyping (Fig. 3/4). *)

type t

val attach :
  ?causal:bool ->
  Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  deliver:(origin:Tpbs_sim.Net.node_id -> string -> unit) ->
  t

val bcast : t -> string -> unit
val sequencer : t -> Tpbs_sim.Net.node_id
val is_sequencer : t -> bool
val holdback_size : t -> int

val seq_seen_size : t -> int
(** Size of the sequencer's duplicate-suppression residue: the
    out-of-order submissions above each origin's contiguous frontier.
    Bounded by in-flight reordering (not run length) — see the
    [frontier] comment in the implementation. *)
