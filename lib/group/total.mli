(** Totally ordered broadcast (§3.1.2 "Totally ordered"): all members
    deliver all messages in one agreed order (subscriber-side order).

    Implemented with a fixed sequencer (the group's first member):
    publishers unicast to the sequencer, which assigns global sequence
    numbers and hands the message to the layer below for
    dissemination; members deliver in sequence-number order with a
    holdback queue ({!Seqspace.Order} over the single agreed stream).

    With [~causal:true] the sequencer first runs the CBCAST holdback
    on incoming publications, so the agreed order is additionally
    causal — the composition "CausalOrder + TotalOrder" obtained in
    the paper by multiple subtyping (Fig. 3/4). Stacked over
    {!Certified.layer} it yields "Certified + TotalOrder": the agreed
    sequence is disseminated through the durable log. *)

type t

val create :
  ?causal:bool ->
  Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  Layer.t ->
  t
(** Stack total-order sequencing on a lower layer. [name] scopes the
    sequencer's submit port.
    @raise Invalid_argument on an empty group. *)

val layer : t -> Layer.t
(** This endpoint as a stackable layer (["order:total"] or
    ["order:causal+total"]). Its resume hook re-arms the publisher's
    submit-retry timer after a crash. *)

val attach :
  ?causal:bool ->
  Membership.t ->
  me:Tpbs_sim.Net.node_id ->
  name:string ->
  deliver:(origin:Tpbs_sim.Net.node_id -> string -> unit) ->
  t
(** Convenience: best-effort + reliability + total order in one
    step. *)

val bcast : t -> string -> unit
val sequencer : t -> Tpbs_sim.Net.node_id
val is_sequencer : t -> bool
val holdback_size : t -> int

val resume : t -> unit
(** Re-arm the submit-retry timer after the hosting node recovers
    (timers do not survive crashes; the unsequenced table does). *)

val seq_seen_size : t -> int
(** Size of the sequencer's duplicate-suppression residue: the
    out-of-order submissions above each origin's contiguous frontier.
    Bounded by in-flight reordering (not run length) — see
    {!Seqspace.Dedup}. *)
