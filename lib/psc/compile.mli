(** The psc precompiler proper (§4): typecheck a Java_ps program and
    plan its translation.

    Mirroring the paper's pipeline, compilation (1) registers the
    program's obvent types, (2) typechecks every statement — so type
    errors in filters, handlers and publish statements are compile
    errors, LP1 — and (3) produces the {e adapter plan}: one typed
    adapter per obvent type (the [TAdapter] of Fig. 6), and for every
    subscription the classification of its filter — lifted to a
    [RemoteFilter] (invocation/evaluation trees, mobile) or kept as a
    [LocalFilter] (applied at the subscriber), per §4.4.3. *)

exception Compile_error of string

(** How one subscription's filter compiles (§4.4.3). *)
type filter_class =
  | Remote_filter of Tpbs_filter.Rfilter.t
      (** conforming: shipped to filtering hosts and factorable *)
  | Mobile_tree
      (** mobile but not in atom normal form: shipped as an
          expression tree, interpreted remotely, not factorable *)
  | Local_filter of Tpbs_filter.Mobility.reason list
      (** violates §3.3.4: applied at the subscriber *)

type sub_plan = {
  sp_process : string;
  sp_var : string;
  sp_param : string;  (** subscribed type *)
  sp_formal : string;
  sp_filter : Tpbs_filter.Expr.t;
  sp_class : filter_class;
  sp_captured : (string * Tpbs_types.Vtype.t) list;
      (** final variables the closure captures, with their types *)
}

type adapter = {
  ad_type : string;
  ad_is_class : bool;  (** classes also get a [publish] entry (Fig. 6) *)
}

type t = {
  registry : Tpbs_types.Registry.t;  (** builtins + program types *)
  program : Ast.program;
  adapters : adapter list;  (** one per declared obvent type *)
  sub_plans : sub_plan list;
  publish_types : (string * string) list;
      (** (process, static type) of each publish statement *)
}

val compile : Ast.program -> t
(** @raise Compile_error on any type or scoping error. *)

val compile_result : Ast.program -> (t, string list) result
(** Like {!compile}, but collects one error per offending declaration
    instead of stopping at the first, so [pscc check]/[pscc lint] can
    report every broken declaration in one run. The first message is
    always the error {!compile} would have raised. *)

val declare_types : Tpbs_types.Registry.t -> Ast.program -> unit
(** Phase 1 only: register the program's interface/class declarations
    (used by {!Edl} to read schemas).
    @raise Compile_error on invalid declarations. *)

val compile_string : string -> t
(** Parse then compile.
    @raise Pparser.Parse_error / @raise Compile_error *)

val pp_plan : Format.formatter -> t -> unit
(** Human-readable compile report (the analogue of listing the
    generated adapter classes). *)
