module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Expr = Tpbs_filter.Expr
module Typecheck = Tpbs_filter.Typecheck
module Mobility = Tpbs_filter.Mobility
module Rfilter = Tpbs_filter.Rfilter

exception Compile_error of string

let err fmt = Fmt.kstr (fun s -> raise (Compile_error s)) fmt

type filter_class =
  | Remote_filter of Rfilter.t
  | Mobile_tree
  | Local_filter of Mobility.reason list

type sub_plan = {
  sp_process : string;
  sp_var : string;
  sp_param : string;
  sp_formal : string;
  sp_filter : Expr.t;
  sp_class : filter_class;
  sp_captured : (string * Vtype.t) list;
}

type adapter = { ad_type : string; ad_is_class : bool }

type t = {
  registry : Registry.t;
  program : Ast.program;
  adapters : adapter list;
  sub_plans : sub_plan list;
  publish_types : (string * string) list;
}

(* --- phase 1: type declarations --------------------------------------- *)

let vtype_of_name reg pos name =
  match Ast.vtype_of_name name with
  | Some (Vtype.Tobject n) ->
      if not (Registry.exists reg n) then err "%s: unknown type %s" pos n;
      Vtype.Tobject n
  | Some t -> t
  | None -> err "%s: empty type name" pos

let declare_types reg program =
  List.iter
    (fun decl ->
      match (decl : Ast.decl) with
      | Ast.Interface { iname; iextends; imethods } -> (
          let methods =
            List.map
              (fun (m, ret) -> m, vtype_of_name reg ("interface " ^ iname) ret)
              imethods
          in
          try Registry.declare_interface reg ~name:iname ~extends:iextends
                ~methods ()
          with Registry.Type_error msg -> err "%s" msg)
      | Ast.Class { cname; cextends; cimplements; cattrs } -> (
          let attrs =
            List.map
              (fun (tname, attr) ->
                attr, vtype_of_name reg ("class " ^ cname) tname)
              cattrs
          in
          try
            Registry.declare_class reg ~name:cname ?extends:cextends
              ~implements:cimplements ~attrs ()
          with Registry.Type_error msg -> err "%s" msg)
      | Ast.Process _ -> ())
    program

(* --- phase 2: statement typing ------------------------------------------ *)

(* Environment of one process block (or handler): values and
   subscription handles live in separate namespaces, like Java locals
   vs. [Subscription] variables. *)
type binding = Bval of Vtype.t | Bsub

type env = { vars : (string * binding) list; formal : (string * string) option }
(* [formal]: (identifier, obvent type) of the enclosing handler. *)

let value_vars env =
  List.filter_map
    (fun (x, b) -> match b with Bval t -> Some (x, t) | Bsub -> None)
    env.vars

let assignable reg ~from ~into =
  Vtype.equal from into
  || (match from, into with
     | Vtype.Tint, Vtype.Tfloat -> true  (* numeric widening *)
     | Vtype.Tobject a, Vtype.Tobject b -> Registry.subtype reg a b
     | _, _ -> false)

let rec infer_pexpr reg env (e : Ast.pexpr) : Vtype.t =
  match e with
  | Ast.Expr expr -> (
      let param =
        match env.formal with Some (_, t) -> t | None -> "Obvent"
      in
      match Typecheck.infer reg ~param ~vars:(value_vars env) expr with
      | t -> t
      | exception Typecheck.Ill_typed terr ->
          err "%a" Typecheck.pp_error terr)
  | Ast.New (cls, args) ->
      if not (Registry.exists reg cls) then err "new %s: unknown class" cls;
      if not (Registry.instantiable reg cls) then
        err "new %s: interfaces cannot be instantiated" cls;
      let attrs = Registry.attrs_of reg cls in
      if List.length attrs <> List.length args then
        err "new %s: expected %d arguments, got %d" cls (List.length attrs)
          (List.length args);
      List.iter2
        (fun (attr, ty) arg ->
          let actual = infer_pexpr reg env arg in
          if not (assignable reg ~from:actual ~into:ty) then
            err "new %s: attribute %s expects %a, got %a" cls attr Vtype.pp ty
              Vtype.pp actual)
        attrs args;
      Vtype.Tobject cls

let lookup_sub env var =
  match List.assoc_opt var env.vars with
  | Some Bsub -> ()
  | Some (Bval t) ->
      err "%s has type %a, not Subscription" var Vtype.pp t
  | None -> err "unknown subscription variable %s" var

type acc = {
  mutable plans : sub_plan list;
  mutable pubs : (string * string) list;
}

let rec check_stmt reg acc ~process env (stmt : Ast.stmt) : env =
  match stmt with
  | Ast.Publish e ->
      let t = infer_pexpr reg env e in
      (match t with
      | Vtype.Tobject cls when Registry.is_obvent_type reg cls ->
          acc.pubs <- (process, cls) :: acc.pubs
      | _ -> err "publish: expression of type %a is not an Obvent" Vtype.pp t);
      env
  | Ast.Print e ->
      ignore (infer_pexpr reg env e);
      env
  | Ast.If (cond, then_, else_) ->
      let tc = infer_pexpr reg env cond in
      if not (Vtype.equal tc Vtype.Tbool) then
        err "if condition has type %a, expected boolean" Vtype.pp tc;
      (* Bindings made inside a branch do not escape it. *)
      ignore (check_stmts reg acc ~process env then_);
      ignore (check_stmts reg acc ~process env else_);
      env
  | Ast.Let { let_typ; let_var; let_value } ->
      let actual = infer_pexpr reg env let_value in
      let declared =
        match let_typ with
        | None -> actual
        | Some tname ->
            let ty = vtype_of_name reg ("declaration of " ^ let_var) tname in
            if not (assignable reg ~from:actual ~into:ty) then
              err "%s: cannot assign %a to %a" let_var Vtype.pp actual
                Vtype.pp ty;
            ty
      in
      { env with vars = (let_var, Bval declared) :: env.vars }
  | Ast.Activate (v, _) | Ast.Deactivate v | Ast.Set_single v ->
      lookup_sub env v;
      env
  | Ast.Set_multi (v, n) ->
      lookup_sub env v;
      if n <= 0 then err "%s.setMultiThreading(%d): positive count required" v n;
      env
  | Ast.Subscribe sub ->
      let param = sub.param_type in
      if not (Registry.exists reg param) then
        err "subscribe (%s %s): unknown type" param sub.formal;
      if not (Registry.is_obvent_type reg param) then
        err "subscribe (%s %s): %s does not widen to Obvent" param sub.formal
          param;
      let vars = value_vars env in
      (match Typecheck.check_filter reg ~param ~vars sub.filter with
      | () -> ()
      | exception Typecheck.Ill_typed terr ->
          err "filter of %s: %a" sub.sub_var Typecheck.pp_error terr);
      (* Simplify after typechecking: redundant boolean structure
         ([...&& true], [< 50 + 50]) folds away so more filters lift
         to atom normal form, and variables a fold eliminates no
         longer count as captured (nor block mobility). *)
      let filter = Expr.simplify sub.filter in
      let captured_names = Expr.vars filter in
      let captured =
        List.map
          (fun x ->
            match List.assoc_opt x vars with
            | Some t -> x, t
            | None -> assert false (* check_filter would have failed *))
          captured_names
      in
      let sp_class =
        match Mobility.classify reg ~param ~vars filter with
        | Mobility.Local_only reasons -> Local_filter reasons
        | Mobility.Mobile -> (
            (* The captured values are not known at compile time, so
               lifting with an empty environment only succeeds for
               variable-free filters; variable-bearing mobile filters
               are lifted at subscription time by the engine. Here we
               lift with placeholder bindings to classify the shape. *)
            let placeholder_env =
              List.map
                (fun (x, t) ->
                  ( x,
                    match (t : Vtype.t) with
                    | Tbool -> Tpbs_serial.Value.Bool false
                    | Tint -> Tpbs_serial.Value.Int 0
                    | Tfloat -> Tpbs_serial.Value.Float 0.
                    | Tstring -> Tpbs_serial.Value.Str ""
                    | Tlist _ | Tobject _ | Tremote _ ->
                        Tpbs_serial.Value.Null ))
                captured
            in
            match Rfilter.of_expr ~env:placeholder_env ~param filter with
            | Some rf -> Remote_filter rf
            | None -> Mobile_tree)
      in
      (* The handler sees the formal argument and the enclosing final
         variables; the subscription variable itself is visible inside
         the handler (self-deactivation, §3.4.2). *)
      let handler_env =
        {
          vars = (sub.sub_var, Bsub) :: env.vars;
          formal = Some (sub.formal, param);
        }
      in
      ignore (check_stmts reg acc ~process handler_env sub.handler);
      acc.plans <-
        {
          sp_process = process;
          sp_var = sub.sub_var;
          sp_param = param;
          sp_formal = sub.formal;
          sp_filter = filter;
          sp_class;
          sp_captured = captured;
        }
        :: acc.plans;
      { env with vars = (sub.sub_var, Bsub) :: env.vars }

and check_stmts reg acc ~process env stmts =
  List.fold_left (fun env stmt -> check_stmt reg acc ~process env stmt) env
    stmts

(* --- driver ------------------------------------------------------------- *)

(* Collect one error per offending declaration instead of stopping at
   the first, so [pscc check]/[pscc lint] can report every broken
   declaration in one run. A failed type declaration can cascade into
   errors in later processes that use the type; the first message is
   always the root cause (declarations are visited in program
   order). *)
let compile_result program =
  let reg = Registry.create () in
  let errors = ref [] in
  let collect f = try f () with Compile_error msg -> errors := msg :: !errors in
  List.iter (fun decl -> collect (fun () -> declare_types reg [ decl ])) program;
  let acc = { plans = []; pubs = [] } in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun decl ->
      match (decl : Ast.decl) with
      | Ast.Process { pname; body } ->
          collect (fun () ->
              if Hashtbl.mem seen pname then err "duplicate process %s" pname;
              Hashtbl.add seen pname ();
              ignore
                (check_stmts reg acc ~process:pname
                   { vars = []; formal = None }
                   body))
      | Ast.Interface _ | Ast.Class _ -> ())
    program;
  let adapters =
    List.filter_map
      (fun decl ->
        match (decl : Ast.decl) with
        | Ast.Interface { iname; _ }
          when Registry.exists reg iname && Registry.is_obvent_type reg iname ->
            Some { ad_type = iname; ad_is_class = false }
        | Ast.Class { cname; _ }
          when Registry.exists reg cname && Registry.is_obvent_type reg cname ->
            Some { ad_type = cname; ad_is_class = true }
        | Ast.Interface _ | Ast.Class _ | Ast.Process _ -> None)
      program
  in
  match List.rev !errors with
  | [] ->
      Ok
        {
          registry = reg;
          program;
          adapters;
          sub_plans = List.rev acc.plans;
          publish_types = List.rev acc.pubs;
        }
  | errs -> Error errs

let compile program =
  match compile_result program with
  | Ok t -> t
  | Error (msg :: _) -> raise (Compile_error msg)
  | Error [] -> assert false

let compile_string src = compile (Pparser.program_of_string src)

let pp_filter_class ~captured ppf = function
  | Remote_filter rf ->
      if captured = [] then
        Fmt.pf ppf "RemoteFilter %a" Rfilter.pp_formula rf.Rfilter.formula
      else
        (* The constants come from final variables bound at
           subscription time; the plan only records the shape. *)
        Fmt.pf ppf "RemoteFilter (lifted at subscription time; captures %s)"
          (String.concat ", " (List.map fst captured))
  | Mobile_tree -> Fmt.string ppf "mobile expression tree"
  | Local_filter reasons ->
      Fmt.pf ppf "LocalFilter (%a)"
        Fmt.(list ~sep:(any "; ") Mobility.pp_reason)
        reasons

let pp_plan ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun a ->
      Fmt.pf ppf "generated %sAdapter { subscribe%s }@,"
        a.ad_type
        (if a.ad_is_class then "; publish" else ""))
    t.adapters;
  List.iter
    (fun sp ->
      Fmt.pf ppf "%s: Subscription %s on %s -> %a@," sp.sp_process sp.sp_var
        sp.sp_param
        (pp_filter_class ~captured:sp.sp_captured)
        sp.sp_class)
    t.sub_plans;
  List.iter
    (fun (proc, cls) -> Fmt.pf ppf "%s: publish %s via %sAdapter@," proc cls cls)
    t.publish_types;
  Fmt.pf ppf "@]"
