(** Parser for Java_ps programs. The same token stream and expression
    grammar as the filter parser ({!Tpbs_filter.Lexer},
    {!Tpbs_filter.Parser}) — the paper's point that filters "promote
    the use of the native language syntax" — extended with type and
    process declarations and the new statement forms of §3.2–3.4. *)

exception Parse_error of Tpbs_filter.Lexer.pos * string

val program_of_string : string -> Ast.program
(** @raise Parse_error / @raise Tpbs_filter.Lexer.Lex_error *)

val stmt_of_string : ?param:string -> string -> Ast.stmt
(** Parse one statement (used by tests). [param] is the formal
    argument in scope, if any. *)
