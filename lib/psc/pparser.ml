module L = Tpbs_filter.Lexer
module Eparser = Tpbs_filter.Parser

exception Parse_error = Eparser.Parse_error

let fail s fmt =
  let pos = L.peek_pos s in
  Fmt.kstr (fun msg -> raise (Parse_error (pos, msg))) fmt

let expect s tok =
  let got = L.next s in
  if got <> tok then
    fail s "expected %a, found %a" L.pp_token tok L.pp_token got

let expect_ident s =
  match L.next s with
  | L.Ident name -> name
  | tok -> fail s "expected an identifier, found %a" L.pp_token tok

let expect_keyword s kw =
  match L.next s with
  | L.Ident name when name = kw -> ()
  | tok -> fail s "expected '%s', found %a" kw L.pp_token tok

(* [no_formal] is an identifier no source program can contain, so that
   Arg never resolves outside a handler. *)
let no_formal = "$none"

let rec ident_list s =
  let name = expect_ident s in
  match L.peek s with
  | L.Comma ->
      ignore (L.next s);
      name :: ident_list s
  | _ -> [ name ]

let rec parse_pexpr s ~param : Ast.pexpr =
  match L.peek s with
  | L.Ident "new" ->
      ignore (L.next s);
      let cls = expect_ident s in
      expect s L.Lparen;
      let args =
        if L.peek s = L.Rparen then []
        else begin
          let rec loop () =
            let e = parse_pexpr s ~param in
            match L.peek s with
            | L.Comma ->
                ignore (L.next s);
                e :: loop ()
            | _ -> [ e ]
          in
          loop ()
        end
      in
      expect s L.Rparen;
      Ast.New (cls, args)
  | _ -> Ast.Expr (Eparser.parse_expr s ~param)

(* Filter block: '{' [return] expr [;] '}'. *)
let parse_filter_block s ~param =
  expect s L.Lbrace;
  (match L.peek s with
  | L.Ident "return" -> ignore (L.next s)
  | _ -> ());
  let e = Eparser.parse_expr s ~param in
  (match L.peek s with L.Semi -> ignore (L.next s) | _ -> ());
  expect s L.Rbrace;
  e

let rec parse_stmt s ~param : Ast.stmt =
  match L.peek s with
  | L.Ident "publish" ->
      ignore (L.next s);
      let e = parse_pexpr s ~param in
      expect s L.Semi;
      Ast.Publish e
  | L.Ident "print" ->
      ignore (L.next s);
      expect s L.Lparen;
      let e = parse_pexpr s ~param in
      expect s L.Rparen;
      expect s L.Semi;
      Ast.Print e
  | L.Ident "Subscription" -> parse_subscribe s ~param
  | L.Ident "if" ->
      ignore (L.next s);
      expect s L.Lparen;
      let cond = parse_pexpr s ~param in
      expect s L.Rparen;
      expect s L.Lbrace;
      let then_ = parse_stmts s ~param ~stop:L.Rbrace in
      expect s L.Rbrace;
      let else_ =
        match L.peek s with
        | L.Ident "else" ->
            ignore (L.next s);
            expect s L.Lbrace;
            let else_ = parse_stmts s ~param ~stop:L.Rbrace in
            expect s L.Rbrace;
            else_
        | _ -> []
      in
      Ast.If (cond, then_, else_)
  | L.Ident "final" ->
      ignore (L.next s);
      parse_let s ~param
  | L.Ident _ -> (
      (* Either a handle method call [x.m(...);] or a typed local
         declaration [T x = e;]. Decide on the second token. *)
      let saved = L.save s in
      let _name = expect_ident s in
      match L.peek s with
      | L.Dot ->
          L.restore s saved;
          parse_handle_call s
      | L.Ident _ ->
          L.restore s saved;
          parse_let s ~param
      | tok -> fail s "unexpected %a in statement" L.pp_token tok)
  | tok -> fail s "expected a statement, found %a" L.pp_token tok

and parse_let s ~param =
  let typ = expect_ident s in
  let var = expect_ident s in
  expect s (L.Op "=");
  let value = parse_pexpr s ~param in
  expect s L.Semi;
  Ast.Let { let_typ = Some typ; let_var = var; let_value = value }

and parse_handle_call s =
  let var = expect_ident s in
  expect s L.Dot;
  let meth = expect_ident s in
  expect s L.Lparen;
  let stmt =
    match meth, L.peek s with
    | "activate", L.Rparen -> Ast.Activate (var, None)
    | "activate", L.Int_lit id ->
        ignore (L.next s);
        Ast.Activate (var, Some id)
    | "deactivate", L.Rparen -> Ast.Deactivate var
    | "setSingleThreading", L.Rparen -> Ast.Set_single var
    | "setMultiThreading", L.Int_lit n ->
        ignore (L.next s);
        Ast.Set_multi (var, n)
    | _, _ -> fail s "unknown subscription method %s" meth
  in
  expect s L.Rparen;
  expect s L.Semi;
  stmt

and parse_subscribe s ~param =
  ignore param;
  expect_keyword s "Subscription";
  let sub_var = expect_ident s in
  expect s (L.Op "=");
  expect_keyword s "subscribe";
  expect s L.Lparen;
  let param_type = expect_ident s in
  let formal = expect_ident s in
  expect s L.Rparen;
  let filter = parse_filter_block s ~param:formal in
  expect s L.Lbrace;
  let handler = parse_stmts s ~param:formal ~stop:L.Rbrace in
  expect s L.Rbrace;
  expect s L.Semi;
  Ast.Subscribe { sub_var; param_type; formal; filter; handler }

and parse_stmts s ~param ~stop =
  if L.peek s = stop || L.at_eof s then []
  else
    let stmt = parse_stmt s ~param in
    stmt :: parse_stmts s ~param ~stop

let parse_interface s =
  expect_keyword s "interface";
  let iname = expect_ident s in
  let iextends =
    match L.peek s with
    | L.Ident "extends" ->
        ignore (L.next s);
        ident_list s
    | _ -> []
  in
  expect s L.Lbrace;
  let rec methods () =
    match L.peek s with
    | L.Rbrace -> []
    | _ ->
        let ret = expect_ident s in
        let mname = expect_ident s in
        expect s L.Lparen;
        expect s L.Rparen;
        expect s L.Semi;
        (mname, ret) :: methods ()
  in
  let imethods = methods () in
  expect s L.Rbrace;
  Ast.Interface { iname; iextends; imethods }

let parse_class s =
  expect_keyword s "class";
  let cname = expect_ident s in
  let cextends =
    match L.peek s with
    | L.Ident "extends" ->
        ignore (L.next s);
        Some (expect_ident s)
    | _ -> None
  in
  let cimplements =
    match L.peek s with
    | L.Ident "implements" ->
        ignore (L.next s);
        ident_list s
    | _ -> []
  in
  expect s L.Lbrace;
  let rec attrs () =
    match L.peek s with
    | L.Rbrace -> []
    | _ ->
        let typ = expect_ident s in
        let attr = expect_ident s in
        expect s L.Semi;
        (typ, attr) :: attrs ()
  in
  let cattrs = attrs () in
  expect s L.Rbrace;
  Ast.Class { cname; cextends; cimplements; cattrs }

let parse_process s =
  expect_keyword s "process";
  let pname = expect_ident s in
  expect s L.Lbrace;
  let body = parse_stmts s ~param:no_formal ~stop:L.Rbrace in
  expect s L.Rbrace;
  Ast.Process { pname; body }

let parse_decl s =
  match L.peek s with
  | L.Ident "interface" -> parse_interface s
  | L.Ident "class" -> parse_class s
  | L.Ident "process" -> parse_process s
  | tok ->
      fail s "expected 'interface', 'class' or 'process', found %a" L.pp_token
        tok

let program_of_string src =
  let s = L.stream_of_string src in
  let rec loop () =
    if L.at_eof s then []
    else
      let decl = parse_decl s in
      decl :: loop ()
  in
  loop ()

let stmt_of_string ?(param = no_formal) src =
  let s = L.stream_of_string src in
  let stmt = parse_stmt s ~param in
  if not (L.at_eof s) then fail s "trailing input after statement";
  stmt
