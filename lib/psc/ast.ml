module Expr_syntax = Tpbs_filter.Expr
module Vtype = Tpbs_types.Vtype

type pexpr = Expr of Expr_syntax.t | New of string * pexpr list

type stmt =
  | Publish of pexpr
  | Subscribe of subscribe_stmt
  | Activate of string * int option
  | Deactivate of string
  | Set_single of string
  | Set_multi of string * int
  | Let of let_stmt
  | Print of pexpr
  | If of pexpr * stmt list * stmt list

and subscribe_stmt = {
  sub_var : string;
  param_type : string;
  formal : string;
  filter : Expr_syntax.t;
  handler : stmt list;
}

and let_stmt = {
  let_typ : string option;
  let_var : string;
  let_value : pexpr;
}

type decl =
  | Interface of {
      iname : string;
      iextends : string list;
      imethods : (string * string) list;
    }
  | Class of {
      cname : string;
      cextends : string option;
      cimplements : string list;
      cattrs : (string * string) list;
    }
  | Process of { pname : string; body : stmt list }

type program = decl list

let vtype_of_name = function
  | "" -> None
  | "boolean" -> Some Vtype.Tbool
  | "int" | "long" | "short" | "byte" -> Some Vtype.Tint
  | "float" | "double" -> Some Vtype.Tfloat
  | "String" -> Some Vtype.Tstring
  | name -> Some (Vtype.Tobject name)

let rec pp_pexpr ppf = function
  | Expr e -> Expr_syntax.pp ppf e
  | New (cls, args) ->
      Fmt.pf ppf "new %s(%a)" cls Fmt.(list ~sep:(any ", ") pp_pexpr) args

let rec pp_stmt ppf = function
  | Publish e -> Fmt.pf ppf "publish %a;" pp_pexpr e
  | Subscribe s ->
      Fmt.pf ppf "Subscription %s = subscribe (%s %s) { %a } {@[<v 2>%a@]};"
        s.sub_var s.param_type s.formal Expr_syntax.pp s.filter
        Fmt.(list ~sep:sp pp_stmt)
        s.handler
  | Activate (v, None) -> Fmt.pf ppf "%s.activate();" v
  | Activate (v, Some id) -> Fmt.pf ppf "%s.activate(%d);" v id
  | Deactivate v -> Fmt.pf ppf "%s.deactivate();" v
  | Set_single v -> Fmt.pf ppf "%s.setSingleThreading();" v
  | Set_multi (v, n) -> Fmt.pf ppf "%s.setMultiThreading(%d);" v n
  | Let { let_typ; let_var; let_value } ->
      Fmt.pf ppf "final %s %s = %a;"
        (Option.value ~default:"var" let_typ)
        let_var pp_pexpr let_value
  | Print e -> Fmt.pf ppf "print(%a);" pp_pexpr e
  | If (cond, then_, []) ->
      Fmt.pf ppf "if (%a) {@[<v 2>%a@]}" pp_pexpr cond
        Fmt.(list ~sep:sp pp_stmt)
        then_
  | If (cond, then_, else_) ->
      Fmt.pf ppf "if (%a) {@[<v 2>%a@]} else {@[<v 2>%a@]}" pp_pexpr cond
        Fmt.(list ~sep:sp pp_stmt)
        then_
        Fmt.(list ~sep:sp pp_stmt)
        else_

let pp_decl ppf = function
  | Interface { iname; iextends; imethods } ->
      Fmt.pf ppf "interface %s%s {@[<v 2>%a@]}" iname
        (match iextends with
        | [] -> ""
        | es -> " extends " ^ String.concat ", " es)
        Fmt.(
          list ~sep:sp (fun ppf (m, t) -> Fmt.pf ppf "%s %s();" t m))
        imethods
  | Class { cname; cextends; cimplements; cattrs } ->
      Fmt.pf ppf "class %s%s%s {@[<v 2>%a@]}" cname
        (match cextends with None -> "" | Some s -> " extends " ^ s)
        (match cimplements with
        | [] -> ""
        | is -> " implements " ^ String.concat ", " is)
        Fmt.(
          list ~sep:sp (fun ppf (t, a) -> Fmt.pf ppf "%s %s;" t a))
        cattrs
  | Process { pname; body } ->
      Fmt.pf ppf "process %s {@[<v 2>%a@]}" pname
        Fmt.(list ~sep:sp pp_stmt)
        body

let pp_program ppf program =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,@,") pp_decl) program
