(** Execute a compiled Java_ps program on the publish/subscribe engine
    inside the simulator: every [process] block becomes an address
    space on its own node; its statements run at simulation start, in
    program order; handlers run as obvents arrive.

    This closes the loop the paper describes: source with [publish] /
    [subscribe] primitives → precompiled adapter calls → DACE-style
    dissemination — observable through the program's [print]
    statements. *)

type output = {
  time : Tpbs_sim.Engine.time;
  process : string;
  text : string;
}

type result = {
  trace : output list;  (** chronological print output *)
  stats : Tpbs_core.Pubsub.Domain.stats;
  compiled : Compile.t;
}

exception Runtime_error of string

val run :
  ?seed:int ->
  ?net_config:Tpbs_sim.Net.config ->
  ?horizon:Tpbs_sim.Engine.time ->
  ?broker:bool ->
  Compile.t ->
  result
(** [broker] (default false) adds a dedicated filtering-host node and
    routes plain-unreliable classes through it. [horizon] bounds
    virtual time (default: run to quiescence). *)

val run_string :
  ?seed:int ->
  ?net_config:Tpbs_sim.Net.config ->
  ?horizon:Tpbs_sim.Engine.time ->
  ?broker:bool ->
  string ->
  result
(** Parse, compile, run. *)

val pp_trace : Format.formatter -> output list -> unit
