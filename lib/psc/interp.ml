module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Expr = Tpbs_filter.Expr
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Pubsub = Tpbs_core.Pubsub
module Fspec = Tpbs_core.Fspec

type output = { time : Engine.time; process : string; text : string }

type result = {
  trace : output list;
  stats : Pubsub.Domain.stats;
  compiled : Compile.t;
}

exception Runtime_error of string

let err fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

(* Runtime bindings: values (including obvents as Obj values) and
   subscription handles. *)
type rtval = Vval of Value.t | Vsub of Pubsub.Subscription.t

type world = {
  engine : Engine.t;
  domain : Pubsub.Domain.t;
  registry : Registry.t;
  mutable outputs : output list;  (* reverse chronological *)
}

let print w ~process text =
  w.outputs <- { time = Engine.now w.engine; process; text } :: w.outputs

(* Environments are immutable assoc lists so that handler closures
   capture the bindings in scope at subscription time, like Java's
   final variables. *)
let value_env env =
  List.filter_map
    (fun (x, b) -> match b with Vval v -> Some (x, v) | Vsub _ -> None)
    env

let rec eval_pexpr w env ?arg (e : Ast.pexpr) : Value.t =
  match e with
  | Ast.Expr expr -> (
      match Expr.eval w.registry ~env:(value_env env) ?arg expr with
      | v -> v
      | exception Expr.Eval_error msg -> err "%s" msg)
  | Ast.New (cls, args) ->
      let attrs = Registry.attrs_of w.registry cls in
      let fields =
        List.map2
          (fun (attr, ty) argexpr ->
            let v = eval_pexpr w env ?arg argexpr in
            let v =
              (* Numeric widening, as the typechecker allowed. *)
              match (ty : Vtype.t), v with
              | Tfloat, Value.Int i -> Value.Float (float_of_int i)
              | _, v -> v
            in
            attr, v)
          attrs args
      in
      (match Obvent.make w.registry cls fields with
      | obvent -> Obvent.to_value obvent
      | exception Obvent.Invalid_obvent msg -> err "new %s: %s" cls msg)

let rec exec_stmt w proc ~process env ?arg (stmt : Ast.stmt) =
  match stmt with
  | Ast.Publish e -> (
      match eval_pexpr w env ?arg e with
      | Value.Obj _ as v ->
          Pubsub.Process.publish proc (Obvent.of_value w.registry v);
          env
      | v -> err "publish: %a is not an obvent" Value.pp v)
  | Ast.Print e ->
      let v = eval_pexpr w env ?arg e in
      let text =
        match v with Value.Str s -> s | v -> Value.to_string v
      in
      print w ~process text;
      env
  | Ast.If (cond, then_, else_) ->
      let branch =
        match eval_pexpr w env ?arg cond with
        | Value.Bool true -> then_
        | Value.Bool false -> else_
        | v -> err "if condition evaluated to %a" Value.pp v
      in
      ignore
        (List.fold_left
           (fun e stmt -> exec_stmt w proc ~process e ?arg stmt)
           env branch);
      env
  | Ast.Let { let_typ = _; let_var; let_value } ->
      let v = eval_pexpr w env ?arg let_value in
      (let_var, Vval v) :: env
  | Ast.Activate (var, id) -> (
      match List.assoc_opt var env with
      | Some (Vsub s) ->
          (match id with
          | None -> Pubsub.Subscription.activate s
          | Some id -> Pubsub.Subscription.activate_durable s ~id);
          env
      | _ -> err "%s is not a subscription" var)
  | Ast.Deactivate var -> (
      match List.assoc_opt var env with
      | Some (Vsub s) ->
          Pubsub.Subscription.deactivate s;
          env
      | _ -> err "%s is not a subscription" var)
  | Ast.Set_single var -> (
      match List.assoc_opt var env with
      | Some (Vsub s) ->
          Pubsub.Subscription.set_single_threading s;
          env
      | _ -> err "%s is not a subscription" var)
  | Ast.Set_multi (var, n) -> (
      match List.assoc_opt var env with
      | Some (Vsub s) ->
          Pubsub.Subscription.set_multi_threading s ~max:n;
          env
      | _ -> err "%s is not a subscription" var)
  | Ast.Subscribe sub ->
      (* The handler closes over the environment as of now, extended
         with the subscription variable itself (self-deactivation) and
         the formal argument at delivery time. *)
      let handler_env = ref env in
      let filter = Fspec.tree ~env:(value_env env) sub.filter in
      let handler obvent =
        let inner = !handler_env in
        ignore
          (List.fold_left
             (fun e stmt -> exec_stmt w proc ~process e ~arg:obvent stmt)
             inner sub.handler)
      in
      let s = Pubsub.Process.subscribe proc ~param:sub.param_type ~filter handler in
      handler_env := (sub.sub_var, Vsub s) :: env;
      (sub.sub_var, Vsub s) :: env

let run ?(seed = 42) ?(net_config = Net.default_config) ?horizon
    ?(broker = false) (compiled : Compile.t) =
  let engine = Engine.create ~seed () in
  let net = Net.create ~config:net_config engine in
  let domain = Pubsub.Domain.create compiled.Compile.registry net in
  let w =
    { engine; domain; registry = compiled.Compile.registry; outputs = [] }
  in
  let process_decls =
    List.filter_map
      (fun d ->
        match (d : Ast.decl) with
        | Ast.Process { pname; body } -> Some (pname, body)
        | Ast.Interface _ | Ast.Class _ -> None)
      compiled.Compile.program
  in
  let procs =
    List.map
      (fun (pname, body) ->
        pname, body, Pubsub.Process.create domain (Net.add_node net))
      process_decls
  in
  if broker then begin
    let broker_proc = Pubsub.Process.create domain (Net.add_node net) in
    Pubsub.make_broker domain broker_proc
  end;
  (* Program order: all process bodies start at t=0, in declaration
     order (the engine preserves scheduling order on ties). *)
  List.iter
    (fun (pname, body, proc) ->
      Engine.schedule engine ~delay:0 (fun () ->
          ignore
            (List.fold_left
               (fun env stmt -> exec_stmt w proc ~process:pname env stmt)
               [] body)))
    procs;
  (match horizon with
  | Some until -> Engine.run ~until engine
  | None -> Engine.run engine);
  {
    trace = List.rev w.outputs;
    stats = Pubsub.Domain.stats domain;
    compiled;
  }

let run_string ?seed ?net_config ?horizon ?broker src =
  run ?seed ?net_config ?horizon ?broker (Compile.compile_string src)

let pp_trace ppf trace =
  List.iter
    (fun { time; process; text } ->
      Fmt.pf ppf "[t=%6d] %-10s %s@." time process text)
    trace
