(** Abstract syntax of Java_ps — the Java extension of §3, reduced to
    the fragment the paper's examples exercise: obvent type
    declarations, and process blocks containing the [publish]
    statement (§3.2, a new {i StatementWithoutTrailingSubstatement})
    and the [subscribe] expression (§3.3, a new
    {i PrimaryNoNewArray}), plus the subscription-management calls of
    §3.4. *)

type pexpr =
  | Expr of Tpbs_filter.Expr.t
      (** ordinary expression; [Var x] refers to a process-local
          binding, [Arg] to the enclosing handler's formal argument *)
  | New of string * pexpr list
      (** [new C(e1, ..., en)]: obvent construction, arguments in
          declared attribute order (inherited attributes first) *)

type stmt =
  | Publish of pexpr  (** [publish e;] *)
  | Subscribe of subscribe_stmt
      (** [Subscription s = subscribe (T t) { filter } { handler };] *)
  | Activate of string * int option
      (** [s.activate();] / [s.activate(id);] *)
  | Deactivate of string  (** [s.deactivate();] *)
  | Set_single of string  (** [s.setSingleThreading();] *)
  | Set_multi of string * int  (** [s.setMultiThreading(n);] *)
  | Let of let_stmt  (** [final T x = e;] — captured final variables *)
  | Print of pexpr  (** [print(e);] — observable output for tests *)
  | If of pexpr * stmt list * stmt list
      (** [if (e) { ... } else { ... }]; the else branch may be empty *)

and subscribe_stmt = {
  sub_var : string;  (** the subscription handle variable *)
  param_type : string;  (** the subscribed obvent type [T] *)
  formal : string;  (** the formal argument [t] *)
  filter : Tpbs_filter.Expr.t;  (** first block: boolean filter *)
  handler : stmt list;  (** second block: the notifiable's code *)
}

and let_stmt = {
  let_typ : string option;  (** declared type name, as written *)
  let_var : string;
  let_value : pexpr;
}

type decl =
  | Interface of {
      iname : string;
      iextends : string list;
      imethods : (string * string) list;  (** method name, result type name *)
    }
  | Class of {
      cname : string;
      cextends : string option;
      cimplements : string list;
      cattrs : (string * string) list;  (** type name, attribute name *)
    }
  | Process of { pname : string; body : stmt list }
      (** [process P { ... }] — one address space; the distribution
          boundary Java leaves implicit is explicit in the mini
          language so one source file can script a whole deployment *)

type program = decl list

val vtype_of_name : string -> Tpbs_types.Vtype.t option
(** Map a surface type name ([boolean], [int], [long], [float],
    [double], [String], or a class/interface name) to a value type.
    [None] only for the empty string. *)

val pp_stmt : Format.formatter -> stmt -> unit
val pp_decl : Format.formatter -> decl -> unit
val pp_program : Format.formatter -> program -> unit
