module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype

let builtin_names =
  (* Everything Registry.create preloads. *)
  Registry.all_types (Registry.create ())

let is_builtin name = List.mem name builtin_names

let surface_type : Vtype.t -> string = function
  | Tbool -> "boolean"
  | Tint -> "int"
  | Tfloat -> "double"
  | Tstring -> "String"
  | Tobject n -> n
  | Tremote n ->
      (* The paper's caveat (§5.6): an EDL cannot by itself carry
         behaviour — and a remote reference is behaviour. *)
      invalid_arg
        ("Edl.export: remote-reference attribute of interface " ^ n
       ^ " is not expressible in the schema")
  | Tlist _ -> invalid_arg "Edl.export: list attributes are not expressible"

(* Topological order: supertypes first. Declaration order in the
   registry is lost, so sort by dependency. *)
let topo_sort reg names =
  let visited = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit name =
    if (not (Hashtbl.mem visited name)) && not (is_builtin name) then begin
      Hashtbl.add visited name ();
      let decl = Registry.find reg name in
      List.iter visit decl.Registry.supers;
      out := name :: !out
    end
  in
  List.iter visit names;
  List.rev !out

let render_decl reg buf name =
  let decl = Registry.find reg name in
  match decl.Registry.kind with
  | Registry.Interface ->
      Buffer.add_string buf ("interface " ^ name);
      (match decl.Registry.supers with
      | [] -> ()
      | supers ->
          Buffer.add_string buf (" extends " ^ String.concat ", " supers));
      Buffer.add_string buf " {\n";
      List.iter
        (fun (m : Registry.meth) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s %s();\n" (surface_type m.Registry.ret)
               m.Registry.mname))
        decl.Registry.methods;
      Buffer.add_string buf "}\n\n"
  | Registry.Class ->
      let extends, implements =
        List.partition (fun s -> Registry.is_class reg s) decl.Registry.supers
      in
      Buffer.add_string buf ("class " ^ name);
      (match extends with
      | [ super ] -> Buffer.add_string buf (" extends " ^ super)
      | [] -> ()
      | _ -> assert false (* single inheritance by construction *));
      (match implements with
      | [] -> ()
      | is -> Buffer.add_string buf (" implements " ^ String.concat ", " is));
      Buffer.add_string buf " {\n";
      List.iter
        (fun (attr, ty) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s %s;\n" (surface_type ty) attr))
        decl.Registry.attrs;
      Buffer.add_string buf "}\n\n"

let export reg =
  let buf = Buffer.create 1024 in
  let names =
    List.filter (fun n -> not (is_builtin n)) (Registry.all_types reg)
  in
  List.iter (render_decl reg buf) (topo_sort reg names);
  Buffer.contents buf

let import_into reg schema =
  let program = Pparser.program_of_string schema in
  List.iter
    (fun decl ->
      match (decl : Ast.decl) with
      | Ast.Process { pname; _ } ->
          raise
            (Compile.Compile_error
               ("EDL schemas contain only type declarations; found process "
              ^ pname))
      | Ast.Interface _ | Ast.Class _ -> ())
    program;
  Compile.declare_types reg program

let import schema =
  let reg = Registry.create () in
  import_into reg schema;
  reg

let equivalent a b =
  let names_a = Registry.all_types a and names_b = Registry.all_types b in
  names_a = names_b
  && List.for_all
       (fun x ->
         List.for_all
           (fun y -> Registry.subtype a x y = Registry.subtype b x y)
           names_a
         && Registry.attrs_of a x = Registry.attrs_of b x
         && Registry.is_class a x = Registry.is_class b x)
       names_a
