(** Event description language (§5.6 "Language Integration vs
    Interoperability").

    The paper observes that interoperable publish/subscribe systems
    describe event types in a neutral EDL (the CEA's ODL, Objective
    Linda's OIL, XML, …) and that the [java.pubsub] types "can be seen
    as a Java mapping" of such a language. This module is that
    exchange format: a registry's application-defined obvent types
    export to a textual schema — the Java_ps declaration syntax
    itself, so the precompiler's parser doubles as the EDL reader —
    and import reconstructs an equivalent lattice on another node or
    in another run.

    Methods-as-code (the paper's caveat that an EDL cannot carry
    behaviour by itself) need no special handling here because obvent
    methods are derived getters: the schema fully determines them. *)

val export : Tpbs_types.Registry.t -> string
(** Render every non-builtin type of the registry as Java_ps
    declarations, supertypes before subtypes.
    @raise Invalid_argument for attributes an EDL cannot express —
    remote references and lists (the paper's caveat that a definition
    language "can not by itself provide for interoperability" when
    events encompass code). *)

val import : string -> Tpbs_types.Registry.t
(** Parse declarations into a fresh registry (builtins included).
    @raise Compile.Compile_error / @raise Pparser.Parse_error on
    invalid schemas. *)

val import_into : Tpbs_types.Registry.t -> string -> unit
(** Add the schema's types to an existing registry.
    @raise Compile.Compile_error on conflicts. *)

val equivalent : Tpbs_types.Registry.t -> Tpbs_types.Registry.t -> bool
(** Same type names, same subtype relation, same attributes — the
    roundtrip invariant ([import (export r)] is equivalent to [r]). *)
