module Obvent = Tpbs_obvent.Obvent

type notifiable = { notify : Obvent.t -> unit }
type registration = { sub : Pubsub.Subscription.t }

let register process ~param ?filter notifiable =
  let sub =
    Pubsub.Process.subscribe process ~param ?filter notifiable.notify
  in
  Pubsub.Subscription.activate sub;
  { sub }

let unregister r = Pubsub.Subscription.deactivate r.sub
let subscription r = r.sub

let dispatch_by_class cases ~default =
  {
    notify =
      (fun o ->
        match List.assoc_opt (Obvent.cls o) cases with
        | Some handler -> handler o
        | None -> default o);
  }
