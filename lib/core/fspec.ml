module Expr = Tpbs_filter.Expr
module Obvent = Tpbs_obvent.Obvent

type t =
  | Accept_all
  | Tree of Expr.t * Expr.env
  | Closure of (Obvent.t -> bool)

let accept_all = Accept_all
let tree ?(env = []) e = Tree (e, env)

let of_source ?(env = []) ~param src =
  Tree (Tpbs_filter.Parser.expr_of_string ~param src, env)

let closure f = Closure f

let matches reg spec obvent =
  match spec with
  | Accept_all -> true
  | Tree (e, env) -> (
      match Expr.eval_bool reg ~env ~arg:obvent e with
      | b -> b
      | exception Expr.Eval_error _ -> false)
  | Closure f -> ( match f obvent with b -> b | exception _ -> false)
