(** The parallel dispatch tier: a work-stealing pool of OCaml 5
    domains fed by bounded per-shard queues.

    Each shard's tasks go to one queue owned by one pinned worker
    (SPSC-like when [workers = shards]), preserving per-shard
    submission order on the happy path; idle workers steal from
    foreign queues. [submit] blocks when the target queue is full and
    counts pressure events past a threshold; [barrier] waits for every
    submitted task to complete — the engine calls it at each tick
    barrier so handler side effects are visible before virtual time
    advances.

    Counters [pool.tasks], [pool.steals] and [pool.pressure] are
    created per pool at {!create}; engines that never spawn a pool
    emit no new metrics. *)

type t

val create : ?capacity:int -> ?pressure:int -> workers:int -> shards:int -> unit -> t
(** Spawn [workers] domains serving [max workers shards] queues.
    [capacity] (default 1024) bounds each queue; [pressure] (default
    3/4 of capacity) is the queue depth at or past which a submit
    counts a pressure event. *)

val submit : t -> shard:int -> (unit -> unit) -> unit
(** Enqueue a task on [shard]'s queue, blocking while it is full.
    Exceptions escaping the task are swallowed (the task still counts
    as completed for {!barrier}). *)

val barrier : t -> unit
(** Block until every task submitted so far has completed. *)

val shutdown : t -> unit
(** Drain ({!barrier}), stop and join all workers. The pool is dead
    afterwards: further [submit]s are dropped. *)

val on_worker : unit -> bool
(** [true] iff the calling domain is a pool worker — used by the
    engine to route cross-shard publishes through the hand-off queue
    instead of touching shard state off the engine thread. *)

type stats = {
  tasks : int;
  steals : int;
  pressure_events : int;
  submit_stalls : int;  (** submits that blocked on a full queue *)
  queued : int;  (** tasks currently waiting, across all queues *)
  workers : int;
}

val stats : t -> stats
