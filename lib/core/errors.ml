exception Cannot_publish of string
exception Cannot_subscribe of string
exception Cannot_unsubscribe of string

let cannot_publish fmt = Fmt.kstr (fun s -> raise (Cannot_publish s)) fmt
let cannot_subscribe fmt = Fmt.kstr (fun s -> raise (Cannot_subscribe s)) fmt

let cannot_unsubscribe fmt =
  Fmt.kstr (fun s -> raise (Cannot_unsubscribe s)) fmt
