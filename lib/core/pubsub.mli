(** The type-based publish/subscribe engine — the paper's primary
    contribution, as a library with the same semantics the [publish] /
    [subscribe] primitives compile down to (§3, §4).

    One {!Domain} spans a simulated deployment: it owns the type
    registry and maps every obvent class to a dissemination channel (a
    DACE {e multicast class}, §4.2). The channel's protocol is not a
    fixed pick: {!Tpbs_group.Stack.assemble} composes a layer stack
    from the class's resolved QoS profile — bottom transport
    (best-effort datagrams, gossip, broker routing, or the certified
    durable log), a shared reliability layer, and an independent
    ordering layer — so every lattice point of Fig. 3/4, including
    composites like [Certified ∧ TotalOrder], gets the semantics its
    markers promise.

    Transmission semantics ride on top: [Prioritary] and [Timely]
    obvents pass through a rate-limited egress queue where higher
    priorities overtake and stale obvents expire.

    A {!Process} is one address space. [subscribe] registers a typed
    subscription — filter plus handler closure — and returns the
    {!Subscription} handle of Fig. 3 ([activate] / [deactivate] /
    thread policies). Subscribing to a type receives instances of all
    its subtypes (Fig. 1), each subscription getting its own
    deserialized clone of every published obvent (§2.1.2).

    When a {e broker} is designated, plain-unreliable channels route
    through it: subscriptions whose filters are mobile
    ({!Tpbs_filter.Mobility}) and liftable ({!Tpbs_filter.Rfilter})
    travel to the broker, are factored into a compound filter
    ({!Tpbs_filter.Factored}), and events are forwarded only to nodes
    with a matching subscription — the remote filtering of §3.3.3.
    Non-conforming filters fall back to always-forward + local
    evaluation, exactly like the paper's [LocalFilter]. *)

module Domain : sig
  type t

  val create :
    ?tx_interval:int ->
    ?n_shards:int ->
    ?domains:int ->
    Tpbs_types.Registry.t ->
    Tpbs_sim.Net.t ->
    t
  (** [tx_interval] is the egress-queue drain period for
      priority/timely traffic (default 200 ticks).

      [n_shards] partitions the engine: obvent classes are assigned to
      shards by a stable hash ({!Tpbs_core.Shard.key}) and each shard
      owns its slice of channel metadata, routing indexes, egress
      queue and stats. The default is [max 1 domains]. [n_shards = 1]
      (the default default) is byte-identical to the historical
      unsharded engine — same traces, same metrics.

      [domains] > 1 additionally spawns the parallel dispatch tier: a
      work-stealing pool of that many OCaml 5 domains ({!Pool}), with
      each shard's Multi-policy handler bodies pinned to one worker.
      Handlers that publish from a worker go through the cross-shard
      hand-off queue, applied on the engine thread at the tick
      barrier, where the pool is also joined — so all handler side
      effects of a tick are visible before virtual time advances.
      Call {!shutdown} when done to join the workers. *)

  val registry : t -> Tpbs_types.Registry.t
  val net : t -> Tpbs_sim.Net.t
  val engine : t -> Tpbs_sim.Engine.t

  val nodes : t -> Tpbs_sim.Net.node_id list
  (** Nodes of all attached processes, in creation order. *)

  val enable_meta : t -> unit
  (** Turn on DACE's reflexive control channel (§4.2): every
      subscription activation/deactivation is itself published as an
      obvent of class [SubscriptionActivated] /
      [SubscriptionDeactivated] (see {!Tpbs_types.Registry.create}'s
      builtin [MetaObvent] hierarchy), so processes can learn about
      subscriptions — and "possibly new multicast classes" — by
      subscribing. Meta traffic about meta subscriptions is
      suppressed. *)

  val enable_targeted_dissemination : t -> unit
  (** Subscription-aware dissemination (implies {!enable_meta}):
      best-effort channels address only nodes believed to hold a
      matching subscription, a view each process learns eventually
      from the meta channel — the control-traffic-driven dissemination
      of DACE. Events published before interest has propagated can be
      missed, exactly as with real subscription propagation delay;
      reliable/ordered/certified channels keep their full groups. *)

  val use_gossip : t -> cls:string -> ?config:Tpbs_group.Gossip.config -> unit -> unit
  (** Route this (unreliable) obvent class over gossip instead of
      plain best-effort — DACE's scalable end of the spectrum. Must be
      called before the first publish/subscribe touching the class. *)

  val retain_history : t -> cls:string -> unit
  (** Keep this certified class's fully-acknowledged log entries
      instead of trimming them, so {!Subscription.activate_replay}
      can serve the past back. Must be called before the first
      publish/subscribe touching the class; a no-op for non-certified
      profiles. *)

  type stats = {
    published : int;
    deliveries : int;  (** handler submissions across all subscriptions *)
    filtered_out : int;
    expired : int;
        (** timely obvents dropped as stale — counted once per stale
            event at a receiving process (not once per matching
            subscription), plus once per entry expiring in the egress
            queue *)
    decode_errors : int;
        (** undecodable envelopes/obvents, and deliveries that raced
            channel registration (dropped, not fatal) *)
    broker_forwards : int;  (** node-level forwards made by the broker *)
    broker_events : int;  (** events that transited the broker *)
    control_messages : int;  (** subscription (un)registrations sent *)
    qos_conflicts : int;
        (** semantics dropped by Fig. 4 precedence when a class's
            profile was resolved at channel creation (each also emits
            a [core.qos_conflict] trace event) *)
    filters_pruned : int;
        (** subscriptions whose lifted filter was proven unsatisfiable
            at subscribe time ({!Tpbs_filter.Subsume.unsat}): they are
            kept out of the routing index and never registered with
            filtering hosts, so the delivery path never evaluates them
            (each also emits a [core.filter_pruned] trace event) *)
    replayed : int;
        (** retained-history obvents delivered to replay
            subscriptions — counted apart from [deliveries] and kept
            out of the latency histogram (each also emits a
            [core.replay_deliver] trace event) *)
    channel_misses : int;
        (** egress-queue entries whose channel was gone by drain time
            (publish and transmission are decoupled for
            priority/timely traffic, so teardown can win the race);
            skipped, not fatal — also counted by [core.channel_misses]
            and traced as [channel_miss] events *)
  }

  val stats : t -> stats
  (** The aggregate view: per-shard slices merged on read. *)

  val n_shards : t -> int

  val shard_of_class : t -> string -> int
  (** The shard owning an obvent class ({!Tpbs_core.Shard.key}). *)

  val stats_of_shard : t -> int -> stats
  (** One shard's slice of {!stats}, for per-shard contention
      analysis (bench A4 ablation).
      @raise Invalid_argument if the shard index is out of range. *)

  val pool_stats : t -> Pool.stats option
  (** Dispatch-tier counters when the domain was created with
      [~domains] > 1. *)

  val shutdown : t -> unit
  (** Drain and join the dispatch-tier workers (a no-op without a
      pool). The domain remains usable for single-threaded work. *)

  val latency : t -> Tpbs_sim.Metric.t
  (** Publish-to-handler latency samples, virtual ticks. *)

  val reset_stats : t -> unit
  (** Zero every shard's stats slice. *)
end

module Subscription : sig
  type t

  val activate : t -> unit
  (** @raise Errors.Cannot_subscribe if already activated. *)

  val activate_durable : t -> id:int -> unit
  (** Certified subscriptions outlive their process (§3.4.1): the
      durable id names the subscription across incarnations; the
      actual catch-up happens in {!Process.resume}.
      @raise Errors.Cannot_subscribe if already activated, if the
      process has no stable storage, or if the id is already bound to
      a different subscribed type. *)

  val activate_replay : t -> from:int -> unit
  (** Activate and replay the retained certified past: every matching
      channel with a certified bottom is asked for its log from
      sequence [from] on (see {!Domain.retain_history}). History
      arrives on this subscription only — filtered as usual, counted
      as [replayed] — and anything past the live frontier splices
      into ordinary delivery (catch-up-then-live).
      @raise Errors.Cannot_subscribe if already activated or [from]
      is negative. *)

  val deactivate : t -> unit
  (** @raise Errors.Cannot_unsubscribe if not activated. *)

  val is_active : t -> bool

  val is_pruned : t -> bool
  (** The lifted filter was proven unsatisfiable at subscribe time;
      the subscription behaves normally but can never match, and the
      engine skips it on the delivery path. *)

  val id : t -> int
  val subscribed_type : t -> string
  val durable_id : t -> int option

  val set_single_threading : t -> unit
  val set_multi_threading : t -> max:int -> unit

  (** The extension the paper suggests in §3.3.5: at most one obvent
      of each concrete class processed at a time. *)
  val set_class_serial_threading : t -> unit
  val dispatch_stats : t -> Dispatch.stats
  val delivered : t -> int
  (** Obvents that reached this subscription's handler. *)
end

module Process : sig
  type t

  val create :
    Domain.t ->
    ?storage:Tpbs_sim.Stable.t ->
    ?rmi:Tpbs_rmi.Rmi.runtime ->
    Tpbs_sim.Net.node_id ->
    t
  (** Attach a pub/sub process to a node. At most one process per
      node.
      @raise Invalid_argument otherwise. *)

  val node : t -> Tpbs_sim.Net.node_id
  val domain : t -> Domain.t

  val subscribe :
    t ->
    param:string ->
    ?filter:Fspec.t ->
    ?service_time:int ->
    (Tpbs_obvent.Obvent.t -> unit) ->
    Subscription.t
  (** Create (but do not activate) a subscription to obvent type
      [param]. [Tree] filters are typechecked against [param] here —
      the compile-time check of LP1.
      @raise Errors.Cannot_subscribe if [param] is not an obvent type
      or the filter is ill-typed. *)

  val publish : t -> Tpbs_obvent.Obvent.t -> unit
  (** The [publish] primitive (§3.2): asynchronously disseminate to
      every concerned notifiable, per the obvent class's QoS.
      @raise Errors.Cannot_publish if the hosting node is crashed. *)

  val resume : t -> unit
  (** After the hosting node recovers from a crash: run every channel
      stack's resume hooks bottom-up (certified retransmissions +
      catch-up sync, ordering-layer retry timers) and re-register the
      process's active subscriptions with the broker. *)

  val subscriptions : t -> Subscription.t list

  val routing_stats : t -> Routing.stats
  (** This process's per-class routing-index counters (see
      {!Routing.stats}): cached classes, cumulative lookups, entry
      builds. Deliveries cost one lookup each; builds only happen on
      first sight of a class, after an activation touching it, or
      after a late type declaration. *)
end

(** Joining an out-of-process broker (e.g. [tpbsd] over TCP).

    The endpoint is a record of plain functions, so lib/core never
    depends on sockets: a transport connector
    ({!Tpbs_transport.Client}) provides publish/subscribe/unsubscribe
    upcalls and owns framing, write batching, credit-based
    backpressure, reconnection and certified
    retransmission/deduplication. Once connected, {e every} channel of
    the domain bottoms out in the remote transport (events go to the
    broker, which routes them to matching subscribers elsewhere), and
    subscription (de)activations register with the broker instead of
    an in-simulation filtering host. QoS across the wire is provided
    by the transport itself — reliable, per-origin FIFO, exactly-once
    under broker restarts — rather than recomposed from stack layers,
    which assume the simulated net. *)
module Remote : sig
  val decode_envelope : string -> (int * (int * int) * string) option
  (** [decode_envelope bytes] opens the event envelope the engine
      ships on every channel: [(publish_time, (origin_node, eseq),
      obvent_bytes)]. The out-of-process broker uses it to reach the
      serialized obvent for cursor-projection filtering without
      re-encoding anything. *)

  val decode_envelope_sub :
    string -> off:int -> len:int ->
    (int * (int * int) * (int * int)) option
  (** Slice twin of {!decode_envelope}: opens an envelope living at
      [bytes.[off .. off+len-1]] of a larger buffer — a transport
      frame still sitting in its decoder — without copying it, and
      hands the serialized obvent back as an absolute [(off, len)]
      into [bytes]. The broker points a
      {!Tpbs_serial.Cursor.of_substring} at that slice for its
      filter decisions, so a dropped event never costs an envelope
      copy. *)

  type t = {
    r_publish : cls:string -> string -> unit;
        (** ship one encoded event envelope of class [cls] *)
    r_subscribe :
      sid:int -> param:string -> filter:Tpbs_serial.Value.t -> unit;
        (** register subscription [sid] to type [param]; [filter] is a
            lifted {!Tpbs_filter.Rfilter} as a value, or [Null] for
            always-forward *)
    r_unsubscribe : sid:int -> unit;
  }

  val connect :
    Domain.t -> Process.t -> t -> (cls:string -> string -> unit)
  (** Wire the domain to a remote broker through [endpoint] and return
      the delivery injection: the connector calls it for every event
      frame received from the broker, and it runs the ordinary local
      delivery path (routing index, staleness, filters, COW clones)
      on [p]. Call before any channel is opened.
      @raise Invalid_argument if already connected, if the process
      belongs to another domain, or if channels already exist. *)
end

val add_broker : Domain.t -> Process.t -> unit
(** Designate a filtering host. Plain-unreliable traffic then routes
    publisher → broker(s) → matching subscribers. With several hosts,
    subscriptions are gathered per host (by subscriber node, §2.3.2
    "gathering filters of several subscribers on a given host") and a
    publisher sends one copy per host. Call before activity starts.
    @raise Invalid_argument if the node is already a filtering host. *)

val make_broker : Domain.t -> Process.t -> unit
(** Alias of {!add_broker} (historical name). *)

val broker_filter_stats : Domain.t -> Tpbs_filter.Factored.stats option
(** The first broker's compound-filter statistics (None when no
    broker). *)

val per_broker_filter_stats : Domain.t -> Tpbs_filter.Factored.stats list
(** Compound-filter statistics of every filtering host, in designation
    order. *)

val per_broker_routing_stats : Domain.t -> Routing.stats list
(** Routing-index statistics of every filtering host, in designation
    order. *)
