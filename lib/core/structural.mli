(** Structural ("tuple") publishing — the design alternative of §5.5.2
    "Tuples: Back to the Roots".

    The paper sketches extending [publish] to accept any number of
    arguments, and [subscribe] to bind a matching number of formals:

    {v publish (company, price, amount, market); v}
    {v subscribe (String company, float price, int amount, ...) {...} {...} v}

    matching by {e structural} rather than name equivalence. This
    module implements that alternative over its own best-effort
    channel: a subscription is an arity + per-position pattern
    (wildcard / kind / exact value) plus an optional client-side
    predicate — "a very appealing style … but requires a more complex
    filtering" (all matching is structural, nothing can be factored by
    type, and positions are anonymous). Comparing this with the
    type-based engine is part of experiment E7's territory. *)

type pattern =
  | Any
  | Kind of Tpbs_serial.Value.kind  (** a typed formal, as in Linda *)
  | Exact of Tpbs_serial.Value.t  (** an actual *)

type t
(** Per-process endpoint. *)

type sub

val attach : Pubsub.Process.t -> t
(** One endpoint per process; attaching again replaces the previous
    endpoint (its subscriptions stop receiving). *)

val publish : t -> Tpbs_serial.Value.t list -> unit
(** Send the tuple to every process of the domain (best effort). *)

val subscribe :
  t ->
  pattern list ->
  ?filter:(Tpbs_serial.Value.t list -> bool) ->
  (Tpbs_serial.Value.t list -> unit) ->
  sub
(** Create and activate a structural subscription. Each delivery
    hands the handler a fresh copy of the tuple. *)

val cancel : t -> sub -> unit
val delivered : sub -> int
val matches : pattern list -> Tpbs_serial.Value.t list -> bool
