(* The parallel dispatch tier: a work-stealing pool of OCaml 5
   domains fed by bounded per-shard queues.

   Topology: one bounded FIFO queue per shard; worker [w] owns queues
   [w, w + workers, w + 2*workers, ...], so with workers = shards the
   feed is SPSC-like — the engine thread is the single producer and
   the pinned worker the single consumer — and a shard's tasks always
   run in submission order on one domain unless stolen. An idle
   worker steals from the other queues rather than spinning, which
   keeps the pool busy when the class mix is skewed across shards.

   Back-pressure: [submit] blocks when the target queue is full
   (bounded capacity), and counts a pressure event whenever the queue
   is at or beyond the pressure threshold — the observable knob for
   the bench contention ablation.

   The barrier: [barrier] blocks the caller until every submitted
   task has completed (not merely been dequeued). The engine calls it
   at each tick barrier so a simulated tick's handler side effects are
   all visible before virtual time advances — that, plus the handoff
   queue in [Pubsub] for cross-shard publishes, is what keeps the
   sharded engine's observable behaviour equal to the serial one.

   One global mutex guards all queues. That is deliberately simple:
   the protected sections are a few pointer moves, and correctness
   (stealing, the completed==submitted barrier, shutdown) stays easy
   to reason about. The counters pool.tasks / pool.steals /
   pool.pressure are created per pool instance at [create], so
   engines that never spawn a pool emit no new metrics. *)

module Trace = Tpbs_trace.Trace

type queue = {
  buf : (unit -> unit) Queue.t;
  capacity : int;
  pressure_at : int;
}

type t = {
  mutable workers : unit Domain.t list;
  queues : queue array;
  mutex : Mutex.t;
  nonempty : Condition.t;
  not_full : Condition.t;
  idle : Condition.t;
  mutable submitted : int;
  mutable completed : int;
  mutable stop : bool;
  n_workers : int;
  c_tasks : Trace.Counter.t;
  c_steals : Trace.Counter.t;
  c_pressure : Trace.Counter.t;
  mutable stalls : int;
}

(* Set on pool worker domains via DLS so [on_worker] lets the engine
   detect calls made from handler code running off the engine thread
   (those must hand off instead of touching shard state directly). *)
let worker_key = Domain.DLS.new_key (fun () -> false)
let on_worker () = Domain.DLS.get worker_key

let total_queued t =
  Array.fold_left (fun acc q -> acc + Queue.length q.buf) 0 t.queues

(* Pop a task for worker [w]: own queues first (preserving per-shard
   FIFO), then steal a task from any other queue. Caller holds the
   mutex. *)
let try_pop t w =
  let n = Array.length t.queues in
  let rec own i =
    if i >= n then None
    else if Queue.length t.queues.(i).buf > 0 then
      Some (Queue.pop t.queues.(i).buf, false)
    else own (i + t.n_workers)
  in
  let rec steal i =
    if i >= n then None
    else if i mod t.n_workers <> w && Queue.length t.queues.(i).buf > 0 then
      Some (Queue.pop t.queues.(i).buf, true)
    else steal (i + 1)
  in
  match own w with Some r -> Some r | None -> steal 0

let worker_loop t w () =
  Domain.DLS.set worker_key true;
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      match try_pop t w with
      | Some (task, stolen) ->
          Condition.signal t.not_full;
          Mutex.unlock t.mutex;
          if stolen then Trace.Counter.incr t.c_steals;
          (try task () with _ -> ());
          Mutex.lock t.mutex;
          t.completed <- t.completed + 1;
          if t.completed = t.submitted then Condition.broadcast t.idle;
          next ()
      | None ->
          if t.stop then Mutex.unlock t.mutex
          else begin
            Condition.wait t.nonempty t.mutex;
            next ()
          end
    in
    next ();
    if not t.stop then loop ()
  in
  loop ()

let create ?(capacity = 1024) ?pressure ~workers ~shards () =
  let n_workers = max 1 workers in
  let n_queues = max n_workers (max 1 shards) in
  let pressure_at =
    match pressure with Some p -> p | None -> max 1 (capacity * 3 / 4)
  in
  let tr = Trace.ambient () in
  let t =
    {
      workers = [];
      queues =
        Array.init n_queues (fun _ ->
            { buf = Queue.create (); capacity; pressure_at });
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      not_full = Condition.create ();
      idle = Condition.create ();
      submitted = 0;
      completed = 0;
      stop = false;
      n_workers;
      c_tasks = Trace.counter tr "pool.tasks";
      c_steals = Trace.counter tr "pool.steals";
      c_pressure = Trace.counter tr "pool.pressure";
      stalls = 0;
    }
  in
  t.workers <- List.init n_workers (fun w -> Domain.spawn (worker_loop t w));
  t

let submit t ~shard task =
  let q = t.queues.(shard mod Array.length t.queues) in
  Mutex.lock t.mutex;
  while Queue.length q.buf >= q.capacity && not t.stop do
    t.stalls <- t.stalls + 1;
    Condition.wait t.not_full t.mutex
  done;
  if not t.stop then begin
    Queue.push task q.buf;
    t.submitted <- t.submitted + 1;
    if Queue.length q.buf >= q.pressure_at then
      Trace.Counter.incr t.c_pressure;
    Trace.Counter.incr t.c_tasks;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.mutex

(* Wait until every submitted task has completed. Also the engine's
   tick barrier: after it returns, all handler side effects of the
   tick are visible to the engine thread. *)
let barrier t =
  Mutex.lock t.mutex;
  while t.completed < t.submitted do
    Condition.wait t.idle t.mutex
  done;
  Mutex.unlock t.mutex

let shutdown t =
  barrier t;
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers

type stats = {
  tasks : int;
  steals : int;
  pressure_events : int;
  submit_stalls : int;
  queued : int;
  workers : int;
}

let stats t =
  Mutex.lock t.mutex;
  let queued = total_queued t and stalls = t.stalls in
  Mutex.unlock t.mutex;
  {
    tasks = Trace.Counter.value t.c_tasks;
    steals = Trace.Counter.value t.c_steals;
    pressure_events = Trace.Counter.value t.c_pressure;
    submit_stalls = stalls;
    queued;
    workers = t.n_workers;
  }
