module Registry = Tpbs_types.Registry
module Trace = Tpbs_trace.Trace

type 'a t = {
  reg : Registry.t;
  entries : (string, 'a list) Hashtbl.t;
      (* concrete obvent class -> targets whose subscribed type is a
         supertype, in the holder's canonical order *)
  mutable gen : int;  (* registry generation the cache was built against *)
  mutable lookups : int;
  mutable builds : int;
  c_lookups : Trace.Counter.t;  (* aggregated across indices *)
  c_builds : Trace.Counter.t;
}

let create reg =
  let tr = Trace.ambient () in
  {
    reg;
    entries = Hashtbl.create 16;
    gen = Registry.generation reg;
    lookups = 0;
    builds = 0;
    c_lookups = Trace.counter tr "core.routing.lookups";
    c_builds = Trace.counter tr "core.routing.builds";
  }

(* Late type declarations (the registry moved) invalidate everything:
   a new class may slot under any subscribed type, and a cached entry
   keyed by it would otherwise stay silently empty. *)
let validate t =
  let g = Registry.generation t.reg in
  if g <> t.gen then begin
    Hashtbl.reset t.entries;
    t.gen <- g
  end

let find t cls ~build =
  validate t;
  t.lookups <- t.lookups + 1;
  Trace.Counter.incr t.c_lookups;
  match Hashtbl.find_opt t.entries cls with
  | Some targets -> targets
  | None ->
      t.builds <- t.builds + 1;
      Trace.Counter.incr t.c_builds;
      let targets = build cls in
      Hashtbl.replace t.entries cls targets;
      targets

let invalidate t ~param =
  validate t;
  let affected =
    Hashtbl.fold
      (fun cls _ acc ->
        if Registry.subtype t.reg cls param then cls :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) affected

(* Sorted insertion keeping the holder's canonical order: the element
   goes before the first target it compares below. Activation order
   and creation order can differ (deactivate/reactivate churn), so a
   plain prepend would diverge from what a rebuild produces. *)
let rec insert_sorted compare x = function
  | [] -> [ x ]
  | y :: rest as targets ->
      if compare x y <= 0 then x :: targets
      else y :: insert_sorted compare x rest

let add t ~param ~compare x =
  validate t;
  Hashtbl.filter_map_inplace
    (fun cls targets ->
      if Registry.subtype t.reg cls param then
        Some (insert_sorted compare x targets)
      else Some targets)
    t.entries

let remove t ~param pred =
  validate t;
  Hashtbl.filter_map_inplace
    (fun cls targets ->
      if Registry.subtype t.reg cls param then
        Some (List.filter (fun x -> not (pred x)) targets)
      else Some targets)
    t.entries

let clear t = Hashtbl.reset t.entries

type stats = { classes : int; lookups : int; builds : int }

let stats t =
  { classes = Hashtbl.length t.entries; lookups = t.lookups;
    builds = t.builds }
