module Registry = Tpbs_types.Registry
module Qos = Tpbs_types.Qos
module Vtype = Tpbs_types.Vtype
module Obvent = Tpbs_obvent.Obvent
module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec
module Cursor = Tpbs_serial.Cursor
module Net = Tpbs_sim.Net
module Engine = Tpbs_sim.Engine
module Stable = Tpbs_sim.Stable
module Metric = Tpbs_sim.Metric
module Rng = Tpbs_sim.Rng
module Membership = Tpbs_group.Membership
module Gossip = Tpbs_group.Gossip
module Certified = Tpbs_group.Certified
module Layer = Tpbs_group.Layer
module Stack = Tpbs_group.Stack
module Rfilter = Tpbs_filter.Rfilter
module Fexpr = Tpbs_filter.Expr
module Subsume = Tpbs_filter.Subsume
module Mobility = Tpbs_filter.Mobility
module Factored = Tpbs_filter.Factored
module Typecheck = Tpbs_filter.Typecheck
module Trace = Tpbs_trace.Trace

let pub_port = "psb:pub"
let ctl_port = "psb:ctl"
let del_port = "psb:del"

(* A remote broker endpoint: the function-record seam a real
   transport connector (e.g. Tpbs_transport.Client over TCP) fills
   in. lib/core stays socket-free; the connector owns framing,
   credit, reconnection and certified retransmission. *)
type remote = {
  r_publish : cls:string -> string -> unit;
  r_subscribe : sid:int -> param:string -> filter:Value.t -> unit;
  r_unsubscribe : sid:int -> unit;
}

type tx_entry = {
  tx_cls : string;
  tx_envelope : string;
  tx_prio : int;
  tx_birth : int option;
  tx_ttl : int option;
  tx_seq : int;
}

type subscription = {
  sid : int;
  sub_process : process;
  param : string;
  filter : Fspec.t;
  rfilter : Rfilter.t option;  (* liftable + mobile: goes to the broker *)
  pruned : bool;
      (* lifted filter proven unsatisfiable at subscribe time: kept
         out of the routing index and never registered with filtering
         hosts — no event can ever match it *)
  dispatch : Dispatch.t;
  mutable active : bool;
  mutable durable : int option;
  mutable delivered : int;
}

and process = {
  dom : domain;
  node : Net.node_id;
  rmi : Tpbs_rmi.Rmi.runtime option;
  cert_storage : Stable.t;
  pshards : pshard array;
      (* this process's slice of each engine shard, indexed like
         [domain.shards]: the channel stacks, routing index and egress
         queue for the classes that shard owns *)
  mutable subs : subscription list;
  interest : (Net.node_id * string, unit) Hashtbl.t;
      (* (node, subscribed type) pairs learned from the meta channel:
         this process's local view of who wants what *)
}

(* One process × one shard. Everything here is only ever touched for
   classes the shard owns, so shards pinned to different domains never
   contend on these tables. The routing index is the exception in
   spirit: a subscription to a supertype must be visible from every
   shard (its concrete subclasses can hash anywhere), so [route_in]
   registers it with all pshards — but each index is still only read
   and memoized for its own shard's classes. *)
and pshard = {
  ps_channels : (string, Stack.t) Hashtbl.t;
  ps_route : subscription Routing.t;
      (* concrete class -> active subscriptions it routes to *)
  mutable ps_txq : tx_entry list;
  mutable ps_tx_armed : bool;
  mutable ps_tx_next_seq : int;
}

and channel_meta = {
  profile : Qos.profile;
  members : Membership.t;
  gossip_config : Gossip.config option;
  retain : bool;
      (* keep acknowledged certified history for replay subscriptions *)
}

and broker_sub = { b_node : Net.node_id; b_param : string; b_always : bool }

and broker_state = {
  b_process : process;
  factored : Factored.t;
  broker_subs : (int, broker_sub) Hashtbl.t;
  b_route : (int * broker_sub) Routing.t;
      (* concrete class -> broker subscriptions it routes to *)
}

(* Observability handles captured once at Domain.create: counters are
   always-on plain int bumps; trace events additionally check
   [Trace.emitting] so the disabled path costs one load+branch. *)
and obs = {
  tr : Trace.t;
  c_published : Trace.Counter.t;
  c_routed : Trace.Counter.t;
  c_deliveries : Trace.Counter.t;
  c_filtered : Trace.Counter.t;
  c_expired : Trace.Counter.t;
  c_cloned : Trace.Counter.t;
  c_decode_errors : Trace.Counter.t;
  c_broker_forwards : Trace.Counter.t;
  c_qos_conflicts : Trace.Counter.t;
  c_filters_pruned : Trace.Counter.t;
  c_replayed : Trace.Counter.t;
  c_channel_misses : Trace.Counter.t;
}

and domain = {
  registry : Registry.t;
  net : Net.t;
  tx_interval : int;
  rng : Rng.t;
  n_shards : int;
  shards : channel_meta Shard.t array;
      (* shard-local channel metadata + stats; classes are partitioned
         across shards by [Shard.key] of the class id *)
  pool : Pool.t option;
      (* the parallel dispatch tier, present when the domain was
         created with [~domains] > 1: handler bodies of Multi-policy
         subscriptions run on its workers, pinned per shard *)
  handoff : (unit -> unit) Queue.t;
  handoff_mutex : Mutex.t;
      (* cross-shard hand-off: engine mutations requested from pool
         workers (e.g. a handler publishing) are queued here and
         drained on the engine thread at the tick barrier *)
  mutable flush_storages : Stable.t list;
      (* grouped (group-commit) storages to [Stable.flush] once per
         tick barrier *)
  mutable barrier_installed : bool;
  mutable processes : process list;  (* newest first; see processes_in_order *)
  gossip_overrides : (string, Gossip.config) Hashtbl.t;
  retain_overrides : (string, unit) Hashtbl.t;
  mutable brokers : broker_state list;  (* newest first; see brokers_in_order *)
  mutable remote : remote option;
      (* connected to an out-of-process broker: every channel bottoms
         out in the remote transport, subscriptions register there *)
  mutable meta_enabled : bool;
  mutable targeted : bool;  (* subscription-aware best-effort dissemination *)
  mutable next_sid : int;
  mutable next_eid : int;  (* per-domain publish sequence for event ids *)
  obs : obs;
  latency : Metric.t;
}

(* Registration prepends (constant-time); every ordered consumer goes
   through these accessors, which restore creation/designation
   order. *)
let processes_in_order d = List.rev d.processes
let brokers_in_order d = List.rev d.brokers

(* --- shard plumbing --------------------------------------------------- *)

let shard_ix d cls = Shard.key ~n_shards:d.n_shards cls
let shard_of d cls = d.shards.(shard_ix d cls)

(* The owning shard's stats slice for a class — every former
   [d.<stat> <- ...] bump goes through one of these. Sites with no
   class in hand (an undecodable frame) account to shard 0. *)
let sstats d cls = Shard.stats (shard_of d cls)
let sstats0 d = Shard.stats d.shards.(0)
let pshard p cls = p.pshards.(shard_ix p.dom cls)

let meta_find d cls = Hashtbl.find_opt (Shard.channel_meta (shard_of d cls)) cls

let meta_count d =
  Array.fold_left
    (fun acc sh -> acc + Hashtbl.length (Shard.channel_meta sh))
    0 d.shards

(* Engine thunks queued by pool workers, run on the engine thread. *)
let drain_handoff d =
  let pending = Queue.create () in
  Mutex.lock d.handoff_mutex;
  Queue.transfer d.handoff pending;
  Mutex.unlock d.handoff_mutex;
  Queue.iter (fun f -> f ()) pending

(* The tick barrier joins the sharded world back together between
   virtual-time steps: wait for every offloaded handler to complete,
   apply their queued cross-shard publishes, then pay the single
   group-commit fsync of any grouped storage. Installed lazily — an
   unsharded, ungrouped domain leaves the engine loop untouched. *)
let install_barrier d =
  if not d.barrier_installed then begin
    d.barrier_installed <- true;
    Engine.add_tick_barrier (Net.engine d.net) (fun () ->
        (match d.pool with Some pool -> Pool.barrier pool | None -> ());
        drain_handoff d;
        List.iter Stable.flush d.flush_storages)
  end

(* --- envelopes ------------------------------------------------------- *)

(* The envelope carries the event id (origin node, per-domain publish
   seq) so every hop of an event's life — publish, route, filter,
   deliver, expire — can be correlated across nodes in the trace. *)
let encode_envelope ~publish_time ~eid:(origin, eseq) obvent_bytes =
  Codec.encode
    (List [ Int publish_time; Int origin; Int eseq; Str obvent_bytes ])

let decode_envelope bytes =
  match Codec.decode bytes with
  | List [ Int publish_time; Int origin; Int eseq; Str obvent_bytes ] ->
      Some (publish_time, (origin, eseq), obvent_bytes)
  | _ | (exception Codec.Decode_error _) -> None

(* Slice twin of [decode_envelope]: open an envelope living at
   [bytes.[off .. off+len-1]] of a larger buffer (a transport frame)
   in place, handing the serialized obvent back as an absolute
   (off, len) into [bytes] instead of a copy. Envelope-format
   knowledge stays here; the broker only sees offsets. *)
let decode_envelope_sub bytes ~off ~len =
  let module Wire = Tpbs_serial.Wire in
  let r = Wire.Reader.of_substring bytes ~off ~len in
  match
    (let open Codec in
     match list_header r with
     | Some 4 -> (
         match int_prefix r with
         | None -> None
         | Some publish_time -> (
             match int_prefix r with
             | None -> None
             | Some origin -> (
                 match int_prefix r with
                 | None -> None
                 | Some eseq -> (
                     match str_pos r with
                     | Some (opos, olen) when Wire.Reader.at_end r ->
                         Some (publish_time, (origin, eseq), (opos, olen))
                     | _ -> None))))
     | _ -> None)
  with
  | v -> v
  | exception (Wire.Truncated _ | Wire.Malformed _ | Codec.Decode_error _) ->
      None

let encode_routed ~cls envelope = Codec.encode (List [ Str cls; Str envelope ])

let decode_routed bytes =
  match Codec.decode bytes with
  | List [ Str cls; Str envelope ] -> Some (cls, envelope)
  | _ | (exception Codec.Decode_error _) -> None

(* --- domain ------------------------------------------------------------ *)

module Domain = struct
  type t = domain

  let create ?(tx_interval = 200) ?n_shards ?(domains = 1) registry net =
    let domains = max 1 domains in
    let n_shards =
      match n_shards with Some n -> max 1 n | None -> domains
    in
    let tr = Trace.ambient () in
    let shards =
      Array.init n_shards (fun k ->
          (* Per-shard delivery counters only exist on actually-sharded
             engines: a default domain's metrics output stays identical
             to the unsharded one. *)
          let c_deliveries =
            if n_shards > 1 then
              Some
                (Trace.counter tr (Printf.sprintf "core.shard.%d.deliveries" k))
            else None
          in
          Shard.create ?c_deliveries ~id:k ())
    in
    let pool =
      if domains > 1 then
        Some (Pool.create ~workers:domains ~shards:n_shards ())
      else None
    in
    let d =
      {
      registry;
      net;
      tx_interval;
      rng = Rng.split (Engine.rng (Net.engine net));
      n_shards;
      shards;
      pool;
      handoff = Queue.create ();
      handoff_mutex = Mutex.create ();
      flush_storages = [];
      barrier_installed = false;
      processes = [];
      gossip_overrides = Hashtbl.create 4;
      retain_overrides = Hashtbl.create 4;
      brokers = [];
      remote = None;
      meta_enabled = false;
      targeted = false;
      next_sid = 0;
      next_eid = 0;
      obs =
        (
         {
           tr;
           c_published = Trace.counter tr "core.published";
           c_routed = Trace.counter tr "core.routed";
           c_deliveries = Trace.counter tr "core.deliveries";
           c_filtered = Trace.counter tr "core.filtered_out";
           c_expired = Trace.counter tr "core.expired";
           c_cloned = Trace.counter tr "core.cloned";
           c_decode_errors = Trace.counter tr "core.decode_errors";
           c_broker_forwards = Trace.counter tr "core.broker_forwards";
           c_qos_conflicts = Trace.counter tr "core.qos_conflicts";
           c_filters_pruned = Trace.counter tr "core.filters_pruned";
           c_replayed = Trace.counter tr "core.replayed";
           c_channel_misses = Trace.counter tr "core.channel_misses";
         });
      latency = Metric.create ();
      }
    in
    Trace.register_histogram d.obs.tr "core.latency" d.latency;
    (* A pooled domain always needs the barrier (handler join +
       hand-off drain); grouped storages install it on registration. *)
    if Option.is_some pool then install_barrier d;
    d

  let registry d = d.registry
  let net d = d.net
  let engine d = Net.engine d.net
  let nodes d = List.rev_map (fun p -> p.node) d.processes

  let enable_meta d = d.meta_enabled <- true

  let enable_targeted_dissemination d =
    d.meta_enabled <- true;
    d.targeted <- true

  let use_gossip d ~cls ?(config = Gossip.default_config) () =
    if meta_find d cls <> None then
      invalid_arg "Domain.use_gossip: channel already opened";
    Hashtbl.replace d.gossip_overrides cls config

  let retain_history d ~cls =
    if meta_find d cls <> None then
      invalid_arg "Domain.retain_history: channel already opened";
    Hashtbl.replace d.retain_overrides cls ()

  type stats = {
    published : int;
    deliveries : int;
    filtered_out : int;
    expired : int;
    decode_errors : int;
    broker_forwards : int;
    broker_events : int;
    control_messages : int;
    qos_conflicts : int;
    filters_pruned : int;
    replayed : int;
    channel_misses : int;
  }

  let of_shard_stats (m : Shard.stats) =
    {
      published = m.Shard.published;
      deliveries = m.Shard.deliveries;
      filtered_out = m.Shard.filtered_out;
      expired = m.Shard.expired;
      decode_errors = m.Shard.decode_errors;
      broker_forwards = m.Shard.broker_forwards;
      broker_events = m.Shard.broker_events;
      control_messages = m.Shard.control_messages;
      qos_conflicts = m.Shard.qos_conflicts;
      filters_pruned = m.Shard.filters_pruned;
      replayed = m.Shard.replayed;
      channel_misses = m.Shard.channel_misses;
    }

  (* Merge-on-read: each shard's slice is owned by one thread; the
     aggregate view sums the slices. *)
  let stats (d : t) =
    let m = Shard.zero_stats () in
    Array.iter (fun sh -> Shard.add_stats m (Shard.stats sh)) d.shards;
    of_shard_stats m

  let n_shards (d : t) = d.n_shards

  let shard_of_class (d : t) cls = shard_ix d cls

  let stats_of_shard (d : t) k =
    if k < 0 || k >= d.n_shards then
      invalid_arg "Domain.stats_of_shard: no such shard";
    of_shard_stats (Shard.stats d.shards.(k))

  let pool_stats (d : t) = Option.map Pool.stats d.pool

  let shutdown (d : t) =
    match d.pool with None -> () | Some pool -> Pool.shutdown pool

  let latency d = d.latency

  let reset_stats (d : t) =
    Array.iter (fun sh -> Shard.reset_stats (Shard.stats sh)) d.shards
end

let now_of d = Engine.now (Net.engine d.net)

(* --- delivery path ---------------------------------------------------- *)

let adopt_proxies p obvent =
  match p.rmi with
  | None -> ()
  | Some runtime ->
      Value.fold
        (fun () v ->
          match v with
          | Value.Remote _ -> Tpbs_rmi.Rmi.adopt_proxy runtime v
          | _ -> ())
        () (Obvent.to_value obvent)

(* Timely staleness decided by lazy field projection over the encoded
   payload: two cursor probes instead of a full decode, so an expired
   event costs zero materializations on this node. A payload the
   cursor cannot navigate is simply not stale here — the gating decode
   downstream will account the malformation. *)
let stale_lazy d meta cursor =
  meta.profile.Qos.timely
  &&
  match
    match Cursor.class_id cursor with
    | Some cls when Registry.subtype d.registry cls "Timely" ->
        ( Cursor.project cursor [ "birth" ],
          Cursor.project cursor [ "timeToLive" ] )
    | Some _ | None -> None, None
  with
  | Some (Value.Int birth), Some (Value.Int ttl) -> now_of d > birth + ttl
  | _, _ -> false
  | exception Codec.Decode_error _ -> false

let deliver_clone p ~publish_time ~eid sh s obvent =
  let d = p.dom in
  s.delivered <- s.delivered + 1;
  let st = Shard.stats sh in
  st.Shard.deliveries <- st.Shard.deliveries + 1;
  Shard.count_delivery sh;
  Trace.Counter.incr d.obs.c_deliveries;
  Metric.record d.latency (float_of_int (now_of d - publish_time));
  if Trace.emitting d.obs.tr then
    Trace.emit d.obs.tr ~layer:"core" ~kind:"deliver" ~node:p.node ~id:eid
      ~data:[ ("sid", Trace.I s.sid) ] ();
  (* §5.4.2: a delivered copy containing remote references
     creates proxies in the subscriber's address space. *)
  adopt_proxies p obvent;
  Dispatch.submit s.dispatch obvent

let routed_subscriptions p cls =
  Routing.find (pshard p cls).ps_route cls ~build:(fun cls ->
      let reg = p.dom.registry in
      List.filter
        (fun s -> s.active && (not s.pruned) && Registry.subtype reg cls s.param)
        p.subs)

(* Learn interest from control traffic: every process sees the meta
   channel (it is broadcast) and updates its local routing view. *)
let learn_interest p cls obvent_bytes =
  let d = p.dom in
  if d.targeted && (cls = "SubscriptionActivated" || cls = "SubscriptionDeactivated")
  then
    match Obvent.deserialize d.registry obvent_bytes with
    | exception Obvent.Invalid_obvent _ -> ()
    | o -> (
        match Obvent.get o "nodeId", Obvent.get o "subscribedType" with
        | Value.Int node, Value.Str param ->
            if cls = "SubscriptionActivated" then
              Hashtbl.replace p.interest (node, param) ()
            else Hashtbl.remove p.interest (node, param)
        | _, _ -> ())

(* Delivery hot path: one routing-index lookup and at most ONE decode
   per event, however many subscribers match. Staleness (Timely) is
   settled by lazy projection before any decode; filters are evaluated
   on the single gating decode; each further matching subscriber then
   receives a copy-on-write view of the gate — fresh uid, field spine
   physically shared, so the per-notifiable clone §2.1.2 mandates
   costs O(1) instead of a serialize+deserialize round trip. Isolation
   holds because a write through any copy rebinds that copy's spine,
   never a sibling's. Classes marked EagerClone opt out of sharing and
   fall back to one deserialization per subscriber, reusing the
   envelope's already-encoded bytes (serialize once, decode N
   times). *)
let on_event p cls envelope =
  let d = p.dom in
  let sh = shard_of d cls in
  let st = Shard.stats sh in
  let decode_error () =
    st.Shard.decode_errors <- st.Shard.decode_errors + 1;
    Trace.Counter.incr d.obs.c_decode_errors;
    if Trace.emitting d.obs.tr then
      Trace.emit d.obs.tr ~layer:"core" ~kind:"decode_error" ~node:p.node
        ~data:[ ("cls", Trace.S cls) ] ()
  in
  match decode_envelope envelope with
  | None -> decode_error ()
  | Some (publish_time, eid, obvent_bytes) -> (
      learn_interest p cls obvent_bytes;
      match Hashtbl.find_opt (Shard.channel_meta sh) cls with
      | None ->
          (* Delivery raced channel registration: count the miss, do
             not abort the simulation. *)
          decode_error ()
      | Some meta -> (
          match routed_subscriptions p cls with
          | [] -> ()
          | subs -> (
              Trace.Counter.incr d.obs.c_routed;
              if Trace.emitting d.obs.tr then
                Trace.emit d.obs.tr ~layer:"core" ~kind:"route" ~node:p.node
                  ~id:eid
                  ~data:
                    [ ("cls", Trace.S cls);
                      ("targets", Trace.I (List.length subs)) ]
                  ();
              if stale_lazy d meta (Cursor.of_string obvent_bytes) then begin
                (* Once per event, not once per matching subscription —
                   and without ever materializing the obvent. *)
                st.Shard.expired <- st.Shard.expired + 1;
                Trace.Counter.incr d.obs.c_expired;
                if Trace.emitting d.obs.tr then
                  Trace.emit d.obs.tr ~layer:"core" ~kind:"expire"
                    ~node:p.node ~id:eid ()
              end
              else
                match Obvent.deserialize d.registry obvent_bytes with
                | exception Obvent.Invalid_obvent _ -> decode_error ()
                | gate ->
                    Trace.Counter.incr d.obs.c_cloned;
                    let dropped = ref 0 in
                    let matched =
                      List.filter
                        (fun s ->
                          if Fspec.matches d.registry s.filter gate then true
                          else begin
                            st.Shard.filtered_out <- st.Shard.filtered_out + 1;
                            Trace.Counter.incr d.obs.c_filtered;
                            incr dropped;
                            false
                          end)
                        subs
                    in
                    if !dropped > 0 && Trace.emitting d.obs.tr then
                      Trace.emit d.obs.tr ~layer:"core" ~kind:"filter_drop"
                        ~node:p.node ~id:eid
                        ~data:[ ("dropped", Trace.I !dropped) ]
                        ();
                    let eager =
                      Registry.subtype d.registry (Obvent.cls gate)
                        "EagerClone"
                    in
                    (* Every clone is minted before any delivery runs:
                       dispatch may invoke a handler synchronously, and
                       a view must snapshot the gate's spine before any
                       subscriber gets a chance to write through it. *)
                    let clones =
                      List.mapi
                        (fun i s ->
                          let clone =
                            if i = 0 then gate
                            else begin
                              Trace.Counter.incr d.obs.c_cloned;
                              if eager then
                                Obvent.deserialize d.registry obvent_bytes
                              else Obvent.view gate
                            end
                          in
                          s, clone)
                        matched
                    in
                    List.iter
                      (fun (s, clone) ->
                        deliver_clone p ~publish_time ~eid sh s clone)
                      clones)))

(* Replay delivery: a replayed history envelope goes only to the
   replay subscription that asked for it — every other subscriber on
   this process already saw (or chose not to see) the event when it
   was live. Filters apply as usual; staleness does not (replayed
   history is by definition old). Counted as [replayed] separately
   from live deliveries, and kept out of the latency histogram, which
   measures the live path. *)
let replay_event p s cls envelope =
  let d = p.dom in
  let st = sstats d cls in
  let decode_error () =
    st.Shard.decode_errors <- st.Shard.decode_errors + 1;
    Trace.Counter.incr d.obs.c_decode_errors
  in
  if s.active && not s.pruned then
    match decode_envelope envelope with
    | None -> decode_error ()
    | Some (_publish_time, eid, obvent_bytes) -> (
        match Obvent.deserialize d.registry obvent_bytes with
        | exception Obvent.Invalid_obvent _ -> decode_error ()
        | gate ->
            if
              Registry.subtype d.registry (Obvent.cls gate) s.param
              && Fspec.matches d.registry s.filter gate
            then begin
              s.delivered <- s.delivered + 1;
              st.Shard.replayed <- st.Shard.replayed + 1;
              Trace.Counter.incr d.obs.c_replayed;
              if Trace.emitting d.obs.tr then
                Trace.emit d.obs.tr ~layer:"core" ~kind:"replay_deliver"
                  ~node:p.node ~id:eid
                  ~data:[ ("cls", Trace.S cls); ("sid", Trace.I s.sid) ]
                  ();
              adopt_proxies p gate;
              Dispatch.submit s.dispatch gate
            end)

(* --- channels ------------------------------------------------------------ *)

(* Events published on a broker-routed channel go publisher →
   filtering host(s); the hosts forward to matching subscribers on
   [del_port], outside the stack — hence the dropped upcall. *)
let broker_transport p cls =
  Layer.make ~name:"transport:broker"
    ~send:(fun ?self:_ ?except:_ envelope ->
      List.iter
        (fun b ->
          Net.send p.dom.net ~src:p.node ~dst:b.b_process.node ~port:pub_port
            (encode_routed ~cls envelope))
        (brokers_in_order p.dom))
    ~set_deliver:(fun _ -> ())
    ()

(* Channels of a remotely-connected domain all bottom out here: the
   connector ships the envelope to the broker, deliveries come back
   through the injection function of [Remote.connect], outside the
   stack. The TCP substrate is reliable and per-origin FIFO, and the
   connector layers certified acks/retransmission on top, so the
   stack above stays bare — QoS is provided by the transport, not
   recomposed over it. *)
let remote_transport r cls =
  Layer.make ~name:"transport:remote"
    ~send:(fun ?self:_ ?except:_ envelope -> r.r_publish ~cls envelope)
    ~set_deliver:(fun _ -> ())
    ()

let attach_channel p cls (meta : channel_meta) =
  let ps = pshard p cls in
  if not (Hashtbl.mem ps.ps_channels cls) then begin
    let deliver ~origin:_ envelope = on_event p cls envelope in
    let profile =
      match p.dom.remote with
      | Some _ ->
          { meta.profile with
            Qos.certified = false; reliable = false; order = Qos.No_order }
      | None -> meta.profile
    in
    let transport =
      match p.dom.remote with
      | Some r -> Stack.Custom (remote_transport r cls)
      | None ->
      match meta.gossip_config with
      | Some config when not profile.Qos.certified ->
          let n = Membership.size meta.members in
          let contacts =
            List.map
              (fun k -> (Membership.members meta.members).(k))
              (Rng.sample_without_replacement p.dom.rng (min 4 n) n)
          in
          Stack.Gossip_net (config, contacts)
      | Some _ | None ->
          if
            (not profile.Qos.certified) && (not profile.Qos.reliable)
            && profile.Qos.order = Qos.No_order
            && p.dom.brokers <> []
          then Stack.Custom (broker_transport p cls)
          else Stack.Best
    in
    let stack =
      Stack.assemble profile ~transport ~storage:p.cert_storage
        ~retain_acked:meta.retain ~shard:(shard_ix p.dom cls)
        ~group:meta.members ~me:p.node ~name:cls ~deliver ()
    in
    Hashtbl.replace ps.ps_channels cls stack
  end

let ensure_channel d cls =
  match meta_find d cls with
  | Some meta -> meta
  | None ->
      let st = sstats d cls in
      let profile, conflicts = Qos.of_type d.registry cls in
      (* Fig. 4 precedence dropped a requested semantics: surface it
         instead of silently resolving (once per class, at channel
         creation). *)
      List.iter
        (fun c ->
          st.Shard.qos_conflicts <- st.Shard.qos_conflicts + 1;
          Trace.Counter.incr d.obs.c_qos_conflicts;
          if Trace.emitting d.obs.tr then
            Trace.emit d.obs.tr ~layer:"core" ~kind:"qos_conflict"
              ~data:
                [ ("cls", Trace.S cls);
                  ("dropped", Trace.S (Qos.conflict_label c)) ]
              ())
        conflicts;
      let members =
        Membership.create d.net (List.rev_map (fun p -> p.node) d.processes)
      in
      let meta =
        { profile; members;
          gossip_config = Hashtbl.find_opt d.gossip_overrides cls;
          retain = Hashtbl.mem d.retain_overrides cls }
      in
      Hashtbl.replace (Shard.channel_meta (shard_of d cls)) cls meta;
      (* Creation order: attach order feeds per-process RNG draws. *)
      List.iter (fun p -> attach_channel p cls meta) (processes_in_order d);
      meta

(* --- transmission ----------------------------------------------------------- *)

let transmit p cls envelope =
  let meta = ensure_channel p.dom cls in
  attach_channel p cls meta;
  match Hashtbl.find_opt (pshard p cls).ps_channels cls with
  | None ->
      (* The channel vanished between enqueue and drain (the egress
         queue decouples publish from transmission, so a concurrent
         unsubscribe/teardown can win the race). A bare [Not_found]
         here used to kill the whole engine tick; skip the entry,
         counted and traced like any other tolerated inconsistency. *)
      let d = p.dom in
      let st = sstats d cls in
      st.Shard.channel_misses <- st.Shard.channel_misses + 1;
      Trace.Counter.incr d.obs.c_channel_misses;
      if Trace.emitting d.obs.tr then
        Trace.emit d.obs.tr ~layer:"core" ~kind:"channel_miss" ~node:p.node
          ~data:[ ("cls", Trace.S cls) ] ()
  | Some stack -> (
  match Stack.targeted stack with
  | Some send_to
    when p.dom.targeted
         && not (Registry.subtype p.dom.registry cls "MetaObvent") ->
      (* Subscription-aware dissemination: address only the nodes this
         process believes are interested (learned eventually from the
         meta channel), in node order so traces do not depend on
         hashtable iteration. Control traffic itself stays
         broadcast. *)
      let targets = Hashtbl.create 8 in
      Hashtbl.iter
        (fun (node, param) () ->
          if Registry.subtype p.dom.registry cls param then
            Hashtbl.replace targets node ())
        p.interest;
      Hashtbl.fold (fun node () acc -> node :: acc) targets []
      |> List.sort Int.compare
      |> List.iter (fun node -> send_to ~dst:node envelope)
  | Some _ | None -> Stack.bcast stack envelope)

(* Egress queue for Prioritary/Timely traffic: one message per drain
   slot; higher priority overtakes, later-born timely obvents are
   preferred, stale ones expire in the queue (§3.1.2 "transmission
   semantics"). The queue is per process × shard, so a sharded engine
   drains one message per interval per shard — egress bandwidth
   scales with the shard count, which is what the E1 sharded-dispatch
   bench measures. *)
let rec drain_tx p six =
  let ps = p.pshards.(six) in
  ps.ps_tx_armed <- false;
  let d = p.dom in
  let current = now_of d in
  let fresh, dead =
    List.partition
      (fun e ->
        match e.tx_birth, e.tx_ttl with
        | Some birth, Some ttl -> current <= birth + ttl
        | _, _ -> true)
      ps.ps_txq
  in
  let st = Shard.stats d.shards.(six) in
  st.Shard.expired <- st.Shard.expired + List.length dead;
  Trace.Counter.add d.obs.c_expired (List.length dead);
  if dead <> [] && Trace.emitting d.obs.tr then
    Trace.emit d.obs.tr ~layer:"core" ~kind:"expire_tx" ~node:p.node
      ~data:[ ("count", Trace.I (List.length dead)) ]
      ();
  ps.ps_txq <- fresh;
  match fresh with
  | [] -> ()
  | entries ->
      let better a b =
        if a.tx_prio <> b.tx_prio then a.tx_prio > b.tx_prio
        else
          match a.tx_birth, b.tx_birth with
          | Some ba, Some bb when ba <> bb -> ba > bb  (* newer first *)
          | _ -> a.tx_seq < b.tx_seq
      in
      let best =
        List.fold_left (fun acc e -> if better e acc then e else acc)
          (List.hd entries) (List.tl entries)
      in
      ps.ps_txq <- List.filter (fun e -> e.tx_seq <> best.tx_seq) ps.ps_txq;
      transmit p best.tx_cls best.tx_envelope;
      arm_tx p six

and arm_tx p six =
  let ps = p.pshards.(six) in
  if (not ps.ps_tx_armed) && ps.ps_txq <> [] then begin
    ps.ps_tx_armed <- true;
    Net.schedule_on p.dom.net p.node ~delay:p.dom.tx_interval (fun () ->
        drain_tx p six)
  end

(* --- broker ------------------------------------------------------------------ *)

(* Broker subscriptions whose param is a supertype of [cls], sid
   ascending — memoized per concrete class, like the process-side
   index. *)
let broker_route d b cls =
  Routing.find b.b_route cls ~build:(fun cls ->
      Hashtbl.fold
        (fun sid sub acc ->
          if Registry.subtype d.registry cls sub.b_param then
            (sid, sub) :: acc
          else acc)
        b.broker_subs []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b))

let broker_on_publish d b bytes =
  match decode_routed bytes with
  | None ->
      (* No class to key on: account the malformed frame to shard 0. *)
      let st = sstats0 d in
      st.Shard.decode_errors <- st.Shard.decode_errors + 1;
      Trace.Counter.incr d.obs.c_decode_errors
  | Some (cls, envelope) -> (
      let st = sstats d cls in
      st.Shard.broker_events <- st.Shard.broker_events + 1;
      match decode_envelope envelope with
      | None ->
          st.Shard.decode_errors <- st.Shard.decode_errors + 1;
          Trace.Counter.incr d.obs.c_decode_errors
      | Some (_, eid, obvent_bytes) -> (
          match broker_route d b cls with
          | [] -> ()
          | routed ->
              (* Factored matching once per event, only when the class
                 routes somewhere; O(1) set membership per routed
                 subscription. The compound filter reads the event only
                 through lazy cursor projections — one skip-navigation
                 per unique getter path — so the filtering host decides
                 match or drop without ever materializing the full
                 obvent. Mirrors Rfilter.eval_path: getter names map to
                 attributes, navigation descends through objects only.
                 A payload the cursor cannot navigate matches nothing,
                 exactly as a failed full decode used to. *)
              let cursor = Cursor.of_string obvent_bytes in
              let resolve path =
                let rec to_attrs = function
                  | [] -> Some []
                  | m :: rest -> (
                      match Obvent.attr_of_getter m with
                      | None -> None
                      | Some a -> (
                          match to_attrs rest with
                          | None -> None
                          | Some tl -> Some (a :: tl)))
                in
                match to_attrs path with
                | None -> None
                | Some attrs -> Cursor.project cursor attrs
              in
              let matched_ids =
                match Factored.matches_set_resolve b.factored resolve with
                | ids -> ids
                | exception Codec.Decode_error _ -> Hashtbl.create 1
              in
              let sent = Hashtbl.create 8 in
              List.iter
                (fun (sid, sub) ->
                  if
                    (sub.b_always || Hashtbl.mem matched_ids sid)
                    && not (Hashtbl.mem sent sub.b_node)
                  then begin
                    Hashtbl.replace sent sub.b_node ();
                    st.Shard.broker_forwards <- st.Shard.broker_forwards + 1;
                    Trace.Counter.incr d.obs.c_broker_forwards;
                    if Trace.emitting d.obs.tr then
                      Trace.emit d.obs.tr ~layer:"broker" ~kind:"forward"
                        ~node:b.b_process.node ~id:eid
                        ~data:[ ("dst", Trace.I sub.b_node) ]
                        ();
                    Net.send d.net ~src:b.b_process.node ~dst:sub.b_node
                      ~port:del_port
                      (encode_routed ~cls envelope)
                  end)
                routed))

let broker_on_ctl d b bytes =
  match Codec.decode bytes with
  | List [ Str "sub"; Int sid; Int node; Str param; filt ] ->
      let always, rfilter =
        match filt with
        | Value.Null -> true, None
        | v -> (
            match Rfilter.of_value v with
            | Some rf -> false, Some rf
            | None -> true, None)
      in
      if not (Hashtbl.mem b.broker_subs sid) then begin
        let sub = { b_node = node; b_param = param; b_always = always } in
        Hashtbl.replace b.broker_subs sid sub;
        (* Broker entries are kept sid-ascending; splice in place. *)
        Routing.add b.b_route ~param
          ~compare:(fun (s1, _) (s2, _) -> Int.compare s1 s2)
          (sid, sub);
        match rfilter with
        | Some rf -> Factored.add b.factored ~id:sid rf
        | None -> ()
      end
  | List [ Str "unsub"; Int sid ] -> (
      match Hashtbl.find_opt b.broker_subs sid with
      | None -> ()
      | Some sub ->
          Hashtbl.remove b.broker_subs sid;
          Routing.remove b.b_route ~param:sub.b_param (fun (sid', _) ->
              sid' = sid);
          Factored.remove b.factored ~id:sid)
  | _ | (exception Codec.Decode_error _) ->
      let st = sstats0 d in
      st.Shard.decode_errors <- st.Shard.decode_errors + 1;
      Trace.Counter.incr d.obs.c_decode_errors

(* --- the reflexive meta channel (§4.2) ----------------------------------------- *)

(* Subscription and unsubscription requests are obvents themselves,
   disseminated on the channel of their own class. Meta traffic about
   meta subscriptions is suppressed to keep the reflexive tower
   finite. *)
let publish_meta_fwd :
    (process -> cls:string -> sid:int -> param:string -> unit) ref =
  ref (fun _ ~cls:_ ~sid:_ ~param:_ -> ())

let emit_meta p ~cls ~sid ~param =
  let d = p.dom in
  if d.targeted && not (Registry.subtype d.registry param "MetaObvent") then begin
    (* The subscriber's own process knows immediately. *)
    if cls = "SubscriptionActivated" then
      Hashtbl.replace p.interest (p.node, param) ()
    else Hashtbl.remove p.interest (p.node, param)
  end;
  if d.meta_enabled && not (Registry.subtype d.registry param "MetaObvent")
  then !publish_meta_fwd p ~cls ~sid ~param

(* --- subscription handles ------------------------------------------------------ *)

module Subscription = struct
  type t = subscription

  let id s = s.sid
  let subscribed_type s = s.param
  let is_active s = s.active
  let is_pruned s = s.pruned
  let durable_id s = s.durable
  let delivered s = s.delivered
  let dispatch_stats s = Dispatch.stats s.dispatch
  let set_single_threading s = Dispatch.set_policy s.dispatch Dispatch.Single

  let set_multi_threading s ~max =
    Dispatch.set_policy s.dispatch (Dispatch.Multi max)

  let set_class_serial_threading s =
    Dispatch.set_policy s.dispatch Dispatch.Class_serial

  let broker_of d node =
    match brokers_in_order d with
    | [] -> None
    | brokers ->
        (* Subscriptions are gathered per filtering host by subscriber
           node, so one node's filters always land on the same host. *)
        Some (List.nth brokers (node mod List.length brokers))

  let send_ctl s verb =
    let p = s.sub_process in
    let d = p.dom in
    (* A pruned subscription matches nothing: never ship its filter to
       a filtering host (§3.3.3 migration saved entirely). *)
    if s.pruned then ()
    else
    let st = sstats d s.param in
    match d.remote with
    | Some r -> (
        st.Shard.control_messages <- st.Shard.control_messages + 1;
        match verb with
        | `Sub ->
            let filter =
              match s.rfilter with
              | Some rf -> Rfilter.to_value rf
              | None -> Value.Null
            in
            r.r_subscribe ~sid:s.sid ~param:s.param ~filter
        | `Unsub -> r.r_unsubscribe ~sid:s.sid)
    | None ->
    match broker_of d p.node with
    | None -> ()
    | Some b ->
        st.Shard.control_messages <- st.Shard.control_messages + 1;
        let body =
          match verb with
          | `Sub ->
              let filt =
                match s.rfilter with
                | Some rf -> Rfilter.to_value rf
                | None -> Value.Null
              in
              Value.List
                [ Str "sub"; Int s.sid; Int p.node; Str s.param; filt ]
          | `Unsub -> Value.List [ Str "unsub"; Int s.sid ]
        in
        Net.send d.net ~src:p.node ~dst:b.b_process.node ~port:ctl_port
          (Codec.encode body)

  let ensure_channels s =
    let d = s.sub_process.dom in
    List.iter
      (fun cls -> ignore (ensure_channel d cls))
      (List.filter
         (fun cls -> Registry.subtype d.registry cls s.param)
         (Registry.obvent_classes d.registry))

  (* Incremental routing-index maintenance: splice the activated
     subscription into every warm entry instead of dropping them for a
     full rebuild. Entries mirror [p.subs] order — newest (highest
     sid) first — so the insert compares sids descending. A pruned
     subscription never routes and never enters the index.

     Registered with every pshard's index: the subscribed param may be
     a supertype whose concrete subclasses hash to different shards,
     and each shard must be able to route its own classes without
     consulting another shard's state. Each index still only memoizes
     entries for the classes its shard owns. *)
  let route_in s =
    if not s.pruned then
      Array.iter
        (fun ps ->
          Routing.add ps.ps_route ~param:s.param
            ~compare:(fun a b -> Int.compare b.sid a.sid)
            s)
        s.sub_process.pshards

  let activate s =
    if s.active then
      Errors.cannot_subscribe "subscription %d is already activated" s.sid;
    ensure_channels s;
    s.active <- true;
    route_in s;
    send_ctl s `Sub;
    emit_meta s.sub_process ~cls:"SubscriptionActivated" ~sid:s.sid
      ~param:s.param

  let activate_durable s ~id =
    if s.active then
      Errors.cannot_subscribe "subscription %d is already activated" s.sid;
    let p = s.sub_process in
    let key = Printf.sprintf "dursub:%d" id in
    (match Stable.get p.cert_storage key with
    | Some param when param <> s.param ->
        Errors.cannot_subscribe
          "durable id %d is bound to type %s, not %s" id param s.param
    | Some _ | None -> ());
    Stable.put p.cert_storage key s.param;
    s.durable <- Some id;
    ensure_channels s;
    s.active <- true;
    route_in s;
    send_ctl s `Sub;
    emit_meta p ~cls:"SubscriptionActivated" ~sid:s.sid ~param:s.param

  let activate_replay s ~from =
    if s.active then
      Errors.cannot_subscribe "subscription %d is already activated" s.sid;
    if from < 0 then
      Errors.cannot_subscribe "replay offset %d is negative" from;
    ensure_channels s;
    s.active <- true;
    route_in s;
    send_ctl s `Sub;
    emit_meta s.sub_process ~cls:"SubscriptionActivated" ~sid:s.sid
      ~param:s.param;
    (* Catch-up-then-live: pull retained certified history from every
       matching channel. History lands only on this subscription (the
       rest of the process saw it live); anything at or past the live
       frontier splices into ordinary certified delivery for
       everyone. *)
    let p = s.sub_process in
    let d = p.dom in
    List.iter
      (fun cls ->
        if Registry.subtype d.registry cls s.param then
          match Hashtbl.find_opt (pshard p cls).ps_channels cls with
          | None -> ()
          | Some stack -> (
              match Stack.certified stack with
              | None -> ()
              | Some c ->
                  Certified.replay c ~from
                    ~sink:(fun ~origin:_ ~seq:_ envelope ->
                      replay_event p s cls envelope)
                    ()))
      (Registry.obvent_classes d.registry)

  let deactivate s =
    if not s.active then
      Errors.cannot_unsubscribe "subscription %d is not activated" s.sid;
    s.active <- false;
    Array.iter
      (fun ps ->
        Routing.remove ps.ps_route ~param:s.param (fun x -> x.sid = s.sid))
      s.sub_process.pshards;
    send_ctl s `Unsub;
    emit_meta s.sub_process ~cls:"SubscriptionDeactivated" ~sid:s.sid
      ~param:s.param
end

(* --- processes -------------------------------------------------------------------- *)

module Process = struct
  type t = process

  let node p = p.node
  let domain p = p.dom

  let subscriptions p = List.rev p.subs

  (* Merge-on-read across the per-shard indexes, like Domain.stats. *)
  let routing_stats p =
    Array.fold_left
      (fun acc ps ->
        let s = Routing.stats ps.ps_route in
        Routing.
          {
            classes = acc.classes + s.classes;
            lookups = acc.lookups + s.lookups;
            builds = acc.builds + s.builds;
          })
      Routing.{ classes = 0; lookups = 0; builds = 0 }
      p.pshards

  let create d ?storage ?rmi node =
    if List.exists (fun p -> p.node = node) d.processes then
      invalid_arg "Process.create: node already has a process";
    if meta_count d > 0 then
      invalid_arg
        "Process.create: create all processes before opening channels";
    let storage =
      match storage with Some s -> s | None -> Stable.create ()
    in
    (* S2: a group-commit storage defers its fsync to the engine tick
       barrier — register it (and make sure the barrier exists). *)
    if Stable.grouped storage then begin
      d.flush_storages <- d.flush_storages @ [ storage ];
      install_barrier d
    end;
    let p =
      {
        dom = d;
        node;
        rmi;
        cert_storage = storage;
        pshards =
          Array.init d.n_shards (fun _ ->
              {
                ps_channels = Hashtbl.create 8;
                ps_route = Routing.create d.registry;
                ps_txq = [];
                ps_tx_armed = false;
                ps_tx_next_seq = 0;
              });
        subs = [];
        interest = Hashtbl.create 16;
      }
    in
    (* Broker deliveries can arrive on any process; on_event itself
       handles a delivery that races channel registration. *)
    Net.set_handler d.net node ~port:del_port (fun _src bytes ->
        match decode_routed bytes with
        | Some (cls, envelope) -> on_event p cls envelope
        | None ->
            let st = sstats0 d in
            st.Shard.decode_errors <- st.Shard.decode_errors + 1);
    d.processes <- p :: d.processes;
    p

  let var_types env =
    List.map
      (fun (x, v) ->
        match Vtype.of_kind (Value.kind v) with
        | Some t -> x, t
        | None ->
            Errors.cannot_subscribe
              "captured variable %s has an untypeable binding" x)
      env

  let subscribe p ~param ?(filter = Fspec.Accept_all) ?(service_time = 0)
      handler =
    let d = p.dom in
    if not (Registry.exists d.registry param) then
      Errors.cannot_subscribe "unknown type %s" param;
    if not (Registry.is_obvent_type d.registry param) then
      Errors.cannot_subscribe "type %s does not widen to Obvent" param;
    (* LP1: the filter is typechecked against the subscribed type at
       subscription-creation time. *)
    let rfilter =
      match filter with
      | Fspec.Accept_all -> None
      | Fspec.Closure _ -> None
      | Fspec.Tree (e, env) -> (
          let vars = var_types env in
          (match Typecheck.check_filter d.registry ~param ~vars e with
          | () -> ()
          | exception Typecheck.Ill_typed err ->
              Errors.cannot_subscribe "ill-typed filter: %a" Typecheck.pp_error
                err);
          (* Same normalization as the psc compiler: folding redundant
             boolean structure lets more filters lift to atom form. *)
          let e = Fexpr.simplify e in
          match Mobility.classify d.registry ~param ~vars e with
          | Mobility.Local_only _ -> None
          | Mobility.Mobile -> Rfilter.of_expr ~env ~param e)
    in
    (* Static analysis feeding the engine: with the subscription-time
       bindings substituted in, an unsatisfiable verdict is sound even
       for variable-capturing filters — skip the routing index and the
       filtering hosts for such a subscription entirely. *)
    let pruned =
      match rfilter with Some rf -> Subsume.unsat rf | None -> false
    in
    let profile = fst (Qos.of_type d.registry param) in
    let default_policy =
      (* Multi-threading by default, except for ordered obvents
         (§3.3.5). *)
      if profile.Qos.order <> Qos.No_order then Dispatch.Single
      else Dispatch.Multi max_int
    in
    let sid = d.next_sid in
    d.next_sid <- sid + 1;
    let s =
      {
        sid;
        sub_process = p;
        param;
        filter;
        rfilter;
        pruned;
        dispatch =
          Dispatch.create (Net.engine d.net) ~service_time default_policy
            handler;
        active = false;
        durable = None;
        delivered = 0;
      }
    in
    if pruned then begin
      let st = sstats d param in
      st.Shard.filters_pruned <- st.Shard.filters_pruned + 1;
      Trace.Counter.incr d.obs.c_filters_pruned;
      if Trace.emitting d.obs.tr then
        Trace.emit d.obs.tr ~layer:"core" ~kind:"filter_pruned" ~node:p.node
          ~data:[ ("sid", Trace.I sid); ("param", Trace.S param) ] ()
    end;
    (* Parallel dispatch: Multi-policy handler bodies run on the pool
       worker pinned to the subscribed type's shard. Single and
       Class_serial policies stay inline on the engine thread (see
       Dispatch.set_executor). *)
    (match d.pool with
    | Some pool ->
        let six = shard_ix d param in
        Dispatch.set_executor s.dispatch (fun task ->
            Pool.submit pool ~shard:six task)
    | None -> ());
    p.subs <- s :: p.subs;
    s

  let publish_now p obvent =
    let d = p.dom in
    if not (Net.alive d.net p.node) then
      Errors.cannot_publish "publishing process %d is crashed" p.node;
    let cls = Obvent.cls obvent in
    let six = shard_ix d cls in
    let meta = ensure_channel d cls in
    let st = Shard.stats d.shards.(six) in
    st.Shard.published <- st.Shard.published + 1;
    Trace.Counter.incr d.obs.c_published;
    let eid = p.node, d.next_eid in
    d.next_eid <- d.next_eid + 1;
    if Trace.emitting d.obs.tr then
      Trace.emit d.obs.tr ~layer:"core" ~kind:"publish" ~node:p.node ~id:eid
        ~data:[ ("cls", Trace.S cls) ] ();
    let envelope =
      encode_envelope ~publish_time:(now_of d) ~eid (Obvent.serialize obvent)
    in
    if meta.profile.Qos.prioritary || meta.profile.Qos.timely then begin
      let ps = p.pshards.(six) in
      let entry =
        {
          tx_cls = cls;
          tx_envelope = envelope;
          tx_prio = Obvent.priority d.registry obvent;
          tx_birth = Obvent.birth d.registry obvent;
          tx_ttl = Obvent.time_to_live d.registry obvent;
          tx_seq = ps.ps_tx_next_seq;
        }
      in
      ps.ps_tx_next_seq <- ps.ps_tx_next_seq + 1;
      ps.ps_txq <- entry :: ps.ps_txq;
      arm_tx p six
    end
    else transmit p cls envelope

  (* Cross-shard hand-off: a handler running on a pool worker must not
     mutate engine state (channel tables, the event heap) from its
     domain — its publish is queued and applied on the engine thread
     at the tick barrier. On the engine thread this is just
     publish_now. *)
  let publish p obvent =
    if Pool.on_worker () then begin
      let d = p.dom in
      Mutex.lock d.handoff_mutex;
      Queue.push (fun () -> publish_now p obvent) d.handoff;
      Mutex.unlock d.handoff_mutex
    end
    else publish_now p obvent

  let resume p =
    Array.iter (fun ps -> ps.ps_tx_armed <- false) p.pshards;
    Array.iter
      (fun ps -> Hashtbl.iter (fun _ stack -> Stack.resume stack) ps.ps_channels)
      p.pshards;
    List.iter (fun s -> if s.active then Subscription.send_ctl s `Sub) p.subs;
    Array.iteri (fun six _ -> arm_tx p six) p.pshards
end

let () =
  publish_meta_fwd :=
    fun p ~cls ~sid ~param ->
      let d = p.dom in
      if Net.alive d.net p.node then
        Process.publish p
          (Obvent.make d.registry cls
             [ "subscriptionId", Value.Int sid; "nodeId", Value.Int p.node;
               "subscribedType", Value.Str param ])

(* --- remote broker connection ---------------------------------------------------------- *)

module Remote = struct
  let decode_envelope = decode_envelope
  let decode_envelope_sub = decode_envelope_sub

  type t = remote = {
    r_publish : cls:string -> string -> unit;
    r_subscribe : sid:int -> param:string -> filter:Value.t -> unit;
    r_unsubscribe : sid:int -> unit;
  }

  let connect d p endpoint =
    (match d.remote with
    | Some _ -> invalid_arg "Remote.connect: domain is already connected"
    | None -> ());
    if not (p.dom == d) then
      invalid_arg "Remote.connect: process belongs to another domain";
    if meta_count d > 0 then
      invalid_arg "Remote.connect: connect before opening channels";
    d.remote <- Some endpoint;
    fun ~cls envelope -> on_event p cls envelope
end

(* --- broker designation --------------------------------------------------------------- *)

let add_broker d p =
  if List.exists (fun b -> b.b_process.node = p.node) d.brokers then
    invalid_arg "add_broker: node is already a filtering host";
  let b =
    { b_process = p; factored = Factored.create ();
      broker_subs = Hashtbl.create 32;
      b_route = Routing.create d.registry }
  in
  d.brokers <- b :: d.brokers;
  Net.set_handler d.net p.node ~port:pub_port (fun _src bytes ->
      broker_on_publish d b bytes);
  Net.set_handler d.net p.node ~port:ctl_port (fun _src bytes ->
      broker_on_ctl d b bytes)

let make_broker = add_broker

let broker_filter_stats d =
  match brokers_in_order d with
  | [] -> None
  | b :: _ -> Some (Factored.stats b.factored)

let per_broker_filter_stats d =
  List.map (fun b -> Factored.stats b.factored) (brokers_in_order d)

let per_broker_routing_stats d =
  List.map (fun b -> Routing.stats b.b_route) (brokers_in_order d)
