(** Per-class delivery routing index — the fast path of type-based
    routing (Fig. 1, §2.1.3).

    A subscription to type [T] receives instances of every subtype of
    [T], so naive dispatch scans all subscriptions per event and asks
    the registry one subtype question each. This index memoizes the
    answer per {e concrete obvent class}: the first event of a class
    computes the targets whose subscribed type is a supertype (one
    subtype-closure walk), every later event is a single hash lookup —
    the "multicast class" routing DACE performs (§4.2).

    The index is generic in the target type so the same mechanism
    serves a process (targets = local subscriptions) and a filtering
    host (targets = broker subscription entries).

    Correctness under mutation:
    - the index records the {!Tpbs_types.Registry.generation} it was
      built against and resets itself when the lattice grows, so a
      class declared after traffic started still routes correctly;
    - activations call {!add} (the new target is spliced into every
      affected cached entry in place, at its canonical position) and
      deactivations call {!remove} (cheap in-place deletion);
    - {!invalidate} remains the big-hammer fallback: it drops affected
      entries so they rebuild lazily on the next event. *)

type 'a t

val create : Tpbs_types.Registry.t -> 'a t

val find : 'a t -> string -> build:(string -> 'a list) -> 'a list
(** [find t cls ~build] — the cached targets for concrete class [cls],
    calling [build cls] on first sight of the class (or after an
    invalidation) and memoizing the result. *)

val invalidate : 'a t -> param:string -> unit
(** Drop every cached entry whose class is a subtype of [param]; those
    classes rebuild on their next event. The coarse alternative to
    {!add} when incremental maintenance is not possible (e.g. the
    caller cannot name the target being introduced). *)

val add : 'a t -> param:string -> compare:('a -> 'a -> int) -> 'a -> unit
(** [add t ~param ~compare x] splices target [x] into every cached
    entry whose class is a subtype of [param], at the position
    [compare] dictates (entries are kept in the holder's canonical
    order, so the result must equal what a full rebuild would
    produce). O(affected entries × entry length), no rebuild — the
    routing index stays warm across subscription churn. Call when a
    subscription to [param] becomes active. *)

val remove : 'a t -> param:string -> ('a -> bool) -> unit
(** Remove targets satisfying the predicate from every cached entry
    whose class is a subtype of [param]. Call when a subscription to
    [param] deactivates. *)

val clear : 'a t -> unit

type stats = {
  classes : int;  (** cached concrete classes *)
  lookups : int;  (** cumulative {!find} calls *)
  builds : int;  (** entry (re)computations — misses *)
}

val stats : 'a t -> stats
