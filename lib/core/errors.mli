(** The notification exceptions of package [java.pubsub] (Fig. 3). *)

exception Cannot_publish of string
(** Problems transmitting an obvent (§3.2). *)

exception Cannot_subscribe of string
(** Subscription cannot be issued — e.g. already activated (§3.4.1). *)

exception Cannot_unsubscribe of string
(** Unsubscription cannot be issued — e.g. not activated (§3.4.2). *)

val cannot_publish : ('a, Format.formatter, unit, 'b) format4 -> 'a
val cannot_subscribe : ('a, Format.formatter, unit, 'b) format4 -> 'a
val cannot_unsubscribe : ('a, Format.formatter, unit, 'b) format4 -> 'a
