(* Shard-local engine state. The engine's formerly monolithic [domain]
   record is partitioned by obvent class: a stable hash of the class
   id picks the owning shard, which holds that slice's channel
   metadata and its own stats record. Per-process shard slices (the
   routing index, channel stacks and egress queue of one shard) live
   in [Pubsub]; this module owns the keying rule and the domain-level
   slice so both sides agree on the partition.

   With [n_shards = 1] everything lands on shard 0 and the engine is
   byte-identical to the pre-sharding code. With more shards, state
   touched by different classes lives in different records — the
   prerequisite for pinning shards to OCaml 5 domains ([Pool]):
   workers of different shards never share a mutable table. *)

module Trace = Tpbs_trace.Trace

(* FNV-1a (32-bit constants) over the class id: stable across runs,
   processes and machines — the broker and every client agree on the
   owning shard without coordination. Masked to stay non-negative. *)
let hash cls =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    cls;
  !h

let key ~n_shards cls = if n_shards <= 1 then 0 else hash cls mod n_shards

(* One shard's slice of the former monolithic stats block. Plain
   mutable ints are correct here precisely because they are
   shard-local: only the shard's owner (the engine thread, or the
   worker the shard is pinned to) writes them; readers merge the
   slices at a tick barrier ([Pubsub.Domain.stats]). *)
type stats = {
  mutable published : int;
  mutable deliveries : int;
  mutable filtered_out : int;
  mutable expired : int;
  mutable decode_errors : int;
  mutable broker_forwards : int;
  mutable broker_events : int;
  mutable control_messages : int;
  mutable qos_conflicts : int;
  mutable filters_pruned : int;
  mutable replayed : int;
  mutable channel_misses : int;
}

let zero_stats () =
  {
    published = 0;
    deliveries = 0;
    filtered_out = 0;
    expired = 0;
    decode_errors = 0;
    broker_forwards = 0;
    broker_events = 0;
    control_messages = 0;
    qos_conflicts = 0;
    filters_pruned = 0;
    replayed = 0;
    channel_misses = 0;
  }

let add_stats into s =
  into.published <- into.published + s.published;
  into.deliveries <- into.deliveries + s.deliveries;
  into.filtered_out <- into.filtered_out + s.filtered_out;
  into.expired <- into.expired + s.expired;
  into.decode_errors <- into.decode_errors + s.decode_errors;
  into.broker_forwards <- into.broker_forwards + s.broker_forwards;
  into.broker_events <- into.broker_events + s.broker_events;
  into.control_messages <- into.control_messages + s.control_messages;
  into.qos_conflicts <- into.qos_conflicts + s.qos_conflicts;
  into.filters_pruned <- into.filters_pruned + s.filters_pruned;
  into.replayed <- into.replayed + s.replayed;
  into.channel_misses <- into.channel_misses + s.channel_misses

let reset_stats s =
  s.published <- 0;
  s.deliveries <- 0;
  s.filtered_out <- 0;
  s.expired <- 0;
  s.decode_errors <- 0;
  s.broker_forwards <- 0;
  s.broker_events <- 0;
  s.control_messages <- 0;
  s.qos_conflicts <- 0;
  s.filters_pruned <- 0;
  s.replayed <- 0;
  s.channel_misses <- 0

(* The domain-level slice: channel metadata for the classes this shard
   owns, plus its stats. ['meta] keeps this module free of [Pubsub]'s
   channel record (no dependency cycle). [c_deliveries] is the
   per-shard trace counter [core.shard.<k>.deliveries] — created only
   when the engine actually shards (n_shards > 1), so single-shard
   metrics output stays byte-identical to the seed engine. *)
type 'meta t = {
  id : int;
  stats : stats;
  channel_meta : (string, 'meta) Hashtbl.t;
  c_deliveries : Trace.Counter.t option;
}

let create ?c_deliveries ~id () =
  { id; stats = zero_stats (); channel_meta = Hashtbl.create 16; c_deliveries }

let id t = t.id
let stats t = t.stats
let channel_meta t = t.channel_meta

let count_delivery t =
  match t.c_deliveries with Some c -> Trace.Counter.incr c | None -> ()
