(** Shard-local engine state: the partition rule and per-shard slice
    records behind the sharded {!Pubsub} engine.

    Obvent classes are partitioned across [n_shards] shards by a
    stable hash of the class id; each shard owns the channel metadata
    and stats for its classes, so shards pinned to different OCaml 5
    domains ({!Pool}) never share a mutable table. [n_shards = 1]
    reproduces the monolithic engine byte for byte. *)

val hash : string -> int
(** Stable 32-bit FNV-1a of a class id (non-negative). Identical
    across runs, processes and machines, so brokers and clients agree
    on shard ownership without coordination. *)

val key : n_shards:int -> string -> int
(** The owning shard of a class: [hash cls mod n_shards] (always [0]
    when [n_shards <= 1]). *)

(** One shard's slice of the engine stats. Plain mutable ints — safe
    because only the shard's owning thread writes them; merge slices
    with {!add_stats} at a tick barrier to read. *)
type stats = {
  mutable published : int;
  mutable deliveries : int;
  mutable filtered_out : int;
  mutable expired : int;
  mutable decode_errors : int;
  mutable broker_forwards : int;
  mutable broker_events : int;
  mutable control_messages : int;
  mutable qos_conflicts : int;
  mutable filters_pruned : int;
  mutable replayed : int;
  mutable channel_misses : int;
}

val zero_stats : unit -> stats
val add_stats : stats -> stats -> unit
(** [add_stats into s] accumulates [s] into [into] field-wise. *)

val reset_stats : stats -> unit

type 'meta t
(** A shard: id, stats, and the channel-metadata table for the classes
    it owns. ['meta] is {!Pubsub}'s channel record (kept abstract here
    to avoid a dependency cycle). *)

val create : ?c_deliveries:Tpbs_trace.Trace.Counter.t -> id:int -> unit -> 'meta t
(** [c_deliveries] is the shard's [core.shard.<k>.deliveries] counter;
    omit it on single-shard engines so metrics output stays identical
    to the unsharded seed. *)

val id : _ t -> int
val stats : _ t -> stats

val count_delivery : _ t -> unit
(** Bump the per-shard delivery counter, if this shard has one. *)

val channel_meta : 'meta t -> (string, 'meta) Hashtbl.t
(** The shard's slice of the channel-metadata table. *)
