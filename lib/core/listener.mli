(** The callback/listener alternative (§5.2).

    "Nearly all Java APIs for common publish/subscribe engines"
    register a listener object with a weakly typed
    [notify(Obvent o)] method. The paper's criticism is precisely the
    weak typing: the listener receives the {e root} type and must
    downcast, so mistakes surface at run time, not compile time (LP1
    lost) — and one listener registered for several types must
    dispatch by hand (the multi-method discussion of §5.2.2).

    This module makes that style available so the comparison is
    executable: a notifiable is a single object, registrations attach
    it to types, and its [notify] sees every obvent as the root
    type. *)

type notifiable = { notify : Tpbs_obvent.Obvent.t -> unit }
(** The [Notifiable] interface of Fig. 7: one weakly typed callback.
    Downcasting is the application's problem, exactly as criticized. *)

type registration

val register :
  Pubsub.Process.t ->
  param:string ->
  ?filter:Fspec.t ->
  notifiable ->
  registration
(** [subscribe (T t) { filter } n] with an explicit listener
    (§5.2.1). The same notifiable may be registered for several types
    — each registration is a separate subscription underneath, so "is
    the same event delivered several times?" (§5.2.2) answers: once
    per registration, like separate subscriptions.
    @raise Errors.Cannot_subscribe as {!Pubsub.Process.subscribe}. *)

val unregister : registration -> unit
(** @raise Errors.Cannot_unsubscribe if already unregistered. *)

val subscription : registration -> Pubsub.Subscription.t
(** The underlying handle (thread policies etc. remain available). *)

val dispatch_by_class :
  (string * (Tpbs_obvent.Obvent.t -> unit)) list ->
  default:(Tpbs_obvent.Obvent.t -> unit) ->
  notifiable
(** The hand-written dispatch §5.2.2 says Java forces on you in the
    absence of multi-methods: route by the obvent's dynamic class
    name. *)
