type verdict = Continue | Cancel

let subscribe process ~param ?filter handler =
  let handle = ref None in
  let wrapped obvent =
    match handler obvent with
    | Continue -> ()
    | Cancel -> (
        match !handle with
        | Some s when Pubsub.Subscription.is_active s ->
            Pubsub.Subscription.deactivate s
        | Some _ | None -> ())
  in
  let s = Pubsub.Process.subscribe process ~param ?filter wrapped in
  handle := Some s;
  Pubsub.Subscription.activate s
