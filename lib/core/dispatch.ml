module Engine = Tpbs_sim.Engine
module Obvent = Tpbs_obvent.Obvent

type policy = Single | Multi of int | Class_serial

type t = {
  engine : Engine.t;
  service_time : int;
  mutable policy : policy;
  handler : Obvent.t -> unit;
  mutable queue : Obvent.t list;  (* FIFO: oldest first *)
  mutable active : int;
  active_classes : (string, int) Hashtbl.t;
  mutable executed : int;
  mutable max_overlap : int;
  mutable peak_queue : int;
  (* Optional offload seam for the sharded engine: when set, [Multi]
     handler bodies run through this (a [Pool.submit] closure) instead
     of inline. [Single]/[Class_serial] always stay inline — their
     whole point is serialisation, which the engine thread provides
     for free. *)
  mutable executor : ((unit -> unit) -> unit) option;
}

let create engine ?(service_time = 0) policy handler =
  { engine; service_time; policy; handler; queue = [];
    active = 0; active_classes = Hashtbl.create 4; executed = 0;
    max_overlap = 0; peak_queue = 0; executor = None }

let class_active t cls =
  Option.value ~default:0 (Hashtbl.find_opt t.active_classes cls)

(* Can this obvent start right now? *)
let admissible t obvent =
  match t.policy with
  | Single -> t.active < 1
  | Multi n -> t.active < max 1 n
  | Class_serial -> class_active t (Obvent.cls obvent) < 1

let rec start t obvent =
  t.active <- t.active + 1;
  let cls = Obvent.cls obvent in
  Hashtbl.replace t.active_classes cls (class_active t cls + 1);
  t.executed <- t.executed + 1;
  if t.active > t.max_overlap then t.max_overlap <- t.active;
  (match (t.executor, t.policy) with
  | Some run, Multi _ -> run (fun () -> t.handler obvent)
  | _ -> t.handler obvent);
  Engine.schedule t.engine ~delay:t.service_time (fun () -> finish t cls)

and finish t cls =
  t.active <- t.active - 1;
  (match class_active t cls with
  | 1 -> Hashtbl.remove t.active_classes cls
  | n -> Hashtbl.replace t.active_classes cls (n - 1));
  drain t

and drain t =
  (* Start the first queued obvent the policy admits; under
     Class_serial later obvents of other classes may overtake a
     blocked head, preserving per-class order. *)
  let rec pick seen = function
    | [] -> None
    | o :: rest ->
        if
          admissible t o
          && (t.policy <> Class_serial
             || not (List.exists (fun s -> Obvent.cls s = Obvent.cls o) seen))
        then Some (o, List.rev_append seen rest)
        else pick (o :: seen) rest
  in
  match pick [] t.queue with
  | None -> ()
  | Some (next, rest) ->
      t.queue <- rest;
      start t next;
      drain t

let submit t obvent =
  (* Fairness: queued work goes first. *)
  let blocked_predecessor =
    t.policy = Class_serial
    && List.exists (fun o -> Obvent.cls o = Obvent.cls obvent) t.queue
  in
  if t.queue = [] && admissible t obvent && not blocked_predecessor then
    start t obvent
  else begin
    t.queue <- t.queue @ [ obvent ];
    if List.length t.queue > t.peak_queue then
      t.peak_queue <- List.length t.queue;
    drain t
  end

let set_policy t policy =
  t.policy <- policy;
  drain t

let policy t = t.policy
let set_executor t run = t.executor <- Some run

type stats = { executed : int; max_overlap : int; peak_queue : int }

let stats (t : t) =
  { executed = t.executed; max_overlap = t.max_overlap;
    peak_queue = t.peak_queue }

let in_flight t = t.active
