module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec
module Net = Tpbs_sim.Net

type pattern = Any | Kind of Value.kind | Exact of Value.t

type sub = {
  id : int;
  patterns : pattern list;
  filter : Value.t list -> bool;
  handler : Value.t list -> unit;
  mutable delivered : int;
  mutable active : bool;
}

type t = {
  domain : Pubsub.Domain.t;
  node : Net.node_id;
  mutable subs : sub list;
  mutable next_id : int;
}

let port = "structural"

let pattern_matches p v =
  match p with
  | Any -> true
  | Kind k -> Value.kind v = k
  | Exact expected -> Value.equal expected v

let matches patterns tuple =
  List.length patterns = List.length tuple
  && List.for_all2 pattern_matches patterns tuple

let on_tuple t bytes =
  match Codec.decode bytes with
  | Value.List _ ->
      List.iter
        (fun s ->
          if s.active then begin
            (* A fresh copy per subscription, mirroring obvent local
               uniqueness. *)
            match Codec.decode bytes with
            | Value.List tuple ->
                if matches s.patterns tuple && s.filter tuple then begin
                  s.delivered <- s.delivered + 1;
                  s.handler tuple
                end
            | _ -> ()
          end)
        t.subs
  | _ | (exception Codec.Decode_error _) -> ()

let attach process =
  let domain = Pubsub.Process.domain process in
  let node = Pubsub.Process.node process in
  let t = { domain; node; subs = []; next_id = 0 } in
  Net.set_handler (Pubsub.Domain.net domain) node ~port (fun _src bytes ->
      on_tuple t bytes);
  t

let publish t tuple =
  let bytes = Codec.encode (Value.List tuple) in
  let net = Pubsub.Domain.net t.domain in
  List.iter
    (fun dst -> Net.send net ~src:t.node ~dst ~port bytes)
    (Pubsub.Domain.nodes t.domain)

let subscribe t patterns ?(filter = fun _ -> true) handler =
  let s =
    { id = t.next_id; patterns; filter; handler; delivered = 0; active = true }
  in
  t.next_id <- t.next_id + 1;
  t.subs <- t.subs @ [ s ];
  s

let cancel t s =
  s.active <- false;
  t.subs <- List.filter (fun x -> x.id <> s.id) t.subs

let delivered s = s.delivered
