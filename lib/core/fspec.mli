(** Filter specifications: what the application hands to [subscribe].

    The paper distinguishes filters the precompiler can lift into
    remote-filter trees (conforming to §3.3.4) from those it must
    apply locally. We mirror this: a [Tree] filter is deferred code —
    an expression AST plus the captured final variables — which the
    engine typechecks, classifies for mobility, normalizes and, when
    possible, ships to filtering hosts; a [Closure] is an arbitrary
    OCaml predicate, always applied at the subscriber (the analogue of
    opaque Java code). *)

type t =
  | Accept_all
      (** the [{ return true; }] idiom of §2.3.2 — subscribe to every
          instance of the type *)
  | Tree of Tpbs_filter.Expr.t * Tpbs_filter.Expr.env
      (** deferred code: body and captured final variables *)
  | Closure of (Tpbs_obvent.Obvent.t -> bool)
      (** opaque predicate, local-only *)

val accept_all : t
val tree : ?env:Tpbs_filter.Expr.env -> Tpbs_filter.Expr.t -> t

val of_source : ?env:Tpbs_filter.Expr.env -> param:string -> string -> t
(** Parse Java_ps filter syntax, e.g.
    [of_source ~param:"q" "q.getPrice() < 100"].
    @raise Tpbs_filter.Parser.Parse_error on syntax errors. *)

val closure : (Tpbs_obvent.Obvent.t -> bool) -> t

val matches :
  Tpbs_types.Registry.t -> t -> Tpbs_obvent.Obvent.t -> bool
(** Evaluate at the subscriber. A filter that raises is treated as
    non-matching, like an exception escaping a predicate. *)
