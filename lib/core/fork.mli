(** The fork-style subscription alternative (§5.1).

    The paper explores a [fork]-like primitive where the subscription
    is not reified as a handle: the handler itself decides after each
    notification whether the subscription "is to be pursued". The
    paper rejects this as the {e only} mechanism (a subscription could
    then be cancelled only after one more event) but notes the pattern
    "can be desirable in many cases" — so it is offered here as sugar
    over the real engine, with exactly the §5.1 semantics: no handle
    escapes, and cancellation happens from inside. *)

type verdict = Continue | Cancel

val subscribe :
  Pubsub.Process.t ->
  param:string ->
  ?filter:Fspec.t ->
  (Tpbs_obvent.Obvent.t -> verdict) ->
  unit
(** Subscribe and activate immediately; when the handler returns
    [Cancel], the subscription deactivates itself (after that event,
    as §5.1 describes — the restriction the paper criticizes).
    @raise Errors.Cannot_subscribe as {!Pubsub.Process.subscribe}. *)
