(** Handler thread semantics (§3.3.5).

    Delivering an obvent executes the subscription's handler; the
    thread used is blocked until the handler completes. The paper
    distinguishes multi-threaded handlers (any number of obvents
    processed concurrently — the default) from single-threaded ones
    (one at a time), controlled through the subscription handle.

    The simulator models a handler execution as occupying its
    subscription for [service_time] virtual ticks; a dispatcher
    enforces the concurrency policy and records the observed overlap,
    which experiment E9 reports. Handler {e effects} run at start
    time, in delivery order. *)

type policy =
  | Single  (** never more than one obvent at a time *)
  | Multi of int  (** at most [n] concurrently; [max_int] = unbounded *)
  | Class_serial
      (** the extension §3.3.5 suggests: at most one obvent {e of each
          class} at a time; different classes overlap freely *)

type t

val create :
  Tpbs_sim.Engine.t ->
  ?service_time:int ->
  policy ->
  (Tpbs_obvent.Obvent.t -> unit) ->
  t
(** [service_time] defaults to 0 (instantaneous handlers). *)

val submit : t -> Tpbs_obvent.Obvent.t -> unit
(** Deliver one obvent: execute now if the policy allows, otherwise
    queue it (FIFO). *)

val set_policy : t -> policy -> unit
(** Takes effect for subsequent deliveries; queued work drains under
    the new policy. *)

val policy : t -> policy

val set_executor : t -> ((unit -> unit) -> unit) -> unit
(** Route [Multi] handler bodies through [run] (e.g. a {!Pool.submit}
    closure) instead of executing inline on the engine thread.
    [Single] and [Class_serial] handlers always stay inline — they
    require serialisation, which the engine thread provides.
    Admission, overlap accounting and [service_time] scheduling are
    unchanged; only the handler body moves. *)

type stats = {
  executed : int;  (** handler executions started *)
  max_overlap : int;  (** peak concurrent handlers *)
  peak_queue : int;  (** peak backlog under Single / bounded Multi *)
}

val stats : t -> stats
val in_flight : t -> int
