(** The [tpbsd] broker protocol: one message per {!Frame}, encoded as
    an ordinary {!Tpbs_serial.Value} so protocol traffic speaks the
    same wire dialect as obvents themselves.

    Sessions open with [Hello] (client id + delivery credits granted
    to the broker) answered by [Welcome] (publish credits granted to
    the client); both windows are replenished with [Credit]. [Pub]
    acknowledgements are cumulative; exactly-once across broker
    restarts pairs publisher retransmission of unacknowledged [Pub]s
    with subscriber-side per-origin monotone sequence filtering. *)

type msg =
  | Hello of { client : string; window : int }
      (** client → broker: identify; [window] delivery credits granted *)
  | Welcome of { window : int }
      (** broker → client: [window] publish credits granted *)
  | Advertise of { cls : string; supers : string list }
      (** declare an obvent class and its supertypes (topological
          order: supers must already be known to the broker) *)
  | Sub of { sid : int; param : string; filter : Tpbs_serial.Value.t }
      (** register subscription [sid] to type [param]; [filter] is a
          lifted {!Tpbs_filter.Rfilter} value or [Null] *)
  | Unsub of { sid : int }
  | Pub of { pseq : int; cls : string; envelope : string }
      (** publish; [pseq] is the client's contiguous sequence *)
  | Pub_ack of { pseq : int }  (** cumulative: acknowledges all ≤ pseq *)
  | Deliver of { origin : string; pseq : int; cls : string; envelope : string }
      (** broker → client: [origin] and [pseq] identify the event for
          deduplication *)
  | Credit of { n : int }  (** replenish the peer's send window *)
  | Bye

val encode : msg -> string
(** Encoding a [Deliver] bumps the ambient [transport.deliver_encodes]
    counter — {!encode_deliver} bumps it once for the whole fan-out,
    which is what makes "one encode per publish" checkable. *)

val decode : string -> msg option
(** [None] on undecodable bytes or an unknown message shape. *)

(** {1 Zero-copy payload views}

    [Pub] and [Deliver] are the only messages that carry an envelope,
    and the envelope dominates their size. These entry points keep it
    a [(buf, off, len)] view end to end: {!decode_view} parses a
    frame payload in place, and {!encode_deliver} encodes + frames +
    CRCs a [Deliver] around the slice exactly once for any number of
    subscribers. *)

type slice = { sl_buf : string; sl_off : int; sl_len : int }
(** A byte view [sl_buf.[sl_off .. sl_off+sl_len-1]]. Views produced
    by {!decode_view} over a decoder buffer are only valid until the
    next feed — copy ({!slice_to_string}) anything that outlives the
    read loop iteration. *)

val slice_of_string : string -> slice
val slice_to_string : slice -> string
(** Materialize the slice. A proper sub-slice costs one copy and bumps
    the ambient [transport.payload_copies] counter; a whole-buffer
    slice is returned as-is for free. *)

val encode_deliver :
  origin:string -> pseq:int -> cls:string -> slice -> Frame.preframed
(** One encode + one CRC, byte-identical to
    [Frame.frame (encode (Deliver ...))] with the slice contents as
    envelope. The Deliver wire shape carries no per-session field, so
    the result serves every subscriber of the publish. *)

type view =
  | V_pub of { pseq : int; cls : string; envelope : slice }
  | V_deliver of { origin : string; pseq : int; cls : string; envelope : slice }
  | V_msg of msg  (** any other (small) message, fully decoded *)
  | V_none  (** undecodable bytes or an unknown shape *)

val decode_view : string -> off:int -> len:int -> view
(** Parse one frame payload in place: [Pub]/[Deliver] envelopes come
    back as views into the argument buffer, everything else decodes
    fully. Agrees with {!decode} on every input (with [V_none] playing
    [None]). *)

val to_value : msg -> Tpbs_serial.Value.t
val of_value : Tpbs_serial.Value.t -> msg option

val tag : msg -> string
(** Short wire tag, for trace events. *)
