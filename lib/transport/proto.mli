(** The [tpbsd] broker protocol: one message per {!Frame}, encoded as
    an ordinary {!Tpbs_serial.Value} so protocol traffic speaks the
    same wire dialect as obvents themselves.

    Sessions open with [Hello] (client id + delivery credits granted
    to the broker) answered by [Welcome] (publish credits granted to
    the client); both windows are replenished with [Credit]. [Pub]
    acknowledgements are cumulative; exactly-once across broker
    restarts pairs publisher retransmission of unacknowledged [Pub]s
    with subscriber-side per-origin monotone sequence filtering. *)

type msg =
  | Hello of { client : string; window : int }
      (** client → broker: identify; [window] delivery credits granted *)
  | Welcome of { window : int }
      (** broker → client: [window] publish credits granted *)
  | Advertise of { cls : string; supers : string list }
      (** declare an obvent class and its supertypes (topological
          order: supers must already be known to the broker) *)
  | Sub of { sid : int; param : string; filter : Tpbs_serial.Value.t }
      (** register subscription [sid] to type [param]; [filter] is a
          lifted {!Tpbs_filter.Rfilter} value or [Null] *)
  | Unsub of { sid : int }
  | Pub of { pseq : int; cls : string; envelope : string }
      (** publish; [pseq] is the client's contiguous sequence *)
  | Pub_ack of { pseq : int }  (** cumulative: acknowledges all ≤ pseq *)
  | Deliver of { origin : string; pseq : int; cls : string; envelope : string }
      (** broker → client: [origin] and [pseq] identify the event for
          deduplication *)
  | Credit of { n : int }  (** replenish the peer's send window *)
  | Bye

val encode : msg -> string
val decode : string -> msg option
(** [None] on undecodable bytes or an unknown message shape. *)

val to_value : msg -> Tpbs_serial.Value.t
val of_value : Tpbs_serial.Value.t -> msg option

val tag : msg -> string
(** Short wire tag, for trace events. *)
