(** The [tpbsd] broker engine — the out-of-process twin of the
    in-simulation filtering host ({!Tpbs_core.Pubsub.add_broker}),
    serving real TCP clients.

    A library rather than a daemon so unit tests can run broker and
    clients in one process over real sockets (single-threaded,
    non-blocking, driven by {!poll}), and the soak harness can fork
    broker children without an exec path; [bin/tpbsd] is a thin CLI
    shell around it.

    Same routing machinery as the in-simulation host: a
    {!Tpbs_core.Routing} index memoizes type-based fan-out per
    concrete class, a {!Tpbs_filter.Factored} compound filter decides
    matches through lazy cursor projections, and the type lattice
    grows dynamically from client [Advertise] messages.

    Flow control: per-session bounded delivery queues drained by
    client-granted credits; publish credits are replenished only while
    every queue sits below the low watermark, so broker-side queue
    depth is bounded by the sum of outstanding publish windows and
    backpressure propagates from the slowest subscriber to every
    publisher. A session whose owed credits exceed the high watermark
    (a publisher ignoring backpressure) simply stops being read.

    Certified delivery across broker crashes: a [Pub] is acknowledged
    only after its [Deliver] frames have been fully handed to the
    kernel for every matching subscriber session; an unacknowledged
    event survives in the publisher, which retransmits after
    reconnecting, and subscribers deduplicate by per-origin sequence.
    Within one broker life a per-client publish frontier re-acks
    retransmitted duplicates without re-delivering them.

    Covering suppression ({!Tpbs_filter.Subsume.covers}, on by
    default): an incoming [Sub] covered by an installed subscription
    of the {e same session} — subtype of its parameter, filter
    entailed by its filter — is recorded but never indexed or shipped
    into the routing/factoring state. Since delivery dedups one
    [Deliver] per session, suppression cannot change the delivery
    multiset. When the covering subscription is unsubscribed, the
    suppressed ones either find another coverer or are promoted into
    the live index.

    Metrics (ambient {!Tpbs_trace.Trace} registry): counters
    [tpbsd.accepts], [tpbsd.pubs], [tpbsd.dup_pubs],
    [tpbsd.forwarded], [tpbsd.acked], [tpbsd.bad_frames],
    [tpbsd.bad_adverts], [tpbsd.disconnects], [broker.subs_covered],
    [broker.subs_restored]; gauges [tpbsd.sessions], [tpbsd.qdepth]
    (worst queue, with peak), [tpbsd.credit_outstanding]. Trace
    events [sub_covered]/[sub_restored] are emitted on layer
    ["broker"] when a sink is installed. *)

type t

type config = {
  pub_window : int;  (** publish credits granted per client *)
  low_watermark : int;
      (** all queues below this ⇒ owed publish credits are returned *)
  high_watermark : int;
      (** owed credits at this ⇒ the session stops being read *)
  max_frame : int;
  covering : bool;
      (** suppress [Sub]s covered by an installed subscription of the
          same session (on in {!default_config}); delivery is
          observationally identical either way *)
  shared_frames : bool;
      (** encode-once fan-out (on in {!default_config}): each accepted
          [Pub]'s [Deliver] is encoded + framed + CRC'd once
          ({!Proto.encode_deliver}) and the same immutable bytes are
          queued on every target session, so per-event encode cost is
          independent of subscriber count (watch
          [transport.deliver_encodes] against [tpbsd.pubs]). Off = the
          per-session-encode baseline, kept for measurement; delivery
          is byte-identical either way *)
  warmup_ms : int;
      (** a freshly started broker grants zero publish credits for
          this long (full windows follow as [Credit]), so after a
          crash every surviving subscriber gets a chance to
          re-subscribe before publishers may retransmit — an early
          retransmit would route to whoever reconnected first, get
          acknowledged, and be lost to the late re-subscribers *)
}

val default_config : config

val listen_socket : host:string -> port:int -> Unix.file_descr
(** Bind + listen (with [SO_REUSEADDR]); useful for pre-creating the
    socket in a parent that forks broker incarnations, so restarts
    reuse the very same listening fd. *)

val create :
  ?config:config ->
  ?host:string ->
  ?listen_fd:Unix.file_descr ->
  port:int ->
  unit ->
  t
(** Create a broker listening on [host:port] (default 127.0.0.1), or
    adopt a pre-bound [listen_fd]. [port:0] picks an ephemeral port —
    read it back with {!port}. *)

val port : t -> int

val poll : t -> ?extra_fds:Unix.file_descr list -> timeout_ms:int -> unit -> bool
(** One engine turn: wait up to [timeout_ms] for readiness, accept new
    clients, read and process frames, route publishes, pump delivery
    queues and acknowledgements. [extra_fds] are watched for
    readability alongside the sockets (e.g. a control pipe); the
    return value is [true] iff one of them is readable. *)

val stop : ?keep_listener:bool -> t -> unit
(** Drop every session and close the listening socket.
    [keep_listener] leaves the listening fd open — an in-process crash
    simulation: a successor incarnation created with [~listen_fd]
    adopts it, exactly like a forked broker child restarting on a
    parent-owned socket. *)

val session_count : t -> int
