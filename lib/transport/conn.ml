module Trace = Tpbs_trace.Trace

(* One framed, non-blocking connection.

   The write side batches: [send] only appends the encoded frame to an
   in-memory buffer, and [flush] pushes as much as the kernel will
   take in one [write]. A pump that sends a burst of small envelopes
   and then flushes once coalesces them all into a single syscall (and
   a single TCP segment, usually) — the batching factor shows up as
   [transport.frames_sent] / [transport.write_syscalls].

   Pending bytes live in a chunk queue rather than one flat buffer:
   small frames coalesce into a shared accumulator chunk as before,
   but a large {!Frame.preframed} fan-out frame is enqueued by
   reference — the same immutable string queued on every subscriber
   session, written to each socket with zero copies in userland.

   The read side is symmetric: [recv] does one [read] into a scratch
   buffer and feeds the incremental {!Frame.Decoder}; [pop_view] then
   yields zero or more complete messages, decoded in place over the
   decoder's buffer. Short and partial reads are the decoder's normal
   diet. *)

type verdict = [ `Ok | `Blocked | `Closed of string ]

(* A queued run of bytes: [data.[off ..]] remains to be written. Small
   frames share an accumulator chunk; each large frame is its own
   chunk, holding the (possibly shared) string by reference. *)
type chunk = { data : string; mutable off : int }

(* Frames at or below this size are coalesced (copied) into the
   accumulator; larger ones are enqueued by reference. The threshold
   trades one small memcpy for syscall batching: a burst of control
   frames still leaves in one [write], while a big envelope — where
   the copy would cost more than a syscall — goes out directly. *)
let coalesce_limit = 4096

type t = {
  fd : Unix.file_descr;
  dec : Frame.Decoder.t;
  wbuf : Buffer.t;  (* small frames accumulating for the next write *)
  chunks : chunk Queue.t;  (* sealed runs, in send order *)
  mutable chunk_bytes : int;  (* unwritten bytes across [chunks] *)
  scratch : Bytes.t;
  mutable closed : bool;
  mutable frames_sent : int;
  mutable frames_recv : int;
  mutable bytes_sent : int;
  mutable bytes_recv : int;
  mutable write_syscalls : int;
  mutable read_syscalls : int;
}

(* Shared ambient-registry counters: every connection in the process
   feeds the same transport.* totals, re-resolved when tests swap the
   ambient registry. *)
type ctrs = {
  c_frames_sent : Trace.Counter.t;
  c_frames_recv : Trace.Counter.t;
  c_bytes_sent : Trace.Counter.t;
  c_bytes_recv : Trace.Counter.t;
  c_write_sys : Trace.Counter.t;
  c_read_sys : Trace.Counter.t;
  c_corrupt : Trace.Counter.t;
  c_fanout_shared : Trace.Counter.t;
  c_payload_copies : Trace.Counter.t;
}

let cached = ref None

let counters () =
  let tr = Trace.ambient () in
  match !cached with
  | Some (tr', c) when tr' == tr -> c
  | _ ->
      let c =
        {
          c_frames_sent = Trace.counter tr "transport.frames_sent";
          c_frames_recv = Trace.counter tr "transport.frames_received";
          c_bytes_sent = Trace.counter tr "transport.bytes_sent";
          c_bytes_recv = Trace.counter tr "transport.bytes_received";
          c_write_sys = Trace.counter tr "transport.write_syscalls";
          c_read_sys = Trace.counter tr "transport.read_syscalls";
          c_corrupt = Trace.counter tr "transport.corrupt_frames";
          c_fanout_shared = Trace.counter tr "transport.fanout_shared";
          c_payload_copies = Trace.counter tr "transport.payload_copies";
        }
      in
      cached := Some (tr, c);
      c

let create ?max_frame fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  {
    fd;
    dec = Frame.Decoder.create ?max_frame ();
    wbuf = Buffer.create 4096;
    chunks = Queue.create ();
    chunk_bytes = 0;
    scratch = Bytes.create 65536;
    closed = false;
    frames_sent = 0;
    frames_recv = 0;
    bytes_sent = 0;
    bytes_recv = 0;
    write_syscalls = 0;
    read_syscalls = 0;
  }

let fd t = t.fd
let pending_bytes t = t.chunk_bytes + Buffer.length t.wbuf

(* Move the accumulator's contents to the back of the chunk queue, so
   later chunks (and later accumulated frames) stay in send order. *)
let seal t =
  let n = Buffer.length t.wbuf in
  if n > 0 then begin
    Queue.push { data = Buffer.contents t.wbuf; off = 0 } t.chunks;
    t.chunk_bytes <- t.chunk_bytes + n;
    Buffer.clear t.wbuf
  end

let count_sent t =
  t.frames_sent <- t.frames_sent + 1;
  Trace.Counter.incr (counters ()).c_frames_sent

let send t msg =
  Buffer.add_string t.wbuf (Frame.frame (Proto.encode msg));
  count_sent t

(* Enqueue an already-framed string. The string itself is immutable
   and may be simultaneously queued on any number of connections —
   that sharing is the whole point: the frame was encoded and CRC'd
   once for the lot. Small frames still coalesce (one counted copy
   into the accumulator) so fan-out of tiny envelopes keeps the
   syscall batching; large frames ride by reference, copy-free. *)
let send_preframed t pf =
  let s = Frame.preframed_bytes pf in
  let c = counters () in
  Trace.Counter.incr c.c_fanout_shared;
  if String.length s <= coalesce_limit then begin
    Buffer.add_string t.wbuf s;
    Trace.Counter.incr c.c_payload_copies
  end
  else begin
    seal t;
    Queue.push { data = s; off = 0 } t.chunks;
    t.chunk_bytes <- t.chunk_bytes + String.length s
  end;
  count_sent t

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Push pending chunks at the kernel until it blocks or we drain. *)
let flush t : verdict =
  if t.closed then `Closed "closed"
  else begin
    seal t;
    let rec drain () =
      match Queue.peek_opt t.chunks with
      | None -> `Ok
      | Some chunk -> (
          let len = String.length chunk.data - chunk.off in
          match Unix.write_substring t.fd chunk.data chunk.off len with
          | 0 -> `Blocked
          | n ->
              t.write_syscalls <- t.write_syscalls + 1;
              t.bytes_sent <- t.bytes_sent + n;
              t.chunk_bytes <- t.chunk_bytes - n;
              let c = counters () in
              Trace.Counter.incr c.c_write_sys;
              Trace.Counter.add c.c_bytes_sent n;
              if n = len then begin
                ignore (Queue.pop t.chunks);
                drain ()
              end
              else begin
                chunk.off <- chunk.off + n;
                `Blocked
              end
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
            ->
              `Blocked
          | exception Unix.Unix_error (e, _, _) ->
              `Closed (Unix.error_message e))
    in
    drain ()
  end

(* One read syscall; feed whatever arrived to the decoder. *)
let recv t : verdict =
  if t.closed then `Closed "closed"
  else
    match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
    | 0 -> `Closed "eof"
    | n ->
        t.read_syscalls <- t.read_syscalls + 1;
        t.bytes_recv <- t.bytes_recv + n;
        let c = counters () in
        Trace.Counter.incr c.c_read_sys;
        Trace.Counter.add c.c_bytes_recv n;
        Frame.Decoder.feed t.dec (Bytes.unsafe_to_string t.scratch) 0 n;
        `Ok
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        `Blocked
    | exception Unix.Unix_error (e, _, _) ->
        `Closed (Unix.error_message e)

type popped = Msg of Proto.msg | Nothing | Bad of string

type popped_view =
  | View of Proto.view
  | View_nothing
  | View_bad of string

let pop_view t =
  match Frame.Decoder.pop_view t.dec with
  | Frame.Decoder.V_await -> View_nothing
  | Frame.Decoder.V_corrupt msg ->
      Trace.Counter.incr (counters ()).c_corrupt;
      View_bad msg
  | Frame.Decoder.V_frame (buf, off, len) -> (
      match Proto.decode_view buf ~off ~len with
      | Proto.V_none ->
          Trace.Counter.incr (counters ()).c_corrupt;
          View_bad "undecodable message"
      | v ->
          t.frames_recv <- t.frames_recv + 1;
          Trace.Counter.incr (counters ()).c_frames_recv;
          View v)

let pop t =
  match pop_view t with
  | View_nothing -> Nothing
  | View_bad msg -> Bad msg
  | View v -> (
      match v with
      | Proto.V_msg m -> Msg m
      | Proto.V_pub { pseq; cls; envelope } ->
          Msg (Proto.Pub { pseq; cls; envelope = Proto.slice_to_string envelope })
      | Proto.V_deliver { origin; pseq; cls; envelope } ->
          Msg
            (Proto.Deliver
               { origin; pseq; cls; envelope = Proto.slice_to_string envelope })
      | Proto.V_none -> Bad "undecodable message")

type stats = {
  frames_sent : int;
  frames_received : int;
  bytes_sent : int;
  bytes_received : int;
  write_syscalls : int;
  read_syscalls : int;
}

let stats (t : t) =
  {
    frames_sent = t.frames_sent;
    frames_received = t.frames_recv;
    bytes_sent = t.bytes_sent;
    bytes_received = t.bytes_recv;
    write_syscalls = t.write_syscalls;
    read_syscalls = t.read_syscalls;
  }
