module Trace = Tpbs_trace.Trace

(* One framed, non-blocking connection.

   The write side batches: [send] only appends the encoded frame to an
   in-memory buffer, and [flush] pushes as much as the kernel will
   take in one [write]. A pump that sends a burst of small envelopes
   and then flushes once coalesces them all into a single syscall (and
   a single TCP segment, usually) — the batching factor shows up as
   [transport.frames_sent] / [transport.write_syscalls].

   The read side is symmetric: [recv] does one [read] into a scratch
   buffer and feeds the incremental {!Frame.Decoder}; [pop] then
   yields zero or more complete messages. Short and partial reads are
   the decoder's normal diet. *)

type verdict = [ `Ok | `Blocked | `Closed of string ]

type t = {
  fd : Unix.file_descr;
  dec : Frame.Decoder.t;
  wbuf : Buffer.t;  (* frames accumulating for the next write *)
  mutable inflight : string;  (* partially written chunk *)
  mutable inflight_off : int;
  scratch : Bytes.t;
  mutable closed : bool;
  mutable frames_sent : int;
  mutable frames_recv : int;
  mutable bytes_sent : int;
  mutable bytes_recv : int;
  mutable write_syscalls : int;
  mutable read_syscalls : int;
}

(* Shared ambient-registry counters: every connection in the process
   feeds the same transport.* totals, re-resolved when tests swap the
   ambient registry. *)
let cached = ref None

let counters () =
  let tr = Trace.ambient () in
  match !cached with
  | Some (tr', c) when tr' == tr -> c
  | _ ->
      let c =
        ( Trace.counter tr "transport.frames_sent",
          Trace.counter tr "transport.frames_received",
          Trace.counter tr "transport.bytes_sent",
          Trace.counter tr "transport.bytes_received",
          Trace.counter tr "transport.write_syscalls",
          Trace.counter tr "transport.corrupt_frames" )
      in
      cached := Some (tr, c);
      c

let create ?max_frame fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  {
    fd;
    dec = Frame.Decoder.create ?max_frame ();
    wbuf = Buffer.create 4096;
    inflight = "";
    inflight_off = 0;
    scratch = Bytes.create 65536;
    closed = false;
    frames_sent = 0;
    frames_recv = 0;
    bytes_sent = 0;
    bytes_recv = 0;
    write_syscalls = 0;
    read_syscalls = 0;
  }

let fd t = t.fd

let pending_bytes t =
  String.length t.inflight - t.inflight_off + Buffer.length t.wbuf

let send t msg =
  Buffer.add_string t.wbuf (Frame.frame (Proto.encode msg));
  t.frames_sent <- t.frames_sent + 1;
  let c_fs, _, _, _, _, _ = counters () in
  Trace.Counter.incr c_fs

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Push pending bytes at the kernel until it blocks or we drain. *)
let rec flush t : verdict =
  if t.closed then `Closed "closed"
  else if t.inflight_off < String.length t.inflight then begin
    let len = String.length t.inflight - t.inflight_off in
    match
      Unix.write_substring t.fd t.inflight t.inflight_off len
    with
    | 0 -> `Blocked
    | n ->
        t.write_syscalls <- t.write_syscalls + 1;
        t.bytes_sent <- t.bytes_sent + n;
        let _, _, c_bs, _, c_ws, _ = counters () in
        Trace.Counter.incr c_ws;
        Trace.Counter.add c_bs n;
        if n = len then begin
          t.inflight <- "";
          t.inflight_off <- 0;
          flush t
        end
        else begin
          t.inflight_off <- t.inflight_off + n;
          `Blocked
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        `Blocked
    | exception Unix.Unix_error (e, _, _) ->
        `Closed (Unix.error_message e)
  end
  else if Buffer.length t.wbuf > 0 then begin
    t.inflight <- Buffer.contents t.wbuf;
    t.inflight_off <- 0;
    Buffer.clear t.wbuf;
    flush t
  end
  else `Ok

(* One read syscall; feed whatever arrived to the decoder. *)
let recv t : verdict =
  if t.closed then `Closed "closed"
  else
    match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
    | 0 -> `Closed "eof"
    | n ->
        t.read_syscalls <- t.read_syscalls + 1;
        t.bytes_recv <- t.bytes_recv + n;
        let _, _, _, c_br, _, _ = counters () in
        Trace.Counter.add c_br n;
        Frame.Decoder.feed t.dec (Bytes.unsafe_to_string t.scratch) 0 n;
        `Ok
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        `Blocked
    | exception Unix.Unix_error (e, _, _) ->
        `Closed (Unix.error_message e)

type popped = Msg of Proto.msg | Nothing | Bad of string

let pop t =
  match Frame.Decoder.pop t.dec with
  | Frame.Decoder.Await -> Nothing
  | Frame.Decoder.Corrupt msg ->
      let _, _, _, _, _, c_cf = counters () in
      Trace.Counter.incr c_cf;
      Bad msg
  | Frame.Decoder.Frame payload -> (
      match Proto.decode payload with
      | Some m ->
          t.frames_recv <- t.frames_recv + 1;
          let _, c_fr, _, _, _, _ = counters () in
          Trace.Counter.incr c_fr;
          Msg m
      | None ->
          let _, _, _, _, _, c_cf = counters () in
          Trace.Counter.incr c_cf;
          Bad "undecodable message")

type stats = {
  frames_sent : int;
  frames_received : int;
  bytes_sent : int;
  bytes_received : int;
  write_syscalls : int;
  read_syscalls : int;
}

let stats (t : t) =
  {
    frames_sent = t.frames_sent;
    frames_received = t.frames_recv;
    bytes_sent = t.bytes_sent;
    bytes_received = t.bytes_recv;
    write_syscalls = t.write_syscalls;
    read_syscalls = t.read_syscalls;
  }
