module Registry = Tpbs_types.Registry
module Routing = Tpbs_core.Routing
module Pubsub = Tpbs_core.Pubsub
module Factored = Tpbs_filter.Factored
module Rfilter = Tpbs_filter.Rfilter
module Subsume = Tpbs_filter.Subsume
module Cursor = Tpbs_serial.Cursor
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Trace = Tpbs_trace.Trace

(* The tpbsd broker engine — a library, so unit tests can run broker
   and clients in one process over real sockets, and the soak harness
   can fork broker children without an exec path.

   It is the out-of-process twin of the in-simulation filtering host
   (Pubsub.add_broker): the same Routing index memoizes type-based
   fan-out per concrete class, the same Factored compound filter
   decides matches through lazy cursor projections, and the registry
   is grown dynamically from client Advertise messages instead of
   being shared by construction.

   Delivery and flow control: each session owns a bounded delivery
   queue drained by the credits the client granted. Publish credits
   are replenished only while every delivery queue sits below the low
   watermark, so total queued events are bounded by the sum of
   outstanding publish windows — backpressure propagates from the
   slowest subscriber to every publisher.

   Certified delivery across broker crashes: a [Pub] is acknowledged
   (cumulatively) only after its [Deliver] frames have been fully
   handed to the kernel for every matching subscriber session. If the
   broker dies first, the publisher still holds the event unacked and
   retransmits after reconnecting; subscriber-side per-origin monotone
   sequence checks drop whatever was already seen. Within one broker
   life, a per-client publish frontier suppresses re-routing of
   retransmitted duplicates (they are re-acked, not re-delivered). *)

(* What a delivery queue holds. With shared frames (the default) the
   Deliver is encoded + framed + CRC'd once in [on_pub] and every
   target session queues the same immutable string by reference —
   fan-out cost is independent of subscriber count. [D_plain] is the
   per-session-encode baseline, kept selectable ([config.shared_frames
   = false]) so the win stays measurable. *)
type delivery =
  | D_shared of Frame.preframed
  | D_plain of {
      dp_origin : string;
      dp_pseq : int;
      dp_cls : string;
      dp_envelope : string;
    }

type pubrec = {
  pr_session : session;  (* publisher awaiting the ack *)
  pr_pseq : int;
  mutable pr_outstanding : int;  (* subscriber sessions not yet flushed *)
}

and session = {
  s_conn : Conn.t;
  mutable s_id : string;
  mutable s_hello : bool;
  mutable s_pub_credit_owed : int;  (* credits to return to this publisher *)
  mutable s_deliver_credit : int;  (* credits the client granted us *)
  s_q : (delivery * pubrec) Queue.t;
  mutable s_unflushed : pubrec list;
      (* sent into s_conn but not yet drained to the kernel *)
  mutable s_subs : int list;  (* broker-side sids owned *)
  mutable s_acked : (int, unit) Hashtbl.t;  (* completed pseqs *)
  mutable s_ack_frontier : int;  (* all ≤ this are complete *)
  mutable s_ack_sent : int;  (* last cumulative ack shipped *)
  mutable s_closing : bool;
  mutable s_dropped : bool;
  mutable s_window_granted : bool;  (* full publish window released *)
}

type bsub = {
  bs_session : session;
  bs_param : string;
  bs_always : bool;
  bs_filter : Rfilter.t option;
}

(* A Sub covered by an installed subscription of the same session:
   recorded but never indexed — the coverer already routes a superset
   of its traffic to the same session, and delivery dedups per session,
   so suppressing it cannot change the delivery multiset. *)
type covrec = {
  cv_sid : int;  (* client-side sid, for unsub matching *)
  cv_sub : bsub;
  mutable cv_by : int;  (* bsid of the covering indexed subscription *)
}

type config = {
  pub_window : int;  (* publish credits granted per client *)
  low_watermark : int;  (* queues below this ⇒ replenish pub credits *)
  high_watermark : int;  (* owed credits at this ⇒ stop reading session *)
  max_frame : int;
  covering : bool;
      (* suppress Subs covered by an installed subscription of the
         same session (§4.4.4-style covering at the broker): the Sub
         is recorded, not re-indexed, and restored if its coverer is
         unsubscribed *)
  shared_frames : bool;
      (* encode-once fan-out: frame each accepted Pub's Deliver once
         and share the bytes across all target sessions. Off = the
         per-session-encode baseline, for measurement *)
  warmup_ms : int;
      (* a freshly started broker grants zero publish credits for this
         long, so after a crash every surviving subscriber gets a
         chance to re-subscribe before publishers are allowed to
         retransmit — otherwise an early retransmit routes to the
         subset that reconnected first, gets acked, and is lost to the
         late re-subscribers forever *)
}

let default_config =
  {
    pub_window = 64;
    low_watermark = 32;
    high_watermark = 256;
    max_frame = Frame.default_max_frame;
    covering = true;
    shared_frames = true;
    warmup_ms = 750;
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  port : int;
  registry : Registry.t;
  route : (int * bsub) Routing.t;
  factored : Factored.t;
  mutable sessions : session list;
  bsubs : (int, int * bsub) Hashtbl.t;  (* client sid space is per-session *)
  covered : (int, covrec) Hashtbl.t;  (* bsid → suppressed Sub *)
  mutable next_bsid : int;
  tr : Trace.t;
  pub_frontier : (string, int) Hashtbl.t;  (* client id → routed frontier *)
  t_started : float;
  mutable stopped : bool;
  (* observability *)
  c_accepts : Trace.Counter.t;
  c_pubs : Trace.Counter.t;
  c_dup_pubs : Trace.Counter.t;
  c_forwarded : Trace.Counter.t;
  c_acked : Trace.Counter.t;
  c_bad_frames : Trace.Counter.t;
  c_bad_adverts : Trace.Counter.t;
  c_disconnects : Trace.Counter.t;
  c_subs_covered : Trace.Counter.t;
  c_subs_restored : Trace.Counter.t;
  g_sessions : Trace.Gauge.t;
  g_qdepth : Trace.Gauge.t;
  g_credit : Trace.Gauge.t;
}

let listen_socket ~host ~port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  let addr = Unix.inet_addr_of_string host in
  Unix.bind fd (ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let create ?(config = default_config) ?(host = "127.0.0.1") ?listen_fd
    ~port () =
  let listen_fd =
    match listen_fd with
    | Some fd -> fd
    | None -> listen_socket ~host ~port
  in
  Unix.set_nonblock listen_fd;
  let port =
    match Unix.getsockname listen_fd with
    | ADDR_INET (_, p) -> p
    | _ -> port
  in
  let tr = Trace.ambient () in
  let registry = Registry.create () in
  {
    cfg = config;
    listen_fd;
    port;
    registry;
    route = Routing.create registry;
    factored = Factored.create ();
    sessions = [];
    bsubs = Hashtbl.create 64;
    covered = Hashtbl.create 16;
    next_bsid = 0;
    tr;
    pub_frontier = Hashtbl.create 16;
    t_started = Unix.gettimeofday ();
    stopped = false;
    c_accepts = Trace.counter tr "tpbsd.accepts";
    c_pubs = Trace.counter tr "tpbsd.pubs";
    c_dup_pubs = Trace.counter tr "tpbsd.dup_pubs";
    c_forwarded = Trace.counter tr "tpbsd.forwarded";
    c_acked = Trace.counter tr "tpbsd.acked";
    c_bad_frames = Trace.counter tr "tpbsd.bad_frames";
    c_bad_adverts = Trace.counter tr "tpbsd.bad_adverts";
    c_disconnects = Trace.counter tr "tpbsd.disconnects";
    c_subs_covered = Trace.counter tr "broker.subs_covered";
    c_subs_restored = Trace.counter tr "broker.subs_restored";
    g_sessions = Trace.gauge tr "tpbsd.sessions";
    g_qdepth = Trace.gauge tr "tpbsd.qdepth";
    g_credit = Trace.gauge tr "tpbsd.credit_outstanding";
  }

let port t = t.port

let warmed_up t =
  Unix.gettimeofday () -. t.t_started
  >= float_of_int t.cfg.warmup_ms /. 1000.

(* --- type lattice from advertisements ------------------------------- *)

let on_advertise t cls supers =
  if not (Registry.exists t.registry cls) then begin
    let known, missing = List.partition (Registry.exists t.registry) supers in
    if missing <> [] then Trace.Counter.incr t.c_bad_adverts;
    match Registry.declare_interface t.registry ~name:cls ~extends:known () with
    | () -> ()
    | exception Registry.Type_error _ -> Trace.Counter.incr t.c_bad_adverts
  end

(* --- subscriptions --------------------------------------------------- *)

(* Install an accepted subscription into the live index. *)
let install t ~bsid ~sid (sub : bsub) =
  Hashtbl.replace t.bsubs bsid (sid, sub);
  Routing.add t.route ~param:sub.bs_param
    ~compare:(fun (b1, _) (b2, _) -> Int.compare b1 b2)
    (bsid, sub);
  match sub.bs_filter with
  | Some rf -> Factored.add t.factored ~id:bsid rf
  | None -> ()

(* An installed subscription of the same session whose traffic is a
   superset of [sub]'s: same-session is essential — delivery dedups
   one Deliver per session, so a same-session coverer makes the
   suppressed Sub observationally absent, while a cross-session one
   would not route anything to [sub]'s owner. *)
let find_coverer t s (sub : bsub) =
  List.find_map
    (fun bsid ->
      match Hashtbl.find_opt t.bsubs bsid with
      | None -> None
      | Some (_, cov) ->
          if
            cov.bs_session == s
            && Registry.subtype t.registry sub.bs_param cov.bs_param
            && (cov.bs_always
               ||
               (not sub.bs_always)
               &&
               match (sub.bs_filter, cov.bs_filter) with
               | Some nf, Some cf ->
                   Subsume.covers ~registry:t.registry ~param:sub.bs_param
                     nf cf
               | _ -> false)
          then Some bsid
          else None)
    s.s_subs

let on_sub t s ~sid ~param ~filter =
  if not (Registry.exists t.registry param) then
    (* a subscription to a type nobody advertised yet: declare it bare
       so later advertisements can extend it *)
    (try Registry.declare_interface t.registry ~name:param ()
     with Registry.Type_error _ -> Trace.Counter.incr t.c_bad_adverts);
  let always, rfilter =
    match filter with
    | Value.Null -> (true, None)
    | v -> (
        match Rfilter.of_value v with
        | Some rf -> (false, Some rf)
        | None -> (true, None))
  in
  let bsid = t.next_bsid in
  t.next_bsid <- t.next_bsid + 1;
  let sub =
    { bs_session = s; bs_param = param; bs_always = always; bs_filter = rfilter }
  in
  let coverer = if t.cfg.covering then find_coverer t s sub else None in
  s.s_subs <- bsid :: s.s_subs;
  match coverer with
  | Some by ->
      Hashtbl.replace t.covered bsid { cv_sid = sid; cv_sub = sub; cv_by = by };
      Trace.Counter.incr t.c_subs_covered;
      if Trace.emitting t.tr then
        Trace.emit t.tr ~layer:"broker" ~kind:"sub_covered"
          ~data:[ ("bsid", Trace.I bsid); ("by", Trace.I by); ("param", Trace.S param) ]
          ()
  | None -> install t ~bsid ~sid sub

(* [removed] just left the index: any Sub it was covering either finds
   another coverer or is promoted into the index (in bsid order, so an
   early promotion can re-cover a later orphan). *)
let reparent t removed =
  let orphans =
    Hashtbl.fold
      (fun bsid cv acc -> if cv.cv_by = removed then (bsid, cv) :: acc else acc)
      t.covered []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (bsid, cv) ->
      match find_coverer t cv.cv_sub.bs_session cv.cv_sub with
      | Some by -> cv.cv_by <- by
      | None ->
          Hashtbl.remove t.covered bsid;
          install t ~bsid ~sid:cv.cv_sid cv.cv_sub;
          Trace.Counter.incr t.c_subs_restored;
          if Trace.emitting t.tr then
            Trace.emit t.tr ~layer:"broker" ~kind:"sub_restored"
              ~data:
                [ ("bsid", Trace.I bsid); ("param", Trace.S cv.cv_sub.bs_param) ]
              ())
    orphans

let on_unsub t s ~sid =
  let covered_mine =
    List.filter
      (fun bsid ->
        match Hashtbl.find_opt t.covered bsid with
        | Some cv -> cv.cv_sid = sid && cv.cv_sub.bs_session == s
        | None -> false)
      s.s_subs
  in
  List.iter (fun bsid -> Hashtbl.remove t.covered bsid) covered_mine;
  let mine =
    List.filter
      (fun bsid ->
        match Hashtbl.find_opt t.bsubs bsid with
        | Some (sid', sub) -> sid' = sid && sub.bs_session == s
        | None -> false)
      s.s_subs
  in
  List.iter
    (fun bsid ->
      match Hashtbl.find_opt t.bsubs bsid with
      | None -> ()
      | Some (_, sub) ->
          Hashtbl.remove t.bsubs bsid;
          Routing.remove t.route ~param:sub.bs_param (fun (b, _) -> b = bsid);
          Factored.remove t.factored ~id:bsid)
    mine;
  s.s_subs <-
    List.filter
      (fun b -> not (List.mem b mine || List.mem b covered_mine))
      s.s_subs;
  List.iter (fun bsid -> reparent t bsid) mine

(* --- publish routing -------------------------------------------------- *)

let build_targets t cls =
  Hashtbl.fold
    (fun bsid (_, sub) acc ->
      if Registry.subtype t.registry cls sub.bs_param then
        (bsid, sub) :: acc
      else acc)
    t.bsubs []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Completion bookkeeping: pseq [n] of [s] is fully handled (all its
   deliveries handed to the kernel, or it matched nobody). Cumulative
   acks only advance over a contiguous prefix — completion can arrive
   out of order when one subscriber drains faster than another. *)
let complete_pub t s pseq =
  Hashtbl.replace s.s_acked pseq ();
  let advanced = ref false in
  while Hashtbl.mem s.s_acked (s.s_ack_frontier + 1) do
    Hashtbl.remove s.s_acked (s.s_ack_frontier + 1);
    s.s_ack_frontier <- s.s_ack_frontier + 1;
    advanced := true
  done;
  if !advanced then Trace.Counter.incr t.c_acked

let pubrec_done t pr =
  pr.pr_outstanding <- pr.pr_outstanding - 1;
  if pr.pr_outstanding = 0 && not pr.pr_session.s_closing then
    complete_pub t pr.pr_session pr.pr_pseq

(* [envelope] is a view into the session's frame decoder buffer: valid
   only for the duration of this call (the next [Conn.recv] may move
   it), which is enough — filter decisions project over it in place,
   and it leaves either inside the once-encoded shared frame or as the
   one queued copy of the baseline arm. A dropped event costs no
   envelope copy at all. *)
let on_pub t s ~pseq ~cls ~(envelope : Proto.slice) =
  Trace.Counter.incr t.c_pubs;
  (* first pub of a (re)connected session pins the ack base *)
  if s.s_ack_frontier = min_int then begin
    s.s_ack_frontier <- pseq - 1;
    s.s_ack_sent <- pseq - 1
  end;
  let frontier =
    match Hashtbl.find_opt t.pub_frontier s.s_id with
    | Some f -> f
    | None -> min_int
  in
  if pseq <= frontier then begin
    (* retransmitted duplicate: already routed in this broker life —
       re-ack, never re-deliver *)
    Trace.Counter.incr t.c_dup_pubs;
    complete_pub t s pseq
  end
  else begin
    Hashtbl.replace t.pub_frontier s.s_id pseq;
    match
      Pubsub.Remote.decode_envelope_sub envelope.Proto.sl_buf
        ~off:envelope.Proto.sl_off ~len:envelope.Proto.sl_len
    with
    | None ->
        Trace.Counter.incr t.c_bad_frames;
        complete_pub t s pseq
    | Some (_, _, (obv_off, obv_len)) -> (
        match Routing.find t.route cls ~build:(build_targets t) with
        | [] -> complete_pub t s pseq
        | routed ->
            (* Factored matching through lazy cursor projections, as on
               the in-simulation filtering host: match or drop without
               materializing the obvent — or even copying its bytes out
               of the frame. *)
            let cursor =
              Cursor.of_substring envelope.Proto.sl_buf ~off:obv_off
                ~len:obv_len
            in
            let resolve path =
              let rec to_attrs = function
                | [] -> Some []
                | m :: rest -> (
                    match Obvent.attr_of_getter m with
                    | None -> None
                    | Some a -> (
                        match to_attrs rest with
                        | None -> None
                        | Some tl -> Some (a :: tl)))
              in
              match to_attrs path with
              | None -> None
              | Some attrs -> Cursor.project cursor attrs
            in
            let matched =
              match Factored.matches_set_resolve t.factored resolve with
              | ids -> ids
              | exception Tpbs_serial.Codec.Decode_error _ ->
                  Hashtbl.create 1
            in
            (* one Deliver per session, even when several of its
               subscriptions match *)
            let targets = Hashtbl.create 8 in
            List.iter
              (fun (bsid, sub) ->
                if
                  (sub.bs_always || Hashtbl.mem matched bsid)
                  && (not sub.bs_session.s_closing)
                  && not (Hashtbl.mem targets bsid)
                then begin
                  let dup =
                    Hashtbl.fold
                      (fun _ s' any -> any || s' == sub.bs_session)
                      targets false
                  in
                  if not dup then Hashtbl.replace targets bsid sub.bs_session
                end)
              routed;
            let n = Hashtbl.length targets in
            if n = 0 then complete_pub t s pseq
            else begin
              let pr = { pr_session = s; pr_pseq = pseq; pr_outstanding = n } in
              (* build the delivery once, outside the target loop: in
                 shared mode this is THE encode+CRC of the whole
                 fan-out *)
              let delivery =
                if t.cfg.shared_frames then
                  D_shared
                    (Proto.encode_deliver ~origin:s.s_id ~pseq ~cls envelope)
                else
                  D_plain
                    {
                      dp_origin = s.s_id;
                      dp_pseq = pseq;
                      dp_cls = cls;
                      dp_envelope = Proto.slice_to_string envelope;
                    }
              in
              Hashtbl.iter
                (fun _ dst -> Queue.push (delivery, pr) dst.s_q)
                targets
            end)
  end

(* --- per-session pump -------------------------------------------------- *)

let qdepth_gauges t =
  let worst = ref 0 in
  List.iter
    (fun s -> if Queue.length s.s_q > !worst then worst := Queue.length s.s_q)
    t.sessions;
  Trace.Gauge.set t.g_qdepth !worst;
  !worst

let pump_session t s =
  if not s.s_closing then begin
    (* drain the delivery queue into the connection, credit-gated *)
    while s.s_deliver_credit > 0 && not (Queue.is_empty s.s_q) do
      let delivery, pr = Queue.pop s.s_q in
      (match delivery with
      | D_shared pf -> Conn.send_preframed s.s_conn pf
      | D_plain { dp_origin; dp_pseq; dp_cls; dp_envelope } ->
          Conn.send s.s_conn
            (Proto.Deliver
               {
                 origin = dp_origin;
                 pseq = dp_pseq;
                 cls = dp_cls;
                 envelope = dp_envelope;
               }));
      Trace.Counter.incr t.c_forwarded;
      s.s_deliver_credit <- s.s_deliver_credit - 1;
      s.s_unflushed <- pr :: s.s_unflushed
    done;
    (* cumulative ack, if it advanced *)
    if s.s_ack_frontier > s.s_ack_sent && s.s_ack_frontier <> min_int then begin
      Conn.send s.s_conn (Proto.Pub_ack { pseq = s.s_ack_frontier });
      s.s_ack_sent <- s.s_ack_frontier
    end;
    (* publish-credit replenishment only under low queue pressure *)
    if s.s_pub_credit_owed > 0 then begin
      let worst = qdepth_gauges t in
      if worst < t.cfg.low_watermark then begin
        Conn.send s.s_conn (Proto.Credit { n = s.s_pub_credit_owed });
        s.s_pub_credit_owed <- 0
      end
    end;
    match Conn.flush s.s_conn with
    | `Ok ->
        (* everything sent so far reached the kernel: deliveries are
           now the network's problem, count them complete *)
        let done_ = s.s_unflushed in
        s.s_unflushed <- [];
        List.iter (fun pr -> pubrec_done t pr) done_
    | `Blocked -> ()
    | `Closed _ -> s.s_closing <- true
  end

let drop_session t s reason =
  if s.s_dropped then ()
  else begin
  s.s_dropped <- true;
  s.s_closing <- true;
  ignore reason;
  Trace.Counter.incr t.c_disconnects;
  (* its queued/unflushed deliveries will never happen; release the
     publisher acks they were holding back *)
  Queue.iter (fun (_, pr) -> pubrec_done t pr) s.s_q;
  Queue.clear s.s_q;
  let un = s.s_unflushed in
  s.s_unflushed <- [];
  List.iter (fun pr -> pubrec_done t pr) un;
  (* drop its subscriptions — covered ones too, with no restore: the
     only session their coverer was shielding is the one dying *)
  List.iter
    (fun bsid ->
      Hashtbl.remove t.covered bsid;
      match Hashtbl.find_opt t.bsubs bsid with
      | None -> ()
      | Some (_, sub) ->
          Hashtbl.remove t.bsubs bsid;
          Routing.remove t.route ~param:sub.bs_param (fun (b, _) -> b = bsid);
          Factored.remove t.factored ~id:bsid)
    s.s_subs;
  s.s_subs <- [];
  Conn.close s.s_conn;
  t.sessions <- List.filter (fun s' -> not (s' == s)) t.sessions;
  Trace.Gauge.set t.g_sessions (List.length t.sessions)
  end

let on_msg t s (m : Proto.msg) =
  match m with
  | Hello { client; window } ->
      s.s_id <- client;
      s.s_hello <- true;
      s.s_deliver_credit <- window;
      (* during warmup the publish window opens at zero; the full
         window follows as a Credit once the warmup has elapsed *)
      let granted = if warmed_up t then t.cfg.pub_window else 0 in
      s.s_window_granted <- granted > 0;
      Conn.send s.s_conn (Proto.Welcome { window = granted });
      Trace.Gauge.set t.g_credit
        (List.fold_left
           (fun acc s' -> acc + if s'.s_hello then t.cfg.pub_window else 0)
           0 t.sessions)
  | _ when not s.s_hello -> drop_session t s "message before hello"
  | Welcome _ -> drop_session t s "unexpected welcome"
  | Advertise { cls; supers } -> on_advertise t cls supers
  | Sub { sid; param; filter } -> on_sub t s ~sid ~param ~filter
  | Unsub { sid } -> on_unsub t s ~sid
  | Pub { pseq; cls; envelope } ->
      on_pub t s ~pseq ~cls ~envelope:(Proto.slice_of_string envelope)
  | Pub_ack _ -> ()  (* brokers do not publish *)
  | Deliver _ -> drop_session t s "client sent deliver"
  | Credit { n } -> s.s_deliver_credit <- s.s_deliver_credit + n
  | Bye -> drop_session t s "bye"

let accept_all t =
  let continue = ref true in
  while !continue && not t.stopped do
    match Unix.accept t.listen_fd with
    | fd, _addr ->
        Trace.Counter.incr t.c_accepts;
        let s =
          {
            s_conn = Conn.create ~max_frame:t.cfg.max_frame fd;
            s_id = "";
            s_hello = false;
            s_pub_credit_owed = 0;
            s_deliver_credit = 0;
            s_q = Queue.create ();
            s_unflushed = [];
            s_subs = [];
            s_acked = Hashtbl.create 16;
            s_ack_frontier = min_int;
            s_ack_sent = min_int;
            s_closing = false;
            s_dropped = false;
            s_window_granted = false;
          }
        in
        t.sessions <- s :: t.sessions;
        Trace.Gauge.set t.g_sessions (List.length t.sessions)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        continue := false
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

let read_session t s =
  (* Per-session overrun gate: a conforming publisher never has more
     than [pub_window] pubs in flight, so owed credits past the high
     watermark mean the client is ignoring backpressure. Stop reading
     it — the kernel socket buffer becomes the extension of our
     window — while still reading everyone else (a global gate would
     deadlock: subscribers could never deliver their Credit
     replenishments). *)
  let saturated = s.s_pub_credit_owed >= t.cfg.high_watermark in
  if not saturated then begin
    match Conn.recv s.s_conn with
    | `Ok ->
        let continue = ref true in
        while !continue && not s.s_closing do
          match Conn.pop_view s.s_conn with
          | Conn.View (Proto.V_pub { pseq; cls; envelope }) ->
              (* the hot message, decoded in place: the envelope slice
                 stays valid through on_pub — no recv happens before
                 it returns. Every processed Pub owes the publisher a
                 credit back. *)
              if not s.s_hello then drop_session t s "message before hello"
              else begin
                s.s_pub_credit_owed <- s.s_pub_credit_owed + 1;
                on_pub t s ~pseq ~cls ~envelope
              end
          | Conn.View (Proto.V_deliver _) ->
              if not s.s_hello then drop_session t s "message before hello"
              else drop_session t s "client sent deliver"
          | Conn.View (Proto.V_msg m) -> on_msg t s m
          | Conn.View Proto.V_none ->
              (* pop_view reports undecodable frames as View_bad *)
              assert false
          | Conn.View_nothing -> continue := false
          | Conn.View_bad reason ->
              Trace.Counter.incr t.c_bad_frames;
              drop_session t s reason;
              continue := false
        done
    | `Blocked -> ()
    | `Closed reason -> drop_session t s reason
  end

(* One engine turn: accept, read, route, pump, sweep. [timeout_ms < 0]
   blocks until any fd is ready. *)
let poll t ?(extra_fds = []) ~timeout_ms () =
  if t.stopped then false
  else begin
    let rds =
      t.listen_fd
      :: List.map (fun s -> Conn.fd s.s_conn) t.sessions
      @ extra_fds
    in
    let wrs =
      List.filter_map
        (fun s ->
          if Conn.pending_bytes s.s_conn > 0 then Some (Conn.fd s.s_conn)
          else None)
        t.sessions
    in
    let timeout = float_of_int timeout_ms /. 1000. in
    let rd, _, _ =
      match Unix.select rds wrs [] timeout with
      | r -> r
      | exception Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    if List.mem t.listen_fd rd then accept_all t;
    (* release withheld publish windows once the warmup has elapsed *)
    if warmed_up t then
      List.iter
        (fun s ->
          if s.s_hello && not s.s_window_granted then begin
            s.s_window_granted <- true;
            Conn.send s.s_conn (Proto.Credit { n = t.cfg.pub_window })
          end)
        t.sessions;
    List.iter
      (fun s -> if List.mem (Conn.fd s.s_conn) rd then read_session t s)
      t.sessions;
    List.iter (fun s -> pump_session t s) t.sessions;
    List.iter
      (fun s -> if s.s_closing then drop_session t s "sweep")
      (List.filter (fun s -> s.s_closing) t.sessions);
    ignore (qdepth_gauges t);
    List.exists (fun fd -> List.mem fd rd) extra_fds
  end

let stop ?(keep_listener = false) t =
  if not t.stopped then begin
    t.stopped <- true;
    List.iter (fun s -> drop_session t s "shutdown") t.sessions;
    if not keep_listener then
      try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end

let session_count t = List.length t.sessions
