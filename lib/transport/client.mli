(** Client connector: joins a running [tpbsd] broker over TCP and
    plugs into an unmodified {!Tpbs_core.Pubsub.Domain} through the
    {!Tpbs_core.Pubsub.Remote} seam, so [publish] / [subscribe] on the
    domain transparently route through the remote broker.

    Owns the client half of the transport guarantees: contiguous
    publish sequencing with retransmission of unacknowledged events
    after a reconnect, per-origin monotone deduplication of
    deliveries, credit-based flow control in both directions, and
    (re-)advertisement of the type lattice and subscriptions on every
    fresh connection.

    Single-threaded and non-blocking: nothing happens outside
    {!connect}, {!reconnect}, {!poll} and the publish/subscribe
    upcalls.

    Metrics (ambient {!Tpbs_trace.Trace} registry):
    [transport.client_pubs], [transport.client_acked],
    [transport.delivered], [transport.dup_drops],
    [transport.retransmits], [transport.reconnects],
    [transport.backoff_waits] counters; [transport.sendq],
    [transport.unacked], [transport.window] gauges. *)

type t

(** Exponential backoff with jitter for reconnect loops. *)
module Backoff : sig
  type policy = {
    base_ms : int;  (** delay before the first retry *)
    factor : float;  (** growth per attempt *)
    max_delay_ms : int;  (** exponential growth is capped here *)
    jitter : float;  (** +/- fraction of the capped delay *)
    max_retries : int;  (** attempts before giving up *)
  }

  val default : policy
  (** 100 ms base, doubling, 10 s cap, ±20% jitter, 8 attempts. *)

  val delay_ms : policy -> attempt:int -> u:float -> int
  (** The wait before (0-based) retry [attempt], given a uniform draw
      [u] in [0, 1): [min (base * factor^attempt) max_delay], spread
      over ±[jitter] of itself. Pure — unit-testable without
      sleeping. *)
end

val connect :
  ?window:int ->
  ?max_frame:int ->
  ?timeout_ms:int ->
  ?reconnect:[ `Backoff of Backoff.policy | `Manual ] ->
  host:string ->
  port:int ->
  id:string ->
  unit ->
  t option
(** Dial and handshake. [id] must be unique among the broker's clients
    and stable across reconnects (it keys publish deduplication).
    [window] (default 64) is the delivery credit granted to the
    broker. [None] if the broker is unreachable or the handshake times
    out.

    [reconnect] (default [`Backoff Backoff.default]) makes {!poll}
    itself re-dial a dropped connection on the jittered exponential
    schedule — the first attempt immediate, each failure booking the
    next one later, until the retry budget runs out (after which only
    an explicit {!reconnect} re-arms it; {!close} disarms it).
    [`Manual] restores the caller-driven behaviour. *)

val attach : t -> Tpbs_core.Pubsub.Domain.t -> Tpbs_core.Pubsub.Process.t -> unit
(** Wire a domain through this connection
    ({!Tpbs_core.Pubsub.Remote.connect}): call once, before any
    channel is opened. *)

val poll : t -> timeout_ms:int -> bool
(** One I/O turn: wait up to [timeout_ms] for socket readiness, read
    and dispatch deliveries/acks/credits, push queued publishes.
    [false] when the connection is down — publishes queue locally
    until a reconnect succeeds. Under the default [`Backoff] policy a
    down connection is re-dialed from inside poll itself (waits are
    bounded by [timeout_ms] per call and counted by
    [transport.backoff_waits]); with [`Manual], call {!reconnect}. *)

val connected : t -> bool

val reconnect : ?timeout_ms:int -> t -> bool
(** One reconnection attempt. On success, re-advertises, re-subscribes
    every live subscription, and retransmits all unacknowledged
    publishes ahead of newer queued ones. *)

val reconnect_with_backoff :
  ?policy:Backoff.policy ->
  ?sleep:(int -> unit) ->
  ?rand:(unit -> float) ->
  ?timeout_ms:int ->
  t ->
  bool
(** {!reconnect} in a loop under the backoff schedule: up to
    [max_retries] attempts, waiting [Backoff.delay_ms] between
    consecutive failures (each wait counted by
    [transport.backoff_waits]). [sleep] (default [Unix.sleepf]) and
    [rand] (default a self-seeded PRNG) are injectable for tests.
    [false] once the retry budget is exhausted. *)

val publish : t -> cls:string -> string -> unit
(** Low-level publish (bypassing a domain): queue one encoded envelope
    of class [cls]. Normally reached via {!attach}. *)

val unacked_count : t -> int
(** Publishes sent but not yet covered by a cumulative ack. *)

val queued_count : t -> int
(** Everything still owed to the broker: queued + unacked. *)

val close : t -> unit
(** Send [Bye] and drop the connection. Queued state survives, so a
    later {!reconnect} resumes cleanly. *)
