(** Client connector: joins a running [tpbsd] broker over TCP and
    plugs into an unmodified {!Tpbs_core.Pubsub.Domain} through the
    {!Tpbs_core.Pubsub.Remote} seam, so [publish] / [subscribe] on the
    domain transparently route through the remote broker.

    Owns the client half of the transport guarantees: contiguous
    publish sequencing with retransmission of unacknowledged events
    after a reconnect, per-origin monotone deduplication of
    deliveries, credit-based flow control in both directions, and
    (re-)advertisement of the type lattice and subscriptions on every
    fresh connection.

    Single-threaded and non-blocking: nothing happens outside
    {!connect}, {!reconnect}, {!poll} and the publish/subscribe
    upcalls.

    Metrics (ambient {!Tpbs_trace.Trace} registry):
    [transport.client_pubs], [transport.client_acked],
    [transport.delivered], [transport.dup_drops],
    [transport.retransmits], [transport.reconnects] counters;
    [transport.sendq], [transport.unacked], [transport.window]
    gauges. *)

type t

val connect :
  ?window:int ->
  ?max_frame:int ->
  ?timeout_ms:int ->
  host:string ->
  port:int ->
  id:string ->
  unit ->
  t option
(** Dial and handshake. [id] must be unique among the broker's clients
    and stable across reconnects (it keys publish deduplication).
    [window] (default 64) is the delivery credit granted to the
    broker. [None] if the broker is unreachable or the handshake times
    out. *)

val attach : t -> Tpbs_core.Pubsub.Domain.t -> Tpbs_core.Pubsub.Process.t -> unit
(** Wire a domain through this connection
    ({!Tpbs_core.Pubsub.Remote.connect}): call once, before any
    channel is opened. *)

val poll : t -> timeout_ms:int -> bool
(** One I/O turn: wait up to [timeout_ms] for socket readiness, read
    and dispatch deliveries/acks/credits, push queued publishes.
    [false] when the connection is down — publishes queue locally
    until {!reconnect} succeeds. *)

val connected : t -> bool

val reconnect : ?timeout_ms:int -> t -> bool
(** One reconnection attempt. On success, re-advertises, re-subscribes
    every live subscription, and retransmits all unacknowledged
    publishes ahead of newer queued ones. *)

val publish : t -> cls:string -> string -> unit
(** Low-level publish (bypassing a domain): queue one encoded envelope
    of class [cls]. Normally reached via {!attach}. *)

val unacked_count : t -> int
(** Publishes sent but not yet covered by a cumulative ack. *)

val queued_count : t -> int
(** Everything still owed to the broker: queued + unacked. *)

val close : t -> unit
(** Send [Bye] and drop the connection. Queued state survives, so a
    later {!reconnect} resumes cleanly. *)
