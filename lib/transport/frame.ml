module Wire = Tpbs_serial.Wire

(* Stream framing for the real transport:

     [ payload length : u32 LE | crc32(payload) : u32 LE | payload ]

   — the same shape lib/store/record gives durable log records, for
   the same reason: the length prefix makes a byte stream
   self-framing, and the CRC makes every frame independently
   checkable, so the receive side can tell "more bytes coming" (a
   short read mid-frame) from "the stream is damaged" (bit rot, a
   desynchronized peer, or an attacker). TCP never re-orders or drops
   within a connection, so unlike the on-disk scan there is no
   re-synchronization: a corrupt frame condemns the connection.

   The decoder is pure (no fds) and incremental: feed it whatever the
   socket returned — one byte at a time if that is what [read] gave
   you — and pop complete frames. That keeps it unit-testable under
   adversarial input without a socket in sight. *)

let header_bytes = 8
let default_max_frame = 1 lsl 24 (* 16 MiB: far above any envelope *)

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (header_bytes + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.set_int32_le b 4 (Wire.crc32 payload);
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

(* A frame built once and shared by reference across any number of
   connections: header + CRC are computed at construction, so fanning
   an event out to N subscribers costs one encode and one CRC no
   matter what N is. The type is abstract so only bytes that really
   went through [frame] can be enqueued as-is on a socket. *)
type preframed = string

let preframed payload = frame payload
let preframed_bytes (p : preframed) : string = p
let preframed_length (p : preframed) = String.length p - header_bytes

module Decoder = struct
  type t = {
    max_frame : int;
    mutable buf : Bytes.t;
    mutable start : int;  (* first unconsumed byte *)
    mutable len : int;  (* unconsumed bytes from [start] *)
    mutable dead : string option;  (* sticky corruption verdict *)
    mutable frames : int;
  }

  type result = Frame of string | Await | Corrupt of string

  let create ?(max_frame = default_max_frame) () =
    {
      max_frame;
      buf = Bytes.create 4096;
      start = 0;
      len = 0;
      dead = None;
      frames = 0;
    }

  let buffered t = t.len
  let frames t = t.frames
  let is_dead t = t.dead <> None

  let ensure t extra =
    let cap = Bytes.length t.buf in
    if t.start + t.len + extra > cap then
      if t.len + extra <= cap then begin
        (* compacting the consumed prefix is enough *)
        Bytes.blit t.buf t.start t.buf 0 t.len;
        t.start <- 0
      end
      else begin
        let cap' = ref (max 4096 (2 * cap)) in
        while !cap' < t.len + extra do
          cap' := 2 * !cap'
        done;
        let fresh = Bytes.create !cap' in
        Bytes.blit t.buf t.start fresh 0 t.len;
        t.buf <- fresh;
        t.start <- 0
      end

  let feed t s off len =
    if off < 0 || len < 0 || off + len > String.length s then
      invalid_arg "Frame.Decoder.feed";
    if t.dead = None && len > 0 then begin
      ensure t len;
      Bytes.blit_string s off t.buf (t.start + t.len) len;
      t.len <- t.len + len
    end

  let feed_string t s = feed t s 0 (String.length s)

  type view_result =
    | V_frame of string * int * int
    | V_await
    | V_corrupt of string

  let condemn t msg =
    t.dead <- Some msg;
    (* the buffered tail is garbage now — drop it *)
    t.len <- 0

  (* Zero-copy pop: the payload is handed out as an (buf, off, len)
     view into the decoder's own buffer. The CRC is checked in place
     ([Wire.crc32_sub]), so a valid frame costs no allocation at all.
     The view aliases mutable storage — it is invalidated by the next
     [feed] (which may compact or reallocate the buffer), so callers
     must finish with it, or copy, before feeding again. *)
  let pop_view t =
    match t.dead with
    | Some msg -> V_corrupt msg
    | None ->
        if t.len < header_bytes then V_await
        else
          let n = Int32.to_int (Bytes.get_int32_le t.buf t.start) in
          if n < 0 || n > t.max_frame then begin
            let msg = Printf.sprintf "frame length %d out of bounds" n in
            condemn t msg;
            V_corrupt msg
          end
          else if t.len < header_bytes + n then V_await
          else
            let crc = Bytes.get_int32_le t.buf (t.start + 4) in
            let src = Bytes.unsafe_to_string t.buf in
            let off = t.start + header_bytes in
            if Wire.crc32_sub src ~pos:off ~len:n <> crc then begin
              condemn t "frame crc mismatch";
              V_corrupt "frame crc mismatch"
            end
            else begin
              t.start <- t.start + header_bytes + n;
              t.len <- t.len - header_bytes - n;
              if t.len = 0 then t.start <- 0;
              t.frames <- t.frames + 1;
              V_frame (src, off, n)
            end

  let pop t =
    match pop_view t with
    | V_await -> Await
    | V_corrupt msg -> Corrupt msg
    | V_frame (src, off, len) -> Frame (String.sub src off len)
end
