(** Length-prefixed, CRC-checked stream framing for the TCP transport.

    Frames are [len u32 LE | crc32(payload) u32 LE | payload] — the
    same shape as {!Tpbs_store.Record} gives durable log records — so
    a byte stream becomes self-framing and every frame is
    independently checkable. Unlike the on-disk scan there is no
    resynchronization: within a TCP connection bytes never reorder, so
    a bad length or CRC means the stream itself is damaged and the
    connection must be torn down. *)

val header_bytes : int
val default_max_frame : int

val frame : string -> string
(** Wrap a payload in a frame header. *)

type preframed
(** A frame built once and shared by reference across any number of
    connections: the fan-out currency of the encode-once delivery
    path. Abstract so only bytes that really carry a valid header +
    CRC can bypass per-connection encoding. *)

val preframed : string -> preframed
(** [preframed payload] = {!frame}[ payload], typed for sharing. One
    encode + one CRC here covers every connection it is sent on. *)

val preframed_bytes : preframed -> string
(** The raw framed bytes (header included), ready for the socket. *)

val preframed_length : preframed -> int
(** Payload length (header excluded). *)

(** Incremental, fd-free frame parser. Feed it whatever the socket
    returned — a byte at a time if need be — and pop complete frames.
    Corruption is sticky: once a frame is condemned, every later [pop]
    reports the same verdict and fed bytes are discarded. *)
module Decoder : sig
  type t
  type result = Frame of string | Await | Corrupt of string

  val create : ?max_frame:int -> unit -> t
  (** [max_frame] (default {!default_max_frame}) bounds the accepted
      payload size; larger (or negative) length prefixes condemn the
      stream. *)

  val feed : t -> string -> int -> int -> unit
  (** [feed t s off len] appends [s.[off .. off+len-1]].
      @raise Invalid_argument on an out-of-bounds slice. *)

  val feed_string : t -> string -> unit

  val pop : t -> result
  (** Extract the next complete frame: [Await] means feed more bytes,
      [Corrupt] is fatal for the connection. Copies the payload out;
      {!pop_view} is the allocation-free form. *)

  type view_result =
    | V_frame of string * int * int
        (** [(buf, off, len)]: payload view into the decoder's own
            buffer. *)
    | V_await
    | V_corrupt of string

  val pop_view : t -> view_result
  (** Like {!pop} but zero-copy: the payload is a slice of the
      decoder's internal buffer and the CRC is checked in place. The
      view is only valid until the next {!feed} (which may compact or
      reallocate the buffer) — finish with it, or copy, before feeding
      again. *)

  val buffered : t -> int
  (** Unconsumed bytes currently held. *)

  val frames : t -> int
  (** Frames successfully decoded so far. *)

  val is_dead : t -> bool
end
