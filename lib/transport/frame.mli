(** Length-prefixed, CRC-checked stream framing for the TCP transport.

    Frames are [len u32 LE | crc32(payload) u32 LE | payload] — the
    same shape as {!Tpbs_store.Record} gives durable log records — so
    a byte stream becomes self-framing and every frame is
    independently checkable. Unlike the on-disk scan there is no
    resynchronization: within a TCP connection bytes never reorder, so
    a bad length or CRC means the stream itself is damaged and the
    connection must be torn down. *)

val header_bytes : int
val default_max_frame : int

val frame : string -> string
(** Wrap a payload in a frame header. *)

(** Incremental, fd-free frame parser. Feed it whatever the socket
    returned — a byte at a time if need be — and pop complete frames.
    Corruption is sticky: once a frame is condemned, every later [pop]
    reports the same verdict and fed bytes are discarded. *)
module Decoder : sig
  type t
  type result = Frame of string | Await | Corrupt of string

  val create : ?max_frame:int -> unit -> t
  (** [max_frame] (default {!default_max_frame}) bounds the accepted
      payload size; larger (or negative) length prefixes condemn the
      stream. *)

  val feed : t -> string -> int -> int -> unit
  (** [feed t s off len] appends [s.[off .. off+len-1]].
      @raise Invalid_argument on an out-of-bounds slice. *)

  val feed_string : t -> string -> unit

  val pop : t -> result
  (** Extract the next complete frame: [Await] means feed more bytes,
      [Corrupt] is fatal for the connection. *)

  val buffered : t -> int
  (** Unconsumed bytes currently held. *)

  val frames : t -> int
  (** Frames successfully decoded so far. *)

  val is_dead : t -> bool
end
