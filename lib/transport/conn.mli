(** A non-blocking framed connection: {!Proto} messages over
    {!Frame}s over a TCP socket.

    Writes batch: {!send} only buffers; {!flush} coalesces everything
    queued since the last flush into as few [write] syscalls as the
    kernel allows, so a pump that sends a burst of small envelopes
    pays one syscall for the lot (watch [transport.frames_sent] /
    [transport.write_syscalls]). Reads tolerate arbitrarily short and
    partial delivery — the incremental {!Frame.Decoder} does the
    reassembly. *)

type t

type verdict = [ `Ok | `Blocked | `Closed of string ]

val create : ?max_frame:int -> Unix.file_descr -> t
(** Take ownership of [fd]: set non-blocking (and [TCP_NODELAY] when
    applicable). *)

val fd : t -> Unix.file_descr

val send : t -> Proto.msg -> unit
(** Queue a message. No I/O happens until {!flush}. *)

val send_preframed : t -> Frame.preframed -> unit
(** Queue an already-framed string without re-encoding or re-CRCing.
    The same {!Frame.preframed} may be queued on any number of
    connections simultaneously — fan-out costs one encode for the lot
    (each enqueue bumps [transport.fanout_shared]). Frames larger than
    the coalescing threshold are held by reference and written to the
    socket with no userland copy; smaller ones are coalesced into the
    accumulator (one counted copy) to preserve syscall batching. *)

val flush : t -> verdict
(** Write queued bytes until drained ([`Ok]), the kernel blocks
    ([`Blocked] — retry when the fd polls writable), or the peer is
    gone ([`Closed]). *)

val pending_bytes : t -> int

val recv : t -> verdict
(** One [read] syscall, feeding the frame decoder. [`Ok] means bytes
    arrived — call {!pop} until [Nothing]. [`Closed "eof"] is orderly
    shutdown. *)

type popped =
  | Msg of Proto.msg
  | Nothing  (** need more bytes *)
  | Bad of string
      (** corrupt frame or undecodable message: fatal, close the
          connection (also counted by [transport.corrupt_frames]) *)

val pop : t -> popped
(** Materializing form of {!pop_view}: [Pub]/[Deliver] envelopes are
    copied out of the decoder buffer (counted by
    [transport.payload_copies]), so the message is stable across
    later {!recv}s. *)

type popped_view =
  | View of Proto.view
  | View_nothing  (** need more bytes *)
  | View_bad of string
      (** corrupt frame or undecodable message: fatal, close the
          connection (also counted by [transport.corrupt_frames]) *)

val pop_view : t -> popped_view
(** Zero-copy pop: the frame payload is decoded in place over the
    decoder's buffer, so [Pub]/[Deliver] envelopes come back as
    {!Proto.slice} views. A view is only valid until the next {!recv}
    on this connection — finish with it, or {!Proto.slice_to_string}
    it, first. *)

val close : t -> unit
(** Idempotent. *)

type stats = {
  frames_sent : int;
  frames_received : int;
  bytes_sent : int;
  bytes_received : int;
  write_syscalls : int;
  read_syscalls : int;
}

val stats : t -> stats
