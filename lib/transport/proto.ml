module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec

(* The broker protocol. One message per frame, encoded as an ordinary
   [Value] through [Codec] — the transport speaks the same wire
   dialect as everything else in the system, so a protocol trace can
   be decoded with the stock tools.

   Flow control is credit-based in both directions and counted in
   messages, not bytes (envelopes are small and near-uniform):

   - the broker grants the client [window] publish credits in
     [Welcome] and replenishes with [Credit] as it drains its delivery
     queues; a client with no credit queues locally, so broker-side
     queue depth is bounded by the sum of granted windows;
   - the client grants the broker delivery credits in [Hello] and
     replenishes with [Credit] as its application consumes.

   Exactly-once across broker restarts is the classic pairing:
   publishers retransmit every unacknowledged [Pub] after reconnecting
   (acks are cumulative), and subscribers drop any [Deliver] whose
   per-origin sequence is not strictly increasing. *)

type msg =
  | Hello of { client : string; window : int }
  | Welcome of { window : int }
  | Advertise of { cls : string; supers : string list }
  | Sub of { sid : int; param : string; filter : Value.t }
  | Unsub of { sid : int }
  | Pub of { pseq : int; cls : string; envelope : string }
  | Pub_ack of { pseq : int }
  | Deliver of { origin : string; pseq : int; cls : string; envelope : string }
  | Credit of { n : int }
  | Bye

let to_value = function
  | Hello { client; window } ->
      Value.(List [ Str "hello"; Str client; Int window ])
  | Welcome { window } -> Value.(List [ Str "welcome"; Int window ])
  | Advertise { cls; supers } ->
      Value.(
        List [ Str "adv"; Str cls; List (List.map (fun s -> Str s) supers) ])
  | Sub { sid; param; filter } ->
      Value.(List [ Str "sub"; Int sid; Str param; filter ])
  | Unsub { sid } -> Value.(List [ Str "unsub"; Int sid ])
  | Pub { pseq; cls; envelope } ->
      Value.(List [ Str "pub"; Int pseq; Str cls; Str envelope ])
  | Pub_ack { pseq } -> Value.(List [ Str "ack"; Int pseq ])
  | Deliver { origin; pseq; cls; envelope } ->
      Value.(
        List [ Str "dlv"; Str origin; Int pseq; Str cls; Str envelope ])
  | Credit { n } -> Value.(List [ Str "credit"; Int n ])
  | Bye -> Value.(List [ Str "bye" ])

let of_value v =
  match v with
  | Value.List (Value.Str tag :: rest) -> (
      match (tag, rest) with
      | "hello", [ Value.Str client; Value.Int window ] ->
          Some (Hello { client; window })
      | "welcome", [ Value.Int window ] -> Some (Welcome { window })
      | "adv", [ Value.Str cls; Value.List supers ] ->
          let ok, supers =
            List.fold_right
              (fun s (ok, acc) ->
                match s with
                | Value.Str s -> (ok, s :: acc)
                | _ -> (false, acc))
              supers (true, [])
          in
          if ok then Some (Advertise { cls; supers }) else None
      | "sub", [ Value.Int sid; Value.Str param; filter ] ->
          Some (Sub { sid; param; filter })
      | "unsub", [ Value.Int sid ] -> Some (Unsub { sid })
      | "pub", [ Value.Int pseq; Value.Str cls; Value.Str envelope ] ->
          Some (Pub { pseq; cls; envelope })
      | "ack", [ Value.Int pseq ] -> Some (Pub_ack { pseq })
      | ( "dlv",
          [ Value.Str origin; Value.Int pseq; Value.Str cls;
            Value.Str envelope ] ) ->
          Some (Deliver { origin; pseq; cls; envelope })
      | "credit", [ Value.Int n ] -> Some (Credit { n })
      | "bye", [] -> Some Bye
      | _ -> None)
  | _ -> None

let encode m = Codec.encode (to_value m)

let decode s =
  match Codec.decode s with
  | v -> of_value v
  | exception Codec.Decode_error _ -> None

let tag = function
  | Hello _ -> "hello"
  | Welcome _ -> "welcome"
  | Advertise _ -> "adv"
  | Sub _ -> "sub"
  | Unsub _ -> "unsub"
  | Pub _ -> "pub"
  | Pub_ack _ -> "ack"
  | Deliver _ -> "dlv"
  | Credit _ -> "credit"
  | Bye -> "bye"
