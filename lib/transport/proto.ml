module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec
module Wire = Tpbs_serial.Wire
module Trace = Tpbs_trace.Trace

(* The broker protocol. One message per frame, encoded as an ordinary
   [Value] through [Codec] — the transport speaks the same wire
   dialect as everything else in the system, so a protocol trace can
   be decoded with the stock tools.

   Flow control is credit-based in both directions and counted in
   messages, not bytes (envelopes are small and near-uniform):

   - the broker grants the client [window] publish credits in
     [Welcome] and replenishes with [Credit] as it drains its delivery
     queues; a client with no credit queues locally, so broker-side
     queue depth is bounded by the sum of granted windows;
   - the client grants the broker delivery credits in [Hello] and
     replenishes with [Credit] as its application consumes.

   Exactly-once across broker restarts is the classic pairing:
   publishers retransmit every unacknowledged [Pub] after reconnecting
   (acks are cumulative), and subscribers drop any [Deliver] whose
   per-origin sequence is not strictly increasing. *)

type msg =
  | Hello of { client : string; window : int }
  | Welcome of { window : int }
  | Advertise of { cls : string; supers : string list }
  | Sub of { sid : int; param : string; filter : Value.t }
  | Unsub of { sid : int }
  | Pub of { pseq : int; cls : string; envelope : string }
  | Pub_ack of { pseq : int }
  | Deliver of { origin : string; pseq : int; cls : string; envelope : string }
  | Credit of { n : int }
  | Bye

let to_value = function
  | Hello { client; window } ->
      Value.(List [ Str "hello"; Str client; Int window ])
  | Welcome { window } -> Value.(List [ Str "welcome"; Int window ])
  | Advertise { cls; supers } ->
      Value.(
        List [ Str "adv"; Str cls; List (List.map (fun s -> Str s) supers) ])
  | Sub { sid; param; filter } ->
      Value.(List [ Str "sub"; Int sid; Str param; filter ])
  | Unsub { sid } -> Value.(List [ Str "unsub"; Int sid ])
  | Pub { pseq; cls; envelope } ->
      Value.(List [ Str "pub"; Int pseq; Str cls; Str envelope ])
  | Pub_ack { pseq } -> Value.(List [ Str "ack"; Int pseq ])
  | Deliver { origin; pseq; cls; envelope } ->
      Value.(
        List [ Str "dlv"; Str origin; Int pseq; Str cls; Str envelope ])
  | Credit { n } -> Value.(List [ Str "credit"; Int n ])
  | Bye -> Value.(List [ Str "bye" ])

let of_value v =
  match v with
  | Value.List (Value.Str tag :: rest) -> (
      match (tag, rest) with
      | "hello", [ Value.Str client; Value.Int window ] ->
          Some (Hello { client; window })
      | "welcome", [ Value.Int window ] -> Some (Welcome { window })
      | "adv", [ Value.Str cls; Value.List supers ] ->
          let ok, supers =
            List.fold_right
              (fun s (ok, acc) ->
                match s with
                | Value.Str s -> (ok, s :: acc)
                | _ -> (false, acc))
              supers (true, [])
          in
          if ok then Some (Advertise { cls; supers }) else None
      | "sub", [ Value.Int sid; Value.Str param; filter ] ->
          Some (Sub { sid; param; filter })
      | "unsub", [ Value.Int sid ] -> Some (Unsub { sid })
      | "pub", [ Value.Int pseq; Value.Str cls; Value.Str envelope ] ->
          Some (Pub { pseq; cls; envelope })
      | "ack", [ Value.Int pseq ] -> Some (Pub_ack { pseq })
      | ( "dlv",
          [ Value.Str origin; Value.Int pseq; Value.Str cls;
            Value.Str envelope ] ) ->
          Some (Deliver { origin; pseq; cls; envelope })
      | "credit", [ Value.Int n ] -> Some (Credit { n })
      | "bye", [] -> Some Bye
      | _ -> None)
  | _ -> None

(* Ambient-registry counters, re-resolved when the ambient trace
   registry is swapped (benches and tests do this between runs).
   [transport.deliver_encodes] counts every full Deliver encode — the
   quantity the encode-once fan-out makes independent of subscriber
   count — and [transport.payload_copies] counts each time a payload
   slice is materialized into a fresh string. *)
let cached = ref None

let counters () =
  let tr = Trace.ambient () in
  match !cached with
  | Some (tr', cs) when tr' == tr -> cs
  | Some _ | None ->
      let cs =
        ( Trace.counter tr "transport.deliver_encodes",
          Trace.counter tr "transport.payload_copies" )
      in
      cached := Some (tr, cs);
      cs

let count_deliver_encode () = Trace.Counter.incr (fst (counters ()))
let count_payload_copy () = Trace.Counter.incr (snd (counters ()))

let encode m =
  (match m with Deliver _ -> count_deliver_encode () | _ -> ());
  Codec.encode (to_value m)

let decode s =
  match Codec.decode s with
  | v -> of_value v
  | exception Codec.Decode_error _ -> None

(* --- zero-copy payload views ----------------------------------------- *)

type slice = { sl_buf : string; sl_off : int; sl_len : int }

let slice_of_string s = { sl_buf = s; sl_off = 0; sl_len = String.length s }

let slice_to_string sl =
  if sl.sl_off = 0 && sl.sl_len = String.length sl.sl_buf then sl.sl_buf
  else begin
    count_payload_copy ();
    String.sub sl.sl_buf sl.sl_off sl.sl_len
  end

(* Encode + frame + CRC a Deliver exactly once, around the envelope
   slice, producing bytes identical to
   [Frame.frame (encode (Deliver {origin; pseq; cls; envelope}))] —
   the Deliver wire shape carries no per-session field, so one
   preframed string serves every subscriber. *)
let encode_deliver ~origin ~pseq ~cls (envelope : slice) =
  count_deliver_encode ();
  let w = Wire.Writer.create ~capacity:(envelope.sl_len + 64) () in
  Codec.encode_list_header w 5;
  Codec.encode_into w (Value.Str "dlv");
  Codec.encode_into w (Value.Str origin);
  Codec.encode_into w (Value.Int pseq);
  Codec.encode_into w (Value.Str cls);
  Codec.encode_str_sub w envelope.sl_buf ~pos:envelope.sl_off
    ~len:envelope.sl_len;
  Frame.preframed (Wire.Writer.contents w)

type view =
  | V_pub of { pseq : int; cls : string; envelope : slice }
  | V_deliver of { origin : string; pseq : int; cls : string; envelope : slice }
  | V_msg of msg
  | V_none

(* Parse one payload slice in place. The hot shapes — Pub and Deliver,
   the only messages that carry an envelope — are taken apart
   piecewise so the envelope stays a view into [buf]; everything else
   goes through the ordinary full decode (control messages are tiny).
   Any structural surprise falls back to the full decode, whose answer
   is authoritative. *)
let decode_view buf ~off ~len =
  let fallback () =
    let r = Wire.Reader.of_substring buf ~off ~len in
    match Codec.decode_prefix r with
    | v -> (
        if not (Wire.Reader.at_end r) then V_none
        else match of_value v with Some m -> V_msg m | None -> V_none)
    | exception Codec.Decode_error _ -> V_none
  in
  let r = Wire.Reader.of_substring buf ~off ~len in
  let str_field r =
    match Codec.str_pos r with
    | Some (pos, len) -> Some (String.sub buf pos len)
    | None -> None
  in
  match
    (try
       match Codec.list_header r with
       | Some arity when arity >= 1 -> (
           match str_field r with
           | Some tag -> Some (tag, arity)
           | None -> None)
       | _ -> None
     with
    | Wire.Truncated _ | Wire.Malformed _ | Codec.Decode_error _ -> None)
  with
  | Some ("pub", 4) -> (
      match
        (try
           match Codec.int_prefix r with
           | None -> None
           | Some pseq -> (
               match str_field r with
               | None -> None
               | Some cls -> (
                   match Codec.str_pos r with
                   | Some (ep, el) when Wire.Reader.at_end r ->
                       Some
                         (V_pub
                            {
                              pseq;
                              cls;
                              envelope =
                                { sl_buf = buf; sl_off = ep; sl_len = el };
                            })
                   | _ -> None))
         with
        | Wire.Truncated _ | Wire.Malformed _ | Codec.Decode_error _ -> None)
      with
      | Some v -> v
      | None -> fallback ())
  | Some ("dlv", 5) -> (
      match
        (try
           match str_field r with
           | None -> None
           | Some origin -> (
               match Codec.int_prefix r with
               | None -> None
               | Some pseq -> (
                   match str_field r with
                   | None -> None
                   | Some cls -> (
                       match Codec.str_pos r with
                       | Some (ep, el) when Wire.Reader.at_end r ->
                           Some
                             (V_deliver
                                {
                                  origin;
                                  pseq;
                                  cls;
                                  envelope =
                                    { sl_buf = buf; sl_off = ep; sl_len = el };
                                })
                       | _ -> None)))
         with
        | Wire.Truncated _ | Wire.Malformed _ | Codec.Decode_error _ -> None)
      with
      | Some v -> v
      | None -> fallback ())
  | _ -> fallback ()

let tag = function
  | Hello _ -> "hello"
  | Welcome _ -> "welcome"
  | Advertise _ -> "adv"
  | Sub _ -> "sub"
  | Unsub _ -> "unsub"
  | Pub _ -> "pub"
  | Pub_ack _ -> "ack"
  | Deliver _ -> "dlv"
  | Credit _ -> "credit"
  | Bye -> "bye"
