module Pubsub = Tpbs_core.Pubsub
module Registry = Tpbs_types.Registry
module Value = Tpbs_serial.Value
module Trace = Tpbs_trace.Trace

(* The client side of the TCP transport: dials tpbsd, speaks the
   {!Proto} protocol over framed non-blocking I/O, and exposes a
   {!Pubsub.Remote} endpoint so an unmodified [Pubsub.Domain] joins
   the remote broker — every channel bottoms out here instead of in
   the simulated net.

   The exactly-once half owned by this side:

   - publishes get a contiguous per-client sequence and are held in
     [unacked] until the broker's cumulative ack covers them; after a
     reconnect, everything unacked is retransmitted (the broker either
     never saw it, or re-acks it as a duplicate);
   - deliveries carry (origin, pseq); anything not strictly above the
     per-origin frontier is a duplicate from a pre-restart life and is
     dropped, counted by [transport.dup_drops].

   Flow control mirrors the broker: publishes spend broker-granted
   credits (queueing locally when the window is shut), and the client
   grants the broker a delivery window, replenished as the
   application consumes. *)

(* Exponential backoff with decorrelating jitter for reconnect loops.
   The schedule is a pure function of (policy, attempt, jitter draw)
   so the unit tests can pin it down without sockets or sleeping. *)
module Backoff = struct
  type policy = {
    base_ms : int;  (* delay before the first retry *)
    factor : float;  (* growth per attempt *)
    max_delay_ms : int;  (* exponential growth is capped here *)
    jitter : float;  (* +/- fraction of the capped delay *)
    max_retries : int;  (* attempts before giving up *)
  }

  let default =
    {
      base_ms = 100;
      factor = 2.0;
      max_delay_ms = 10_000;
      jitter = 0.2;
      max_retries = 8;
    }

  (* Delay before retry [attempt] (0-based). [u] is a uniform draw in
     [0, 1): the jittered delay spans [(1 - jitter) * d, (1 + jitter)
     * d], keeping a fleet of clients that died together from
     re-dialing in lockstep. Never below 0. *)
  let delay_ms p ~attempt ~u =
    let d =
      float_of_int p.base_ms *. (p.factor ** float_of_int (max 0 attempt))
    in
    let d = Float.min d (float_of_int p.max_delay_ms) in
    let spread = (2.0 *. u -. 1.0) *. p.jitter *. d in
    max 0 (int_of_float (d +. spread))
end

type sub = { sb_sid : int; sb_param : string; sb_filter : Value.t }

type t = {
  host : string;
  tcp_port : int;
  id : string;
  window : int;  (* delivery credits we grant the broker *)
  max_frame : int;
  mutable conn : Conn.t option;
  mutable pub_credit : int;
  mutable next_pseq : int;
  sendq : (int * string * string) Queue.t;  (* pseq, cls, envelope *)
  unacked : (int * string * string) Queue.t;
  mutable subs : sub list;  (* replayed on reconnect, newest first *)
  advertised : (string, unit) Hashtbl.t;  (* this connection only *)
  frontier : (string, int) Hashtbl.t;  (* origin → highest pseq seen *)
  mutable consumed : int;  (* deliveries since the last credit grant *)
  mutable registry : Registry.t option;
  mutable inject : (cls:string -> string -> unit) option;
  (* auto-reconnect ([None] = caller-driven) *)
  rc_policy : Backoff.policy option;
  mutable rc_attempt : int;  (* dials since the connection dropped *)
  mutable rc_next_at : float;  (* wall clock of the next allowed dial *)
  rc_rand : unit -> float;
  rc_timeout_ms : int;  (* handshake budget for automatic dials *)
  mutable user_closed : bool;  (* {!close} called: stop auto-dialing *)
  (* observability *)
  c_pubs : Trace.Counter.t;
  c_acked : Trace.Counter.t;
  c_delivered : Trace.Counter.t;
  c_dup_drops : Trace.Counter.t;
  c_retransmits : Trace.Counter.t;
  c_reconnects : Trace.Counter.t;
  c_backoff_waits : Trace.Counter.t;
  g_sendq : Trace.Gauge.t;
  g_unacked : Trace.Gauge.t;
  g_window : Trace.Gauge.t;
}

let connected t = t.conn <> None

let gauges t =
  Trace.Gauge.set t.g_sendq (Queue.length t.sendq);
  Trace.Gauge.set t.g_unacked (Queue.length t.unacked);
  Trace.Gauge.set t.g_window t.pub_credit

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some c ->
      Conn.close c;
      t.conn <- None;
      t.pub_credit <- 0;
      Hashtbl.reset t.advertised;
      (* a fresh disconnect re-arms the backoff schedule: the first
         automatic dial may happen immediately *)
      t.rc_attempt <- 0;
      t.rc_next_at <- 0.0

(* Advertise [cls] and (first) its supertype chain, so the broker can
   insert it into its lattice — supers-first is the topological order
   Advertise requires. Only once per connection per class. *)
let ensure_advertised t conn cls =
  let rec visit name =
    if not (Hashtbl.mem t.advertised name) then begin
      Hashtbl.replace t.advertised name ();
      let supers =
        match t.registry with
        | None -> []
        | Some reg -> (
            match Registry.find reg name with
            | decl -> decl.Registry.supers
            | exception _ -> [])
      in
      List.iter visit supers;
      Conn.send conn (Proto.Advertise { cls = name; supers })
    end
  in
  visit cls

let pump_send t =
  match t.conn with
  | None -> ()
  | Some conn ->
      while t.pub_credit > 0 && not (Queue.is_empty t.sendq) do
        let pseq, cls, envelope = Queue.pop t.sendq in
        ensure_advertised t conn cls;
        Conn.send conn (Proto.Pub { pseq; cls; envelope });
        Trace.Counter.incr t.c_pubs;
        Queue.push (pseq, cls, envelope) t.unacked;
        t.pub_credit <- t.pub_credit - 1
      done;
      gauges t

let on_ack t pseq =
  let continue = ref true in
  while !continue && not (Queue.is_empty t.unacked) do
    let p, _, _ = Queue.peek t.unacked in
    if p <= pseq then begin
      ignore (Queue.pop t.unacked);
      Trace.Counter.incr t.c_acked
    end
    else continue := false
  done

(* [envelope] is a view into the frame decoder's buffer, valid for
   this call only — long enough: the dedup/frontier check runs over
   the view, so a duplicate from a pre-restart broker life is dropped
   without copying a byte, and only a fresh delivery pays the one
   materializing copy on its way into the application. *)
let on_deliver t ~origin ~pseq ~cls ~(envelope : Proto.slice) =
  let seen =
    match Hashtbl.find_opt t.frontier origin with
    | Some f -> pseq <= f
    | None -> false
  in
  if seen then Trace.Counter.incr t.c_dup_drops
  else begin
    Hashtbl.replace t.frontier origin pseq;
    Trace.Counter.incr t.c_delivered;
    (match t.inject with
    | Some inject -> inject ~cls (Proto.slice_to_string envelope)
    | None -> ());
    t.consumed <- t.consumed + 1;
    if t.consumed >= max 1 (t.window / 2) then begin
      (match t.conn with
      | Some conn -> Conn.send conn (Proto.Credit { n = t.consumed })
      | None -> ());
      t.consumed <- 0
    end
  end

let on_msg t (m : Proto.msg) =
  match m with
  | Proto.Welcome { window } -> t.pub_credit <- window
  | Proto.Pub_ack { pseq } -> on_ack t pseq
  | Proto.Credit { n } -> t.pub_credit <- t.pub_credit + n
  | Proto.Deliver { origin; pseq; cls; envelope } ->
      on_deliver t ~origin ~pseq ~cls ~envelope:(Proto.slice_of_string envelope)
  | Proto.Bye -> drop_conn t
  | Proto.Hello _ | Proto.Advertise _ | Proto.Sub _ | Proto.Unsub _
  | Proto.Pub _ ->
      ()

let drain_incoming t conn =
  let continue = ref true in
  while !continue do
    match Conn.pop_view conn with
    | Conn.View (Proto.V_deliver { origin; pseq; cls; envelope }) ->
        (* the hot message, decoded in place over the decoder buffer:
           no recv happens before on_deliver returns, so the envelope
           view stays valid throughout *)
        on_deliver t ~origin ~pseq ~cls ~envelope;
        if t.conn == None then continue := false
    | Conn.View (Proto.V_pub _) -> ()  (* brokers do not publish to us *)
    | Conn.View (Proto.V_msg m) ->
        on_msg t m;
        if t.conn == None then continue := false
    | Conn.View Proto.V_none ->
        (* pop_view reports undecodable frames as View_bad *)
        assert false
    | Conn.View_nothing -> continue := false
    | Conn.View_bad _ ->
        drop_conn t;
        continue := false
  done

(* --- dialing ----------------------------------------------------------- *)

let handshake t conn ~timeout_ms =
  Conn.send conn (Proto.Hello { client = t.id; window = t.window });
  ignore (Conn.flush conn);
  let deadline = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.) in
  let ok = ref None in
  while !ok = None && Unix.gettimeofday () < deadline do
    (match Unix.select [ Conn.fd conn ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ -> (
        match Conn.recv conn with
        | `Ok -> (
            match Conn.pop conn with
            | Conn.Msg (Proto.Welcome { window }) ->
                t.pub_credit <- window;
                ok := Some true
            | Conn.Msg _ | Conn.Nothing -> ()
            | Conn.Bad _ -> ok := Some false)
        | `Blocked -> ()
        | `Closed _ -> ok := Some false)
    | exception Unix.Unix_error (EINTR, _, _) -> ());
    ignore (Conn.flush conn)
  done;
  !ok = Some true

let dial t ~timeout_ms =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  match
    Unix.connect fd
      (ADDR_INET (Unix.inet_addr_of_string t.host, t.tcp_port))
  with
  | () ->
      let conn = Conn.create ~max_frame:t.max_frame fd in
      if handshake t conn ~timeout_ms then begin
        t.conn <- Some conn;
        true
      end
      else begin
        Conn.close conn;
        false
      end
  | exception Unix.Unix_error (_, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      false

(* Re-establish state on a fresh connection: subscriptions first (so
   nothing routed to us is missed), then retransmit everything the
   dead broker never acknowledged, in order, ahead of new sends. *)
let resync t =
  match t.conn with
  | None -> ()
  | Some conn ->
      List.iter
        (fun sb ->
          ensure_advertised t conn sb.sb_param;
          Conn.send conn
            (Proto.Sub
               { sid = sb.sb_sid; param = sb.sb_param; filter = sb.sb_filter }))
        (List.rev t.subs);
      let retransmit = Queue.length t.unacked in
      if retransmit > 0 then begin
        Trace.Counter.add t.c_retransmits retransmit;
        (* unacked (oldest first) go back to the head of the send
           queue, before anything queued while disconnected *)
        Queue.transfer t.sendq t.unacked;
        Queue.transfer t.unacked t.sendq
      end;
      pump_send t;
      ignore (Conn.flush conn)

let reconnect ?(timeout_ms = 2000) t =
  t.user_closed <- false;
  drop_conn t;
  if dial t ~timeout_ms then begin
    Trace.Counter.incr t.c_reconnects;
    resync t;
    true
  end
  else false

(* One scheduled re-dial, driven from {!poll} while disconnected. The
   first attempt after a drop is immediate ([drop_conn] zeroes the
   schedule); each failure books the next attempt one jittered
   exponential step later, until the retry budget runs out — after
   which only an explicit {!reconnect} re-arms the client. *)
let auto_dial t ~timeout_ms =
  match t.rc_policy with
  | None -> ()
  | Some p when t.user_closed || t.rc_attempt > p.Backoff.max_retries -> ()
  | Some p ->
      let now = Unix.gettimeofday () in
      let now =
        if now < t.rc_next_at then begin
          (* not due yet: wait it out, but never past the caller's
             poll budget — a pump loop keeps its cadence while
             disconnected instead of busy-spinning *)
          let budget = float_of_int (max 0 timeout_ms) /. 1000. in
          let wait = Float.min (t.rc_next_at -. now) budget in
          if wait > 0. then Unix.sleepf wait;
          Unix.gettimeofday ()
        end
        else now
      in
      if now >= t.rc_next_at then begin
        let n = t.rc_attempt in
        (* on success [reconnect]'s drop_conn has already re-armed the
           schedule for the next disconnect *)
        if not (reconnect ~timeout_ms:t.rc_timeout_ms t) then begin
          if n < p.Backoff.max_retries then begin
            Trace.Counter.incr t.c_backoff_waits;
            let d = Backoff.delay_ms p ~attempt:n ~u:(t.rc_rand ()) in
            t.rc_next_at <-
              Unix.gettimeofday () +. (float_of_int d /. 1000.)
          end;
          t.rc_attempt <- n + 1
        end
      end

(* One I/O turn. Returns [true] while the connection is up. While it
   is down and the client carries a backoff policy (the default),
   poll itself drives the re-dials on the jittered exponential
   schedule — callers just keep polling. *)
let poll t ~timeout_ms =
  (match t.conn with None -> auto_dial t ~timeout_ms | Some _ -> ());
  match t.conn with
  | None -> false
  | Some conn -> (
      let rds = [ Conn.fd conn ] in
      let wrs = if Conn.pending_bytes conn > 0 then rds else [] in
      let timeout = float_of_int timeout_ms /. 1000. in
      (match Unix.select rds wrs [] timeout with
      | rd, _, _ ->
          if rd <> [] then begin
            match Conn.recv conn with
            | `Ok -> drain_incoming t conn
            | `Blocked -> ()
            | `Closed _ -> drop_conn t
          end
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      match t.conn with
      | None -> false
      | Some conn -> (
          pump_send t;
          match Conn.flush conn with
          | `Ok | `Blocked -> true
          | `Closed _ ->
              drop_conn t;
              false))

(* Keep re-dialing under the backoff schedule until the broker is back
   or the policy's retry budget runs out. [sleep] and [rand] default
   to the real clock and a self-seeded PRNG; tests inject both. Each
   wait is counted by [transport.backoff_waits]. *)
let reconnect_with_backoff ?(policy = Backoff.default) ?sleep ?rand
    ?(timeout_ms = 2000) t =
  let sleep =
    match sleep with
    | Some f -> f
    | None -> fun ms -> Unix.sleepf (float_of_int ms /. 1000.)
  in
  let rand =
    match rand with
    | Some f -> f
    | None ->
        let state = Random.State.make_self_init () in
        fun () -> Random.State.float state 1.0
  in
  let rec attempt n =
    if n > policy.Backoff.max_retries then false
    else if reconnect ~timeout_ms t then true
    else if n = policy.Backoff.max_retries then false
    else begin
      Trace.Counter.incr t.c_backoff_waits;
      sleep (Backoff.delay_ms policy ~attempt:n ~u:(rand ()));
      attempt (n + 1)
    end
  in
  attempt 0

let connect ?(window = 64) ?(max_frame = Frame.default_max_frame)
    ?(timeout_ms = 2000) ?(reconnect = `Backoff Backoff.default) ~host ~port
    ~id () =
  let tr = Trace.ambient () in
  let t =
    {
      host;
      tcp_port = port;
      id;
      window;
      max_frame;
      conn = None;
      pub_credit = 0;
      next_pseq = 0;
      sendq = Queue.create ();
      unacked = Queue.create ();
      subs = [];
      advertised = Hashtbl.create 16;
      frontier = Hashtbl.create 16;
      consumed = 0;
      registry = None;
      inject = None;
      rc_policy =
        (match reconnect with `Backoff p -> Some p | `Manual -> None);
      rc_attempt = 0;
      rc_next_at = 0.0;
      rc_rand =
        (let state = Random.State.make_self_init () in
         fun () -> Random.State.float state 1.0);
      rc_timeout_ms = timeout_ms;
      user_closed = false;
      c_pubs = Trace.counter tr "transport.client_pubs";
      c_acked = Trace.counter tr "transport.client_acked";
      c_delivered = Trace.counter tr "transport.delivered";
      c_dup_drops = Trace.counter tr "transport.dup_drops";
      c_retransmits = Trace.counter tr "transport.retransmits";
      c_reconnects = Trace.counter tr "transport.reconnects";
      c_backoff_waits = Trace.counter tr "transport.backoff_waits";
      g_sendq = Trace.gauge tr "transport.sendq";
      g_unacked = Trace.gauge tr "transport.unacked";
      g_window = Trace.gauge tr "transport.window";
    }
  in
  if dial t ~timeout_ms then Some t else None

(* --- the Pubsub.Remote endpoint ----------------------------------------- *)

let publish t ~cls envelope =
  let pseq = t.next_pseq in
  t.next_pseq <- t.next_pseq + 1;
  Queue.push (pseq, cls, envelope) t.sendq;
  pump_send t

let subscribe t ~sid ~param ~filter =
  t.subs <- { sb_sid = sid; sb_param = param; sb_filter = filter } :: t.subs;
  match t.conn with
  | None -> ()
  | Some conn ->
      ensure_advertised t conn param;
      Conn.send conn (Proto.Sub { sid; param; filter })

let unsubscribe t ~sid =
  t.subs <- List.filter (fun sb -> sb.sb_sid <> sid) t.subs;
  match t.conn with
  | None -> ()
  | Some conn -> Conn.send conn (Proto.Unsub { sid })

let endpoint t =
  {
    Pubsub.Remote.r_publish = (fun ~cls envelope -> publish t ~cls envelope);
    r_subscribe =
      (fun ~sid ~param ~filter -> subscribe t ~sid ~param ~filter);
    r_unsubscribe = (fun ~sid -> unsubscribe t ~sid);
  }

let attach t d p =
  t.registry <- Some (Pubsub.Domain.registry d);
  t.inject <- Some (Pubsub.Remote.connect d p (endpoint t))

let unacked_count t = Queue.length t.unacked
let queued_count t = Queue.length t.sendq + Queue.length t.unacked

let close t =
  t.user_closed <- true;
  (match t.conn with
  | Some conn ->
      Conn.send conn Proto.Bye;
      ignore (Conn.flush conn)
  | None -> ());
  drop_conn t
