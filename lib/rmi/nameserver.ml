module Value = Tpbs_serial.Value

type t = { reference : Value.t; bindings : (string, Value.t) Hashtbl.t }

let host runtime =
  let bindings = Hashtbl.create 16 in
  let handler ~meth ~args : Value.t =
    match meth, (args : Value.t list) with
    | "bind", [ Str name; reference ] ->
        if Hashtbl.mem bindings name then
          raise (Rmi.App_error ("already bound: " ^ name));
        Hashtbl.replace bindings name reference;
        Null
    | "lookup", [ Str name ] -> (
        match Hashtbl.find_opt bindings name with
        | Some reference -> reference
        | None -> raise (Rmi.App_error ("not bound: " ^ name)))
    | "unbind", [ Str name ] ->
        Hashtbl.remove bindings name;
        Null
    | _ -> raise (Rmi.App_error ("no such method: " ^ meth))
  in
  { reference = Rmi.export runtime ~iface:"RmiRegistry" handler; bindings }

let reference t = t.reference

let bind runtime ~registry ~name reference ~k =
  Rmi.invoke runtime registry ~meth:"bind" ~args:[ Str name; reference ]
    ~k:(fun result ->
      match result with Ok _ -> k (Ok ()) | Error e -> k (Error e))

let lookup runtime ~registry ~name ~k =
  Rmi.invoke runtime registry ~meth:"lookup" ~args:[ Str name ] ~k
