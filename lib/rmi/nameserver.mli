(** A name service for bootstrap lookups, in the role of the RMI
    registry: well-known node, string names bound to remote
    references. Implemented as an ordinary exported object, so lookups
    and bindings are themselves remote invocations. *)

type t

val host : Rmi.runtime -> t
(** Export the registry object on this runtime's node. *)

val reference : t -> Tpbs_serial.Value.t
(** The registry's own remote reference (to hand to clients
    out-of-band, like the host:port every RMI client knows). *)

val bind :
  Rmi.runtime ->
  registry:Tpbs_serial.Value.t ->
  name:string ->
  Tpbs_serial.Value.t ->
  k:((unit, Rmi.error) result -> unit) ->
  unit
(** Bind a name remotely. Rebinding an existing name fails with
    [Remote_exception]. *)

val lookup :
  Rmi.runtime ->
  registry:Tpbs_serial.Value.t ->
  name:string ->
  k:((Tpbs_serial.Value.t, Rmi.error) result -> unit) ->
  unit
(** Look a name up remotely; unknown names fail with
    [Remote_exception]. *)
