module Net = Tpbs_sim.Net
module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec
module Trace = Tpbs_trace.Trace

type dgc_mode = Strict | Lease of int

type error = Timeout | Unknown_object | Remote_exception of string | Bad_reply

exception App_error of string

let pp_error ppf = function
  | Timeout -> Fmt.string ppf "timeout"
  | Unknown_object -> Fmt.string ppf "unknown object"
  | Remote_exception msg -> Fmt.pf ppf "remote exception: %s" msg
  | Bad_reply -> Fmt.string ppf "bad reply"

type exported = {
  iface : string;
  handler : meth:string -> args:Value.t list -> Value.t;
  holders : (Net.node_id, Tpbs_sim.Engine.time) Hashtbl.t;
      (* proxy holder -> last lease renewal (0 under Strict) *)
}

type runtime = {
  net : Net.t;
  me : Net.node_id;
  dgc : dgc_mode;
  call_timeout : int;
  exported : (int, exported) Hashtbl.t;
  mutable next_oid : int;
  mutable next_req : int;
  pending : (int, (Value.t, error) result -> unit) Hashtbl.t;
  proxies : (Net.node_id * int, int) Hashtbl.t;
      (* references we hold -> adoption epoch. A renew loop only
         survives while the table still maps its key to the epoch it
         was started under, so release + re-adopt retires the old loop
         instead of leaking it alongside the new one. *)
  mutable proxy_epoch : int;
  mutable renew_loops : int;  (* live renew timers, for the leak test *)
  c_calls : Trace.Counter.t;
  c_timeouts : Trace.Counter.t;
  c_renews : Trace.Counter.t;
  g_pinned : Trace.Gauge.t;
}

let req_port = "rmi:req"
let rsp_port = "rmi:rsp"
let dgc_port = "rmi:dgc"

let me t = t.me
let now t = Tpbs_sim.Engine.now (Net.engine t.net)

(* --- host side: requests ------------------------------------------- *)

let reply t ~dst ~req_id body =
  Net.send t.net ~src:t.me ~dst ~port:rsp_port
    (Codec.encode (List (Int req_id :: body)))

let on_request t src bytes =
  match Codec.decode bytes with
  | List [ Int req_id; Int oid; Str meth; List args ] -> (
      match Hashtbl.find_opt t.exported oid with
      | None -> reply t ~dst:src ~req_id [ Str "unknown" ]
      | Some obj -> (
          match obj.handler ~meth ~args with
          | result -> reply t ~dst:src ~req_id [ Str "ok"; result ]
          | exception App_error msg ->
              reply t ~dst:src ~req_id [ Str "err"; Str msg ]))
  | _ | (exception Codec.Decode_error _) -> ()

let on_response t _src bytes =
  match Codec.decode bytes with
  | List (Int req_id :: body) -> (
      match Hashtbl.find_opt t.pending req_id with
      | None -> () (* late reply after timeout *)
      | Some k ->
          Hashtbl.remove t.pending req_id;
          let result =
            match body with
            | [ Str "ok"; v ] -> Ok v
            | [ Str "err"; Str msg ] -> Error (Remote_exception msg)
            | [ Str "unknown" ] -> Error Unknown_object
            | _ -> Error Bad_reply
          in
          k result)
  | _ | (exception Codec.Decode_error _) -> ()

(* --- DGC messages ---------------------------------------------------- *)

let on_dgc t src bytes =
  match Codec.decode bytes with
  | List [ Str verb; Int oid ] -> (
      match Hashtbl.find_opt t.exported oid with
      | None -> ()
      | Some obj -> (
          match verb with
          | "ref" | "renew" -> Hashtbl.replace obj.holders src (now t)
          | "unref" -> Hashtbl.remove obj.holders src
          | _ -> ()))
  | _ | (exception Codec.Decode_error _) -> ()

let run_dgc t =
  Trace.Gauge.set t.g_pinned
    (Hashtbl.fold
       (fun _ obj acc -> if Hashtbl.length obj.holders > 0 then acc + 1 else acc)
       t.exported 0);
  match t.dgc with
  | Strict -> ()
  | Lease horizon ->
      let cutoff = now t - horizon in
      Hashtbl.iter
        (fun _ obj ->
          let stale =
            Hashtbl.fold
              (fun holder stamp acc ->
                if stamp < cutoff then holder :: acc else acc)
              obj.holders []
          in
          List.iter (Hashtbl.remove obj.holders) stale)
        t.exported

let rec arm_dgc_timer t period =
  Net.schedule_on t.net t.me ~delay:period (fun () ->
      run_dgc t;
      arm_dgc_timer t period)

let attach ?(dgc = Strict) ?(call_timeout = 50_000) net ~me =
  let tr = Trace.ambient () in
  let t =
    {
      net;
      me;
      dgc;
      call_timeout;
      exported = Hashtbl.create 16;
      next_oid = 0;
      next_req = 0;
      pending = Hashtbl.create 16;
      proxies = Hashtbl.create 16;
      proxy_epoch = 0;
      renew_loops = 0;
      c_calls = Trace.counter tr "rmi.calls";
      c_timeouts = Trace.counter tr "rmi.timeouts";
      c_renews = Trace.counter tr "rmi.renews";
      g_pinned = Trace.gauge tr "rmi.pinned";
    }
  in
  Net.set_handler net me ~port:req_port (fun src bytes -> on_request t src bytes);
  Net.set_handler net me ~port:rsp_port (fun src bytes -> on_response t src bytes);
  Net.set_handler net me ~port:dgc_port (fun src bytes -> on_dgc t src bytes);
  (match dgc with
  | Lease horizon -> arm_dgc_timer t (max 1 (horizon / 2))
  | Strict -> ());
  t

(* --- export ------------------------------------------------------------ *)

let export t ~iface handler =
  let oid = t.next_oid in
  t.next_oid <- oid + 1;
  Hashtbl.replace t.exported oid
    { iface; handler; holders = Hashtbl.create 8 };
  Value.Remote { iface; node_id = t.me; object_id = oid }

let as_remote = function
  | Value.Remote r -> Some r
  | Value.Null | Bool _ | Int _ | Float _ | Str _ | List _ | Obj _ -> None

let unexport t ref_value =
  match as_remote ref_value with
  | Some r when r.node_id = t.me -> Hashtbl.remove t.exported r.object_id
  | Some _ | None -> ()

(* --- invoke ------------------------------------------------------------- *)

let invoke t ref_value ~meth ~args ~k =
  match as_remote ref_value with
  | None -> k (Error Bad_reply)
  | Some r ->
      let req_id = t.next_req in
      t.next_req <- req_id + 1;
      Trace.Counter.incr t.c_calls;
      Hashtbl.replace t.pending req_id k;
      Net.send t.net ~src:t.me ~dst:r.node_id ~port:req_port
        (Codec.encode
           (List [ Int req_id; Int r.object_id; Str meth; List args ]));
      Net.schedule_on t.net t.me ~delay:t.call_timeout (fun () ->
          match Hashtbl.find_opt t.pending req_id with
          | None -> ()
          | Some k ->
              Hashtbl.remove t.pending req_id;
              Trace.Counter.incr t.c_timeouts;
              k (Error Timeout))

(* --- proxy registration -------------------------------------------------- *)

let send_dgc t ~dst verb oid =
  Net.send t.net ~src:t.me ~dst ~port:dgc_port
    (Codec.encode (List [ Str verb; Int oid ]))

let rec renew_loop t (r : Value.remote) period ~epoch =
  Net.schedule_on t.net t.me ~delay:period (fun () ->
      (* Only the loop whose epoch still owns the key keeps running;
         a stale loop from before a release/re-adopt cycle dies here. *)
      if Hashtbl.find_opt t.proxies (r.node_id, r.object_id) = Some epoch
      then begin
        send_dgc t ~dst:r.node_id "renew" r.object_id;
        Trace.Counter.incr t.c_renews;
        renew_loop t r period ~epoch
      end
      else t.renew_loops <- t.renew_loops - 1)

let adopt_proxy t ref_value =
  match as_remote ref_value with
  | None -> ()
  | Some r ->
      let key = r.node_id, r.object_id in
      if not (Hashtbl.mem t.proxies key) then begin
        t.proxy_epoch <- t.proxy_epoch + 1;
        let epoch = t.proxy_epoch in
        Hashtbl.replace t.proxies key epoch;
        send_dgc t ~dst:r.node_id "ref" r.object_id;
        match t.dgc with
        | Lease horizon ->
            t.renew_loops <- t.renew_loops + 1;
            renew_loop t r (max 1 (horizon / 2)) ~epoch
        | Strict -> ()
      end

let release_proxy t ref_value =
  match as_remote ref_value with
  | None -> ()
  | Some r ->
      let key = r.node_id, r.object_id in
      if Hashtbl.mem t.proxies key then begin
        Hashtbl.remove t.proxies key;
        send_dgc t ~dst:r.node_id "unref" r.object_id
      end

(* --- host-side accounting -------------------------------------------------- *)

let pinned t =
  Hashtbl.fold
    (fun _ obj acc -> if Hashtbl.length obj.holders > 0 then acc + 1 else acc)
    t.exported 0

let collectable t =
  Hashtbl.fold
    (fun _ obj acc -> if Hashtbl.length obj.holders = 0 then acc + 1 else acc)
    t.exported 0

let holder_count t =
  Hashtbl.fold (fun _ obj acc -> acc + Hashtbl.length obj.holders) t.exported 0

let exported_count t = Hashtbl.length t.exported
let renew_loops t = t.renew_loops
