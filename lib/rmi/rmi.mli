(** Mini-RMI: remote method invocation over the simulated network —
    the synchronous complement the paper combines with
    publish/subscribe (§5.4 "Hand in Hand": obvents carry references
    to remote objects; subscribers invoke them).

    Bound objects (§2.1.1) are exported from their address space and
    never leave it; what travels is a {!Tpbs_serial.Value.Remote}
    reference. Deserializing such a reference creates a {e proxy},
    which participates in distributed garbage collection:

    - [Strict] DGC is Java-RMI-like reference counting: the object is
      collectable only when every proxy has been explicitly released.
      A crashed proxy holder therefore pins the object forever — the
      caveat of §5.4.2, reproduced by experiment E8.
    - [Lease n] is the "weaker RMI" of [CNH99]: proxies renew a lease
      every [n/2] ticks; the host expires silent proxies after [n],
      so a crashed subscriber's reference eventually dies. *)

type runtime
(** Per-address-space RMI state. *)

type dgc_mode = Strict | Lease of int

type error =
  | Timeout
  | Unknown_object
  | Remote_exception of string
  | Bad_reply

exception App_error of string
(** Raised by an exported object's handler to signal an
    application-level failure to the caller. *)

val pp_error : Format.formatter -> error -> unit

val attach :
  ?dgc:dgc_mode ->
  ?call_timeout:int ->
  Tpbs_sim.Net.t ->
  me:Tpbs_sim.Net.node_id ->
  runtime
(** Install the RMI endpoint on a node. [call_timeout] defaults to
    50000 ticks; [dgc] to [Strict]. *)

val me : runtime -> Tpbs_sim.Net.node_id

val export :
  runtime ->
  iface:string ->
  (meth:string -> args:Tpbs_serial.Value.t list -> Tpbs_serial.Value.t) ->
  Tpbs_serial.Value.t
(** Export a bound object; returns the [Remote] reference value to
    embed in obvents or bind in the {!Nameserver}. The handler runs in
    the hosting address space; raising {!App_error} propagates to the
    caller as [Remote_exception]. *)

val unexport : runtime -> Tpbs_serial.Value.t -> unit
(** Withdraw an exported object (subsequent calls fail with
    [Unknown_object]). *)

val invoke :
  runtime ->
  Tpbs_serial.Value.t ->
  meth:string ->
  args:Tpbs_serial.Value.t list ->
  k:((Tpbs_serial.Value.t, error) result -> unit) ->
  unit
(** Asynchronous remote call; [k] fires exactly once, with [Timeout]
    if no reply arrives in time. The reference must be a [Remote]
    value (otherwise [k (Error Bad_reply)] immediately). *)

(** {1 Distributed garbage collection} *)

val adopt_proxy : runtime -> Tpbs_serial.Value.t -> unit
(** Declare that this address space now holds a proxy for the
    reference (deserialization of an obvent containing it does this,
    via the engine). Registers with the host's DGC; under [Lease],
    starts renewing. Idempotent per (runtime, reference). *)

val release_proxy : runtime -> Tpbs_serial.Value.t -> unit
(** Drop the proxy: decrement the host-side count / stop renewing. *)

val renew_loops : runtime -> int
(** Client side: live lease-renewal timers. Stays at the number of
    currently adopted proxies (each release/re-adopt cycle retires the
    old loop at its next tick rather than leaking it). *)

val pinned : runtime -> int
(** Host side: number of exported objects with at least one live
    remote reference (these cannot be collected). *)

val collectable : runtime -> int
(** Host side: exported objects whose reference count has dropped to
    zero (a local GC could reclaim them). *)

val run_dgc : runtime -> unit
(** Host side: expire stale leases now (no-op under [Strict]). Called
    automatically on a timer under [Lease]. *)

val holder_count : runtime -> int
(** Host side: total live (object, holder) registrations — "how many
    proxies point here". *)

val exported_count : runtime -> int
