(** Value types: the static types of obvent attributes and getter
    results, mirroring the Java types a filter may touch (§3.3.4
    restricts filter variables to primitives, their object
    counterparts, strings — we additionally type nested unbound
    objects and remote references). *)

type t =
  | Tbool
  | Tint
  | Tfloat
  | Tstring
  | Tlist of t
  | Tobject of string  (** nominal class or interface in the registry *)
  | Tremote of string  (** remote (bound object) interface *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_primitive : t -> bool
(** [true] for bool/int/float/string — the types a mobile filter may
    bind in local variables (§3.3.4). *)

val of_kind : Tpbs_serial.Value.kind -> t option
(** Best-effort static type of a runtime value kind. [None] for
    [Knull] and empty-list kinds where no type can be inferred. *)

val accepts : t -> Tpbs_serial.Value.t -> bool
(** Shallow dynamic conformance check of a runtime value against a
    static type. Any object (resp. remote) value conforms shallowly to
    any [Tobject] (resp. [Tremote]) type — nominal subtype conformance
    is the registry's business. [Null] is accepted at object, remote,
    list and string types (Java reference-type semantics). *)
