type kind = Interface | Class
type meth = { mname : string; ret : Vtype.t }

type decl = {
  name : string;
  kind : kind;
  supers : string list;
  attrs : (string * Vtype.t) list;
  methods : meth list;
}

exception Type_error of string

let err fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

module Smap = Map.Make (String)
module Sset = Set.Make (String)

type t = {
  mutable decls : decl Smap.t;
  mutable ancestors : Sset.t Smap.t;  (* cache: name -> all supertypes incl self *)
  mutable dirty : bool;
  mutable generation : int;  (* bumped on every declaration *)
}

let getter_name attr =
  if attr = "" then invalid_arg "Registry.getter_name: empty attribute";
  "get" ^ String.capitalize_ascii attr

let find reg name =
  match Smap.find_opt name reg.decls with
  | Some d -> d
  | None -> err "unknown type %s" name

let exists reg name = Smap.mem name reg.decls

let is_class reg name =
  match Smap.find_opt name reg.decls with
  | Some d -> d.kind = Class
  | None -> false

let is_interface reg name =
  match Smap.find_opt name reg.decls with
  | Some d -> d.kind = Interface
  | None -> false

(* Rebuild the transitive-closure cache bottom-up. Declarations are
   acyclic by construction (supers must already exist). *)
let rebuild reg =
  let rec ancestors_of name acc_map =
    match Smap.find_opt name acc_map with
    | Some set -> set, acc_map
    | None ->
        let d = find reg name in
        let set, acc_map =
          List.fold_left
            (fun (set, acc_map) super ->
              let sup_set, acc_map = ancestors_of super acc_map in
              Sset.union set sup_set, acc_map)
            (Sset.singleton name, acc_map)
            d.supers
        in
        set, Smap.add name set acc_map
  in
  let cache =
    Smap.fold
      (fun name _ acc_map -> snd (ancestors_of name acc_map))
      reg.decls Smap.empty
  in
  reg.ancestors <- cache;
  reg.dirty <- false

let ancestors reg name =
  if reg.dirty then rebuild reg;
  match Smap.find_opt name reg.ancestors with
  | Some set -> set
  | None -> err "unknown type %s" name

let subtype reg a b = Sset.mem b (ancestors reg a)
let supertypes reg name = Sset.elements (ancestors reg name)
let iter_supertypes reg name f = Sset.iter f (ancestors reg name)
let generation reg = reg.generation

let subtypes reg name =
  let _ = ancestors reg name in
  Smap.fold
    (fun candidate _ acc ->
      if Sset.mem name (ancestors reg candidate) then candidate :: acc else acc)
    reg.decls []

let builtin_obvent = "Obvent"
let is_obvent_type reg name = exists reg name && subtype reg name builtin_obvent

let methods_of reg name =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun super ->
      let d = find reg super in
      List.filter
        (fun m ->
          if Hashtbl.mem seen m.mname then false
          else begin
            Hashtbl.add seen m.mname ();
            true
          end)
        d.methods)
    (supertypes reg name)

let method_ret reg name m =
  let rec search = function
    | [] -> None
    | super :: rest ->
        let d = find reg super in
        (match List.find_opt (fun meth -> meth.mname = m) d.methods with
        | Some meth -> Some meth.ret
        | None -> search rest)
  in
  search (supertypes reg name)

let attrs_of reg name =
  (* Inherited first: walk the single-inheritance class chain upwards. *)
  let rec chain acc name =
    let d = find reg name in
    if d.kind <> Class then acc
    else
      let parent =
        List.find_opt (fun s -> (find reg s).kind = Class) d.supers
      in
      let acc = d.attrs :: acc in
      match parent with None -> acc | Some p -> chain acc p
  in
  if not (is_class reg name) then [] else List.concat (chain [] name)

let check_method_conflicts reg ~name ~supers own_methods =
  (* Within the new type, every visible method name must resolve to a
     single return type. *)
  let tbl = Hashtbl.create 16 in
  let add src (m : meth) =
    match Hashtbl.find_opt tbl m.mname with
    | Some (ret, src0) when not (Vtype.equal ret m.ret) ->
        err "type %s: method %s has conflicting types %a (%s) and %a (%s)"
          name m.mname Vtype.pp ret src0 Vtype.pp m.ret src
    | Some _ -> ()
    | None -> Hashtbl.add tbl m.mname (m.ret, src)
  in
  List.iter (add name) own_methods;
  List.iter
    (fun super -> List.iter (add super) (methods_of reg super))
    supers

let insert reg d =
  reg.decls <- Smap.add d.name d reg.decls;
  reg.dirty <- true;
  reg.generation <- reg.generation + 1

let check_fresh reg name =
  if name = "" then err "empty type name";
  if exists reg name then err "type %s already declared" name

let declare_interface reg ~name ?(extends = []) ?(methods = []) () =
  check_fresh reg name;
  List.iter
    (fun super ->
      if not (exists reg super) then err "interface %s: unknown supertype %s" name super;
      if is_class reg super then
        err "interface %s: cannot extend class %s" name super)
    extends;
  let methods = List.map (fun (mname, ret) -> { mname; ret }) methods in
  check_method_conflicts reg ~name ~supers:extends methods;
  insert reg
    { name; kind = Interface; supers = extends; attrs = []; methods }

let declare_class reg ~name ?extends ?(implements = []) ?(attrs = []) () =
  check_fresh reg name;
  (match extends with
  | Some super ->
      if not (exists reg super) then err "class %s: unknown superclass %s" name super;
      if not (is_class reg super) then
        err "class %s: extends %s which is not a class" name super
  | None -> ());
  List.iter
    (fun itf ->
      if not (exists reg itf) then err "class %s: unknown interface %s" name itf;
      if not (is_interface reg itf) then
        err "class %s: implements %s which is not an interface" name itf)
    implements;
  let supers = (match extends with Some s -> [ s ] | None -> []) @ implements in
  (* Attribute shadowing with a different type is an error. *)
  let inherited_attrs =
    match extends with Some s -> attrs_of reg s | None -> []
  in
  List.iter
    (fun (a, ty) ->
      match List.assoc_opt a inherited_attrs with
      | Some ty' when not (Vtype.equal ty ty') ->
          err "class %s: attribute %s : %a shadows inherited %s : %a" name a
            Vtype.pp ty a Vtype.pp ty'
      | Some _ | None -> ())
    attrs;
  let own_getters =
    List.map (fun (a, ty) -> { mname = getter_name a; ret = ty }) attrs
  in
  check_method_conflicts reg ~name ~supers own_getters;
  (* Every interface method must be implemented by some (possibly
     inherited) getter. Only the superclass chain provides
     implementations; the interfaces themselves only declare. *)
  let visible =
    own_getters
    @ (match extends with Some s -> methods_of reg s | None -> [])
  in
  List.iter
    (fun itf ->
      List.iter
        (fun (m : meth) ->
          match List.find_opt (fun g -> g.mname = m.mname) visible with
          | Some g when Vtype.equal g.ret m.ret -> ()
          | Some g ->
              err "class %s: method %s : %a does not match interface %s's %a"
                name m.mname Vtype.pp g.ret itf Vtype.pp m.ret
          | None ->
              err "class %s: does not implement %s.%s" name itf m.mname)
        (methods_of reg itf))
    implements;
  insert reg { name; kind = Class; supers; attrs; methods = own_getters }

let instantiable reg name = is_class reg name

let rec conforms reg (v : Tpbs_serial.Value.t) tname =
  match v with
  | Null -> is_class reg tname || is_interface reg tname
  | Obj o ->
      exists reg o.cls && is_class reg o.cls
      && subtype reg o.cls tname
      && List.for_all
           (fun (attr, ty) ->
             match List.assoc_opt attr o.fields with
             | None -> false
             | Some fv -> conforms_vtype reg fv ty)
           (attrs_of reg o.cls)
  | Bool _ | Int _ | Float _ | Str _ | List _ | Remote _ -> false

and conforms_vtype reg (v : Tpbs_serial.Value.t) (ty : Vtype.t) =
  match ty, v with
  | Tobject cls, (Obj _ | Null) -> conforms reg v cls
  | Tremote _, (Remote _ | Null) -> true
  | Tlist elt, List vs -> List.for_all (fun x -> conforms_vtype reg x elt) vs
  | Tlist _, Null -> true
  | (Tbool | Tint | Tfloat | Tstring), _ -> Vtype.accepts ty v
  | (Tobject _ | Tremote _ | Tlist _), _ -> false

let all_types reg = List.sort String.compare (List.map fst (Smap.bindings reg.decls))

let obvent_classes reg =
  List.filter
    (fun name -> is_class reg name && is_obvent_type reg name)
    (all_types reg)

let create () =
  let reg =
    { decls = Smap.empty; ancestors = Smap.empty; dirty = true;
      generation = 0 }
  in
  (* The java.pubsub lattice (Fig. 3). *)
  declare_interface reg ~name:"Obvent" ();
  declare_interface reg ~name:"Reliable" ~extends:[ "Obvent" ] ();
  declare_interface reg ~name:"Certified" ~extends:[ "Reliable" ] ();
  declare_interface reg ~name:"TotalOrder" ~extends:[ "Reliable" ] ();
  declare_interface reg ~name:"FIFOOrder" ~extends:[ "Reliable" ] ();
  declare_interface reg ~name:"CausalOrder" ~extends:[ "FIFOOrder" ] ();
  declare_interface reg ~name:"Timely" ~extends:[ "Obvent" ]
    ~methods:[ "getTimeToLive", Vtype.Tint; "getBirth", Vtype.Tint ]
    ();
  declare_interface reg ~name:"Prioritary" ~extends:[ "Obvent" ]
    ~methods:[ "getPriority", Vtype.Tint ]
    ();
  (* Opt-out of copy-on-write clone sharing: classes implementing
     EagerClone get one private deserialization of the envelope bytes
     per subscriber instead of lightweight views over a shared decode
     (the §2.1.2 guarantee holds either way; this marker exists for
     applications that want physically disjoint structure, e.g. to
     bound worst-case sharing lifetimes). *)
  declare_interface reg ~name:"EagerClone" ~extends:[ "Obvent" ] ();
  (* DACE's reflexive control channel (§4.2): protocol messages —
     subscription and unsubscription requests — are obvents
     themselves, on their own dissemination channel. *)
  declare_interface reg ~name:"MetaObvent" ~extends:[ "Obvent" ] ();
  declare_class reg ~name:"SubscriptionActivated" ~implements:[ "MetaObvent" ]
    ~attrs:
      [ "subscriptionId", Vtype.Tint; "nodeId", Vtype.Tint;
        "subscribedType", Vtype.Tstring ]
    ();
  declare_class reg ~name:"SubscriptionDeactivated"
    ~implements:[ "MetaObvent" ]
    ~attrs:
      [ "subscriptionId", Vtype.Tint; "nodeId", Vtype.Tint;
        "subscribedType", Vtype.Tstring ]
    ();
  reg
