type order = No_order | Fifo | Causal | Total | Causal_total

type profile = {
  reliable : bool;
  certified : bool;
  order : order;
  prioritary : bool;
  timely : bool;
}

type conflict = Timely_dropped | Priority_dropped

let unreliable =
  { reliable = false; certified = false; order = No_order;
    prioritary = false; timely = false }

let order_requires_reliability = function
  | No_order -> false
  | Fifo | Causal | Total | Causal_total -> true

let resolve p =
  let conflicts = ref [] in
  let reliable =
    p.reliable || p.certified || order_requires_reliability p.order
  in
  let timely =
    if p.timely && reliable then begin
      conflicts := Timely_dropped :: !conflicts;
      false
    end
    else p.timely
  in
  let prioritary =
    if p.prioritary && p.order <> No_order then begin
      conflicts := Priority_dropped :: !conflicts;
      false
    end
    else p.prioritary
  in
  { p with reliable; timely; prioritary }, List.rev !conflicts

let of_type reg tname =
  let has itf = Registry.subtype reg tname itf in
  let causal = has "CausalOrder" in
  let total = has "TotalOrder" in
  let order =
    match causal, total with
    | true, true -> Causal_total
    | true, false -> Causal
    | false, true -> Total
    | false, false -> if has "FIFOOrder" then Fifo else No_order
  in
  resolve
    {
      reliable = has "Reliable";
      certified = has "Certified";
      order;
      prioritary = has "Prioritary";
      timely = has "Timely";
    }

let pp_order ppf = function
  | No_order -> Fmt.string ppf "none"
  | Fifo -> Fmt.string ppf "fifo"
  | Causal -> Fmt.string ppf "causal"
  | Total -> Fmt.string ppf "total"
  | Causal_total -> Fmt.string ppf "causal+total"

let pp ppf p =
  Fmt.pf ppf "{reliable=%b; certified=%b; order=%a; prio=%b; timely=%b}"
    p.reliable p.certified pp_order p.order p.prioritary p.timely

let equal a b =
  a.reliable = b.reliable && a.certified = b.certified && a.order = b.order
  && a.prioritary = b.prioritary && a.timely = b.timely

let conflict_label = function
  | Timely_dropped -> "timely"
  | Priority_dropped -> "priority"
