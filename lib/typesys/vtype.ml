type t =
  | Tbool
  | Tint
  | Tfloat
  | Tstring
  | Tlist of t
  | Tobject of string
  | Tremote of string

let rec equal a b =
  match a, b with
  | Tbool, Tbool | Tint, Tint | Tfloat, Tfloat | Tstring, Tstring -> true
  | Tlist x, Tlist y -> equal x y
  | Tobject x, Tobject y -> String.equal x y
  | Tremote x, Tremote y -> String.equal x y
  | (Tbool | Tint | Tfloat | Tstring | Tlist _ | Tobject _ | Tremote _), _ ->
      false

let rec pp ppf = function
  | Tbool -> Fmt.string ppf "bool"
  | Tint -> Fmt.string ppf "int"
  | Tfloat -> Fmt.string ppf "float"
  | Tstring -> Fmt.string ppf "string"
  | Tlist t -> Fmt.pf ppf "list<%a>" pp t
  | Tobject n -> Fmt.string ppf n
  | Tremote n -> Fmt.pf ppf "remote<%s>" n

let to_string t = Fmt.str "%a" pp t

let is_primitive = function
  | Tbool | Tint | Tfloat | Tstring -> true
  | Tlist _ | Tobject _ | Tremote _ -> false

let of_kind (k : Tpbs_serial.Value.kind) =
  match k with
  | Knull -> None
  | Kbool -> Some Tbool
  | Kint -> Some Tint
  | Kfloat -> Some Tfloat
  | Kstring -> Some Tstring
  | Klist -> None
  | Kobj c -> Some (Tobject c)
  | Kremote i -> Some (Tremote i)

let rec accepts t (v : Tpbs_serial.Value.t) =
  match t, v with
  | Tbool, Bool _ -> true
  | Tint, Int _ -> true
  | Tfloat, Float _ -> true
  | Tstring, (Str _ | Null) -> true
  | Tlist elt, List vs -> List.for_all (accepts elt) vs
  | Tlist _, Null -> true
  | Tobject _, (Obj _ | Null) -> true
  | Tremote _, (Remote _ | Null) -> true
  | (Tbool | Tint | Tfloat | Tstring | Tlist _ | Tobject _ | Tremote _), _ ->
      false
