(** Runtime type registry: a nominal type lattice with multiple
    subtyping, mirroring Java's separation of classes and interfaces
    (§2.2 of the paper).

    Obvent types are registered here; the registry answers the
    questions the publish/subscribe engine needs: is [A] a subtype of
    [B] (so that a subscription to [B] receives instances of [A],
    Fig. 1), which getter methods does a type expose (so that filters
    can be typechecked without breaking encapsulation, LP2), and does
    a runtime value conform to its declared class.

    Java's two declaration forms are both supported (§2.2):
    {e explicit} declaration of a type via an interface (multiple
    superinterfaces — LM2), and {e implicit} declaration via a class
    (single superclass, multiple implemented interfaces). Class
    attributes are private; each attribute [x : t] implicitly yields a
    public getter [getX : t], which is how filters observe obvents. *)

type kind = Interface | Class

type meth = { mname : string; ret : Vtype.t }
(** A zero-argument method (getter) signature. The paper's filter
    restrictions (§3.3.4) confine filters to nested invocations on the
    filtered obvent, so getters are the entire observable surface. *)

type decl = {
  name : string;
  kind : kind;
  supers : string list;  (** direct supertypes *)
  attrs : (string * Vtype.t) list;  (** own attributes (classes only) *)
  methods : meth list;  (** own declared methods, incl. derived getters *)
}

type t
(** A mutable registry. *)

exception Type_error of string

val create : unit -> t
(** A registry preloaded with the [java.pubsub] lattice of Fig. 3:
    [Obvent], [Reliable], [Certified], [TotalOrder], [FIFOOrder],
    [CausalOrder], [Timely], [Prioritary]. *)

val declare_interface :
  t ->
  name:string ->
  ?extends:string list ->
  ?methods:(string * Vtype.t) list ->
  unit ->
  unit
(** Explicit type declaration. [extends] defaults to [[]]; an
    interface with no superinterface is still a valid (non-obvent)
    type.
    @raise Type_error on duplicate name, unknown supertype, a
    supertype that is a class, or a method signature conflicting with
    an inherited one. *)

val declare_class :
  t ->
  name:string ->
  ?extends:string ->
  ?implements:string list ->
  ?attrs:(string * Vtype.t) list ->
  unit ->
  unit
(** Implicit type declaration through a class. Each attribute [x]
    yields a getter [getX]. The class must (transitively) provide
    every method of every implemented interface through its derived
    getters.
    @raise Type_error on duplicate name, unknown supertype, [extends]
    naming an interface, [implements] naming a class, attribute
    shadowing with a different type, or an unimplemented interface
    method. *)

val exists : t -> string -> bool
val is_class : t -> string -> bool
val is_interface : t -> string -> bool

val find : t -> string -> decl
(** @raise Type_error if unknown. *)

val subtype : t -> string -> string -> bool
(** [subtype reg a b] — reflexive transitive conformance [a <: b]. *)

val supertypes : t -> string -> string list
(** All supertypes including the type itself, in no particular
    order. *)

val iter_supertypes : t -> string -> (string -> unit) -> unit
(** Iterate the subtype closure of a type — every supertype including
    the type itself — without allocating an intermediate list. This is
    the hot-path form used by the delivery routing index to fan a
    concrete obvent class out to the subscribed types it conforms
    to. *)

val generation : t -> int
(** Monotonic counter bumped by every successful declaration. Caches
    derived from the lattice (e.g. per-class routing indexes) record
    the generation they were built against and invalidate themselves
    when it moves, so late type declarations stay correct. *)

val subtypes : t -> string -> string list
(** All currently declared subtypes including the type itself. *)

val is_obvent_type : t -> string -> bool
(** Does the type widen to [Obvent]? Only such types may be published
    or subscribed to (§3.2). *)

val methods_of : t -> string -> meth list
(** All methods visible on the type, including inherited ones. *)

val method_ret : t -> string -> string -> Vtype.t option
(** [method_ret reg tname m] — return type of method [m] on [tname],
    if any. *)

val attrs_of : t -> string -> (string * Vtype.t) list
(** All attributes of a class, inherited first. Empty for
    interfaces. *)

val getter_name : string -> string
(** [getter_name "price"] is ["getPrice"] — the JavaBean-ish derived
    getter convention used throughout the paper's examples. *)

val conforms : t -> Tpbs_serial.Value.t -> string -> bool
(** Deep runtime conformance of a value to a named type: an object
    value conforms if its class is a registered subtype and every
    declared attribute is present with a conforming value
    (recursively). [Null] conforms to every object type. *)

val conforms_vtype : t -> Tpbs_serial.Value.t -> Vtype.t -> bool
(** Deep runtime conformance of a value to a value type, delegating to
    {!conforms} for nominal object types. *)

val instantiable : t -> string -> bool
(** Classes can be instantiated; interfaces cannot. *)

val all_types : t -> string list
(** Every registered type name, sorted. *)

val obvent_classes : t -> string list
(** Every registered {e class} that widens to [Obvent] — the set of
    multicast classes DACE maps to dissemination channels (§4.2). *)
