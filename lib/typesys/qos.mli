(** Composable obvent semantics (§3.1.2–3.1.3, Fig. 4).

    A type expresses its quality of service by subtyping marker
    interfaces; semantics compose through multiple subtyping (LM2).
    Some combinations contradict each other, and the paper fixes a
    precedence: reliability is stronger than timeliness, and any
    ordering is stronger than priorities. Resolution reports which
    semantics were dropped so the application can be warned. *)

type order = No_order | Fifo | Causal | Total | Causal_total
    (** Delivery-order requirement. [Causal] implies FIFO (subtype
        relation); [Causal_total] arises from subtyping both
        [CausalOrder] and [TotalOrder]. *)

type profile = {
  reliable : bool;  (** at-least "up for long enough" delivery *)
  certified : bool;  (** survives subscriber disconnection (implies reliable) *)
  order : order;
  prioritary : bool;  (** effective only when [order = No_order] *)
  timely : bool;  (** effective only when not [reliable] *)
}

type conflict =
  | Timely_dropped  (** Reliable ∧ Timely: reliability wins (Fig. 4) *)
  | Priority_dropped  (** ordered ∧ Prioritary: order wins (Fig. 4) *)

val unreliable : profile
(** The default semantics: best-effort, unordered (§3.1.2). *)

val of_type : Registry.t -> string -> profile * conflict list
(** [of_type reg t] reads the marker interfaces among [t]'s
    supertypes and resolves contradictions. *)

val resolve : profile -> profile * conflict list
(** Apply the Fig. 4 precedence to a raw profile. *)

val order_requires_reliability : order -> bool
val pp : Format.formatter -> profile -> unit
val equal : profile -> profile -> bool

val conflict_label : conflict -> string
(** Short name of the semantics dropped by a conflict ("timely",
    "priority") — the payload of the engine's [core.qos_conflict]
    trace events. *)
