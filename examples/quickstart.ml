(* Quickstart: type-based publish/subscribe in five minutes.

   Run with:  dune exec examples/quickstart.exe

   One publisher, two subscribers. Subscribing to a type receives all
   its subtypes (Fig. 1 of the paper); filters are deferred code,
   written in the Java_ps surface syntax and typechecked at
   subscription time (LP1). *)

module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Pubsub = Tpbs_core.Pubsub
module Fspec = Tpbs_core.Fspec

let () =
  (* 1. Declare the obvent types: a class hierarchy rooted under the
     builtin Obvent interface. *)
  let reg = Registry.create () in
  Registry.declare_class reg ~name:"StockObvent" ~implements:[ "Obvent" ]
    ~attrs:
      [ "company", Vtype.Tstring; "price", Vtype.Tfloat; "amount", Vtype.Tint ]
    ();
  Registry.declare_class reg ~name:"StockQuote" ~extends:"StockObvent" ();

  (* 2. A simulated deployment: three address spaces. *)
  let engine = Engine.create ~seed:1 () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in
  let market = Pubsub.Process.create domain (Net.add_node net) in
  let broker = Pubsub.Process.create domain (Net.add_node net) in
  let auditor = Pubsub.Process.create domain (Net.add_node net) in

  (* 3. subscribe (StockQuote q) { filter } { handler } — the paper's
     §2.3.3 example, filter in concrete syntax. *)
  let sub_broker =
    Pubsub.Process.subscribe broker ~param:"StockQuote"
      ~filter:
        (Fspec.of_source ~param:"q"
           "q.getPrice() < 100 && q.getCompany().indexOf(\"Telco\") != -1")
      (fun q ->
        Fmt.pr "broker : got offer %a at %a@." Value.pp (Obvent.get q "company")
          Value.pp (Obvent.get q "price"))
  in
  Pubsub.Subscription.activate sub_broker;

  (* The auditor subscribes to the supertype: every stock obvent. *)
  let sub_auditor =
    Pubsub.Process.subscribe auditor ~param:"StockObvent" (fun o ->
        Fmt.pr "auditor: %s published@." (Obvent.cls o))
  in
  Pubsub.Subscription.activate sub_auditor;

  (* 4. publish o; *)
  let quote company price =
    Obvent.make reg "StockQuote"
      [ "company", Value.Str company; "price", Value.Float price;
        "amount", Value.Int 10 ]
  in
  Pubsub.Process.publish market (quote "Telco Mobiles" 80.);
  Pubsub.Process.publish market (quote "Telco Mobiles" 150.);
  Pubsub.Process.publish market (quote "Acme Corp" 75.);

  (* 5. Run the simulated network to quiescence. *)
  Engine.run engine;
  let stats = Pubsub.Domain.stats domain in
  Fmt.pr "-- published %d, delivered %d, filtered out %d@."
    stats.Pubsub.Domain.published stats.Pubsub.Domain.deliveries
    stats.Pubsub.Domain.filtered_out
