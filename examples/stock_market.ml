(* The paper's running example, end to end (Figs. 1, 2 and 8):

   - the stock market publishes quotes over type-based pub/sub;
   - brokers subscribe with content filters (without breaking the
     obvents' encapsulation — only getters are used);
   - a bank subscribes to the abstract type StockObvent and therefore
     sees the whole hierarchy: quotes AND purchase requests;
   - quotes carry a remote reference to the market, and a broker buys
     back through RMI — publish/subscribe and remote invocation "hand
     in hand" (§5.4).

   Run with:  dune exec examples/stock_market.exe *)

module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Rmi = Tpbs_rmi.Rmi
module Pubsub = Tpbs_core.Pubsub
module Fspec = Tpbs_core.Fspec

let declare_types reg =
  (* Fig. 1's hierarchy, with quotes carrying the market reference as
     in Fig. 8. *)
  Registry.declare_class reg ~name:"StockObvent" ~implements:[ "Obvent" ]
    ~attrs:
      [ "company", Vtype.Tstring; "price", Vtype.Tfloat; "amount", Vtype.Tint ]
    ();
  Registry.declare_class reg ~name:"StockQuote" ~extends:"StockObvent"
    ~attrs:[ "market", Vtype.Tremote "StockMarket" ]
    ();
  Registry.declare_class reg ~name:"StockRequest" ~extends:"StockObvent" ();
  Registry.declare_class reg ~name:"SpotPrice" ~extends:"StockRequest" ();
  Registry.declare_class reg ~name:"MarketPrice" ~extends:"StockRequest"
    ~attrs:[ "expiry", Vtype.Tint ]
    ()

let () =
  let reg = Registry.create () in
  declare_types reg;
  let engine = Engine.create ~seed:2024 () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in

  (* Address spaces: the market (p1), a broker (p2), the bank (p3). *)
  let market_node = Net.add_node net in
  let broker_node = Net.add_node net in
  let bank_node = Net.add_node net in
  let market_rmi = Rmi.attach net ~me:market_node in
  let broker_rmi = Rmi.attach net ~me:broker_node in
  let bank_rmi = Rmi.attach net ~me:bank_node in
  let p1 = Pubsub.Process.create domain ~rmi:market_rmi market_node in
  let p2 = Pubsub.Process.create domain ~rmi:broker_rmi broker_node in
  let p3 = Pubsub.Process.create domain ~rmi:bank_rmi bank_node in

  (* The market's bound object: remotely invocable purchases. *)
  let sales = ref [] in
  let market_ref =
    Rmi.export market_rmi ~iface:"StockMarket" (fun ~meth ~args ->
        match meth, args with
        | "buy", [ Value.Str company; Value.Float price; Value.Int amount ] ->
            sales := (company, price, amount) :: !sales;
            Value.Bool true
        | _ -> raise (Rmi.App_error "no such method"))
  in

  (* p2, the broker: cheap Telco quotes, bought back through RMI
     (Fig. 8's subscription verbatim, plus the buy). *)
  let sub_broker =
    Pubsub.Process.subscribe p2 ~param:"StockQuote"
      ~filter:
        (Fspec.of_source ~param:"q"
           "q.getPrice() < 100 && q.getCompany().indexOf(\"Telco\") != -1")
      (fun q ->
        Fmt.pr "[t=%6d] broker: offer %a at %a — buying via RMI@."
          (Engine.now engine) Value.pp (Obvent.get q "company") Value.pp
          (Obvent.get q "price");
        Rmi.invoke broker_rmi (Obvent.get q "market") ~meth:"buy"
          ~args:
            [ Obvent.get q "company"; Obvent.get q "price";
              Obvent.get q "amount" ]
          ~k:(fun result ->
            match result with
            | Ok (Value.Bool bought) ->
                Fmt.pr "[t=%6d] broker: purchase %s@." (Engine.now engine)
                  (if bought then "confirmed" else "rejected")
            | Ok v ->
                Fmt.pr "[t=%6d] broker: odd reply %a@." (Engine.now engine)
                  Value.pp v
            | Error e ->
                Fmt.pr "[t=%6d] broker: buy failed (%a)@." (Engine.now engine)
                  Rmi.pp_error e))
  in
  Pubsub.Subscription.activate sub_broker;

  (* p3, the bank: subscribes to the abstract type and sees the whole
     hierarchy; it converts expiring MarketPrice requests into
     SpotPrice requests on behalf of its customers (the intermediary
     role described in §2.1.3). *)
  let sub_bank =
    Pubsub.Process.subscribe p3 ~param:"StockObvent" (fun o ->
        Fmt.pr "[t=%6d] bank  : observed %s (%a)@." (Engine.now engine)
          (Obvent.cls o) Value.pp (Obvent.get o "company");
        if Obvent.cls o = "MarketPrice" then begin
          let spot =
            Obvent.make reg "SpotPrice"
              [ "company", Obvent.get o "company";
                "price", Obvent.get o "price"; "amount", Obvent.get o "amount" ]
          in
          Fmt.pr "[t=%6d] bank  : converting to spot request@."
            (Engine.now engine);
          Pubsub.Process.publish p3 spot
        end)
  in
  Pubsub.Subscription.activate sub_bank;

  (* The market publishes quotes; the broker publishes a market-price
     request the bank converts. *)
  let quote company price =
    Obvent.make reg "StockQuote"
      [ "company", Value.Str company; "price", Value.Float price;
        "amount", Value.Int 10; "market", market_ref ]
  in
  Pubsub.Process.publish p1 (quote "Telco Mobiles" 80.);
  Pubsub.Process.publish p1 (quote "Acme Corp" 60.);
  Pubsub.Process.publish p1 (quote "Telco Fixnet" 120.);
  Pubsub.Process.publish p2
    (Obvent.make reg "MarketPrice"
       [ "company", Value.Str "Octopus"; "price", Value.Float 42.;
         "amount", Value.Int 7; "expiry", Value.Int 100_000 ]);

  Engine.run engine;

  Fmt.pr "@.-- market executed %d sale(s)@." (List.length !sales);
  List.iter
    (fun (company, price, amount) ->
      Fmt.pr "   sold %d x %s at %.2f@." amount company price)
    (List.rev !sales);
  let stats = Pubsub.Domain.stats domain in
  Fmt.pr "-- published %d, delivered %d, filtered out %d@."
    stats.Pubsub.Domain.published stats.Pubsub.Domain.deliveries
    stats.Pubsub.Domain.filtered_out;
  (* Every subscriber's copy of a quote created a proxy for the market
     object — the DGC pressure discussed in §5.4.2. *)
  Fmt.pr "-- market objects still pinned by remote proxies: %d@."
    (Rmi.pinned market_rmi)
