(* Large-scale dissemination: a newsroom feeding 120 reader nodes.

   DACE maps obvent classes to dissemination channels and can back
   them with protocols "with weaker guarantees but strong focus on
   scalability" (§4.2) — here lpbcast-style gossip. The example
   publishes breaking news over (a) plain best-effort datagrams and
   (b) the gossip channel, on a lossy network, and compares delivery
   ratios and message cost.

   Run with:  dune exec examples/newsroom_gossip.exe *)

module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Pubsub = Tpbs_core.Pubsub
module Fspec = Tpbs_core.Fspec

let readers = 120
let stories = 10
let loss = 0.20

let declare_types reg =
  Registry.declare_class reg ~name:"News" ~implements:[ "Obvent" ]
    ~attrs:[ "desk", Vtype.Tstring; "headline", Vtype.Tstring ]
    ();
  Registry.declare_class reg ~name:"Breaking" ~extends:"News" ()

let run_once ~gossip =
  let reg = Registry.create () in
  declare_types reg;
  let engine = Engine.create ~seed:99 () in
  let net = Net.create ~config:{ Net.default_config with loss } engine in
  let domain = Pubsub.Domain.create reg net in
  if gossip then
    Pubsub.Domain.use_gossip domain ~cls:"Breaking"
      ~config:{ Tpbs_group.Gossip.default_config with fanout = 4 }
      ();
  let newsroom = Pubsub.Process.create domain (Net.add_node net) in
  let reader_procs =
    Array.init readers (fun _ -> Pubsub.Process.create domain (Net.add_node net))
  in
  let received = ref 0 in
  Array.iter
    (fun p ->
      let s =
        Pubsub.Process.subscribe p ~param:"News"
          ~filter:(Fspec.of_source ~param:"n" "n.getDesk() == \"world\"")
          (fun _ -> incr received)
      in
      Pubsub.Subscription.activate s)
    reader_procs;
  for i = 1 to stories do
    Pubsub.Process.publish newsroom
      (Obvent.make reg "Breaking"
         [ "desk", Value.Str "world";
           "headline", Value.Str (Printf.sprintf "story %d" i) ])
  done;
  Engine.run ~until:300_000 engine;
  let ratio = float_of_int !received /. float_of_int (readers * stories) in
  let s = Net.stats net in
  ratio, s.Net.sent, s.Net.bytes_sent

let () =
  Fmt.pr "newsroom: %d readers, %d stories, %.0f%% message loss@.@." readers
    stories (100. *. loss);
  let ratio_be, msgs_be, bytes_be = run_once ~gossip:false in
  let ratio_go, msgs_go, bytes_go = run_once ~gossip:true in
  Fmt.pr "%-12s %12s %12s %14s@." "transport" "delivery" "messages" "bytes";
  Fmt.pr "%-12s %11.1f%% %12d %14d@." "best-effort" (100. *. ratio_be) msgs_be
    bytes_be;
  Fmt.pr "%-12s %11.1f%% %12d %14d@." "gossip" (100. *. ratio_go) msgs_go
    bytes_go;
  Fmt.pr
    "@.gossip trades extra messages for loss-resilient delivery — the@.\
     scalable end of DACE's protocol spectrum (§4.2, [EGH+01]).@."
