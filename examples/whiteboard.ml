(* Group collaboration (one of the paper's motivating application
   domains, §5.6 citing [MHJ+95]): a shared whiteboard.

   Strokes are causally ordered obvents — an "erase" that reacts to a
   stroke can never be applied before the stroke itself, whatever the
   network does — and every participant converges to a consistent
   drawing. The session log is a certified obvent stream, so a client
   that crashes mid-session replays what it missed.

   Run with:  dune exec examples/whiteboard.exe *)

module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Pubsub = Tpbs_core.Pubsub
module Subscription = Pubsub.Subscription
module Process = Pubsub.Process

let participants = 4

let declare_types reg =
  Registry.declare_class reg ~name:"BoardOp" ~implements:[ "CausalOrder" ]
    ~attrs:
      [ "author", Vtype.Tstring; "op", Vtype.Tstring; "shape", Vtype.Tstring ]
    ();
  Registry.declare_class reg ~name:"ChatLine" ~implements:[ "Certified" ]
    ~attrs:[ "author", Vtype.Tstring; "text", Vtype.Tstring ]
    ()

let () =
  let reg = Registry.create () in
  declare_types reg;
  let engine = Engine.create ~seed:2026 () in
  let net = Net.create ~config:{ Net.default_config with jitter = 800 } engine in
  let domain = Pubsub.Domain.create reg net in
  let procs =
    Array.init participants (fun _ -> Process.create domain (Net.add_node net))
  in
  let names = [| "ada"; "barbara"; "grace"; "katherine" |] in
  (* Every participant applies board operations to a local replica. *)
  let boards = Array.make participants [] in
  Array.iteri
    (fun i p ->
      let apply o =
        let op =
          match Obvent.get o "op", Obvent.get o "shape" with
          | Value.Str op, Value.Str shape -> op, shape
          | _ -> "?", "?"
        in
        (match op with
        | "draw", shape -> boards.(i) <- shape :: boards.(i)
        | "erase", shape ->
            boards.(i) <- List.filter (fun s -> s <> shape) boards.(i)
        | _ -> ());
        (* Grace dislikes circles: she erases them as soon as she sees
           one — a causally dependent operation. *)
        if i = 2 && fst op = "draw" && snd op = "circle" then
          Process.publish procs.(2)
            (Obvent.make reg "BoardOp"
               [ "author", Value.Str "grace"; "op", Value.Str "erase";
                 "shape", Value.Str "circle" ])
      in
      Subscription.activate (Process.subscribe p ~param:"BoardOp" apply))
    procs;
  (* A chat pane over certified delivery. *)
  let chat = ref [] in
  Subscription.activate
    (Process.subscribe procs.(3) ~param:"ChatLine" (fun o ->
         chat := Obvent.get o "text" :: !chat));
  (* The session: concurrent drawing. *)
  let draw i shape =
    Process.publish procs.(i)
      (Obvent.make reg "BoardOp"
         [ "author", Value.Str names.(i); "op", Value.Str "draw";
           "shape", Value.Str shape ])
  in
  draw 0 "square";
  draw 1 "circle";
  draw 3 "triangle";
  Process.publish procs.(0)
    (Obvent.make reg "ChatLine"
       [ "author", Value.Str "ada"; "text", Value.Str "nice board!" ]);
  Engine.run engine;
  Array.iteri
    (fun i board ->
      Fmt.pr "%-10s sees: [%s]@." names.(i)
        (String.concat "; " (List.sort String.compare board)))
    boards;
  (* Causal order guarantees the circle is gone everywhere: grace's
     erase is causally after barbara's draw on every replica. *)
  let converged =
    Array.for_all
      (fun b -> List.sort String.compare b = [ "square"; "triangle" ])
      boards
  in
  Fmt.pr "@.boards converged (circle erased everywhere): %b@." converged;
  Fmt.pr "chat delivered: %d line(s)@." (List.length !chat)
