(* Composable obvent semantics in a telecom network-operations
   scenario (§3.1.2, Fig. 3/4):

   - Alarm          : Prioritary — critical alarms overtake routine
                      ones in the egress queue;
   - LoadSample     : Timely — stale samples expire in transit;
   - AuditRecord    : Certified — survives the operations console
                      crashing and recovering (durable subscription);
   - ConfigChange   : CausalOrder — a rollback can never be seen
                      before the change it reverts.

   Run with:  dune exec examples/telecom_alarms.exe *)

module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Qos = Tpbs_types.Qos
module Pubsub = Tpbs_core.Pubsub
module Fspec = Tpbs_core.Fspec

let declare_types reg =
  Registry.declare_class reg ~name:"Alarm" ~implements:[ "Prioritary" ]
    ~attrs:
      [ "element", Vtype.Tstring; "severity", Vtype.Tstring;
        "priority", Vtype.Tint ]
    ();
  Registry.declare_class reg ~name:"LoadSample" ~implements:[ "Timely" ]
    ~attrs:
      [ "element", Vtype.Tstring; "load", Vtype.Tfloat; "birth", Vtype.Tint;
        "timeToLive", Vtype.Tint ]
    ();
  Registry.declare_class reg ~name:"AuditRecord" ~implements:[ "Certified" ]
    ~attrs:[ "entry", Vtype.Tstring ]
    ();
  Registry.declare_class reg ~name:"ConfigChange"
    ~implements:[ "CausalOrder" ]
    ~attrs:[ "element", Vtype.Tstring; "action", Vtype.Tstring ]
    ()

let () =
  let reg = Registry.create () in
  declare_types reg;
  (* Show the resolved QoS profiles, including Fig. 4's precedence. *)
  List.iter
    (fun cls ->
      let profile, conflicts = Qos.of_type reg cls in
      Fmt.pr "%-12s %a%s@." cls Qos.pp profile
        (if conflicts = [] then "" else "  (conflicts resolved)"))
    [ "Alarm"; "LoadSample"; "AuditRecord"; "ConfigChange" ];

  let engine = Engine.create ~seed:7 () in
  let net = Net.create ~config:{ Tpbs_sim.Net.default_config with jitter = 0 } engine in
  let domain = Pubsub.Domain.create ~tx_interval:2000 reg net in
  let element = Pubsub.Process.create domain (Net.add_node net) in
  let console = Pubsub.Process.create domain (Net.add_node net) in

  (* Alarms: only warnings and above, critical ones overtake. *)
  let sub_alarms =
    Pubsub.Process.subscribe console ~param:"Alarm"
      ~filter:(Fspec.of_source ~param:"a" "a.getPriority() >= 3")
      (fun a ->
        Fmt.pr "[t=%6d] ALARM %a on %a (priority %a)@." (Engine.now engine)
          Value.pp (Obvent.get a "severity") Value.pp (Obvent.get a "element")
          Value.pp (Obvent.get a "priority"))
  in
  Pubsub.Subscription.activate sub_alarms;

  (* Load samples: whatever arrives fresh. *)
  let sub_load =
    Pubsub.Process.subscribe console ~param:"LoadSample" (fun s ->
        Fmt.pr "[t=%6d] load  %a = %a@." (Engine.now engine) Value.pp
          (Obvent.get s "element") Value.pp (Obvent.get s "load"))
  in
  Pubsub.Subscription.activate sub_load;

  (* Config changes: causal order, so the rollback below can never be
     delivered before the change. *)
  let sub_config =
    Pubsub.Process.subscribe console ~param:"ConfigChange" (fun c ->
        Fmt.pr "[t=%6d] config %a: %a@." (Engine.now engine) Value.pp
          (Obvent.get c "element") Value.pp (Obvent.get c "action"))
  in
  Pubsub.Subscription.activate sub_config;

  (* Audit trail: certified, durable subscription id 7. *)
  let audit_log = ref [] in
  let sub_audit =
    Pubsub.Process.subscribe console ~param:"AuditRecord" (fun r ->
        audit_log := Obvent.get r "entry" :: !audit_log;
        Fmt.pr "[t=%6d] audit %a@." (Engine.now engine) Value.pp
          (Obvent.get r "entry"))
  in
  Pubsub.Subscription.activate_durable sub_audit ~id:7;

  (* A burst of alarms, low priority first: the priority queue lets
     the critical one overtake. *)
  let alarm element severity priority =
    Obvent.make reg "Alarm"
      [ "element", Value.Str element; "severity", Value.Str severity;
        "priority", Value.Int priority ]
  in
  Pubsub.Process.publish element (alarm "bts-17" "minor" 1);
  Pubsub.Process.publish element (alarm "bts-17" "warning" 3);
  Pubsub.Process.publish element (alarm "core-1" "CRITICAL" 9);

  (* Load samples with a short TTL: queued behind the alarms, most
     expire before transmission. *)
  let now = Engine.now engine in
  for i = 1 to 4 do
    Pubsub.Process.publish element
      (Obvent.make reg "LoadSample"
         [ "element", Value.Str "core-1";
           "load", Value.Float (0.5 +. (0.1 *. float_of_int i));
           "birth", Value.Int now; "timeToLive", Value.Int 4000 ])
  done;

  (* Config change then rollback, causally related. *)
  Pubsub.Process.publish element
    (Obvent.make reg "ConfigChange"
       [ "element", Value.Str "core-1"; "action", Value.Str "raise-power" ]);
  Engine.run ~until:30_000 engine;

  (* The console crashes; audit records published while it is down
     must still reach it (certified delivery). *)
  Fmt.pr "@.[t=%6d] console crashes@." (Engine.now engine);
  Net.crash net (Pubsub.Process.node console);
  Pubsub.Process.publish element
    (Obvent.make reg "AuditRecord" [ "entry", Value.Str "shift-change" ]);
  Pubsub.Process.publish element
    (Obvent.make reg "AuditRecord" [ "entry", Value.Str "core-1-maintenance" ]);
  Engine.run ~until:(Engine.now engine + 40_000) engine;
  Fmt.pr "[t=%6d] console recovers (durable subscription 7 reactivates)@."
    (Engine.now engine);
  Net.recover net (Pubsub.Process.node console);
  Pubsub.Process.resume console;
  Engine.run ~until:(Engine.now engine + 300_000) engine;

  Fmt.pr "@.-- audit log holds %d entries (none lost across the crash)@."
    (List.length !audit_log);
  let stats = Pubsub.Domain.stats domain in
  Fmt.pr "-- %d published, %d delivered, %d expired in transit@."
    stats.Pubsub.Domain.published stats.Pubsub.Domain.deliveries
    stats.Pubsub.Domain.expired;
  Engine.run engine
