(* The linguistic interface itself: a complete Java_ps program — types,
   processes, publish statements and subscribe expressions in concrete
   syntax — precompiled and executed on the simulated deployment.

   This is the paper's §2.3.3 example as the *language* presents it;
   `bin/pscc` offers the same from the command line.

   Run with:  dune exec examples/minilang.exe *)

module Compile = Tpbs_psc.Compile
module Interp = Tpbs_psc.Interp

let program =
  {|
interface StockObvent extends Obvent {
  String getCompany();
  double getPrice();
  int getAmount();
}

class StockObventImpl implements StockObvent {
  String company;
  double price;
  int amount;
}

class StockQuote extends StockObventImpl {}

// Market-price requests expire; the type composes QoS by subtyping.
class MarketPrice extends StockObventImpl {}

process market {
  publish new StockQuote("Telco Mobiles", 80, 10);
  publish new StockQuote("Acme Corp", 120, 3);
  publish new StockQuote("Telco Fixnet", 95, 5);
  publish new StockQuote("Telco Cloud", 140, 2);
}

process broker {
  final double limit = 100;
  Subscription s = subscribe (StockQuote q) {
    return q.getPrice() < limit && q.getCompany().indexOf("Telco") != -1;
  } {
    print("Got offer: " + q.getCompany());
  };
  s.activate();
}

process bank {
  Subscription all = subscribe (StockObvent o) { true } {
    print("audit: " + o.getCompany());
  };
  all.activate();
}
|}

let () =
  let compiled = Compile.compile_string program in
  Fmt.pr "=== precompilation plan (what psc generates, §4.4) ===@.%a@."
    Compile.pp_plan compiled;
  Fmt.pr "=== execution trace ===@.";
  let result = Interp.run ~seed:11 compiled in
  Interp.pp_trace Fmt.stdout result.Interp.trace;
  let s = result.Interp.stats in
  Fmt.pr "@.-- %d published, %d delivered, %d filtered out@."
    s.Tpbs_core.Pubsub.Domain.published s.Tpbs_core.Pubsub.Domain.deliveries
    s.Tpbs_core.Pubsub.Domain.filtered_out
