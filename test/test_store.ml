module Log = Tpbs_store.Log
module Record = Tpbs_store.Record
module Stable = Tpbs_sim.Stable

(* --- scratch directories -------------------------------------------- *)

let fresh_dir () =
  let f = Filename.temp_file "tpbs_store" "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let contents t =
  List.map (fun k -> (k, Option.get (Log.get t k))) (Log.keys_with_prefix t "")

(* --- units ----------------------------------------------------------- *)

let test_roundtrip_reopen () =
  with_dir @@ fun dir ->
  let t = Log.open_ ~dir () in
  Log.put t "a" "1";
  Log.put t "b" "2";
  Log.put t "a" "3";
  Log.delete t "b";
  Alcotest.(check (option string)) "overwrite" (Some "3") (Log.get t "a");
  Alcotest.(check (option string)) "deleted" None (Log.get t "b");
  Log.close t;
  let t = Log.open_ ~dir () in
  Alcotest.(check (list (pair string string)))
    "state survives reopen" [ ("a", "3") ] (contents t);
  Alcotest.(check int) "replayed all records" 4 (Log.stats t).recovered_records;
  Log.close t

let seg_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".log")
  |> List.sort compare

let test_crc_rejection () =
  with_dir @@ fun dir ->
  let t = Log.open_ ~dir () in
  Log.put t "a" "alpha";
  Log.put t "b" "beta";
  Log.put t "c" "gamma";
  Log.close t;
  (* flip one payload byte inside the middle record *)
  let path = Filename.concat dir (List.hd (seg_files dir)) in
  let ic = open_in_bin path in
  let buf = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  let rec_len = String.length (Record.frame ~op:Record.Put ~key:"a" ~value:"alpha") in
  let off = rec_len + Record.header_bytes + 2 in
  Bytes.set buf off (Char.chr (Char.code (Bytes.get buf off) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc buf;
  close_out oc;
  let t = Log.open_ ~dir () in
  Alcotest.(check (list (pair string string)))
    "prefix before the corrupt record survives" [ ("a", "alpha") ] (contents t);
  let st = Log.stats t in
  Alcotest.(check bool) "corruption counted" true (st.corrupt_records > 0);
  Alcotest.(check bool) "tail truncated" true (st.torn_bytes > 0);
  (* the log stays writable at the truncation point *)
  Log.put t "d" "delta";
  Log.close t;
  let t = Log.open_ ~dir () in
  Alcotest.(check (list (pair string string)))
    "clean after repair" [ ("a", "alpha"); ("d", "delta") ] (contents t);
  Alcotest.(check int) "no further corruption" 0 (Log.stats t).corrupt_records;
  Log.close t

let test_torn_tail_truncation () =
  with_dir @@ fun dir ->
  let t = Log.open_ ~dir () in
  Log.put t "a" "1";
  Log.put t "b" "2";
  Log.close t;
  (* chop the final record mid-payload: a partial last write *)
  let path = Filename.concat dir (List.hd (seg_files dir)) in
  let ic = open_in_bin path in
  let buf = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_substring oc buf 0 (String.length buf - 3);
  close_out oc;
  let t = Log.open_ ~dir () in
  Alcotest.(check (list (pair string string)))
    "torn tail dropped, prefix kept" [ ("a", "1") ] (contents t);
  Alcotest.(check int) "torn, not corrupt" 0 (Log.stats t).corrupt_records;
  Log.close t

let test_rotation () =
  with_dir @@ fun dir ->
  let t = Log.open_ ~segment_bytes:64 ~auto_compact:false ~dir () in
  for i = 0 to 19 do
    Log.put t (Printf.sprintf "k%02d" i) (String.make 10 'x')
  done;
  let st = Log.stats t in
  Alcotest.(check bool) "rotated" true (st.rotations > 0);
  Alcotest.(check bool) "several segment files" true (st.segments > 1);
  Log.close t;
  let t = Log.open_ ~segment_bytes:64 ~auto_compact:false ~dir () in
  Alcotest.(check int) "all keys survive rotation + reopen" 20 (Log.key_count t);
  Log.close t

let test_compaction () =
  with_dir @@ fun dir ->
  let t = Log.open_ ~segment_bytes:128 ~auto_compact:false ~dir () in
  for round = 0 to 9 do
    for i = 0 to 4 do
      Log.put t (Printf.sprintf "k%d" i) (Printf.sprintf "v%d.%d" round i)
    done
  done;
  Log.delete t "k4";
  let before = (Log.stats t).disk_bytes in
  Log.compact t;
  let st = Log.stats t in
  Alcotest.(check bool) "disk shrank" true (st.disk_bytes < before);
  Alcotest.(check int) "compactions counted" 1 st.compactions;
  Alcotest.(check bool) "base snapshot written" true
    (List.exists (fun n -> String.length n >= 5 && String.sub n 0 5 = "base-")
       (seg_files dir));
  let expect =
    [ ("k0", "v9.0"); ("k1", "v9.1"); ("k2", "v9.2"); ("k3", "v9.3") ]
  in
  Alcotest.(check (list (pair string string))) "merged state" expect (contents t);
  Log.close t;
  let t = Log.open_ ~segment_bytes:128 ~auto_compact:false ~dir () in
  Alcotest.(check (list (pair string string)))
    "merged state survives reopen" expect (contents t);
  Alcotest.(check (option string)) "delete survives merge" None (Log.get t "k4");
  Log.close t

let test_fast_drop_bounds_disk () =
  with_dir @@ fun dir ->
  let t = Log.open_ ~segment_bytes:256 ~compact_min_dead:16 ~dir () in
  (* a hot key overwritten forever: each sealed segment goes fully dead
     and is unlinked on the spot, no merge needed *)
  for i = 0 to 999 do
    Log.put t "hot" (Printf.sprintf "%06d" i)
  done;
  let st = Log.stats t in
  Alcotest.(check bool) "segments dropped" true (st.segments_dropped > 0);
  Alcotest.(check bool)
    (Printf.sprintf "disk bounded (%d bytes)" st.disk_bytes)
    true
    (st.disk_bytes < 2048);
  Alcotest.(check (option string)) "latest wins" (Some "000999") (Log.get t "hot");
  Log.close t

let test_auto_compact_bounds_disk () =
  with_dir @@ fun dir ->
  let t = Log.open_ ~segment_bytes:256 ~compact_min_dead:16 ~dir () in
  (* cold keys pin every segment (no fast drop), hot overwrites pile up
     dead records: only merge compaction can reclaim the space *)
  for i = 0 to 99 do
    Log.put t (Printf.sprintf "cold%03d" i) "c";
    for _ = 1 to 3 do
      Log.put t "hot" (Printf.sprintf "%06d" i)
    done
  done;
  let st = Log.stats t in
  Alcotest.(check bool) "compacted at least once" true (st.compactions > 0);
  Alcotest.(check bool)
    (Printf.sprintf "disk bounded (%d bytes)" st.disk_bytes)
    true
    (st.disk_bytes < 8192);
  Alcotest.(check int) "all cold keys live" 101 (Log.key_count t);
  Alcotest.(check (option string)) "latest wins" (Some "000099") (Log.get t "hot");
  Log.close t

let test_fault_injection_basic () =
  with_dir @@ fun dir ->
  let t = Log.open_ ~dir () in
  Log.put t "a" "1";
  Log.set_fault t ~after_bytes:4;
  (* the next record is cut short after 4 bytes: a torn tail on disk *)
  Alcotest.check_raises "power cut" Log.Injected_crash (fun () ->
      Log.put t "b" "2");
  Alcotest.(check bool) "store is dead" true (Log.is_dead t);
  Alcotest.check_raises "writes stay dead" Log.Injected_crash (fun () ->
      Log.put t "c" "3");
  Log.close t;
  let t = Log.open_ ~dir () in
  Alcotest.(check (list (pair string string)))
    "recovery keeps the committed prefix only" [ ("a", "1") ] (contents t);
  Alcotest.(check bool) "torn tail measured" true ((Log.stats t).torn_bytes > 0);
  Log.close t

let test_stable_adapter () =
  with_dir @@ fun dir ->
  let t = Log.open_ ~dir () in
  let s = Log.stable t in
  Stable.put s "cert:x:log:3" "m3";
  Stable.put s "cert:x:log:1" "m1";
  Stable.put s "cert:x:next" "4";
  Alcotest.(check (list string))
    "prefix scan, sorted"
    [ "cert:x:log:1"; "cert:x:log:3" ]
    (Stable.keys_with_prefix s "cert:x:log:");
  Stable.delete s "cert:x:log:1";
  Alcotest.(check int) "size tracks deletes" 2 (Stable.size s);
  Log.close t;
  let t = Log.open_ ~dir () in
  Alcotest.(check (option string))
    "survives reopen" (Some "m3")
    (Stable.get (Log.stable t) "cert:x:log:3");
  Log.close t

(* --- crash-point recovery property ----------------------------------- *)

(* Replay a random op sequence against both the on-disk log and an
   in-memory oracle, with a power cut injected at an arbitrary byte
   offset of the append stream. The oracle applies an op only when the
   log accepted it without crashing, so after reopening, the recovered
   state must equal the oracle exactly: the op whose record was torn
   is dropped, everything before it is kept. *)
let crash_point_prop (ops, cut, seg_bytes) =
  with_dir @@ fun dir ->
  let t = Log.open_ ~segment_bytes:seg_bytes ~compact_min_dead:8 ~dir () in
  Log.set_fault t ~after_bytes:cut;
  let oracle = Hashtbl.create 16 in
  (try
     List.iter
       (fun (op, k, v) ->
         (match op with
         | `Put -> Log.put t k v
         | `Delete -> Log.delete t k);
         (* reached only if the write was fully durable *)
         match op with
         | `Put -> Hashtbl.replace oracle k v
         | `Delete -> Hashtbl.remove oracle k)
       ops
   with Log.Injected_crash -> ());
  Log.close t;
  let t = Log.open_ ~segment_bytes:seg_bytes ~dir () in
  let recovered = contents t in
  Log.close t;
  let expected =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle []
    |> List.sort compare
  in
  if recovered <> expected then
    QCheck.Test.fail_reportf
      "recovered state diverges from oracle at cut=%d:@ got %a@ want %a" cut
      Fmt.(Dump.list (Dump.pair string string))
      recovered
      Fmt.(Dump.list (Dump.pair string string))
      expected
  else true

let arb_crash_scenario =
  let open QCheck in
  let op =
    Gen.(
      map3
        (fun d k v ->
          ( (if d then `Delete else `Put),
            Printf.sprintf "k%d" k,
            Printf.sprintf "v%d" v ))
        (Gen.map (fun n -> n = 0) (int_bound 4))
        (int_bound 12) (int_bound 999))
  in
  make
    ~print:(fun (ops, cut, sb) ->
      Printf.sprintf "ops=%d cut=%d seg_bytes=%d" (List.length ops) cut sb)
    Gen.(
      triple
        (list_size (int_range 1 60) op)
        (int_bound 1200)
        (Gen.map (fun n -> 64 + n) (int_bound 512)))

let test_crash_point_recovery =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"crash-point recovery equals oracle"
       arb_crash_scenario crash_point_prop)

(* --- end-to-end: certified delivery across an injected power cut ----- *)

module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Membership = Tpbs_group.Membership
module Certified = Tpbs_group.Certified

(* A publisher certifies [n_msgs] messages to a subscriber whose
   frontier store is the on-disk log, rigged to lose power after
   [budget] appended bytes. The cut lands at an arbitrary point of an
   arbitrary record — possibly mid-write of the durable frontier.
   After the crash the node reboots: the directory is re-opened (the
   recovery scan truncates any torn tail), a fresh certification
   endpoint re-attaches over the recovered store, and [resume]
   requests sync. The subscriber must end up having delivered every
   message exactly once, in order: the frontier is persisted before
   delivery, so a torn frontier write means "not delivered yet"
   (retransmission fills it in) and a committed one suppresses the
   echo. *)
let certified_crash_prop (n_msgs, budget, seed) =
  with_dir @@ fun dir ->
  let engine = Engine.create ~seed () in
  let net = Net.create engine in
  let n0 = Net.add_node net in
  let n1 = Net.add_node net in
  let group = Membership.create net [ n0; n1 ] in
  let pub =
    Certified.attach group ~me:n0 ~name:"t" ~storage:(Stable.create ())
      ~retry_period:2000
      ~deliver:(fun ~origin:_ _ -> ())
      ()
  in
  let delivered = ref [] in
  let deliver ~origin:_ payload = delivered := payload :: !delivered in
  let log = ref (Log.open_ ~segment_bytes:256 ~dir ()) in
  Log.set_fault !log ~after_bytes:budget;
  let sub =
    ref
      (Certified.attach group ~me:n1 ~name:"t" ~storage:(Log.stable !log)
         ~retry_period:2000 ~deliver ())
  in
  for i = 1 to n_msgs do
    Engine.schedule engine ~delay:(i * 1500) (fun () ->
        Certified.bcast pub (Printf.sprintf "m%d" i))
  done;
  let crashes = ref 0 in
  let rec drive () =
    match Engine.run ~until:2_000_000 engine with
    | () -> ()
    | exception Log.Injected_crash ->
        incr crashes;
        (* The node dies with its store: in-flight traffic to the old
           incarnation is dropped, node-local timers are invalidated. *)
        Net.crash net n1;
        Log.close !log;
        (* Reboot: recovery scan over the same directory, then a fresh
           endpoint over the surviving state. *)
        log := Log.open_ ~segment_bytes:256 ~dir ();
        Net.recover net n1;
        sub :=
          Certified.attach group ~me:n1 ~name:"t" ~storage:(Log.stable !log)
            ~retry_period:2000 ~deliver ();
        Certified.resume !sub;
        drive ()
  in
  drive ();
  Log.close !log;
  let got = List.rev !delivered in
  let want = List.init n_msgs (fun i -> Printf.sprintf "m%d" (i + 1)) in
  if !crashes > 1 then
    QCheck.Test.fail_reportf "single fault budget crashed %d times" !crashes
  else if got <> want then
    QCheck.Test.fail_reportf
      "crash at byte %d: delivered %a, want %a (crashes=%d)" budget
      Fmt.(Dump.list string)
      got
      Fmt.(Dump.list string)
      want !crashes
  else if Certified.low_watermark pub <> n_msgs then
    QCheck.Test.fail_reportf "publisher watermark %d, want %d (frontier lost)"
      (Certified.low_watermark pub)
      n_msgs
  else if Certified.log_size pub <> 0 then
    QCheck.Test.fail_reportf "publisher retains %d entries after full ack"
      (Certified.log_size pub)
  else true

let arb_certified_crash =
  let open QCheck in
  make
    ~print:(fun (n, b, s) ->
      Printf.sprintf "n_msgs=%d budget=%d seed=%d" n b s)
    Gen.(
      triple
        (int_range 3 25)
        (int_range 20 2500)
        (int_range 0 9999))

let test_certified_crash_recovery =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120
       ~name:"certified delivery survives power cut at arbitrary byte"
       arb_certified_crash certified_crash_prop)

let test_fsync_policy () =
  (* Regression: appends used to only flush the channel — good enough
     for a process crash, not for a power cut. [store.fsyncs] counts
     the actual fsync calls, so the policy is observable: off by
     default on [open_], per-append override with [~sync], and the
     [stable] seam defaults it ON (certified commit points must be
     power-cut durable). *)
  with_dir @@ fun dir ->
  let module Trace = Tpbs_trace.Trace in
  let tr = Trace.create () in
  Trace.set_ambient tr;
  let fsyncs () = Trace.Counter.value (Trace.counter tr "store.fsyncs") in
  let t = Log.open_ ~dir () in
  Log.put t "a" "1";
  Alcotest.(check int) "flush-only by default" 0 (fsyncs ());
  Log.put ~sync:true t "a" "2";
  Alcotest.(check int) "explicit sync pays one fsync" 1 (fsyncs ());
  let st = Log.stable t in
  Stable.put st "k" "v";
  Alcotest.(check int) "stable seam fsyncs by default" 2 (fsyncs ());
  Stable.delete st "k";
  Alcotest.(check int) "tombstones fsync too" 3 (fsyncs ());
  let lazy_st = Log.stable ~sync:false t in
  Stable.put lazy_st "k2" "v2";
  Alcotest.(check int) "opt-out honoured" 3 (fsyncs ());
  Log.close t;
  let t = Log.open_ ~fsync:true ~dir () in
  Log.put t "b" "3";
  Alcotest.(check int) "store-wide policy applies to plain put" 4 (fsyncs ());
  Log.close t

let test_group_commit_unit () =
  (* The group-commit seam in isolation: appends are flush-only, the
     deferred fsync is paid (and counted) once per non-empty flush,
     clean flushes are free, and the batch survives reopen. *)
  with_dir @@ fun dir ->
  let module Trace = Tpbs_trace.Trace in
  let tr = Trace.create () in
  Trace.set_ambient tr;
  let commits () =
    Trace.Counter.value (Trace.counter tr "store.group_commits")
  in
  let fsyncs () = Trace.Counter.value (Trace.counter tr "store.fsyncs") in
  let t = Log.open_ ~dir () in
  let st = Log.group_stable t in
  Alcotest.(check bool) "group seam is grouped" true (Stable.grouped st);
  Alcotest.(check bool) "eager seam is not" false (Stable.grouped (Log.stable t));
  Alcotest.(check bool) "model disk is not" false
    (Stable.grouped (Stable.create ()));
  Stable.put st "k1" "v1";
  Stable.put st "k2" "v2";
  Stable.put st "k1" "v1'";
  Alcotest.(check int) "appends defer the fsync" 0 (fsyncs ());
  Alcotest.(check int) "no commit yet" 0 (commits ());
  Stable.flush st;
  Alcotest.(check int) "whole batch = one commit" 1 (commits ());
  Stable.flush st;
  Alcotest.(check int) "clean flush is free" 1 (commits ());
  Stable.delete st "k2";
  Stable.flush st;
  Alcotest.(check int) "tombstones dirty the group" 2 (commits ());
  Log.close t;
  let t = Log.open_ ~dir () in
  Alcotest.(check (list (pair string string)))
    "batched state survives reopen" [ ("k1", "v1'") ] (contents t);
  Log.close t

let test_group_commit_per_tick () =
  (* Wired through the engine: a grouped storage behind a certified
     channel makes every frontier/watermark persist of a tick coalesce
     into one commit at the tick barrier, instead of one fsync per
     record (the [stable] seam's default). *)
  with_dir @@ fun dir ->
  let module Trace = Tpbs_trace.Trace in
  let module Pubsub = Tpbs_core.Pubsub in
  let module Registry = Tpbs_types.Registry in
  let module Vtype = Tpbs_types.Vtype in
  let module Obvent = Tpbs_obvent.Obvent in
  let module Value = Tpbs_serial.Value in
  let tr = Trace.create () in
  Trace.set_ambient tr;
  let commits () =
    Trace.Counter.value (Trace.counter tr "store.group_commits")
  in
  let reg = Registry.create () in
  Registry.declare_class reg ~name:"CertMsg" ~implements:[ "Certified" ]
    ~attrs:[ "n", Vtype.Tint ]
    ();
  let engine = Engine.create ~seed:3 () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in
  let t = Log.open_ ~dir () in
  let st1 = Log.group_stable t in
  (* Certified state is keyed per channel, not per node: each process
     needs its own backend. The publisher keeps the model disk; the
     subscriber's frontier goes through the grouped log. *)
  let p0 =
    Pubsub.Process.create domain ~storage:(Stable.create ()) (Net.add_node net)
  in
  let p1 = Pubsub.Process.create domain ~storage:st1 (Net.add_node net) in
  let s = Pubsub.Process.subscribe p1 ~param:"CertMsg" (fun _ -> ()) in
  Pubsub.Subscription.activate s;
  let n = 5 in
  for i = 1 to n do
    Pubsub.Process.publish p0 (Obvent.make reg "CertMsg" [ "n", Value.Int i ])
  done;
  Engine.run engine;
  Alcotest.(check int) "all certified messages delivered" n
    (Pubsub.Subscription.delivered s);
  let appends = (Log.stats t).Log.appends in
  Alcotest.(check bool) "certified state reached the log" true (appends > 0);
  Alcotest.(check bool) "ticks commit" true (commits () >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "commits (%d) coalesce appends (%d)" (commits ()) appends)
    true
    (commits () <= appends);
  (* Nothing is left hanging: the tick barrier flushed every dirty
     batch, so a manual flush now finds both storages clean. *)
  let before = commits () in
  Stable.flush st1;
  Alcotest.(check int) "no dirty tail after the run" before (commits ());
  Log.close t

let suite =
  ( "store",
    [
      Alcotest.test_case "roundtrip + reopen" `Quick test_roundtrip_reopen;
      Alcotest.test_case "CRC rejection truncates at corruption" `Quick
        test_crc_rejection;
      Alcotest.test_case "torn tail truncation" `Quick test_torn_tail_truncation;
      Alcotest.test_case "segment rotation" `Quick test_rotation;
      Alcotest.test_case "merge compaction" `Quick test_compaction;
      Alcotest.test_case "fast segment drop bounds disk" `Quick
        test_fast_drop_bounds_disk;
      Alcotest.test_case "auto-compaction bounds disk" `Quick
        test_auto_compact_bounds_disk;
      Alcotest.test_case "fault injection: torn write then recovery" `Quick
        test_fault_injection_basic;
      Alcotest.test_case "Stable adapter over the log" `Quick test_stable_adapter;
      Alcotest.test_case "fsync policy observable" `Quick test_fsync_policy;
      Alcotest.test_case "group commit: one fsync per flushed batch" `Quick
        test_group_commit_unit;
      Alcotest.test_case "group commit: coalesced at the engine tick" `Quick
        test_group_commit_per_tick;
      test_crash_point_recovery;
      test_certified_crash_recovery;
    ] )
