(* Static analyzer (lib/analysis) + the satellites riding with it:
   Expr.simplify, Subsume satisfiability, engine-side pruning of
   provably-false filters, and the golden lint report over
   examples/lint_demo.javaps. *)

open Helpers
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Rfilter = Tpbs_filter.Rfilter
module Subsume = Tpbs_filter.Subsume
module Absint = Tpbs_analysis.Absint
module Lint = Tpbs_analysis.Lint
module Compile = Tpbs_psc.Compile
module Pubsub = Tpbs_core.Pubsub
module Fspec = Tpbs_core.Fspec
module Domain = Pubsub.Domain
module Process = Pubsub.Process
module Subscription = Pubsub.Subscription

let price = Expr.getter [ "getPrice" ]
let amount = Expr.getter [ "getAmount" ]
let company = Expr.getter [ "getCompany" ]

let lift e =
  match Rfilter.of_expr ~env:[] ~param:"StockQuote" e with
  | Some rf -> rf
  | None -> Alcotest.failf "expected liftable filter: %a" Expr.pp e

(* --- Expr.simplify ---------------------------------------------------- *)

let test_simplify_folds () =
  let open Expr in
  Alcotest.check expr_testable "constant arithmetic folds"
    (price <. float 100.)
    (simplify (price <. Binop (Add, float 50., float 50.)));
  Alcotest.check expr_testable "x && true -> x"
    (price <. int 10)
    (simplify (price <. int 10 &&& bool true));
  Alcotest.check expr_testable "true && x -> x"
    (price <. int 10)
    (simplify (bool true &&& (price <. int 10)));
  Alcotest.check expr_testable "false && x -> false (short-circuit)"
    (bool false)
    (simplify (bool false &&& (price <. int 10)));
  Alcotest.check expr_testable "x || false -> x"
    (amount >. int 5)
    (simplify (amount >. int 5 ||| bool false));
  Alcotest.check expr_testable "true || x -> true"
    (bool true)
    (simplify (bool true ||| (price <. int 10)));
  Alcotest.check expr_testable "double negation"
    (price <. int 10)
    (simplify (Unop (Not, Unop (Not, price <. int 10))));
  Alcotest.check expr_testable "constant comparison folds"
    (bool true)
    (simplify (Binop (Lt, int 1, int 2)))

let test_simplify_keeps_raising () =
  let open Expr in
  let div0 = Binop (Div, int 1, int 0) in
  Alcotest.check expr_testable "1/0 stays unfolded" div0 (simplify div0);
  (* x && false must NOT fold to false: x may raise, and the evaluator
     sees x first. *)
  let raising = Binop (Div, int 1, int 0) =. int 1 &&& bool false in
  Alcotest.check expr_testable "raising && false stays" raising
    (simplify raising)

(* Richer generator than gen_stock_expr: arithmetic (incl. division
   and modulo by possibly-zero subexpressions) below comparisons, so
   the preservation property also covers raising evaluations. *)
let gen_arith_cmp =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ return price; return amount;
        map Expr.int (int_range (-3) 3);
        map (fun i -> Expr.float (float_of_int i)) (int_range (-3) 3) ]
  in
  let num =
    fix (fun self depth ->
        if depth = 0 then leaf
        else
          let sub = self (depth - 1) in
          frequency
            [ 3, leaf;
              2, map2 (fun a b -> Expr.Binop (Add, a, b)) sub sub;
              2, map2 (fun a b -> Expr.Binop (Mul, a, b)) sub sub;
              1, map2 (fun a b -> Expr.Binop (Sub, a, b)) sub sub;
              1, map2 (fun a b -> Expr.Binop (Div, a, b)) sub sub;
              1, map2 (fun a b -> Expr.Binop (Mod, a, b)) sub sub;
              1, map (fun a -> Expr.Unop (Neg, a)) sub ])
  in
  int_range 0 2 >>= fun d1 ->
  int_range 0 2 >>= fun d2 ->
  num d1 >>= fun a ->
  num d2 >>= fun b ->
  oneofl Expr.[ Lt; Le; Gt; Ge; Eq; Ne ] >>= fun op ->
  return (Expr.Binop (op, a, b))

let gen_arith_expr =
  let open QCheck.Gen in
  sized_size (int_range 0 2)
  @@ fix (fun self depth ->
         if depth = 0 then gen_arith_cmp
         else
           let sub = self (depth - 1) in
           frequency
             [ 3, gen_arith_cmp;
               2, map2 (fun a b -> Expr.Binop (And, a, b)) sub sub;
               2, map2 (fun a b -> Expr.Binop (Or, a, b)) sub sub;
               1, map (fun e -> Expr.Unop (Not, e)) sub ])

let arb_arith_expr = QCheck.make ~print:Expr.to_string gen_arith_expr

let simplify_preserves_eval arb =
  QCheck.Test.make ~count:500 ~name:"simplify preserves eval" arb (fun e ->
      let reg = stock_registry () in
      let args =
        [ quote reg ();
          quote reg ~price:5. ~amount:0 ();
          quote reg ~price:200. ~amount:1000 ~company:"Acme Corp" ();
          quote reg ~price:0. ~amount:3 ~company:"" () ]
      in
      let run e arg =
        match Expr.eval reg ~env:[] ~arg e with
        | v -> Ok v
        | exception Expr.Eval_error _ -> Error ()
      in
      let e' = Expr.simplify e in
      List.for_all
        (fun arg ->
          match run e arg, run e' arg with
          | Ok a, Ok b -> Value.equal a b
          | Error (), Error () -> true
          | Ok _, Error () | Error (), Ok _ -> false)
        args)

(* --- Subsume satisfiability ------------------------------------------- *)

let test_unsat_bounds () =
  let open Expr in
  Alcotest.(check bool)
    "crossed bounds" true
    (Subsume.unsat (lift (price <. float 10. &&& (price >. float 20.))));
  Alcotest.(check bool)
    "touching strict bound" true
    (Subsume.unsat (lift (price <. float 10. &&& (price >=. float 10.))));
  Alcotest.(check bool)
    "satisfiable band" false
    (Subsume.unsat (lift (price >. float 10. &&& (price <. float 20.))));
  Alcotest.(check bool)
    "closed singleton is satisfiable" false
    (Subsume.unsat (lift (price <=. float 10. &&& (price >=. float 10.))))

let test_unsat_eq_ne () =
  let open Expr in
  Alcotest.(check bool)
    "eq conflicts with ne" true
    (Subsume.unsat (lift (price =. int 5 &&& (price <>. int 5))));
  Alcotest.(check bool)
    "promoted eq/ne conflict" true
    (Subsume.unsat (lift (price =. int 5 &&& (price <>. float 5.))));
  Alcotest.(check bool)
    "two different eq" true
    (Subsume.unsat (lift (price =. int 5 &&& (price =. int 6))));
  Alcotest.(check bool)
    "promoted equal eqs are satisfiable" false
    (Subsume.unsat (lift (price =. int 5 &&& (price =. float 5.))));
  Alcotest.(check bool)
    "string eq vs contains" true
    (Subsume.unsat
       (lift
          (Binop (Contains, company, str "xyz") &&& (company =. str "Acme"))))

let test_unsat_structure () =
  let open Expr in
  Alcotest.(check bool)
    "dead arm does not kill the disjunction" false
    (Subsume.unsat
       (lift (price <. float 10. &&& (price >. float 20.) ||| (amount >. int 5))));
  Alcotest.(check bool)
    "all arms dead" true
    (Subsume.unsat
       (lift
          (price <. float 10. &&& (price >. float 20.)
          ||| (amount >. int 5 &&& (amount <. int 2)))));
  (* Negative conjunct entailed by the positives. *)
  Alcotest.(check bool)
    "entailed negation" true
    (Subsume.unsat
       (lift (price <. float 10. &&& Unop (Not, price <. float 50.))))

(* --- Absint verdicts --------------------------------------------------- *)

let test_verdicts () =
  let reg = stock_registry () in
  let verdict e = Absint.filter_verdict reg ~param:"StockQuote" (lift e) in
  let open Expr in
  Alcotest.(check bool)
    "contradiction is Unsat" true
    (verdict (price <. float 10. &&& (price >. float 20.)) = Absint.Unsat);
  Alcotest.(check bool)
    "overlapping disjunction is Tautology" true
    (verdict (price <. float 100. ||| (price >=. float 50.))
    = Absint.Tautology);
  Alcotest.(check bool)
    "exact complement split is Tautology" true
    (verdict (price <. float 100. ||| (price >=. float 100.))
    = Absint.Tautology);
  (* getCompany is a String: it can be null, both atoms then evaluate
     false, so the split is NOT a tautology. *)
  Alcotest.(check bool)
    "nullable string split is not a tautology" true
    (verdict (company =. str "A" ||| (company <>. str "A")) = Absint.Sat);
  Alcotest.(check bool)
    "normal filter is Sat" true
    (verdict (price <. float 100.) = Absint.Sat)

let test_kind_mismatch_atom () =
  let reg = stock_registry () in
  (* A numeric bound on the string-typed getCompany can never hold;
     built directly (the typechecker would reject the source form). *)
  let rf = lift Expr.(company >. int 10) in
  Alcotest.(check bool)
    "numeric bound on string path is Unsat" true
    (Absint.filter_verdict reg ~param:"StockQuote" rf = Absint.Unsat)

let test_contradictory_conjuncts () =
  let reg = stock_registry () in
  let open Expr in
  let rf =
    lift (price <. float 10. &&& (price >. float 20.) ||| (amount >. int 5))
  in
  Alcotest.(check int)
    "one dead conjunction" 1
    (List.length (Absint.contradictory_conjuncts reg ~param:"StockQuote" rf));
  Alcotest.(check bool)
    "whole filter still Sat" true
    (Absint.filter_verdict reg ~param:"StockQuote" rf = Absint.Sat)

let test_div_risks () =
  let open Expr in
  (match Absint.div_risks (Binop (Div, amount, int 0) =. int 1) with
  | [ r ] -> Alcotest.(check bool) "constant zero is definite" true r.definite
  | rs -> Alcotest.failf "expected 1 risk, got %d" (List.length rs));
  (match
     Absint.div_risks (Binop (Div, int 100, Binop (Mod, amount, int 3)) >. int 2)
   with
  | [ r ] ->
      Alcotest.(check bool) "mod interval contains zero" false r.definite
  | rs -> Alcotest.failf "expected 1 risk, got %d" (List.length rs));
  Alcotest.(check int)
    "unbounded divisor is not reported" 0
    (List.length (Absint.div_risks (Binop (Div, price, amount) >. int 1)))

(* --- Compile integration ---------------------------------------------- *)

let test_simplify_lifts_in_compile () =
  let src =
    {|
      class Quote implements Obvent { double price; }
      process p {
        Subscription s = subscribe (Quote q) {
          return q.getPrice() < 50 + 50 && true;
        } { print("x"); };
        s.activate();
      }
    |}
  in
  let c = Compile.compile_string src in
  match c.Compile.sub_plans with
  | [ sp ] -> (
      match sp.Compile.sp_class with
      | Compile.Remote_filter rf ->
          Alcotest.(check string)
            "folded to a single atom" "getPrice < 100"
            (Fmt.str "%a" Rfilter.pp_formula rf.Rfilter.formula)
      | _ -> Alcotest.fail "expected Remote_filter after simplification")
  | _ -> Alcotest.fail "expected exactly one sub plan"

let test_compile_result_collects () =
  let src =
    {|
      class Broken extends Nonexistent {}
      process a { publish new Missing("x"); }
      process b { publish new AlsoMissing("y"); }
    |}
  in
  match Compile.compile_result (Tpbs_psc.Pparser.program_of_string src) with
  | Ok _ -> Alcotest.fail "expected compile errors"
  | Error msgs ->
      Alcotest.(check int) "all three errors collected" 3 (List.length msgs);
      (* compile (raising form) reports exactly the first collected
         error. *)
      let first =
        match Compile.compile (Tpbs_psc.Pparser.program_of_string src) with
        | exception Compile.Compile_error m -> m
        | _ -> Alcotest.fail "compile should raise"
      in
      Alcotest.(check string) "raise = first" (List.hd msgs) first

(* --- golden lint report ------------------------------------------------ *)

(* cwd is _build/default/test under [dune runtest] but the project
   root under [dune exec]. *)
let example name =
  List.find Sys.file_exists [ "../examples/" ^ name; "examples/" ^ name ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let astr_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_lint_demo_golden () =
  let c = Compile.compile_string (read_file (example "lint_demo.javaps")) in
  let got = Lint.to_json (Lint.analyze c) in
  let expected = read_file (example "lint_demo.expected.json") in
  Alcotest.(check string) "golden JSON report" expected got;
  let codes =
    List.sort_uniq String.compare
      (List.map (fun d -> d.Lint.code) (Lint.analyze c))
  in
  Alcotest.(check (list string))
    "all six diagnostic classes"
    [ "TP001"; "TP002"; "TP005"; "TP006"; "TP007"; "TP008" ]
    codes

let test_lint_stock_clean () =
  let c = Compile.compile_string (read_file (example "stock.javaps")) in
  let diags = Lint.analyze c in
  (* the broker process captures [limit], so the only finding is the
     TP014 info note naming it — never a warning, never gating *)
  Alcotest.(check (list string))
    "stock.javaps: only the capture note"
    [ "TP014" ]
    (List.map (fun d -> d.Lint.code) diags);
  (match diags with
  | [ d ] ->
      Alcotest.(check bool) "TP014 is info" true (d.Lint.severity = Lint.Info);
      Alcotest.(check bool)
        "note names the captured variable" true
        (astr_contains d.Lint.message "limit")
  | _ -> Alcotest.fail "expected exactly one finding");
  Alcotest.(check int) "exit code 0 even with werror" 0
    (Lint.exit_code ~werror:true diags)

(* --- deployment-wide lint over examples/fleet --------------------------- *)

let load_fleet () =
  match Tpbs_analysis.Deploy.load (example "fleet/manifest.json") with
  | Ok d -> d
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)

let test_fleet_golden () =
  let d = load_fleet () in
  let diags = Lint.analyze_deployment d in
  let got = Lint.to_json diags in
  let expected = read_file (example "fleet/fleet.expected.json") in
  Alcotest.(check string) "golden deployment report" expected got;
  Alcotest.(check (list string))
    "all six deployment diagnostic classes"
    [ "TP009"; "TP010"; "TP011"; "TP012"; "TP013"; "TP014" ]
    (List.sort_uniq String.compare (List.map (fun d -> d.Lint.code) diags));
  (* without --witness the payload is stripped from the JSON *)
  Alcotest.(check bool)
    "strip_witnesses removes the payload" false
    (astr_contains (Lint.to_json (Lint.strip_witnesses diags)) "\"witness\":")

(* The TP011 witness is not advisory: re-check the claim it encodes —
   a conforming FleetQuote matched by no subscription of the broker
   group — against the actual subscription filters. *)
let test_fleet_witness_checked () =
  let d = load_fleet () in
  let diags = Lint.analyze_deployment d in
  let w =
    match
      List.find_opt (fun dg -> dg.Lint.code = "TP011") diags
    with
    | Some { Lint.witness = Some w; _ } -> w
    | Some { Lint.witness = None; _ } ->
        Alcotest.fail "TP011 reported without witness"
    | None -> Alcotest.fail "TP011 not reported"
  in
  let reg = d.Tpbs_analysis.Deploy.d_registry in
  Alcotest.(check bool)
    "witness conforms to FleetQuote" true
    (Registry.conforms reg w "FleetQuote");
  List.iter
    (fun (u : Tpbs_analysis.Deploy.unit_) ->
      List.iter
        (fun (sp : Compile.sub_plan) ->
          if
            Registry.subtype reg "FleetQuote" sp.Compile.sp_param
            && sp.Compile.sp_captured = []
          then
            match sp.Compile.sp_class with
            | Compile.Remote_filter rf ->
                Alcotest.(check bool)
                  (Fmt.str "witness escapes %s/%s" u.u_name sp.sp_var)
                  false (Rfilter.eval rf w)
            | _ -> ())
        u.u_compiled.Compile.sub_plans)
    d.d_units

(* --- engine-side pruning ------------------------------------------------ *)

(* Two worlds, same seed and same event stream: world A subscribes
   with Tree filters (the engine prunes the provably-false ones),
   world B with semantically-identical opaque closures (never pruned,
   evaluated per event). Delivered counts must agree subscription by
   subscription. *)
let filters () =
  let open Expr in
  [ price <. float 100.;
    price <. float 10. &&& (price >. float 20.);  (* unsat *)
    amount >. int 5 &&& (amount <. int 2);  (* unsat *)
    company =. str "Acme Corp";
    price >=. float 50. &&& (price <=. float 90.) ]

let run_world ~seed ~as_closure ~with_broker () =
  let reg = stock_registry () in
  let engine = Engine.create ~seed () in
  let net = Net.create engine in
  let domain = Domain.create reg net in
  let n = 4 in
  let procs = Array.init n (fun _ -> Process.create domain (Net.add_node net)) in
  let broker_proc =
    if with_broker then Some (Process.create domain (Net.add_node net))
    else None
  in
  (match broker_proc with
  | Some b -> Pubsub.add_broker domain b
  | None -> ());
  let subs =
    List.mapi
      (fun i e ->
        let filter =
          if as_closure then
            Fspec.closure (fun o ->
                match Expr.eval_bool reg ~env:[] ~arg:o e with
                | b -> b
                | exception Expr.Eval_error _ -> false)
          else Fspec.tree e
        in
        let s =
          Process.subscribe
            procs.(1 + (i mod (n - 1)))
            ~param:"StockQuote" ~filter
            (fun _ -> ())
        in
        Subscription.activate s;
        s)
      (filters ())
  in
  Engine.run engine;
  let prices = [ 5.; 15.; 55.; 80.; 95.; 120.; 200. ] in
  List.iteri
    (fun i p ->
      let company = if i mod 2 = 0 then "Acme Corp" else "Telco Mobiles" in
      Pubsub.Process.publish procs.(0) (quote reg ~price:p ~company ()))
    (prices @ prices);
  Engine.run engine;
  List.map Subscription.delivered subs, Domain.stats domain, subs

let test_pruned_delivery_equivalence () =
  List.iter
    (fun with_broker ->
      List.iter
        (fun seed ->
          let tree_del, tree_stats, tree_subs =
            run_world ~seed ~as_closure:false ~with_broker ()
          in
          let clos_del, clos_stats, _ =
            run_world ~seed ~as_closure:true ~with_broker ()
          in
          Alcotest.(check (list int))
            (Fmt.str "per-subscription deliveries (seed %d, broker %b)" seed
               with_broker)
            clos_del tree_del;
          Alcotest.(check int)
            "two filters pruned in the tree world" 2
            tree_stats.Domain.filters_pruned;
          Alcotest.(check int)
            "closures are never pruned" 0 clos_stats.Domain.filters_pruned;
          Alcotest.(check (list bool))
            "pruned flags match the contradictory filters"
            [ false; true; true; false; false ]
            (List.map Subscription.is_pruned tree_subs))
        [ 7; 42 ])
    [ false; true ]

let test_pruning_skips_broker_registration () =
  (* The pruned subscription must not even register with the filtering
     host: compare control traffic against a world where the same
     filter is satisfiable. *)
  let control ~e =
    let reg = stock_registry () in
    let engine = Engine.create ~seed:3 () in
    let net = Net.create engine in
    let domain = Domain.create reg net in
    let p0 = Process.create domain (Net.add_node net) in
    let pb = Process.create domain (Net.add_node net) in
    Pubsub.add_broker domain pb;
    let s =
      Process.subscribe p0 ~param:"StockQuote" ~filter:(Fspec.tree e)
        (fun _ -> ())
    in
    Subscription.activate s;
    Engine.run engine;
    (Domain.stats domain).Domain.control_messages
  in
  let open Expr in
  let sat = control ~e:(price <. float 100.) in
  let unsat = control ~e:(price <. float 10. &&& (price >. float 20.)) in
  Alcotest.(check bool) "sat filter registers" true (sat > 0);
  Alcotest.(check int) "pruned filter sends no control message" 0 unsat

let suite =
  ( "analysis",
    [ Alcotest.test_case "simplify: folds" `Quick test_simplify_folds;
      Alcotest.test_case "simplify: raising preserved" `Quick
        test_simplify_keeps_raising;
      Alcotest.test_case "subsume: unsat bounds" `Quick test_unsat_bounds;
      Alcotest.test_case "subsume: unsat eq/ne" `Quick test_unsat_eq_ne;
      Alcotest.test_case "subsume: formula structure" `Quick
        test_unsat_structure;
      Alcotest.test_case "absint: verdicts" `Quick test_verdicts;
      Alcotest.test_case "absint: kind mismatch" `Quick
        test_kind_mismatch_atom;
      Alcotest.test_case "absint: contradictory conjuncts" `Quick
        test_contradictory_conjuncts;
      Alcotest.test_case "absint: division by zero" `Quick test_div_risks;
      Alcotest.test_case "compile: simplify lifts" `Quick
        test_simplify_lifts_in_compile;
      Alcotest.test_case "compile: collects all errors" `Quick
        test_compile_result_collects;
      Alcotest.test_case "lint: golden report" `Quick test_lint_demo_golden;
      Alcotest.test_case "lint: fleet deployment golden" `Quick
        test_fleet_golden;
      Alcotest.test_case "lint: fleet witness machine-checked" `Quick
        test_fleet_witness_checked;
      Alcotest.test_case "lint: stock.javaps clean" `Quick
        test_lint_stock_clean;
      Alcotest.test_case "pubsub: pruned delivery equivalence" `Quick
        test_pruned_delivery_equivalence;
      Alcotest.test_case "pubsub: pruning skips broker" `Quick
        test_pruning_skips_broker_registration ]
    @ List.map
        (QCheck_alcotest.to_alcotest ~long:false)
        [ simplify_preserves_eval arb_stock_expr;
          simplify_preserves_eval arb_arith_expr ] )
