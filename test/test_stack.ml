(* The QoS composition matrix (Fig. 3/4): every reachable lattice
   point maps to a layer stack, and each assembled stack delivers the
   semantics its markers promise — including the composed points
   (Certified+FIFO, Certified+Total, Causal+Total) the old one-pick
   dispatch silently weakened. *)

module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Stable = Tpbs_sim.Stable
module Qos = Tpbs_types.Qos
module Registry = Tpbs_types.Registry
module Membership = Tpbs_group.Membership
module Layer = Tpbs_group.Layer
module Seqspace = Tpbs_group.Seqspace
module Stack = Tpbs_group.Stack
module Gossip = Tpbs_group.Gossip
module Pubsub = Tpbs_core.Pubsub
module Value = Tpbs_serial.Value
module Obvent = Tpbs_obvent.Obvent
module Vtype = Tpbs_types.Vtype

let profile ?(reliable = false) ?(certified = false) ?(order = Qos.No_order)
    () =
  fst
    (Qos.resolve
       { Qos.reliable; certified; order; prioritary = false; timely = false })

(* --- harness: n member stacks over one simulated net ----------------- *)

type world = {
  engine : Engine.t;
  net : Net.t;
  group : Membership.t;
  nodes : Net.node_id array;
  logs : (Net.node_id * string) list ref array;
  stacks : Stack.t array;
}

let make_world ?(n = 4) ?(config = Net.default_config) ?(seed = 7) ?transport
    prof =
  let engine = Engine.create ~seed () in
  let net = Net.create ~config engine in
  let nodes = Array.init n (fun _ -> Net.add_node net) in
  let group = Membership.create net (Array.to_list nodes) in
  let logs = Array.init n (fun _ -> ref []) in
  let stacks =
    Array.mapi
      (fun i me ->
        let transport =
          match transport with None -> Stack.Best | Some f -> f ~me
        in
        Stack.assemble prof ~transport ~storage:(Stable.create ()) ~group ~me
          ~name:"t"
          ~deliver:(fun ~origin payload ->
            logs.(i) := (origin, payload) :: !(logs.(i)))
          ())
      nodes
  in
  { engine; net; group; nodes; logs; stacks }

let log w i = List.rev !(w.logs.(i))
let payloads w i = List.map snd (log w i)

let from_origin w i origin =
  List.filter_map
    (fun (o, p) -> if o = origin then Some p else None)
    (log w i)

(* --- stack shapes ------------------------------------------------------ *)

let shape_of ?transport prof =
  let w = make_world ~n:3 ?transport prof in
  Stack.shape w.stacks.(0)

let check_shape name prof expected =
  Alcotest.(check (list string)) name expected (shape_of prof)

let test_shape_matrix () =
  check_shape "plain" (profile ()) [ "transport:best" ];
  check_shape "reliable" (profile ~reliable:true ()) [ "rel"; "transport:best" ];
  check_shape "fifo"
    (profile ~order:Qos.Fifo ())
    [ "order:fifo"; "rel"; "transport:best" ];
  check_shape "causal"
    (profile ~order:Qos.Causal ())
    [ "order:causal"; "rel"; "transport:best" ];
  check_shape "total"
    (profile ~order:Qos.Total ())
    [ "order:total"; "rel"; "transport:best" ];
  check_shape "causal+total"
    (profile ~order:Qos.Causal_total ())
    [ "order:causal+total"; "rel"; "transport:best" ];
  check_shape "certified" (profile ~certified:true ()) [ "certified" ];
  (* Certified delivery is already per-publisher contiguous: FIFO is
     subsumed, not dropped. *)
  check_shape "certified+fifo"
    (profile ~certified:true ~order:Qos.Fifo ())
    [ "certified" ];
  check_shape "certified+causal"
    (profile ~certified:true ~order:Qos.Causal ())
    [ "order:causal"; "certified" ];
  check_shape "certified+total"
    (profile ~certified:true ~order:Qos.Total ())
    [ "order:total"; "certified" ];
  check_shape "certified+causal+total"
    (profile ~certified:true ~order:Qos.Causal_total ())
    [ "order:causal+total"; "certified" ]

let gossip_transport ~me:_ = Stack.Gossip_net (Gossip.default_config, [])

let test_shape_gossip () =
  let shape prof = shape_of ~transport:gossip_transport prof in
  Alcotest.(check (list string))
    "plain over gossip" [ "transport:gossip" ]
    (shape (profile ()));
  (* The epidemic's redundancy substitutes for the flood layer. *)
  Alcotest.(check (list string))
    "fifo over gossip"
    [ "order:fifo"; "transport:gossip" ]
    (shape (profile ~order:Qos.Fifo ()));
  Alcotest.(check (list string))
    "total over gossip"
    [ "order:total"; "transport:gossip" ]
    (shape (profile ~order:Qos.Total ()));
  (* Certified needs unicast acks/sync: it displaces the gossip
     override. *)
  Alcotest.(check (list string))
    "certified displaces gossip" [ "certified" ]
    (shape (profile ~certified:true ()))

let test_shape_from_registry () =
  let reg = Registry.create () in
  List.iter
    (fun (name, itfs) ->
      Registry.declare_class reg ~name ~implements:("Obvent" :: itfs) ())
    [ ("Plain", []); ("CF", [ "Certified"; "FIFOOrder" ]);
      ("CT", [ "Certified"; "TotalOrder" ]);
      ("CCT", [ "Certified"; "CausalOrder"; "TotalOrder" ]);
      ("CaT", [ "CausalOrder"; "TotalOrder" ]) ];
  let shape cls = shape_of (fst (Qos.of_type reg cls)) in
  Alcotest.(check (list string)) "Plain" [ "transport:best" ] (shape "Plain");
  Alcotest.(check (list string)) "Certified+FIFO" [ "certified" ] (shape "CF");
  Alcotest.(check (list string))
    "Certified+Total"
    [ "order:total"; "certified" ]
    (shape "CT");
  Alcotest.(check (list string))
    "Certified+Causal+Total"
    [ "order:causal+total"; "certified" ]
    (shape "CCT");
  Alcotest.(check (list string))
    "Causal+Total"
    [ "order:causal+total"; "rel"; "transport:best" ]
    (shape "CaT")

let test_targeted_only_plain () =
  let has_targeted prof =
    let w = make_world ~n:3 prof in
    Stack.targeted w.stacks.(0) <> None
  in
  Alcotest.(check bool) "plain best-effort is targetable" true
    (has_targeted (profile ()));
  Alcotest.(check bool) "reliable is not" false
    (has_targeted (profile ~reliable:true ()));
  Alcotest.(check bool) "certified is not" false
    (has_targeted (profile ~certified:true ()));
  Alcotest.(check bool) "ordered is not" false
    (has_targeted (profile ~order:Qos.Fifo ()))

(* --- delivered-semantics invariants, one per lattice point ------------ *)

(* Schedule [k] publishes from each of [pubs], interleaved. *)
let publish_interleaved w ~pubs ~k =
  List.iter
    (fun p ->
      for i = 0 to k - 1 do
        Engine.schedule w.engine ~delay:(100 * ((i * List.length pubs) + p))
          (fun () ->
            Stack.bcast w.stacks.(p) (Printf.sprintf "p%d-%d" p i))
      done)
    pubs

let expect_seq p k = List.init k (fun i -> Printf.sprintf "p%d-%d" p i)

let test_cert_fifo_loss () =
  (* Certified+FIFO under 30% loss: every member delivers every
     message of every publisher, in publication order. *)
  let w =
    make_world ~n:4
      ~config:{ Net.default_config with loss = 0.3 }
      (profile ~certified:true ~order:Qos.Fifo ())
  in
  publish_interleaved w ~pubs:[ 0; 1 ] ~k:10;
  Engine.run ~until:3_000_000 w.engine;
  Array.iteri
    (fun i _ ->
      List.iter
        (fun p ->
          Alcotest.(check (list string))
            (Printf.sprintf "node %d, publisher %d: ordered and complete" i p)
            (expect_seq p 10)
            (from_origin w i w.nodes.(p)))
        [ 0; 1 ])
    w.nodes

let test_cert_fifo_crash_resume () =
  (* Gap recovery: a subscriber misses messages while down, recovers,
     and Stack.resume re-activates certification — the gap fills and
     order is preserved (never m3 before m1). *)
  let w = make_world ~n:3 (profile ~certified:true ~order:Qos.Fifo ()) in
  for i = 0 to 2 do
    Engine.schedule w.engine ~delay:(100 * i) (fun () ->
        Stack.bcast w.stacks.(0) (Printf.sprintf "p0-%d" i))
  done;
  Engine.run ~until:20_000 w.engine;
  Net.crash w.net w.nodes.(1);
  for i = 3 to 5 do
    Engine.schedule w.engine ~delay:(100 * i) (fun () ->
        Stack.bcast w.stacks.(0) (Printf.sprintf "p0-%d" i))
  done;
  Engine.run ~until:(Engine.now w.engine + 30_000) w.engine;
  Net.recover w.net w.nodes.(1);
  Stack.resume w.stacks.(1);
  Engine.run ~until:(Engine.now w.engine + 400_000) w.engine;
  Alcotest.(check (list string))
    "recovered subscriber: complete, ordered, no duplicates"
    (expect_seq 0 6)
    (from_origin w 1 w.nodes.(0));
  Alcotest.(check (list string))
    "up subscriber: complete and ordered" (expect_seq 0 6)
    (from_origin w 2 w.nodes.(0))

let test_cert_total_loss () =
  (* Certified+Total under loss: all members deliver the full agreed
     sequence — identical everywhere, nothing missing (plain Total
     only promises a common prefix under loss; certification closes
     the gaps). *)
  let w =
    make_world ~n:4
      ~config:{ Net.default_config with loss = 0.25 }
      (profile ~certified:true ~order:Qos.Total ())
  in
  publish_interleaved w ~pubs:[ 1; 2 ] ~k:8;
  Engine.run ~until:3_000_000 w.engine;
  let reference = log w 0 in
  Alcotest.(check int) "all 16 delivered" 16 (List.length reference);
  Array.iteri
    (fun i _ ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d agrees with node 0" i)
        reference (log w i))
    w.nodes

let test_cert_total_crash_resume () =
  let w = make_world ~n:3 (profile ~certified:true ~order:Qos.Total ()) in
  publish_interleaved w ~pubs:[ 0; 2 ] ~k:3;
  Engine.run ~until:20_000 w.engine;
  Net.crash w.net w.nodes.(2);
  for i = 3 to 5 do
    Engine.schedule w.engine ~delay:(100 * i) (fun () ->
        Stack.bcast w.stacks.(0) (Printf.sprintf "p0-%d" i))
  done;
  Engine.run ~until:(Engine.now w.engine + 30_000) w.engine;
  Net.recover w.net w.nodes.(2);
  Stack.resume w.stacks.(2);
  Engine.run ~until:(Engine.now w.engine + 400_000) w.engine;
  let reference = log w 0 in
  Alcotest.(check int) "all 9 delivered" 9 (List.length reference);
  Alcotest.(check (list (pair int string)))
    "recovered member converges to the agreed sequence" reference (log w 2)

let test_causal_total_stack () =
  (* Cause and effect through the composed stack: node 1 publishes its
     effect only after delivering node 0's cause; everyone must
     deliver cause before effect, in one agreed order. *)
  let w = make_world ~n:3 (profile ~order:Qos.Causal_total ()) in
  let fired = ref false in
  Engine.schedule w.engine ~delay:0 (fun () -> Stack.bcast w.stacks.(0) "cause");
  (* React from a poll: publish the effect right after the cause
     arrives at node 1. *)
  let rec poll () =
    if (not !fired) && List.mem "cause" (payloads w 1) then begin
      fired := true;
      Stack.bcast w.stacks.(1) "effect"
    end
    else if not !fired then Engine.schedule w.engine ~delay:500 poll
  in
  Engine.schedule w.engine ~delay:100 poll;
  Engine.run ~until:1_000_000 w.engine;
  let reference = log w 0 in
  Alcotest.(check (list string)) "cause precedes effect" [ "cause"; "effect" ]
    (payloads w 0);
  Array.iteri
    (fun i _ ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d shares the agreed order" i)
        reference (log w i))
    w.nodes

let test_gossip_fifo_prefix () =
  (* FIFO over the epidemic transport: delivery may have gaps
     (probabilistic reliability) but never inversions — each member's
     per-publisher view is a prefix-free ordered subsequence; with
     pull enabled on a healthy net it is in fact complete. *)
  let seed_all ~me:_ =
    Stack.Gossip_net
      ({ Gossip.default_config with period = 500 }, [ 0; 1; 2; 3; 4 ])
  in
  let w =
    make_world ~n:5
      ~config:{ Net.default_config with loss = 0.1 }
      ~transport:seed_all
      (profile ~order:Qos.Fifo ())
  in
  publish_interleaved w ~pubs:[ 0; 1 ] ~k:8;
  Engine.run ~until:600_000 w.engine;
  Array.iteri
    (fun i _ ->
      List.iter
        (fun p ->
          let seen = from_origin w i w.nodes.(p) in
          let expected = expect_seq p 8 in
          (* ordered subsequence of the published stream *)
          let rec is_subseq xs ys =
            match xs, ys with
            | [], _ -> true
            | _, [] -> false
            | x :: xs', y :: ys' ->
                if x = y then is_subseq xs' ys' else is_subseq xs ys'
          in
          Alcotest.(check bool)
            (Printf.sprintf "node %d, publisher %d: no inversions" i p)
            true (is_subseq seen expected);
          Alcotest.(check bool)
            (Printf.sprintf "node %d, publisher %d: epidemic reached it" i p)
            true
            (List.length seen >= 6))
        [ 0; 1 ])
    w.nodes

(* --- property: assembly invariants over the whole lattice -------------- *)

let arb_profile =
  let open QCheck in
  let order =
    Gen.oneofl
      [ Qos.No_order; Qos.Fifo; Qos.Causal; Qos.Total; Qos.Causal_total ]
  in
  make
    ~print:(fun p -> Fmt.str "%a" Qos.pp p)
    Gen.(
      map3
        (fun reliable certified order ->
          fst
            (Qos.resolve
               { Qos.reliable; certified; order; prioritary = false;
                 timely = false }))
        bool bool order)

let prop_shape_invariants () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"stack shape invariants" arb_profile
       (fun prof ->
         let w = make_world ~n:3 prof in
         let shape = Stack.shape w.stacks.(0) in
         let top = List.hd shape in
         let bottom = List.nth shape (List.length shape - 1) in
         (* certified profiles put the durable log at the bottom *)
         (if prof.Qos.certified then bottom = "certified"
          else bottom = "transport:best")
         (* an order marker puts a sequencing layer on top — except
            FIFO over certified, which the bottom subsumes *)
         && (match prof.Qos.order with
            | Qos.No_order -> not (String.length top >= 6 && String.sub top 0 6 = "order:")
            | Qos.Fifo ->
                if prof.Qos.certified then top = "certified"
                else top = "order:fifo"
            | Qos.Causal -> top = "order:causal"
            | Qos.Total -> top = "order:total"
            | Qos.Causal_total -> top = "order:causal+total")
         (* the shared flood layer appears iff reliable-but-not-certified *)
         && List.mem "rel" shape
            = (prof.Qos.reliable && not prof.Qos.certified)
         (* targeted unicast is only sound on the bare transport *)
         && (Stack.targeted w.stacks.(0) <> None) = (shape = [ "transport:best" ])))

(* --- the one shared frontier component --------------------------------- *)

let test_seqspace_order () =
  let persisted = ref [] in
  let o =
    Seqspace.Order.create
      ~persist:(fun ~origin ~next -> persisted := (origin, next) :: !persisted)
      ()
  in
  Alcotest.(check int) "fresh expected" 0 (Seqspace.Order.expected o ~origin:9);
  (match Seqspace.Order.submit o ~origin:9 ~seq:2 "c" with
  | `Run [] -> ()
  | _ -> Alcotest.fail "out-of-order must park");
  Alcotest.(check int) "parked" 1 (Seqspace.Order.parked o);
  (match Seqspace.Order.submit o ~origin:9 ~seq:0 "a" with
  | `Run [ "a" ] -> ()
  | _ -> Alcotest.fail "frontier releases the contiguous run");
  (match Seqspace.Order.submit o ~origin:9 ~seq:1 "b" with
  | `Run [ "b"; "c" ] -> ()
  | _ -> Alcotest.fail "gap fill releases the parked tail");
  (match Seqspace.Order.submit o ~origin:9 ~seq:1 "b" with
  | `Duplicate -> ()
  | _ -> Alcotest.fail "below-frontier resubmit is a duplicate");
  Alcotest.(check int) "nothing parked" 0 (Seqspace.Order.parked o);
  (* persist ran before each released run, with the advanced frontier *)
  Alcotest.(check (list (pair int int)))
    "persisted frontiers" [ (9, 3); (9, 1) ] !persisted;
  Alcotest.(check int) "duplicates counted" 1 (Seqspace.Order.duplicates o)

let test_seqspace_order_parked_resubmit () =
  (* A retransmission echo of a still-parked seq must be rejected as a
     duplicate — not silently replace the payload awaiting release and
     masquerade as a fresh accept. *)
  let o = Seqspace.Order.create () in
  (match Seqspace.Order.submit o ~origin:1 ~seq:2 "first copy" with
  | `Run [] -> ()
  | _ -> Alcotest.fail "parks");
  (match Seqspace.Order.submit o ~origin:1 ~seq:2 "late echo" with
  | `Duplicate -> ()
  | _ -> Alcotest.fail "parked resubmit must be a duplicate");
  Alcotest.(check int) "counted" 1 (Seqspace.Order.duplicates o);
  Alcotest.(check int) "still one parked" 1 (Seqspace.Order.parked o);
  ignore (Seqspace.Order.submit o ~origin:1 ~seq:0 "a");
  (match Seqspace.Order.submit o ~origin:1 ~seq:1 "b" with
  | `Run [ "b"; "first copy" ] -> ()
  | _ -> Alcotest.fail "the original parked payload is released")

let test_seqspace_dedup () =
  let d = Seqspace.Dedup.create () in
  let fresh origin seq =
    Seqspace.Dedup.witness d ~origin ~seq = `Fresh
  in
  Alcotest.(check bool) "first" true (fresh 1 0);
  Alcotest.(check bool) "out of order" true (fresh 1 2);
  Alcotest.(check int) "residue above frontier" 1 (Seqspace.Dedup.residue d);
  Alcotest.(check bool) "replay" false (fresh 1 2);
  Alcotest.(check bool) "gap fill" true (fresh 1 1);
  Alcotest.(check int) "residue drains" 0 (Seqspace.Dedup.residue d);
  Alcotest.(check bool) "below frontier" false (fresh 1 0);
  Alcotest.(check int) "duplicates counted" 2 (Seqspace.Dedup.duplicates d)

(* --- end-to-end: composed classes through the engine ------------------- *)

let composed_registry () =
  let reg = Registry.create () in
  Registry.declare_class reg ~name:"StockQuote" ~implements:[ "Obvent" ]
    ~attrs:[ "company", Vtype.Tstring; "price", Vtype.Tfloat ]
    ();
  Registry.declare_class reg ~name:"CertFifoQuote" ~extends:"StockQuote"
    ~implements:[ "Certified"; "FIFOOrder" ] ();
  Registry.declare_class reg ~name:"CertTotalQuote" ~extends:"StockQuote"
    ~implements:[ "Certified"; "TotalOrder" ] ();
  Registry.declare_class reg ~name:"LateQuote" ~extends:"StockQuote"
    ~implements:[ "Reliable"; "Timely" ]
    ~attrs:[ "birth", Vtype.Tint; "timeToLive", Vtype.Tint ] ();
  reg

let quote reg cls price =
  Obvent.make reg cls
    [ "company", Value.Str "Acme"; "price", Value.Float price ]

let late_quote reg engine price =
  Obvent.make reg "LateQuote"
    [ "company", Value.Str "Acme"; "price", Value.Float price;
      "birth", Value.Int (Engine.now engine);
      "timeToLive", Value.Int 1_000_000 ]

let test_pubsub_cert_fifo_crash () =
  (* Through the whole engine: a CertFifoQuote subscriber crashes,
     misses publishes, recovers via Process.resume — and still sees
     every quote in publication order. *)
  let reg = composed_registry () in
  let engine = Engine.create ~seed:11 () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in
  let procs =
    Array.init 3 (fun _ -> Pubsub.Process.create domain (Net.add_node net))
  in
  let prices = ref [] in
  let s =
    Pubsub.Process.subscribe procs.(2) ~param:"CertFifoQuote" (fun o ->
        match Obvent.get o "price" with
        | Value.Float f -> prices := f :: !prices
        | _ -> ())
  in
  Pubsub.Subscription.activate s;
  for i = 0 to 2 do
    Engine.schedule engine ~delay:(100 * i) (fun () ->
        Pubsub.Process.publish procs.(0)
          (quote reg "CertFifoQuote" (float_of_int i)))
  done;
  Engine.run ~until:20_000 engine;
  Net.crash net (Pubsub.Process.node procs.(2));
  for i = 3 to 5 do
    Engine.schedule engine ~delay:(100 * i) (fun () ->
        Pubsub.Process.publish procs.(0)
          (quote reg "CertFifoQuote" (float_of_int i)))
  done;
  Engine.run ~until:(Engine.now engine + 30_000) engine;
  Net.recover net (Pubsub.Process.node procs.(2));
  Pubsub.Process.resume procs.(2);
  Engine.run ~until:(Engine.now engine + 400_000) engine;
  Alcotest.(check (list (float 0.001)))
    "every quote, in publication order" [ 0.; 1.; 2.; 3.; 4.; 5. ]
    (List.rev !prices)

let test_pubsub_qos_conflict_surfaced () =
  (* Reliable ∧ Timely contradict; Fig. 4 precedence drops Timely —
     and the engine now reports it instead of discarding it. *)
  let reg = composed_registry () in
  let engine = Engine.create ~seed:3 () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in
  let procs =
    Array.init 2 (fun _ -> Pubsub.Process.create domain (Net.add_node net))
  in
  let s =
    Pubsub.Process.subscribe procs.(1) ~param:"LateQuote" (fun _ -> ())
  in
  Pubsub.Subscription.activate s;
  Pubsub.Process.publish procs.(0) (late_quote reg engine 1.);
  Engine.run engine;
  let stats = Pubsub.Domain.stats domain in
  Alcotest.(check int) "one conflict surfaced" 1
    stats.Pubsub.Domain.qos_conflicts;
  (* Re-publishing on the existing channel does not re-count. *)
  Pubsub.Process.publish procs.(0) (late_quote reg engine 2.);
  Engine.run engine;
  Alcotest.(check int) "counted once per class" 1
    (Pubsub.Domain.stats domain).Pubsub.Domain.qos_conflicts

let suite =
  ( "stack",
    [
      Alcotest.test_case "shape: QoS lattice matrix" `Quick test_shape_matrix;
      Alcotest.test_case "shape: gossip transport" `Quick test_shape_gossip;
      Alcotest.test_case "shape: from registry markers" `Quick
        test_shape_from_registry;
      Alcotest.test_case "targeted unicast only on bare transport" `Quick
        test_targeted_only_plain;
      Alcotest.test_case "certified+fifo under loss" `Quick test_cert_fifo_loss;
      Alcotest.test_case "certified+fifo gap recovery after crash" `Quick
        test_cert_fifo_crash_resume;
      Alcotest.test_case "certified+total agreement under loss" `Quick
        test_cert_total_loss;
      Alcotest.test_case "certified+total crash recovery" `Quick
        test_cert_total_crash_resume;
      Alcotest.test_case "causal+total stack orders cause before effect"
        `Quick test_causal_total_stack;
      Alcotest.test_case "fifo over gossip: no inversions" `Quick
        test_gossip_fifo_prefix;
      Alcotest.test_case "property: shape invariants" `Quick
        prop_shape_invariants;
      Alcotest.test_case "seqspace: order frontier + persist hooks" `Quick
        test_seqspace_order;
      Alcotest.test_case "seqspace: parked resubmit is duplicate" `Quick
        test_seqspace_order_parked_resubmit;
      Alcotest.test_case "seqspace: dedup frontier" `Quick test_seqspace_dedup;
      Alcotest.test_case "pubsub: certified+fifo crash/resume end-to-end"
        `Quick test_pubsub_cert_fifo_crash;
      Alcotest.test_case "pubsub: qos conflicts surfaced" `Quick
        test_pubsub_qos_conflict_surfaced;
    ] )
